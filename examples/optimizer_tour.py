"""A tour of the Section 4 strategy: one query per optimization option.

Shows the optimizer choosing each of the paper's options on queries
engineered to need exactly that option, with the full derivation trace:

1. relational join rewriting (Rule 1 semijoin / antijoin, Table 1/2),
1b. grouping — safe only when Table 3 proves P(x, ∅) = false,
2. attribute unnesting (μ, Example Query 4),
3. the nestjoin (Section 6.1),
4. nested loops (the query that defeats every option).

Run:  python examples/optimizer_tour.py
"""

from repro.adl import builders as B
from repro.adl.pretty import pretty
from repro.rewrite.strategy import Optimizer
from repro.workload.paper_db import figure2_catalog, section4_catalog
from repro.workload.queries import example_query_4, figure1_query

CORR = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))


def tour_stop(title, query, optimizer) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    result = optimizer.optimize(query)
    print(f"option chosen: {result.option}   (set-oriented: {result.set_oriented})")
    print(result.trace.render())
    if len(result.attempts) > 1:
        tried = ", ".join(
            f"{a.option}({'ok' if a.set_oriented else 'failed'})" for a in result.attempts
        )
        print(f"attempts: {tried}")
    print()


def main() -> None:
    fig2_opt = Optimizer(figure2_catalog())
    s4_opt = Optimizer(section4_catalog())

    # 1. relational: a membership comparison against a correlated block
    membership = B.sel(
        "x",
        B.member(B.attr(B.var("x"), "a"),
                 B.amap("y", B.attr(B.var("y"), "d"),
                        B.sel("y", CORR, B.extent("Y")))),
        B.extent("X"),
    )
    tour_stop("Option 1 — relational join rewriting (Table 1 + Rule 1)",
              membership, fig2_opt)

    # 1b. safe grouping: ⊂ between blocks (P(x, ∅) = false, Table 3)
    proper_subset = B.sel(
        "x",
        B.subset(B.attr(B.var("x"), "c"), B.sel("y", CORR, B.extent("Y"))),
        B.extent("X"),
    )
    tour_stop("Option 1b — grouping, Table-3-guarded (x.c ⊂ Y')",
              proper_subset, fig2_opt)

    # 2. attribute unnesting: Example Query 4
    tour_stop("Option 2 — attribute unnesting (μ + antijoin, Example Query 4)",
              example_query_4(), s4_opt)

    # 3. nestjoin: the Figure 1 query (⊆ between blocks, P(x, ∅) = ?)
    tour_stop("Option 3 — the nestjoin (Figure 1 query)", figure1_query(), fig2_opt)

    # 4. nested loops: ∋ against a correlated block, with no schema to
    # enable the nestjoin — every option fails, the query stays nested
    stubborn = B.sel(
        "x",
        B.ni(B.attr(B.var("x"), "c"), B.sel("y", CORR, B.extent("Y"))),
        B.extent("X"),
    )
    tour_stop("Option 4 — nested loops (nothing applies without a schema)",
              stubborn, Optimizer(schema=None))


if __name__ == "__main__":
    main()
