"""The query service end to end: the paper's database behind sessions,
prepared statements, and the parameterized plan cache.

Walks through:

1. **Prepared statements** — the Section 4 supplier/part query with a
   ``$maxprice`` placeholder, executed under several bindings: one
   compilation, one cached plan, parameters bound per call.
2. **Cache hits and misses** — same query in a second spelling (the shape
   key is the normalized parse tree, so whitespace/case/comments don't
   matter), then a ``Catalog.analyze()`` bump showing invalidation and
   re-optimization.
3. **Index-aware replanning** — ``create_index()`` bumps the catalog
   version; the replanned statement switches from a scan to an index
   probe, visible in ``explain()``.
4. **Concurrent sessions with per-session stats** — four sessions issue
   interleaved parameterized queries through the bounded worker pool;
   results stay oracle-consistent and every session reports its own
   counters.

Run:  PYTHONPATH=src python examples/query_service.py
"""

from concurrent.futures import wait

from repro.service import QueryService
from repro.storage import Catalog
from repro.workload.paper_db import section4_catalog, section4_database

SUPPLIER_QUERY = (
    "select s.sname from s in SUPPLIER where exists p in PART : "
    "(exists y in s.parts : y.pid = p.pid) and p.price < $maxprice"
)


def banner(title):
    print("=" * 72)
    print(title)
    print("=" * 72)


def main():
    db = section4_database()
    catalog = Catalog(db)
    catalog.analyze()

    with QueryService(db, section4_catalog(), catalog, max_workers=4) as service:
        banner("1. Prepared statements — one plan, many bindings")
        session = service.session()
        statement = session.prepare(SUPPLIER_QUERY)
        print(f"prepared: {statement!r}")
        for maxprice in (11, 12, 14, 100):
            result = statement.execute(maxprice=maxprice)
            print(
                f"  $maxprice={maxprice:<4} -> {sorted(result.rows)!r:30} "
                f"cache_hit={result.cache_hit}  option={result.option}"
            )
        print(f"compilations so far: {service.stats()['compilations']}")

        banner("2. Shape normalization and catalog-version invalidation")
        respelled = (
            "SELECT s.sname FROM s IN SUPPLIER WHERE exists p in PART : "
            "(exists y in s.parts : y.pid = p.pid) and (p.price < $maxprice) -- same shape"
        )
        r = session.execute(respelled, {"maxprice": 12})
        print(f"different spelling, same shape -> cache_hit={r.cache_hit}")
        version = catalog.version
        catalog.analyze()
        print(f"catalog.analyze(): version {version} -> {catalog.version}")
        r = statement.execute(maxprice=12)
        print(f"first call after the bump    -> cache_hit={r.cache_hit} (re-optimized)")
        r = statement.execute(maxprice=12)
        print(f"second call after the bump   -> cache_hit={r.cache_hit}")
        print(f"cache counters: {service.stats()['cache']}")

        banner("3. create_index() forces a replan that uses the index")
        lookup = "select p.pname from p in PART where p.price = $price"
        service.execute(lookup, {"price": 12})
        print("before:", service.explain(lookup).splitlines()[-1].strip())
        catalog.create_index("PART", "price")
        r = service.execute(lookup, {"price": 12})
        print("after: ", service.explain(lookup).splitlines()[-1].strip())
        print(f"replanned (cache_hit={r.cache_hit}), "
              f"index_probes={r.stats['index_probes']}, rows={sorted(r.rows)}")

        banner("4. Concurrent sessions, per-session stats")
        sessions = [service.session() for _ in range(4)]
        futures = [
            s.execute_async(SUPPLIER_QUERY, {"maxprice": 10 + i + j})
            for i, s in enumerate(sessions)
            for j in (0, 2, 90)
        ]
        wait(futures)
        for s in sessions:
            stats = s.stats
            print(
                f"  {s.id}: queries={stats['queries']} "
                f"cache_hits={stats['cache_hits']} "
                f"predicate_evals={stats['work']['predicate_evals']} "
                f"wall={stats['wall_s'] * 1e3:.2f}ms"
            )
        totals = service.stats()
        print(
            f"service: executed={totals['executed']} "
            f"compilations={totals['compilations']} "
            f"peak_in_flight={totals['peak_in_flight']} "
            f"cache={totals['cache']}"
        )


if __name__ == "__main__":
    main()
