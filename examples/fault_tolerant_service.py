"""Fault-tolerant query execution end to end: inject → retry → degrade →
recover (PR 6).

Walks through:

1. **Deterministic fault injection** — a seedable :class:`FaultPlan`
   scripts failures keyed on ``(fragment, attempt)``: worker crashes,
   hangs, transient errors, slow fragments.  Plain data, so a forked
   worker and the coordinator reach identical decisions with no shared
   counters.
2. **Transient faults retry** — a bounded :class:`RetryPolicy` with
   exponential backoff and *deterministic* jitter re-runs the batch;
   the retry stays on the pool and the query result is byte-identical.
3. **Worker crashes degrade** — a killed worker (``os._exit`` mid-
   fragment) is detected by PID/exitcode polling; the batch re-runs
   inline through the *same* ``execute_fragment`` path, so the degraded
   rows are provably the rows the pool would have produced.
4. **Deadlines bound everything** — ``execute(timeout=...)`` cancels a
   hung parallel batch (and even a serial nested loop) within polling
   granularity, reclaiming the worker pool on the way out.
5. **The breaker routes around repeated failure** — consecutive pool
   deaths open a circuit breaker that sends gather-bearing plans
   straight to the inline path until a cooldown expires; a half-open
   probe then closes it.

Every event is visible: ``QueryResult.faults`` carries the per-query
record, ``QueryService.stats()`` the running counters.

Run:  PYTHONPATH=src python examples/fault_tolerant_service.py
"""

import time

from repro.datamodel import VTuple
from repro.datamodel.errors import QueryTimeoutError
from repro.faults import CircuitBreaker, FaultPlan, FaultSpec, RetryPolicy
from repro.service import QueryService
from repro.storage import Catalog, MemoryDatabase

QUERY = "select x.i from x in X where exists y in Y : x.a = y.d and y.w < $m"


def banner(title):
    print("=" * 72)
    print(title)
    print("=" * 72)


def make_world(n=3000, parts=4):
    db = MemoryDatabase({
        "X": [VTuple(a=i, v=i % 100, i=i) for i in range(n)],
        "Y": [VTuple(d=i % n, w=i % 7) for i in range(n)],
    })
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "a", parts)
    catalog.partition("Y", "d", parts)
    return db, catalog


def main():
    db, catalog = make_world()
    with QueryService(db, catalog=catalog) as serial:
        oracle = serial.execute(QUERY, {"m": 3}).rows
    print(f"oracle: {len(oracle)} rows from the serial engine\n")

    # -- 1 + 2: a transient fault, retried --------------------------------
    banner("Transient fault: retried with backoff, identical rows")
    policy = RetryPolicy(max_attempts=3, base_s=0.01, jitter=0.5)
    print("deterministic backoff schedule:",
          [round(policy.backoff_s(a), 4) for a in (1, 2)])
    with QueryService(db, catalog=catalog, parallel_workers=4,
                      fault_plan=FaultPlan.transient(times=1),
                      retry_policy=policy) as svc:
        res = svc.execute(QUERY, {"m": 3})
        assert res.rows == oracle
        print(f"rows match oracle: {len(res.rows)}")
        print(f"result.faults = {res.faults}\n")

    # -- 3: a worker crash, degraded to inline ----------------------------
    banner("Worker crash: detected, degraded inline, identical rows")
    with QueryService(db, catalog=catalog, parallel_workers=4,
                      fault_plan=FaultPlan.crash_once(fragment=0,
                                                      where="worker"),
                      retry_policy=policy) as svc:
        res = svc.execute(QUERY, {"m": 3})
        assert res.rows == oracle
        print(f"rows match oracle: {len(res.rows)}")
        print(f"result.faults = {res.faults}")
        stats = svc.stats()
        print(f"service: degraded_runs={stats['degraded_runs']}, "
              f"pool_deaths={stats['parallel']['pool_deaths']}\n")

    # -- 4: a hang, bounded by the deadline -------------------------------
    banner("Hang: execute(timeout=0.5) cancels it, pool reclaimed")
    with QueryService(db, catalog=catalog, parallel_workers=4,
                      fault_plan=FaultPlan.hang(fragment=0, delay_s=30.0),
                      retry_policy=policy) as svc:
        start = time.monotonic()
        try:
            svc.execute(QUERY, {"m": 3}, timeout=0.5)
        except QueryTimeoutError as exc:
            print(f"QueryTimeoutError after {time.monotonic() - start:.2f}s: {exc}")
        svc._parallel_handle().inject(None)  # lift the injected hang
        res = svc.execute(QUERY, {"m": 3})
        assert res.rows == oracle
        print(f"next query on the same service: {len(res.rows)} rows, "
              f"timeouts={svc.stats()['timeouts']}\n")

    # -- 5: the breaker opens, cools down, closes -------------------------
    banner("Circuit breaker: open on repeated death, probe, close")
    crash_always = FaultPlan([FaultSpec("crash", None, (), where="worker")])
    from repro.shard import ParallelExecutor
    with ParallelExecutor(db, catalog, workers=4,
                          fault_plan=crash_always,
                          retry_policy=policy,
                          breaker=CircuitBreaker(threshold=1,
                                                 cooldown_s=0.3)) as ex:
        from repro.shard.fragment import FragmentSpec, ShardRef, SCAN_PLACEHOLDER
        specs = [FragmentSpec.make(SCAN_PLACEHOLDER,
                                   {SCAN_PLACEHOLDER: ShardRef("X", "a", 4, i)})
                 for i in range(4)]
        ex.run_fragments(specs)
        print(f"after pool death: breaker={ex.breaker.state}, "
              f"last run mode={ex.last_report['mode']}")
        ex.run_fragments(specs)
        print(f"while open: mode={ex.last_report['mode']} "
              f"(straight to inline, no fork)")
        ex.inject(None)          # lift the fault
        time.sleep(0.35)         # let the cooldown expire
        ex.run_fragments(specs)
        print(f"after cooldown probe: breaker={ex.breaker.state}, "
              f"mode={ex.last_report['mode']}")
        print(f"executor counters: retries={ex.retries}, "
              f"degraded_runs={ex.degraded_runs}, pool_deaths={ex.pool_deaths}")


if __name__ == "__main__":
    main()
