"""Building nested results with the nestjoin — Example Queries 1 and 6.

OOSQL's select-clause may nest blocks to build complex objects: a supplier
catalog pairing each supplier with the set of parts it supplies.  A
relational join cannot produce that nested shape (Section 4: Example
Query 6 "cannot be rewritten into a relational join query"), so the
optimizer uses the nestjoin — grouping during the join, dangling suppliers
kept with empty sets.

This example builds the catalog two ways — over oid references (OOSQL
Example Query 1, left nested per the paper because the inner block
iterates a clustered attribute) and over the Section 4 flat types
(Example Query 6, rewritten to a nestjoin) — and prints both.

Run:  python examples/supplier_catalog.py
"""

from repro.adl.pretty import pretty
from repro.datamodel import format_value, sort_key
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.rewrite.strategy import Optimizer
from repro.translate import compile_oosql
from repro.workload.paper_db import (
    example_database,
    example_schema,
    section4_catalog,
    section4_database,
)
from repro.workload.queries import EXAMPLE_QUERY_1, example_query_6


def show_catalog(rows, name_attr, set_attr) -> None:
    for row in sorted(rows, key=lambda t: t[name_attr]):
        members = ", ".join(
            format_value(m) for m in sorted(row[set_attr], key=sort_key)
        )
        print(f"  {row[name_attr]:<6} -> {{{members}}}")


def main() -> None:
    # -- Example Query 1: nesting in the select-clause over an attribute ---
    schema = example_schema()
    db = example_database()
    print("Example Query 1 (red parts per supplier, OOSQL):")
    print(EXAMPLE_QUERY_1.strip())
    adl = compile_oosql(EXAMPLE_QUERY_1, schema)
    result = Optimizer(schema).optimize(adl)
    print(f"\noptimizer verdict: {result.option} "
          "(attribute nesting is left nested, as the paper prescribes)")
    catalog1 = Interpreter(db).eval(result.expr)
    show_catalog(catalog1, "sname", "pnames")

    # -- Example Query 6: nesting over a base table -> nestjoin -------------
    cat = section4_catalog()
    s4db = section4_database()
    query = example_query_6()
    print("\nExample Query 6 (full catalog, ADL):")
    print(" ", pretty(query))
    result6 = Optimizer(cat).optimize(query)
    print(f"\nrewritten ({result6.option}):")
    print(" ", pretty(result6.expr))

    executor = Executor(s4db)
    print("\nPhysical plan:")
    print(executor.explain(result6.expr))

    naive_stats, plan_stats = Stats(), Stats()
    naive = Interpreter(s4db, naive_stats).eval(query)
    catalog6 = Executor(s4db, plan_stats).execute(result6.expr)
    assert naive == catalog6

    print("\nCatalog (suppliers with the parts they supply):")
    simplified = [
        row.update_except(
            {"parts_suppl": frozenset(p["pname"] for p in row["parts_suppl"])}
        )
        for row in catalog6
    ]
    show_catalog(simplified, "sname", "parts_suppl")

    empty = [r["sname"] for r in catalog6 if not r["parts_suppl"]]
    print(f"\nsuppliers with empty catalogs (kept by the nestjoin!): {sorted(empty)}")
    print(f"naive work: {naive_stats.total_work()}, nestjoin plan work: {plan_stats.total_work()}")


if __name__ == "__main__":
    main()
