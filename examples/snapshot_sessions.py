"""Snapshot-isolated sessions end to end: epochs → pins → shedding →
warm start (PR 7).

Walks through:

1. **Visibility epochs** — every mutation batch publishes a new
   monotonic ``db.epoch``; a multi-extent ``db.batch()`` is one epoch,
   so readers see it entirely or not at all.  Snapshots are lazily
   preserved copies-on-pin: with nobody pinned, mutation costs nothing
   extra.
2. **Every query reads one epoch** — the service pins the epoch at
   submission; a writer racing the query cannot tear the result, and
   ``QueryResult.epoch`` names the view the rows came from.
3. **Session snapshots** — ``session.snapshot()`` extends one pin
   across many queries: repeatable reads without stopping writers.
4. **Overload shedding** — saturation past the queue is *refused* with
   :class:`OverloadError` (retry-after attached), queued work that
   waited past ``queue_wait_s`` is shed at dequeue, and a per-session
   fairness cap keeps one hot client from occupying the whole queue.
5. **Plan-cache warm start** — ``close()`` persists compiled shapes as
   canonical plan text; a new service restores them and its first
   query is already a cache hit.

Run:  PYTHONPATH=src python examples/snapshot_sessions.py
"""

import os
import tempfile
import threading
import time

from repro.datamodel import VTuple
from repro.datamodel.errors import OverloadError
from repro.service import QueryService
from repro.storage import Catalog, MemoryDatabase

JOIN = "select (b = x.b, e = y.e) from x in X, y in Y where x.a = y.d"
SIMPLE = "select x.b from x in X where x.a = $k"


def banner(title):
    print("=" * 72)
    print(title)
    print("=" * 72)


def make_world(n=60, mod=6):
    db = MemoryDatabase({
        "X": [VTuple(a=i % mod, b=i) for i in range(n)],
        "Y": [VTuple(d=i % mod, e=i) for i in range(n)],
    })
    catalog = Catalog(db)
    catalog.analyze()
    return db, catalog


def demo_epochs():
    banner("1. Visibility epochs: mutation batches publish atomically")
    db, _ = make_world()
    print(f"initial load                  -> epoch {db.epoch}")
    db.insert_rows("X", [VTuple(a=0, b=1000)])
    print(f"one insert                    -> epoch {db.epoch}")
    with db.batch():
        db.insert_rows("X", [VTuple(a=1, b=1001)])
        db.insert_rows("Y", [VTuple(d=1, e=2001)])
    print(f"two-extent batch (atomic)     -> epoch {db.epoch}")
    print(f"epoch bookkeeping: {db.epoch_stats()}")
    print("no pins were held, so nothing was copied or preserved\n")


def demo_pinned_queries():
    banner("2. A racing writer cannot tear a pinned query")
    db, catalog = make_world()
    with QueryService(db, catalog=catalog) as svc:
        r1 = svc.execute(JOIN)
        print(f"query pinned at epoch {r1.epoch}: {len(r1.rows)} rows")
        with db.batch():  # both join sides move in one epoch
            db.insert_rows("X", [VTuple(a=0, b=9000)])
            db.insert_rows("Y", [VTuple(d=0, e=9000)])
        r2 = svc.execute(JOIN)
        print(f"after the batch, epoch {r2.epoch}: {len(r2.rows)} rows")
        print(f"stats: pins_taken={svc.stats()['pins_taken']}, "
              f"store={db.epoch_stats()}")
    print()


def demo_session_snapshot():
    banner("3. Session snapshots: repeatable reads under writers")
    db, catalog = make_world()
    with QueryService(db, catalog=catalog) as svc:
        with svc.session() as session:
            with session.snapshot() as epoch:
                before = session.execute(SIMPLE, {"k": 2})
                db.insert_rows("X", [VTuple(a=2, b=7777)])
                during = session.execute(SIMPLE, {"k": 2})
                print(f"snapshot pinned at epoch {epoch}")
                print(f"  rows before insert: {len(before.rows)}")
                print(f"  rows after insert, same snapshot: {len(during.rows)}"
                      f" (identical: {before.rows == during.rows})")
            after = session.execute(SIMPLE, {"k": 2})
            print(f"  snapshot released -> {len(after.rows)} rows "
                  f"(the insert is visible)")
    print(f"pins released: {db.epoch_stats()['pinned'] == 0}\n")


def demo_shedding():
    banner("4. Overload shedding: refusal beats unbounded queueing")

    class SlowDatabase(MemoryDatabase):
        def extent(self, name):
            time.sleep(0.05)  # make every query slow enough to pile up
            return super().extent(name)

    db = SlowDatabase({"X": [VTuple(a=i % 3, b=i) for i in range(9)]})
    with QueryService(db, max_workers=1, queue_depth=2, queue_wait_s=0.02,
                      session_max_in_flight=3) as svc:
        session = svc.session()
        futures, refused = [], 0
        for k in range(8):
            try:
                futures.append(session.execute_async(SIMPLE, {"k": k % 3}))
            except OverloadError as exc:
                refused += 1
                last = exc
        completed = shed = 0
        for f in futures:
            try:
                f.result()
                completed += 1
            except OverloadError:
                shed += 1
        print(f"8 submissions on 1 worker (queue_depth=2): "
              f"{refused} refused up front, {shed} shed after queue wait, "
              f"{completed} completed")
        print(f"last refusal said retry after {last.retry_after_s}s")
        stats = svc.stats()
        print(f"counters: shed_queue_wait={stats['shed_queue_wait']}, "
              f"shed_fairness={stats['shed_fairness']}, "
              f"rejected={stats['rejected']}")
    print(f"shed queries leaked no pins: {db.epoch_stats()['pinned'] == 0}\n")


def demo_warm_start():
    banner("5. Plan-cache warm start across service restarts")
    db, catalog = make_world()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "plans.json")
        with QueryService(db, catalog=catalog, cache_persist_path=path) as svc:
            start = time.perf_counter()
            svc.execute(JOIN)
            cold = time.perf_counter() - start
            print(f"first service compiles the shape: {cold * 1e3:.1f} ms")
        with QueryService(db, catalog=catalog, cache_persist_path=path) as svc:
            print(f"second service restored {svc.warm_restored} plan(s) "
                  f"at construction")
            start = time.perf_counter()
            r = svc.execute(JOIN)
            warm = time.perf_counter() - start
            print(f"its first query is a cache hit ({r.cache_hit}): "
                  f"{warm * 1e3:.1f} ms, compilations={svc.compilations}")
    print()


def main():
    demo_epochs()
    demo_pinned_queries()
    demo_session_snapshot()
    demo_shedding()
    demo_warm_start()


if __name__ == "__main__":
    main()
