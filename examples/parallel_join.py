"""Partition-parallel execution end to end: partitioning → explain →
parallel execution.

Walks through:

1. **Partitioning** — two extents hash-partitioned on their join keys
   via ``Catalog.partition()``; per-partition statistics and skew are
   inspectable on the registered :class:`PartitionedExtent`.
2. **The cost model decides** — the same join explained three ways:
   serial (no parallel executor), parallel on big co-partitioned data
   (the planner picks a partition-wise plan behind a gather exchange),
   and on the paper's tiny data (the planner provably stays serial —
   below the parallelism threshold).
3. **Fragment shipping** — what actually crosses the process boundary:
   canonical pretty-printed ADL text plus shard and parameter bindings.
4. **Parallel execution** — the fragments run on a forked 4-worker
   pool; partial results and per-worker counters merge back, and the
   work-model critical path shows the parallelism the counters bought.
5. **The service route** — ``QueryService(parallel_workers=4)`` sends
   eligible cached plans through the same pool.

Run:  PYTHONPATH=src python examples/parallel_join.py
"""

from repro.adl import builders as B
from repro.datamodel import VTuple
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.service import QueryService
from repro.shard import ParallelExecutor
from repro.storage import Catalog, MemoryDatabase
from repro.workload.paper_db import section4_database


def banner(title):
    print("=" * 72)
    print(title)
    print("=" * 72)


def make_join():
    return B.join(
        B.extent("X"),
        B.sel("y", B.lt(B.attr(B.var("y"), "w"), B.lit(2)), B.extent("Y")),
        "x", "y",
        B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")),
    )


def main():
    n = 12000
    db = MemoryDatabase({
        "X": [VTuple(a=i, v=i % 100, i=i) for i in range(n)],
        "Y": [VTuple(d=i, w=i % 7) for i in range(n)],
    })
    catalog = Catalog(db)
    catalog.analyze()

    banner("1. Partition both extents on their join keys (4 shards each)")
    for extent, attr in (("X", "a"), ("Y", "d")):
        pe = catalog.partition(extent, attr, 4)
        print(f"  {pe.describe():28s} shard sizes {pe.cardinalities} "
              f"skew {pe.skew:.2f}")

    expr = make_join()
    serial = Executor(db, catalog=catalog)

    banner("2. The cost model decides: serial vs parallel plans")
    print("without a parallel executor:")
    print("  " + serial.explain(expr).splitlines()[0])
    with ParallelExecutor(db, catalog, workers=4, mode="process") as parallel:
        par_executor = Executor(db, Stats(), catalog=catalog, parallel=parallel)
        print("with 4 workers (big co-partitioned data):")
        for line in par_executor.explain(expr).splitlines():
            print("  " + line)

        paper = section4_database()
        paper_catalog = Catalog(paper)
        paper_catalog.analyze()
        paper_catalog.partition("SUPPLIER", "eid", 4)
        paper_catalog.partition("PART", "pid", 4)
        paper_join = B.join(
            B.extent("SUPPLIER"), B.extent("PART"), "s", "p",
            B.eq(B.attr(B.var("s"), "eid"), B.attr(B.var("p"), "pid")),
        )
        with ParallelExecutor(paper, paper_catalog, workers=4, mode="inline") as tiny:
            tiny_plan = Executor(paper, catalog=paper_catalog, parallel=tiny).explain(paper_join)
        print("with 4 workers but tiny (paper) data — stays serial:")
        print("  " + tiny_plan.splitlines()[0])

        banner("3. What ships to a worker: ADL text + shard bindings")
        plan = par_executor.planner.plan(expr)
        join_node = plan.children()[0]  # the PartitionedHashJoin under the gather
        spec = join_node.payloads({})[0]
        print(f"  fragment text : {spec.text}")
        for name, ref in spec.shards:
            print(f"  {name:12s} -> shard {ref.index} of {ref.extent} "
                  f"by {ref.attr} ({ref.parts} parts)")

        banner("4. Parallel execution: merged results, merged counters")
        serial_stats = Stats()
        serial_result = Executor(db, serial_stats, catalog=catalog).execute(expr)
        parallel_result = par_executor.execute(expr)
        report = parallel.last_report
        assert parallel_result == serial_result, "parallel must match serial exactly"
        critical = report["critical_path_work"] + report["result_rows"]
        print(f"  rows (parallel == serial): {len(parallel_result)}")
        print(f"  pool mode                : {report['mode']}")
        print(f"  per-fragment work        : {report['per_fragment_work']}")
        print(f"  serial work              : {serial_stats.total_work()}")
        print(f"  parallel critical path   : {critical}")
        print(f"  work-model speedup       : "
              f"{serial_stats.total_work() / critical:.1f}x")

    banner("5. The same join through the service")
    query = "select x.i from x in X where exists y in Y : x.a = y.d and y.w < $m"
    with QueryService(db, catalog=catalog, parallel_workers=4,
                      parallel_mode="process") as service:
        print("  " + service.explain(query).splitlines()[1].strip())
        result = service.execute(query, {"m": 2})
        print(f"  rows: {len(result.rows)}  cache_hit: {result.cache_hit}")
        again = service.execute(query, {"m": 2})
        print(f"  again -> cache_hit: {again.cache_hit}, "
              f"pool stats: {service.stats()['parallel']}")


if __name__ == "__main__":
    main()
