"""Query observability tour: tracing, EXPLAIN ANALYZE, metrics.

Walks through the PR-10 observability layer:

1. **Per-operator tracing** — attach a :class:`TraceRecorder` to a run
   and see rows/batches, wall time and fill time per plan node; the
   untraced path pays nothing (the trace test is hoisted out of the hot
   loops, like the PR-6 deadline checks).
2. **EXPLAIN ANALYZE on a shredded parallel query** — the acceptance
   shape: a co-partitioned shredded nestjoin on a forked pool, rendered
   as the ordinary explain tree annotated ``(est≈N, actual=M, Xms)``
   per node, with per-fragment spans from the pool workers underneath.
3. **Misestimate flagging** — correlated skew on the join key makes the
   flat join's cardinality estimate wrong by ~40x; the q-error flag
   marks it, and through the service the record lands in the bounded
   per-shape misestimate store (the hook for the replan trigger).
4. **Unified metrics** — one registry over service/cache/epoch/parallel
   counters with a JSON snapshot and Prometheus-style export, plus the
   threshold-gated slow-query log.

Run:  PYTHONPATH=src python examples/observability.py
"""

from repro.adl import builders as B
from repro.adl.typecheck import TypeChecker
from repro.datamodel import Catalog as TypeCatalog, INT, SetType, TupleType, VTuple
from repro.engine.planner import Executor
from repro.rewrite.common import RewriteContext
from repro.service import QueryService
from repro.shard import ParallelExecutor
from repro.shred import shred_expr
from repro.storage import Catalog, MemoryDatabase

TYPES = TypeCatalog({
    "X": SetType(TupleType({"a": INT, "b": INT})),
    "Y": SetType(TupleType({"d": INT, "e": INT})),
})
CTX = RewriteContext(checker=TypeChecker(TYPES))


def banner(title):
    print("=" * 72)
    print(title)
    print("=" * 72)


def make_db():
    """Correlated skew: both sides pile onto join key 0 — invisible to
    the independence/ndv join estimate, glaring in the trace."""
    x = [VTuple(a=i % 7, b=(0 if i < 150 else i)) for i in range(1500)]
    y = [VTuple(d=(0 if i < 60 else 10_000 + i), e=i % 5) for i in range(6000)]
    return MemoryDatabase({"X": x, "Y": y})


def main():
    db = make_db()
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "b", 3)
    catalog.partition("Y", "d", 3)

    nj = B.nestjoin(
        B.extent("X"), B.extent("Y"), "x", "y",
        B.eq(B.attr(B.var("x"), "b"), B.attr(B.var("y"), "d")),
        "ys", None,
    )
    shredded = shred_expr(nj, CTX)
    assert shredded is not None

    banner("1+2. EXPLAIN ANALYZE: co-partitioned shredded nestjoin, forked pool")
    with ParallelExecutor(db, catalog, workers=3, mode="process") as parallel:
        ex = Executor(db, catalog=catalog, parallel=parallel, batch_size=256)
        analyzed = ex.explain_analyze(shredded)
    print(analyzed.text)
    print(f"\n{len(analyzed.rows)} nested rows; "
          f"{len(analyzed.trace['fragment_spans'])} fragment spans "
          f"from pids {sorted({s['pid'] for s in analyzed.trace['fragment_spans']})}")

    banner("3. Misestimate records (the replan trigger's feed)")
    for miss in analyzed.misestimates:
        print(f"  {miss['operator']:<20} est≈{miss['est_rows']:<8.0f} "
              f"actual={miss['actual_rows']:<8} q-error={miss['q_error']:.1f}")

    banner("4. Service: analyze=True, metrics registry, slow-query log")
    with QueryService(db, catalog=catalog, slow_query_s=0.0) as svc:
        r = svc.execute("select x.b from x in X where x.b = 0", analyze=True)
        print(r.analyze)
        print(f"\nmisestimate store: {svc.misestimates.snapshot()}")
        print(f"slow-query log ({svc.slow_log.logged} entries); latest shape: "
              f"{svc.slow_log.entries()[-1]['shape']!r}")
        print("\nPrometheus export (excerpt):")
        for line in svc.metrics_text().splitlines():
            if line.startswith(("repro_queries_executed", "repro_cache_hit_ratio",
                                "repro_misestimates", "repro_query_latency_seconds_count")):
                print(" ", line)


if __name__ == "__main__":
    main()
