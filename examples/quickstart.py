"""Quickstart: the full pipeline in one file.

Defines the paper's supplier-part OODB schema, populates a store, writes an
OOSQL query with a correlated subquery over a base table, and walks it
through every stage: parse → type check → translate (Section 3) →
optimize (Section 4) → physical plan → execute.

Run:  python examples/quickstart.py
"""

from repro.datamodel import INT, STRING, ClassRef, Schema, SetType, format_value
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.oosql import parse, pretty as oosql_pretty
from repro.rewrite.strategy import Optimizer
from repro.translate import Translator
from repro.adl.pretty import pretty as adl_pretty
from repro.storage import Database


def main() -> None:
    # -- 1. schema (Section 2 of the paper) --------------------------------
    schema = Schema()
    schema.add_class("Part", "PART", {"pname": STRING, "price": INT, "color": STRING})
    schema.add_class(
        "Supplier", "SUPPLIER",
        {"sname": STRING, "parts_supplied": SetType(ClassRef("Part"))},
    )
    schema.freeze()

    # -- 2. a paged object store -------------------------------------------
    db = Database(schema, page_size=1024)
    colors = ["red", "green", "blue"]
    parts = [
        db.insert("Part", {"pname": f"p{i}", "price": 5 * i + 10, "color": colors[i % 3]})
        for i in range(9)
    ]
    supplier_parts = [parts[0:3], parts[2:7], parts[8:9], []]
    for index, supplied in enumerate(supplier_parts):
        db.insert(
            "Supplier",
            {"sname": f"s{index + 1}", "parts_supplied": frozenset(supplied)},
        )

    # -- 3. an OOSQL query with a correlated base-table subquery ------------
    text = """
        select s.sname
        from s in SUPPLIER
        where exists p in PART : p.oid in s.parts_supplied and p.color = "red"
    """
    query = parse(text)
    print("OOSQL:")
    print(" ", oosql_pretty(query))

    # -- 4. translate: the Section 3 one-to-one scheme ----------------------
    adl = Translator(schema).translate(query)
    print("\nTranslated ADL (nested-loop form):")
    print(" ", adl_pretty(adl))

    # -- 5. optimize: the Section 4 strategy --------------------------------
    result = Optimizer(schema).optimize(adl)
    print(f"\nOptimization (option: {result.option}, set-oriented: {result.set_oriented}):")
    print(result.trace.render())

    # -- 6. physical plan and execution -------------------------------------
    executor = Executor(db)
    print("\nPhysical plan:")
    print(executor.explain(result.expr))

    naive_stats = Stats()
    naive = Interpreter(db, naive_stats).eval(adl)
    fast_stats = Stats()
    fast = Executor(db, fast_stats).execute(result.expr)
    assert naive == fast

    print("\nResult:", format_value(fast))
    print(f"naive nested-loop work: {naive_stats.total_work()} operations")
    print(f"optimized plan work:    {fast_stats.total_work()} operations")


if __name__ == "__main__":
    main()
