"""Referential-integrity audit — Example Query 4 at scale.

The paper's Example Query 4 finds suppliers whose ``parts`` sets reference
non-existing parts (violating referential integrity):

    π_eid(σ[s : ∃z ∈ s.parts • ¬∃p ∈ PART • z = p[pid]](SUPPLIER))

The optimizer turns it into the paper's target plan
``π_eid(μ_parts(SUPPLIER) ▷ PART)`` — attribute unnesting (safe because
the quantifier is existential and the projection drops ``parts``) followed
by Rule 1's antijoin.  This example runs the audit on a synthetic database
with seeded violations and compares nested-loop vs antijoin cost.

Run:  python examples/referential_integrity.py
"""

import random

from repro.adl.pretty import pretty
from repro.datamodel import Oid, VTuple, vset
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.rewrite.strategy import Optimizer
from repro.storage import MemoryDatabase
from repro.workload.paper_db import section4_catalog
from repro.workload.queries import example_query_4


def build_database(n_parts=300, n_suppliers=150, violations=7, seed=42):
    """Section 4's flat types, with `violations` seeded dangling refs."""
    rng = random.Random(seed)
    colors = ["red", "green", "blue", "yellow"]
    parts = [
        VTuple(pid=Oid("Part", i), pname=f"p{i}", price=rng.randrange(5, 500),
               color=rng.choice(colors))
        for i in range(n_parts)
    ]
    suppliers = []
    bad_indices = set(rng.sample(range(n_suppliers), violations))
    for i in range(n_suppliers):
        refs = [Oid("Part", rng.randrange(n_parts)) for _ in range(rng.randint(0, 6))]
        if i in bad_indices:
            refs.append(Oid("Part", n_parts + i))  # dangling!
        suppliers.append(
            VTuple(eid=Oid("Supplier", i), sname=f"s{i}",
                   parts=vset(*(VTuple(pid=r) for r in refs)))
        )
    return MemoryDatabase({"SUPPLIER": suppliers, "PART": parts}), bad_indices


def main() -> None:
    db, bad_indices = build_database()
    query = example_query_4()
    print("Audit query (ADL):")
    print(" ", pretty(query))

    result = Optimizer(section4_catalog()).optimize(query)
    print(f"\nOptimized ({result.option}):")
    print(" ", pretty(result.expr))

    executor = Executor(db)
    print("\nPhysical plan:")
    print(executor.explain(result.expr))

    naive_stats = Stats()
    violators_naive = Interpreter(db, naive_stats).eval(query)
    plan_stats = Stats()
    violators = Executor(db, plan_stats).execute(result.expr)
    assert violators == violators_naive

    found = sorted(t["eid"].number for t in violators)
    print(f"\nViolating suppliers ({len(found)}): {found}")
    assert set(found) == bad_indices, "audit must find exactly the seeded violations"

    print(f"\nnaive nested-loop work: {naive_stats.total_work():>8} operations")
    print(f"unnest+antijoin work:   {plan_stats.total_work():>8} operations")
    print(f"speedup:                {naive_stats.total_work() / plan_stats.total_work():8.1f}x")


if __name__ == "__main__":
    main()
