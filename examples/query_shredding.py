"""Query shredding end to end: translation → pricing → flat parallel
execution → stitched nested result.

Walks through:

1. **The nested query** — the paper's Figure-3 nestjoin: each ``X``
   tuple paired with the *set* of its ``Y`` partners.  One fused
   operator, so (before PR 9) it could not ride the partition-parallel
   tier.
2. **Translation** — ``shred_expr`` rewrites the nestjoin into a
   ``stitch`` over a *flat* inner join; the synthetic shredding key is
   the whole left tuple, so the flat join's output splits losslessly.
3. **Pricing** — the shredded form is a candidate in the optimizer's
   priced enumeration: on tiny data the fused nestjoin provably wins
   (a serial stitch is the same join plus strictly positive overhead);
   on large co-partitioned data the parallel inner join pays for the
   stitch and the optimizer swaps the shredded form in.
4. **Execution** — the chosen shredded plan runs its inner flat join as
   partition-wise fragments on a forked pool (batched), then the stitch
   reassembles the nested result; rows are oracle-checked against the
   serial fused nestjoin and the work-model speedup is shown.

Run:  PYTHONPATH=src python examples/query_shredding.py
"""

from repro.adl.pretty import pretty
from repro.datamodel import Catalog as TypeCatalog, INT, SetType, TupleType, VTuple
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.rewrite.strategy import Optimizer
from repro.shard import ParallelExecutor
from repro.storage import Catalog, MemoryDatabase
from repro.workload.queries import figure3_nestjoin

#: flat extent element types — shredding needs the operands' attribute
#: sets disjoint, which oid-injected Schema classes are not (by design)
TYPES = TypeCatalog({
    "X": SetType(TupleType({"a": INT, "b": INT})),
    "Y": SetType(TupleType({"d": INT, "e": INT})),
})


def banner(title):
    print("=" * 72)
    print(title)
    print("=" * 72)


def make_db(n, spread):
    """n left rows keyed 1:1 on ``b``; spread*n right rows of which only
    1 in ``spread`` finds a partner — the dangling-heavy shape where the
    flat join's partition-wise evaluation shines."""
    return MemoryDatabase({
        "X": [VTuple(a=i % 7, b=i) for i in range(n)],
        "Y": [VTuple(d=i, e=i % 5) for i in range(spread * n)],
    })


def partitioned_catalog(db, parts=4):
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "b", parts)
    catalog.partition("Y", "d", parts)
    return catalog


def main():
    expr = figure3_nestjoin()

    banner("1. The nested query — the paper's Figure-3 nestjoin")
    print(f"  {pretty(expr)}")
    print("  (each x keeps the *set* of its y partners under 'ys')")

    banner("2. Translation: nestjoin -> stitch over a flat join")
    from repro.adl.typecheck import TypeChecker
    from repro.rewrite.common import RewriteContext
    from repro.shred import shred_expr

    shredded = shred_expr(expr, RewriteContext(checker=TypeChecker(TYPES)))
    print(f"  {pretty(shredded)}")
    print("  key_attrs = {a, b}: the whole left tuple is the shredding key,")
    print("  so the flat join row z splits into (left part, result part)")

    banner("3a. Tiny data: the fused nestjoin provably stays")
    tiny = make_db(10, spread=1)
    res = Optimizer(TYPES, catalog=partitioned_catalog(tiny),
                    parallel_workers=4).optimize(expr)
    print(f"  chosen: {res.chosen.option!r}")
    for note in res.chosen.trace.notes:
        if "shredding priced" in note:
            print(f"  verdict: {note}")

    banner("3b. Big co-partitioned data: the shredded form wins by price")
    big = make_db(4000, spread=16)
    catalog = partitioned_catalog(big)
    res = Optimizer(TYPES, catalog=catalog, parallel_workers=4).optimize(expr)
    print(f"  chosen: {res.chosen.option!r}")
    for note in res.chosen.trace.notes:
        if "shredding priced" in note:
            print(f"  verdict: {note}")

    banner("4. Execute: partition-wise flat join + stitch, oracle-checked")
    serial_stats = Stats()
    serial = Executor(big, serial_stats, catalog=catalog)
    oracle = serial.execute(expr)
    serial_work = serial_stats.total_work()

    with ParallelExecutor(big, catalog, workers=4, mode="process") as parallel:
        shred_stats = Stats()
        par = Executor(big, shred_stats, catalog=catalog, parallel=parallel,
                       batch_size=1024)
        print(par.explain(res.chosen.expr))
        rows = par.execute(res.chosen.expr)
        report = dict(parallel.last_report)

    assert rows == oracle, "shredded result must equal the fused nestjoin's"
    print(f"\n  rows: {len(rows)} (match the serial fused nestjoin: True)")
    coordinator = shred_stats.total_work() - sum(report["per_fragment_work"])
    critical = coordinator + report["critical_path_work"] + report["result_rows"]
    print(f"  serial fused work:        {serial_work}")
    print(f"  per-fragment work:        {report['per_fragment_work']}")
    print(f"  shredded critical path:   {critical} "
          "(coordinator + biggest fragment + gathered rows)")
    print(f"  work-model speedup:       {serial_work / critical:.1f}x")


if __name__ == "__main__":
    main()
