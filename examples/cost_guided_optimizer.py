"""Cost-guided optimization end to end: rewrite ranking + join reordering.

Loads the paper's Section 4 database, registers a statistics catalog, and
shows — for one paper query and for a multi-join chain — what changes when
the optimizer's decisions flow through the cost model:

1. **Rewrite selection** (Example Query 5, "suppliers supplying red
   parts"): without a catalog the Section 4 strategy takes the *first*
   option that succeeds; with one, every successful pipeline is priced
   and the cheapest wins, with the per-candidate estimates recorded on
   the trace.
2. **Join ordering** (a 4-extent chain with skewed cardinalities):
   ``explain()`` before (``reorder=False`` — the rewriter's left-to-right
   order) and after (DP join reordering), including the
   ``-- join order:`` header with both orders' estimated costs.

Run:  PYTHONPATH=src python examples/cost_guided_optimizer.py
"""

from repro.adl import builders as B
from repro.datamodel import VTuple
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.rewrite.strategy import Optimizer
from repro.storage import Catalog, MemoryDatabase
from repro.workload.paper_db import section4_catalog, section4_database
from repro.workload.queries import example_query_5


def banner(title):
    print("=" * 72)
    print(title)
    print("=" * 72)


def paper_query_tour():
    banner("1. Cost-ranked rewrite selection — Example Query 5")
    db = section4_database()
    catalog = Catalog(db)
    catalog.analyze()
    query = example_query_5()

    before = Optimizer(section4_catalog()).optimize(query)
    print(f"before (paper priority order): option={before.option}, "
          f"attempts run: {len(before.attempts)}")

    after = Optimizer(section4_catalog(), catalog=catalog).optimize(query)
    print(f"after (cost-ranked):           option={after.option}, "
          f"attempts run: {len(after.attempts)}")
    print("per-candidate estimated costs:")
    for option, cost in after.candidate_costs.items():
        print(f"  {option:12s} {'—' if cost is None else f'≈{cost:.0f}'}")
    for note in after.chosen.trace.notes:
        print(f"  note: {note}")

    print("\nphysical plan of the chosen rewrite (cost-based planner):")
    print(Executor(db, catalog=catalog).explain(after.expr))
    result = Executor(db, catalog=catalog).execute(after.expr)
    oracle = Interpreter(db).eval(query)
    print(f"\nresult matches the un-rewritten query: {result == oracle} "
          f"({len(result)} suppliers)")
    print()


def join_reordering_tour():
    banner("2. DP join reordering — 4-extent chain, skewed cardinalities")
    db = MemoryDatabase(
        {
            "R1": [VTuple(a1=i % 50, i1=i) for i in range(400)],
            "R2": [VTuple(a2=i % 50, b2=i % 40, i2=i) for i in range(400)],
            "R3": [VTuple(b3=i % 40, c3=i % 20, i3=i) for i in range(30)],
            "R4": [VTuple(c4=i % 20, i4=i) for i in range(6)],
        }
    )
    catalog = Catalog(db)
    catalog.analyze()

    def av(var, attr):
        return B.attr(B.var(var), attr)

    chain = B.join(
        B.join(
            B.join(B.extent("R1"), B.extent("R2"), "x", "y",
                   B.eq(av("x", "a1"), av("y", "a2"))),
            B.extent("R3"), "t", "z", B.eq(av("t", "b2"), av("z", "b3")),
        ),
        B.extent("R4"), "u", "w", B.eq(av("u", "c3"), av("w", "c4")),
    )

    unordered = Executor(db, catalog=catalog, reorder=False)
    reordered = Executor(db, catalog=catalog)

    print("before — the rewriter's left-to-right order (reorder=False):")
    print(unordered.explain(chain))
    print("\nafter — DP join reordering (the default with a catalog):")
    print(reordered.explain(chain))

    same = unordered.execute(chain) == reordered.execute(chain)
    print(f"\nboth orders produce identical results: {same}")


def main():
    paper_query_tour()
    join_reordering_tour()


if __name__ == "__main__":
    main()
