"""The Complex Object bug, live — Figure 2 as an interactive walkthrough.

Shows, on the paper's exact Figure 2 instance:

1. the nested query and its (correct) nested-loop answer,
2. the [GaWo87] grouping rewrite and its *wrong* answer (the dangling
   tuple ``(a=2, c=∅)`` is lost in the join),
3. the Table 3 static analysis predicting exactly this (``P(x, ∅) = ?``),
4. the two repairs: the outerjoin (null-stripping) and the nestjoin.

Run:  python examples/bug_gallery.py
"""

from repro.adl import ast as A
from repro.adl.pretty import pretty
from repro.adl.typecheck import TypeChecker
from repro.datamodel import format_value, sort_key
from repro.engine.interpreter import Interpreter
from repro.rewrite.analysis import classify_empty
from repro.rewrite.common import RewriteContext, first_correlated_block
from repro.rewrite.rules_grouping import grouping_outerjoin, unnest_by_grouping
from repro.rewrite.rules_nestjoin import nestjoin_where
from repro.workload.paper_db import figure2_catalog, figure2_database, figure2_tables
from repro.workload.queries import figure1_query, figure2_variant_supseteq


def fmt(rows) -> str:
    return "{" + ", ".join(format_value(t) for t in sorted(rows, key=sort_key)) + "}"


def walkthrough(query, db, ctx, interp) -> None:
    print("query:  ", pretty(query))

    block = first_correlated_block(query.pred, query.var)
    verdict = classify_empty(query.pred, block.node)
    print(f"Table 3 verdict: P(x, ∅) = {verdict.value}")

    truth = interp.eval(query)
    print("nested-loop answer:   ", fmt(truth))

    buggy = unnest_by_grouping(query, ctx)
    buggy_answer = interp.eval(buggy)
    print("grouping (join) plan: ", pretty(buggy))
    print("grouping answer:      ", fmt(buggy_answer), end="")
    lost = truth - buggy_answer
    if lost:
        print(f"   <-- WRONG, lost {fmt(lost)}")
    else:
        print("   (correct here)")

    repaired = grouping_outerjoin.apply(query, ctx)
    print("outerjoin repair:     ", fmt(interp.eval(repaired)))

    nj = nestjoin_where.apply(query, ctx)
    print("nestjoin plan:        ", pretty(nj))
    print("nestjoin answer:      ", fmt(interp.eval(nj)))


def main() -> None:
    db = figure2_database()
    ctx = RewriteContext(checker=TypeChecker(figure2_catalog()))
    interp = Interpreter(db)

    x_rows, y_rows = figure2_tables()
    print("Figure 2 instance:")
    print("  X =", fmt(x_rows))
    print("  Y =", fmt(y_rows))
    print("  note (a=2, c=∅): its subquery result is empty — the dangling tuple\n")

    print("=" * 72)
    print("Case 1: x.c ⊆ Y'   (the paper's Figure 2 query)")
    print("=" * 72)
    walkthrough(figure1_query(), db, ctx, interp)

    print()
    print("=" * 72)
    print("Case 2: x.c ⊇ Y'   (the paper's variant — same bug)")
    print("=" * 72)
    walkthrough(figure2_variant_supseteq(), db, ctx, interp)

    print("\nMoral (Section 5.2.2): grouping-by-join is only safe when "
          "P(x, ∅) reduces statically to false;\neverywhere else, use an "
          "operator that keeps dangling tuples — the nestjoin.")


if __name__ == "__main__":
    main()
