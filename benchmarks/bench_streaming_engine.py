"""PR 1 — streaming Volcano execution + compiled expressions.

The before/after comparison behind ``BENCH_PR1.json`` (see
``run_bench.py`` for the standalone entry point): the same physical
plans executed by the materializing interpreted engine
(``materialized=True, compile_exprs=False``) and by the streaming
compiled engine (the default), oracle-checked against the interpreter.
Wall-clock assertions live in ``run_bench.py``; here we assert the
engine-equivalence properties that must hold on any machine and record
the timings as pytest-benchmark artifacts.
"""

import time

from repro.adl import ast as A
from repro.adl import builders as B
from repro.engine.interpreter import Interpreter
from repro.engine.plan import ExecRuntime, Filter, HashJoinBase, NestedLoopJoin, Scan
from repro.engine.stats import Stats
from repro.workload.generator import generate_database, generate_xy
from repro.workload.harness import print_table, speedup

XA = B.attr(B.var("x"), "a")
YD = B.attr(B.var("y"), "d")
EQ = B.eq(XA, YD)
TRUE = A.Literal(True)


def engines(db, plan):
    baseline = plan.execute(
        ExecRuntime(db, Stats(), materialized=True, compile_exprs=False)
    )
    streaming = plan.execute(ExecRuntime(db, Stats()))
    return baseline, streaming


def test_streaming_engine_agrees_with_baseline_and_oracle(benchmark):
    db = generate_xy(250, 250, key_domain=100, seed=6)
    plan = HashJoinBase(
        "nestjoin", "x", "y", (XA,), (YD,), TRUE,
        Scan("X"), Scan("Y"), as_attr="ys", result=A.Var("y"),
    )
    logical = B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", EQ, "ys")
    oracle = Interpreter(db).eval(logical)
    baseline, streaming = engines(db, plan)
    assert baseline == streaming == oracle

    benchmark(lambda: plan.execute(ExecRuntime(db, Stats())))


def test_compiled_expressions_cut_nested_loop_wall_time(benchmark):
    """The per-pair predicate re-interpretation is the nested-loop tax the
    compiler removes; the work *counters* stay identical — the engines do
    the same algorithmic work, one just stops re-walking the AST."""
    db = generate_xy(120, 120, key_domain=50, seed=6)
    plan = NestedLoopJoin("join", "x", "y", EQ, Scan("X"), Scan("Y"))

    base_stats, stream_stats = Stats(), Stats()
    baseline = plan.execute(
        ExecRuntime(db, base_stats, materialized=True, compile_exprs=False)
    )
    streaming = plan.execute(ExecRuntime(db, stream_stats))
    assert baseline == streaming
    assert base_stats.predicate_evals == stream_stats.predicate_evals
    assert base_stats.comparisons == stream_stats.comparisons

    def wall(**engine):
        start = time.perf_counter()
        plan.execute(ExecRuntime(db, Stats(), **engine))
        return time.perf_counter() - start

    base_wall = min(wall(materialized=True, compile_exprs=False) for _ in range(3))
    stream_wall = min(wall() for _ in range(3))
    print_table(
        ["engine", "wall ms", "speedup"],
        [
            ("materializing + interpreted", f"{base_wall * 1e3:.1f}", "1.0x"),
            ("streaming + compiled", f"{stream_wall * 1e3:.1f}",
             speedup(base_wall, stream_wall)),
        ],
        title="PR 1 — nested-loop join: compiled expressions vs interpreter",
    )

    benchmark(lambda: plan.execute(ExecRuntime(db, Stats())))


def test_streaming_stops_early_on_paged_store(benchmark):
    """The Volcano payoff no materializing engine can have: a consumer
    that needs one tuple charges a fraction of the scan's page I/O."""
    db = generate_database(
        n_parts=60, n_suppliers=20, n_deliveries=30, seed=11, page_size=512
    )
    plan = Filter("p", B.gt(B.attr(B.var("p"), "price"), 0), Scan("PART"))

    db.reset_io()
    next(plan.iterate(ExecRuntime(db, Stats())))
    first_tuple_pages = db.io.pages_read

    db.reset_io()
    plan.execute(ExecRuntime(db, Stats(), materialized=True))
    full_pages = db.io.pages_read

    print_table(
        ["consumption", "pages read"],
        [("first tuple (streaming)", first_tuple_pages),
         ("full materialization", full_pages)],
        title="PR 1 — early termination: page I/O for 'first matching part'",
    )
    assert first_tuple_pages < full_pages

    benchmark(lambda: next(plan.iterate(ExecRuntime(db, Stats()))))
