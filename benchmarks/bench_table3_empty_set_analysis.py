"""T3 — Table 3: set comparison operators and bugs.

Regenerates the paper's Table 3: the statically-reduced value of
``P(x, ∅)`` for every set comparison between blocks, which decides whether
the grouping rewrite is safe (false), repairable (true), or run-time
dependent (?).  Each static verdict is cross-validated dynamically: we
evaluate ``P(x, ∅)`` on concrete ``x`` values and check the verdict is
consistent (false ⇒ always false, true ⇒ always true, ? ⇒ both observed
across the value space).
"""

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import VTuple, vset
from repro.engine.interpreter import Interpreter
from repro.rewrite.analysis import TriBool, classify_empty
from repro.storage import MemoryDatabase
from repro.workload.harness import print_table

SUB = B.sel("y", B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")), B.extent("Y"))

#: Table 3 rows with the paper's published verdicts.
PAPER_ROWS = [
    ("x.c ⊂ Y'", "subset", TriBool.FALSE),
    ("x.c ⊆ Y'", "subseteq", TriBool.UNKNOWN),
    ("x.c = Y'", "seteq", TriBool.UNKNOWN),
    ("x.c ⊇ Y'", "supseteq", TriBool.TRUE),
    ("x.c ⊃ Y'", "supset", TriBool.UNKNOWN),
    ("x.c ∋ Y'", "ni", TriBool.UNKNOWN),
]

#: Probe values for x.c: flat sets for the ⊂⊆=⊇⊃ rows need set-of-tuple
#: values; ∋ needs set-of-set values.  Include ∅ and sets containing ∅.
FLAT_PROBES = [frozenset(), vset(VTuple(d=1, e=1))]
NESTED_PROBES = [frozenset(), vset(frozenset()), vset(vset(VTuple(d=1, e=1)))]


def dynamic_outcomes(op, probes):
    """Evaluate P(x, ∅) for each probe value of x.c."""
    interp = Interpreter(MemoryDatabase({"Y": []}))
    outcomes = set()
    for c in probes:
        pred = A.SetCompare(op, B.lit(c), B.setexpr())
        outcomes.add(interp.eval(pred))
    return outcomes


def test_table3(benchmark):
    table_rows = []
    for label, op, paper_verdict in PAPER_ROWS:
        pred = A.SetCompare(op, B.attr(B.var("x"), "c"), SUB)
        verdict = classify_empty(pred, SUB)
        assert verdict is paper_verdict, f"{label}: {verdict} != paper {paper_verdict}"

        probes = NESTED_PROBES if op == "ni" else FLAT_PROBES
        outcomes = dynamic_outcomes(op, probes)
        if verdict is TriBool.FALSE:
            assert outcomes == {False}, label
        elif verdict is TriBool.TRUE:
            assert outcomes == {True}, label
        else:
            assert outcomes == {True, False}, label  # genuinely run-time dependent

        safe = "grouping safe" if verdict is TriBool.FALSE else (
            "bug: all dangling lost" if verdict is TriBool.TRUE else "bug: run-time dependent"
        )
        table_rows.append((label, verdict.value, safe))

    print_table(
        ["P(x, Y')", "P(x, ∅)", "grouping rewrite"],
        table_rows,
        title="Table 3 — Set Comparison Operators And Bugs (reproduced)",
    )

    def classify_all():
        for _, op, _ in PAPER_ROWS:
            classify_empty(A.SetCompare(op, B.attr(B.var("x"), "c"), SUB), SUB)

    benchmark(classify_all)
