"""P4 — materialize/assembly vs value-based join (Section 6.2, [BlMG93]/[ShCa90]).

The path-expression workload: attach each Delivery's referenced Supplier
object (``d.supplier`` is an oid).  Competitors, all over the paged store:

* **assembly** (the materialize operator's physical algorithm): batch all
  outstanding oids, sort by page, fetch each page once;
* **naive pointer chasing**: one random page fetch per reference;
* **value-based hash join** of DELIVERY with SUPPLIER on the oid value
  (scans the whole SUPPLIER extent to build the hash table).

Shapes to reproduce: assembly's page reads ≤ naive chasing's (equal only
when every reference lands on a distinct page); assembly beats the value
join when the referenced set is a small fraction of the extent (pointer
locality wins), while the value join catches up when everything is
referenced anyway.
"""

import random

import pytest

from repro.adl import builders as B
from repro.engine.plan import ExecRuntime, HashJoinBase, MaterializeOp, Scan
from repro.engine.stats import Stats
from repro.workload.harness import print_table
from repro.workload.generator import generate_database


def build_db(n_suppliers, n_deliveries, seed=0):
    return generate_database(
        n_parts=20,
        n_suppliers=n_suppliers,
        n_deliveries=n_deliveries,
        seed=seed,
        page_size=512,
    )


def run_assembly(db):
    db.reset_io()
    stats = Stats()
    plan = MaterializeOp("supplier", "supplier_obj", "Supplier", Scan("DELIVERY"))
    out = plan.execute(ExecRuntime(db, stats))
    return out, db.io.pages_read


def run_pointer_chasing(db):
    db.reset_io()
    out = set()
    for row in db.scan("DELIVERY"):
        obj = db.fetch(row["supplier"])  # one random page read per deref
        out.add(row.update_except({"supplier_obj": obj}))
    return frozenset(out), db.io.pages_read


def run_value_join(db):
    db.reset_io()
    stats = Stats()
    plan = HashJoinBase(
        "nestjoin",
        "d", "s",
        (B.attr(B.var("d"), "supplier"),),
        (B.attr(B.var("s"), "oid"),),
        B.lit(True),
        Scan("DELIVERY"),
        Scan("SUPPLIER"),
        as_attr="objs",
        result=B.var("s"),
    )
    out = plan.execute(ExecRuntime(db, stats))
    # normalize to the assembly's output shape (single object per ref)
    normalized = set()
    for row in out:
        (obj,) = row["objs"]
        normalized.add(row.drop(("objs",)).update_except({"supplier_obj": obj}))
    return frozenset(normalized), db.io.pages_read


def test_materialize_vs_value_join(benchmark):
    rows = []
    # sparse references: few deliveries against many suppliers
    sparse = build_db(n_suppliers=150, n_deliveries=10, seed=2)
    # dense references: many deliveries against few suppliers
    dense = build_db(n_suppliers=10, n_deliveries=150, seed=3)

    for label, db in (("sparse refs (10 del / 150 sup)", sparse),
                      ("dense refs (150 del / 10 sup)", dense)):
        assembly_out, assembly_io = run_assembly(db)
        chase_out, chase_io = run_pointer_chasing(db)
        join_out, join_io = run_value_join(db)
        assert assembly_out == chase_out == join_out
        rows.append((label, assembly_io, chase_io, join_io))

    print_table(
        ["workload", "assembly page reads", "pointer-chase page reads",
         "value-join page reads"],
        rows,
        title="P4 — materialize (assembly) vs pointer chasing vs value join",
    )

    # shapes: assembly never reads more pages than naive chasing
    for _, assembly_io, chase_io, _join_io in rows:
        assert assembly_io <= chase_io
    # on sparse references, assembly beats the full-extent value join
    assert rows[0][1] < rows[0][3]

    benchmark(lambda: run_assembly(sparse))


def test_pointer_chasing_timing(benchmark):
    db = build_db(n_suppliers=150, n_deliveries=10, seed=2)
    benchmark(lambda: run_pointer_chasing(db))
