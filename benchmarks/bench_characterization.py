"""FW1 — the characterization of Section 7's first future-work item.

"First, we need a precise characterization of nested queries requiring
grouping or not."  This bench regenerates that characterization for every
Table 1 operator between blocks (plus the Table 2 predicate forms) and
cross-checks each verdict against the optimizer's actual behaviour and —
for the grouping classes — against whether raw grouping really breaks on
a dangling-tuple instance.
"""

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.typecheck import TypeChecker
from repro.engine.interpreter import Interpreter
from repro.rewrite.characterize import NestingClass, characterize_select
from repro.rewrite.common import RewriteContext
from repro.rewrite.rules_grouping import unnest_by_grouping
from repro.rewrite.strategy import Optimizer
from repro.workload.harness import print_table
from repro.workload.paper_db import figure2_catalog, figure2_database

X, Y = B.var("x"), B.var("y")
CORR = B.eq(B.attr(X, "a"), B.attr(Y, "d"))
SUB = B.sel("y", CORR, B.extent("Y"))

CASES = [
    ("x.m ∈ Y'", B.member(B.attr(X, "m"), SUB)),
    ("x.c ⊂ Y'", B.subset(B.attr(X, "c"), SUB)),
    ("x.c ⊆ Y'", B.subseteq(B.attr(X, "c"), SUB)),
    ("x.c = Y'", B.seteq(B.attr(X, "c"), SUB)),
    ("x.c ⊇ Y'", B.supseteq(B.attr(X, "c"), SUB)),
    ("x.c ⊃ Y'", B.supset(B.attr(X, "c"), SUB)),
    ("Y' = ∅", B.is_empty(SUB)),
    ("count(Y') = 0", B.eq(B.count(SUB), 0)),
    ("disjoint(x.c, Y')", B.disjoint(B.attr(X, "c"), SUB)),
    ("∃y ∈ Y • q", B.exists("y", B.extent("Y"), CORR)),
]

#: Cases whose predicate is well-typed on the Figure 2 instance, used for
#: the does-grouping-actually-break cross-check.
RUNNABLE = {"x.c ⊂ Y'", "x.c ⊆ Y'", "x.c = Y'", "x.c ⊇ Y'", "x.c ⊃ Y'",
            "disjoint(x.c, Y')", "Y' = ∅", "count(Y') = 0", "∃y ∈ Y • q"}


def test_characterization(benchmark):
    ctx = RewriteContext(checker=TypeChecker(figure2_catalog()))
    optimizer = Optimizer(figure2_catalog())
    db = figure2_database()
    interp = Interpreter(db)

    rows = []
    for label, pred in CASES:
        query = B.sel("x", pred, B.extent("X"))
        verdict = characterize_select(query)
        result = optimizer.optimize(query)

        grouping_breaks = "n/a"
        if label in RUNNABLE:
            buggy = unnest_by_grouping(query, ctx)
            if buggy is not None:
                grouping_breaks = str(interp.eval(buggy) != interp.eval(query))
            # correctness of the chosen plan, always
            assert interp.eval(result.expr) == interp.eval(query), label

        # the verdict must predict the optimizer's option family
        if verdict.verdict is NestingClass.RELATIONAL:
            assert result.option in ("relational",), label
        elif verdict.verdict is NestingClass.GROUPING_SAFE:
            assert result.option in ("grouping", "relational"), label
        elif verdict.verdict is NestingClass.GROUPING_UNSAFE:
            assert result.option in ("nestjoin", "combined"), label
            # P(x, ∅) = true means every dangling tuple is wrongly lost:
            # grouping must break on this instance; '?' may or may not
            # break depending on the data, so only the conservative routing
            # is asserted for it.
            from repro.rewrite.analysis import TriBool

            if grouping_breaks != "n/a" and verdict.empty_value is TriBool.TRUE:
                assert grouping_breaks == "True", label

        rows.append((label, verdict.verdict.value, result.option, grouping_breaks))

    print_table(
        ["P(x, Y')", "characterization", "optimizer option", "raw grouping wrong?"],
        rows,
        title="FW1 — characterization of nested queries (Section 7, future work item 1)",
    )

    benchmark(lambda: [characterize_select(B.sel("x", pred, B.extent("X")))
                       for _, pred in CASES])
