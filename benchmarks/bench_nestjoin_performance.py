"""P2 — nestjoin vs nested-loop grouping vs (buggy) join+nest.

The Figure 1 query shape at scale: ``σ[x : x.c ⊆ σ[y : x.a = y.d](Y)](X)``
with ~10% of X dangling.  Competitors:

* naive nested loops (correct, tuple-oriented baseline),
* nestjoin plan from the Section 4 strategy (correct, set-oriented),
* the raw grouping join+nest plan (set-oriented but **wrong**: loses the
  dangling tuples — reported with its error count, as a correctness
  disqualification the way the paper frames it),
* the outerjoin-repaired grouping plan (correct).

Shape to reproduce: nestjoin ≈ outerjoin-grouping ≪ naive; the gap grows
with N; the buggy plan's error count equals the dangling-tuple count.
"""

import random

import pytest

from repro.adl.typecheck import TypeChecker
from repro.datamodel import Catalog, INT, SetType, TupleType, VTuple, vset
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.rewrite.common import RewriteContext
from repro.rewrite.rules_grouping import grouping_outerjoin, unnest_by_grouping
from repro.rewrite.strategy import Optimizer
from repro.storage import MemoryDatabase
from repro.workload.harness import print_table, speedup
from repro.workload.queries import figure1_query

MEMBER_T = TupleType({"d": INT, "e": INT})
CATALOG = Catalog(
    {
        "X": SetType(TupleType({"a": INT, "i": INT, "c": SetType(MEMBER_T)})),
        "Y": SetType(MEMBER_T),
    }
)

SIZES = (20, 50, 100)


def build_db(n, seed=0, dangling_fraction=0.1):
    rng = random.Random(seed)
    domain = max(4, n // 2)
    y_rows = list({VTuple(d=rng.randrange(domain), e=rng.randrange(domain))
                   for _ in range(n)})
    x_rows = []
    for i in range(n):
        if rng.random() < dangling_fraction:
            key = domain + 1 + i  # no Y partner: dangling
            members = frozenset()
        else:
            key = rng.randrange(domain)
            members = vset(*(y for y in y_rows if y["d"] == key))
        x_rows.append(VTuple(a=key, i=i, c=members))
    return MemoryDatabase({"X": x_rows, "Y": y_rows})


def test_nestjoin_vs_grouping(benchmark):
    ctx = RewriteContext(checker=TypeChecker(CATALOG))
    optimizer = Optimizer(CATALOG)
    rows = []
    final_plans = None

    for n in SIZES:
        db = build_db(n, seed=n)
        query = figure1_query()

        naive_stats = Stats()
        truth = Interpreter(db, naive_stats).eval(query)

        nestjoin_result = optimizer.optimize(query)
        assert nestjoin_result.option == "nestjoin"
        nj_stats = Stats()
        nj_answer = Executor(db, nj_stats).execute(nestjoin_result.expr)
        assert nj_answer == truth

        buggy = unnest_by_grouping(query, ctx)
        buggy_stats = Stats()
        buggy_answer = Executor(db, buggy_stats).execute(buggy)
        errors = len(truth - buggy_answer) + len(buggy_answer - truth)

        repaired = grouping_outerjoin.apply(query, ctx)
        rep_stats = Stats()
        rep_answer = Executor(db, rep_stats).execute(repaired)
        assert rep_answer == truth

        dangling = sum(1 for t in db.extent("X") if t["c"] == frozenset()
                       and not any(y["d"] == t["a"] for y in db.extent("Y")))

        rows.append((
            n,
            naive_stats.total_work(),
            nj_stats.total_work(),
            buggy_stats.total_work(),
            rep_stats.total_work(),
            f"{errors} (dangling={dangling})",
            speedup(naive_stats.total_work(), nj_stats.total_work()),
        ))
        final_plans = (db, nestjoin_result.expr)

    print_table(
        ["N", "naive work", "nestjoin work", "grouping work (WRONG)",
         "outerjoin work", "grouping errors", "nestjoin speedup"],
        rows,
        title="P2 — nestjoin vs grouping on the Figure 1 query shape",
    )

    # shape assertions: nestjoin beats naive and the gap grows
    first_ratio = rows[0][1] / max(rows[0][2], 1)
    last_ratio = rows[-1][1] / max(rows[-1][2], 1)
    assert last_ratio > first_ratio
    assert last_ratio > 3

    db, plan_expr = final_plans
    benchmark(lambda: Executor(db).execute(plan_expr))
