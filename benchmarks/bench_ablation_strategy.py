"""A1 — ablation: the Section 4 priority order, permuted.

The paper prescribes: relational joins first, attribute unnesting second,
new operators (nestjoin) third, nested loops last.  This bench permutes
the priorities and measures the executed work of the chosen plan per
query, showing *why* the paper's order is right:

* nestjoin-first produces correct but more expensive plans for queries a
  semijoin could handle (the nestjoin materializes groups the predicate
  then merely tests for emptiness);
* relational-first never loses to nestjoin-first on the queries both can
  handle, and falls back to the nestjoin exactly where it must.
"""

import pytest

from repro.adl import builders as B
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.rewrite.strategy import Optimizer
from repro.datamodel import Catalog, INT, SetType, TupleType
from repro.workload.generator import generate_xy
from repro.workload.harness import print_table
from repro.workload.queries import figure1_query

MEMBER_T = TupleType({"d": INT, "e": INT})
CATALOG = Catalog(
    {
        "X": SetType(TupleType({"a": INT, "i": INT, "c": SetType(MEMBER_T)})),
        "Y": SetType(MEMBER_T),
    }
)

PRIORITIES = {
    "paper (relational,unnest,nestjoin)": ("relational", "unnest", "nestjoin", "combined"),
    "nestjoin-first": ("nestjoin", "relational", "unnest", "combined"),
    "unnest-first": ("unnest", "relational", "nestjoin", "combined"),
}


def correlated_exists():
    return B.sel(
        "x",
        B.exists("y", B.extent("Y"),
                 B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))),
        B.extent("X"),
    )


def count_zero():
    sub = B.sel("y", B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")),
                B.extent("Y"))
    return B.sel("x", B.eq(B.count(sub), 0), B.extent("X"))


QUERIES = {
    "exists (Rule 1 territory)": correlated_exists,
    "count = 0 (Table 2 territory)": count_zero,
    "x.c ⊆ Y' (nestjoin territory)": figure1_query,
}


def test_priority_ablation(benchmark):
    db = generate_xy(120, 120, key_domain=60, fanout_attr=True, seed=9)
    rows = []
    work_by_priority = {}

    for qname, builder in QUERIES.items():
        query = builder()
        truth = Interpreter(db).eval(query)
        for pname, priority in PRIORITIES.items():
            result = Optimizer(CATALOG, priority=priority).optimize(query)
            stats = Stats()
            answer = Executor(db, stats).execute(result.expr)
            assert answer == truth, f"{qname} under {pname}"
            rows.append((qname, pname, result.option, stats.total_work()))
            work_by_priority[(qname, pname)] = stats.total_work()

    print_table(
        ["query", "priority order", "option chosen", "plan work"],
        rows,
        title="A1 — strategy-priority ablation",
    )

    # paper's order matches or beats nestjoin-first on Rule-1 queries...
    assert (
        work_by_priority[("exists (Rule 1 territory)", "paper (relational,unnest,nestjoin)")]
        <= work_by_priority[("exists (Rule 1 territory)", "nestjoin-first")]
    )
    # ...and both orders agree where only the nestjoin applies
    assert (
        work_by_priority[("x.c ⊆ Y' (nestjoin territory)", "paper (relational,unnest,nestjoin)")]
        == work_by_priority[("x.c ⊆ Y' (nestjoin territory)", "nestjoin-first")]
    )

    paper_priority = PRIORITIES["paper (relational,unnest,nestjoin)"]

    def optimize_all():
        for builder in QUERIES.values():
            Optimizer(CATALOG, priority=paper_priority).optimize(builder())

    benchmark(optimize_all)
