"""P1 — the paper's motivating claim: set-oriented beats tuple-oriented.

Sweeps |X| = |Y| = N for a correlated existential query (Rule 1 →
semijoin) and a negated one (→ antijoin), comparing:

* naive nested-loop evaluation of the nested query (tuple-oriented), vs
* the optimizer's semijoin/antijoin executed as a hash plan (set-oriented).

The shape to reproduce: nested-loop work grows ~N², hash-plan work ~N, so
the speedup factor grows linearly with N and there is no crossover — the
rewrite wins at every scale beyond trivial.
"""

import pytest

from repro.adl import builders as B
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.rewrite.strategy import optimize
from repro.workload.generator import generate_xy
from repro.workload.harness import print_table, speedup

SIZES = (20, 50, 100, 200)


def semijoin_query():
    return B.sel(
        "x",
        B.exists("y", B.extent("Y"),
                 B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))),
        B.extent("X"),
    )


def antijoin_query():
    return B.sel(
        "x",
        B.neg(B.exists("y", B.extent("Y"),
                       B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")))),
        B.extent("X"),
    )


def sweep(query_builder, label):
    rows = []
    ratios = []
    for n in SIZES:
        db = generate_xy(n, n, key_domain=max(4, n // 2), seed=n)
        query = query_builder()
        result = optimize(query)
        assert result.set_oriented

        naive_stats = Stats()
        naive = Interpreter(db, naive_stats).eval(query)
        exec_stats = Stats()
        fast = Executor(db, exec_stats).execute(result.expr)
        assert naive == fast

        ratio = naive_stats.total_work() / max(exec_stats.total_work(), 1)
        ratios.append(ratio)
        rows.append(
            (n, naive_stats.predicate_evals, exec_stats.hash_probes,
             naive_stats.total_work(), exec_stats.total_work(),
             speedup(naive_stats.total_work(), exec_stats.total_work()))
        )
    print_table(
        ["N", "naive pred evals", "hash probes", "naive work", "plan work", "speedup"],
        rows,
        title=f"P1 — {label}: nested loop vs hash plan",
    )
    return ratios


def test_semijoin_sweep(benchmark):
    ratios = sweep(semijoin_query, "semijoin (Rule 1, ∃)")
    # the win grows with scale (superlinear separation)
    assert ratios[-1] > ratios[0] * 2
    assert ratios[-1] > 10

    db = generate_xy(SIZES[-1], SIZES[-1], key_domain=SIZES[-1] // 2, seed=1)
    plan_expr = optimize(semijoin_query()).expr
    benchmark(lambda: Executor(db).execute(plan_expr))


def test_antijoin_sweep(benchmark):
    ratios = sweep(antijoin_query, "antijoin (Rule 1, ∄)")
    assert ratios[-1] > ratios[0] * 2

    db = generate_xy(SIZES[-1], SIZES[-1], key_domain=SIZES[-1] // 2, seed=1)
    plan_expr = optimize(antijoin_query()).expr
    benchmark(lambda: Executor(db).execute(plan_expr))


def test_naive_baseline_timing(benchmark):
    """Wall-clock baseline: the nested-loop execution itself, for the
    benchmark table comparison."""
    db = generate_xy(100, 100, key_domain=50, seed=1)
    query = semijoin_query()
    benchmark(lambda: Interpreter(db).eval(query))
