"""Q1–Q6 — the paper's example queries through the full pipeline.

For each of the six example queries (four OOSQL-level from Section 2, the
Section 4 algebra-level Examples 4–6) this bench:

* optimizes the query with the Section 4 strategy,
* asserts the chosen option and target operator the paper prescribes,
* checks naive == optimized == physically-executed results,
* reports the work counters (naive nested-loop vs optimized plan).

The timed section executes the optimized physical plans.
"""

from repro.adl import ast as A
from repro.adl.pretty import pretty
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.rewrite.strategy import Optimizer
from repro.translate import compile_oosql
from repro.workload.harness import print_table, speedup
from repro.workload.paper_db import (
    example_database,
    example_schema,
    section4_catalog,
    section4_database,
)
from repro.workload.queries import (
    ALGEBRA_EXAMPLES,
    OOSQL_EXAMPLES,
)

EXPECTED_OPTIONS = {
    "example-1": "none-needed",   # select-clause nesting over an attribute
    "example-2": "none-needed",   # from-clause nesting fuses during normalize
    "example-3.1": "relational",  # superseteq over blocks -> antijoin
    "example-3.2": "none-needed", # quantifier over a set-valued attribute
}


def test_example_queries(benchmark):
    schema = example_schema()
    db = example_database()
    opt = Optimizer(schema)

    rows = []
    plans = []

    for name, text in OOSQL_EXAMPLES.items():
        adl = compile_oosql(text, schema)
        result = opt.optimize(adl)
        assert result.option == EXPECTED_OPTIONS[name], name

        naive_stats = Stats()
        naive = Interpreter(db, naive_stats).eval(adl)
        exec_stats = Stats()
        fast = Executor(db, exec_stats).execute(result.expr)
        assert naive == fast, name

        rows.append(
            (name, result.option, naive_stats.total_work(), exec_stats.total_work(),
             speedup(naive_stats.total_work(), exec_stats.total_work()))
        )
        plans.append((db, result.expr))

    cat = section4_catalog()
    s4db = section4_database(dangling_refs=1)
    opt4 = Optimizer(cat)
    expected_ops = {"example-4": A.AntiJoin, "example-5": A.SemiJoin, "example-6": A.NestJoin}

    for example in ALGEBRA_EXAMPLES:
        query = example.build()
        result = opt4.optimize(query)
        assert result.set_oriented, example.name
        assert any(
            isinstance(n, expected_ops[example.name]) for n in result.expr.walk()
        ), example.name

        naive_stats = Stats()
        naive = Interpreter(s4db, naive_stats).eval(query)
        exec_stats = Stats()
        fast = Executor(s4db, exec_stats).execute(result.expr)
        assert naive == fast, example.name

        rows.append(
            (example.name, result.option, naive_stats.total_work(),
             exec_stats.total_work(),
             speedup(naive_stats.total_work(), exec_stats.total_work()))
        )
        plans.append((s4db, result.expr))

    print_table(
        ["query", "option chosen", "naive work", "optimized work", "speedup"],
        rows,
        title="Example Queries 1-6 — strategy outcome and work counters",
    )

    def run_all_optimized():
        for run_db, expr in plans:
            Executor(run_db).execute(expr)

    benchmark(run_all_optimized)
