"""F3 — Figure 3: the nestjoin example.

Regenerates the figure: ``X ⊣⟨x,y : x.b = y.d ; y ; ys⟩ Y`` on the
figure's instance — every left tuple concatenated with the set of its
matching right tuples, the dangling tuple keeping an empty set.  The timed
section compares the hash nestjoin against its nested-loop implementation.
"""

from repro.adl import builders as B
from repro.adl.pretty import pretty
from repro.datamodel import format_value
from repro.engine.interpreter import Interpreter
from repro.engine.plan import ExecRuntime, HashJoinBase, NestedLoopJoin, Scan
from repro.engine.stats import Stats
from repro.adl import ast as A
from repro.workload.harness import print_table
from repro.workload.paper_db import figure3_database, figure3_tables
from repro.workload.queries import figure3_nestjoin


def test_figure3_nestjoin(benchmark):
    db = figure3_database()
    expr = figure3_nestjoin()
    out = Interpreter(db).eval(expr)

    rows = sorted(
        ((t["a"], t["b"], format_value(t["ys"])) for t in out),
    )
    print_table(
        ["a", "b", "ys = matching Y tuples"],
        rows,
        title=f"Figure 3 — Nestjoin Example — {pretty(expr)}",
    )

    by_ab = {(t["a"], t["b"]): t["ys"] for t in out}
    # matches on b = 1: both Y tuples with d = 1
    assert len(by_ab[(1, 1)]) == 2
    assert len(by_ab[(2, 1)]) == 2
    # dangling left tuple kept with the empty set
    assert by_ab[(3, 3)] == frozenset()
    assert len(out) == 3

    # physical: hash vs nested loop
    key_l = B.attr(B.var("x"), "b")
    key_r = B.attr(B.var("y"), "d")
    hash_plan = HashJoinBase(
        "nestjoin", "x", "y", (key_l,), (key_r,), A.Literal(True),
        Scan("X"), Scan("Y"), as_attr="ys", result=A.Var("y"),
    )
    nl_plan = NestedLoopJoin(
        "nestjoin", "x", "y", B.eq(key_l, key_r),
        Scan("X"), Scan("Y"), as_attr="ys", result=A.Var("y"),
    )
    assert hash_plan.execute(ExecRuntime(db, Stats())) == out
    assert nl_plan.execute(ExecRuntime(db, Stats())) == out

    benchmark(lambda: hash_plan.execute(ExecRuntime(db, Stats())))


def test_nestjoin_implementation_ablation(benchmark):
    """Section 6.1: 'common join implementation methods like the sort-merge
    join, or the hash join can be adapted' — all three adaptations on a
    scaled workload, work counters compared."""
    from repro.engine.nestjoin_impls import SortMergeNestJoin
    from repro.workload.generator import generate_xy
    from repro.workload.harness import print_table

    db = generate_xy(200, 200, key_domain=80, seed=6)
    key_l = B.attr(B.var("x"), "a")
    key_r = B.attr(B.var("y"), "d")

    plans = {
        "hash nestjoin": HashJoinBase(
            "nestjoin", "x", "y", (key_l,), (key_r,), A.Literal(True),
            Scan("X"), Scan("Y"), as_attr="g", result=A.Var("y"),
        ),
        "sort-merge nestjoin": SortMergeNestJoin(
            "x", "y", key_l, key_r, A.Literal(True),
            Scan("X"), Scan("Y"), "g", A.Var("y"),
        ),
        "nested-loop nestjoin": NestedLoopJoin(
            "nestjoin", "x", "y", B.eq(key_l, key_r),
            Scan("X"), Scan("Y"), as_attr="g", result=A.Var("y"),
        ),
    }

    results = {}
    works = {}
    for name, plan in plans.items():
        stats = Stats()
        results[name] = plan.execute(ExecRuntime(db, stats))
        works[name] = stats.total_work()

    assert len(set(map(frozenset, results.values()))) == 1  # all agree

    print_table(
        ["implementation", "work (N=200)"],
        sorted(works.items(), key=lambda kv: kv[1]),
        title="Figure 3 follow-up — nestjoin implementation ablation (Section 6.1)",
    )
    # both adapted methods beat nested loops decisively
    assert works["hash nestjoin"] < works["nested-loop nestjoin"] / 5
    assert works["sort-merge nestjoin"] < works["nested-loop nestjoin"] / 5

    hash_plan = plans["hash nestjoin"]
    benchmark(lambda: hash_plan.execute(ExecRuntime(db, Stats())))
