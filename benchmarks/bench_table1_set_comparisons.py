"""T1 — Table 1: rewriting set comparison operations into quantifiers.

Regenerates the paper's Table 1: every set comparison operator, its
quantifier expansion (printed in the paper's notation), and an evaluation-
based verification that both sides agree on every pair of subsets of a
3-element universe.  The timed section measures the expansion machinery
itself (it runs inside the optimizer on every query).
"""

import itertools

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.pretty import pretty
from repro.engine.interpreter import Interpreter
from repro.rewrite.rules_setcmp import expand_setcompare
from repro.storage import MemoryDatabase
from repro.workload.harness import print_table

UNIVERSE = [1, 2, 3]
SUBSETS = [
    frozenset(c)
    for n in range(4)
    for c in itertools.combinations(UNIVERSE, n)
]

ROWS = [
    ("x.c ∈ Y'", "in"),
    ("x.c ⊂ Y'", "subset"),
    ("x.c ⊆ Y'", "subseteq"),
    ("x.c = Y'", "seteq"),
    ("x.c ⊇ Y'", "supseteq"),
    ("x.c ⊃ Y'", "supset"),
    ("x.c ∋ Y'", "ni"),
]

GROUND_TRUTH = {
    "subset": lambda c, y: c < y,
    "subseteq": lambda c, y: c <= y,
    "seteq": lambda c, y: c == y,
    "supseteq": lambda c, y: c >= y,
    "supset": lambda c, y: c > y,
}


def verify_operator(op):
    """Exhaustively check one Table 1 row; returns the number of cases."""
    interp = Interpreter(MemoryDatabase({}))
    cases = 0
    if op == "in":
        for element in UNIVERSE + [9]:
            for y in SUBSETS:
                expanded = expand_setcompare(A.SetCompare(op, B.lit(element), B.lit(y)))
                assert interp.eval(expanded) == (element in y)
                cases += 1
        return cases
    if op == "ni":
        outer = frozenset({frozenset({1}), frozenset({1, 2}), frozenset()})
        for y in SUBSETS:
            expanded = expand_setcompare(A.SetCompare(op, B.lit(outer), B.lit(y)))
            assert interp.eval(expanded) == (y in outer)
            cases += 1
        return cases
    truth = GROUND_TRUTH[op]
    for c, y in itertools.product(SUBSETS, repeat=2):
        expanded = expand_setcompare(A.SetCompare(op, B.lit(c), B.lit(y)))
        assert interp.eval(expanded) == truth(c, y)
        cases += 1
    return cases


def test_table1_rows(benchmark):
    c = B.attr(B.var("x"), "c")
    y_prime = B.var("Yp")
    table_rows = []
    total_cases = 0
    for label, op in ROWS:
        expansion = expand_setcompare(A.SetCompare(op, c, y_prime))
        cases = verify_operator(op)
        total_cases += cases
        table_rows.append((label, pretty(expansion), f"{cases} cases ok"))

    print_table(
        ["set comparison", "quantifier expression", "verified"],
        table_rows,
        title="Table 1 — Rewriting Set Comparison Operations (reproduced)",
    )

    def expand_all():
        for _, op in ROWS:
            expand_setcompare(A.SetCompare(op, c, y_prime))

    benchmark(expand_all)
    # 5 set-set operators × 64 subset pairs + 32 membership + 8 containment
    assert total_cases == 360
