"""F1 — Figure 1: nesting involving a set-valued attribute.

Regenerates the figure: the query ``σ[x : x.c ⊆ σ[y : x.a = y.d](Y)](X)``
on the figure's instance, showing the per-tuple subquery results and the
nested-loop answer (both X-tuples qualify — including the dangling one).
The timed section measures the naive nested-loop evaluation that motivates
the whole paper.
"""

from repro.adl import builders as B
from repro.adl.pretty import pretty
from repro.datamodel import format_value
from repro.engine.interpreter import Interpreter
from repro.engine.stats import Stats
from repro.workload.harness import print_table
from repro.workload.paper_db import figure2_database, figure2_tables
from repro.workload.queries import figure1_query


def test_figure1(benchmark):
    db = figure2_database()
    query = figure1_query()
    x_rows, _ = figure2_tables()

    interp = Interpreter(db)
    # per-tuple inner block results, as drawn in the figure
    inner = B.sel("y", B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")), B.extent("Y"))
    rows = []
    for x in sorted(x_rows, key=lambda t: t["a"]):
        y_prime = interp.eval(inner, {"x": x})
        holds = interp.eval(query.pred, {"x": x})
        rows.append((format_value(x), format_value(y_prime), holds))
    print_table(
        ["x ∈ X", "Y' = σ[y : x.a = y.d](Y)", "x.c ⊆ Y'"],
        rows,
        title=f"Figure 1 — {pretty(query)}",
    )

    result = interp.eval(query)
    assert {t["a"] for t in result} == {1, 2}  # dangling (a=2, c=∅) included

    stats = Stats()
    benchmark(lambda: Interpreter(db, stats).eval(query))
