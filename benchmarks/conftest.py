"""Benchmark-suite conftest: surface the regenerated paper artifacts.

Each benchmark prints the table/figure it regenerates through
``repro.workload.harness.print_table``; pytest captures per-test stdout,
so the registry is flushed here into the terminal summary — the teed
benchmark log then contains every reproduced artifact after the dots.
"""

from repro.workload import harness


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not harness.RENDERED_TABLES:
        return
    terminalreporter.section("reproduced paper artifacts")
    for text in harness.RENDERED_TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
