"""T2 — Table 2: predicates rewritable into (negated) existential form.

Regenerates the paper's Table 2 rows:

    Y' = ∅               ≡  ¬∃y ∈ Y' • true
    count(Y') = 0        ≡  ¬∃y ∈ Y' • true
    x.c ∩ Y' = ∅         ≡  ¬∃y ∈ Y' • y ∈ x.c
    ∀z ∈ x.c • z ⊇ Y'    ≡  ¬∃y ∈ Y' • ∃z ∈ x.c • y ∉ z

The first three are direct rules; the fourth is *derived* by the engine
(expansion + exchange + negation pushing — Rewriting Example 3), so this
bench runs it through the rule pipeline and checks the derived form.
Each row is verified by evaluation on randomized databases.
"""

import random

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.pretty import pretty
from repro.datamodel import VTuple, vset
from repro.engine.interpreter import Interpreter
from repro.rewrite.common import RewriteContext
from repro.rewrite.engine import RewriteEngine
from repro.rewrite.rules_quantifier import QUANTIFIER_RULES
from repro.rewrite.rules_setcmp import SETCMP_RULES
from repro.rewrite.rules_simplify import CLEANUP_RULES
from repro.storage import MemoryDatabase
from repro.workload.harness import print_table

SUB = B.sel("y", B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")), B.extent("Y"))


def random_db(rng):
    y_rows = [VTuple(d=rng.randrange(4), e=rng.randrange(4)) for _ in range(rng.randrange(6))]
    return MemoryDatabase({"Y": y_rows})


def random_x(rng, nested=False):
    if nested:
        c = vset(*(vset(*(VTuple(d=rng.randrange(4), e=rng.randrange(4))
                          for _ in range(rng.randrange(3))))
                   for _ in range(rng.randrange(3))))
    else:
        c = vset(*(VTuple(d=rng.randrange(4), e=rng.randrange(4))
                   for _ in range(rng.randrange(3))))
    return VTuple(a=rng.randrange(4), c=c)


def verify(pred, rewritten, nested_c=False, trials=60):
    rng = random.Random(7)
    checked = 0
    for _ in range(trials):
        db = random_db(rng)
        interp = Interpreter(db)
        env = {"x": random_x(rng, nested=nested_c)}
        assert interp.eval(pred, env) == interp.eval(rewritten, env)
        checked += 1
    return checked


def test_table2_rows(benchmark):
    ctx = RewriteContext()
    engine = RewriteEngine(ctx)
    rules = SETCMP_RULES + QUANTIFIER_RULES + CLEANUP_RULES

    rows_spec = [
        ("Y' = ∅", B.is_empty(SUB), False),
        ("count(Y') = 0", B.eq(B.count(SUB), 0), False),
        ("x.c ∩ Y' = ∅", B.disjoint(B.attr(B.var("x"), "c"), SUB), False),
        ("∀z ∈ x.c • z ⊇ Y'",
         B.forall("z", B.attr(B.var("x"), "c"), B.supseteq(B.var("z"), SUB)),
         True),
    ]

    table_rows = []
    for label, pred, nested_c in rows_spec:
        rewritten = engine.run(pred, rules)
        cases = verify(pred, rewritten, nested_c=nested_c)
        # every row must reach (negated-)existential form over Y
        top = rewritten.operand if isinstance(rewritten, A.Not) else rewritten
        assert isinstance(top, A.Exists), label
        table_rows.append((label, pretty(rewritten), f"{cases} dbs ok"))

    print_table(
        ["P(x, Y')", "quantifier expression", "verified"],
        table_rows,
        title="Table 2 — Rewriting Predicates (reproduced)",
    )

    benchmark(lambda: [engine.run(pred, rules) for _, pred, _ in rows_spec])
