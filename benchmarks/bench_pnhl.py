"""P3 — PNHL vs unnest–join–nest (Section 6.2, [DeLa92] substrate).

The nested natural-join workload: each SUPPLIER tuple's clustered
``parts`` set joined with the flat PART table.  Competitors:

* **PNHL** under several memory budgets (segments of the *flat* build
  table; outer rescanned per segment),
* the **μ–⋈–ν** restructuring baseline (correct only for tuples with
  non-empty, matching part sets — its loss count is reported).

Shapes to reproduce (the [DeLa92] claims the paper relays):

* PNHL beats unnest–join–nest on total work (no duplication of parent
  attributes, no re-grouping pass) — at every memory budget tested;
* PNHL degrades gracefully as memory shrinks (work grows by one outer
  rescan per extra segment, result unchanged);
* the baseline silently drops empty/dangling outer tuples.
"""

import random

import pytest

from repro.datamodel import VTuple, vset
from repro.engine.pnhl import pnhl_join, unnest_join_nest
from repro.engine.stats import Stats
from repro.workload.harness import print_table, speedup

N_OUTER = 200
N_INNER = 400


def build_workload(seed=0, empty_fraction=0.1, fanout=4):
    rng = random.Random(seed)
    inner = [VTuple(pid2=i, pname=f"p{i}", price=rng.randrange(100))
             for i in range(N_INNER)]
    outer = []
    for i in range(N_OUTER):
        if rng.random() < empty_fraction:
            members = frozenset()
        else:
            members = vset(*(VTuple(pid=rng.randrange(N_INNER + 50))
                             for _ in range(rng.randint(1, fanout))))
        outer.append(VTuple(sid=i, parts=members))
    return outer, inner


def member_key(m):
    return m["pid"]


def inner_key(y):
    return y["pid2"]


def test_pnhl_vs_unnest_join_nest(benchmark):
    outer, inner = build_workload()

    reference = pnhl_join(outer, "parts", inner, member_key, inner_key)

    rows = []
    budgets = [None, N_INNER // 2, N_INNER // 4, N_INNER // 8]
    pnhl_works = []
    for budget in budgets:
        stats = Stats()
        out = pnhl_join(outer, "parts", inner, member_key, inner_key,
                        memory_budget=budget, stats=stats)
        assert out == reference  # budget-invariant results
        label = "∞" if budget is None else str(budget)
        pnhl_works.append(stats.total_work())
        rows.append((f"PNHL (budget={label})", stats.total_work(),
                     stats.partitions_spilled, len(out), 0))

    base_stats = Stats()
    base = unnest_join_nest(outer, "parts", inner, member_key, inner_key,
                            stats=base_stats)
    lost = len(reference) - len(base)
    rows.append(("unnest-join-nest", base_stats.total_work(), 0, len(base), lost))

    print_table(
        ["algorithm", "work", "spilled segments", "|result|", "tuples lost"],
        rows,
        title="P3 — PNHL vs μ-⋈-ν on SUPPLIER.parts ⋈ PART "
              f"(|outer|={N_OUTER}, |inner|={N_INNER})",
    )

    # shape: in-memory PNHL does less work than restructuring
    assert pnhl_works[0] < base_stats.total_work()
    # graceful degradation: work grows monotonically as memory shrinks
    assert pnhl_works == sorted(pnhl_works)
    # the baseline's loss equals the empty/dangling outer tuples
    assert lost == sum(1 for t in reference if t["parts"] == frozenset())
    assert lost > 0

    benchmark(lambda: pnhl_join(outer, "parts", inner, member_key, inner_key))


def test_pnhl_memory_sweep_timing(benchmark):
    """Wall-clock of the tightest-memory configuration (worst case)."""
    outer, inner = build_workload()
    benchmark(
        lambda: pnhl_join(outer, "parts", inner, member_key, inner_key,
                          memory_budget=N_INNER // 8)
    )


def test_baseline_timing(benchmark):
    outer, inner = build_workload()
    benchmark(lambda: unnest_join_nest(outer, "parts", inner, member_key, inner_key))
