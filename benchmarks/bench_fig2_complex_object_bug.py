"""F2 — Figure 2: the Complex Object bug, reproduced end to end.

Regenerates the figure's pipeline on its exact instance:

1. the join ``X ⋈⟨x,y : x.a = y.d⟩ Y`` (the dangling tuple vanishes here),
2. the nest ``ν`` grouping the join result,
3. the final select/project — and the comparison against the nested
   query's answer, exhibiting the lost tuple ``(a = 2, c = ∅)``.

Then both repairs are applied — the outerjoin ([GaWo87]) and the nestjoin
(Section 6.1) — and shown to restore the correct answer.  The timed
section measures the full buggy pipeline vs the nestjoin pipeline.
"""

from repro.adl import ast as A
from repro.adl.pretty import pretty
from repro.adl.typecheck import TypeChecker
from repro.datamodel import format_value, sort_key
from repro.engine.interpreter import Interpreter
from repro.rewrite.common import RewriteContext
from repro.rewrite.rules_grouping import grouping_outerjoin, unnest_by_grouping
from repro.rewrite.rules_nestjoin import nestjoin_where
from repro.workload.harness import print_table
from repro.workload.paper_db import figure2_catalog, figure2_database
from repro.workload.queries import figure1_query


def fmt_set(value):
    return ", ".join(format_value(v) for v in sorted(value, key=sort_key)) or "∅"


def test_figure2_complex_object_bug(benchmark):
    ctx = RewriteContext(checker=TypeChecker(figure2_catalog()))
    db = figure2_database()
    interp = Interpreter(db)
    query = figure1_query()

    nested_answer = interp.eval(query)

    buggy = unnest_by_grouping(query, ctx)
    # expose the intermediates like the figure does
    select = buggy.source
    nest = select.source
    join = nest.source
    join_result = interp.eval(join)
    nest_result = interp.eval(nest)
    buggy_answer = interp.eval(buggy)

    print_table(
        ["stage", "result"],
        [
            ("X ⋈ Y", fmt_set(join_result)),
            ("ν(X ⋈ Y)", fmt_set(nest_result)),
            ("π(σ(ν(X ⋈ Y)))", fmt_set(buggy_answer)),
            ("nested query", fmt_set(nested_answer)),
            ("LOST (the bug)", fmt_set(nested_answer - buggy_answer)),
        ],
        title=f"Figure 2 — The Complex Object Bug — {pretty(query)}",
    )

    # the bug, asserted: exactly the dangling tuple is lost
    assert buggy_answer != nested_answer
    lost = nested_answer - buggy_answer
    assert {t["a"] for t in lost} == {2}
    assert all(t["c"] == frozenset() for t in lost)

    # repairs restore the nested semantics
    repaired_oj = grouping_outerjoin.apply(query, ctx)
    repaired_nj = nestjoin_where.apply(query, ctx)
    assert interp.eval(repaired_oj) == nested_answer
    assert interp.eval(repaired_nj) == nested_answer

    print_table(
        ["plan", "answer", "correct?"],
        [
            ("grouping (join)", fmt_set(buggy_answer), buggy_answer == nested_answer),
            ("grouping (outerjoin repair)", fmt_set(interp.eval(repaired_oj)), True),
            ("nestjoin (Section 6.1)", fmt_set(interp.eval(repaired_nj)), True),
        ],
        title="Figure 2 — repairs",
    )

    benchmark(lambda: Interpreter(db).eval(repaired_nj))
