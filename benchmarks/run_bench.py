"""Benchmark harness: per-PR perf gates, oracle-checked.

Ten suites:

**PR 10** (``--pr10``, also default) — observability: the per-operator
tracing layer must be free when unused.  ``untraced_overhead``
(**checked**) compares draining the raw ``iterate()`` generators
against the shipped ``stream()`` path with no recorder attached — the
hoisted-check contract (one ``is None`` test per operator open) must
hold within the PR-6 ±10% envelope, and the checked gate is the
envelope itself.  ``traced_overhead`` records the honest price of an
attached ``TraceRecorder`` (a clock read per ``next()`` plus counter
bumps), un-gated — tracing is opt-in.  ``misestimate_detection``
verifies EXPLAIN ANALYZE flags a seeded skew misestimate past the
q-error threshold, rows oracle-checked.  Outcome lands in
``BENCH_PR10.json``.

**PR 9** (``--pr9``, also default) — query shredding: the Figure-3
nestjoin over large co-partitioned, dangling-heavy operands is
decomposed into flat subplans (a partition-wise inner flat join plus an
outer re-stream) reassembled by a stitch operator; the shredded form is
a *priced* optimizer candidate and the suite asserts it is chosen by
cost, planned with an ``Exchange`` over a ``PartitionedHashJoin``,
executed batched on a forked pool, oracle-checked against the serial
fused nestjoin, and **gated ≥ 2x** on the work-model critical path.  A
planner-decision record proves paper-scale data stays unshredded.
Outcome lands in ``BENCH_PR9.json``.

**PR 8** (``--pr8``, also default) — vectorized batch execution: the
same physical plans run tuple-at-a-time (``ExecRuntime()``) and batched
(``ExecRuntime(batch_size=1024)``) over *paged* stores, every workload
result-checked batch == tuple (and one small case anchored to the
reference interpreter).  ``scan_filter_compute`` — a compute-rich
covered predicate where the columnar kernels shine — **is gated ≥ 5x**;
``hash_semijoin_lowmatch`` — key-extraction-bound probing — **is gated
≥ 2x**; the simple/conjunctive filters and the antijoin ride the 1.0x
checked floor; ``hash_join_wide`` is recorded unchecked as the honest
cap (per-pair emission dominates, batching cannot help).  Outcome lands
in ``BENCH_PR8.json``.

**PR 7** (``--pr7``, also default) — snapshot isolation & overload:
``snapshot_overhead`` records what epoch pinning costs on the fault-free
path (isolation on vs off over one warmed sweep, expected within ±10%);
``shed_under_saturation`` saturates a 1-worker service past its queue
depth and records that the excess is refused with ``OverloadError``
within the queue-wait deadline instead of queueing unboundedly;
``warm_start`` (gated at the 1.0x checked floor) measures the first
query of a restored service (plan-cache warm start) against a cold
service's first query.  Outcome lands in ``BENCH_PR7.json``.

**PR 6** (``--pr6``, also default) — fault-tolerant execution:
deterministic fault injection through the parallel tier, measured.
``transient_retry`` (gated at the 1.0x checked floor) recovers a
transient fault by one in-mode retry and must still clear the work-model
floor; ``crash_recovery`` kills a real pool worker and measures inline
degradation; ``deadline_timeout`` cancels a 30 s injected hang within a
0.25 s budget and verifies the pool is reclaimed; ``fault_free_overhead``
records what the PR-6 hooks cost when nothing fails (deadline branches
are hoisted — expected ≈ 0).  Outcome lands in ``BENCH_PR6.json``.

**PR 5** (``--pr5``, also default) — partition-parallel execution:
partitioned joins through the :mod:`repro.shard` subsystem against the
serial engine, every workload oracle-checked (parallel, serial
cost-based and heuristic plans must agree; the reference interpreter
confirms a small-scale variant).

* ``co_partitioned_join`` — the acceptance workload: a large 1:1 join
  over extents hash-partitioned on their join keys; the planner picks a
  partition-wise plan and fragments ship to a 4-worker ``fork`` pool.
  **Gated ≥ 2x.**
* ``skewed_partitions`` — the same join under heavy key skew: the
  critical path is the biggest shard, so the speedup degrades but must
  stay above the floor.
* ``broadcast_join`` / ``repartition_join`` — the other two exchange
  strategies, gated at the 1.0x floor.
* ``serial_below_threshold`` — records (untimed) that the planner
  provably keeps the paper's own tiny data on the serial plan.

**Metric.**  The *gated* speedup is the work-model critical path:
``serial total_work / (max per-fragment total_work + gathered rows)``,
computed from measured execution counters — the same counters the whole
reproduction uses as its "currency" (``repro.engine.stats``).  Wall
clock is recorded alongside but **not gated**: real wall-parallelism
needs real cores (single-core CI containers serialize the pool), and
PR 4 set the precedent of not gating GIL/scheduler-shaped wall numbers.
Outcome lands in ``BENCH_PR5.json``.

**PR 4** (``--pr4``, also default) — the query service layer: repeated
parameterized queries through :class:`repro.service.QueryService`.

* ``plan_cache_cold_vs_warm`` — the same prepared statement executed
  with rotating bindings against a cache-disabled service (every call
  re-runs rewrite/joinorder/planning) and a caching one (every call
  after the first skips those phases and goes straight to the compiled
  physical plan; the raw-text entry point still parses per call to
  compute the shape key).  Every
  binding's result is oracle-checked against the reference interpreter;
  the suite *requires* the warm path to be ≥ 5x the cold path.
* ``concurrent_sessions`` — 8 sessions over one shared database through
  the bounded worker pool; results must be identical to serial execution
  (per-execution runtimes, no shared mutable state).  Throughput is
  recorded but not gated (the GIL makes concurrent wall-clock noisy).
* ``invalidation_replan`` — a warm cached plan, then ``create_index()``:
  the version bump must force a replan whose new plan actually probes the
  new index; recorded, results oracle-checked, not timed.

Outcome lands in ``BENCH_PR4.json`` with the same 1.0x checked-floor
gate the other suites use (plus the explicit 5x warm-cache gate).

**PR 3** — DP join reordering vs the rewriter's left-to-right order, both
under cost-based physical planning (``Executor(reorder=False)`` is the
baseline), on multi-join chain/star/cross-product workloads where the
syntactic order is bad.  Every workload is oracle-checked (reordered,
unordered and heuristic plans must agree; the reference interpreter
confirms where it is feasible), the cost model's estimated improvement is
recorded alongside the measured one, and the outcome lands in
``BENCH_PR3.json``.

**PR 2 (also default)** — cost-based physical planning vs the PR-1
heuristic planner, same logical queries, same engine, plans chosen
differently:

* ``indexed_lookup_join`` / ``indexed_semijoin`` — small probe side
  against a large indexed extent: the cost-based planner picks an index
  nested-loop join (no scan, no transient hash build of the large side);
* ``selective_indexed_filter`` — an equality selection over an indexed
  attribute becomes a single index probe instead of a full scan;
* ``build_side_skew`` — no index: with skewed operand cardinalities the
  cost-based hash join builds on the *smaller* side (the heuristic always
  builds right); both orientations' ``explain()`` output is recorded so
  the flip is visible.

Every workload is oracle-checked against the reference interpreter
before timing, both planners must agree exactly, and the machine-readable
outcome lands in ``BENCH_PR2.json``.  Catalog ``analyze()`` and index
builds happen once, outside the timed region — statistics and persistent
indexes are amortized across queries, which is the point of a catalog.

**PR 1** (``--pr1``) — streaming + compiled expressions vs the
materializing interpreted engine (same physical plans), written to
``BENCH_PR1.json``.

Every suite marks its robust workloads ``"checked": true`` and reports
``checked_floor`` (their minimum speedup); a suite *fails* when that
floor regresses below 1.0x — the CI smoke job runs this script, so a
reordering or planning regression turns CI red.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--reps N] [--pr1 | --pr3 | --all]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.adl import ast as A  # noqa: E402
from repro.adl import builders as B  # noqa: E402
from repro.datamodel.errors import QueryTimeoutError  # noqa: E402
from repro.engine.interpreter import Interpreter  # noqa: E402
from repro.engine.plan import (  # noqa: E402
    ExecRuntime,
    Filter,
    HashJoinBase,
    NestedLoopJoin,
    ProjectOp,
    Scan,
)
from repro.engine.planner import Executor  # noqa: E402
from repro.engine.stats import Stats  # noqa: E402
from repro.storage import Catalog, MemoryDatabase  # noqa: E402
from repro.workload.generator import (  # noqa: E402
    generate_database,
    generate_join_database,
    generate_xy,
)
from repro.workload.harness import render_table  # noqa: E402

DEFAULT_REPS = 5

XA = B.attr(B.var("x"), "a")
YD = B.attr(B.var("y"), "d")
EQ = B.eq(XA, YD)
EQ_SWAPPED = B.eq(YD, XA)
TRUE = A.Literal(True)


def _checked_floor(report: dict) -> dict:
    """Annotate a suite report with its checked-speedup floor gate."""
    checked = [w["speedup"] for w in report["workloads"] if w.get("checked")]
    report["checked_floor"] = min(checked) if checked else None
    report["meets_floor_1x"] = all(s >= 1.0 for s in checked)
    return report


# ---------------------------------------------------------------------------
# PR 5: partition-parallel execution vs the serial engine
# ---------------------------------------------------------------------------


def _pr5_db(n, key_fn, y_filter_mod=7):
    from repro.datamodel import VTuple

    return MemoryDatabase(
        {
            "X": [VTuple(a=key_fn(i), v=i % 100, i=i) for i in range(n)],
            "Y": [VTuple(d=key_fn(i), w=i % y_filter_mod) for i in range(n)],
        }
    )


def _pr5_expr():
    # join on a = d with a selective filter on the probe-side payload, so
    # the gather moves a fraction of the rows the join touches
    return B.join(
        B.extent("X"),
        B.sel("y", B.lt(B.attr(B.var("y"), "w"), B.lit(2)), B.extent("Y")),
        "x", "y",
        B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")),
    )


def _pr5_workloads():
    """Yield (name, db, partition_spec, expr, note) — partitioning is
    registered (untimed) per workload; ``partition_spec`` maps extent →
    (attr, parts), empty for the repartition workload."""
    n = 24000
    yield (
        "co_partitioned_join",
        _pr5_db(n, lambda i: i),
        {"X": ("a", 4), "Y": ("d", 4)},
        _pr5_expr(),
        f"{n} x {n} 1:1 join, both sides partitioned on the join key (4 shards)",
    )

    def skewed(i):  # ~40% of rows share one key: one shard dominates
        return 1 if i % 5 < 2 else i
    yield (
        "skewed_partitions",
        _pr5_db(n, skewed),
        {"X": ("a", 4), "Y": ("d", 4)},
        _pr5_expr(),
        "same join, ~40% of keys collapse onto one shard (critical path = big shard)",
    )

    from repro.datamodel import VTuple

    broadcast_db = MemoryDatabase(
        {
            "X": [VTuple(a=i % 64, v=i % 100, i=i) for i in range(n)],
            "Y": [VTuple(d=i, w=i % 7) for i in range(64)],
        }
    )
    yield (
        "broadcast_join",
        broadcast_db,
        {"X": ("v", 4)},  # partitioned, but not on the join key
        _pr5_expr(),
        f"{n}-row partitioned extent joins a 64-row extent: small side broadcast",
    )

    yield (
        "repartition_join",
        _pr5_db(12000, lambda i: i % 6000),
        {},  # nothing partitioned: shared-scan repartition, 4-way
        _pr5_expr(),
        "12000 x 12000 join, no stored partitioning: both inputs hash-filtered per fragment",
    )


def _run_pr5(reps: int) -> dict:
    from repro.shard import ParallelExecutor
    from repro.workload.paper_db import section4_database

    workers = 4
    workloads = []

    # small-scale interpreter anchor (untimed): the parallel plan's rows
    # match the reference interpreter exactly
    small = _pr5_db(600, lambda i: i % 120)
    small_catalog = Catalog(small)
    small_catalog.analyze()
    small_catalog.partition("X", "a", 4)
    small_catalog.partition("Y", "d", 4)
    with ParallelExecutor(small, small_catalog, workers=workers, mode="inline") as parallel:
        got = Executor(small, catalog=small_catalog, parallel=parallel).execute(_pr5_expr())
    if got != Interpreter(small).eval(_pr5_expr()):
        raise AssertionError("pr5 small-scale workload diverged from the interpreter oracle")

    for name, db, partition_spec, expr, note in _pr5_workloads():
        catalog = Catalog(db)
        catalog.analyze()
        for extent, (attr, parts) in partition_spec.items():
            catalog.partition(extent, attr, parts)

        serial_stats = Stats()
        serial = Executor(db, serial_stats, catalog=catalog)
        heuristic = Executor(db)

        with ParallelExecutor(db, catalog, workers=workers, mode="process") as parallel:
            par_executor = Executor(db, Stats(), catalog=catalog, parallel=parallel)
            plan_line = par_executor.explain(expr).splitlines()

            # oracle: parallel == serial cost-based == heuristic plans
            serial_result = serial.execute(expr)
            parallel_result = par_executor.execute(expr)
            if not (parallel_result == serial_result == heuristic.execute(expr)):
                raise AssertionError(f"{name}: parallel result diverged from serial")
            if "Exchange(gather)" not in plan_line[0]:
                raise AssertionError(f"{name}: planner did not pick a parallel plan")

            report = dict(parallel.last_report)
            serial_work = serial_stats.total_work()
            critical = report["critical_path_work"] + report["result_rows"]
            work_speedup = serial_work / critical if critical else float("inf")

            serial_wall = _time_execute(serial, expr, reps)
            parallel_wall = _time_execute(par_executor, expr, reps)

        workloads.append(
            {
                "name": name,
                "note": note,
                "checked": True,
                "results_match_oracle": True,
                "result_cardinality": len(serial_result),
                "plan": plan_line[0] if len(plan_line) == 1 else plan_line[:2],
                "strategy": next(
                    (s for s in ("partition-wise", "broadcast", "repartition")
                     if any(s in line for line in plan_line)),
                    "?",
                ),
                "workers": workers,
                "pool_mode": report["mode"],
                "serial_work": serial_work,
                "per_fragment_work": report["per_fragment_work"],
                "critical_path_work": report["critical_path_work"],
                "gathered_rows": report["result_rows"],
                # the gated metric: serial work over the parallel critical
                # path (largest fragment + coordinator merge)
                "speedup": work_speedup,
                "speedup_metric": "work_model_critical_path",
                "serial_wall_s": serial_wall,
                "parallel_wall_s": parallel_wall,
                # recorded, not gated: needs real cores to show parallelism
                "wall_speedup": serial_wall / parallel_wall if parallel_wall else float("inf"),
            }
        )

    # the threshold record: tiny paper data provably stays serial
    paper = section4_database()
    paper_catalog = Catalog(paper)
    paper_catalog.analyze()
    paper_catalog.partition("SUPPLIER", "eid", 4)
    paper_catalog.partition("PART", "pid", 4)
    paper_expr = B.join(
        B.extent("SUPPLIER"), B.extent("PART"), "s", "p",
        B.eq(B.attr(B.var("s"), "eid"), B.attr(B.var("p"), "pid")),
    )
    with ParallelExecutor(paper, paper_catalog, workers=workers, mode="inline") as parallel:
        paper_plan = Executor(paper, catalog=paper_catalog, parallel=parallel).explain(paper_expr)
    serial_below_threshold = "Exchange" not in paper_plan
    workloads.append(
        {
            "name": "serial_below_threshold",
            "note": "paper Section 4 data, partitioned, 4 workers configured: "
            "estimated work is below the parallelism threshold, serial plan wins",
            "checked": False,  # a planner-decision record, not a timing workload
            "planner_picks_serial": serial_below_threshold,
            "plan": paper_plan.splitlines()[0],
            "speedup": 1.0,
        }
    )
    if not serial_below_threshold:
        raise AssertionError("pr5: planner failed to keep tiny data serial")

    co = workloads[0]
    return _checked_floor(
        {
            "pr": 5,
            "description": "partition-parallel execution (sharded extents, "
            "exchange operators, process-pool fragment executor) vs the "
            "serial engine; gated speedup is the measured work-model "
            "critical path (max per-fragment counters + gather), wall "
            "clock recorded unchecked (single-core containers cannot "
            "show wall parallelism)",
            "engine": "repro.shard (ParallelExecutor, 4 fork workers; "
            "fragments ship as canonical ADL text + shard bindings)",
            "reps": reps,
            "workers": workers,
            "workloads": workloads,
            "co_partitioned_speedup": co["speedup"],
            "meets_2x_co_partitioned": co["speedup"] >= 2.0,
            "planner_serial_below_threshold": serial_below_threshold,
        }
    )


def run_pr5(reps: int) -> bool:
    report = _run_pr5(reps)
    out_path = ROOT / "BENCH_PR5.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    rows = [
        (
            w["name"],
            w.get("strategy", "-"),
            str(w.get("serial_work", "-")),
            str(w.get("critical_path_work", "-")),
            f"{w['speedup']:.1f}x",
            f"{w['wall_speedup']:.2f}x" if "wall_speedup" in w else "-",
        )
        for w in report["workloads"]
        if w["checked"]
    ]
    print(
        render_table(
            ["workload", "strategy", "serial work", "critical path", "speedup", "wall"],
            rows,
            title="PR 5 — partition-parallel execution vs serial engine "
            "(speedup = work-model critical path)",
        )
    )
    threshold = report["workloads"][-1]
    print(f"\nthreshold: paper db stays serial -> {threshold['plan']}")
    ok = report["meets_floor_1x"] and report["meets_2x_co_partitioned"]
    print(
        f"wrote {out_path} (co-partitioned speedup "
        f"{report['co_partitioned_speedup']:.1f}x, meets_2x="
        f"{report['meets_2x_co_partitioned']}, checked floor "
        f"{report['checked_floor']:.1f}x, ok={ok})"
    )
    return ok


# ---------------------------------------------------------------------------
# PR 6: fault-tolerant execution — injection, retry, degradation, deadlines
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# PR 7: snapshot isolation & overload shedding
# ---------------------------------------------------------------------------


def _run_pr7(reps: int) -> dict:
    """Snapshot isolation measured, oracle-checked.

    * ``snapshot_overhead`` — what epoch pinning costs when nothing is
      mutating: one warmed sweep of a semijoin shape with snapshot
      isolation on vs off (same service configuration otherwise);
      recorded, expected within ±10% (a pin is one refcount bump under
      one lock — no preservation happens without a concurrent writer).
    * ``shed_under_saturation`` — a 1-worker service saturated far past
      ``queue_depth``: the excess must be refused with
      :class:`OverloadError` (admission or queue-wait shed) instead of
      queueing unboundedly; refusal/completion counts recorded.
    * ``warm_start`` (**checked**, 1.0x floor) — first query of a
      service restored from a persisted plan cache vs a cold service's
      first query of the same shape (which pays rewrite + join
      enumeration before executing).
    """
    import os
    import tempfile

    from repro.datamodel.errors import OverloadError
    from repro.service import QueryService

    workloads = []

    # -- snapshot_overhead: pinning cost on the quiescent path -------------
    db = _pr5_db(6000, lambda i: i % 600)
    catalog = Catalog(db)
    catalog.analyze()
    text = "select x.i from x in X where exists y in Y : x.a = y.d and y.w < $m"
    bindings = [{"m": m} for m in (1, 2, 3, 4, 5)]
    calls = 40

    def sweep(svc):
        start = time.perf_counter()
        for i in range(calls):
            svc.execute(text, bindings[i % len(bindings)])
        return time.perf_counter() - start

    with QueryService(db, catalog=catalog) as pinned_svc, QueryService(
        db, catalog=catalog, snapshot_isolation=False
    ) as live_svc:
        want = frozenset(live_svc.execute(text, {"m": 3}).rows)
        got = pinned_svc.execute(text, {"m": 3})
        if frozenset(got.rows) != want:
            raise AssertionError("pr7: pinned result diverged from live result")
        if got.epoch != db.epoch:
            raise AssertionError("pr7: result not pinned to the current epoch")
        sweep(pinned_svc)  # warm both plan caches, untimed
        sweep(live_svc)
        pinned_wall = min(sweep(pinned_svc) for _ in range(max(reps, 3)))
        live_wall = min(sweep(live_svc) for _ in range(max(reps, 3)))
        pins = pinned_svc.stats()["pins_taken"]
    if db.epoch_stats()["pinned"] != 0:
        raise AssertionError("pr7: sweep leaked an epoch pin")
    overhead_pct = (pinned_wall - live_wall) / live_wall * 100.0 if live_wall else 0.0
    workloads.append({
        "name": "snapshot_overhead",
        "note": f"{calls}-call warmed semijoin sweep, quiescent store: "
                "snapshot isolation on vs off",
        "checked": False,  # recorded; wall-clock deltas are noisy in CI
        "results_match": True,
        "pins_taken": pins,
        "pinned_wall_s": pinned_wall,
        "live_wall_s": live_wall,
        "overhead_pct": overhead_pct,
        "overhead_within_10pct": overhead_pct <= 10.0,
        "speedup": 1.0,
    })

    # -- shed_under_saturation: refusal beats unbounded queueing -----------
    wait_s = 0.05
    submissions = 12
    with QueryService(db, catalog=catalog, max_workers=1, queue_depth=2,
                      queue_wait_s=wait_s) as svc:
        svc.execute(text, {"m": 5})  # compile untimed
        refused = completed = shed = 0
        with svc.session() as session:
            start = time.perf_counter()
            futures = []
            for i in range(submissions):
                try:
                    futures.append(session.execute_async(text, bindings[i % 5]))
                except OverloadError:
                    refused += 1
            for f in futures:
                try:
                    f.result()
                    completed += 1
                except OverloadError:
                    shed += 1
            elapsed = time.perf_counter() - start
        stats = svc.stats()
    if refused + shed == 0:
        raise AssertionError("pr7: saturation was never shed")
    if db.epoch_stats()["pinned"] != 0:
        raise AssertionError("pr7: shed queries leaked epoch pins")
    workloads.append({
        "name": "shed_under_saturation",
        "note": f"{submissions} async submissions on a 1-worker service "
                f"(queue_depth=2, queue_wait_s={wait_s}); the excess is "
                "refused up front or shed at dequeue, never queued unboundedly",
        "checked": False,
        "submissions": submissions,
        "admission_refused": refused,
        "queue_wait_shed": stats["shed_queue_wait"],
        "completed": completed,
        "queue_wait_s": wait_s,
        "drain_wall_s": elapsed,
        "speedup": 1.0,
    })

    # -- warm_start (checked): restored first query vs cold first query ----
    from repro.workload.paper_db import section4_catalog, section4_database

    db3 = section4_database()
    catalog3 = Catalog(db3)
    catalog3.analyze()
    params = {"maxprice": 12}
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "plans.json")
        with QueryService(db3, section4_catalog(), catalog3,
                          cache_persist_path=path) as seed_svc:
            # run twice so the entry is compiled against the settled
            # catalog version (the first run may lazily refresh stats)
            want = frozenset(seed_svc.execute(PR4_QUERY, params).rows)
            want = frozenset(seed_svc.execute(PR4_QUERY, params).rows)

        def first_query(persist_path):
            svc = QueryService(db3, section4_catalog(), catalog3,
                               cache_persist_path=persist_path)
            try:
                start = time.perf_counter()
                r = svc.execute(PR4_QUERY, params)
                wall = time.perf_counter() - start
                return wall, r, svc.warm_restored
            finally:
                svc.close(wait=False)

        cold_wall = warm_wall = float("inf")
        restored = 0
        for _ in range(max(reps, 3)):
            wall, r, _ = first_query(None)
            if frozenset(r.rows) != want:
                raise AssertionError("pr7: cold first query diverged")
            cold_wall = min(cold_wall, wall)
        for _ in range(max(reps, 3)):
            wall, r, restored = first_query(path)
            if frozenset(r.rows) != want or not r.cache_hit:
                raise AssertionError("pr7: warm start was not a cache hit")
            warm_wall = min(warm_wall, wall)
        if restored < 1:
            raise AssertionError("pr7: nothing was restored from the warm file")
    workloads.append({
        "name": "warm_start",
        "note": "first execution of the PR-4 two-level semijoin shape: "
                "plan-cache warm start (restore re-plans canonical text at "
                "construction) vs cold compile+optimize on first call",
        "checked": True,
        "results_match": True,
        "entries_restored": restored,
        "cold_first_query_s": cold_wall,
        "warm_first_query_s": warm_wall,
        "speedup": cold_wall / warm_wall if warm_wall else float("inf"),
    })

    return _checked_floor({
        "pr": 7,
        "description": "snapshot-isolated sessions: visibility epochs pinned "
        "per query across serial, statistics, and shipped-fragment reads; "
        "overload shedding (queue-wait deadline + per-session fairness cap) "
        "with OverloadError retry-after; plan-cache warm start; gated metric "
        "is the warm-start first-query speedup",
        "engine": "repro.storage EpochStoreMixin/EpochView + "
        "repro.service.QueryService (snapshot_isolation, queue_wait_s, "
        "cache_persist_path)",
        "reps": reps,
        "workloads": workloads,
    })


def run_pr7(reps: int) -> bool:
    report = _run_pr7(reps)
    out_path = ROOT / "BENCH_PR7.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    by_name = {w["name"]: w for w in report["workloads"]}
    rows = [
        ("snapshot_overhead",
         f"{by_name['snapshot_overhead']['overhead_pct']:+.1f}% with pinning on "
         f"({by_name['snapshot_overhead']['pins_taken']} pins)"),
        ("shed_under_saturation",
         f"{by_name['shed_under_saturation']['admission_refused']} refused + "
         f"{by_name['shed_under_saturation']['queue_wait_shed']} shed of "
         f"{by_name['shed_under_saturation']['submissions']}, "
         f"{by_name['shed_under_saturation']['completed']} completed"),
        ("warm_start",
         f"{by_name['warm_start']['speedup']:.1f}x first-query speedup "
         f"({by_name['warm_start']['entries_restored']} restored)"),
    ]
    print(render_table(
        ["workload", "outcome"], rows,
        title="PR 7 — snapshot isolation, overload shedding, warm start",
    ))
    ok = report["meets_floor_1x"]
    print(f"\nwrote {out_path} (checked floor "
          f"{report['checked_floor']:.1f}x, ok={ok})")
    return ok


def _run_pr6(reps: int) -> dict:
    """Fault tolerance measured, oracle-checked.

    * ``transient_retry`` (**checked**, 1.0x floor) — the co-partitioned
      join with a transient fault injected on every batch's first
      attempt: the retry must recover oracle-identical rows and the
      work-model speedup (failed attempts contribute zero statistics)
      must still clear the floor.
    * ``crash_recovery`` — a worker killed mid-batch (``os._exit``):
      detection + inline degradation wall time, rows oracle-checked.
    * ``deadline_timeout`` — a 30 s injected hang cancelled by a 0.25 s
      deadline: time-to-timeout recorded, pool verified reclaimed.
    * ``fault_free_overhead`` — the PR-6 hooks' cost on the fault-free
      path: the same parallel join with no plan and no deadline vs with
      a (generous) deadline armed; overhead recorded, expected ≤ a few
      percent (the deadline branches are hoisted out of hot loops).
    """
    from repro.engine.plan import ExecRuntime
    from repro.faults import FaultPlan, RetryPolicy
    from repro.shard import ParallelExecutor

    workers = 4
    fast = RetryPolicy(max_attempts=3, base_s=0.001, max_s=0.002)
    n = 24000
    db = _pr5_db(n, lambda i: i)
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "a", workers)
    catalog.partition("Y", "d", workers)
    expr = _pr5_expr()

    serial_stats = Stats()
    serial = Executor(db, serial_stats, catalog=catalog)
    oracle = serial.execute(expr)
    serial_work = serial_stats.total_work()
    serial_wall = _time_execute(serial, expr, reps)
    workloads = []

    # -- transient_retry (checked): recover via retry, beat the floor ------
    with ParallelExecutor(db, catalog, workers=workers, mode="process",
                          fault_plan=FaultPlan.transient(times=1),
                          retry_policy=fast) as parallel:
        par = Executor(db, Stats(), catalog=catalog, parallel=parallel)
        if par.execute(expr) != oracle:
            raise AssertionError("pr6: transient_retry diverged from oracle")
        report = dict(parallel.last_report)
        if report["retries"] != 1 or report["mode"] != "process":
            raise AssertionError(f"pr6: expected one in-mode retry, got {report}")
        critical = report["critical_path_work"] + report["result_rows"]
        wall = _time_execute(par, expr, reps)
        workloads.append({
            "name": "transient_retry",
            "note": "co-partitioned join; a transient fault on every batch's "
                    "first attempt, recovered by one in-mode retry",
            "checked": True,
            "results_match_oracle": True,
            "retries_per_run": report["retries"],
            "recovered_mode": report["mode"],
            "serial_work": serial_work,
            "critical_path_work": report["critical_path_work"],
            "speedup": serial_work / critical if critical else float("inf"),
            "speedup_metric": "work_model_critical_path",
            "serial_wall_s": serial_wall,
            "faulted_wall_s": wall,
        })

    # -- crash_recovery: worker death -> inline degradation ----------------
    with ParallelExecutor(db, catalog, workers=workers, mode="process",
                          fault_plan=FaultPlan.crash_once(fragment=0,
                                                          where="worker"),
                          retry_policy=fast) as parallel:
        par = Executor(db, Stats(), catalog=catalog, parallel=parallel)
        start = time.perf_counter()
        result = par.execute(expr)
        recovery_wall = time.perf_counter() - start
        if result != oracle:
            raise AssertionError("pr6: crash_recovery diverged from oracle")
        report = dict(parallel.last_report)
        if not report["degraded"] or parallel.pool_deaths != 1:
            raise AssertionError(f"pr6: crash was not detected: {report}")
        workloads.append({
            "name": "crash_recovery",
            "note": "worker os._exit mid-batch; death detected by PID/exitcode "
                    "polling, batch degraded to the inline path",
            "checked": False,  # a recovery-latency record, not a speedup race
            "results_match_oracle": True,
            "degraded": report["degraded"],
            "pool_deaths": parallel.pool_deaths,
            "recovered_mode": report["mode"],
            "recovery_wall_s": recovery_wall,
            "serial_wall_s": serial_wall,
            "speedup": 1.0,
        })

    # -- deadline_timeout: a hang cancelled within polling granularity -----
    budget = 0.25
    with ParallelExecutor(db, catalog, workers=workers, mode="process",
                          fault_plan=FaultPlan.hang(fragment=0, delay_s=30.0),
                          retry_policy=fast) as parallel:
        par = Executor(db, Stats(), catalog=catalog, parallel=parallel)
        plan = par.planner.plan(expr)
        rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel,
                         deadline=time.monotonic() + budget)
        start = time.perf_counter()
        timed_out = False
        try:
            plan.execute(rt)
        except QueryTimeoutError:
            timed_out = True
        elapsed = time.perf_counter() - start
        if not timed_out:
            raise AssertionError("pr6: injected hang was not cancelled")
        parallel.inject(None)
        rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel)
        if plan.execute(rt) != oracle:
            raise AssertionError("pr6: pool not usable after timeout")
        workloads.append({
            "name": "deadline_timeout",
            "note": "30 s injected hang under a 0.25 s deadline; pool "
                    "reclaimed, next run oracle-checked on the same executor",
            "checked": False,
            "timeout_budget_s": budget,
            "time_to_timeout_s": elapsed,
            "timeout_overshoot_s": max(0.0, elapsed - budget),
            "pool_reusable_after_timeout": True,
            "speedup": 1.0,
        })

    # -- fault_free_overhead: what the hooks cost when nothing fails -------
    with ParallelExecutor(db, catalog, workers=workers, mode="inline") as parallel:
        par = Executor(db, Stats(), catalog=catalog, parallel=parallel)
        plan = par.planner.plan(expr)

        def run_once(deadline):
            rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel,
                             deadline=deadline)
            start = time.perf_counter()
            plan.execute(rt)
            return time.perf_counter() - start

        plain = min(run_once(None) for _ in range(max(reps, 3)))
        armed = min(run_once(time.monotonic() + 3600.0)
                    for _ in range(max(reps, 3)))
        overhead_pct = (armed - plain) / plain * 100.0 if plain else 0.0
        workloads.append({
            "name": "fault_free_overhead",
            "note": "same inline parallel join, no fault plan: deadline "
                    "checks disarmed vs armed (hot-loop branches hoisted)",
            "checked": False,  # recorded; wall-clock deltas are noisy in CI
            "plain_wall_s": plain,
            "deadline_armed_wall_s": armed,
            "overhead_pct": overhead_pct,
            "overhead_within_10pct": overhead_pct <= 10.0,
            "speedup": 1.0,
        })

    return _checked_floor({
        "pr": 6,
        "description": "fault-tolerant query execution: deterministic fault "
        "injection (crash / hang / transient / slow), bounded retry with "
        "deterministic backoff, per-query deadlines, and graceful "
        "degradation to the inline path (parity by construction); gated "
        "metric is the work-model critical path of the transient-retry "
        "workload (failed attempts contribute zero statistics)",
        "engine": "repro.faults (FaultPlan, RetryPolicy, CircuitBreaker) + "
        "repro.shard.ParallelExecutor recovery loop",
        "reps": reps,
        "workers": workers,
        "workloads": workloads,
    })


def run_pr6(reps: int) -> bool:
    report = _run_pr6(reps)
    out_path = ROOT / "BENCH_PR6.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    by_name = {w["name"]: w for w in report["workloads"]}
    rows = [
        ("transient_retry",
         f"{by_name['transient_retry']['speedup']:.1f}x work-model speedup, "
         f"{by_name['transient_retry']['retries_per_run']} retry/run"),
        ("crash_recovery",
         f"degraded inline in {by_name['crash_recovery']['recovery_wall_s'] * 1e3:.0f} ms, "
         f"rows match oracle"),
        ("deadline_timeout",
         f"hang cancelled in {by_name['deadline_timeout']['time_to_timeout_s']:.2f} s "
         f"(budget {by_name['deadline_timeout']['timeout_budget_s']:.2f} s)"),
        ("fault_free_overhead",
         f"{by_name['fault_free_overhead']['overhead_pct']:+.1f}% with deadline armed"),
    ]
    print(render_table(
        ["workload", "outcome"], rows,
        title="PR 6 — fault-tolerant execution (injection, retry, "
        "degradation, deadlines)",
    ))
    ok = report["meets_floor_1x"]
    print(f"\nwrote {out_path} (checked floor "
          f"{report['checked_floor']:.1f}x, ok={ok})")
    return ok


# ---------------------------------------------------------------------------
# PR 4: the query service — plan cache, prepared statements, concurrency
# ---------------------------------------------------------------------------


PR4_QUERY = (
    "select s.sname from s in SUPPLIER where exists p in PART : "
    "(exists y in s.parts : y.pid = p.pid) and p.price < $maxprice"
)

PR4_FLAT_QUERY = "select x.i from x in X where x.a = $k"


def _pr4_oracle(db, text, params):
    """Reference-interpreter result of the *un-rewritten* translation."""
    from repro.translate.translator import compile_oosql

    return Interpreter(db, params=params).eval(compile_oosql(text))


def _run_pr4(reps: int) -> dict:
    import threading

    from repro.service import QueryService
    from repro.workload.paper_db import section4_catalog, section4_database

    workloads = []

    # -- W1: cold (re-optimize every call) vs warm (cached plan) -----------
    db = section4_database()
    catalog = Catalog(db)
    catalog.analyze()
    bindings = [{"maxprice": p} for p in (11, 12, 13, 14, 100)]

    for params in bindings:  # oracle-check every binding once, untimed
        with QueryService(db, section4_catalog(), catalog) as svc:
            got = frozenset(svc.execute(PR4_QUERY, params).rows)
        want = _pr4_oracle(db, PR4_QUERY, params)
        if got != want:
            raise AssertionError(f"plan_cache_cold_vs_warm: {params} diverged from oracle")

    calls = 20

    def sweep(service):
        start = time.perf_counter()
        for i in range(calls):
            service.execute(PR4_QUERY, bindings[i % len(bindings)])
        return time.perf_counter() - start

    cold_svc = QueryService(db, section4_catalog(), catalog, cache_size=0)
    warm_svc = QueryService(db, section4_catalog(), catalog)
    with cold_svc, warm_svc:
        sweep(warm_svc)  # populate the cache once, untimed
        cold_wall = min(sweep(cold_svc) for _ in range(reps))
        warm_wall = min(sweep(warm_svc) for _ in range(reps))
        warm_stats = warm_svc.stats()
        cold_stats = cold_svc.stats()

    workloads.append(
        {
            "name": "plan_cache_cold_vs_warm",
            "note": f"{calls} calls of one prepared shape, rotating $maxprice bindings",
            "checked": True,
            "results_match_oracle": True,
            "calls_per_sweep": calls,
            "cold": {
                "wall_s": cold_wall,
                "compilations": cold_stats["compilations"],
                "cache": cold_stats["cache"],
            },
            "warm": {
                "wall_s": warm_wall,
                "compilations": warm_stats["compilations"],
                "cache": warm_stats["cache"],
            },
            "speedup": cold_wall / warm_wall if warm_wall else float("inf"),
        }
    )

    # -- W2: 8 concurrent sessions vs serial, identical results ------------
    db = generate_xy(600, 600, key_domain=60, seed=9)
    catalog = Catalog(db)
    catalog.analyze()
    catalog.create_index("Y", "d")
    session_bindings = [{"k": k} for k in range(12)]
    queries = [
        ("select x.i from x in X where x.a = $k", b) for b in session_bindings
    ] + [
        # rewrites to a semijoin; the $k filter pushes onto the Y side
        ("select x.i from x in X where exists y in Y : x.a = y.d and y.e < $k", {"k": k * 50})
        for k in range(12)
    ]

    # correctness oracle: cache-disabled serial service (fully independent
    # re-optimization per query)
    with QueryService(db, catalog=catalog, cache_size=0, max_workers=1) as oracle_svc:
        expected = [frozenset(oracle_svc.execute(t, p).rows) for t, p in queries]

    # timing baseline: a *warmed* serial sweep, so the concurrent/serial
    # comparison isolates the worker pool instead of re-measuring the plan
    # cache (workload 1 already measures that)
    with QueryService(db, catalog=catalog, max_workers=1) as serial_svc:
        for t, p in queries:
            serial_svc.execute(t, p)  # warm the cache, untimed
        start = time.perf_counter()
        for t, p in queries:
            serial_svc.execute(t, p)
        serial_wall = time.perf_counter() - start

    n_sessions = 8
    with QueryService(db, catalog=catalog, max_workers=n_sessions, queue_depth=256) as svc:
        for t, p in queries:
            svc.execute(t, p)  # warm the concurrent service's cache too
        sessions = [svc.session() for _ in range(n_sessions)]
        mismatches = []
        barrier = threading.Barrier(n_sessions)

        def worker(session):
            barrier.wait()
            for (text, params), want in zip(queries, expected):
                got = frozenset(session.execute(text, params).rows)
                if got != want:
                    mismatches.append((text, params))

        start = time.perf_counter()
        threads = [threading.Thread(target=worker, args=(s,)) for s in sessions]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        concurrent_wall = time.perf_counter() - start
        svc_stats = svc.stats()

    if mismatches:
        raise AssertionError(f"concurrent_sessions diverged from serial: {mismatches[:3]}")
    total_queries = n_sessions * len(queries)
    workloads.append(
        {
            "name": "concurrent_sessions",
            "note": f"{n_sessions} sessions x {len(queries)} queries, shared db, "
            "results identical to serial execution",
            "checked": False,  # GIL makes concurrent wall-clock noisy; results are gated
            "results_match_serial": True,
            "sessions": n_sessions,
            "queries_per_session": len(queries),
            "serial_wall_s_per_query": serial_wall / len(queries),
            "concurrent_wall_s": concurrent_wall,
            "throughput_qps": total_queries / concurrent_wall if concurrent_wall else float("inf"),
            "peak_in_flight": svc_stats["peak_in_flight"],
            "compilations": svc_stats["compilations"],
            "speedup": (serial_wall * n_sessions) / concurrent_wall
            if concurrent_wall
            else float("inf"),
        }
    )

    # -- W3: invalidation — replan after create_index uses the index -------
    db = generate_xy(200, 8000, key_domain=4000, seed=11)
    catalog = Catalog(db)
    catalog.analyze()
    with QueryService(db, catalog=catalog) as svc:
        before = svc.execute(PR4_FLAT_QUERY, {"k": 17})
        plan_before = svc.explain(PR4_FLAT_QUERY)
        version_before = catalog.version
        catalog.create_index("X", "a")
        after = svc.execute(PR4_FLAT_QUERY, {"k": 17})
        plan_after = svc.explain(PR4_FLAT_QUERY)
        invalidations = svc.cache.stats.invalidations
    oracle = _pr4_oracle(db, PR4_FLAT_QUERY, {"k": 17})
    if not (frozenset(before.rows) == frozenset(after.rows) == oracle):
        raise AssertionError("invalidation_replan diverged from oracle")
    if after.cache_hit or "IndexScan" not in plan_after:
        raise AssertionError("replanned query did not pick up the new index")
    workloads.append(
        {
            "name": "invalidation_replan",
            "note": "create_index() bumps Catalog.version; the replanned query "
            "probes the new index",
            "checked": False,  # correctness record, not a timing workload
            "results_match_oracle": True,
            "catalog_version_before": version_before,
            "catalog_version_after": catalog.version,
            "invalidations": invalidations,
            # the access-path line, where the Filter/Scan -> IndexScan flip shows
            "plan_before": plan_before.splitlines()[-1].strip(),
            "plan_after": plan_after.splitlines()[-1].strip(),
            "index_probes_after": after.stats["index_probes"],
            "speedup": 1.0,
        }
    )

    warm = workloads[0]
    return _checked_floor(
        {
            "pr": 4,
            "description": "query service layer: parameterized plan cache "
            "(cold re-optimize-every-call vs warm cached-plan), concurrent "
            "sessions over a shared db, and version-bump invalidation",
            "service": "repro.service.QueryService (prepared statements, "
            "plan cache keyed on normalized shape + Catalog.version, "
            "bounded worker pool)",
            "reps": reps,
            "workloads": workloads,
            "warm_cache_speedup": warm["speedup"],
            "meets_5x_warm_cache": warm["speedup"] >= 5.0,
        }
    )


def run_pr4(reps: int) -> bool:
    report = _run_pr4(reps)
    out_path = ROOT / "BENCH_PR4.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    w1, w2, w3 = report["workloads"]
    rows = [
        (
            w1["name"],
            f"{w1['cold']['wall_s'] * 1e3:.2f}",
            f"{w1['warm']['wall_s'] * 1e3:.2f}",
            f"{w1['speedup']:.1f}x",
            f"{w1['warm']['cache']['hits']}/{w1['warm']['cache']['misses']}",
        ),
    ]
    print(
        render_table(
            ["workload", "cold ms", "warm ms", "speedup", "warm hits/misses"],
            rows,
            title="PR 4 — parameterized plan cache, cold vs warm",
        )
    )
    print(
        f"\nconcurrent sessions: {w2['sessions']} x {w2['queries_per_session']} queries, "
        f"{w2['throughput_qps']:.0f} q/s, peak in-flight {w2['peak_in_flight']}, "
        f"results identical to serial: {w2['results_match_serial']}"
    )
    print(
        f"invalidation: version {w3['catalog_version_before']} -> "
        f"{w3['catalog_version_after']}, plan {w3['plan_before']!r} -> "
        f"{w3['plan_after']!r}"
    )
    ok = report["meets_floor_1x"] and report["meets_5x_warm_cache"]
    print(
        f"\nwrote {out_path} (warm-cache speedup "
        f"{report['warm_cache_speedup']:.1f}x, meets_5x="
        f"{report['meets_5x_warm_cache']}, ok={ok})"
    )
    return ok


# ---------------------------------------------------------------------------
# PR 3: DP join reordering vs the rewriter's syntactic order
# ---------------------------------------------------------------------------


def _av(var, attr):
    return B.attr(B.var(var), attr)


def _chain_db(n1, n2, n3, n4):
    from repro.datamodel import VTuple

    return MemoryDatabase(
        {
            "R1": [VTuple(a1=i % 50, i1=i) for i in range(n1)],
            "R2": [VTuple(a2=i % 50, b2=i % 40, i2=i) for i in range(n2)],
            "R3": [VTuple(b3=i % 40, c3=i % 20, i3=i) for i in range(n3)],
            "R4": [VTuple(c4=i % 20, i4=i) for i in range(n4)],
        }
    )


def _chain_query():
    return B.join(
        B.join(
            B.join(B.extent("R1"), B.extent("R2"), "x", "y",
                   B.eq(_av("x", "a1"), _av("y", "a2"))),
            B.extent("R3"), "t", "z", B.eq(_av("t", "b2"), _av("z", "b3")),
        ),
        B.extent("R4"), "u", "w", B.eq(_av("u", "c3"), _av("w", "c4")),
    )


def _pr3_workloads():
    """Yield (name, db, catalog, expr, interp_oracle, note)."""
    from repro.datamodel import VTuple

    # W1: the acceptance workload — a 4-extent chain with cardinalities
    # skewed toward the far end; the rewriter's left-to-right order builds
    # a large R1⋈R2 intermediate the DP order never materializes
    db = _chain_db(400, 400, 30, 6)
    catalog = Catalog(db)
    catalog.analyze()
    yield (
        "chain_skew_4_extents",
        db,
        catalog,
        _chain_query(),
        True,
        "400-400-30-6 chain; DP joins from the selective end",
    )

    # W2: star — the query joins the big dimension first, the selective
    # one last; the DP order flips them
    db = MemoryDatabase(
        {
            "C": [VTuple(k1=i % 100, k2=i % 300, k3=i % 60, ic=i) for i in range(800)],
            "D1": [VTuple(x1=i % 100, i1=i) for i in range(400)],
            "D2": [VTuple(x2=i, i2=i) for i in range(5)],
            "D3": [VTuple(x3=i % 60, i3=i) for i in range(60)],
        }
    )
    catalog = Catalog(db)
    catalog.analyze()
    star = B.join(
        B.join(
            B.join(B.extent("C"), B.extent("D1"), "c", "p",
                   B.eq(_av("c", "k1"), _av("p", "x1"))),
            B.extent("D2"), "t", "q", B.eq(_av("t", "k2"), _av("q", "x2")),
        ),
        B.extent("D3"), "u", "r", B.eq(_av("u", "k3"), _av("r", "x3")),
    )
    yield (
        "star_selective_dimension",
        db,
        catalog,
        star,
        True,
        "800-row fact: query order hits the 400-row dimension before the 5-row one",
    )

    # W3: the query opens with a cross product the join graph does not
    # require; the DP order avoids it (interpreter oracle is infeasible at
    # this scale — the heuristic plan, oracle-checked in PR 1/2, stands in)
    db = _chain_db(150, 300, 150, 1)
    catalog = Catalog(db)
    catalog.analyze()
    cross = B.join(
        B.join(B.extent("R1"), B.extent("R3"), "x", "z", TRUE),
        B.extent("R2"), "t", "y",
        B.conj(B.eq(_av("t", "a1"), _av("y", "a2")),
               B.eq(_av("t", "b3"), _av("y", "b2"))),
    )
    yield (
        "cross_product_avoidance",
        db,
        catalog,
        cross,
        False,
        "rewriter order opens with a 150x150 cross product; the graph is connected",
    )


def _run_pr3(reps: int) -> dict:
    workloads = []
    for name, db, catalog, expr, interp_oracle, note in _pr3_workloads():
        heuristic = Executor(db)
        unordered = Executor(db, catalog=catalog, reorder=False)
        reordered = Executor(db, catalog=catalog)

        heuristic_result = heuristic.execute(expr)
        unordered_result = unordered.execute(expr)
        reordered_result = reordered.execute(expr)
        oracle_ok = heuristic_result == unordered_result == reordered_result
        if interp_oracle:
            oracle_ok = oracle_ok and Interpreter(db).eval(expr) == reordered_result
        if not oracle_ok:
            raise AssertionError(f"{name}: reordered plans diverged from the oracle")

        # the decision record: estimated costs for both orders
        reordered.planner.plan(expr)
        (decision,) = reordered.planner.last_join_orders

        unordered_wall = _time_execute(unordered, expr, reps)
        reordered_wall = _time_execute(reordered, expr, reps)

        workloads.append(
            {
                "name": name,
                "note": note,
                "checked": True,
                "results_match_oracle": True,
                "interpreter_oracle": interp_oracle,
                "result_cardinality": len(reordered_result),
                "join_order": {
                    "chosen": decision.chosen,
                    "chosen_est_cost": decision.chosen_cost,
                    "rewriter": decision.original,
                    "rewriter_est_cost": decision.original_cost,
                    "reordered": decision.reordered,
                },
                "unordered": {
                    "wall_s": unordered_wall,
                    "plan": unordered.explain(expr).splitlines()[0],
                },
                "reordered": {
                    "wall_s": reordered_wall,
                    "plan": reordered.explain(expr).splitlines()[0],
                },
                "speedup": unordered_wall / reordered_wall
                if reordered_wall
                else float("inf"),
            }
        )

    chain = workloads[0]
    return _checked_floor(
        {
            "pr": 3,
            "description": "DP join reordering (engine/joinorder.py) vs the "
            "rewriter's left-to-right join order, both under cost-based "
            "physical planning; oracle-checked",
            "executors": {
                "unordered": "Executor(db, catalog=..., reorder=False)",
                "reordered": "Executor(db, catalog=...) [default]",
            },
            "reps": reps,
            "workloads": workloads,
            "chain_estimate_improves": chain["join_order"]["chosen_est_cost"]
            < chain["join_order"]["rewriter_est_cost"],
            "max_speedup": max(w["speedup"] for w in workloads),
        }
    )


def run_pr3(reps: int) -> bool:
    report = _run_pr3(reps)
    out_path = ROOT / "BENCH_PR3.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    rows = [
        (
            w["name"],
            w["join_order"]["chosen"],
            f"{w['unordered']['wall_s'] * 1e3:.2f}",
            f"{w['reordered']['wall_s'] * 1e3:.2f}",
            f"{w['speedup']:.1f}x",
        )
        for w in report["workloads"]
    ]
    print(
        render_table(
            ["workload", "DP order", "unordered ms", "reordered ms", "speedup"],
            rows,
            title="PR 3 — DP join reordering vs rewriter order",
        )
    )
    chain = report["workloads"][0]["join_order"]
    print(
        f"\nchain estimates: rewriter≈{chain['rewriter_est_cost']:.0f} vs "
        f"DP≈{chain['chosen_est_cost']:.0f} "
        f"(improves={report['chain_estimate_improves']})"
    )
    ok = report["meets_floor_1x"] and report["chain_estimate_improves"]
    print(f"wrote {out_path} (max speedup {report['max_speedup']:.1f}x, "
          f"checked floor {report['checked_floor']:.1f}x, ok={ok})")
    return ok


# ---------------------------------------------------------------------------
# PR 2: cost-based planning vs the PR-1 heuristics
# ---------------------------------------------------------------------------


def _pr2_workloads():
    """Yield (name, db, catalog, expr, note) — catalog prep is untimed."""
    # W1: small probe side, large indexed build side → index NL join
    db = generate_xy(120, 12000, key_domain=6000, seed=2)
    catalog = Catalog(db)
    catalog.analyze()
    catalog.create_index("Y", "d")
    yield (
        "indexed_lookup_join",
        db,
        catalog,
        B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ),
        "120-row probe vs 12000-row indexed extent",
    )
    # W2: the same skew under a semijoin (asymmetric kind, still INLJ)
    yield (
        "indexed_semijoin",
        db,
        catalog,
        B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", EQ),
        "existential probe against the indexed extent",
    )
    # W3: selective equality filter over an indexed attribute
    db = generate_xy(10, 40000, key_domain=2000, seed=3)
    catalog = Catalog(db)
    catalog.analyze()
    catalog.create_index("Y", "d")
    yield (
        "selective_indexed_filter",
        db,
        catalog,
        B.sel("y", B.eq(YD, B.lit(7)), B.extent("Y")),
        "~20 of 40000 rows match; index probe vs full scan",
    )
    # W4: no index — build-side choice on skewed cardinalities
    db = generate_xy(200, 20000, key_domain=10000, seed=4)
    catalog = Catalog(db)
    catalog.analyze()
    yield (
        "build_side_skew",
        db,
        catalog,
        B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ),
        "200 x 20000 hash join; cost model builds the small side",
    )


def _time_execute(executor, expr, reps: int) -> float:
    walls = []
    for _ in range(reps):
        start = time.perf_counter()
        executor.execute(expr)
        walls.append(time.perf_counter() - start)
    return min(walls)


def _run_pr2(reps: int) -> dict:
    workloads = []
    build_side_flip = None
    for name, db, catalog, expr, note in _pr2_workloads():
        oracle = Interpreter(db).eval(expr)

        heuristic_stats = Stats()
        heuristic = Executor(db, heuristic_stats)
        cost_stats = Stats()
        cost_based = Executor(db, cost_stats, catalog=catalog)

        heuristic_result = heuristic.execute(expr)
        cost_result = cost_based.execute(expr)
        if not (heuristic_result == cost_result == oracle):
            raise AssertionError(f"{name}: planners diverged from the oracle")

        heuristic_wall = _time_execute(heuristic, expr, reps)
        cost_wall = _time_execute(cost_based, expr, reps)

        workloads.append(
            {
                "name": name,
                "note": note,
                # build_side_skew is a close call (~1.1x) — not gated
                "checked": name != "build_side_skew",
                "results_match_oracle": True,
                "result_cardinality": len(oracle),
                "heuristic": {
                    "wall_s": heuristic_wall,
                    "plan": heuristic.explain(expr).splitlines()[0],
                    "stats": heuristic_stats.snapshot(),
                },
                "cost_based": {
                    "wall_s": cost_wall,
                    "plan": cost_based.explain(expr).splitlines()[0],
                    "stats": cost_stats.snapshot(),
                },
                "speedup": heuristic_wall / cost_wall if cost_wall else float("inf"),
            }
        )

        if name == "build_side_skew":
            swapped = B.join(B.extent("Y"), B.extent("X"), "y", "x", EQ_SWAPPED)
            build_side_flip = {
                "small_left": cost_based.explain(expr).splitlines()[0],
                "small_right": cost_based.explain(swapped).splitlines()[0],
            }

    fast = sorted((w["speedup"] for w in workloads), reverse=True)
    return _checked_floor({
        "pr": 2,
        "description": "cost-based physical planning (catalog statistics, "
        "index access paths, join-strategy and build-side selection) vs the "
        "PR-1 heuristic planner, same logical queries and engine",
        "planners": {
            "heuristic": "Executor(db) — hash join if possible, always builds right",
            "cost_based": "Executor(db, catalog=...) — cost model over catalog stats",
        },
        "reps": reps,
        "workloads": workloads,
        "build_side_flip": build_side_flip,
        "max_speedup": fast[0],
        "meets_1_5x_on_two_workloads": len(fast) >= 2 and fast[1] >= 1.5,
    })


def run_pr2(reps: int) -> bool:
    report = _run_pr2(reps)
    out_path = ROOT / "BENCH_PR2.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    rows = [
        (
            w["name"],
            w["cost_based"]["plan"].split(" [")[0],
            f"{w['heuristic']['wall_s'] * 1e3:.2f}",
            f"{w['cost_based']['wall_s'] * 1e3:.2f}",
            f"{w['speedup']:.1f}x",
        )
        for w in report["workloads"]
    ]
    print(
        render_table(
            ["workload", "chosen plan", "heuristic ms", "cost-based ms", "speedup"],
            rows,
            title="PR 2 — cost-based planning vs heuristic planner",
        )
    )
    flip = report["build_side_flip"]
    print("\nbuild-side flip:")
    print(f"  small left : {flip['small_left']}")
    print(f"  small right: {flip['small_right']}")
    ok = report["meets_1_5x_on_two_workloads"] and report["meets_floor_1x"]
    print(f"\nwrote {out_path} (max speedup {report['max_speedup']:.1f}x, "
          f"checked floor {report['checked_floor']:.1f}x, ok={ok})")
    return ok


# ---------------------------------------------------------------------------
# PR 1: streaming + compiled expressions vs the materializing engine
# ---------------------------------------------------------------------------


def _pr1_workloads():
    """Yield (name, db, plan, oracle_expr) quadruples."""
    # F3: the Fig. 3 nestjoin at benchmark scale — hash implementation
    db = generate_xy(300, 300, key_domain=100, seed=6)
    yield (
        "fig3_nestjoin_hash",
        db,
        HashJoinBase(
            "nestjoin", "x", "y", (XA,), (YD,), TRUE,
            Scan("X"), Scan("Y"), as_attr="ys", result=A.Var("y"),
        ),
        B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", EQ, "ys"),
    )
    # F3 under nested loops: per-pair predicate evaluation dominates — the
    # workload where compiled expressions matter most
    db = generate_xy(160, 160, key_domain=60, seed=6)
    yield (
        "fig3_nestjoin_nested_loop",
        db,
        NestedLoopJoin(
            "nestjoin", "x", "y", EQ,
            Scan("X"), Scan("Y"), as_attr="ys", result=A.Var("y"),
        ),
        B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", EQ, "ys"),
    )
    # P1: join vs nested loop — the rewritten (hash semijoin) plan
    db = generate_xy(400, 400, key_domain=200, seed=1)
    yield (
        "join_vs_nl_hash_semijoin",
        db,
        HashJoinBase("semijoin", "x", "y", (XA,), (YD,), TRUE, Scan("X"), Scan("Y")),
        B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", EQ),
    )
    # P1: the un-rewritten nested-loop join itself
    db = generate_xy(200, 200, key_domain=100, seed=1)
    yield (
        "join_vs_nl_nested_loop_join",
        db,
        NestedLoopJoin("join", "x", "y", EQ, Scan("X"), Scan("Y")),
        B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ),
    )


def _run_plan(plan, db, reps, **engine):
    stats = Stats()
    result = plan.execute(ExecRuntime(db, stats, **engine))
    wall = min(_timed_plan(plan, db, **engine) for _ in range(reps))
    return result, stats.snapshot(), wall


def _timed_plan(plan, db, **engine):
    rt = ExecRuntime(db, Stats(), **engine)
    start = time.perf_counter()
    plan.execute(rt)
    return time.perf_counter() - start


#: PR-1 workloads with robust (≥2x) margins, safe to gate at 1.0x even
#: under single-rep CI noise.
_PR1_CHECKED = {"fig3_nestjoin_nested_loop", "join_vs_nl_nested_loop_join"}


def run_pr1(reps: int) -> bool:
    workloads = []
    for name, db, plan, oracle_expr in _pr1_workloads():
        oracle = Interpreter(db).eval(oracle_expr)
        base_result, base_stats, base_wall = _run_plan(
            plan, db, reps, materialized=True, compile_exprs=False
        )
        stream_result, stream_stats, stream_wall = _run_plan(plan, db, reps)
        if not (base_result == stream_result == oracle):
            raise AssertionError(f"{name}: engines diverged from the interpreter oracle")
        workloads.append(
            {
                "name": name,
                "plan": plan.label,
                "checked": name in _PR1_CHECKED,
                "results_match_oracle": True,
                "result_cardinality": len(oracle),
                "baseline": {"wall_s": base_wall, "stats": base_stats},
                "streaming": {"wall_s": stream_wall, "stats": stream_stats},
                "speedup": base_wall / stream_wall if stream_wall else float("inf"),
            }
        )

    max_speedup = max(w["speedup"] for w in workloads)
    report = _checked_floor({
        "pr": 1,
        "description": "streaming Volcano execution + compiled expressions "
        "vs the materializing interpreted engine (same physical plans)",
        "engines": {
            "baseline": "ExecRuntime(materialized=True, compile_exprs=False)",
            "streaming": "ExecRuntime() [default]",
        },
        "reps": reps,
        "workloads": workloads,
        "max_speedup": max_speedup,
        "meets_2x": max_speedup >= 2.0,
    })
    out_path = ROOT / "BENCH_PR1.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    rows = [
        (
            w["name"],
            w["plan"],
            f"{w['baseline']['wall_s'] * 1e3:.1f}",
            f"{w['streaming']['wall_s'] * 1e3:.1f}",
            f"{w['speedup']:.1f}x",
            w["streaming"]["stats"]["pipeline_breaks"],
        )
        for w in workloads
    ]
    print(
        render_table(
            ["workload", "plan", "baseline ms", "streaming ms", "speedup", "breaks"],
            rows,
            title="PR 1 — streaming + compiled expressions vs materializing engine",
        )
    )
    print(f"\nwrote {out_path} (max speedup {max_speedup:.1f}x, "
          f"meets_2x={report['meets_2x']}, "
          f"checked floor {report['checked_floor']:.1f}x)")
    return report["meets_2x"] and report["meets_floor_1x"]


# ---------------------------------------------------------------------------
# PR 8: vectorized batch execution vs the tuple-at-a-time engine
# ---------------------------------------------------------------------------

#: batch size used by every PR-8 workload (benchmarks want bigger chunks
#: than the service default of 256: fewer per-batch dispatches)
_PR8_BATCH = 1024


def _pr8_workloads():
    """Yield (name, kind, db, plan, oracle_expr | None) — ``kind`` is
    ``"scan_filter"`` or ``"join"``, for the per-kind speedup gates."""
    price = B.attr(B.var("x"), "price")
    # a compute-rich covered predicate: every node maps column-wise, so
    # the tuple engine pays ~8 closure calls per row where the kernel
    # pays ~8 C-level maps per *batch* (and the column cache extracts
    # ``price`` once, not four times)
    compute = B.lt(
        B.mul(B.sub(B.mul(price, B.lit(3)), price), B.add(price, B.lit(7))),
        B.add(B.mul(price, price), B.lit(500)),
    )
    simple = B.lt(price, B.lit(8))
    conj = B.conj(
        B.lt(price, B.lit(400)),
        B.eq(B.attr(B.var("x"), "color"), B.lit("red")),
    )
    db = generate_database(
        n_parts=100_000, n_suppliers=10, n_deliveries=10, seed=7, page_size=512
    )
    for name, pred in (
        ("scan_filter_compute", compute),
        ("scan_filter_simple", simple),
        ("scan_filter_conj", conj),
    ):
        yield (
            name,
            "scan_filter",
            db,
            Filter("x", pred, Scan("PART")),
            B.sel("x", pred, B.extent("PART")),
        )
    # join workloads: large paged probe side, smaller build side, key
    # domains mostly disjoint — probing is key-extraction-bound, which is
    # what the batched key kernels accelerate
    jdb = generate_join_database(
        nx=100_000, ny=25_000, x_domain=20_000, y_domain=1_000, seed=7, page_size=512
    )
    xa = (B.attr(B.var("x"), "a"),)
    yd = (B.attr(B.var("y"), "d"),)
    for kind in ("semijoin", "antijoin"):
        yield (
            f"hash_{kind}_lowmatch",
            "join",
            jdb,
            HashJoinBase(kind, "x", "y", xa, yd, TRUE, Scan("X"), Scan("Y")),
            None,
        )
    # the honest cap: a wide plain join is dominated by per-pair tuple
    # emission, which batching cannot vectorize — recorded, not gated
    yield (
        "hash_join_wide",
        "join",
        jdb,
        HashJoinBase(
            "join", "x", "y", xa, yd, TRUE,
            ProjectOp(("a", "v"), Scan("X")),
            ProjectOp(("d", "w"), Scan("Y")),
        ),
        None,
    )


#: PR-8 workloads with robust margins, gated at the 1.0x checked floor
#: (``hash_join_wide`` is ~1.0x by design and stays unchecked)
_PR8_CHECKED = {
    "scan_filter_compute",
    "scan_filter_simple",
    "scan_filter_conj",
    "hash_semijoin_lowmatch",
    "hash_antijoin_lowmatch",
}


def run_pr8(reps: int) -> bool:
    workloads = []
    for name, kind, db, plan, oracle_expr in _pr8_workloads():
        tuple_result, tuple_stats, tuple_wall = _run_plan(plan, db, reps)
        batch_result, batch_stats, batch_wall = _run_plan(
            plan, db, reps, batch_size=_PR8_BATCH
        )
        if batch_result != tuple_result:
            raise AssertionError(f"{name}: batch and tuple engines diverged")
        if oracle_expr is not None:
            # anchor one small-scale variant of the expression family to
            # the reference interpreter (the full extent would take the
            # interpreter minutes)
            small = generate_database(
                n_parts=500, n_suppliers=5, n_deliveries=5, seed=7, page_size=512
            )
            small_oracle = Interpreter(small).eval(oracle_expr)
            small_batch = plan.execute(
                ExecRuntime(small, Stats(), batch_size=_PR8_BATCH)
            )
            if small_batch != small_oracle:
                raise AssertionError(f"{name}: batch engine diverged from interpreter")
        if batch_stats["vector_fallbacks"]:
            raise AssertionError(f"{name}: covered workload fell back unexpectedly")
        workloads.append(
            {
                "name": name,
                "kind": kind,
                "plan": plan.label,
                "checked": name in _PR8_CHECKED,
                "results_match": True,
                "result_cardinality": len(tuple_result),
                "tuple": {"wall_s": tuple_wall, "stats": tuple_stats},
                "batch": {"wall_s": batch_wall, "stats": batch_stats},
                "speedup": tuple_wall / batch_wall if batch_wall else float("inf"),
            }
        )

    best = {
        kind: max(w["speedup"] for w in workloads if w["kind"] == kind)
        for kind in ("scan_filter", "join")
    }
    report = _checked_floor({
        "pr": 8,
        "description": "vectorized batch execution (columnar chunks + compiled "
        "kernels) vs the tuple-at-a-time engine, same physical plans, "
        "paged stores",
        "engines": {
            "tuple": "ExecRuntime() [default]",
            "batch": f"ExecRuntime(batch_size={_PR8_BATCH})",
        },
        "reps": reps,
        "workloads": workloads,
        "max_scan_filter_speedup": best["scan_filter"],
        "max_join_speedup": best["join"],
        "meets_5x_scan_filter": best["scan_filter"] >= 5.0,
        "meets_2x_join": best["join"] >= 2.0,
    })
    out_path = ROOT / "BENCH_PR8.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    rows = [
        (
            w["name"],
            w["plan"],
            f"{w['tuple']['wall_s'] * 1e3:.1f}",
            f"{w['batch']['wall_s'] * 1e3:.1f}",
            f"{w['speedup']:.2f}x",
            w["batch"]["stats"]["batches_emitted"],
        )
        for w in workloads
    ]
    print(
        render_table(
            ["workload", "plan", "tuple ms", "batch ms", "speedup", "batches"],
            rows,
            title="PR 8 — vectorized batch execution vs tuple-at-a-time",
        )
    )
    print(f"\nwrote {out_path} (scan/filter max {best['scan_filter']:.2f}x, "
          f"join max {best['join']:.2f}x, "
          f"meets_5x_scan_filter={report['meets_5x_scan_filter']}, "
          f"meets_2x_join={report['meets_2x_join']}, "
          f"checked floor {report['checked_floor']:.2f}x)")
    return (
        report["meets_5x_scan_filter"]
        and report["meets_2x_join"]
        and report["meets_floor_1x"]
    )


# ---------------------------------------------------------------------------
# PR 9: query shredding — flat-relational evaluation of nested queries
# ---------------------------------------------------------------------------


def _pr9_db(n, spread=16):
    """The shredding acceptance shape: a dangling-heavy right side.

    ``X`` is n rows keyed 1:1 on ``b``; ``Y`` is ``spread*n`` distinct
    rows of which only 1 in ``spread`` finds a partner — the serial fused
    nestjoin hash-builds all of ``Y`` while the shredded form's flat
    inner join discards the dangling majority inside the partition-wise
    fragments."""
    from repro.datamodel import VTuple

    return MemoryDatabase(
        {
            "X": [VTuple(a=i % 7, b=i) for i in range(n)],
            "Y": [VTuple(d=i, e=i % 5) for i in range(spread * n)],
        }
    )


def _pr9_types():
    from repro.datamodel import Catalog as TypeCatalog, INT, SetType, TupleType

    return TypeCatalog(
        {
            "X": SetType(TupleType({"a": INT, "b": INT})),
            "Y": SetType(TupleType({"d": INT, "e": INT})),
        }
    )


def _run_pr9(reps: int) -> dict:
    """Query shredding measured, oracle-checked.

    * ``shredded_copartitioned_nestjoin`` (**checked, gated ≥ 2x**) — the
      Figure-3 nestjoin over large co-partitioned operands: the optimizer
      must *choose* the shredded candidate by price, the planned stitch
      must carry an ``Exchange`` over a ``PartitionedHashJoin``, and the
      work-model speedup of the shredded run (coordinator work + critical
      fragment path + gathered rows) over the serial fused nestjoin must
      clear 2x.  Executed through the batch tier (``batch_size=1024``)
      on a forked process pool — the full PR-9 stack in one run.
    * ``tiny_query_stays_unshredded`` — the planner-decision record: on
      paper-scale data the shredded candidate is priced *and rejected*
      (a serial stitch can never undercut the fused nestjoin), so tiny
      queries provably keep their plan.
    """
    from repro.rewrite.strategy import Optimizer
    from repro.shred import StitchNest
    from repro.shard import Exchange, ParallelExecutor, PartitionedHashJoin
    from repro.workload.queries import figure3_nestjoin

    workers = 4
    parts = 4
    types = _pr9_types()
    expr = figure3_nestjoin()
    workloads = []

    # small-scale interpreter anchor (untimed): shredded rows match the
    # reference interpreter's nestjoin exactly
    small = _pr9_db(40, spread=2)
    small_catalog = Catalog(small)
    small_catalog.analyze()
    small_catalog.partition("X", "b", parts)
    small_catalog.partition("Y", "d", parts)
    small_res = Optimizer(types, catalog=small_catalog, parallel_workers=workers)
    small_shredded = next(a.expr for a in small_res.optimize(expr).attempts
                          if a.option == "shredded")
    with ParallelExecutor(small, small_catalog, workers=workers, mode="inline") as parallel:
        got = Executor(small, catalog=small_catalog, parallel=parallel).execute(small_shredded)
    if got != Interpreter(small).eval(expr):
        raise AssertionError("pr9: small-scale shredded run diverged from the interpreter")

    # -- the acceptance workload: big, co-partitioned, dangling-heavy ------
    db = _pr9_db(4000)
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "b", parts)
    catalog.partition("Y", "d", parts)

    res = Optimizer(types, catalog=catalog, parallel_workers=workers).optimize(expr)
    if res.chosen.option != "shredded":
        raise AssertionError(
            f"pr9: optimizer kept {res.chosen.option!r} on the acceptance workload"
        )
    by_option = {a.option: a for a in res.attempts}
    shredded_expr = res.chosen.expr

    serial_stats = Stats()
    serial = Executor(db, serial_stats, catalog=catalog)
    oracle = serial.execute(expr)
    serial_work = serial_stats.total_work()
    serial_wall = _time_execute(serial, expr, reps)

    with ParallelExecutor(db, catalog, workers=workers, mode="process") as parallel:
        shred_stats = Stats()
        par = Executor(db, shred_stats, catalog=catalog, parallel=parallel,
                       batch_size=_PR8_BATCH)
        plan = par.planner.plan(shredded_expr)
        ops = list(plan.operators())
        if not any(isinstance(op, StitchNest) for op in ops):
            raise AssertionError("pr9: planned shredded query has no StitchNest")
        if not (any(isinstance(op, Exchange) for op in ops)
                and any(isinstance(op, PartitionedHashJoin) for op in ops)):
            raise AssertionError("pr9: shredded inner join did not go partition-wise")

        if par.execute(shredded_expr) != oracle:
            raise AssertionError("pr9: shredded result diverged from the serial nestjoin")
        report = dict(parallel.last_report)
        # the gated metric: serial fused work over the shredded critical
        # path — coordinator-side work (outer re-stream, group build,
        # stitch probe; the executor merges fragment counters into the
        # local stats, so subtract them back out) + the largest shipped
        # fragment + the gathered join rows
        local_work = shred_stats.total_work() - sum(report["per_fragment_work"])
        critical = local_work + report["critical_path_work"] + report["result_rows"]
        work_speedup = serial_work / critical if critical else float("inf")
        parallel_wall = _time_execute(par, shredded_expr, reps)

    workloads.append(
        {
            "name": "shredded_copartitioned_nestjoin",
            "note": "Figure-3 nestjoin, 4000 x 64000 with a 1-in-16 match "
            "rate, both sides partitioned on the join key (4 shards): "
            "chosen by price, stitch over a partition-wise flat join, "
            "batched fragments on a forked pool",
            "checked": True,
            "results_match_oracle": True,
            "result_cardinality": len(oracle),
            "chosen_option": res.chosen.option,
            "est_cost_shredded": by_option["shredded"].est_cost,
            "est_cost_unshredded": by_option[
                next(o for o in by_option if o != "shredded")
            ].est_cost,
            "plan": plan.explain().splitlines()[0],
            "workers": workers,
            "pool_mode": report["mode"],
            "batch_size": _PR8_BATCH,
            "batches_emitted": shred_stats.batches_emitted,
            "serial_work": serial_work,
            "coordinator_work": local_work,
            "per_fragment_work": report["per_fragment_work"],
            "critical_path_work": report["critical_path_work"],
            "gathered_rows": report["result_rows"],
            "speedup": work_speedup,
            "speedup_metric": "work_model_critical_path",
            "serial_wall_s": serial_wall,
            "shredded_wall_s": parallel_wall,
            # recorded, not gated: needs real cores to show parallelism
            "wall_speedup": serial_wall / parallel_wall if parallel_wall else float("inf"),
        }
    )

    # -- the threshold record: tiny paper-scale data stays unshredded ------
    tiny = _pr9_db(10, spread=1)
    tiny_catalog = Catalog(tiny)
    tiny_catalog.analyze()
    tiny_catalog.partition("X", "b", parts)
    tiny_catalog.partition("Y", "d", parts)
    tiny_res = Optimizer(types, catalog=tiny_catalog, parallel_workers=workers).optimize(expr)
    tiny_by_option = {a.option: a for a in tiny_res.attempts}
    stayed = tiny_res.chosen.option != "shredded"
    priced = "shredded" in tiny_by_option
    if not (stayed and priced):
        raise AssertionError("pr9: tiny query was shredded (or never priced)")
    workloads.append(
        {
            "name": "tiny_query_stays_unshredded",
            "note": "paper-scale data, partitioned, 4 workers configured: "
            "the shredded candidate is priced but the fused nestjoin wins",
            "checked": False,  # a planner-decision record, not a timing workload
            "planner_keeps_nestjoin": stayed,
            "shredded_was_priced": priced,
            "chosen_option": tiny_res.chosen.option,
            "est_cost_shredded": tiny_by_option["shredded"].est_cost,
            "est_cost_chosen": tiny_res.chosen.est_cost,
            "verdict_notes": [n for n in tiny_res.chosen.trace.notes
                              if "shredding priced" in n],
            "speedup": 1.0,
        }
    )

    shred = workloads[0]
    return _checked_floor(
        {
            "pr": 9,
            "description": "query shredding: nested (nestjoin) queries "
            "decomposed into flat subplans — a partition-parallel inner "
            "flat join plus an outer re-stream — reassembled by a stitch "
            "operator; the shredded form is a priced optimizer candidate "
            "chosen only when estimated cheaper; gated metric is the "
            "work-model critical path of the shredded run vs the serial "
            "fused nestjoin",
            "engine": "repro.shred (shred_expr, Stitch, StitchNest) + "
            "repro.shard partition-wise fragments + batch tier",
            "reps": reps,
            "workers": workers,
            "workloads": workloads,
            "shredded_speedup": shred["speedup"],
            "meets_2x_shredded": shred["speedup"] >= 2.0,
            "planner_keeps_tiny_unshredded": stayed,
        }
    )


def run_pr9(reps: int) -> bool:
    report = _run_pr9(reps)
    out_path = ROOT / "BENCH_PR9.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    shred, tiny = report["workloads"]
    rows = [
        (
            shred["name"],
            str(shred["serial_work"]),
            str(shred["coordinator_work"] + shred["critical_path_work"]),
            f"{shred['speedup']:.1f}x",
            f"{shred['wall_speedup']:.2f}x",
        )
    ]
    print(
        render_table(
            ["workload", "serial work", "shredded critical", "speedup", "wall"],
            rows,
            title="PR 9 — query shredding vs serial fused nestjoin "
            "(speedup = work-model critical path)",
        )
    )
    print(
        f"\nthreshold: tiny query keeps {tiny['chosen_option']!r} "
        f"(shredded priced at ≈{tiny['est_cost_shredded']:.0f} vs "
        f"chosen ≈{tiny['est_cost_chosen']:.0f})"
    )
    ok = report["meets_floor_1x"] and report["meets_2x_shredded"]
    print(
        f"wrote {out_path} (shredded speedup "
        f"{report['shredded_speedup']:.1f}x, meets_2x="
        f"{report['meets_2x_shredded']}, ok={ok})"
    )
    return ok


# ---------------------------------------------------------------------------
# PR 10: observability — tracing overhead, EXPLAIN ANALYZE, misestimates
# ---------------------------------------------------------------------------


def _run_pr10(reps: int) -> dict:
    """Observability measured, oracle-checked.

    * ``untraced_overhead`` (**checked**) — the PR-10
      ``stream()``/``stream_batches()`` indirection with no recorder
      attached vs draining the raw ``iterate()`` generators directly.
      The hoisted-check contract says the shipped path adds exactly one
      ``is None`` test per operator *open*, so the delta must sit within
      the PR-6 ±10% envelope.  The checked "speedup" is the envelope
      gate itself (1.0 iff within) — wall-clock ratios at equal work are
      jitter, not speedup, so gating a raw ratio would be dishonest in
      both directions.
    * ``traced_overhead`` — the same plan with a ``TraceRecorder``
      attached: the honest price of metering (one ``perf_counter`` read
      per ``next()`` plus attribute bumps), recorded, never gated —
      tracing is opt-in.
    * ``misestimate_detection`` — ``explain_analyze`` over a
      value-skewed filter: the ndv-uniformity estimate is ~6x off and
      must be flagged past the q-error threshold; rows oracle-checked.
    """
    from repro.datamodel import VTuple
    from repro.obs import TraceRecorder

    n = 40000
    db = _pr5_db(n, lambda i: i)
    catalog = Catalog(db)
    catalog.analyze()
    expr = _pr5_expr()

    serial = Executor(db, Stats(), catalog=catalog)
    oracle = serial.execute(expr)
    plan = serial.planner.plan(expr)
    workloads = []

    # -- untraced_overhead (checked): the hoisted-check contract -----------
    import gc

    def run_raw():
        rt = ExecRuntime(db, Stats(), catalog=catalog)
        gc.collect()
        start = time.perf_counter()
        rows = frozenset(plan.iterate(rt))
        return time.perf_counter() - start, rows

    def run_stream(trace):
        rt = ExecRuntime(db, Stats(), catalog=catalog, trace=trace)
        gc.collect()
        start = time.perf_counter()
        rows = frozenset(plan.stream(rt))
        return time.perf_counter() - start, rows

    # interleave the two variants (after a warmup pair) so machine drift
    # lands on both sides instead of biasing whichever ran later
    run_raw(), run_stream(None)
    raw_runs, stream_runs = [], []
    for _ in range(max(2 * reps, 9)):
        raw_runs.append(run_raw())
        stream_runs.append(run_stream(None))
    if any(rows != oracle for _, rows in raw_runs + stream_runs):
        raise AssertionError("pr10: untraced runs diverged from oracle")
    raw = min(wall for wall, _ in raw_runs)
    shipped = min(wall for wall, _ in stream_runs)
    overhead_pct = (shipped - raw) / raw * 100.0 if raw else 0.0
    within = overhead_pct <= 10.0
    workloads.append({
        "name": "untraced_overhead",
        "note": "serial join pipeline: raw iterate() generators vs the "
                "shipped stream() path, no recorder attached (the trace "
                "test is hoisted to operator open)",
        "checked": True,
        "results_match_oracle": True,
        "raw_iterate_wall_s": raw,
        "untraced_stream_wall_s": shipped,
        "overhead_pct": overhead_pct,
        "overhead_within_10pct": within,
        "speedup": 1.0 if within else 0.0,
        "speedup_metric": "overhead_envelope_gate",
    })

    # -- traced_overhead: what metering honestly costs ---------------------
    traced_runs = [run_stream(TraceRecorder()) for _ in range(max(reps, 3))]
    if any(rows != oracle for _, rows in traced_runs):
        raise AssertionError("pr10: traced runs diverged from oracle")
    traced = min(wall for wall, _ in traced_runs)
    workloads.append({
        "name": "traced_overhead",
        "note": "same plan with a TraceRecorder attached: one clock read "
                "per next() plus attribute bumps, per operator",
        "checked": False,  # tracing is opt-in; its price is recorded, not raced
        "results_match_oracle": True,
        "untraced_wall_s": shipped,
        "traced_wall_s": traced,
        "overhead_pct": (traced - shipped) / shipped * 100.0 if shipped else 0.0,
        "speedup": 1.0,
    })

    # -- misestimate_detection: the q-error flag on seeded skew ------------
    skew_db = MemoryDatabase({
        "S": [VTuple(a=(0 if i % 10 else i % 7), b=i) for i in range(20000)],
    })
    skew_catalog = Catalog(skew_db)
    skew_catalog.analyze()
    skew_expr = B.sel("x", B.eq(B.attr(B.var("x"), "a"), B.lit(0)),
                      B.extent("S"))
    analyzer = Executor(skew_db, Stats(), catalog=skew_catalog)
    ar = analyzer.explain_analyze(skew_expr)
    skew_oracle = Executor(skew_db, Stats(), catalog=Catalog(skew_db)).execute(skew_expr)
    if ar.rows != skew_oracle:
        raise AssertionError("pr10: analyzed run diverged from oracle")
    if not ar.misestimates:
        raise AssertionError("pr10: seeded skew misestimate was not flagged")
    flagged = ar.misestimates[0]
    workloads.append({
        "name": "misestimate_detection",
        "note": "value-frequency skew (one value covers 90% of rows): the "
                "ndv-uniformity selection estimate must be flagged",
        "checked": False,  # a detection record, not a timing race
        "results_match_oracle": True,
        "flagged_operator": flagged["operator"],
        "est_rows": flagged["est_rows"],
        "actual_rows": flagged["actual_rows"],
        "q_error": flagged["q_error"],
        "speedup": 1.0,
    })

    return _checked_floor({
        "pr": 10,
        "description": "query observability: opt-in per-operator tracing "
        "behind the hoisted-check discipline (the untraced path pays one "
        "is-None test per operator open, gated within the PR-6 ±10% "
        "envelope), EXPLAIN ANALYZE with q-error misestimate flags, and "
        "the traced path's metering cost recorded honestly",
        "engine": "repro.obs (TraceRecorder, q_error) + "
        "engine.plan stream()/stream_batches()",
        "reps": reps,
        "rows": n,
        "workloads": workloads,
    })


def run_pr10(reps: int) -> bool:
    report = _run_pr10(reps)
    out_path = ROOT / "BENCH_PR10.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    by_name = {w["name"]: w for w in report["workloads"]}
    rows = [
        ("untraced_overhead",
         f"{by_name['untraced_overhead']['overhead_pct']:+.1f}% vs raw "
         f"iterate (within ±10%: "
         f"{by_name['untraced_overhead']['overhead_within_10pct']})"),
        ("traced_overhead",
         f"{by_name['traced_overhead']['overhead_pct']:+.1f}% with a "
         f"recorder attached (opt-in, not gated)"),
        ("misestimate_detection",
         f"{by_name['misestimate_detection']['flagged_operator']} flagged "
         f"at q≈{by_name['misestimate_detection']['q_error']:.1f}"),
    ]
    print(render_table(
        ["workload", "outcome"], rows,
        title="PR 10 — observability (tracing overhead contract, "
        "EXPLAIN ANALYZE misestimate flags)",
    ))
    ok = report["meets_floor_1x"]
    print(f"\nwrote {out_path} (untraced overhead "
          f"{by_name['untraced_overhead']['overhead_pct']:+.1f}%, ok={ok})")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS,
                        help="timing repetitions per engine (min is kept)")
    parser.add_argument("--pr1", action="store_true",
                        help="run only the PR 1 suite")
    parser.add_argument("--pr3", action="store_true",
                        help="run only the PR 3 suite")
    parser.add_argument("--pr4", action="store_true",
                        help="run only the PR 4 suite")
    parser.add_argument("--pr5", action="store_true",
                        help="run only the PR 5 suite")
    parser.add_argument("--pr6", action="store_true",
                        help="run only the PR 6 suite")
    parser.add_argument("--pr7", action="store_true",
                        help="run only the PR 7 suite")
    parser.add_argument("--pr8", action="store_true",
                        help="run only the PR 8 suite")
    parser.add_argument("--pr9", action="store_true",
                        help="run only the PR 9 suite")
    parser.add_argument("--pr10", action="store_true",
                        help="run only the PR 10 suite")
    parser.add_argument("--all", action="store_true", help="run every suite")
    args = parser.parse_args(argv)

    only = (args.pr1 or args.pr3 or args.pr4 or args.pr5 or args.pr6
            or args.pr7 or args.pr8 or args.pr9 or args.pr10)
    ok = True
    if args.pr1 or args.all:
        ok = run_pr1(args.reps) and ok
    if args.all or not only:
        ok = run_pr2(args.reps) and ok
    if args.pr3 or args.all or not only:
        ok = run_pr3(args.reps) and ok
    if args.pr4 or args.all or not only:
        ok = run_pr4(args.reps) and ok
    if args.pr5 or args.all or not only:
        ok = run_pr5(args.reps) and ok
    if args.pr6 or args.all or not only:
        ok = run_pr6(args.reps) and ok
    if args.pr7 or args.all or not only:
        ok = run_pr7(args.reps) and ok
    if args.pr8 or args.all or not only:
        ok = run_pr8(args.reps) and ok
    if args.pr9 or args.all or not only:
        ok = run_pr9(args.reps) and ok
    if args.pr10 or args.all or not only:
        ok = run_pr10(args.reps) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
