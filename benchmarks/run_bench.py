"""Before/after harness for the streaming + compiled-expression engine.

Runs the Fig. 3 nestjoin and join-vs-nested-loop workloads twice through
the *same physical plans*:

* **baseline** — ``ExecRuntime(materialized=True, compile_exprs=False)``:
  every operator edge materializes a full ``frozenset`` and every
  parameter expression is re-interpreted per tuple (the pre-PR-1 engine);
* **streaming** — the default runtime: Volcano-style ``iterate`` dataflow
  with parameter expressions compiled once per operator.

Every workload's result is oracle-checked against the reference
interpreter before timing, and both engines must agree exactly.  The
machine-readable outcome lands in ``BENCH_PR1.json`` at the repo root so
the perf trajectory across PRs can be diffed.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.adl import ast as A  # noqa: E402
from repro.adl import builders as B  # noqa: E402
from repro.engine.interpreter import Interpreter  # noqa: E402
from repro.engine.plan import ExecRuntime, HashJoinBase, NestedLoopJoin, Scan  # noqa: E402
from repro.engine.stats import Stats  # noqa: E402
from repro.workload.generator import generate_xy  # noqa: E402
from repro.workload.harness import render_table  # noqa: E402

REPS = 5

XA = B.attr(B.var("x"), "a")
YD = B.attr(B.var("y"), "d")
EQ = B.eq(XA, YD)
TRUE = A.Literal(True)


def _workloads():
    """Yield (name, db, plan, oracle_expr) quadruples."""
    # F3: the Fig. 3 nestjoin at benchmark scale — hash implementation
    db = generate_xy(300, 300, key_domain=100, seed=6)
    yield (
        "fig3_nestjoin_hash",
        db,
        HashJoinBase(
            "nestjoin", "x", "y", (XA,), (YD,), TRUE,
            Scan("X"), Scan("Y"), as_attr="ys", result=A.Var("y"),
        ),
        B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", EQ, "ys"),
    )
    # F3 under nested loops: per-pair predicate evaluation dominates — the
    # workload where compiled expressions matter most
    db = generate_xy(160, 160, key_domain=60, seed=6)
    yield (
        "fig3_nestjoin_nested_loop",
        db,
        NestedLoopJoin(
            "nestjoin", "x", "y", EQ,
            Scan("X"), Scan("Y"), as_attr="ys", result=A.Var("y"),
        ),
        B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", EQ, "ys"),
    )
    # P1: join vs nested loop — the rewritten (hash semijoin) plan
    db = generate_xy(400, 400, key_domain=200, seed=1)
    yield (
        "join_vs_nl_hash_semijoin",
        db,
        HashJoinBase("semijoin", "x", "y", (XA,), (YD,), TRUE, Scan("X"), Scan("Y")),
        B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", EQ),
    )
    # P1: the un-rewritten nested-loop join itself
    db = generate_xy(200, 200, key_domain=100, seed=1)
    yield (
        "join_vs_nl_nested_loop_join",
        db,
        NestedLoopJoin("join", "x", "y", EQ, Scan("X"), Scan("Y")),
        B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ),
    )


def _run(plan, db, **engine):
    stats = Stats()
    result = plan.execute(ExecRuntime(db, stats, **engine))
    wall = min(_timed(plan, db, **engine) for _ in range(REPS))
    return result, stats.snapshot(), wall


def _timed(plan, db, **engine):
    rt = ExecRuntime(db, Stats(), **engine)
    start = time.perf_counter()
    plan.execute(rt)
    return time.perf_counter() - start


def main() -> int:
    workloads = []
    for name, db, plan, oracle_expr in _workloads():
        oracle = Interpreter(db).eval(oracle_expr)
        base_result, base_stats, base_wall = _run(
            plan, db, materialized=True, compile_exprs=False
        )
        stream_result, stream_stats, stream_wall = _run(plan, db)
        if not (base_result == stream_result == oracle):
            raise AssertionError(f"{name}: engines diverged from the interpreter oracle")
        workloads.append(
            {
                "name": name,
                "plan": plan.label,
                "results_match_oracle": True,
                "result_cardinality": len(oracle),
                "baseline": {"wall_s": base_wall, "stats": base_stats},
                "streaming": {"wall_s": stream_wall, "stats": stream_stats},
                "speedup": base_wall / stream_wall if stream_wall else float("inf"),
            }
        )

    max_speedup = max(w["speedup"] for w in workloads)
    report = {
        "pr": 1,
        "description": "streaming Volcano execution + compiled expressions "
        "vs the materializing interpreted engine (same physical plans)",
        "engines": {
            "baseline": "ExecRuntime(materialized=True, compile_exprs=False)",
            "streaming": "ExecRuntime() [default]",
        },
        "reps": REPS,
        "workloads": workloads,
        "max_speedup": max_speedup,
        "meets_2x": max_speedup >= 2.0,
    }
    out_path = ROOT / "BENCH_PR1.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    rows = [
        (
            w["name"],
            w["plan"],
            f"{w['baseline']['wall_s'] * 1e3:.1f}",
            f"{w['streaming']['wall_s'] * 1e3:.1f}",
            f"{w['speedup']:.1f}x",
            w["streaming"]["stats"]["pipeline_breaks"],
        )
        for w in workloads
    ]
    print(
        render_table(
            ["workload", "plan", "baseline ms", "streaming ms", "speedup", "breaks"],
            rows,
            title="PR 1 — streaming + compiled expressions vs materializing engine",
        )
    )
    print(f"\nwrote {out_path} (max speedup {max_speedup:.1f}x, "
          f"meets_2x={report['meets_2x']})")
    return 0 if report["meets_2x"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
