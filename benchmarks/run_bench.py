"""Benchmark harness: per-PR perf gates, oracle-checked.

Two suites:

**PR 2 (default)** — cost-based physical planning vs the PR-1 heuristic
planner, same logical queries, same engine, plans chosen differently:

* ``indexed_lookup_join`` / ``indexed_semijoin`` — small probe side
  against a large indexed extent: the cost-based planner picks an index
  nested-loop join (no scan, no transient hash build of the large side);
* ``selective_indexed_filter`` — an equality selection over an indexed
  attribute becomes a single index probe instead of a full scan;
* ``build_side_skew`` — no index: with skewed operand cardinalities the
  cost-based hash join builds on the *smaller* side (the heuristic always
  builds right); both orientations' ``explain()`` output is recorded so
  the flip is visible.

Every workload is oracle-checked against the reference interpreter
before timing, both planners must agree exactly, and the machine-readable
outcome lands in ``BENCH_PR2.json``.  Catalog ``analyze()`` and index
builds happen once, outside the timed region — statistics and persistent
indexes are amortized across queries, which is the point of a catalog.

**PR 1** (``--pr1``) — streaming + compiled expressions vs the
materializing interpreted engine (same physical plans), written to
``BENCH_PR1.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--reps N] [--pr1 | --all]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.adl import ast as A  # noqa: E402
from repro.adl import builders as B  # noqa: E402
from repro.engine.interpreter import Interpreter  # noqa: E402
from repro.engine.plan import ExecRuntime, HashJoinBase, NestedLoopJoin, Scan  # noqa: E402
from repro.engine.planner import Executor  # noqa: E402
from repro.engine.stats import Stats  # noqa: E402
from repro.storage import Catalog  # noqa: E402
from repro.workload.generator import generate_xy  # noqa: E402
from repro.workload.harness import render_table  # noqa: E402

DEFAULT_REPS = 5

XA = B.attr(B.var("x"), "a")
YD = B.attr(B.var("y"), "d")
EQ = B.eq(XA, YD)
EQ_SWAPPED = B.eq(YD, XA)
TRUE = A.Literal(True)


# ---------------------------------------------------------------------------
# PR 2: cost-based planning vs the PR-1 heuristics
# ---------------------------------------------------------------------------


def _pr2_workloads():
    """Yield (name, db, catalog, expr, note) — catalog prep is untimed."""
    # W1: small probe side, large indexed build side → index NL join
    db = generate_xy(120, 12000, key_domain=6000, seed=2)
    catalog = Catalog(db)
    catalog.analyze()
    catalog.create_index("Y", "d")
    yield (
        "indexed_lookup_join",
        db,
        catalog,
        B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ),
        "120-row probe vs 12000-row indexed extent",
    )
    # W2: the same skew under a semijoin (asymmetric kind, still INLJ)
    yield (
        "indexed_semijoin",
        db,
        catalog,
        B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", EQ),
        "existential probe against the indexed extent",
    )
    # W3: selective equality filter over an indexed attribute
    db = generate_xy(10, 40000, key_domain=2000, seed=3)
    catalog = Catalog(db)
    catalog.analyze()
    catalog.create_index("Y", "d")
    yield (
        "selective_indexed_filter",
        db,
        catalog,
        B.sel("y", B.eq(YD, B.lit(7)), B.extent("Y")),
        "~20 of 40000 rows match; index probe vs full scan",
    )
    # W4: no index — build-side choice on skewed cardinalities
    db = generate_xy(200, 20000, key_domain=10000, seed=4)
    catalog = Catalog(db)
    catalog.analyze()
    yield (
        "build_side_skew",
        db,
        catalog,
        B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ),
        "200 x 20000 hash join; cost model builds the small side",
    )


def _time_execute(executor, expr, reps: int) -> float:
    walls = []
    for _ in range(reps):
        start = time.perf_counter()
        executor.execute(expr)
        walls.append(time.perf_counter() - start)
    return min(walls)


def _run_pr2(reps: int) -> dict:
    workloads = []
    build_side_flip = None
    for name, db, catalog, expr, note in _pr2_workloads():
        oracle = Interpreter(db).eval(expr)

        heuristic_stats = Stats()
        heuristic = Executor(db, heuristic_stats)
        cost_stats = Stats()
        cost_based = Executor(db, cost_stats, catalog=catalog)

        heuristic_result = heuristic.execute(expr)
        cost_result = cost_based.execute(expr)
        if not (heuristic_result == cost_result == oracle):
            raise AssertionError(f"{name}: planners diverged from the oracle")

        heuristic_wall = _time_execute(heuristic, expr, reps)
        cost_wall = _time_execute(cost_based, expr, reps)

        workloads.append(
            {
                "name": name,
                "note": note,
                "results_match_oracle": True,
                "result_cardinality": len(oracle),
                "heuristic": {
                    "wall_s": heuristic_wall,
                    "plan": heuristic.explain(expr).splitlines()[0],
                    "stats": heuristic_stats.snapshot(),
                },
                "cost_based": {
                    "wall_s": cost_wall,
                    "plan": cost_based.explain(expr).splitlines()[0],
                    "stats": cost_stats.snapshot(),
                },
                "speedup": heuristic_wall / cost_wall if cost_wall else float("inf"),
            }
        )

        if name == "build_side_skew":
            swapped = B.join(B.extent("Y"), B.extent("X"), "y", "x", EQ_SWAPPED)
            build_side_flip = {
                "small_left": cost_based.explain(expr).splitlines()[0],
                "small_right": cost_based.explain(swapped).splitlines()[0],
            }

    fast = sorted((w["speedup"] for w in workloads), reverse=True)
    return {
        "pr": 2,
        "description": "cost-based physical planning (catalog statistics, "
        "index access paths, join-strategy and build-side selection) vs the "
        "PR-1 heuristic planner, same logical queries and engine",
        "planners": {
            "heuristic": "Executor(db) — hash join if possible, always builds right",
            "cost_based": "Executor(db, catalog=...) — cost model over catalog stats",
        },
        "reps": reps,
        "workloads": workloads,
        "build_side_flip": build_side_flip,
        "max_speedup": fast[0],
        "meets_1_5x_on_two_workloads": len(fast) >= 2 and fast[1] >= 1.5,
    }


def run_pr2(reps: int) -> bool:
    report = _run_pr2(reps)
    out_path = ROOT / "BENCH_PR2.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    rows = [
        (
            w["name"],
            w["cost_based"]["plan"].split(" [")[0],
            f"{w['heuristic']['wall_s'] * 1e3:.2f}",
            f"{w['cost_based']['wall_s'] * 1e3:.2f}",
            f"{w['speedup']:.1f}x",
        )
        for w in report["workloads"]
    ]
    print(
        render_table(
            ["workload", "chosen plan", "heuristic ms", "cost-based ms", "speedup"],
            rows,
            title="PR 2 — cost-based planning vs heuristic planner",
        )
    )
    flip = report["build_side_flip"]
    print("\nbuild-side flip:")
    print(f"  small left : {flip['small_left']}")
    print(f"  small right: {flip['small_right']}")
    ok = report["meets_1_5x_on_two_workloads"]
    print(f"\nwrote {out_path} (max speedup {report['max_speedup']:.1f}x, "
          f"meets_1_5x_on_two_workloads={ok})")
    return ok


# ---------------------------------------------------------------------------
# PR 1: streaming + compiled expressions vs the materializing engine
# ---------------------------------------------------------------------------


def _pr1_workloads():
    """Yield (name, db, plan, oracle_expr) quadruples."""
    # F3: the Fig. 3 nestjoin at benchmark scale — hash implementation
    db = generate_xy(300, 300, key_domain=100, seed=6)
    yield (
        "fig3_nestjoin_hash",
        db,
        HashJoinBase(
            "nestjoin", "x", "y", (XA,), (YD,), TRUE,
            Scan("X"), Scan("Y"), as_attr="ys", result=A.Var("y"),
        ),
        B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", EQ, "ys"),
    )
    # F3 under nested loops: per-pair predicate evaluation dominates — the
    # workload where compiled expressions matter most
    db = generate_xy(160, 160, key_domain=60, seed=6)
    yield (
        "fig3_nestjoin_nested_loop",
        db,
        NestedLoopJoin(
            "nestjoin", "x", "y", EQ,
            Scan("X"), Scan("Y"), as_attr="ys", result=A.Var("y"),
        ),
        B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", EQ, "ys"),
    )
    # P1: join vs nested loop — the rewritten (hash semijoin) plan
    db = generate_xy(400, 400, key_domain=200, seed=1)
    yield (
        "join_vs_nl_hash_semijoin",
        db,
        HashJoinBase("semijoin", "x", "y", (XA,), (YD,), TRUE, Scan("X"), Scan("Y")),
        B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", EQ),
    )
    # P1: the un-rewritten nested-loop join itself
    db = generate_xy(200, 200, key_domain=100, seed=1)
    yield (
        "join_vs_nl_nested_loop_join",
        db,
        NestedLoopJoin("join", "x", "y", EQ, Scan("X"), Scan("Y")),
        B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ),
    )


def _run_plan(plan, db, reps, **engine):
    stats = Stats()
    result = plan.execute(ExecRuntime(db, stats, **engine))
    wall = min(_timed_plan(plan, db, **engine) for _ in range(reps))
    return result, stats.snapshot(), wall


def _timed_plan(plan, db, **engine):
    rt = ExecRuntime(db, Stats(), **engine)
    start = time.perf_counter()
    plan.execute(rt)
    return time.perf_counter() - start


def run_pr1(reps: int) -> bool:
    workloads = []
    for name, db, plan, oracle_expr in _pr1_workloads():
        oracle = Interpreter(db).eval(oracle_expr)
        base_result, base_stats, base_wall = _run_plan(
            plan, db, reps, materialized=True, compile_exprs=False
        )
        stream_result, stream_stats, stream_wall = _run_plan(plan, db, reps)
        if not (base_result == stream_result == oracle):
            raise AssertionError(f"{name}: engines diverged from the interpreter oracle")
        workloads.append(
            {
                "name": name,
                "plan": plan.label,
                "results_match_oracle": True,
                "result_cardinality": len(oracle),
                "baseline": {"wall_s": base_wall, "stats": base_stats},
                "streaming": {"wall_s": stream_wall, "stats": stream_stats},
                "speedup": base_wall / stream_wall if stream_wall else float("inf"),
            }
        )

    max_speedup = max(w["speedup"] for w in workloads)
    report = {
        "pr": 1,
        "description": "streaming Volcano execution + compiled expressions "
        "vs the materializing interpreted engine (same physical plans)",
        "engines": {
            "baseline": "ExecRuntime(materialized=True, compile_exprs=False)",
            "streaming": "ExecRuntime() [default]",
        },
        "reps": reps,
        "workloads": workloads,
        "max_speedup": max_speedup,
        "meets_2x": max_speedup >= 2.0,
    }
    out_path = ROOT / "BENCH_PR1.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    rows = [
        (
            w["name"],
            w["plan"],
            f"{w['baseline']['wall_s'] * 1e3:.1f}",
            f"{w['streaming']['wall_s'] * 1e3:.1f}",
            f"{w['speedup']:.1f}x",
            w["streaming"]["stats"]["pipeline_breaks"],
        )
        for w in workloads
    ]
    print(
        render_table(
            ["workload", "plan", "baseline ms", "streaming ms", "speedup", "breaks"],
            rows,
            title="PR 1 — streaming + compiled expressions vs materializing engine",
        )
    )
    print(f"\nwrote {out_path} (max speedup {max_speedup:.1f}x, "
          f"meets_2x={report['meets_2x']})")
    return report["meets_2x"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=DEFAULT_REPS,
                        help="timing repetitions per engine (min is kept)")
    parser.add_argument("--pr1", action="store_true",
                        help="run the PR 1 suite instead of PR 2")
    parser.add_argument("--all", action="store_true", help="run both suites")
    args = parser.parse_args(argv)

    ok = True
    if args.pr1 or args.all:
        ok = run_pr1(args.reps) and ok
    if not args.pr1:
        ok = run_pr2(args.reps) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
