"""RE1–RE3 — the paper's rewriting derivations, printed and timed.

Regenerates the three derivations of Section 5.2.1 as step-by-step traces
(cross-checked against the paper's target plans by the test suite) and
times the rewriting machinery itself — the paper's approach only works if
logical optimization is cheap relative to execution.
"""

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.pretty import pretty
from repro.rewrite.strategy import Optimizer, optimize
from repro.workload.harness import print_table

Q = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "a"))


def re1():
    """SET MEMBERSHIP."""
    return B.sel(
        "x",
        B.member(B.attr(B.var("x"), "c"), B.sel("y", Q, B.extent("Y"))),
        B.extent("X"),
    )


def re2():
    """SET INCLUSION."""
    return B.sel(
        "x",
        B.subseteq(B.sel("y", Q, B.extent("Y")), B.attr(B.var("x"), "c")),
        B.extent("X"),
    )


def re3():
    """EXCHANGING QUANTIFIERS."""
    return B.sel(
        "x",
        B.forall("z", B.attr(B.var("x"), "c"),
                 B.supseteq(B.var("z"), B.sel("y", Q, B.extent("Y")))),
        B.extent("X"),
    )


EXAMPLES = [
    ("Rewriting Example 1 (set membership → semijoin)", re1, A.SemiJoin),
    ("Rewriting Example 2 (set inclusion → antijoin)", re2, A.AntiJoin),
    ("Rewriting Example 3 (quantifier exchange → antijoin)", re3, A.AntiJoin),
]


def test_rewriting_example_derivations(benchmark):
    from repro.workload.harness import register_text

    summary = []
    for title, builder, target in EXAMPLES:
        result = optimize(builder())
        assert isinstance(result.expr, target), title
        register_text(f"\n{title}\n{result.trace.render()}")
        summary.append((title, len(result.trace), type(result.expr).__name__))

    print_table(
        ["derivation", "rewrite steps", "target operator"],
        summary,
        title="RE1-RE3 — derivation lengths",
    )

    benchmark(lambda: [optimize(builder()) for _, builder, _ in EXAMPLES])
