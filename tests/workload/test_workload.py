"""Tests for the workload package: paper data, generators, harness."""

import pytest

from repro.datamodel import Oid, VTuple
from repro.engine.interpreter import Interpreter
from repro.oosql import parse
from repro.oosql.typecheck import OOSQLTypeChecker
from repro.workload.generator import generate_database, generate_flat, generate_xy
from repro.workload.harness import render_table, speedup
from repro.workload.paper_db import (
    example_database,
    example_schema,
    figure2_catalog,
    figure2_database,
    figure2_tables,
    figure3_tables,
    section4_catalog,
    section4_database,
)
from repro.workload.queries import ALGEBRA_EXAMPLES, OOSQL_EXAMPLES


class TestPaperSchema:
    def test_schema_has_the_three_classes(self):
        schema = example_schema()
        assert {c.name for c in schema.classes} == {"Part", "Supplier", "Delivery"}
        assert sorted(schema.extent_names) == ["DELIVERY", "PART", "SUPPLIER"]

    def test_example_database_shape(self):
        db = example_database()
        assert db.extent_size("PART") == 8
        assert db.extent_size("SUPPLIER") == 5
        assert db.extent_size("DELIVERY") == 4

    def test_s1_supplies_p0_p1(self):
        db = example_database()
        (s1,) = [s for s in db.extent("SUPPLIER") if s["sname"] == "s1"]
        names = {db.deref(oid)["pname"] for oid in s1["parts_supplied"]}
        assert names == {"p0", "p1"}

    def test_s4_is_the_dangling_supplier(self):
        db = example_database()
        (s4,) = [s for s in db.extent("SUPPLIER") if s["sname"] == "s4"]
        assert s4["parts_supplied"] == frozenset()

    def test_all_example_queries_type_check(self):
        checker = OOSQLTypeChecker(example_schema())
        for name, text in OOSQL_EXAMPLES.items():
            checker.check(parse(text))


class TestSection4Data:
    def test_catalog_types(self):
        cat = section4_catalog()
        supplier_t = cat.extent_type("SUPPLIER").element
        assert set(supplier_t.fields) == {"eid", "sname", "parts"}

    def test_dangling_refs_parameter(self):
        db0 = section4_database(dangling_refs=0)
        db3 = section4_database(dangling_refs=3)
        assert len(db3.extent("SUPPLIER")) == len(db0.extent("SUPPLIER")) + 3

    def test_algebra_examples_evaluate(self):
        db = section4_database()
        interp = Interpreter(db)
        for example in ALGEBRA_EXAMPLES:
            value = interp.eval(example.build())
            assert isinstance(value, frozenset)


class TestFigureInstances:
    def test_figure2_has_the_dangling_tuple(self):
        x_rows, y_rows = figure2_tables()
        dangling = [t for t in x_rows if t["c"] == frozenset()]
        assert len(dangling) == 1 and dangling[0]["a"] == 2
        # no Y partner for a=2
        assert not any(y["d"] == 2 for y in y_rows)

    def test_figure2_catalog_types_the_instance(self):
        from repro.adl import TypeChecker
        from repro.adl import builders as B

        checker = TypeChecker(figure2_catalog())
        checker.check(B.extent("X"))
        checker.check(B.extent("Y"))

    def test_figure3_has_one_dangling_left_tuple(self):
        x_rows, y_rows = figure3_tables()
        matched_b = {y["d"] for y in y_rows}
        dangling = [x for x in x_rows if x["b"] not in matched_b]
        assert len(dangling) == 1 and dangling[0] == VTuple(a=3, b=3)


class TestGenerators:
    def test_generate_database_deterministic(self):
        a = generate_database(seed=5)
        b = generate_database(seed=5)
        assert a.extent("SUPPLIER") == b.extent("SUPPLIER")
        assert a.extent("DELIVERY") == b.extent("DELIVERY")

    def test_generate_database_sizes(self):
        db = generate_database(n_parts=10, n_suppliers=4, n_deliveries=6, seed=1)
        assert db.extent_size("PART") == 10
        assert db.extent_size("SUPPLIER") == 4
        assert db.extent_size("DELIVERY") == 6

    def test_references_are_valid(self):
        db = generate_database(seed=2)
        for delivery in db.extent("DELIVERY"):
            assert db.deref(delivery["supplier"])["oid"] == delivery["supplier"]
            for item in delivery["supply"]:
                db.deref(item["part"])  # must not raise

    def test_generate_flat_unique_and_sized(self):
        rows = generate_flat(10, ("a", "b"), domain=10, seed=3)
        assert len(rows) == len(set(rows)) == 10

    def test_generate_flat_impossible_raises(self):
        with pytest.raises(ValueError):
            generate_flat(100, ("a",), domain=3, seed=0)

    def test_generate_xy_shapes(self):
        db = generate_xy(12, 7, key_domain=5, seed=4)
        assert len(db.extent("X")) == 12
        assert len(db.extent("Y")) == 7

    def test_generate_xy_fanout_attr(self):
        db = generate_xy(10, 5, fanout_attr=True, max_fanout=2, seed=4)
        for row in db.extent("X"):
            assert isinstance(row["c"], frozenset)
            assert len(row["c"]) <= 2


class TestHarness:
    def test_render_table_alignment(self):
        text = render_table(["col", "x"], [("a", 1), ("long-cell", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[1]
        # column separator aligned in every row
        positions = {line.index("|") for line in lines[1:] if "|" in line}
        assert len(positions) == 1

    def test_render_table_stringifies(self):
        text = render_table(["a"], [(frozenset({1}),)])
        assert "frozenset" in text or "{1}" in text

    def test_speedup(self):
        assert speedup(100, 10) == "10.0x"
        assert speedup(5, 0) == "inf"
