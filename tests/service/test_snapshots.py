"""Snapshot isolation and overload shedding at the service layer (PR 7).

The visibility contract: a query pins the store's epoch at submission
and every read — serial operators, statistics, shipped fragments —
resolves against that one epoch.  Session snapshots extend one pin
across queries.  The shed policy: queued work past ``queue_wait_s`` and
sessions past ``session_max_in_flight`` are refused with
:class:`OverloadError` (retry-after attached), never silently queued.
"""

import threading
import time

import pytest

from repro.datamodel import VTuple
from repro.datamodel.errors import AdmissionError, OverloadError, ServiceError
from repro.service import QueryService
from repro.storage import MemoryDatabase

JOIN = "select (b = x.b, e = y.e) from x in X, y in Y where x.a = y.d"
SIMPLE = "select x.b from x in X where x.a = $k"


def _db(n=60, mod=6):
    return MemoryDatabase(
        {
            "X": [VTuple(a=i % mod, b=i) for i in range(n)],
            "Y": [VTuple(d=i % mod, e=i) for i in range(n)],
        }
    )


# ---------------------------------------------------------------------------
# per-query snapshot pinning
# ---------------------------------------------------------------------------


def test_result_carries_its_epoch():
    db = _db()
    with QueryService(db) as svc:
        r = svc.execute(SIMPLE, {"k": 1})
        assert r.epoch == db.epoch
        db.insert_rows("X", [VTuple(a=1, b=999)])
        r2 = svc.execute(SIMPLE, {"k": 1})
        assert r2.epoch == db.epoch
        assert r2.epoch > r.epoch


def test_snapshot_isolation_off_reads_live_head():
    db = _db()
    with QueryService(db, snapshot_isolation=False) as svc:
        r = svc.execute(SIMPLE, {"k": 1})
        assert r.epoch is None
        with pytest.raises(ServiceError, match="unavailable"):
            svc.session().begin_snapshot()


def test_query_pins_are_released_after_execution():
    db = _db()
    with QueryService(db) as svc:
        for k in range(3):
            svc.execute(SIMPLE, {"k": k})
        stats = db.epoch_stats()
        assert stats["pinned"] == 0
        assert stats["pin_events"] >= 3
        assert svc.stats()["pins_taken"] >= 3


def test_multi_extent_batch_is_atomic_to_readers():
    # a reader pinned before a two-extent batch sees *neither* half of it
    db = _db()
    with QueryService(db) as svc:
        s = svc.session()
        with s.snapshot() as epoch:
            before = s.execute(JOIN).rows
            with db.batch():
                db.insert_rows("X", [VTuple(a=0, b=1000)])
                db.insert_rows("Y", [VTuple(d=0, e=2000)])
            during = s.execute(JOIN)
            assert during.rows == before
            assert during.epoch == epoch
        after = s.execute(JOIN).rows
        assert {(r["b"], r["e"]) for r in after} >= {
            (1000, 2000)
        }  # both halves visible together


def test_session_snapshot_repeatable_reads():
    db = _db()
    with QueryService(db) as svc:
        s = svc.session()
        epoch = s.begin_snapshot()
        r1 = s.execute(SIMPLE, {"k": 2})
        db.insert_rows("X", [VTuple(a=2, b=777)])
        r2 = s.execute(SIMPLE, {"k": 2})
        assert r1.rows == r2.rows
        assert r1.epoch == r2.epoch == epoch
        s.end_snapshot()
        r3 = s.execute(SIMPLE, {"k": 2})
        assert r3.rows != r1.rows  # the insert is visible again

    assert db.epoch_stats()["pinned"] == 0


def test_session_snapshot_misuse_rejected():
    db = _db()
    with QueryService(db) as svc:
        s = svc.session()
        s.begin_snapshot()
        with pytest.raises(ServiceError, match="already holds"):
            s.begin_snapshot()
        s.end_snapshot()
        with pytest.raises(ServiceError, match="holds no snapshot"):
            s.end_snapshot()


def test_session_close_releases_its_snapshot():
    db = _db()
    with QueryService(db) as svc:
        s = svc.session()
        s.begin_snapshot()
        db.insert_rows("X", [VTuple(a=0, b=123)])
        assert db.epoch_stats()["pinned"] == 1
        s.close()
        assert db.epoch_stats()["pinned"] == 0


def test_concurrent_writer_does_not_tear_serial_join():
    # a writer inserting matched pairs into both join sides between
    # queries: every result must equal the oracle at the result's epoch
    db = _db(n=30)
    db.keep_history = True
    stop = threading.Event()

    def writer():
        # throttled and bounded: the point is interleaving, not volume —
        # an unbounded tight loop would grow the join sides (and the
        # O(|X|*|Y|) oracle below) without limit
        for i in range(300):
            if stop.is_set():
                return
            with db.batch():
                db.insert_rows("X", [VTuple(a=i % 6, b=10_000 + i)])
                db.insert_rows("Y", [VTuple(d=i % 6, e=20_000 + i)])
            time.sleep(0.001)

    t = threading.Thread(target=writer)
    t.start()
    try:
        with QueryService(db, max_workers=4) as svc:
            s = svc.session()
            for _ in range(12):
                r = s.execute(JOIN)
                xs = db.extent_at("X", r.epoch)
                ys = db.extent_at("Y", r.epoch)
                oracle = {
                    (x["b"], y["e"]) for x in xs for y in ys if x["a"] == y["d"]
                }
                assert {(row["b"], row["e"]) for row in r.rows} == oracle
    finally:
        stop.set()
        t.join()


# ---------------------------------------------------------------------------
# estimate-vs-actual recording on epoch mismatch
# ---------------------------------------------------------------------------


def test_epoch_mismatch_records_estimate_delta():
    db = _db()
    with QueryService(db) as svc:
        svc.execute(JOIN)  # compiles at the current epoch
        db.insert_rows("X", [VTuple(a=0, b=555)])  # epoch moves, catalog doesn't
        r = svc.execute(JOIN)  # cache hit: plan priced at the old epoch
        assert r.cache_hit
        stats = svc.stats()
        assert stats["epoch_mismatch_runs"] >= 1
        rec = stats["epoch_mismatches"][-1]
        assert rec["planned_epoch"] < rec["executed_epoch"]
        assert rec["actual_rows"] == len(r.rows)


# ---------------------------------------------------------------------------
# overload shedding
# ---------------------------------------------------------------------------


class _GatedDatabase(MemoryDatabase):
    """Extent access blocks until the gate opens (same trick as
    test_service.py) — makes saturation a deterministic state."""

    def __init__(self, extents):
        super().__init__(extents)
        self.gate = threading.Event()
        self.started = threading.Event()

    def extent(self, name):
        self.started.set()
        if not self.gate.wait(timeout=30):
            raise RuntimeError("test gate never opened")
        return super().extent(name)


def test_queue_wait_shed_instead_of_late_execution():
    db = _GatedDatabase({"X": [VTuple(a=i % 3, b=i) for i in range(9)]})
    with QueryService(db, max_workers=1, queue_depth=2, queue_wait_s=0.05) as svc:
        s = svc.session()
        first = s.execute_async(SIMPLE, {"k": 0})
        assert db.started.wait(timeout=30)
        queued = s.execute_async(SIMPLE, {"k": 1})
        time.sleep(0.2)  # let the queued query's wait blow the shed deadline
        db.gate.set()
        assert first.result().rows
        with pytest.raises(OverloadError) as exc_info:
            queued.result()
        assert exc_info.value.retry_after_s == pytest.approx(0.05)
        assert svc.stats()["shed_queue_wait"] == 1
    assert db.epoch_stats()["pinned"] == 0  # shed queries still unpin


def test_admission_error_is_an_overload_error():
    db = _GatedDatabase({"X": [VTuple(a=i % 3, b=i) for i in range(9)]})
    with QueryService(db, max_workers=1, queue_depth=0) as svc:
        s = svc.session()
        first = s.execute_async(SIMPLE, {"k": 0})
        assert db.started.wait(timeout=30)
        with pytest.raises(OverloadError) as exc_info:
            s.execute_async(SIMPLE, {"k": 1})
        assert isinstance(exc_info.value, AdmissionError)
        assert exc_info.value.retry_after_s > 0
        db.gate.set()
        first.result()


def test_session_fairness_cap():
    db = _GatedDatabase({"X": [VTuple(a=i % 3, b=i) for i in range(9)]})
    with QueryService(
        db, max_workers=2, queue_depth=8, session_max_in_flight=2
    ) as svc:
        greedy, polite = svc.session(), svc.session()
        futures = [greedy.execute_async(SIMPLE, {"k": 0}) for _ in range(2)]
        assert db.started.wait(timeout=30)
        # the greedy session is at its cap; the service still has slots
        with pytest.raises(OverloadError, match="outstanding"):
            greedy.execute_async(SIMPLE, {"k": 1})
        # ...which the polite session can use
        other = polite.execute_async(SIMPLE, {"k": 2})
        db.gate.set()
        assert all(f.result().rows is not None for f in futures)
        assert other.result().rows is not None
        assert svc.stats()["shed_fairness"] == 1
        # the cap frees as work drains
        assert greedy.execute(SIMPLE, {"k": 1}).rows is not None


def test_shed_counters_in_stats():
    db = _db()
    with QueryService(db, queue_wait_s=1.0, session_max_in_flight=4) as svc:
        svc.execute(SIMPLE, {"k": 0})
        stats = svc.stats()
        for key in (
            "pins_taken",
            "shed_queue_wait",
            "shed_fairness",
            "epoch_mismatch_runs",
            "warm_restored",
            "warm_dropped",
        ):
            assert key in stats
        assert stats["epochs"]["pinned"] == 0
        assert stats["epochs"]["epoch"] == db.epoch
