"""Service integration of partition-parallel execution, plus the
per-shape compile-lock fix (the PR-4 known simplification)."""

import threading
import time

import pytest

from repro.datamodel import VTuple
from repro.service import QueryService
from repro.storage import Catalog, MemoryDatabase


def co_partitioned_db(n=4000, parts=4):
    db = MemoryDatabase({
        "X": [VTuple(a=i, v=i % 100, i=i) for i in range(n)],
        "Y": [VTuple(d=i % n, w=i % 7) for i in range(n)],
    })
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "a", parts)
    catalog.partition("Y", "d", parts)
    return db, catalog


PARALLEL_QUERY = "select x.i from x in X where exists y in Y : x.a = y.d and y.w < $m"
SERIAL_QUERY = "select x.i from x in X where x.a = $k"


class TestParallelRouting:
    def test_parallel_plan_matches_serial_service(self):
        db, catalog = co_partitioned_db()
        with QueryService(db, catalog=catalog) as serial:
            want = frozenset(serial.execute(PARALLEL_QUERY, {"m": 3}).rows)
        with QueryService(
            db, catalog=catalog, parallel_workers=4, parallel_mode="inline"
        ) as svc:
            explained = svc.explain(PARALLEL_QUERY)
            assert "Exchange(gather)" in explained
            assert "partition-wise, 4 parts" in explained
            got = svc.execute(PARALLEL_QUERY, {"m": 3})
            assert frozenset(got.rows) == want
            # the parallel run's fragment work landed in per-query stats
            assert got.stats["hash_probes"] > 0
            assert got.stats["pipeline_breaks"] >= 1

    def test_process_pool_end_to_end(self):
        db, catalog = co_partitioned_db()
        with QueryService(db, catalog=catalog) as serial:
            want = frozenset(serial.execute(PARALLEL_QUERY, {"m": 2}).rows)
        with QueryService(
            db, catalog=catalog, parallel_workers=2, parallel_mode="process"
        ) as svc:
            got = svc.execute(PARALLEL_QUERY, {"m": 2})
            assert frozenset(got.rows) == want
            stats = svc.stats()
            assert stats["parallel"]["runs"] == 1
            assert stats["parallel"]["mode"] == "process"

    def test_serial_shapes_unaffected(self):
        db, catalog = co_partitioned_db(n=500)
        with QueryService(
            db, catalog=catalog, parallel_workers=4, parallel_mode="inline"
        ) as svc:
            explained = svc.explain(SERIAL_QUERY)
            assert "Exchange" not in explained
            got = svc.execute(SERIAL_QUERY, {"k": 17})
            assert frozenset(got.rows) == {17}  # x.i projects bare ints
            assert svc.stats().get("parallel") is None  # pool never created

    def test_catalog_bump_retires_pool_and_replans(self):
        db, catalog = co_partitioned_db()
        with QueryService(
            db, catalog=catalog, parallel_workers=2, parallel_mode="inline"
        ) as svc:
            first = svc.execute(PARALLEL_QUERY, {"m": 3})
            catalog.analyze()  # version bump
            second = svc.execute(PARALLEL_QUERY, {"m": 3})
            assert not second.cache_hit  # plan recompiled under new version
            assert frozenset(first.rows) == frozenset(second.rows)

    def test_notified_insert_visible_to_parallel_queries(self):
        """A notified insert (no version bump until a stats lookup) must
        still be visible to the next parallel execution — stale stored
        shards re-derive through the snapshot's identity handshake."""
        from repro.datamodel import VTuple

        db, catalog = co_partitioned_db(n=1500)
        with QueryService(
            db, catalog=catalog, parallel_workers=4, parallel_mode="inline"
        ) as svc:
            before = svc.execute(PARALLEL_QUERY, {"m": 7})
            db.insert_rows("X", [VTuple(a=0, v=0, i=91000)])
            db.insert_rows("Y", [VTuple(d=0, w=0)])
            after = svc.execute(PARALLEL_QUERY, {"m": 7})
        with QueryService(db, catalog=catalog) as serial:
            want = frozenset(serial.execute(PARALLEL_QUERY, {"m": 7}).rows)
        assert frozenset(after.rows) == want
        assert 91000 in frozenset(after.rows)
        assert 91000 not in frozenset(before.rows)

    def test_no_executor_created_after_close(self):
        """A query racing close() must not fork an orphan pool: the
        handle lookup returns None and the gather runs inline."""
        db, catalog = co_partitioned_db(n=500)
        svc = QueryService(db, catalog=catalog, parallel_workers=4,
                           parallel_mode="process")
        svc.close()
        assert svc._parallel_handle() is None
        assert svc._parallel is None

    def test_parallel_plans_cache_hit(self):
        db, catalog = co_partitioned_db()
        with QueryService(
            db, catalog=catalog, parallel_workers=2, parallel_mode="inline"
        ) as svc:
            svc.execute(PARALLEL_QUERY, {"m": 3})
            again = svc.execute(PARALLEL_QUERY, {"m": 5})
            assert again.cache_hit


class TestPerShapeCompileLocks:
    """The PR-4 simplification, fixed: distinct shapes compile
    concurrently; one shape still compiles exactly once."""

    @staticmethod
    def _slow_service(db, catalog, delay=0.15, **kw):
        class SlowCompileService(QueryService):
            concurrent_peak = 0
            _active = 0
            _gauge = threading.Lock()

            def _compile(self, shape, param_names):
                cls = type(self)
                with cls._gauge:
                    cls._active += 1
                    cls.concurrent_peak = max(cls.concurrent_peak, cls._active)
                try:
                    time.sleep(delay)  # two slow-to-compile shapes
                    return super()._compile(shape, param_names)
                finally:
                    with cls._gauge:
                        cls._active -= 1

        return SlowCompileService(db, catalog=catalog, **kw)

    def test_distinct_shapes_compile_concurrently(self):
        db, catalog = co_partitioned_db(n=300)
        shapes = [
            "select x.i from x in X where x.a = 1",
            "select x.i from x in X where x.a = 2",  # distinct literal = distinct shape
        ]
        svc = self._slow_service(db, catalog, max_workers=4)
        with svc:
            threads = [
                threading.Thread(target=svc.execute, args=(text,)) for text in shapes
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
        assert type(svc).concurrent_peak == 2  # both compiles in flight at once
        assert elapsed < 0.29  # not serialized (2 x 0.15s)
        assert svc.compilations == 2

    def test_same_shape_still_compiles_once(self):
        db, catalog = co_partitioned_db(n=300)
        svc = self._slow_service(db, catalog, max_workers=4)
        with svc:
            threads = [
                threading.Thread(
                    target=svc.execute, args=(SERIAL_QUERY, {"k": i})
                )
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert svc.compilations == 1  # no duplicate compile of one shape
        assert type(svc).concurrent_peak == 1

    def test_lock_registry_stays_bounded(self):
        db, catalog = co_partitioned_db(n=300)
        with QueryService(db, catalog=catalog) as svc:
            for k in range(8):
                svc.execute(f"select x.i from x in X where x.a = {k}")
            assert svc._compile_locks == {}  # refcounted entries all dropped
