"""Per-query deadlines and fault surfacing at the service layer (PR 6).

``execute(timeout=...)`` must bound a query's *total* latency — queue
wait, compile, serial hot loops and parallel batches alike — raising
:class:`QueryTimeoutError` within the engine's polling granularity, with
any worker pool reclaimed so the next query runs normally.  Fault
recovery below the service must surface on ``QueryResult.faults`` and in
``stats()``, never in the rows.
"""

import time

import pytest

from repro.datamodel import VTuple
from repro.datamodel.errors import QueryTimeoutError, ServiceError
from repro.faults import FaultPlan, RetryPolicy
from repro.service import QueryService
from repro.storage import Catalog, MemoryDatabase

#: non-equality correlated predicate with no matches: the optimizer keeps
#: the nested-loop semijoin and must grind through all |X| * |Y| pairs
SLOW_QUERY = "select x.i from x in X where exists y in Y : x.a * y.d = $k"
PARALLEL_QUERY = "select x.i from x in X where exists y in Y : x.a = y.d and y.w < $m"

FAST = RetryPolicy(max_attempts=3, base_s=0.001, max_s=0.002)


def slow_db(n=1500):
    return MemoryDatabase({
        "X": [VTuple(a=i, i=i) for i in range(n)],
        "Y": [VTuple(d=i, w=i % 7) for i in range(n)],
    })


def co_partitioned_db(n=2500, parts=4):
    db = MemoryDatabase({
        "X": [VTuple(a=i, v=i % 100, i=i) for i in range(n)],
        "Y": [VTuple(d=i % n, w=i % 7) for i in range(n)],
    })
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "a", parts)
    catalog.partition("Y", "d", parts)
    return db, catalog


class TestSerialDeadlines:
    def test_slow_serial_query_times_out_promptly(self):
        with QueryService(slow_db()) as svc:
            start = time.monotonic()
            with pytest.raises(QueryTimeoutError):
                svc.execute(SLOW_QUERY, {"k": -1}, timeout=0.1)
            # a multi-second nested loop cancelled near its 0.1 s budget
            assert time.monotonic() - start < 2.0
            assert svc.stats()["timeouts"] == 1

    def test_generous_timeout_does_not_fire(self):
        with QueryService(slow_db(n=120)) as svc:
            res = svc.execute(SLOW_QUERY, {"k": -1}, timeout=30.0)
            assert res.rows == frozenset()
            assert svc.stats()["timeouts"] == 0
            assert res.faults == {}

    def test_timeout_zero_is_instant(self):
        with QueryService(slow_db(n=50)) as svc:
            with pytest.raises(QueryTimeoutError):
                svc.execute(SLOW_QUERY, {"k": -1}, timeout=0)

    def test_negative_timeout_rejected(self):
        with QueryService(slow_db(n=50)) as svc:
            with pytest.raises(ServiceError):
                svc.execute(SLOW_QUERY, {"k": -1}, timeout=-1)

    def test_queue_wait_spends_the_budget(self):
        """The deadline starts at submission: a query stuck behind a slow
        one on a single-worker service times out without ever executing."""
        with QueryService(slow_db(), max_workers=1, max_in_flight=1) as svc:
            session = svc.session()
            blocker = session.execute_async(SLOW_QUERY, {"k": -1})
            queued = session.execute_async(SLOW_QUERY, {"k": -2}, timeout=0.05)
            with pytest.raises(QueryTimeoutError):
                queued.result(timeout=30)
            blocker.result(timeout=60)  # the untimed query still completes
            assert svc.stats()["timeouts"] == 1

    def test_prepared_statement_timeout(self):
        with QueryService(slow_db()) as svc:
            session = svc.session()
            stmt = session.prepare(SLOW_QUERY)
            with pytest.raises(QueryTimeoutError):
                stmt.execute({"k": -1}, timeout=0.1)
            res = stmt.execute({"k": 1}, timeout=30.0)
            assert isinstance(res.rows, frozenset)


class TestParallelDeadlines:
    def test_hung_worker_times_out_and_pool_is_reclaimed(self):
        db, catalog = co_partitioned_db()
        with QueryService(db, catalog=catalog, parallel_workers=4,
                          fault_plan=FaultPlan.hang(fragment=0, delay_s=30.0),
                          retry_policy=FAST) as svc:
            with QueryService(db, catalog=catalog) as serial:
                want = serial.execute(PARALLEL_QUERY, {"m": 3}).rows
            start = time.monotonic()
            with pytest.raises(QueryTimeoutError):
                svc.execute(PARALLEL_QUERY, {"m": 3}, timeout=0.4)
            assert time.monotonic() - start < 5.0
            assert svc.stats()["timeouts"] == 1
            # the pool was reclaimed, not wedged: clear the plan and the
            # same service answers the same query with oracle rows
            svc._parallel_handle().inject(None)
            res = svc.execute(PARALLEL_QUERY, {"m": 3})
            assert res.rows == want


class TestFaultSurfacing:
    def test_worker_crash_surfaces_as_degraded_result(self):
        db, catalog = co_partitioned_db()
        with QueryService(db, catalog=catalog) as serial:
            want = serial.execute(PARALLEL_QUERY, {"m": 3}).rows
        with QueryService(db, catalog=catalog, parallel_workers=4,
                          fault_plan=FaultPlan.crash_once(fragment=0,
                                                          where="worker"),
                          retry_policy=FAST) as svc:
            res = svc.execute(PARALLEL_QUERY, {"m": 3})
            assert res.rows == want  # identical rows despite the crash
            assert res.faults["degraded"] and res.faults["retries"] == 1
            assert res.faults["mode"] == "inline"
            stats = svc.stats()
            assert stats["degraded_runs"] == 1 and stats["retries"] == 1
            assert stats["parallel"]["pool_deaths"] == 1
            assert stats["parallel"]["breaker"]["state"] == "closed"

    def test_transient_fault_surfaces_as_retries(self):
        db, catalog = co_partitioned_db()
        with QueryService(db, catalog=catalog) as serial:
            want = serial.execute(PARALLEL_QUERY, {"m": 3}).rows
        with QueryService(db, catalog=catalog, parallel_workers=4,
                          fault_plan=FaultPlan.transient(times=1),
                          retry_policy=FAST) as svc:
            res = svc.execute(PARALLEL_QUERY, {"m": 3})
            assert res.rows == want
            assert res.faults["retries"] == 1 and not res.faults["degraded"]
            stats = svc.stats()
            assert stats["retries"] == 1 and stats["degraded_runs"] == 0
            assert stats["parallel"]["transient_faults"] == 1

    def test_fault_free_result_has_empty_faults(self):
        db, catalog = co_partitioned_db()
        with QueryService(db, catalog=catalog, parallel_workers=4,
                          parallel_mode="inline") as svc:
            res = svc.execute(PARALLEL_QUERY, {"m": 3})
            assert res.faults.get("retries", 0) == 0
            assert not res.faults.get("degraded", False)
            stats = svc.stats()
            assert stats["timeouts"] == 0 and stats["retries"] == 0
