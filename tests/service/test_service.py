"""QueryService behaviour: sessions, prepared statements, admission
control, and the concurrency contract — N concurrent sessions over one
shared database return exactly the results serial execution returns
(per-execution runtimes mean no shared mutable state can bleed between
queries)."""

import threading

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import VTuple
from repro.datamodel.errors import AdmissionError, ServiceError, TypeCheckError
from repro.engine.interpreter import evaluate
from repro.engine.planner import Planner
from repro.service import QueryService
from repro.storage import Catalog, MemoryDatabase
from repro.workload.paper_db import section4_catalog, section4_database


def _db(n=200, mod=20):
    return MemoryDatabase(
        {
            "X": [VTuple(a=i % mod, b=i) for i in range(n)],
            "Y": [VTuple(d=i % mod, e=i) for i in range(n)],
        }
    )


# ---------------------------------------------------------------------------
# sessions and prepared statements
# ---------------------------------------------------------------------------


def test_prepare_compiles_once_and_reports_params():
    with QueryService(_db()) as svc:
        s1, s2 = svc.session(), svc.session()
        text = "select x.b from x in X where x.a = $k"
        stmt1 = s1.prepare(text)
        stmt2 = s2.prepare("SELECT x.b FROM x IN X WHERE x.a = $k")
        assert stmt1.param_names == ("k",)
        assert stmt1.shape == stmt2.shape
        assert svc.compilations == 1  # shared across sessions
        r = stmt1.execute(k=3)
        assert r.cache_hit and len(r.rows) == 10


def test_binding_validation_is_strict_both_ways():
    with QueryService(_db()) as svc:
        s = svc.session()
        stmt = s.prepare("select x.b from x in X where x.a = $k")
        with pytest.raises(ServiceError, match=r"missing.*\$k"):
            stmt.execute()
        with pytest.raises(ServiceError, match=r"unexpected.*\$kk"):
            stmt.execute(k=1, kk=2)
        with pytest.raises(ServiceError, match="one dict or as keywords"):
            stmt.execute({"k": 1}, k=2)


def test_parameterless_query_and_repeat_hits():
    with QueryService(_db()) as svc:
        r1 = svc.execute("select x.b from x in X where x.a = 1")
        r2 = svc.execute("select x.b from x in X where x.a = 1")
        assert not r1.cache_hit and r2.cache_hit
        assert r1.rows == r2.rows
        # accounting matches per-query outcomes: one miss (the compile),
        # one hit — not a miss per internal lookup
        assert svc.cache.stats.snapshot() == {
            "hits": 1, "misses": 1, "invalidations": 0, "evictions": 0,
        }


def test_explain_is_counter_neutral():
    with QueryService(_db()) as svc:
        text = "select x.b from x in X where x.a = $k"
        svc.execute(text, {"k": 1})
        before = svc.cache.stats.snapshot()
        for _ in range(3):
            assert "Scan" in svc.explain(text)
        assert svc.cache.stats.snapshot() == before


def test_per_session_stats_accumulate():
    with QueryService(_db()) as svc:
        s = svc.session()
        stmt = s.prepare("select x.b from x in X where x.a = $k")
        for k in range(4):
            stmt.execute(k=k)
        stats = s.stats
        assert stats["queries"] == 4
        assert stats["cache_hits"] == 4       # prepare() compiled eagerly
        assert stats["work"]["tuples_visited"] > 0
        assert stats["wall_s"] > 0.0


def test_closed_session_and_closed_service_reject_work():
    svc = QueryService(_db())
    s = svc.session()
    s.close()
    with pytest.raises(ServiceError, match="closed"):
        s.execute("select x.b from x in X")
    svc.close()
    with pytest.raises(ServiceError, match="closed"):
        svc.session()


def test_prepare_time_errors_surface_at_prepare_time():
    db = section4_database()
    with QueryService(db, section4_catalog()) as svc:
        s = svc.session()
        with pytest.raises(TypeCheckError):
            s.prepare("select s.nope from s in SUPPLIER")


def test_failed_execution_counts_as_session_error():
    with QueryService(_db()) as svc:
        s = svc.session()
        # $k bound to a string makes x.a = $k fine (equality is universal)
        # but x.a < $k is an ordered comparison across types at runtime
        stmt = s.prepare("select x.b from x in X where x.a < $k")
        from repro.datamodel.errors import EvaluationError

        with pytest.raises(EvaluationError):
            stmt.execute(k="not-a-number")
        assert s.stats["errors"] == 1


def test_paper_db_service_with_schema():
    db = section4_database()
    catalog = Catalog(db)
    catalog.analyze()
    with QueryService(db, section4_catalog(), catalog) as svc:
        s = svc.session()
        stmt = s.prepare(
            "select s.sname from s in SUPPLIER where exists p in PART : "
            "(exists y in s.parts : y.pid = p.pid) and p.price < $maxprice"
        )
        assert sorted(stmt.execute(maxprice=12).rows) == ["s1"]
        assert sorted(stmt.execute(maxprice=100).rows) == ["s1", "s2", "s3"]
        assert stmt.execute(maxprice=12).option in (
            "relational", "grouping", "unnest", "nestjoin", "combined", "none-needed",
        )


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

class _GatedDatabase(MemoryDatabase):
    """Extent access blocks until the gate opens — makes 'a query is still
    running' a deterministic state instead of a timing assumption."""

    def __init__(self, extents):
        super().__init__(extents)
        self.gate = threading.Event()
        self.started = threading.Event()

    def extent(self, name):
        self.started.set()
        if not self.gate.wait(timeout=30):
            raise RuntimeError("test gate never opened")
        return super().extent(name)


GATED_QUERY = "select x.b from x in X where x.a = $k"


def test_admission_rejects_when_saturated():
    db = _GatedDatabase({"X": [VTuple(a=i % 5, b=i) for i in range(20)]})
    with QueryService(db, max_workers=1, queue_depth=0) as svc:
        s = svc.session()
        first = s.execute_async(GATED_QUERY, {"k": 1})
        assert db.started.wait(timeout=30)  # the query is now in flight
        with pytest.raises(AdmissionError, match="saturated"):
            # the slot frees only when `first` completes; this submit
            # happens while it is provably still running
            s.execute_async(GATED_QUERY, {"k": 2})
        assert svc.rejected == 1
        db.gate.set()
        assert first.result().rows
        # capacity is released after completion
        assert s.execute(GATED_QUERY, {"k": 3}).rows


def test_queue_depth_admits_waiting_work():
    db = _GatedDatabase({"X": [VTuple(a=i % 5, b=i) for i in range(20)]})
    with QueryService(db, max_workers=1, queue_depth=2) as svc:
        s = svc.session()
        futures = [s.execute_async(GATED_QUERY, {"k": i % 5}) for i in range(3)]
        assert db.started.wait(timeout=30)
        # 1 in flight + 2 queued fills the service; one more is rejected
        with pytest.raises(AdmissionError):
            s.execute_async(GATED_QUERY, {"k": 4})
        db.gate.set()
        results = [f.result() for f in futures]
        assert all(r.rows for r in results)
        assert svc.rejected == 1


# ---------------------------------------------------------------------------
# concurrency: shared db, per-execution state (the satellite regression)
# ---------------------------------------------------------------------------


def _concurrent_queries():
    return [
        ("select x.b from x in X where x.a = $k", {"k": k}) for k in range(4)
    ] + [
        (
            "select (b = x.b, e = y.e) from x in X, y in Y "
            "where x.a = y.d and y.e < $hi",
            {"hi": hi},
        )
        for hi in (40, 80, 120, 160)
    ]


def test_eight_concurrent_sessions_match_serial_oracle():
    db = _db(240, 12)
    catalog = Catalog(db)
    catalog.analyze()
    catalog.create_index("Y", "d")

    # serial oracle: a fresh service, one query at a time
    with QueryService(db, catalog=catalog, cache_size=0, max_workers=1) as oracle_svc:
        expected = [
            frozenset(oracle_svc.execute(text, params).rows)
            for text, params in _concurrent_queries()
        ]

    with QueryService(db, catalog=catalog, max_workers=8, queue_depth=64) as svc:
        sessions = [svc.session() for _ in range(8)]
        rounds = 5
        outcomes = [[None] * len(expected) for _ in range(8)]
        errors = []
        barrier = threading.Barrier(8)

        def worker(wid):
            try:
                barrier.wait()
                session = sessions[wid]
                for _ in range(rounds):
                    for qi, (text, params) in enumerate(_concurrent_queries()):
                        rows = frozenset(session.execute(text, params).rows)
                        if outcomes[wid][qi] is None:
                            outcomes[wid][qi] = rows
                        assert outcomes[wid][qi] == rows
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors, errors
        for wid in range(8):
            assert outcomes[wid] == expected
        stats = svc.stats()
        assert stats["executed"] == 8 * rounds * len(expected)
        assert stats["peak_in_flight"] >= 2  # genuinely concurrent
        # the 8 queries are 4 bindings each of 2 shapes: each shape
        # compiled once, everything else hit the cache
        assert stats["compilations"] == 2
        for session in sessions:
            assert session.stats["errors"] == 0


def test_shared_planner_concurrent_plan_calls_are_consistent():
    """`Planner.last_join_orders` is assigned once per plan() — concurrent
    planners sharing an instance never observe a half-built decision list."""
    db = MemoryDatabase(
        {
            "R1": [VTuple(a1=i % 5, i1=i) for i in range(60)],
            "R2": [VTuple(a2=i % 5, b2=i % 4, i2=i) for i in range(60)],
            "R3": [VTuple(b3=i % 4, i3=i) for i in range(10)],
        }
    )
    catalog = Catalog(db)
    catalog.analyze()

    def av(v, a):
        return B.attr(B.var(v), a)

    chain = B.join(
        B.join(B.extent("R1"), B.extent("R2"), "x", "y", B.eq(av("x", "a1"), av("y", "a2"))),
        B.extent("R3"), "t", "z", B.eq(av("t", "b2"), av("z", "b3")),
    )
    single = B.sel("x", B.eq(av("x", "a1"), A.Param("k")), B.extent("R1"))

    planner = Planner(catalog)
    observed = []
    errors = []

    def worker(expr, want_decisions):
        try:
            for _ in range(30):
                planner.plan(expr)
                seen = planner.last_join_orders
                # the attribute always holds a *complete* list: [] for the
                # single-extent query, exactly one decision for the chain
                assert len(seen) in (0, 1)
                observed.append(len(seen))
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(chain, 1)),
        threading.Thread(target=worker, args=(single, 0)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    assert set(observed) <= {0, 1}


def test_concurrent_execution_against_interpreter_oracle():
    """Results under concurrency equal the reference interpreter's."""
    db = _db(120, 10)
    expr = B.sel("x", B.eq(B.attr(B.var("x"), "a"), A.Param("k")), B.extent("X"))
    with QueryService(db, max_workers=4, queue_depth=32) as svc:
        session = svc.session()
        futures = [
            session.execute_async("select x from x in X where x.a = $k", {"k": k % 10})
            for k in range(40)
        ]
        for k, future in enumerate(futures):
            want = evaluate(expr, db, params={"k": k % 10})
            assert frozenset(future.result().rows) == want
