"""Randomized reader/writer stress for snapshot isolation (PR 7).

Writer threads interleave inserts, deletes, and ``analyze()`` while
concurrent sessions run serial and parallel-capable shapes.  The single
invariant: **every** :class:`QueryResult` must equal the serial oracle
computed at the result's own epoch — never a torn mix of epochs.

``keep_history=True`` turns the store into its own time machine, so the
oracle for any result epoch stays computable after the run.  Iteration
counts are bounded and writers are throttled: the point is interleaving
under contention, not volume (CI runs this repeatedly).
"""

import random
import threading

import pytest

from repro.datamodel import VTuple
from repro.service import QueryService
from repro.storage import Catalog, MemoryDatabase

PARALLEL_SHAPE = "select x.i from x in X where exists y in Y : x.a = y.d and y.w < $m"
SERIAL_SHAPE = "select x.i from x in X where x.a = $k"

N = 300
PARTS = 3
WRITERS = 2
SESSIONS = 4
QUERIES_PER_SESSION = 6
WRITES_PER_WRITER = 40


def _setup():
    db = MemoryDatabase(
        {
            "X": [VTuple(a=i % 20, v=i % 5, i=i) for i in range(N)],
            "Y": [VTuple(d=i % 20, w=i % 7, j=i) for i in range(N)],
        }
    )
    db.keep_history = True  # the stress oracle time-travels via extent_at
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "a", PARTS)
    catalog.partition("Y", "d", PARTS)
    return db, catalog


def _oracle(db, shape, params, epoch):
    xs = db.extent_at("X", epoch)
    ys = db.extent_at("Y", epoch)
    if shape is PARALLEL_SHAPE:
        live = {y["d"] for y in ys if y["w"] < params["m"]}
        return {x["i"] for x in xs if x["a"] in live}
    return {x["i"] for x in xs if x["a"] == params["k"]}


def _writer(db, catalog, seed, stop, errors):
    rng = random.Random(seed)
    mine = []  # rows this writer inserted and may later delete
    try:
        for i in range(WRITES_PER_WRITER):
            if stop.is_set():
                return
            op = rng.randrange(4)
            if op == 0:
                row = VTuple(a=rng.randrange(20), v=9, i=10_000 + seed * 1000 + i)
                db.insert_rows("X", [row])
                mine.append(("X", row))
            elif op == 1:
                row = VTuple(d=rng.randrange(20), w=rng.randrange(7), j=20_000 + seed * 1000 + i)
                db.insert_rows("Y", [row])
                mine.append(("Y", row))
            elif op == 2 and mine:
                extent, row = mine.pop(rng.randrange(len(mine)))
                db.delete_rows(extent, [row])
            else:
                catalog.analyze()
            stop.wait(0.002)
    except Exception as exc:  # surfaced by the main thread
        errors.append(f"writer[{seed}]: {exc!r}")


def _reader(svc, db, seed, errors):
    rng = random.Random(1000 + seed)
    try:
        with svc.session() as session:
            for q in range(QUERIES_PER_SESSION):
                if rng.randrange(2):
                    shape, params = PARALLEL_SHAPE, {"m": rng.randrange(1, 7)}
                else:
                    shape, params = SERIAL_SHAPE, {"k": rng.randrange(20)}
                r = session.execute(shape, params)
                if r.epoch is None:
                    errors.append(f"reader[{seed}]#{q}: no epoch on result")
                    return
                want = _oracle(db, shape, params, r.epoch)
                got = set(r.rows)
                if got != want:
                    errors.append(
                        f"reader[{seed}]#{q} {shape!r} {params} tore at epoch "
                        f"{r.epoch}: missing={sorted(want - got)[:5]} "
                        f"extra={sorted(got - want)[:5]}"
                    )
                    return
    except Exception as exc:
        errors.append(f"reader[{seed}]: {exc!r}")


@pytest.mark.parametrize("mode", ["inline", "process"])
def test_every_result_matches_a_single_epoch_oracle(mode):
    db, catalog = _setup()
    stop = threading.Event()
    errors: list = []
    writers = [
        threading.Thread(target=_writer, args=(db, catalog, w, stop, errors))
        for w in range(WRITERS)
    ]
    with QueryService(
        db, catalog=catalog, parallel_workers=PARTS, parallel_mode=mode
    ) as svc:
        readers = [
            threading.Thread(target=_reader, args=(svc, db, s, errors))
            for s in range(SESSIONS)
        ]
        for t in writers + readers:
            t.start()
        try:
            for t in readers:
                t.join(timeout=120)
        finally:
            stop.set()
            for t in writers:
                t.join(timeout=30)
    assert not errors, "\n".join(errors)
    assert not any(t.is_alive() for t in writers + readers)
    # every per-query pin was released
    assert db.epoch_stats()["pinned"] == 0


def test_serial_only_service_under_writers():
    """Same invariant with the parallel tier off: the serial executor and
    the statistics path read the pinned epoch too."""
    db, catalog = _setup()
    stop = threading.Event()
    errors: list = []
    writers = [
        threading.Thread(target=_writer, args=(db, catalog, w, stop, errors))
        for w in range(WRITERS)
    ]
    with QueryService(db, catalog=catalog) as svc:
        readers = [
            threading.Thread(target=_reader, args=(svc, db, s, errors))
            for s in range(SESSIONS)
        ]
        for t in writers + readers:
            t.start()
        try:
            for t in readers:
                t.join(timeout=120)
        finally:
            stop.set()
            for t in writers:
                t.join(timeout=30)
    assert not errors, "\n".join(errors)
    assert db.epoch_stats()["pinned"] == 0
