"""Plan-cache warm start (PR 7).

``QueryService.close()`` persists the cached shapes as canonical
re-parseable plan text; a restoring service re-plans them at
construction — skipping the expensive rewrite/join-order phases — and
refuses the whole file when the catalog version or schema fingerprint
no longer matches.
"""

import json

import pytest

from repro.datamodel import INT, STRING, Schema, VTuple
from repro.service import QueryService
from repro.storage import MemoryDatabase

JOIN = "select (b = x.b, e = y.e) from x in X, y in Y where x.a = y.d"
SIMPLE = "select x.b from x in X where x.a = $k"


def _db(n=24, mod=4):
    return MemoryDatabase(
        {
            "X": [VTuple(a=i % mod, b=i) for i in range(n)],
            "Y": [VTuple(d=i % mod, e=i) for i in range(n)],
        }
    )


def _warm_file(tmp_path, shapes=(JOIN, SIMPLE)):
    """Run each shape once under a persisting service; return the path."""
    path = str(tmp_path / "plans.json")
    with QueryService(_db(), cache_persist_path=path) as svc:
        for text in shapes:
            svc.execute(text, {"k": 1} if "$k" in text else None)
    return path


def test_close_persists_canonical_plan_text(tmp_path):
    path = _warm_file(tmp_path)
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["catalog_version"] == 0  # MemoryDatabase has no catalog
    assert payload["schema_fingerprint"] == ""
    shapes = {e["shape"] for e in payload["entries"]}
    assert len(shapes) == 2
    for entry in payload["entries"]:
        assert entry["adl"]  # re-parseable plan text, not a pickle
        assert isinstance(entry["param_names"], list)


def test_restore_roundtrip_first_query_is_a_hit(tmp_path):
    path = _warm_file(tmp_path)
    with QueryService(_db(), cache_persist_path=path) as svc:
        assert svc.warm_restored == 2
        assert svc.warm_dropped == 0
        assert svc.compilations == 0  # restore re-plans, never re-optimizes
        r = svc.execute(JOIN)
        assert r.cache_hit
        assert r.rows
        assert svc.compilations == 0


def test_restored_plan_matches_cold_plan(tmp_path):
    path = _warm_file(tmp_path, shapes=(JOIN,))
    with QueryService(_db()) as cold:
        cold_explain = cold.explain(JOIN)
    with QueryService(_db(), cache_persist_path=path) as warm:
        assert warm.explain(JOIN) == cold_explain


def test_catalog_fingerprint_mismatch_drops_whole_file(tmp_path):
    path = _warm_file(tmp_path)
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    payload["catalog_fingerprint"] = "not-the-real-content-digest"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    with QueryService(_db(), cache_persist_path=path) as svc:
        assert svc.warm_restored == 0
        assert svc.warm_dropped == len(payload["entries"])


def test_legacy_file_without_fingerprint_uses_version_compare(tmp_path):
    # files from before the content fingerprint existed: exact-version check
    path = _warm_file(tmp_path)
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    del payload["catalog_fingerprint"]
    payload["catalog_version"] = 99
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    with QueryService(_db(), cache_persist_path=path) as svc:
        assert svc.warm_restored == 0
        assert svc.warm_dropped == len(payload["entries"])


def test_restore_matches_catalog_content_not_version_counter(tmp_path):
    """PR-7 known simplification, fixed in PR 9: a rebuilt catalog's
    version counter restarts per process, so restore must match on the
    *content* fingerprint — same statistics, different version number
    still restores (and rebases entries onto the current version)."""
    from repro.storage import Catalog

    path = str(tmp_path / "plans.json")
    db = _db()
    catalog = Catalog(db)
    catalog.analyze(["X", "Y"])
    catalog.analyze(["X", "Y"])  # second ANALYZE: version 2, same content
    assert catalog.version == 2
    with QueryService(db, catalog=catalog, cache_persist_path=path) as svc:
        svc.execute(JOIN)
    # "restart": same data, fresh catalog whose counter lands elsewhere
    db2 = _db()
    catalog2 = Catalog(db2)
    catalog2.analyze(["X", "Y"])
    assert catalog2.version == 1  # != the persisted version...
    assert catalog2.fingerprint() == catalog.fingerprint()  # ...same content
    with QueryService(db2, catalog=catalog2, cache_persist_path=path) as svc:
        assert svc.warm_restored == 1
        assert svc.warm_dropped == 0
        assert svc.execute(JOIN).cache_hit


def test_restore_refuses_catalog_with_different_content(tmp_path):
    from repro.storage import Catalog

    path = str(tmp_path / "plans.json")
    db = _db()
    catalog = Catalog(db)
    catalog.analyze(["X", "Y"])
    with QueryService(db, catalog=catalog, cache_persist_path=path) as svc:
        svc.execute(JOIN)
    db2 = _db(n=48)  # different data -> different statistics
    catalog2 = Catalog(db2)
    catalog2.analyze(["X", "Y"])
    with QueryService(db2, catalog=catalog2, cache_persist_path=path) as svc:
        assert svc.warm_restored == 0
        assert svc.warm_dropped == 1


def test_schema_fingerprint_mismatch_drops_whole_file(tmp_path):
    path = _warm_file(tmp_path)
    schema = Schema()
    schema.add_class("Part", "X", {"pname": STRING, "price": INT})
    with QueryService(_db(), schema.freeze(), cache_persist_path=path) as svc:
        assert svc.warm_restored == 0
        assert svc.warm_dropped == 2


def test_single_bad_entry_dropped_without_poisoning_rest(tmp_path):
    path = _warm_file(tmp_path)
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    payload["entries"][0]["adl"] = "this is not ADL %%"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    with QueryService(_db(), cache_persist_path=path) as svc:
        assert svc.warm_restored == 1
        assert svc.warm_dropped == 1


@pytest.mark.parametrize("content", ["", "{not json", '"a string"', '{"entries": 3}'])
def test_corrupt_file_is_ignored(tmp_path, content):
    path = tmp_path / "plans.json"
    path.write_text(content, encoding="utf-8")
    with QueryService(_db(), cache_persist_path=str(path)) as svc:
        assert svc.warm_restored == 0
        assert svc.warm_dropped == 0
        assert svc.execute(SIMPLE, {"k": 1}).rows


def test_missing_file_is_fine_and_created_on_close(tmp_path):
    path = tmp_path / "sub" / "plans.json"
    path.parent.mkdir()
    with QueryService(_db(), cache_persist_path=str(path)) as svc:
        assert svc.warm_restored == 0
        svc.execute(SIMPLE, {"k": 1})
    assert path.exists()


def test_warm_counters_in_stats(tmp_path):
    path = _warm_file(tmp_path)
    with QueryService(_db(), cache_persist_path=path) as svc:
        stats = svc.stats()
        assert stats["warm_restored"] == 2
        assert stats["warm_dropped"] == 0
