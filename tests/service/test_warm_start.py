"""Plan-cache warm start (PR 7).

``QueryService.close()`` persists the cached shapes as canonical
re-parseable plan text; a restoring service re-plans them at
construction — skipping the expensive rewrite/join-order phases — and
refuses the whole file when the catalog version or schema fingerprint
no longer matches.
"""

import json

import pytest

from repro.datamodel import INT, STRING, Schema, VTuple
from repro.service import QueryService
from repro.storage import MemoryDatabase

JOIN = "select (b = x.b, e = y.e) from x in X, y in Y where x.a = y.d"
SIMPLE = "select x.b from x in X where x.a = $k"


def _db(n=24, mod=4):
    return MemoryDatabase(
        {
            "X": [VTuple(a=i % mod, b=i) for i in range(n)],
            "Y": [VTuple(d=i % mod, e=i) for i in range(n)],
        }
    )


def _warm_file(tmp_path, shapes=(JOIN, SIMPLE)):
    """Run each shape once under a persisting service; return the path."""
    path = str(tmp_path / "plans.json")
    with QueryService(_db(), cache_persist_path=path) as svc:
        for text in shapes:
            svc.execute(text, {"k": 1} if "$k" in text else None)
    return path


def test_close_persists_canonical_plan_text(tmp_path):
    path = _warm_file(tmp_path)
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["catalog_version"] == 0  # MemoryDatabase has no catalog
    assert payload["schema_fingerprint"] == ""
    shapes = {e["shape"] for e in payload["entries"]}
    assert len(shapes) == 2
    for entry in payload["entries"]:
        assert entry["adl"]  # re-parseable plan text, not a pickle
        assert isinstance(entry["param_names"], list)


def test_restore_roundtrip_first_query_is_a_hit(tmp_path):
    path = _warm_file(tmp_path)
    with QueryService(_db(), cache_persist_path=path) as svc:
        assert svc.warm_restored == 2
        assert svc.warm_dropped == 0
        assert svc.compilations == 0  # restore re-plans, never re-optimizes
        r = svc.execute(JOIN)
        assert r.cache_hit
        assert r.rows
        assert svc.compilations == 0


def test_restored_plan_matches_cold_plan(tmp_path):
    path = _warm_file(tmp_path, shapes=(JOIN,))
    with QueryService(_db()) as cold:
        cold_explain = cold.explain(JOIN)
    with QueryService(_db(), cache_persist_path=path) as warm:
        assert warm.explain(JOIN) == cold_explain


def test_catalog_version_mismatch_drops_whole_file(tmp_path):
    path = _warm_file(tmp_path)
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    payload["catalog_version"] = 99
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    with QueryService(_db(), cache_persist_path=path) as svc:
        assert svc.warm_restored == 0
        assert svc.warm_dropped == len(payload["entries"])


def test_schema_fingerprint_mismatch_drops_whole_file(tmp_path):
    path = _warm_file(tmp_path)
    schema = Schema()
    schema.add_class("Part", "X", {"pname": STRING, "price": INT})
    with QueryService(_db(), schema.freeze(), cache_persist_path=path) as svc:
        assert svc.warm_restored == 0
        assert svc.warm_dropped == 2


def test_single_bad_entry_dropped_without_poisoning_rest(tmp_path):
    path = _warm_file(tmp_path)
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    payload["entries"][0]["adl"] = "this is not ADL %%"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    with QueryService(_db(), cache_persist_path=path) as svc:
        assert svc.warm_restored == 1
        assert svc.warm_dropped == 1


@pytest.mark.parametrize("content", ["", "{not json", '"a string"', '{"entries": 3}'])
def test_corrupt_file_is_ignored(tmp_path, content):
    path = tmp_path / "plans.json"
    path.write_text(content, encoding="utf-8")
    with QueryService(_db(), cache_persist_path=str(path)) as svc:
        assert svc.warm_restored == 0
        assert svc.warm_dropped == 0
        assert svc.execute(SIMPLE, {"k": 1}).rows


def test_missing_file_is_fine_and_created_on_close(tmp_path):
    path = tmp_path / "sub" / "plans.json"
    path.parent.mkdir()
    with QueryService(_db(), cache_persist_path=str(path)) as svc:
        assert svc.warm_restored == 0
        svc.execute(SIMPLE, {"k": 1})
    assert path.exists()


def test_warm_counters_in_stats(tmp_path):
    path = _warm_file(tmp_path)
    with QueryService(_db(), cache_persist_path=path) as svc:
        stats = svc.stats()
        assert stats["warm_restored"] == 2
        assert stats["warm_dropped"] == 0
