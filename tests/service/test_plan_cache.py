"""Plan-cache behaviour: keying, LRU, and — the contract that matters —
invalidation on catalog version bumps.  A stale plan must never execute:
``analyze()`` after a data change and ``create_index()`` both bump
``Catalog.version``, and the re-optimized plan must actually reflect the
new catalog state (the index-creation test checks the replan *uses* the
index)."""

import pytest

from repro.adl import ast as A
from repro.datamodel import VTuple
from repro.engine.interpreter import evaluate
from repro.service import CachedPlan, PlanCache, QueryService, normalize_shape
from repro.storage import Catalog, MemoryDatabase


def _entry(shape: str, version: int = 0) -> CachedPlan:
    from repro.engine.plan import EvalExpr

    return CachedPlan(
        shape=shape,
        catalog_version=version,
        expr=A.Literal(frozenset()),
        plan=EvalExpr(A.Literal(frozenset())),
        param_names=(),
        option="none-needed",
        explain="Eval",
    )


# ---------------------------------------------------------------------------
# PlanCache unit behaviour
# ---------------------------------------------------------------------------


def test_hit_miss_and_counters():
    cache = PlanCache(4)
    assert cache.get("q1", 0) is None
    cache.put(_entry("q1"))
    assert cache.get("q1", 0) is not None
    assert cache.stats.misses == 1 and cache.stats.hits == 1


def test_older_entry_is_miss_and_dropped():
    cache = PlanCache(4)
    cache.put(_entry("q1", version=3))
    assert cache.get("q1", 4) is None
    assert cache.stats.invalidations == 1
    # the stale entry is gone, not resurrected at the old version
    assert cache.get("q1", 3) is None
    assert len(cache) == 0


def test_newer_entry_survives_a_stale_reader():
    """A reader whose version snapshot is behind (it raced an analyze())
    must not evict the fresher plan a concurrent compile just cached."""
    cache = PlanCache(4)
    cache.put(_entry("q1", version=5))
    assert cache.get("q1", 4) is None       # miss for the stale reader...
    assert cache.stats.invalidations == 0   # ...but no eviction
    assert cache.get("q1", 5) is not None   # the fresh plan is still there


def test_lru_eviction_order():
    cache = PlanCache(2)
    cache.put(_entry("a"))
    cache.put(_entry("b"))
    cache.get("a", 0)          # refresh a
    cache.put(_entry("c"))     # evicts b
    assert cache.shapes() == ("a", "c")
    assert cache.stats.evictions == 1


def test_zero_size_disables_caching():
    cache = PlanCache(0)
    cache.put(_entry("a"))
    assert len(cache) == 0 and cache.get("a", 0) is None


def test_newer_version_entry_is_not_clobbered():
    cache = PlanCache(4)
    cache.put(_entry("q", version=5))
    cache.put(_entry("q", version=4))  # late arrival from a slow compile
    assert cache.get("q", 5) is not None


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        PlanCache(-1)


# ---------------------------------------------------------------------------
# shape normalization
# ---------------------------------------------------------------------------


def test_spellings_share_one_shape():
    variants = [
        "select x.a from x in X where x.a = $k",
        "SELECT x.a FROM x IN X WHERE (x.a = $k)",
        "select x.a\n  from x in X -- comment\n  where x.a = $k",
    ]
    shapes = {normalize_shape(v)[0] for v in variants}
    assert len(shapes) == 1
    assert normalize_shape(variants[0])[1] == ("k",)


def test_literal_differences_are_different_shapes():
    s1, _ = normalize_shape("select x.a from x in X where x.a = 1")
    s2, _ = normalize_shape("select x.a from x in X where x.a = 2")
    assert s1 != s2


# ---------------------------------------------------------------------------
# end-to-end invalidation through the service
# ---------------------------------------------------------------------------

QUERY = "select x.b from x in X where x.a = $k"


def _db(n=400, mod=40):
    return MemoryDatabase({"X": [VTuple(a=i % mod, b=i) for i in range(n)]})


def _oracle(db, k):
    from repro.adl import builders as B

    expr = B.sel("x", B.eq(B.attr(B.var("x"), "a"), A.Param("k")), B.extent("X"))
    return frozenset(t["b"] for t in evaluate(expr, db, params={"k": k}))


def test_analyze_after_data_change_invalidates_and_recomputes():
    db = _db()
    catalog = Catalog(db)
    catalog.analyze()
    with QueryService(db, catalog=catalog) as svc:
        first = svc.execute(QUERY, {"k": 3})
        assert frozenset(first.rows) == _oracle(db, 3)
        warm = svc.execute(QUERY, {"k": 3})
        assert warm.cache_hit

        # change the data, re-ANALYZE: the version bump must drop the plan
        db.set_extent("X", [VTuple(a=i % 7, b=i * 10) for i in range(210)])
        version_before = catalog.version
        catalog.analyze()
        assert catalog.version > version_before

        after = svc.execute(QUERY, {"k": 3})
        assert not after.cache_hit          # stale plan was not executed
        assert frozenset(after.rows) == _oracle(db, 3)
        assert svc.cache.stats.invalidations >= 1


def test_create_index_invalidates_and_new_plan_uses_the_index():
    db = _db()
    catalog = Catalog(db)
    catalog.analyze()
    with QueryService(db, catalog=catalog) as svc:
        cold = svc.execute(QUERY, {"k": 5})
        assert not cold.cache_hit
        assert "IndexScan" not in svc.explain(QUERY)

        catalog.create_index("X", "a")

        replanned = svc.execute(QUERY, {"k": 5})
        assert not replanned.cache_hit      # version bump forced a replan
        assert frozenset(replanned.rows) == _oracle(db, 5)
        # the re-optimized plan actually exploits the new access path
        assert "IndexScan" in svc.explain(QUERY)
        assert replanned.stats["index_probes"] >= 1

        warm = svc.execute(QUERY, {"k": 9})
        assert warm.cache_hit
        assert frozenset(warm.rows) == _oracle(db, 9)


def test_cached_plan_never_survives_any_version_bump():
    """Every catalog mutation path — analyze, create_index, lazy stats
    refresh — must be followed by a miss, never a stale execution."""
    db = _db()
    catalog = Catalog(db)
    catalog.analyze()
    with QueryService(db, catalog=catalog) as svc:
        svc.execute(QUERY, {"k": 1})
        assert svc.execute(QUERY, {"k": 1}).cache_hit

        catalog.create_index("X", "b")      # unrelated index still bumps
        assert not svc.execute(QUERY, {"k": 1}).cache_hit
        assert svc.execute(QUERY, {"k": 1}).cache_hit

        # lazy stale-statistics refresh (data changed, no explicit analyze):
        # the next planning pass touches stats, which bumps the version
        db.set_extent("X", [VTuple(a=i % 3, b=i) for i in range(30)])
        result = svc.execute(QUERY, {"k": 1})
        assert frozenset(result.rows) == _oracle(db, 1)
