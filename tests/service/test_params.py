"""Parameter placeholders (``$name``) through every layer of the stack:
lexer → parser → type checker → translator → interpreter/compiler →
physical plans.  The invariant under test: a parameterized expression
evaluated with binding ``v`` behaves exactly like the same expression
with ``v`` inlined as a literal — for every engine."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.freevars import free_vars
from repro.adl.pretty import pretty as adl_pretty
from repro.adl.subst import substitute
from repro.adl.typecheck import TypeChecker
from repro.datamodel import VTuple
from repro.datamodel.errors import (
    OOSQLSyntaxError,
    UnboundParameterError,
)
from repro.datamodel.types import ANY
from repro.engine.compile import compile_expr
from repro.engine.interpreter import Interpreter, evaluate
from repro.engine.plan import ExecRuntime
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.oosql import ast as Q
from repro.oosql.lexer import tokenize
from repro.oosql.parser import parse
from repro.oosql.pretty import pretty as oosql_pretty
from repro.oosql.typecheck import OOSQLTypeChecker
from repro.storage import Catalog, MemoryDatabase
from repro.translate.translator import compile_oosql, translate


# ---------------------------------------------------------------------------
# front end
# ---------------------------------------------------------------------------


def test_lexer_produces_param_tokens():
    tokens = tokenize("x.a = $price_max")
    kinds = [(t.kind, t.text) for t in tokens[:-1]]
    assert ("param", "price_max") in kinds


def test_lexer_rejects_bare_dollar():
    with pytest.raises(OOSQLSyntaxError):
        tokenize("x.a = $ 3")
    with pytest.raises(OOSQLSyntaxError):
        tokenize("x.a = $1abc")


def test_parser_param_primary_and_pretty_roundtrip():
    node = parse("select x from x in X where x.a = $k")
    assert isinstance(node, Q.SFW)
    assert Q.Param("k") in list(node.walk())
    text = oosql_pretty(node)
    assert "$k" in text
    # the pretty form is re-parseable and stable (the plan-cache shape key)
    assert oosql_pretty(parse(text)) == text


def test_oosql_typecheck_param_is_any():
    assert OOSQLTypeChecker().check(Q.Param("k")) == ANY
    # params unify with scalars, sets, and orderings without complaint
    node = parse("select x from x in X where x.a < $k and x.a in $keys")
    from repro.datamodel.types import INT, SetType, TupleType
    from repro.datamodel.schema import Catalog as TypeCatalog

    types = TypeCatalog({"X": SetType(TupleType({"a": INT}))})
    OOSQLTypeChecker(types).check(node)


def test_translate_param_to_adl():
    expr = compile_oosql("select x.a from x in X where x.a = $k")
    params = [e for e in expr.walk() if isinstance(e, A.Param)]
    assert params == [A.Param("k")]


def test_adl_typecheck_and_pretty():
    assert TypeChecker().check(A.Param("k")) == ANY
    assert adl_pretty(A.Param("k")) == "$k"


def test_param_is_closed_and_substitution_proof():
    expr = A.Compare("=", B.attr(B.var("x"), "a"), A.Param("k"))
    assert free_vars(expr) == {"x"}
    assert free_vars(A.Param("k")) == frozenset()
    # substitution replaces variables, never parameters
    out = substitute(expr, {"x": B.var("y")})
    assert A.Param("k") in list(out.walk())


# ---------------------------------------------------------------------------
# engines
# ---------------------------------------------------------------------------


def _db():
    return MemoryDatabase(
        {"X": [VTuple(a=i % 5, b=i) for i in range(20)]}
    )


def _filter_expr():
    return B.sel("x", B.eq(B.attr(B.var("x"), "a"), A.Param("k")), B.extent("X"))


def test_interpreter_binds_params():
    db = _db()
    expr = _filter_expr()
    got = evaluate(expr, db, params={"k": 3})
    want = evaluate(B.sel("x", B.eq(B.attr(B.var("x"), "a"), B.lit(3)), B.extent("X")), db)
    assert got == want and len(got) == 4


def test_interpreter_unbound_param_raises():
    with pytest.raises(UnboundParameterError):
        evaluate(_filter_expr(), _db())


def test_compiled_closure_matches_interpreter():
    db = _db()
    pred = B.eq(B.attr(B.var("x"), "a"), A.Param("k"))
    stats = Stats()
    interp = Interpreter(db, stats, params={"k": 2})
    from repro.engine.compile import Compiler

    compiler = Compiler(db, stats, interp, params={"k": 2})
    fn = compiler.compile(pred)
    for row in db.extent("X"):
        assert fn({"x": row}) == interp.eval(pred, {"x": row})


def test_compiled_unbound_param_raises():
    db = _db()
    fn = compile_expr(A.Param("k"), db)
    with pytest.raises(UnboundParameterError):
        fn({})


def test_exec_runtime_shares_params_across_engines():
    db = _db()
    expr = _filter_expr()
    for compile_exprs in (True, False):
        rt = ExecRuntime(db, compile_exprs=compile_exprs, params={"k": 1})
        assert rt.eval(expr) == evaluate(expr, db, params={"k": 1})


def test_executor_param_passthrough_streaming_and_materialized():
    db = _db()
    expr = _filter_expr()
    oracle = evaluate(expr, db, params={"k": 4})
    assert Executor(db).execute(expr, params={"k": 4}) == oracle
    assert (
        Executor(db, materialized=True, compile_exprs=False).execute(
            expr, params={"k": 4}
        )
        == oracle
    )


def test_executor_iterate_streams_with_params():
    db = _db()
    expr = _filter_expr()
    got = frozenset(Executor(db).iterate(expr, params={"k": 2}))
    assert got == evaluate(expr, db, params={"k": 2})


def test_param_rebinding_gives_fresh_results():
    db = _db()
    ex = Executor(db)
    expr = _filter_expr()
    for k in range(5):
        assert ex.execute(expr, params={"k": k}) == evaluate(expr, db, params={"k": k})


# ---------------------------------------------------------------------------
# physical plans: params reach index access paths
# ---------------------------------------------------------------------------


def test_index_scan_accepts_param_key():
    db = MemoryDatabase({"X": [VTuple(a=i % 50, b=i) for i in range(500)]})
    catalog = Catalog(db)
    catalog.analyze()
    catalog.create_index("X", "a")
    ex = Executor(db, catalog=catalog)
    expr = _filter_expr()
    plan_text = ex.explain(expr)
    assert "IndexScan" in plan_text and "$k" in plan_text
    stats = ex.stats
    got = ex.execute(expr, params={"k": 7})
    assert got == evaluate(expr, db, params={"k": 7})
    assert stats.index_probes >= 1


def test_param_join_key_stays_residual_but_correct():
    """``x.a = $k`` is not a hashable *join* conjunct (no right-side var);
    the plan must still produce the right answer under any strategy."""
    db = MemoryDatabase(
        {
            "X": [VTuple(a=i % 4, i=i) for i in range(12)],
            "Y": [VTuple(d=i % 4, j=i) for i in range(12)],
        }
    )
    expr = B.join(
        B.extent("X"),
        B.extent("Y"),
        "x",
        "y",
        B.conj(
            B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")),
            B.eq(B.attr(B.var("y"), "d"), A.Param("k")),
        ),
    )
    got = Executor(db).execute(expr, params={"k": 2})
    assert got == evaluate(expr, db, params={"k": 2})
    assert got  # non-trivial
