"""Shared fixtures and assertion helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.adl import ast as A
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.workload.paper_db import (
    example_database,
    example_schema,
    figure2_catalog,
    figure2_database,
    figure3_catalog,
    figure3_database,
    section4_catalog,
    section4_database,
)


@pytest.fixture(scope="session")
def schema():
    """The Section 2 supplier–part–delivery OOSQL schema."""
    return example_schema()


@pytest.fixture()
def paper_db():
    """A deterministic population of the Section 2 schema."""
    return example_database()


@pytest.fixture(scope="session")
def s4_catalog():
    return section4_catalog()


@pytest.fixture()
def s4_db():
    return section4_database()


@pytest.fixture(scope="session")
def fig2_catalog():
    return figure2_catalog()


@pytest.fixture()
def fig2_db():
    return figure2_database()


@pytest.fixture(scope="session")
def fig3_catalog():
    return figure3_catalog()


@pytest.fixture()
def fig3_db():
    return figure3_database()


def naive_eval(expr: A.Expr, db, env=None):
    """Evaluate with the reference interpreter."""
    return Interpreter(db).eval(expr, env or {})


def planned_eval(expr: A.Expr, db):
    """Evaluate through the physical planner."""
    return Executor(db).execute(expr)


def assert_equivalent(original: A.Expr, rewritten: A.Expr, db, env=None):
    """Both expressions must produce the same value under the reference
    interpreter (the definition of rewrite correctness in this repo)."""
    interp = Interpreter(db)
    lhs = interp.eval(original, env or {})
    rhs = interp.eval(rewritten, env or {})
    assert lhs == rhs, f"rewrite changed semantics:\n  {original}\n  {rewritten}\n  {lhs!r}\n  {rhs!r}"


def assert_plan_matches_naive(expr: A.Expr, db):
    """The physical plan must compute exactly what the interpreter computes."""
    naive = Interpreter(db).eval(expr)
    fast = Executor(db).execute(expr)
    assert naive == fast, f"plan diverged from naive semantics for {expr}"
    return naive
