"""Grammar edge cases: precedence chains, keyword-adjacent constructs,
and pathological-but-legal inputs."""

import pytest

from repro.datamodel import OOSQLSyntaxError
from repro.oosql import ast as Q
from repro.oosql import parse, pretty


class TestPrecedenceChains:
    def test_arithmetic_left_associativity(self):
        node = parse("1 - 2 - 3")
        # (1 - 2) - 3
        assert node == Q.BinOp("-", Q.BinOp("-", Q.Literal(1), Q.Literal(2)), Q.Literal(3))

    def test_division_chain(self):
        node = parse("8 / 4 / 2")
        assert node.left == Q.BinOp("/", Q.Literal(8), Q.Literal(4))

    def test_unary_minus_binds_tighter_than_mul(self):
        node = parse("-2 * 3")
        assert node == Q.BinOp("*", Q.Neg(Q.Literal(2)), Q.Literal(3))

    def test_not_and_or_tower(self):
        node = parse("not a = 1 and b = 2")
        # not binds to the comparison, not the conjunction
        assert isinstance(node, Q.BinOp) and node.op == "and"
        assert isinstance(node.left, Q.Not)

    def test_comparison_is_non_associative(self):
        with pytest.raises(OOSQLSyntaxError):
            parse("1 < 2 < 3")

    def test_union_chain_left_assoc(self):
        node = parse("A union B minus C")
        assert node.op == "minus"
        assert node.left.op == "union"


class TestKeywordAdjacency:
    def test_keyword_as_attribute_name(self):
        # keywords are legal after '.' (e.g. an attribute named 'count')
        node = parse("x.count")
        assert node == Q.Path(Q.Ident("x"), "count")

    def test_aggregate_of_path(self):
        node = parse("count(x.parts)")
        assert node == Q.Aggregate("count", Q.Path(Q.Ident("x"), "parts"))

    def test_exists_inside_and(self):
        node = parse("(exists y in Y) and x = 1")
        assert isinstance(node, Q.BinOp) and node.op == "and"
        assert isinstance(node.left, Q.Quantifier)

    def test_select_keyword_requires_block(self):
        with pytest.raises(OOSQLSyntaxError):
            parse("select")


class TestTupleVsParenHeuristic:
    def test_ident_eq_means_tuple(self):
        assert isinstance(parse("(a = 1)"), Q.TupleCons)

    def test_literal_eq_means_comparison(self):
        node = parse("(1 = a)")
        assert isinstance(node, Q.BinOp) and node.op == "="

    def test_path_eq_means_comparison(self):
        # 'x.a = 1' starts with ident but the '.' breaks the tuple pattern
        node = parse("(x.a = 1)")
        assert isinstance(node, Q.BinOp)

    def test_multi_field_tuple(self):
        node = parse("(a = 1, b = 2, c = 3)")
        assert isinstance(node, Q.TupleCons) and len(node.fields) == 3


class TestDeepNesting:
    def test_deeply_parenthesized(self):
        node = parse("((((1))))")
        assert node == Q.Literal(1)

    def test_five_level_sfw(self):
        text = "select a from a in X"
        for _ in range(4):
            text = f"select b from b in ({text})"
        node = parse(text)
        depth = 0
        while isinstance(node, Q.SFW):
            node = node.bindings[0][1]
            depth += 1
        assert depth == 5

    def test_roundtrip_of_deep_query(self):
        text = (
            "select x from x in X where "
            "exists y in (select z from z in Z where z.a in x.c) : y.b = x.b"
        )
        node = parse(text)
        assert parse(pretty(node)) == node

    def test_set_of_tuples_of_sets(self):
        node = parse("{(a = {1, 2}, b = {})}")
        assert isinstance(node, Q.SetCons)
        inner = node.elements[0]
        assert isinstance(inner, Q.TupleCons)
        assert isinstance(inner.fields[0][1], Q.SetCons)
