"""Unit tests for the OOSQL lexer."""

import pytest

from repro.datamodel import OOSQLSyntaxError
from repro.oosql import tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text) if t.kind != "eof"]


class TestTokens:
    def test_keywords_are_case_insensitive(self):
        assert kinds("SELECT Select select") == [("keyword", "select")] * 3

    def test_identifiers_preserve_case(self):
        assert kinds("SUPPLIER sname") == [("ident", "SUPPLIER"), ("ident", "sname")]

    def test_numbers(self):
        assert kinds("42 3.14 940101") == [
            ("int", "42"),
            ("float", "3.14"),
            ("int", "940101"),
        ]

    def test_integer_followed_by_dot_attr_is_not_float(self):
        # "1.x" should not lex as a float
        assert kinds("1 . x")[0] == ("int", "1")

    def test_strings(self):
        assert kinds('"red" ""') == [("string", "red"), ("string", "")]

    def test_unterminated_string(self):
        with pytest.raises(OOSQLSyntaxError, match="unterminated"):
            tokenize('"red')

    def test_string_may_not_span_lines(self):
        with pytest.raises(OOSQLSyntaxError):
            tokenize('"red\n"')

    def test_punctuation_longest_match(self):
        assert kinds("<= >= <> != < > =") == [
            ("punct", "<="),
            ("punct", ">="),
            ("punct", "<>"),
            ("punct", "!="),
            ("punct", "<"),
            ("punct", ">"),
            ("punct", "="),
        ]

    def test_comments_skipped(self):
        assert kinds("select -- a comment\nfrom") == [
            ("keyword", "select"),
            ("keyword", "from"),
        ]

    def test_unexpected_character(self):
        with pytest.raises(OOSQLSyntaxError, match="unexpected"):
            tokenize("select @")

    def test_positions_are_tracked(self):
        tokens = tokenize("select\n  from")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_terminates(self):
        assert tokenize("")[-1].kind == "eof"
        assert tokenize("x")[-1].kind == "eof"

    def test_underscore_identifiers(self):
        assert kinds("parts_supplied _x") == [
            ("ident", "parts_supplied"),
            ("ident", "_x"),
        ]

    def test_set_keywords(self):
        text = "subset subseteq superset superseteq contains disjoint"
        assert all(k == "keyword" for k, _ in kinds(text))
