"""Unit tests for the OOSQL parser."""

import pytest

from repro.datamodel import OOSQLSyntaxError
from repro.oosql import ast as Q
from repro.oosql import parse


class TestPrimaries:
    def test_literals(self):
        assert parse("42") == Q.Literal(42)
        assert parse("3.5") == Q.Literal(3.5)
        assert parse('"red"') == Q.Literal("red")
        assert parse("true") == Q.Literal(True)
        assert parse("false") == Q.Literal(False)
        assert parse("null") == Q.Literal(None)

    def test_identifier(self):
        assert parse("SUPPLIER") == Q.Ident("SUPPLIER")

    def test_path_expression(self):
        assert parse("d.supplier.sname") == Q.Path(
            Q.Path(Q.Ident("d"), "supplier"), "sname"
        )

    def test_set_constructor(self):
        assert parse("{1, 2}") == Q.SetCons((Q.Literal(1), Q.Literal(2)))
        assert parse("{}") == Q.SetCons(())

    def test_tuple_constructor(self):
        node = parse("(a = 1, b = x)")
        assert node == Q.TupleCons((("a", Q.Literal(1)), ("b", Q.Ident("x"))))

    def test_parenthesized_expression(self):
        assert parse("(1 + 2)") == Q.BinOp("+", Q.Literal(1), Q.Literal(2))

    def test_aggregates(self):
        assert parse("count(X)") == Q.Aggregate("count", Q.Ident("X"))
        assert parse("sum(x.prices)") == Q.Aggregate("sum", Q.Path(Q.Ident("x"), "prices"))

    def test_flatten(self):
        assert parse("flatten(X)") == Q.Flatten(Q.Ident("X"))


class TestOperators:
    def test_precedence_arithmetic(self):
        assert parse("1 + 2 * 3") == Q.BinOp(
            "+", Q.Literal(1), Q.BinOp("*", Q.Literal(2), Q.Literal(3))
        )

    def test_unary_minus(self):
        assert parse("-x") == Q.Neg(Q.Ident("x"))

    def test_comparison(self):
        assert parse("x < 3") == Q.BinOp("<", Q.Ident("x"), Q.Literal(3))
        assert parse("x <> 3") == Q.BinOp("!=", Q.Ident("x"), Q.Literal(3))
        assert parse("x != 3") == Q.BinOp("!=", Q.Ident("x"), Q.Literal(3))

    def test_membership(self):
        assert parse("x in Y") == Q.BinOp("in", Q.Ident("x"), Q.Ident("Y"))
        assert parse("x not in Y") == Q.BinOp("not in", Q.Ident("x"), Q.Ident("Y"))

    def test_set_comparisons(self):
        for op in ("subset", "subseteq", "superset", "superseteq", "contains", "disjoint"):
            assert parse(f"A {op} B") == Q.BinOp(op, Q.Ident("A"), Q.Ident("B"))

    def test_set_algebra_binds_tighter_than_comparison(self):
        node = parse("A subseteq B union C")
        assert node == Q.BinOp(
            "subseteq", Q.Ident("A"), Q.BinOp("union", Q.Ident("B"), Q.Ident("C"))
        )

    def test_boolean_precedence(self):
        node = parse("a = 1 or b = 2 and c = 3")
        assert isinstance(node, Q.BinOp) and node.op == "or"
        assert isinstance(node.right, Q.BinOp) and node.right.op == "and"

    def test_not(self):
        node = parse("not a = 1")
        assert node == Q.Not(Q.BinOp("=", Q.Ident("a"), Q.Literal(1)))

    def test_not_in_vs_not_prefix(self):
        # "not (x in Y)" and "x not in Y" parse differently but mean the same
        prefix = parse("not x in Y")
        infix = parse("x not in Y")
        assert prefix == Q.Not(Q.BinOp("in", Q.Ident("x"), Q.Ident("Y")))
        assert infix == Q.BinOp("not in", Q.Ident("x"), Q.Ident("Y"))


class TestQuantifiers:
    def test_exists_with_body(self):
        node = parse("exists x in X : x.a = 1")
        assert node == Q.Quantifier(
            "exists", "x", Q.Ident("X"), Q.BinOp("=", Q.Path(Q.Ident("x"), "a"), Q.Literal(1))
        )

    def test_exists_without_body_is_nonemptiness(self):
        node = parse("exists x in X")
        assert node == Q.Quantifier("exists", "x", Q.Ident("X"), None)

    def test_forall_requires_body(self):
        with pytest.raises(OOSQLSyntaxError):
            parse("forall x in X")

    def test_forall(self):
        node = parse("forall x in X : x.a = 1")
        assert node.kind == "forall"

    def test_quantifier_body_extends_right(self):
        node = parse("exists x in X : x.a = 1 and x.b = 2")
        assert isinstance(node, Q.Quantifier)
        assert isinstance(node.pred, Q.BinOp) and node.pred.op == "and"


class TestSFW:
    def test_minimal(self):
        node = parse("select s from s in SUPPLIER")
        assert node == Q.SFW(Q.Ident("s"), (("s", Q.Ident("SUPPLIER")),), None)

    def test_with_where(self):
        node = parse('select s from s in SUPPLIER where s.sname = "s1"')
        assert node.where is not None

    def test_multiple_bindings(self):
        node = parse("select 1 from x in X, y in Y where x.a = y.a")
        assert [v for v, _ in node.bindings] == ["x", "y"]

    def test_duplicate_binding_rejected(self):
        with pytest.raises(Exception):
            parse("select 1 from x in X, x in Y")

    def test_nested_in_from(self):
        node = parse("select d from d in (select e from e in D) where d.a = 1")
        assert isinstance(node.bindings[0][1], Q.SFW)

    def test_nested_in_select(self):
        node = parse("select (select p from p in s.parts) from s in SUPPLIER")
        assert isinstance(node.select, Q.SFW)

    def test_nested_in_where(self):
        node = parse("select s from s in S where s.parts superseteq (select t from t in T)")
        assert isinstance(node.where.right, Q.SFW)

    def test_iteration_over_attribute(self):
        node = parse("select p from p in s.parts_supplied")
        assert node.bindings[0][1] == Q.Path(Q.Ident("s"), "parts_supplied")


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(OOSQLSyntaxError, match="trailing"):
            parse("1 2")

    def test_missing_from(self):
        with pytest.raises(OOSQLSyntaxError):
            parse("select s where x")

    def test_missing_expression(self):
        with pytest.raises(OOSQLSyntaxError):
            parse("select from x in X")

    def test_unbalanced_parens(self):
        with pytest.raises(OOSQLSyntaxError):
            parse("(1 + 2")

    def test_error_carries_position(self):
        with pytest.raises(OOSQLSyntaxError) as err:
            parse("select s\nfrom s inn SUPPLIER")
        assert err.value.line == 2

    def test_empty_input(self):
        with pytest.raises(OOSQLSyntaxError):
            parse("")


class TestPaperQueries:
    """All four Section 2 example queries must parse."""

    def test_example_queries_parse(self):
        from repro.workload.queries import OOSQL_EXAMPLES

        for name, text in OOSQL_EXAMPLES.items():
            node = parse(text)
            assert isinstance(node, Q.SFW), name
