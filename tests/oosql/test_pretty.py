"""The OOSQL pretty printer must emit re-parseable, equivalent text."""

import pytest

from repro.oosql import parse, pretty

ROUNDTRIP_QUERIES = [
    "select s from s in SUPPLIER",
    'select s.sname from s in SUPPLIER where s.sname = "s1"',
    "select (a = 1, b = s.sname) from s in SUPPLIER",
    "select p from p in PART where p.price + 1 * 2 > 3",
    "select d from d in DELIVERY where exists x in d.supply : x.quantity > 10",
    "select s from s in S where forall p in P : p.a in s.parts",
    "select x from x in X where x.c subseteq {1, 2} union {3}",
    "select x from x in X where not x.a = 1 and x.b != 2",
    "select x from x in (select y from y in Y where y.a = 1) where x.b = 2",
    "select count(s.parts) from s in SUPPLIER",
    "select flatten(select t.parts from t in T) from s in S",
    "select x from x in X where x.c contains 1",
    "select x from x in X, y in Y where x.a = y.a",
    "select x from x in X where x.a not in {1}",
    "select -x.a from x in X",
    "select x from x in X where x.s disjoint y.s",
]


@pytest.mark.parametrize("text", ROUNDTRIP_QUERIES)
def test_roundtrip_fixpoint(text):
    """parse(pretty(parse(t))) == parse(t), and pretty is a fixpoint."""
    first = parse(text)
    printed = pretty(first)
    second = parse(printed)
    assert first == second
    assert pretty(second) == printed


def test_example_queries_roundtrip():
    from repro.workload.queries import OOSQL_EXAMPLES

    for name, text in OOSQL_EXAMPLES.items():
        node = parse(text)
        assert parse(pretty(node)) == node, name
