"""Unit tests for the OOSQL type checker."""

import pytest

from repro.datamodel import BOOL, FLOAT, INT, STRING, SetType, TupleType, TypeCheckError
from repro.oosql import OOSQLTypeChecker, parse


@pytest.fixture(scope="module")
def checker():
    from repro.workload.paper_db import example_schema

    return OOSQLTypeChecker(example_schema())


def check(checker, text, env=None):
    return checker.check(parse(text), env or {})


class TestLiteralAndNames:
    def test_literals(self, checker):
        assert check(checker, "42") == INT
        assert check(checker, "2.5") == FLOAT
        assert check(checker, '"x"') == STRING
        assert check(checker, "true") == BOOL

    def test_extent_resolution(self, checker):
        t = check(checker, "PART")
        assert isinstance(t, SetType)
        assert isinstance(t.element, TupleType)
        assert "pname" in t.element.fields

    def test_unknown_name(self, checker):
        with pytest.raises(TypeCheckError, match="unknown name"):
            check(checker, "GHOST")

    def test_variable_shadows_extent(self, checker):
        # a variable named PART in scope wins over the base table
        assert check(checker, "PART", {"PART": INT}) == INT


class TestPaths:
    def test_attribute_access(self, checker):
        t = check(checker, "select p.pname from p in PART")
        assert t == SetType(STRING)

    def test_path_through_reference_dereferences(self, checker):
        t = check(checker, "select d.supplier.sname from d in DELIVERY")
        assert t == SetType(STRING)

    def test_missing_attribute(self, checker):
        with pytest.raises(TypeCheckError):
            check(checker, "select p.ghost from p in PART")

    def test_attribute_on_atom(self, checker):
        with pytest.raises(TypeCheckError):
            check(checker, "select p.pname.more from p in PART")


class TestOperators:
    def test_arithmetic(self, checker):
        assert check(checker, "1 + 2") == INT
        assert check(checker, "1 + 2.5") == FLOAT
        assert check(checker, "1 / 2") == FLOAT

    def test_arithmetic_on_strings_rejected(self, checker):
        with pytest.raises(TypeCheckError):
            check(checker, '"a" + "b"')

    def test_comparison_requires_unifiable(self, checker):
        assert check(checker, "1 = 2") == BOOL
        with pytest.raises(TypeCheckError):
            check(checker, '1 = "x"')

    def test_ordering_rejects_bool(self, checker):
        with pytest.raises(TypeCheckError):
            check(checker, "true < false")

    def test_boolean_connectives(self, checker):
        assert check(checker, "1 = 1 and 2 = 2 or not 3 = 3") == BOOL
        with pytest.raises(TypeCheckError):
            check(checker, "1 and true")

    def test_membership(self, checker):
        assert check(checker, "1 in {1, 2}") == BOOL
        with pytest.raises(TypeCheckError):
            check(checker, "1 in 2")
        with pytest.raises(TypeCheckError):
            check(checker, '"x" in {1}')

    def test_contains(self, checker):
        assert check(checker, "{1, 2} contains 1") == BOOL
        with pytest.raises(TypeCheckError):
            check(checker, "1 contains 1")

    def test_set_comparisons(self, checker):
        assert check(checker, "{1} subseteq {1, 2}") == BOOL
        with pytest.raises(TypeCheckError):
            check(checker, "{1} subseteq 1")
        with pytest.raises(TypeCheckError):
            check(checker, '{1} subseteq {"x"}')

    def test_set_algebra(self, checker):
        assert check(checker, "{1} union {2}") == SetType(INT)
        with pytest.raises(TypeCheckError):
            check(checker, '{1} union {"x"}')

    def test_set_equality_allowed(self, checker):
        assert check(checker, "{1} = {2}") == BOOL


class TestBlocks:
    def test_sfw_type(self, checker):
        t = check(checker, 'select (n = p.pname) from p in PART where p.color = "red"')
        assert t == SetType(TupleType({"n": STRING}))

    def test_where_must_be_boolean(self, checker):
        with pytest.raises(TypeCheckError, match="boolean"):
            check(checker, "select p from p in PART where p.price")

    def test_from_must_be_set(self, checker):
        with pytest.raises(TypeCheckError, match="set"):
            check(checker, "select x from x in 1")

    def test_iteration_over_reference_set(self, checker):
        # parts_supplied holds oids; iterating gives oid-typed variable,
        # whose attributes dereference implicitly
        t = check(checker, "select p.pname from p in s.parts_supplied",
                  {"s": checker.schema.object_type("Supplier")})
        assert t == SetType(STRING)

    def test_quantifiers(self, checker):
        assert check(checker, "exists p in PART : p.price > 10") == BOOL
        assert check(checker, "forall p in PART : p.price > 0") == BOOL
        with pytest.raises(TypeCheckError):
            check(checker, "exists p in PART : p.price")

    def test_multiple_bindings_scope_left_to_right(self, checker):
        t = check(
            checker,
            "select (s = x.sname, p = y.pname) from x in SUPPLIER, y in PART",
        )
        assert t == SetType(TupleType({"s": STRING, "p": STRING}))

    def test_aggregates(self, checker):
        assert check(checker, "count(PART)") == INT
        assert check(checker, "sum(select p.price from p in PART)") == INT
        assert check(checker, "avg(select p.price from p in PART)") == FLOAT
        with pytest.raises(TypeCheckError):
            check(checker, "sum(select p.pname from p in PART)")
        with pytest.raises(TypeCheckError):
            check(checker, "min(SUPPLIER)")

    def test_flatten(self, checker):
        t = check(checker, "flatten(select s.parts_supplied from s in SUPPLIER)")
        assert isinstance(t, SetType)
        with pytest.raises(TypeCheckError):
            check(checker, "flatten(PART)")

    def test_paper_examples_type_check(self, checker):
        from repro.workload.queries import OOSQL_EXAMPLES

        for name, text in OOSQL_EXAMPLES.items():
            checker.check(parse(text))  # must not raise
