"""Golden tests for parallel plan selection.

The acceptance bar: the cost model — not a flag — decides.  Large
co-partitioned joins go parallel; the paper's own (tiny) data provably
stays serial even with partitions registered and workers configured;
``explain()`` renders partition counts and exchange kinds.
"""

import pytest

from repro.adl import builders as B
from repro.datamodel import VTuple
from repro.engine.planner import Executor, Planner
from repro.shard import ParallelExecutor
from repro.storage import Catalog, MemoryDatabase
from repro.workload.paper_db import section4_database

EQ = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))
JOIN = B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ)


def big_db(n=3000):
    return MemoryDatabase({
        "X": [VTuple(a=i, v=i % 100, i=i) for i in range(n)],
        "Y": [VTuple(d=i, w=i % 7) for i in range(n)],
    })


def co_partitioned(db, parts=4):
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "a", parts)
    catalog.partition("Y", "d", parts)
    return catalog


class TestSelection:
    def test_large_co_partitioned_goes_partition_wise(self):
        db = big_db()
        catalog = co_partitioned(db)
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            plan = Executor(db, catalog=catalog, parallel=parallel).explain(JOIN)
        assert plan.splitlines()[0].startswith("Exchange(gather) [4 parts]")
        assert "<gathers 4 partitions>" in plan
        assert "partition-wise, 4 parts" in plan
        assert "PartitionedScan [X by a, 4 parts]" in plan
        assert "PartitionedScan [Y by d, 4 parts]" in plan

    def test_small_paper_db_provably_stays_serial(self):
        """The golden threshold check: partitions registered, workers
        configured — and the serial hash join still wins on tiny data."""
        db = section4_database()
        catalog = Catalog(db)
        catalog.analyze()
        catalog.partition("SUPPLIER", "eid", 4)
        catalog.partition("PART", "pid", 4)
        expr = B.join(
            B.extent("SUPPLIER"), B.extent("PART"), "s", "p",
            B.eq(B.attr(B.var("s"), "eid"), B.attr(B.var("p"), "pid")),
        )
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            plan = Executor(db, catalog=catalog, parallel=parallel).explain(expr)
        assert "Exchange" not in plan
        assert "Partitioned" not in plan
        assert plan.splitlines()[0].startswith("HashJoin(join)")

    def test_small_flat_db_stays_serial(self):
        db = MemoryDatabase({
            "X": [VTuple(a=i, i=i) for i in range(20)],
            "Y": [VTuple(d=i, w=i) for i in range(20)],
        })
        catalog = co_partitioned(db, parts=2)
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            plan = Executor(db, catalog=catalog, parallel=parallel).explain(JOIN)
        assert "Exchange" not in plan

    def test_no_parallel_without_executor(self):
        db = big_db()
        catalog = co_partitioned(db)
        plan = Executor(db, catalog=catalog).explain(JOIN)
        assert "Exchange" not in plan

    def test_no_parallel_with_one_worker(self):
        db = big_db()
        catalog = co_partitioned(db)
        planner = Planner(catalog, parallel_workers=1)
        plan = planner.plan(JOIN)
        assert "Exchange" not in plan.explain()

    def test_partition_wise_beats_repartition_when_co_partitioned(self):
        db = big_db()
        catalog = co_partitioned(db)
        planner = Planner(catalog, parallel_workers=4)
        plan = planner.plan(JOIN)
        assert "partition-wise" in plan.explain()

    def test_broadcast_small_right_side(self):
        db = MemoryDatabase({
            "X": [VTuple(a=i % 40, v=i % 10, i=i) for i in range(4000)],
            "Y": [VTuple(d=i, w=i) for i in range(10)],
        })
        catalog = Catalog(db)
        catalog.analyze()
        catalog.partition("X", "v", 4)  # partitioned off the join key
        planner = Planner(catalog, parallel_workers=4)
        explained = planner.plan(JOIN).explain()
        assert "broadcast, 4 parts" in explained
        assert "Exchange(broadcast)" in explained

    def test_repartition_on_unpartitioned_extents(self):
        db = big_db(4000)
        catalog = Catalog(db)
        catalog.analyze()  # no registered partitioning at all
        planner = Planner(catalog, parallel_workers=4)
        explained = planner.plan(JOIN).explain()
        assert "repartition, 4 parts" in explained
        assert "Exchange(repartition) [on a, 4 parts]" in explained
        assert "<repartitions into 4 partitions>" in explained

    def test_nestjoin_stays_serial(self):
        """Documented simplification: no parallel nestjoin."""
        db = big_db()
        catalog = co_partitioned(db)
        nest = B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", EQ, "ys")
        planner = Planner(catalog, parallel_workers=4)
        assert "Exchange" not in planner.plan(nest).explain()

    def test_gather_estimates_rendered(self):
        db = big_db()
        catalog = co_partitioned(db)
        planner = Planner(catalog, parallel_workers=4)
        top = planner.plan(JOIN).explain().splitlines()[0]
        assert "rows≈" in top and "cost≈" in top

    def test_map_operands_do_not_parallelize(self):
        """A map can rename attributes; routing its output's join key
        against base-extent rows would be unsound — so map operands stay
        serial (and, crucially, do not crash)."""
        from repro.adl import ast as A

        db = big_db()
        catalog = co_partitioned(db)
        mapped = A.Join(
            A.Map("t", A.TupleExpr((("a", A.AttrAccess(A.Var("t"), "i")),)),
                  A.ExtentRef("X")),
            A.ExtentRef("Y"), "x", "y", EQ,
        )
        planner = Planner(catalog, parallel_workers=4)
        plan = planner.plan(mapped)
        assert "Exchange" not in plan.explain()
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            executor = Executor(db, catalog=catalog, parallel=parallel)
            assert executor.execute(mapped) == Executor(db, catalog=catalog).execute(mapped)

    def test_skewed_partitioning_prices_higher_than_even(self):
        """Per-shard statistics reach the cost model: the largest-shard
        fraction is the critical-path divisor."""
        even_db_ = big_db()
        even_catalog = co_partitioned(even_db_)
        even_cost = Planner(even_catalog, parallel_workers=4).plan(JOIN).est_cost

        skew_db = MemoryDatabase({
            "X": [VTuple(a=1 if i % 2 else i, v=i % 100, i=i) for i in range(3000)],
            "Y": [VTuple(d=1 if i % 2 else i, w=i % 7) for i in range(3000)],
        })
        skew_catalog = co_partitioned(skew_db)
        assert skew_catalog.partitioning("X").skew > 1.5
        skew_plan = Planner(skew_catalog, parallel_workers=4).plan(JOIN)
        assert "partition-wise" in skew_plan.explain()  # still wins here
        assert skew_plan.est_cost > even_cost

    def test_total_skew_falls_back_to_serial(self):
        """Everything in one shard: the parallel critical path is the
        whole join plus overhead, so serial wins."""
        db = MemoryDatabase({
            "X": [VTuple(a=7, v=i % 100, i=i) for i in range(3000)],
            "Y": [VTuple(d=i, w=i) for i in range(3000)],
        })
        catalog = co_partitioned(db)
        assert catalog.partitioning("X").skew == pytest.approx(4.0)
        plan = Planner(catalog, parallel_workers=4).plan(JOIN)
        assert "Exchange(gather)" not in plan.explain().splitlines()[0]

    def test_parallel_results_cheaper_than_serial_estimate(self):
        """The chosen parallel cost must actually undercut the serial
        candidates' — the reason it was picked."""
        db = big_db()
        catalog = co_partitioned(db)
        serial_cost = Planner(catalog).plan(JOIN).est_cost
        parallel_cost = Planner(catalog, parallel_workers=4).plan(JOIN).est_cost
        assert parallel_cost < serial_cost
