"""Partitioned extents: stable hashing, catalog registration, staleness,
and the incremental interaction with ANALYZE."""

import os
import subprocess
import sys

import pytest

from repro.datamodel import VTuple
from repro.datamodel.errors import PartitionError
from repro.datamodel.values import Oid
from repro.shard.partition import partition_of, partition_rows, stable_hash
from repro.storage import Catalog, MemoryDatabase


def flat_db(n=40, domain=10):
    return MemoryDatabase(
        {
            "X": [VTuple(a=i % domain, i=i) for i in range(n)],
            "Y": [VTuple(d=i % domain, e=i) for i in range(n)],
        }
    )


class TestStableHash:
    def test_atoms_hash(self):
        for value in (None, True, False, 0, -7, 2**70, 2**200, -(2**200),
                      1.5, "red", Oid("Part", 3), Oid("P", 2**150)):
            assert isinstance(stable_hash(value), int)

    def test_huge_ints_are_distinct(self):
        assert stable_hash(2**200) != stable_hash(2**200 + 1)

    def test_equal_values_agree(self):
        assert stable_hash(5) == stable_hash(5.0)
        assert stable_hash("s") == stable_hash("s")
        assert stable_hash(Oid("P", 1)) == stable_hash(Oid("P", 1))
        # the serial hash join co-locates Python-equal keys in one dict
        # bucket; shard routing must agree or matches silently vanish
        assert stable_hash(True) == stable_hash(1) == stable_hash(1.0)
        assert stable_hash(False) == stable_hash(0)

    def test_composite_keys_rejected(self):
        with pytest.raises(PartitionError):
            stable_hash(frozenset([1]))
        with pytest.raises(PartitionError):
            stable_hash(VTuple(a=1))

    def test_stable_across_interpreter_launches(self):
        """The whole point: shard routing must not depend on the hash seed."""
        code = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.shard.partition import stable_hash; "
            "print(stable_hash('supplier'), stable_hash(41), stable_hash(None))"
        )
        outs = set()
        for seed in ("0", "1", "random"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env,
                cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
            )
            assert result.returncode == 0, result.stderr
            outs.add(result.stdout.strip())
        assert len(outs) == 1

    def test_partition_of_range(self):
        for value in range(100):
            assert 0 <= partition_of(value, 4) < 4


class TestPartitionRows:
    def test_shards_partition_the_rows(self):
        rows = frozenset(VTuple(a=i, i=i) for i in range(30))
        shards = partition_rows(rows, "a", 4)
        assert len(shards) == 4
        assert frozenset().union(*shards) == rows
        assert sum(len(s) for s in shards) == len(rows)  # disjoint cover

    def test_routing_matches_partition_of(self):
        rows = frozenset(VTuple(a=i, i=i) for i in range(30))
        for index, shard in enumerate(partition_rows(rows, "a", 3)):
            assert all(partition_of(row["a"], 3) == index for row in shard)

    def test_single_partition_degenerate(self):
        rows = frozenset(VTuple(a=i, i=i) for i in range(9))
        (only,) = partition_rows(rows, "a", 1)
        assert only == rows

    def test_bad_part_count(self):
        with pytest.raises(PartitionError):
            partition_rows(frozenset(), "a", 0)


class TestCatalogPartitioning:
    def test_register_and_lookup(self):
        db = flat_db()
        catalog = Catalog(db)
        pe = catalog.partition("X", "a", 4)
        assert catalog.partitioning("X") is pe
        assert pe.parts == 4 and pe.attr == "a"
        assert frozenset().union(*pe.shards) == db.extent("X")
        assert catalog.partitioning("Y") is None

    def test_per_partition_stats(self):
        db = flat_db(n=40, domain=10)
        catalog = Catalog(db)
        pe = catalog.partition("X", "a", 4)
        assert len(pe.shard_stats) == 4
        assert sum(s.cardinality for s in pe.shard_stats) == 40
        for shard, stats in zip(pe.shards, pe.shard_stats):
            assert stats.cardinality == len(shard)
            if shard:
                assert stats.distinct_count("a") == len({r["a"] for r in shard})

    def test_partition_bumps_version(self):
        catalog = Catalog(flat_db())
        before = catalog.version
        catalog.partition("X", "a", 2)
        assert catalog.version == before + 1

    def test_stale_partitioning_rebuilds_lazily(self):
        db = flat_db()
        catalog = Catalog(db)
        catalog.partition("X", "a", 2)
        db.set_extent("X", [VTuple(a=1, i=99)])
        version = catalog.version
        pe = catalog.partitioning("X")
        assert catalog.partition_refreshes == 1
        assert catalog.version == version + 1
        assert frozenset().union(*pe.shards) == db.extent("X")
        # fresh lookup does not refresh again
        assert catalog.partitioning("X") is pe
        assert catalog.partition_refreshes == 1

    def test_analyze_rederives_partitions(self):
        db = flat_db()
        catalog = Catalog(db)
        catalog.analyze()
        catalog.partition("X", "a", 3)
        db.set_extent("X", [VTuple(a=i, i=i) for i in range(6)])
        catalog.analyze(["X"])
        pe = catalog.partitioning("X")
        assert catalog.partition_refreshes == 0  # ANALYZE did it eagerly
        assert frozenset().union(*pe.shards) == db.extent("X")
        assert sum(s.cardinality for s in pe.shard_stats) == 6

    def test_refresh_covers_partitions(self):
        db = flat_db()
        catalog = Catalog(db)
        catalog.partition("X", "a", 2)  # X never analyzed
        db.set_extent("X", [VTuple(a=i, i=i) for i in range(4)])
        catalog.refresh()
        pe = catalog.partitioning("X")
        assert frozenset().union(*pe.shards) == db.extent("X")

    def test_skew_and_cardinalities(self):
        db = MemoryDatabase({"X": [VTuple(a=0, i=i) for i in range(8)]})
        catalog = Catalog(db)
        pe = catalog.partition("X", "a", 4)
        assert sum(pe.cardinalities) == 8
        assert pe.skew == pytest.approx(4.0)  # everything in one shard

    def test_partition_snapshot_is_plain_data(self):
        db = flat_db()
        catalog = Catalog(db)
        catalog.partition("X", "a", 2)
        snapshot = catalog.partition_snapshot()
        assert set(snapshot) == {"X"}
        assert snapshot["X"].parts == 2


class TestIncrementalStatistics:
    """Satellite: notified inserts/deletes adjust cardinality without a
    full re-analyze; unnotified replacements still re-analyze."""

    def test_notified_insert_adjusts_incrementally(self):
        db = flat_db()
        catalog = Catalog(db)
        catalog.analyze(["X"])
        old_distinct = catalog.stats("X").distinct_count("a")
        db.insert_rows("X", [VTuple(a=1, i=1000), VTuple(a=2, i=1001)])
        stats = catalog.stats("X")
        assert stats.cardinality == 42
        assert catalog.stat_increments == 1
        assert catalog.stat_refreshes == 0
        # the documented contract: distinct counts stay lazily stale
        assert stats.distinct_count("a") == old_distinct

    def test_notified_delete_adjusts_incrementally(self):
        db = flat_db()
        catalog = Catalog(db)
        catalog.analyze(["X"])
        victim = next(iter(db.extent("X")))
        db.delete_rows("X", [victim])
        assert catalog.stats("X").cardinality == 39
        assert catalog.stat_increments == 1
        assert catalog.stat_refreshes == 0

    def test_incremental_bumps_version(self):
        db = flat_db()
        catalog = Catalog(db)
        catalog.analyze(["X"])
        version = catalog.version
        db.insert_rows("X", [VTuple(a=3, i=500)])
        catalog.stats("X")
        assert catalog.version == version + 1

    def test_unnotified_replacement_reanalyzes(self):
        db = flat_db()
        catalog = Catalog(db)
        catalog.analyze(["X"])
        db.set_extent("X", [VTuple(a=0, i=0)])
        stats = catalog.stats("X")
        assert stats.cardinality == 1
        assert stats.distinct_count("a") == 1  # fully fresh
        assert catalog.stat_refreshes == 1
        assert catalog.stat_increments == 0

    def test_replacement_taints_later_notified_inserts(self):
        db = flat_db()
        catalog = Catalog(db)
        catalog.analyze(["X"])
        db.set_extent("X", [VTuple(a=0, i=0)])          # unaccounted
        db.insert_rows("X", [VTuple(a=1, i=1)])          # notified
        stats = catalog.stats("X")
        assert catalog.stat_refreshes == 1               # full re-analyze
        assert catalog.stat_increments == 0
        assert stats.cardinality == 2
        assert stats.distinct_count("a") == 2

    def test_analyze_resets_the_incremental_baseline(self):
        db = flat_db()
        catalog = Catalog(db)
        catalog.analyze(["X"])
        db.insert_rows("X", [VTuple(a=1, i=700)])
        catalog.analyze(["X"])  # full baseline; the delta is consumed
        db.insert_rows("X", [VTuple(a=1, i=701)])
        stats = catalog.stats("X")
        assert stats.cardinality == 42
        assert catalog.stat_increments == 1
        assert catalog.stat_refreshes == 0

    def test_successive_increments(self):
        db = flat_db()
        catalog = Catalog(db)
        catalog.analyze(["X"])
        db.insert_rows("X", [VTuple(a=1, i=800)])
        assert catalog.stats("X").cardinality == 41
        db.insert_rows("X", [VTuple(a=1, i=801)])
        assert catalog.stats("X").cardinality == 42
        assert catalog.stat_increments == 2
        assert catalog.stat_refreshes == 0

    def test_paged_store_inserts_are_notified(self):
        from repro.workload.generator import generate_database

        paged = generate_database(n_parts=6, n_suppliers=3, n_deliveries=3, seed=1)
        catalog = Catalog(paged)
        catalog.analyze(["PART"])
        paged.insert("Part", {"pname": "n", "price": 2, "color": "red"})
        assert catalog.stats("PART").cardinality == 7
        assert catalog.stat_increments == 1
        assert catalog.stat_refreshes == 0
