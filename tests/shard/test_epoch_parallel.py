"""Epoch pinning across the parallel tier (PR 7).

The coordinator pins one epoch at submission and every shipped fragment
carries it in its :class:`FragmentSpec` — so a writer mutating an extent
*mid-batch* cannot tear a parallel join, in either execution mode.  This
is the regression suite for the PR-5 footgun ("mutations that bypass the
catalog need ``refresh()``"), which the epoch layer deletes.
"""

import dataclasses
import threading
import time
from collections import Counter

import pytest

from repro.adl import builders as B
from repro.engine.plan import ExecRuntime
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.datamodel import VTuple
from repro.faults import FaultPlan, RetryPolicy
from repro.shard import (
    Exchange,
    ParallelExecutor,
    PartitionedHashJoin,
    PartitionedScan,
)
from repro.shard.fragment import (
    LEFT_PLACEHOLDER,
    RIGHT_PLACEHOLDER,
    ShardRef,
    rebind_extent,
)
from repro.storage import Catalog, EpochView, MemoryDatabase

EQ = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))
JOIN = B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ)
PARTS = 3
FAST = RetryPolicy(max_attempts=3, base_s=0.001, max_s=0.002)

mode_param = pytest.mark.parametrize("mode", ["inline", "process"])


def _template(expr):
    return dataclasses.replace(
        expr,
        left=rebind_extent(expr.left, LEFT_PLACEHOLDER),
        right=rebind_extent(expr.right, RIGHT_PLACEHOLDER),
    )


def co_partitioned():
    db = MemoryDatabase(
        {
            "X": [VTuple(a=i % 12, v=i % 5, i=i) for i in range(90)],
            "Y": [VTuple(d=i % 12, w=i) for i in range(90)],
        }
    )
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "a", PARTS)
    catalog.partition("Y", "d", PARTS)
    bindings = [
        {
            LEFT_PLACEHOLDER: ShardRef("X", "a", PARTS, i),
            RIGHT_PLACEHOLDER: ShardRef("Y", "d", PARTS, i),
        }
        for i in range(PARTS)
    ]
    join = PartitionedHashJoin(
        "join", JOIN.lvar, JOIN.rvar, JOIN.pred, "partition-wise", PARTS,
        _template(JOIN), bindings,
        PartitionedScan("X", "a", PARTS),
        PartitionedScan("Y", "d", PARTS),
    )
    return db, catalog, Exchange("gather", join, PARTS)


def _run(db, catalog, plan, parallel=None):
    stats = Stats()
    rt = ExecRuntime(db, stats, catalog=catalog, parallel=parallel)
    return plan.execute(rt)


# ---------------------------------------------------------------------------
# the fragment contract
# ---------------------------------------------------------------------------


def test_fragment_spec_carries_epoch():
    specs = PartitionedScan("X", "a", PARTS).payloads({}, epoch=7)
    assert [s.epoch for s in specs] == [7] * PARTS
    assert all(s.epoch is None for s in PartitionedScan("X", "a", PARTS).payloads({}))


def test_runtime_epoch_flows_into_shipped_specs():
    db, catalog, plan = co_partitioned()
    with db.pinned() as e:
        view = EpochView(db, e)
        rt = ExecRuntime(db, Stats(), catalog=catalog)
        assert rt.pinned_epoch is None
        rt_pinned = ExecRuntime(view, Stats(), catalog=catalog)
        assert rt_pinned.pinned_epoch == e


# ---------------------------------------------------------------------------
# mid-batch mutation: the deleted PR-5 footgun, now a guarantee
# ---------------------------------------------------------------------------


@mode_param
def test_writer_mutating_mid_batch_cannot_tear_the_join(mode):
    """A slow fragment holds the batch open while a writer inserts
    matching rows into *both* join sides and deletes others; the pinned
    run must return exactly the rows of the pinned-epoch oracle — no
    torn mix of old and new extent values, no ``refresh()`` call."""
    db, catalog, plan = co_partitioned()
    with db.pinned() as e:
        view = EpochView(db, e)
        oracle = Counter(Executor(view, catalog=catalog).execute(JOIN))

        def writer():
            time.sleep(0.1)  # let fragment 0 start (it sleeps 0.4s)
            with db.batch():
                db.insert_rows("X", [VTuple(a=k, v=0, i=900 + k) for k in range(12)])
                db.insert_rows("Y", [VTuple(d=k, w=900 + k) for k in range(12)])
                db.delete_rows("X", [VTuple(a=0, v=0, i=0)])

        t = threading.Thread(target=writer)
        with ParallelExecutor(
            db, catalog, workers=PARTS, mode=mode,
            fault_plan=FaultPlan.slow(0.4, fragment=0), retry_policy=FAST,
        ) as parallel:
            t.start()
            try:
                rows = _run(view, catalog, plan, parallel)
            finally:
                t.join()
        assert Counter(rows) == oracle
    # and an unpinned run afterwards sees the mutated state
    assert Counter(_run(db, catalog, plan)) != oracle


@mode_param
def test_pinned_parallel_matches_serial_oracle_after_mutation(mode):
    db, catalog, plan = co_partitioned()
    with db.pinned() as e:
        view = EpochView(db, e)
        oracle = Counter(Executor(view, catalog=catalog).execute(JOIN))
        db.insert_rows("X", [VTuple(a=1, v=1, i=500)])
        with ParallelExecutor(
            db, catalog, workers=PARTS, mode=mode, retry_policy=FAST
        ) as parallel:
            assert Counter(_run(view, catalog, plan, parallel)) == oracle


# ---------------------------------------------------------------------------
# pool staleness: the epoch trigger
# ---------------------------------------------------------------------------


def test_pool_reforks_when_batch_epoch_passes_pool_epoch():
    """Mutating an extent the plan never reads moves the store epoch but
    neither the catalog version nor any read extent's identity — only
    the PR-7 epoch trigger can (and must) retire the worker snapshot."""
    db, catalog, plan = co_partitioned()
    with ParallelExecutor(
        db, catalog, workers=PARTS, mode="process", retry_policy=FAST
    ) as parallel:
        baseline = Counter(_run(db, catalog, plan, parallel))
        forks = parallel.pool_rebuilds
        _run(db, catalog, plan, parallel)
        assert parallel.pool_rebuilds == forks  # steady state: no re-fork
        db.set_extent("Z", frozenset([VTuple(z=1)]))  # unrelated extent
        with db.pinned() as e:
            rows = _run(EpochView(db, e), catalog, plan, parallel)
        assert Counter(rows) == baseline
        assert parallel.pool_rebuilds == forks + 1  # forked past the pin


# ---------------------------------------------------------------------------
# stale stored shards under a pin
# ---------------------------------------------------------------------------


def test_stale_copartitioned_shards_fall_back_to_shared_scan():
    """Once a mutation invalidates the stored shards, a pinned fragment
    must not read them (they were built from a different extent value):
    it falls back to hash-filtering the pinned shared scan."""
    db, catalog, plan = co_partitioned()
    with db.pinned() as e:
        view = EpochView(db, e)
        oracle = Counter(Executor(view, catalog=catalog).execute(JOIN))
        db.insert_rows("X", [VTuple(a=2, v=2, i=700)])  # shards now stale
        rows = _run(view, catalog, plan)  # inline fragments, no executor
        assert Counter(rows) == oracle
        assert all(r for r in rows)
        # the new row is invisible to the pinned run...
        assert not any(getattr(x, "i", None) == 700 for r in rows for x in [r])
    # ...and visible once unpinned (after the catalog refreshes shards)
    live = _run(db, catalog, plan)
    assert len(live) > sum(oracle.values())
