"""ParallelExecutor lifecycle: pool snapshots, staleness, fallbacks,
and per-run accounting."""

import pytest

from repro.datamodel import VTuple
from repro.datamodel.errors import ServiceError
from repro.shard import FragmentSpec, ParallelExecutor, ShardRef
from repro.shard.fragment import (
    SCAN_PLACEHOLDER,
    ShardView,
    execute_fragment,
    fragment_stats_total,
)
from repro.engine.stats import Stats
from repro.storage import Catalog, MemoryDatabase


def make_db(n=100):
    return MemoryDatabase({"X": [VTuple(a=i % 10, i=i) for i in range(n)]})


def scan_specs(parts, params=None):
    return [
        FragmentSpec.make(
            SCAN_PLACEHOLDER, {SCAN_PLACEHOLDER: ShardRef("X", "a", parts, i)}, params
        )
        for i in range(parts)
    ]


class TestConstruction:
    def test_bad_workers(self):
        with pytest.raises(ServiceError):
            ParallelExecutor(make_db(), workers=0)

    def test_bad_mode(self):
        with pytest.raises(ServiceError):
            ParallelExecutor(make_db(), mode="threads")

    def test_defaults_to_registered_catalog(self):
        db = make_db()
        catalog = Catalog(db)
        executor = ParallelExecutor(db, workers=2, mode="inline")
        assert executor.catalog is catalog


class TestInlineRuns:
    def test_fragments_cover_the_extent(self):
        db = make_db()
        catalog = Catalog(db)
        catalog.partition("X", "a", 4)
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as executor:
            results = executor.run_fragments(scan_specs(4))
        assert frozenset().union(*(rows for rows, _ in results)) == db.extent("X")
        assert all(isinstance(snapshot, dict) for _, snapshot in results)

    def test_last_report_accounting(self):
        db = make_db()
        catalog = Catalog(db)
        catalog.partition("X", "a", 4)
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as executor:
            results = executor.run_fragments(scan_specs(4))
            report = executor.last_report
        per = [fragment_stats_total(s) for _, s in results]
        assert report["fragments"] == 4
        assert report["mode"] == "inline"
        assert report["per_fragment_work"] == per
        assert report["critical_path_work"] == max(per)
        assert report["total_work"] == sum(per)
        assert report["result_rows"] == sum(len(r) for r, _ in results)
        assert executor.runs == 1


class TestProcessPool:
    def test_pool_reused_across_runs(self):
        db = make_db()
        catalog = Catalog(db)
        catalog.partition("X", "a", 2)
        with ParallelExecutor(db, catalog, workers=2, mode="process") as executor:
            executor.run_fragments(scan_specs(2))
            executor.run_fragments(scan_specs(2))
            assert executor.pool_rebuilds == 1
            assert executor.runs == 2

    def test_catalog_version_retires_the_snapshot(self):
        db = make_db()
        catalog = Catalog(db)
        catalog.partition("X", "a", 2)
        with ParallelExecutor(db, catalog, workers=2, mode="process") as executor:
            before = executor.run_fragments(scan_specs(2))
            # data + partitioning change: version bump must re-fork workers
            db.set_extent("X", [VTuple(a=i % 10, i=i) for i in range(40)])
            catalog.partition("X", "a", 2)
            after = executor.run_fragments(scan_specs(2))
            assert executor.pool_rebuilds == 2
        assert frozenset().union(*(r for r, _ in after)) == db.extent("X")
        assert frozenset().union(*(r for r, _ in before)) != db.extent("X")

    def test_notified_insert_reaches_workers(self):
        """A notified insert bumps no version, but the extent-identity
        check must still re-fork the pool — forked children hold a
        pre-mutation heap image."""
        db = make_db(n=40)
        catalog = Catalog(db)
        catalog.partition("X", "a", 2)
        with ParallelExecutor(db, catalog, workers=2, mode="process") as executor:
            executor.run_fragments(scan_specs(2))
            db.insert_rows("X", [VTuple(a=3, i=999)])
            after = executor.run_fragments(scan_specs(2))
            assert executor.pool_rebuilds == 2
        merged = frozenset().union(*(rows for rows, _ in after))
        assert VTuple(a=3, i=999) in merged
        assert merged == db.extent("X")

    def test_notified_insert_reaches_inline_snapshot(self):
        """The inline path snapshots per run; the snapshot's identity
        handshake must re-derive stale shards."""
        db = make_db(n=40)
        catalog = Catalog(db)
        catalog.partition("X", "a", 2)
        with ParallelExecutor(db, catalog, workers=2, mode="inline") as executor:
            executor.run_fragments(scan_specs(2))
            db.insert_rows("X", [VTuple(a=3, i=999)])
            after = executor.run_fragments(scan_specs(2))
        assert frozenset().union(*(rows for rows, _ in after)) == db.extent("X")

    def test_broadcast_extent_change_reaches_workers(self):
        """Un-partitioned broadcast sides have no partitioning handshake:
        the per-batch extent-identity record must catch their changes."""
        db = MemoryDatabase({
            "X": [VTuple(a=i % 10, i=i) for i in range(40)],
            "R": [VTuple(d=1, w=1)],
        })
        catalog = Catalog(db)
        catalog.partition("X", "a", 2)
        specs = [
            FragmentSpec.make(
                "__r__", {"__r__": ShardRef("R")},
            )
            for _ in range(2)
        ]
        with ParallelExecutor(db, catalog, workers=2, mode="process") as executor:
            executor.run_fragments(specs)
            db.insert_rows("R", [VTuple(d=2, w=2)])
            after = executor.run_fragments(specs)
            assert executor.pool_rebuilds == 2
        assert after[0][0] == db.extent("R")

    def test_refresh_forces_refork(self):
        db = make_db()
        catalog = Catalog(db)
        catalog.partition("X", "a", 2)
        with ParallelExecutor(db, catalog, workers=2, mode="process") as executor:
            executor.run_fragments(scan_specs(2))
            executor.refresh()
            executor.run_fragments(scan_specs(2))
            assert executor.pool_rebuilds == 2

    def test_params_ship_to_workers(self):
        db = make_db()
        catalog = Catalog(db)
        catalog.partition("X", "a", 2)
        text = "σ[x : x.i < $cap](__shard__)"
        specs = [
            FragmentSpec.make(
                text, {SCAN_PLACEHOLDER: ShardRef("X", "a", 2, i)}, {"cap": 7}
            )
            for i in range(2)
        ]
        with ParallelExecutor(db, catalog, workers=2, mode="process") as executor:
            results = executor.run_fragments(specs)
        merged = frozenset().union(*(rows for rows, _ in results))
        assert merged == frozenset(r for r in db.extent("X") if r["i"] < 7)


class TestShardView:
    def test_placeholder_resolution_and_passthrough(self):
        db = make_db()
        catalog = Catalog(db)
        pe = catalog.partition("X", "a", 2)
        stats = Stats()
        view = ShardView(db, {"X": pe}, {"__shard__": ShardRef("X", "a", 2, 0)}, stats)
        assert view.extent("__shard__") == pe.shard(0)
        assert view.extent("X") == db.extent("X")  # non-placeholder passthrough
        assert stats.pipeline_breaks == 0  # stored shard: no exchange

    def test_mismatched_partitioning_hash_filters(self):
        db = make_db()
        catalog = Catalog(db)
        pe = catalog.partition("X", "a", 4)  # stored as 4 parts
        stats = Stats()
        view = ShardView(db, {"X": pe}, {"__shard__": ShardRef("X", "a", 2, 1)}, stats)
        shard = view.extent("__shard__")
        from repro.shard.partition import partition_of
        assert shard == frozenset(
            r for r in db.extent("X") if partition_of(r["a"], 2) == 1
        )
        assert stats.pipeline_breaks == 1  # the shared-scan exchange
        assert stats.tuples_visited == len(db.extent("X"))

    def test_broadcast_binding_is_whole_extent(self):
        db = make_db()
        stats = Stats()
        view = ShardView(db, {}, {"__r__": ShardRef("X")}, stats)
        assert view.extent("__r__") == db.extent("X")

    def test_execute_fragment_roundtrip(self):
        db = make_db()
        catalog = Catalog(db)
        pe = catalog.partition("X", "a", 2)
        spec = FragmentSpec.make(
            SCAN_PLACEHOLDER, {SCAN_PLACEHOLDER: ShardRef("X", "a", 2, 1)}
        )
        rows, snapshot = execute_fragment(db, {"X": pe}, spec)
        assert rows == pe.shard(1)
        assert isinstance(snapshot, dict)
