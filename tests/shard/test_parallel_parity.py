"""Parallel/serial parity: every parallel plan shape, oracle-checked.

Each strategy — partition-wise join, repartition join, broadcast join,
and the gathered scan — must produce exactly the serial engine's rows
(and, where feasible, the reference interpreter's) on the paper DB, on
skewed partitions, on partitionings with empty shards, and in the
1-partition degenerate case; via the inline fragment loop *and* the
forked process pool (one pooled case per strategy — both paths run the
same ``execute_fragment``, so the cheap inline matrix carries the bulk).
"""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import VTuple
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.shard import (
    Exchange,
    FragmentSpec,
    ParallelExecutor,
    PartitionedHashJoin,
    PartitionedScan,
    ShardRef,
)
from repro.shard.fragment import LEFT_PLACEHOLDER, RIGHT_PLACEHOLDER, rebind_extent
from repro.storage import Catalog, MemoryDatabase

EQ = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))


def make_db(nx=300, ny=300, skewed=False, with_gap=False):
    """X(a, v, i) ⋈ Y(d, w) on a = d.  ``skewed`` concentrates keys so one
    shard dominates; ``with_gap`` leaves key ranges that hash-partition
    into empty shards."""
    def key(i):
        if skewed:
            return 0 if i % 2 else i % 50
        if with_gap:
            return 7  # a single key value: most shards empty
        return i % 60
    x = [VTuple(a=key(i), v=i % 10, i=i) for i in range(nx)]
    y = [VTuple(d=key(i), w=i) for i in range(ny)]
    return MemoryDatabase({"X": x, "Y": y})


def check_parity(db, catalog, expr, parallel, interp_oracle=True):
    serial = Executor(db, catalog=catalog)
    par = Executor(db, Stats(), catalog=catalog, parallel=parallel)
    want = serial.execute(expr)
    got = par.execute(expr)
    assert got == want
    if interp_oracle:
        assert Interpreter(db).eval(expr) == want
    return got


JOIN = B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ)
SEMI = B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", EQ)
FILTERED = B.join(
    B.sel("x", B.lt(B.attr(B.var("x"), "v"), B.lit(4)), B.extent("X")),
    B.extent("Y"), "x", "y", EQ,
)


def partitioned_catalog(db, l_attr="a", r_attr="d", parts=4):
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", l_attr, parts)
    catalog.partition("Y", r_attr, parts)
    return catalog


class TestPartitionWise:
    @pytest.mark.parametrize("expr", [JOIN, SEMI, FILTERED],
                             ids=["join", "semijoin", "filtered-join"])
    @pytest.mark.parametrize("shape", ["even", "skewed", "gappy"])
    def test_inline_parity(self, expr, shape):
        db = make_db(skewed=shape == "skewed", with_gap=shape == "gappy")
        catalog = partitioned_catalog(db)
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            check_parity(db, catalog, expr, parallel)
            if shape == "even":
                assert parallel.last_report["fragments"] == 4
            else:
                # skewed/gappy at this (small) scale: the skew-aware cost
                # model may legitimately keep the plan serial — parity on
                # the forced parallel node is asserted separately below
                assert (
                    parallel.last_report is None
                    or parallel.last_report["fragments"] == 4
                )

    @pytest.mark.parametrize("shape", ["skewed", "gappy"])
    def test_forced_partition_wise_parity_on_bad_distributions(self, shape):
        """Skewed and empty shards through the parallel join node itself
        (shapes the skew-aware cost model may refuse to pick)."""
        db = make_db(skewed=shape == "skewed", with_gap=shape == "gappy")
        catalog = partitioned_catalog(db)
        plan = _manual_partition_wise(JOIN, parts=4)
        from repro.engine.plan import ExecRuntime
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel)
            got = plan.execute(rt)
            assert parallel.last_report["fragments"] == 4
        assert got == Executor(db, catalog=catalog).execute(JOIN)

    def test_gappy_partitioning_has_empty_shards(self):
        db = make_db(with_gap=True)
        catalog = partitioned_catalog(db)
        assert 0 in catalog.partitioning("X").cardinalities

    def test_single_partition_degenerate(self):
        db = make_db(nx=60, ny=60)
        catalog = Catalog(db)
        catalog.analyze()
        catalog.partition("X", "a", 1)
        catalog.partition("Y", "d", 1)
        # cost keeps 1-partition plans serial; exercise the node directly
        plan = _manual_partition_wise(JOIN, parts=1)
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            from repro.engine.plan import ExecRuntime
            rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel)
            got = plan.execute(rt)
        assert got == Executor(db, catalog=catalog).execute(JOIN)

    def test_process_pool_parity(self):
        db = make_db()
        catalog = partitioned_catalog(db)
        with ParallelExecutor(db, catalog, workers=4, mode="process") as parallel:
            check_parity(db, catalog, JOIN, parallel)
            assert parallel.last_report["mode"] in ("process", "inline")

    def test_planner_picks_partition_wise(self):
        db = make_db(nx=2000, ny=2000)
        catalog = partitioned_catalog(db)
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            plan = Executor(db, catalog=catalog, parallel=parallel).explain(JOIN)
        assert "partition-wise, 4 parts" in plan
        assert "Exchange(gather)" in plan


def _manual_partition_wise(expr, parts):
    """Build the parallel join node directly (shapes the cost model would
    not pick, like the 1-partition degenerate case)."""
    import dataclasses

    template = dataclasses.replace(
        expr,
        left=rebind_extent(expr.left, LEFT_PLACEHOLDER),
        right=rebind_extent(expr.right, RIGHT_PLACEHOLDER),
    )
    bindings = [
        {
            LEFT_PLACEHOLDER: ShardRef("X", "a", parts, i),
            RIGHT_PLACEHOLDER: ShardRef("Y", "d", parts, i),
        }
        for i in range(parts)
    ]
    join = PartitionedHashJoin(
        "join", expr.lvar, expr.rvar, expr.pred, "partition-wise", parts,
        template, bindings,
        PartitionedScan("X", "a", parts), PartitionedScan("Y", "d", parts),
    )
    return Exchange("gather", join, parts)


class TestRepartition:
    """Join keys do not match the stored partitioning: fragments
    hash-filter both full inputs (shared-scan exchange)."""

    @pytest.mark.parametrize("shape", ["even", "skewed"])
    def test_inline_parity(self, shape):
        db = make_db(skewed=shape == "skewed")
        catalog = partitioned_catalog(db, l_attr="v", r_attr="w")  # wrong keys
        with ParallelExecutor(db, catalog, workers=3, mode="inline") as parallel:
            plan = Executor(db, catalog=catalog, parallel=parallel).explain(JOIN)
            check_parity(db, catalog, JOIN, parallel)
        if "repartition" in plan:
            assert "Exchange(repartition)" in plan

    def test_unpartitioned_extents_can_still_repartition(self):
        db = make_db(nx=4000, ny=4000)
        catalog = Catalog(db)
        catalog.analyze()  # no partition() at all
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            executor = Executor(db, catalog=catalog, parallel=parallel)
            plan = executor.explain(JOIN)
            assert "repartition, 4 parts" in plan
            want = Executor(db, catalog=catalog).execute(JOIN)
            assert executor.execute(JOIN) == want

    def test_process_pool_parity(self):
        db = make_db()
        catalog = Catalog(db)
        catalog.analyze()
        plan = _manual_repartition(JOIN, parts=3)
        from repro.engine.plan import ExecRuntime
        with ParallelExecutor(db, catalog, workers=3, mode="process") as parallel:
            rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel)
            got = plan.execute(rt)
        assert got == Executor(db, catalog=catalog).execute(JOIN)


def _manual_repartition(expr, parts):
    import dataclasses

    template = dataclasses.replace(
        expr,
        left=rebind_extent(expr.left, LEFT_PLACEHOLDER),
        right=rebind_extent(expr.right, RIGHT_PLACEHOLDER),
    )
    bindings = [
        {
            LEFT_PLACEHOLDER: ShardRef("X", "a", parts, i),
            RIGHT_PLACEHOLDER: ShardRef("Y", "d", parts, i),
        }
        for i in range(parts)
    ]
    join = PartitionedHashJoin(
        "join", expr.lvar, expr.rvar, expr.pred, "repartition", parts,
        template, bindings,
        Exchange("repartition", PartitionedScan("X", "a", parts), parts, key_attr="a"),
        Exchange("repartition", PartitionedScan("Y", "d", parts), parts, key_attr="d"),
    )
    return Exchange("gather", join, parts)


class TestBroadcast:
    def test_inline_parity_small_right(self):
        db = MemoryDatabase({
            "X": [VTuple(a=i % 97, v=i % 10, i=i) for i in range(2500)],
            "Y": [VTuple(d=i, w=i) for i in range(12)],
        })
        catalog = Catalog(db)
        catalog.analyze()
        catalog.partition("X", "v", 4)  # partitioned, but not on the join key
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            executor = Executor(db, catalog=catalog, parallel=parallel)
            plan = executor.explain(JOIN)
            assert "broadcast" in plan
            assert "Exchange(broadcast)" in plan
            want = Executor(db, catalog=catalog).execute(JOIN)
            assert executor.execute(JOIN) == want

    def test_empty_partition_broadcast(self):
        db = MemoryDatabase({
            "X": [VTuple(a=7, v=7, i=i) for i in range(600)],  # one key: empty shards
            "Y": [VTuple(d=i, w=i) for i in range(8)],
        })
        catalog = Catalog(db)
        catalog.analyze()
        catalog.partition("X", "a", 4)
        assert 0 in catalog.partitioning("X").cardinalities
        plan = _manual_broadcast(JOIN, parts=4)
        from repro.engine.plan import ExecRuntime
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel)
            got = plan.execute(rt)
        assert got == Executor(db, catalog=catalog).execute(JOIN)
        assert Interpreter(db).eval(JOIN) == got

    def test_process_pool_parity(self):
        db = MemoryDatabase({
            "X": [VTuple(a=i % 11, v=i % 5, i=i) for i in range(400)],
            "Y": [VTuple(d=i, w=i) for i in range(11)],
        })
        catalog = Catalog(db)
        catalog.analyze()
        catalog.partition("X", "v", 2)
        plan = _manual_broadcast(JOIN, parts=2, part_attr="v")
        from repro.engine.plan import ExecRuntime
        with ParallelExecutor(db, catalog, workers=2, mode="process") as parallel:
            rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel)
            got = plan.execute(rt)
        assert got == Executor(db, catalog=catalog).execute(JOIN)


def _manual_broadcast(expr, parts, part_attr="a"):
    import dataclasses

    from repro.engine.plan import Scan

    template = dataclasses.replace(
        expr,
        left=rebind_extent(expr.left, LEFT_PLACEHOLDER),
        right=rebind_extent(expr.right, RIGHT_PLACEHOLDER),
    )
    bindings = [
        {
            LEFT_PLACEHOLDER: ShardRef("X", part_attr, parts, i),
            RIGHT_PLACEHOLDER: ShardRef("Y"),
        }
        for i in range(parts)
    ]
    join = PartitionedHashJoin(
        "join", expr.lvar, expr.rvar, expr.pred, "broadcast", parts,
        template, bindings,
        PartitionedScan("X", part_attr, parts),
        Exchange("broadcast", Scan("Y"), parts),
    )
    return Exchange("gather", join, parts)


class TestGatheredScan:
    """A gather over a partitioned scan: one fragment per shard, merged."""

    @pytest.mark.parametrize("parts", [1, 3, 4])
    def test_inline_parity(self, parts):
        db = make_db(nx=200, ny=10)
        catalog = Catalog(db)
        catalog.analyze()
        catalog.partition("X", "a", parts)
        plan = Exchange("gather", PartitionedScan("X", "a", parts), parts)
        from repro.engine.plan import ExecRuntime
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel)
            got = plan.execute(rt)
        assert got == db.extent("X")

    def test_process_pool_parity(self):
        db = make_db(nx=150, ny=10)
        catalog = Catalog(db)
        catalog.analyze()
        catalog.partition("X", "a", 3)
        plan = Exchange("gather", PartitionedScan("X", "a", 3), 3)
        from repro.engine.plan import ExecRuntime
        with ParallelExecutor(db, catalog, workers=3, mode="process") as parallel:
            rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel)
            got = plan.execute(rt)
        assert got == db.extent("X")

    def test_empty_shards_and_skew(self):
        db = MemoryDatabase({"X": [VTuple(a=3, i=i) for i in range(40)], "Y": []})
        catalog = Catalog(db)
        catalog.partition("X", "a", 4)
        plan = Exchange("gather", PartitionedScan("X", "a", 4), 4)
        from repro.engine.plan import ExecRuntime
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel)
            assert plan.execute(rt) == db.extent("X")


class TestPaperDatabase:
    """The paper's own Section 4 world, partitioned — tiny, so the planner
    stays serial; forcing the parallel node must still agree."""

    def test_forced_parallel_matches_serial(self, s4_db):
        section4_db = s4_db
        catalog = Catalog(section4_db)
        catalog.analyze()
        catalog.partition("SUPPLIER", "eid", 2)
        catalog.partition("PART", "pid", 2)
        expr = B.semijoin(
            B.extent("SUPPLIER"), B.extent("PART"), "s", "p",
            B.eq(B.attr(B.var("s"), "eid"), B.attr(B.var("p"), "pid")),
        )
        import dataclasses
        template = dataclasses.replace(
            expr,
            left=rebind_extent(expr.left, LEFT_PLACEHOLDER),
            right=rebind_extent(expr.right, RIGHT_PLACEHOLDER),
        )
        bindings = [
            {
                LEFT_PLACEHOLDER: ShardRef("SUPPLIER", "eid", 2, i),
                RIGHT_PLACEHOLDER: ShardRef("PART", "pid", 2, i),
            }
            for i in range(2)
        ]
        join = PartitionedHashJoin(
            "semijoin", "s", "p", expr.pred, "partition-wise", 2,
            template, bindings,
            PartitionedScan("SUPPLIER", "eid", 2), PartitionedScan("PART", "pid", 2),
        )
        plan = Exchange("gather", join, 2)
        from repro.engine.plan import ExecRuntime
        with ParallelExecutor(section4_db, catalog, workers=2, mode="inline") as parallel:
            rt = ExecRuntime(section4_db, Stats(), catalog=catalog, parallel=parallel)
            got = plan.execute(rt)
        assert got == Executor(section4_db, catalog=catalog).execute(expr)
        assert got == Interpreter(section4_db).eval(expr)


class TestStatsAccounting:
    """Satellite: exchanges count as pipeline breaks and worker counters
    aggregate into the coordinator's Stats."""

    def test_gather_counts_a_pipeline_break(self):
        db = make_db(nx=100, ny=100)
        catalog = partitioned_catalog(db)
        stats = Stats()
        plan = _manual_partition_wise(JOIN, parts=4)
        from repro.engine.plan import ExecRuntime
        rt = ExecRuntime(db, stats, catalog=catalog)
        plan.execute(rt)
        # one gather break + one hash-build break per non-empty fragment
        assert stats.pipeline_breaks >= 1 + 1
        assert stats.hash_inserts > 0 and stats.hash_probes > 0

    def test_repartition_resolution_counts_breaks_and_scans(self):
        db = make_db(nx=100, ny=100)
        catalog = Catalog(db)
        catalog.analyze()
        stats = Stats()
        plan = _manual_repartition(JOIN, parts=2)
        from repro.engine.plan import ExecRuntime
        rt = ExecRuntime(db, stats, catalog=catalog)
        result = plan.execute(rt)
        assert result == Executor(db, catalog=catalog).execute(JOIN)
        # gather + per-fragment: 2 shared-scan resolutions + hash build
        assert stats.pipeline_breaks >= 1 + 2 * 2
        assert stats.tuples_visited >= 2 * 200  # both inputs scanned per fragment

    def test_pool_and_inline_stats_agree(self):
        db = make_db(nx=120, ny=120)
        catalog = partitioned_catalog(db)
        plan = _manual_partition_wise(JOIN, parts=4)
        from repro.engine.plan import ExecRuntime

        snapshots = []
        for mode in ("inline", "process"):
            stats = Stats()
            with ParallelExecutor(db, catalog, workers=4, mode=mode) as parallel:
                rt = ExecRuntime(db, stats, catalog=catalog, parallel=parallel)
                plan.execute(rt)
            snapshots.append(stats.snapshot())
        assert snapshots[0] == snapshots[1]


class TestBatchModeParity:
    """PR 8: with batch mode on, gathers ship fragment results as
    ChunkedRows and re-emit them as whole batches — parallel batch
    execution must equal serial tuple execution on the same query."""

    @pytest.mark.parametrize(
        "expr", [JOIN, SEMI, FILTERED], ids=["join", "semijoin", "filtered"]
    )
    def test_inline_gather_batch_parity(self, expr):
        db = make_db()
        catalog = partitioned_catalog(db)
        want = Executor(db, catalog=catalog).execute(expr)
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            got = Executor(
                db, Stats(), catalog=catalog, parallel=parallel, batch_size=64
            ).execute(expr)
        assert got == want
        assert Interpreter(db).eval(expr) == want

    def test_process_pool_gather_batch_parity(self):
        db = make_db(nx=150, ny=150)
        catalog = partitioned_catalog(db, parts=3)
        want = Executor(db, catalog=catalog).execute(JOIN)
        with ParallelExecutor(db, catalog, workers=3, mode="process") as parallel:
            got = Executor(
                db, Stats(), catalog=catalog, parallel=parallel, batch_size=32
            ).execute(JOIN)
        assert got == want

    def test_forced_gather_batch_counts_batches(self):
        db = make_db(nx=200, ny=10)
        catalog = Catalog(db)
        catalog.analyze()
        catalog.partition("X", "a", 4)
        plan = Exchange("gather", PartitionedScan("X", "a", 4), 4)
        from repro.engine.plan import ExecRuntime

        stats = Stats()
        with ParallelExecutor(db, catalog, workers=4, mode="inline") as parallel:
            rt = ExecRuntime(
                db, stats, catalog=catalog, parallel=parallel, batch_size=16
            )
            got = plan.execute(rt)
        assert got == db.extent("X")
        assert stats.batches_emitted > 0
