"""The ADL pretty-text parser — the fragment-shipping surface.

``parse_adl`` must be a left inverse of ``pretty`` on every shape a
fragment can contain (and, pragmatically, on the whole plannable
algebra): structurally for closed fragment shapes, up to the documented
normalizations elsewhere.  The *fixpoint* property —
``pretty(parse_adl(pretty(e))) == pretty(e)`` — is checked across a
hypothesis-generated expression corpus.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adl import ast as A
from repro.adl.parser import parse_adl
from repro.adl.pretty import pretty
from repro.datamodel.errors import ADLSyntaxError
from repro.datamodel.values import Oid


def av(var, attr):
    return A.AttrAccess(A.Var(var), attr)


EQ = A.Compare("=", av("x", "a"), av("y", "d"))


class TestStructuralRoundTrip:
    """Closed fragment shapes must re-parse to the *same* tree."""

    CASES = [
        A.ExtentRef("X"),
        A.Select("x", A.Compare("=", av("x", "a"), A.Literal(1)), A.ExtentRef("X")),
        A.Select("x", A.Compare("<", av("x", "v"), A.Param("t")), A.ExtentRef("__lshard__")),
        A.Join(A.ExtentRef("X"), A.ExtentRef("Y"), "x", "y", EQ),
        A.SemiJoin(
            A.Select("x", A.Compare("<", av("x", "v"), A.Param("t")), A.ExtentRef("X")),
            A.ExtentRef("Y"), "x", "y",
            A.And(EQ, A.Compare("!=", av("x", "b"), A.Literal("red"))),
        ),
        A.AntiJoin(A.ExtentRef("X"), A.ExtentRef("Y"), "x", "y", EQ),
        A.NestJoin(A.ExtentRef("X"), A.ExtentRef("Y"), "x", "y", EQ, "ys", A.Var("y")),
        A.Map("x", A.TupleExpr((("xi", av("x", "i")),)), A.ExtentRef("X")),
        A.Map(
            "x",
            av("x", "i"),
            A.Join(A.ExtentRef("X"), A.ExtentRef("Y"), "x2", "y",
                   A.Compare("=", av("x2", "a"), av("y", "d"))),
        ),
        A.Project(A.ExtentRef("R"), ("a", "b")),
        A.Rename(A.ExtentRef("R"), (("a", "b"), ("c", "d"))),
        A.Unnest(A.ExtentRef("S"), "parts"),
        A.Nest(A.ExtentRef("R"), ("a", "b"), "grp"),
        A.Flatten(A.Map("x", A.Var("x"), A.ExtentRef("X"))),
        A.Exists("y", A.ExtentRef("Y"), A.Compare("=", av("y", "d"), A.Param("k"))),
        A.Select(
            "y",
            A.Forall("m", av("y", "s"), A.SetCompare("in", A.Var("m"), A.ExtentRef("Y"))),
            A.ExtentRef("S"),
        ),
        A.Union(A.ExtentRef("X"), A.Difference(A.ExtentRef("Y"), A.ExtentRef("Z"))),
        A.Intersect(A.ExtentRef("X"), A.ExtentRef("Y")),
        A.CartProd(A.ExtentRef("X"), A.ExtentRef("Y")),
        A.Division(A.ExtentRef("X"), A.ExtentRef("Y")),
        A.Aggregate("count", A.ExtentRef("X")),
        A.Materialize(A.ExtentRef("S"), "part", "p", "Part"),
        A.Select("x", A.Not(A.IsEmpty(av("x", "c"))), A.ExtentRef("X")),
        A.Select(
            "x",
            A.Or(A.Compare(">", av("x", "a"), A.Literal(5)), A.IsEmpty(av("x", "c"))),
            A.ExtentRef("X"),
        ),
        A.Select("x", A.SetCompare("disjoint", av("x", "c"), A.ExtentRef("Y")), A.ExtentRef("X")),
        A.Select("x", A.SetCompare("subseteq", av("x", "c"), A.ExtentRef("Y")), A.ExtentRef("X")),
        A.Literal(Oid("Part", 3)),
        A.Literal(True),
        A.Literal(None),
        A.SetExpr((A.Literal(1), A.Param("k"))),
        A.Select("x", A.Compare("=", A.Arith("mod", av("x", "a"), A.Literal(2)), A.Literal(0)), A.ExtentRef("X")),
    ]

    @pytest.mark.parametrize("expr", CASES, ids=lambda e: type(e).__name__ + ":" + pretty(e)[:40])
    def test_roundtrip(self, expr):
        assert parse_adl(pretty(expr)) == expr

    def test_negative_literal(self):
        assert parse_adl("-5") == A.Literal(-5)

    def test_float_literal(self):
        assert parse_adl("2.5") == A.Literal(2.5)

    def test_whitespace_insensitive(self):
        text = pretty(TestStructuralRoundTrip.CASES[3])
        assert parse_adl(text.replace(" ", "  ")) == TestStructuralRoundTrip.CASES[3]


class TestNormalizations:
    def test_set_literal_becomes_constructor(self):
        expr = parse_adl(pretty(A.Literal(frozenset([1, 2]))))
        assert expr == A.SetExpr((A.Literal(1), A.Literal(2)))

    def test_empty_set_literal_becomes_constructor(self):
        assert parse_adl(pretty(A.Literal(frozenset()))) == A.SetExpr(())

    def test_seteq_becomes_scalar_equality(self):
        printed = pretty(A.SetCompare("seteq", av("x", "c"), A.ExtentRef("Y")))
        reparsed = parse_adl("σ[x : " + printed + "](X)")
        assert isinstance(reparsed.pred, A.Compare) and reparsed.pred.op == "="

    def test_empty_set_comparison_is_isempty(self):
        expr = parse_adl("σ[x : x.c = ∅](X)")
        assert isinstance(expr.pred, A.IsEmpty)

    def test_incomplete_field_list_backtracks_to_comparison(self):
        """``(X = 1 ∧ true)`` starts like a tuple constructor but is a
        parenthesized conjunction — the field attempt must backtrack."""
        expr = parse_adl(pretty(A.And(A.Compare("=", A.ExtentRef("X"), A.Literal(1)),
                                      A.Literal(True))))
        assert expr == A.And(A.Compare("=", A.ExtentRef("X"), A.Literal(1)),
                             A.Literal(True))

    def test_field_list_with_arithmetic_value_still_a_tuple(self):
        expr = parse_adl("(s = (x.a + 1), t = 2)")
        assert isinstance(expr, A.TupleExpr)
        assert [n for n, _ in expr.fields] == ["s", "t"]

    def test_single_field_tuple_remains_the_documented_reading(self):
        assert parse_adl("(pid = 3)") == A.TupleExpr((("pid", A.Literal(3)),))


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "σ[x : ](X)", "(X ⋈⟨x⟩ Y)", "π_{a", "{1, ", "X ⋈", "σ[x x.a](X)", "@Part:x"],
    )
    def test_malformed_raises(self, text):
        with pytest.raises(ADLSyntaxError):
            parse_adl(text)

    def test_trailing_garbage_raises(self):
        with pytest.raises(ADLSyntaxError):
            parse_adl("X Y")


# -- property: pretty(parse(pretty(e))) is a fixpoint ------------------------

_names = st.sampled_from(["x", "y", "z"])
_extents = st.sampled_from(["X", "Y", "SUPPLIER", "__lshard__"])
_attrs = st.sampled_from(["a", "b", "d", "parts"])
_atoms = st.one_of(
    st.integers(min_value=-50, max_value=50).map(A.Literal),
    st.sampled_from([True, False, None]).map(A.Literal),
    st.sampled_from(["red", "blue"]).map(A.Literal),
    _names.map(lambda n: A.Param(n)),
)


def _scalars(var):
    return st.one_of(
        _atoms,
        _attrs.map(lambda a, v=var: A.AttrAccess(A.Var(v), a)),
    )


def _preds(var, other="y"):
    scalar = _scalars(var)
    base = st.builds(
        A.Compare,
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        scalar,
        st.one_of(scalar, _scalars(other)),
    )
    return st.recursive(
        base,
        lambda inner: st.one_of(
            st.builds(A.And, inner, inner),
            st.builds(A.Or, inner, inner),
            st.builds(A.Not, inner),
        ),
        max_leaves=6,
    )


_sets = st.recursive(
    _extents.map(A.ExtentRef),
    lambda inner: st.one_of(
        st.builds(lambda p, s: A.Select("x", p, s), _preds("x"), inner),
        st.builds(lambda b, s: A.Map("x", b, s), _scalars("x"), inner),
        st.builds(lambda l, r, p: A.Join(l, r, "x", "y", p), inner, inner, _preds("x")),
        st.builds(lambda l, r, p: A.SemiJoin(l, r, "x", "y", p), inner, inner, _preds("x")),
        st.builds(A.Union, inner, inner),
        st.builds(A.Intersect, inner, inner),
        st.builds(A.Difference, inner, inner),
        st.builds(lambda s: A.Project(s, ("a", "b")), inner),
        st.builds(lambda s: A.Unnest(s, "parts"), inner),
        st.builds(lambda s: A.Nest(s, ("a",), "grp"), inner),
        st.builds(lambda s: A.Flatten(A.Map("x", A.Var("x"), s)), inner),
    ),
    max_leaves=8,
)


@settings(max_examples=150, deadline=None)
@given(_sets)
def test_pretty_parse_pretty_fixpoint(expr):
    text = pretty(expr)
    assert pretty(parse_adl(text)) == text
