"""The PR-6 fault matrix: {fault-free, worker crash, transient error,
hang-past-deadline} x {inline, process} x {co-partitioned, broadcast,
repartition}, every cell oracle-checked.

The invariant under test is the acceptance criterion itself: under every
injected fault plan a query returns **oracle-identical rows** — via
retry or inline degradation, never partial results, wrong results, or an
unbounded hang — and the fault shows up in the executor's counters.

Also here: the fault-plan / retry-policy / breaker units, the env-var
injection surface, the lock-split contract (refresh() mid-batch returns
immediately and the batch recovers), and the extent-identity-failure
satellite fix.
"""

import dataclasses
import threading
import time

import pytest

from repro.adl import builders as B
from repro.datamodel import VTuple
from repro.datamodel.errors import (
    QueryTimeoutError,
    ServiceError,
    TransientFaultError,
    WorkerCrashError,
)
from repro.engine.plan import ExecRuntime
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.faults import CircuitBreaker, FaultPlan, FaultSpec, RetryPolicy
from repro.faults import runtime as faults_runtime
from repro.shard import (
    Exchange,
    ParallelExecutor,
    PartitionedHashJoin,
    PartitionedScan,
)
from repro.shard.fragment import (
    LEFT_PLACEHOLDER,
    RIGHT_PLACEHOLDER,
    ShardRef,
    rebind_extent,
)
from repro.storage import Catalog, MemoryDatabase

EQ = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))
JOIN = B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ)
PARTS = 3


def _template(expr):
    return dataclasses.replace(
        expr,
        left=rebind_extent(expr.left, LEFT_PLACEHOLDER),
        right=rebind_extent(expr.right, RIGHT_PLACEHOLDER),
    )


def _gather(strategy, bindings, left, right, parts=PARTS):
    join = PartitionedHashJoin(
        "join", JOIN.lvar, JOIN.rvar, JOIN.pred, strategy, parts,
        _template(JOIN), bindings, left, right,
    )
    return Exchange("gather", join, parts)


def co_partitioned():
    """X(a) co-partitioned with Y(d): the stored-shard fast path."""
    db = MemoryDatabase({
        "X": [VTuple(a=i % 12, v=i % 5, i=i) for i in range(90)],
        "Y": [VTuple(d=i % 12, w=i) for i in range(90)],
    })
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "a", PARTS)
    catalog.partition("Y", "d", PARTS)
    bindings = [
        {LEFT_PLACEHOLDER: ShardRef("X", "a", PARTS, i),
         RIGHT_PLACEHOLDER: ShardRef("Y", "d", PARTS, i)}
        for i in range(PARTS)
    ]
    plan = _gather("partition-wise", bindings,
                   PartitionedScan("X", "a", PARTS),
                   PartitionedScan("Y", "d", PARTS))
    return db, catalog, plan


def broadcast():
    """Partitioned X, tiny un-partitioned Y read whole by each fragment."""
    db = MemoryDatabase({
        "X": [VTuple(a=i % 11, v=i % 5, i=i) for i in range(120)],
        "Y": [VTuple(d=i, w=i) for i in range(11)],
    })
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "v", PARTS)
    from repro.engine.plan import Scan

    bindings = [
        {LEFT_PLACEHOLDER: ShardRef("X", "v", PARTS, i),
         RIGHT_PLACEHOLDER: ShardRef("Y")}
        for i in range(PARTS)
    ]
    plan = _gather("broadcast", bindings,
                   PartitionedScan("X", "v", PARTS),
                   Exchange("broadcast", Scan("Y"), PARTS))
    return db, catalog, plan


def repartition():
    """No stored partitioning: every fragment shared-scan hash-filters."""
    db = MemoryDatabase({
        "X": [VTuple(a=i % 12, v=i % 5, i=i) for i in range(90)],
        "Y": [VTuple(d=i % 12, w=i) for i in range(90)],
    })
    catalog = Catalog(db)
    catalog.analyze()
    bindings = [
        {LEFT_PLACEHOLDER: ShardRef("X", "a", PARTS, i),
         RIGHT_PLACEHOLDER: ShardRef("Y", "d", PARTS, i)}
        for i in range(PARTS)
    ]
    plan = _gather(
        "repartition", bindings,
        Exchange("repartition", PartitionedScan("X", "a", PARTS), PARTS, key_attr="a"),
        Exchange("repartition", PartitionedScan("Y", "d", PARTS), PARTS, key_attr="d"),
    )
    return db, catalog, plan


STRATEGIES = {"co-partitioned": co_partitioned, "broadcast": broadcast,
              "repartition": repartition}
#: a fast retry policy so the matrix does not sleep out production backoffs
FAST = RetryPolicy(max_attempts=3, base_s=0.001, max_s=0.002)

strategy_param = pytest.mark.parametrize("strategy", sorted(STRATEGIES))
mode_param = pytest.mark.parametrize("mode", ["inline", "process"])


def _run(db, catalog, plan, parallel, deadline=None):
    stats = Stats()
    rt = ExecRuntime(db, stats, catalog=catalog, parallel=parallel, deadline=deadline)
    rows = plan.execute(rt)
    return rows, stats, rt.fault_events


class TestFaultMatrix:
    @strategy_param
    @mode_param
    def test_fault_free(self, strategy, mode):
        db, catalog, plan = STRATEGIES[strategy]()
        oracle = Executor(db, catalog=catalog).execute(JOIN)
        with ParallelExecutor(db, catalog, workers=PARTS, mode=mode,
                              retry_policy=FAST) as parallel:
            rows, _, events = _run(db, catalog, plan, parallel)
            assert rows == oracle
            assert events["retries"] == 0 and not events["degraded"]
            assert parallel.last_report["mode"] == mode or parallel.degraded
            assert parallel.retries == 0 and parallel.timeouts == 0

    @strategy_param
    @mode_param
    def test_worker_crash_recovers_with_identical_rows(self, strategy, mode):
        db, catalog, plan = STRATEGIES[strategy]()
        oracle = Executor(db, catalog=catalog).execute(JOIN)
        with ParallelExecutor(db, catalog, workers=PARTS, mode=mode,
                              fault_plan=FaultPlan.crash_once(fragment=0),
                              retry_policy=FAST) as parallel:
            rows, _, events = _run(db, catalog, plan, parallel)
            assert rows == oracle
            assert events["retries"] == 1 and events["degraded"]
            assert parallel.pool_deaths == 1
            assert parallel.last_report["mode"] == "inline"  # degraded run

    @strategy_param
    @mode_param
    def test_transient_fault_retried_in_mode(self, strategy, mode):
        db, catalog, plan = STRATEGIES[strategy]()
        oracle = Executor(db, catalog=catalog).execute(JOIN)
        with ParallelExecutor(db, catalog, workers=PARTS, mode=mode,
                              fault_plan=FaultPlan.transient(times=1, fragment=1),
                              retry_policy=FAST) as parallel:
            rows, _, events = _run(db, catalog, plan, parallel)
            assert rows == oracle
            # a transient error does not degrade: the retry stays in-mode
            assert events["retries"] == 1 and not events["degraded"]
            assert parallel.transient_faults == 1
            assert parallel.last_report["mode"] == mode or parallel.degraded

    @strategy_param
    @mode_param
    def test_hang_bounded_by_deadline_then_recovers(self, strategy, mode):
        db, catalog, plan = STRATEGIES[strategy]()
        oracle = Executor(db, catalog=catalog).execute(JOIN)
        with ParallelExecutor(db, catalog, workers=PARTS, mode=mode,
                              fault_plan=FaultPlan.hang(fragment=0, delay_s=30.0),
                              retry_policy=FAST) as parallel:
            start = time.monotonic()
            with pytest.raises(QueryTimeoutError):
                _run(db, catalog, plan, parallel,
                     deadline=time.monotonic() + 0.3)
            # a 30 s hang surfaced within the polling granularity, not 30 s
            assert time.monotonic() - start < 5.0
            assert parallel.timeouts == 1
            # the pool was reclaimed: clearing the plan, the same executor
            # serves the query again with oracle rows
            parallel.inject(None)
            rows, _, _ = _run(db, catalog, plan, parallel)
            assert rows == oracle

    def test_crash_recovery_preserves_stats_accounting(self):
        """Failed attempts contribute zero statistics: a crash-recovered
        run reports exactly the counters of a fault-free run."""
        db, catalog, plan = co_partitioned()
        baseline = Stats()
        rt = ExecRuntime(db, baseline, catalog=catalog)
        plan.execute(rt)
        with ParallelExecutor(db, catalog, workers=PARTS, mode="process",
                              fault_plan=FaultPlan.crash_once(fragment=0),
                              retry_policy=FAST) as parallel:
            _, stats, _ = _run(db, catalog, plan, parallel)
        assert stats.snapshot() == baseline.snapshot()


class TestCircuitBreaker:
    def test_lifecycle(self):
        b = CircuitBreaker(threshold=2, cooldown_s=0.05)
        assert b.state == "closed" and b.allows()
        b.record_failure()
        assert b.state == "closed"
        b.record_failure()
        assert b.state == "open" and not b.allows() and b.trips == 1
        time.sleep(0.06)
        assert b.allows() and b.state == "half-open"
        b.record_failure()  # a failed probe re-opens immediately
        assert b.state == "open" and b.trips == 2
        time.sleep(0.06)
        assert b.allows()
        b.record_success()
        assert b.state == "closed"

    def test_validation(self):
        with pytest.raises(ServiceError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ServiceError):
            CircuitBreaker(cooldown_s=-1)

    def test_executor_routes_inline_while_open_then_recovers(self):
        """Repeated pool death opens the breaker; batches route inline
        without touching the pool; after cooldown a probe closes it."""
        db, catalog, plan = co_partitioned()
        oracle = Executor(db, catalog=catalog).execute(JOIN)
        # crash every pool attempt (worker-scoped: the inline fallback is
        # clean), threshold 1: the first death opens the breaker
        crash_always = FaultPlan([FaultSpec("crash", None, (), where="worker")])
        with ParallelExecutor(
            db, catalog, workers=PARTS, mode="process",
            fault_plan=crash_always, retry_policy=FAST,
            breaker=CircuitBreaker(threshold=1, cooldown_s=0.15),
        ) as parallel:
            rows, _, events = _run(db, catalog, plan, parallel)
            assert rows == oracle and events["degraded"]
            assert parallel.breaker.state == "open"
            rebuilds = parallel.pool_rebuilds
            deaths = parallel.pool_deaths
            # while open: straight to inline — no new death, no retry
            rows, _, events = _run(db, catalog, plan, parallel)
            assert rows == oracle
            assert events["mode"] == "inline" and events["degraded"]
            assert events["retries"] == 0
            assert parallel.pool_deaths == deaths
            # cooldown elapses, the fault is cleared: the half-open probe
            # succeeds on the pool and closes the breaker
            parallel.inject(None)
            time.sleep(0.2)
            rows, _, events = _run(db, catalog, plan, parallel)
            assert rows == oracle
            assert events["mode"] == "process"
            assert parallel.breaker.state == "closed"
            assert parallel.pool_rebuilds > rebuilds


class TestLockSplit:
    def test_refresh_returns_immediately_mid_batch(self):
        """The satellite contract: lifecycle calls never block behind a
        long batch — they terminate the pool from under it, and the batch
        recovers inline with correct rows."""
        db, catalog, plan = co_partitioned()
        oracle = Executor(db, catalog=catalog).execute(JOIN)
        slow_workers = FaultPlan([FaultSpec("slow", None, (), delay_s=1.0,
                                            where="worker")])
        with ParallelExecutor(db, catalog, workers=PARTS, mode="process",
                              fault_plan=slow_workers,
                              retry_policy=FAST) as parallel:
            out = {}

            def batch():
                out["rows"], _, out["events"] = _run(db, catalog, plan, parallel)

            t = threading.Thread(target=batch)
            t.start()
            time.sleep(0.3)  # let the slow batch reach the pool
            start = time.monotonic()
            parallel.refresh()
            assert time.monotonic() - start < 0.5, "refresh blocked on the batch"
            t.join(timeout=10)
            assert not t.is_alive()
            assert out["rows"] == oracle
            # the batch observed the terminated pool and degraded inline
            assert out["events"]["degraded"]

    def test_close_mid_batch_still_returns_rows(self):
        db, catalog, plan = co_partitioned()
        oracle = Executor(db, catalog=catalog).execute(JOIN)
        slow_workers = FaultPlan([FaultSpec("slow", None, (), delay_s=1.0,
                                            where="worker")])
        parallel = ParallelExecutor(db, catalog, workers=PARTS, mode="process",
                                    fault_plan=slow_workers, retry_policy=FAST)
        out = {}
        t = threading.Thread(
            target=lambda: out.update(rows=_run(db, catalog, plan, parallel)[0])
        )
        t.start()
        time.sleep(0.3)
        start = time.monotonic()
        parallel.close()
        assert time.monotonic() - start < 0.5
        t.join(timeout=10)
        assert out["rows"] == oracle


class _FlakyExtentDB:
    """Delegates to a real store but fails ``extent()`` for chosen names
    with the given exception — the staleness probe's failure mode."""

    def __init__(self, db, broken, exc=ServiceError):
        self._db = db
        self._broken = broken
        self._exc = exc
        self.catalog = getattr(db, "catalog", None)

    def extent(self, name):
        if name in self._broken:
            raise self._exc(f"extent {name!r} unavailable")
        return self._db.extent(name)

    def deref(self, oid):
        return self._db.deref(oid)


class TestExtentIdentityFailures:
    """Satellite: the staleness probe no longer swallows exceptions."""

    def test_lookup_failure_counts_and_forces_refork(self):
        db, catalog, plan = co_partitioned()
        oracle = Executor(db, catalog=catalog).execute(JOIN)
        flaky = _FlakyExtentDB(db, {"X"})
        with ParallelExecutor(flaky, catalog, workers=PARTS, mode="process",
                              retry_policy=FAST) as parallel:
            rows, _, _ = _run(flaky, catalog, plan, parallel)
            assert rows == oracle  # co-partitioned shards come from the catalog
            first = parallel.pool_rebuilds
            assert parallel.extent_lookup_failures >= 1
            rows, _, _ = _run(flaky, catalog, plan, parallel)
            assert rows == oracle
            # the sentinel identity can never match: every run re-forks
            assert parallel.pool_rebuilds > first

    def test_non_repro_error_propagates(self):
        db, catalog, plan = co_partitioned()
        flaky = _FlakyExtentDB(db, {"X"}, exc=RuntimeError)
        with ParallelExecutor(flaky, catalog, workers=PARTS, mode="process",
                              retry_policy=FAST) as parallel:
            with pytest.raises(RuntimeError):
                _run(flaky, catalog, plan, parallel)


class TestEnvInjection:
    def test_env_plan_applies_and_recovers(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "transient-once")
        db, catalog, plan = co_partitioned()
        oracle = Executor(db, catalog=catalog).execute(JOIN)
        with ParallelExecutor(db, catalog, workers=PARTS, mode="inline",
                              retry_policy=FAST) as parallel:
            rows, _, events = _run(db, catalog, plan, parallel)
            assert rows == oracle
            assert events["retries"] == 1
            assert parallel.transient_faults >= 1

    def test_no_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert FaultPlan.from_env() is None


class TestRetryPolicy:
    def test_classification(self):
        pol = RetryPolicy()
        assert pol.classify(TransientFaultError("x")) == "transient"
        assert pol.classify(WorkerCrashError("x")) == "transient"
        assert pol.classify(BrokenPipeError()) == "transient"
        assert pol.classify(QueryTimeoutError("x")) == "timeout"
        assert pol.classify(ValueError("x")) == "fatal"
        assert pol.classify(ServiceError("x")) == "fatal"

    def test_backoff_deterministic_and_bounded(self):
        pol = RetryPolicy(base_s=0.01, multiplier=2.0, max_s=0.05, jitter=0.5)
        delays = [pol.backoff_s(a) for a in (1, 2, 3, 4, 10)]
        assert delays == [pol.backoff_s(a) for a in (1, 2, 3, 4, 10)]
        assert all(0 < d <= 0.05 for d in delays)
        nominal = [0.01, 0.02, 0.04, 0.05, 0.05]
        for d, n in zip(delays, nominal):
            assert n * 0.5 <= d <= n  # jitter shaves at most half

    def test_no_jitter_is_exact(self):
        pol = RetryPolicy(base_s=0.01, multiplier=2.0, max_s=1.0, jitter=0.0)
        assert pol.backoff_s(3) == pytest.approx(0.04)

    def test_sleep_backoff_respects_deadline(self):
        pol = RetryPolicy(base_s=0.2, jitter=0.0)
        with pytest.raises(QueryTimeoutError):
            pol.sleep_backoff(1, deadline=time.monotonic() + 0.01)

    def test_validation(self):
        with pytest.raises(ServiceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ServiceError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ServiceError):
            RetryPolicy(multiplier=0.5)


class TestFaultPlanUnits:
    def test_parse_presets(self):
        assert [s.kind for s in FaultPlan.parse("crash-once").specs] == ["crash"]
        plan = FaultPlan.parse("transient:3")
        assert plan.specs[0].attempts == (0, 1, 2)
        plan = FaultPlan.parse("crash-once+slow:0.01")
        assert [s.kind for s in plan.specs] == ["crash", "slow"]
        assert plan.specs[1].delay_s == pytest.approx(0.01)
        with pytest.raises(ServiceError):
            FaultPlan.parse("explode")

    def test_spec_scoping(self):
        spec = FaultSpec("transient", fragment=2, attempts=(0, 1), where="worker")
        assert spec.matches(2, 0, in_worker=True)
        assert not spec.matches(2, 0, in_worker=False)  # inline excluded
        assert not spec.matches(1, 0, in_worker=True)   # wrong fragment
        assert not spec.matches(2, 2, in_worker=True)   # attempt exhausted
        every = FaultSpec("slow", fragment=None, attempts=())
        assert every.matches(7, 99, in_worker=False)

    def test_spec_validation(self):
        with pytest.raises(ServiceError):
            FaultSpec("explode")
        with pytest.raises(ServiceError):
            FaultSpec("crash", where="everywhere")

    def test_pick_deterministic(self):
        plan = FaultPlan(seed=42)
        assert plan.pick(8) == plan.pick(8)
        assert 0 <= plan.pick(8, salt=3) < 8
        with pytest.raises(ServiceError):
            plan.pick(0)

    def test_slow_fault_returns_within_deadline(self):
        plan = FaultPlan.slow(delay_s=30.0)
        start = time.monotonic()
        plan.apply(index=0, attempt=0, deadline=time.monotonic() + 0.05)
        assert time.monotonic() - start < 1.0  # slow never outlives a deadline

    def test_runtime_install_clear(self):
        plan = FaultPlan.transient()
        faults_runtime.install(plan, in_worker=False)
        try:
            assert faults_runtime.current() is plan
            assert not faults_runtime.in_worker()
        finally:
            faults_runtime.clear()
        assert faults_runtime.current() is None
