"""The shredding translation (PR 9): guards and structure.

``shred_nestjoin`` must translate exactly the nestjoins whose flat
decomposition is provably lossless, and decline everything else — a
wrongly-shredded plan would be a silent correctness bug, so every guard
gets a test.
"""

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import Catalog as TypeCatalog, INT, SetType, TupleType
from repro.rewrite.common import RewriteContext
from repro.adl.typecheck import TypeChecker
from repro.shred.translate import shred_expr, shred_nestjoin

TYPES = TypeCatalog(
    {
        "X": SetType(TupleType({"a": INT, "b": INT})),
        "Y": SetType(TupleType({"d": INT, "e": INT})),
        "Z": SetType(TupleType({"a": INT, "w": INT})),  # overlaps X on "a"
        "NUMS": SetType(INT),  # not a set of tuples: no attribute shape
    }
)
CTX = RewriteContext(checker=TypeChecker(TYPES))

EQ = B.eq(B.attr(B.var("x"), "b"), B.attr(B.var("y"), "d"))


def nj(left=None, right=None, as_attr="ys", result=None):
    return B.nestjoin(
        left if left is not None else B.extent("X"),
        right if right is not None else B.extent("Y"),
        "x",
        "y",
        EQ,
        as_attr,
        result,
    )


class TestGuards:
    def test_eligible_nestjoin_translates(self):
        out = shred_nestjoin(nj(), CTX)
        assert isinstance(out, A.Stitch)
        assert out.key_attrs == ("a", "b")  # every top-level left attribute
        assert out.left == nj().left
        assert out.right == nj().right
        assert out.pred == nj().pred
        assert out.as_attr == "ys"
        assert out.result == A.Var("y")

    def test_selection_over_left_operand_is_still_eligible(self):
        filtered = B.sel("x", B.lt(B.attr(B.var("x"), "a"), B.lit(5)), B.extent("X"))
        out = shred_nestjoin(nj(left=filtered), CTX)
        assert isinstance(out, A.Stitch)
        assert out.key_attrs == ("a", "b")

    def test_declines_without_checker(self):
        assert shred_nestjoin(nj(), RewriteContext()) is None

    def test_declines_overlapping_operand_attributes(self):
        # X and Z share "a": the flat concatenation could not split back
        assert shred_nestjoin(nj(right=B.extent("Z")), CTX) is None

    def test_declines_non_tuple_operand_shape(self):
        assert shred_nestjoin(nj(right=B.extent("NUMS")), CTX) is None

    def test_declines_as_attr_colliding_with_left(self):
        assert shred_nestjoin(nj(as_attr="a"), CTX) is None

    def test_declines_correlated_nestjoin(self):
        # free variable "outer" in the predicate: operands cannot ship as
        # standalone flat subplans
        correlated = B.nestjoin(
            B.extent("X"),
            B.extent("Y"),
            "x",
            "y",
            B.conj(EQ, B.eq(B.attr(B.var("y"), "e"), B.attr(B.var("outer"), "e"))),
            "ys",
        )
        assert shred_nestjoin(correlated, CTX) is None

    def test_declines_non_nestjoin(self):
        assert shred_nestjoin(B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ), CTX) is None


class TestShredExpr:
    def test_none_when_nothing_eligible(self):
        assert shred_expr(B.extent("X"), CTX) is None
        assert shred_expr(B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ), CTX) is None

    def test_translates_nestjoin_under_other_operators(self):
        expr = A.Project(nj(), ("a", "ys"))
        out = shred_expr(expr, CTX)
        assert isinstance(out, A.Project)
        assert isinstance(out.source, A.Stitch)

    def test_original_expression_is_not_mutated(self):
        expr = nj()
        shred_expr(expr, CTX)
        assert isinstance(expr, A.NestJoin)
