"""Shredding enters through the planner's priced candidate enumeration
(PR 9): it wins only when the cost model says so.

Two provable behaviours gate this PR:

* the paper's tiny queries stay on the unshredded nestjoin plan — a
  *serial* stitch is priced as the nestjoin's join arithmetic plus the
  stitch's own strictly-positive extra work, so it can never undercut
  the fused form;
* on large co-partitioned operands with worker capacity, the shredded
  candidate prices below the serial nestjoin and is chosen, and the
  priced verdict is recorded on the trace either way.
"""

import pytest

from repro.adl import builders as B
from repro.datamodel import Catalog as TypeCatalog, INT, SetType, TupleType, VTuple
from repro.engine.cost import CostModel
from repro.rewrite.strategy import Optimizer
from repro.shred import StitchNest, shred_expr
from repro.storage import Catalog, MemoryDatabase
from repro.workload.queries import figure3_nestjoin

TYPES = TypeCatalog(
    {
        "X": SetType(TupleType({"a": INT, "b": INT})),
        "Y": SetType(TupleType({"d": INT, "e": INT})),
    }
)


def make_db(n, fan=2, spread=1):
    x = [VTuple(a=i % 7, b=i) for i in range(n)]
    y = [VTuple(d=i % (spread * n), e=i % 5) for i in range(fan * spread * n)]
    return MemoryDatabase({"X": x, "Y": y})


def analyzed(db, parts=0):
    catalog = Catalog(db)
    catalog.analyze()
    if parts:
        catalog.partition("X", "b", parts)
        catalog.partition("Y", "d", parts)
    return catalog


class TestTinyQueriesStayUnshredded:
    def test_paper_scale_serial_keeps_the_nestjoin(self):
        db = make_db(10)
        res = Optimizer(TYPES, catalog=analyzed(db)).optimize(figure3_nestjoin())
        assert res.chosen.option != "shredded"
        options = [a.option for a in res.attempts]
        assert "shredded" in options  # priced, not skipped
        assert any("shredding priced" in n for n in res.chosen.trace.notes)

    def test_serial_stitch_never_undercuts_the_fused_nestjoin(self):
        """The structural guarantee, checked across data shapes: with no
        worker capacity the shredded estimate is strictly above the
        nestjoin's."""
        q = figure3_nestjoin()
        for n, fan, spread in [(5, 1, 1), (50, 3, 2), (400, 8, 1), (200, 2, 10)]:
            db = make_db(n, fan, spread)
            model = CostModel(analyzed(db))
            shredded = shred_expr(q, Optimizer(TYPES).ctx)
            assert shredded is not None
            assert model.estimate(shredded).cost > model.estimate(q).cost, (n, fan, spread)

    def test_workers_without_partitioning_keep_the_nestjoin(self):
        # worker capacity alone is not enough: without co-partitioned
        # operands the inner join has no parallel price
        db = make_db(400, fan=4)
        res = Optimizer(TYPES, catalog=analyzed(db), parallel_workers=4).optimize(
            figure3_nestjoin()
        )
        assert res.chosen.option != "shredded"

    def test_no_catalog_means_no_shredded_candidate(self):
        res = Optimizer(TYPES).optimize(figure3_nestjoin())
        assert all(a.option != "shredded" for a in res.attempts)


class TestShreddingWinsAtScale:
    def _optimize_big(self):
        db = make_db(2000, fan=2, spread=8)  # big, mostly-dangling right side
        catalog = analyzed(db, parts=4)
        res = Optimizer(TYPES, catalog=catalog, parallel_workers=4).optimize(
            figure3_nestjoin()
        )
        return db, catalog, res

    def test_chosen_and_traced(self):
        _, _, res = self._optimize_big()
        assert res.chosen.option == "shredded"
        assert any(
            "shredding priced" in n and "shredded" in n for n in res.chosen.trace.notes
        )
        by_option = {a.option: a for a in res.attempts}
        assert by_option["shredded"].est_cost < by_option["none-needed"].est_cost

    def test_chosen_plan_contains_the_stitch(self):
        db, catalog, res = self._optimize_big()
        from repro.engine.planner import Planner

        plan = Planner(catalog, parallel_workers=4).plan(res.chosen.expr)
        assert any(isinstance(op, StitchNest) for op in plan.operators())
        assert "StitchNest" in plan.explain()

    def test_skew_degrades_the_parallel_price(self):
        """The stitch's partition-wise price uses the registered shard
        statistics' balance: the same shredded plan over the same data
        must price higher when one shard holds most of the rows."""
        from types import SimpleNamespace

        db = make_db(2000, fan=2, spread=8)
        catalog = analyzed(db, parts=4)
        shredded = shred_expr(figure3_nestjoin(), Optimizer(TYPES).ctx)
        assert shredded is not None
        even_cost = CostModel(catalog, parallel_workers=4).estimate(shredded).cost

        real = catalog.partitioning

        def skewed_partitioning(extent):
            pe = real(extent)
            total = sum(pe.cardinalities)
            rest = round(total * 0.3 / (pe.parts - 1))
            skewed = [total - rest * (pe.parts - 1)] + [rest] * (pe.parts - 1)
            return SimpleNamespace(attr=pe.attr, parts=pe.parts, cardinalities=skewed)

        catalog.partitioning = skewed_partitioning
        skew_cost = CostModel(catalog, parallel_workers=4).estimate(shredded).cost
        assert skew_cost > even_cost
