"""The ``Stitch`` AST node (PR 9): pretty/parse round-trip, typing,
reference semantics, and the flat-subplan text contract.

The stitch must be a first-class ADL citizen: its pretty form re-parses
(the same canonical-text contract the shard tier's fragments and the
plan-cache warm start rely on), the checker enforces the key/disjointness
invariants the translation promises, and the reference interpreter gives
it exactly the nestjoin's semantics.
"""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.parser import parse_adl
from repro.adl.pretty import pretty
from repro.adl.typecheck import TypeChecker
from repro.datamodel import Catalog as TypeCatalog, INT, SetType, TupleType, VTuple
from repro.datamodel.errors import TypeCheckError
from repro.engine.interpreter import Interpreter
from repro.storage import MemoryDatabase

TYPES = TypeCatalog(
    {
        "X": SetType(TupleType({"a": INT, "b": INT})),
        "Y": SetType(TupleType({"d": INT, "e": INT})),
    }
)

EQ = B.eq(B.attr(B.var("x"), "b"), B.attr(B.var("y"), "d"))


def stitch(key_attrs=("a", "b"), as_attr="ys", result=None):
    return A.Stitch(
        B.extent("X"),
        B.extent("Y"),
        "x",
        "y",
        EQ,
        as_attr,
        result if result is not None else A.Var("y"),
        tuple(key_attrs),
    )


class TestTextContract:
    def test_pretty_parse_round_trip(self):
        expr = stitch()
        assert parse_adl(pretty(expr)) == expr

    def test_round_trip_with_projected_result(self):
        expr = stitch(result=B.attr(B.var("y"), "e"))
        assert parse_adl(pretty(expr)) == expr

    def test_round_trip_under_enclosing_operators(self):
        expr = A.Project(stitch(), ("a", "ys"))
        assert parse_adl(pretty(expr)) == expr

    def test_stitch_usable_as_plain_identifier(self):
        # "stitch" is contextual, not reserved: a variable of that name
        # must still parse
        expr = parse_adl("σ[stitch : stitch.a = 1](X)")
        assert isinstance(expr, A.Select)
        assert expr.var == "stitch"


class TestTyping:
    def test_well_typed_stitch(self):
        t = TypeChecker(TYPES).check(stitch(), {})
        assert isinstance(t, SetType)
        assert set(t.element.fields) == {"a", "b", "ys"}

    def test_key_attrs_must_cover_the_left_tuple(self):
        with pytest.raises(TypeCheckError):
            TypeChecker(TYPES).check(stitch(key_attrs=("a",)), {})

    def test_as_attr_must_not_collide_with_left(self):
        with pytest.raises(TypeCheckError):
            TypeChecker(TYPES).check(stitch(as_attr="a"), {})


class TestReferenceSemantics:
    def test_interpreter_matches_nestjoin(self):
        db = MemoryDatabase(
            {
                "X": [VTuple(a=i % 3, b=i % 4) for i in range(12)],
                "Y": [VTuple(d=i % 5, e=i) for i in range(15)],
            }
        )
        nestjoin = B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", EQ, "ys")
        assert Interpreter(db).eval(stitch()) == Interpreter(db).eval(nestjoin)

    def test_dangling_left_tuples_keep_empty_sets(self):
        db = MemoryDatabase(
            {
                "X": [VTuple(a=1, b=99)],  # no Y partner
                "Y": [VTuple(d=0, e=0)],
            }
        )
        rows = Interpreter(db).eval(stitch())
        assert rows == frozenset({VTuple(a=1, b=99, ys=frozenset())})
