"""Shredded-vs-nestjoin parity (PR 9): the non-negotiable oracle matrix.

Every nestjoin in the matrix is shredded into its stitch form and both
forms are executed; the shredded rows must equal the serial nestjoin
engine's AND the reference interpreter's, across {serial, parallel
inline, process pool} x {tuple, batch 1/7/256} x {pinned epoch, live}.
Work counters are checked tuple-vs-batch on the shredded plan (batch
mode must be invisible modulo its own two counters, the PR-8 contract).

The process-pool cells re-run under ``REPRO_FAULT_PLAN=crash-once`` in
CI's fault-injection job — recovery must not change a single row.
"""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import Catalog as TypeCatalog, INT, SetType, TupleType, VTuple
from repro.adl.typecheck import TypeChecker
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.rewrite.common import RewriteContext
from repro.shard import ParallelExecutor
from repro.shred import StitchNest, shred_expr
from repro.storage import Catalog, EpochView, MemoryDatabase

TYPES = TypeCatalog(
    {
        "X": SetType(TupleType({"a": INT, "b": INT})),
        "Y": SetType(TupleType({"d": INT, "e": INT})),
    }
)
CTX = RewriteContext(checker=TypeChecker(TYPES))

#: counters that only batch mode moves — everything else must match
BATCH_ONLY = ("batches_emitted", "vector_fallbacks")
BATCH_SIZES = (1, 7, 256)
PARTS = 3

XB, YD = B.attr(B.var("x"), "b"), B.attr(B.var("y"), "d")
EQ = B.eq(XB, YD)


def make_db():
    # moderate fan-out, dangling tuples on both sides, duplicate keys
    x = [VTuple(a=i % 7, b=i % 15) for i in range(60)]
    y = [VTuple(d=i % 20, e=i % 4) for i in range(80)]
    return MemoryDatabase({"X": x, "Y": y})


def _nj(pred=EQ, result=None, left=None):
    return B.nestjoin(
        left if left is not None else B.extent("X"),
        B.extent("Y"),
        "x",
        "y",
        pred,
        "ys",
        result,
    )


#: the nested-query matrix: every shape the translator accepts
MATRIX = {
    "figure3-equi": _nj(),
    "projected-result": _nj(result=B.attr(B.var("y"), "e")),
    "computed-result": _nj(result=B.add(B.attr(B.var("y"), "e"), B.attr(B.var("x"), "a"))),
    "residual-pred": _nj(pred=B.conj(EQ, B.lt(B.attr(B.var("y"), "e"), B.attr(B.var("x"), "a")))),
    "non-equi-pred": _nj(pred=B.lt(YD, XB)),
    "filtered-left": _nj(left=B.sel("x", B.lt(B.attr(B.var("x"), "a"), B.lit(5)), B.extent("X"))),
    "under-project": A.Project(_nj(), ("a", "ys")),
}


def shredded(name):
    out = shred_expr(MATRIX[name], CTX)
    assert out is not None, f"{name} must be shreddable"
    return out


def catalog_for(db, partitioned=True):
    catalog = Catalog(db)
    catalog.analyze()
    if partitioned:
        catalog.partition("X", "b", PARTS)
        catalog.partition("Y", "d", PARTS)
    return catalog


def _snap(stats):
    snap = stats.snapshot()
    for k in BATCH_ONLY:
        snap.pop(k, None)
    return snap


class TestSerialParity:
    @pytest.mark.parametrize("name", sorted(MATRIX))
    def test_shredded_equals_nestjoin_and_interpreter(self, name):
        db = make_db()
        want = Executor(db).execute(MATRIX[name])
        got = Executor(db).execute(shredded(name))
        assert got == want, name
        assert Interpreter(db).eval(MATRIX[name]) == want, name

    @pytest.mark.parametrize("name", sorted(MATRIX))
    def test_cost_based_serial_parity(self, name):
        db = make_db()
        catalog = catalog_for(db, partitioned=False)
        want = Executor(db, catalog=catalog).execute(MATRIX[name])
        assert Executor(db, catalog=catalog).execute(shredded(name)) == want

    def test_stitch_plan_node_is_used(self):
        db = make_db()
        ex = Executor(db)
        plan = ex.planner.plan(shredded("figure3-equi"))
        assert any(isinstance(op, StitchNest) for op in plan.operators())


class TestBatchParity:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("name", sorted(MATRIX))
    def test_rows_and_counters_match_tuple_mode(self, name, batch_size):
        db = make_db()
        expr = shredded(name)
        oracle_stats = Stats()
        want = Executor(db, oracle_stats).execute(expr)
        stats = Stats()
        got = Executor(db, stats, batch_size=batch_size).execute(expr)
        assert got == want, name
        assert _snap(stats) == _snap(oracle_stats), name
        assert stats.batches_emitted > 0

    def test_batch_equals_nestjoin_oracle(self):
        db = make_db()
        want = Executor(db).execute(MATRIX["figure3-equi"])
        got = Executor(db, batch_size=7).execute(shredded("figure3-equi"))
        assert got == want


class TestParallelParity:
    @pytest.mark.parametrize("name", sorted(MATRIX))
    def test_inline_pool_parity(self, name):
        db = make_db()
        catalog = catalog_for(db)
        want = Executor(db, catalog=catalog).execute(MATRIX[name])
        with ParallelExecutor(db, catalog, workers=PARTS, mode="inline") as parallel:
            got = Executor(db, catalog=catalog, parallel=parallel).execute(shredded(name))
        assert got == want, name

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_inline_pool_batched_parity(self, batch_size):
        db = make_db()
        catalog = catalog_for(db)
        want = Executor(db, catalog=catalog).execute(MATRIX["figure3-equi"])
        with ParallelExecutor(db, catalog, workers=PARTS, mode="inline") as parallel:
            got = Executor(
                db, catalog=catalog, parallel=parallel, batch_size=batch_size
            ).execute(shredded("figure3-equi"))
        assert got == want

    def test_inner_flat_join_goes_partition_wise(self):
        """The shredded inner join must be a first-class shard-tier
        citizen: on co-partitioned operands (at a scale where the cost
        model judges parallelism worthwhile) the planner builds an
        Exchange over a PartitionedHashJoin under the StitchNest."""
        from repro.shard import Exchange, PartitionedHashJoin

        db = MemoryDatabase(
            {
                "X": [VTuple(a=i % 7, b=i) for i in range(1200)],
                "Y": [VTuple(d=i % 1200, e=i % 4) for i in range(2400)],
            }
        )
        catalog = catalog_for(db)
        with ParallelExecutor(db, catalog, workers=PARTS, mode="inline") as parallel:
            ex = Executor(db, catalog=catalog, parallel=parallel)
            plan = ex.planner.plan(shredded("figure3-equi"))
            ops = list(plan.operators())
            assert any(isinstance(op, StitchNest) for op in ops)
            assert any(isinstance(op, Exchange) for op in ops)
            assert any(isinstance(op, PartitionedHashJoin) for op in ops)
            got = plan.execute(ex._runtime())
            assert parallel.last_report["fragments"] == PARTS
        assert got == Executor(db, catalog=catalog).execute(MATRIX["figure3-equi"])

    def test_process_pool_parity(self):
        """One forked-pool cell (the inline matrix carries the bulk —
        both paths run the same execute_fragment).  Under CI's
        ``REPRO_FAULT_PLAN=crash-once`` replay this cell loses a worker
        on the first attempt and must still match."""
        db = make_db()
        catalog = catalog_for(db)
        want = Executor(db, catalog=catalog).execute(MATRIX["figure3-equi"])
        with ParallelExecutor(db, catalog, workers=PARTS, mode="process") as parallel:
            got = Executor(
                db, catalog=catalog, parallel=parallel, batch_size=64
            ).execute(shredded("figure3-equi"))
        assert got == want


class TestEpochParity:
    def test_pinned_epoch_shredded_run_is_exact_under_mutation(self):
        """The stitch reads the left source twice; a pinned run must be
        immune to a mutation landing between the two reads."""
        db = make_db()
        catalog = catalog_for(db, partitioned=False)
        expr = shredded("figure3-equi")
        with db.pinned() as e:
            view = EpochView(db, e)
            want = Executor(view, catalog=catalog).execute(MATRIX["figure3-equi"])
            # mutate both operands after pinning: the pinned run must not see it
            db.insert_rows("X", [VTuple(a=99, b=i % 15) for i in range(10)])
            db.insert_rows("Y", [VTuple(d=3, e=99)])
            got = Executor(view, catalog=catalog).execute(expr)
            assert got == want
        # a live run after unpinning sees the new rows
        live = Executor(db, catalog=catalog).execute(expr)
        assert live == Executor(db, catalog=catalog).execute(MATRIX["figure3-equi"])
        assert live != want

    def test_pinned_epoch_parallel_shredded_parity(self):
        db = make_db()
        catalog = catalog_for(db)
        expr = shredded("figure3-equi")
        with db.pinned() as e:
            view = EpochView(db, e)
            want = Executor(view, catalog=catalog).execute(MATRIX["figure3-equi"])
            db.insert_rows("Y", [VTuple(d=k % 20, e=7) for k in range(12)])
            with ParallelExecutor(db, catalog, workers=PARTS, mode="inline") as parallel:
                got = Executor(view, catalog=catalog, parallel=parallel).execute(expr)
            assert got == want
