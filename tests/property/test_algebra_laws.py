"""Algebraic laws of ADL, property-tested.

These pin the equivalences the rewrite rules rely on, independently of the
rules themselves: negation duality of Table 1 operators, division as
universal quantification, distributivity facts used by conjunct peeling,
and idempotence of the optimizer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import Catalog, INT, SetType, TupleType, VTuple
from repro.engine.interpreter import Interpreter
from repro.rewrite.strategy import Optimizer
from repro.storage import MemoryDatabase

from tests.property.strategies import flat_xy_database, xy_database

MEMBER_T = TupleType({"d": INT, "e": INT})
CATALOG = Catalog(
    {
        "X": SetType(TupleType({"a": INT, "i": INT, "c": SetType(MEMBER_T)})),
        "Y": SetType(MEMBER_T),
    }
)

CORR = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))

_PAIRS = [("in", "notin"), ("subseteq", None), ("seteq", "setneq"),
          ("supseteq", None), ("subset", None), ("supset", None)]


@given(
    left=st.frozensets(st.integers(0, 3), max_size=4),
    right=st.frozensets(st.integers(0, 3), max_size=4),
)
@settings(max_examples=60, deadline=None)
def test_setcompare_negation_duality(left, right):
    """¬(a θ b) == (a θ̄ b) for complement operator pairs, and the
    interpreter's operators agree with Python's set algebra."""
    interp = Interpreter(MemoryDatabase({}))
    for op, complement in _PAIRS:
        if op in ("in", "notin"):
            continue  # membership needs an element, covered elsewhere
        value = interp.eval(A.SetCompare(op, B.lit(left), B.lit(right)))
        negated = interp.eval(A.Not(A.SetCompare(op, B.lit(left), B.lit(right))))
        assert negated == (not value)
        if complement:
            assert interp.eval(A.SetCompare(complement, B.lit(left), B.lit(right))) == (
                not value
            )


@given(db=flat_xy_database())
@settings(max_examples=40, deadline=None)
def test_division_is_universal_quantification(db):
    """X_ab ÷ π_e(Y) == {x[d] | ∀e-value of Y: (d, e) ∈ X_ab} — the
    [Codd72] connection the paper cites for universal quantifiers."""
    interp = Interpreter(db)
    dividend = B.extent("Y")  # attrs d, e
    divisor = B.project(B.extent("Y"), "e")
    via_division = interp.eval(B.division(dividend, divisor))

    y_rows = interp.eval(B.extent("Y"))
    e_values = {y["e"] for y in y_rows}
    d_values = {y["d"] for y in y_rows}
    expected = frozenset(
        VTuple(d=d)
        for d in d_values
        if all(VTuple(d=d, e=e) in y_rows for e in e_values)
    )
    assert via_division == expected


@given(db=flat_xy_database())
@settings(max_examples=40, deadline=None)
def test_selection_conjunct_peeling_law(db):
    """σ[x : p ∧ q](X) == σ[x : p](σ[x : q](X)) — what rule1-conjunct and
    select-fusion rely on."""
    interp = Interpreter(db)
    p = B.gt(B.attr(B.var("x"), "a"), 1)
    q = B.lt(B.attr(B.var("x"), "b"), 3)
    fused = B.sel("x", B.conj(p, q), B.extent("X"))
    staged = B.sel("x", p, B.sel("x", q, B.extent("X")))
    assert interp.eval(fused) == interp.eval(staged)


@given(db=xy_database())
@settings(max_examples=15, deadline=None)
def test_optimizer_is_idempotent(db):
    """Optimizing an already-optimized query changes nothing semantically
    and keeps it set-oriented."""
    query = B.sel(
        "x",
        B.subseteq(B.attr(B.var("x"), "c"), B.sel("y", CORR, B.extent("Y"))),
        B.extent("X"),
    )
    optimizer = Optimizer(CATALOG)
    once = optimizer.optimize(query)
    # re-optimization of the result must preserve both goal and semantics
    twice = optimizer.optimize(once.expr)
    interp = Interpreter(db)
    assert interp.eval(twice.expr) == interp.eval(once.expr) == interp.eval(query)
    assert twice.set_oriented or twice.option == "none-needed"


@given(db=flat_xy_database())
@settings(max_examples=40, deadline=None)
def test_semijoin_idempotence(db):
    """(X ⋉ Y) ⋉ Y == X ⋉ Y."""
    interp = Interpreter(db)
    semi = B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR)
    twice = B.semijoin(semi, B.extent("Y"), "x", "y", CORR)
    assert interp.eval(twice) == interp.eval(semi)


@given(db=flat_xy_database())
@settings(max_examples=40, deadline=None)
def test_antijoin_annihilates_semijoin(db):
    """(X ⋉ Y) ▷ Y == ∅."""
    interp = Interpreter(db)
    semi = B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR)
    anti = B.antijoin(semi, B.extent("Y"), "x", "y", CORR)
    assert interp.eval(anti) == frozenset()
