"""Hypothesis strategies for generating small complex-object databases.

The rewrite-equivalence properties need databases shaped like the paper's
Figure 2 world: a flat table ``Y(d, e)`` and a nested table ``X(a, c)``
where ``c`` is a set of ``(d, e)``-tuples (possibly empty — empty sets are
where the bugs live, so they are generated often).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.datamodel import VTuple
from repro.storage import MemoryDatabase

#: Small key domain so joins actually match.
keys = st.integers(min_value=0, max_value=4)


@st.composite
def y_rows(draw, max_size: int = 6):
    rows = draw(
        st.lists(
            st.builds(lambda d, e: VTuple(d=d, e=e), keys, keys),
            max_size=max_size,
            unique=True,
        )
    )
    return rows


@st.composite
def member_sets(draw, max_size: int = 3):
    members = draw(
        st.frozensets(st.builds(lambda d, e: VTuple(d=d, e=e), keys, keys), max_size=max_size)
    )
    return members


@st.composite
def x_rows(draw, max_size: int = 5):
    rows = []
    size = draw(st.integers(min_value=0, max_value=max_size))
    for i in range(size):
        a = draw(keys)
        c = draw(member_sets())
        rows.append(VTuple(a=a, i=i, c=c))
    return rows


@st.composite
def xy_database(draw):
    return MemoryDatabase({"X": draw(x_rows()), "Y": draw(y_rows())})


@st.composite
def flat_xy_database(draw):
    """Two flat tables with disjoint attribute names, for join properties."""
    xs = draw(
        st.lists(st.builds(lambda a, b: VTuple(a=a, b=b), keys, keys),
                 max_size=6, unique=True)
    )
    ys = draw(y_rows())
    return MemoryDatabase({"X": xs, "Y": ys})
