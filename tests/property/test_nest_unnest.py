"""Properties of nest/unnest — the paper's Section 4 caveats, verified.

"nest and unnest are each others inverse only for PNF relations ... that
have no empty set-valued attributes" [RoKS88]: we verify both the positive
direction (ν then μ over flat relations is the identity; μ then ν over
PNF-without-empties is the identity) and the *failure* cases the paper
warns about (empty sets vanish; non-PNF relations do not round-trip).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adl import builders as B
from repro.datamodel import VTuple, vset
from repro.engine.interpreter import Interpreter
from repro.storage import MemoryDatabase

from tests.property.strategies import keys, y_rows


@given(rows=y_rows())
@settings(max_examples=50, deadline=None)
def test_unnest_inverts_nest_on_flat_relations(rows):
    """μ_g(ν_{e→g}(Y)) == Y for every flat relation Y.

    Nesting a flat relation always produces PNF with no empty sets, so the
    inverse direction is unconditional.
    """
    db = MemoryDatabase({"Y": rows})
    interp = Interpreter(db)
    roundtrip = B.unnest(B.nest(B.extent("Y"), ["e"], "g"), "g")
    assert interp.eval(roundtrip) == frozenset(rows)


@given(rows=y_rows())
@settings(max_examples=50, deadline=None)
def test_nest_groups_partition_the_input(rows):
    db = MemoryDatabase({"Y": rows})
    interp = Interpreter(db)
    nested = interp.eval(B.nest(B.extent("Y"), ["e"], "g"))
    # group keys are unique and groups are non-empty
    seen_keys = [t["d"] for t in nested]
    assert len(seen_keys) == len(set(seen_keys))
    assert all(t["g"] for t in nested)
    # total member count is preserved
    assert sum(len(t["g"]) for t in nested) == len(rows)


@given(
    groups=st.dictionaries(
        keys,
        st.frozensets(st.builds(lambda e: VTuple(e=e), keys), min_size=1, max_size=3),
        min_size=0,
        max_size=4,
    )
)
@settings(max_examples=50, deadline=None)
def test_nest_inverts_unnest_on_pnf_without_empties(groups):
    """ν(μ(N)) == N when N is PNF (atomic attrs key the relation) and no
    set-valued attribute is empty — the paper's positive case."""
    rows = [VTuple(d=d, g=members) for d, members in groups.items()]
    db = MemoryDatabase({"N": rows})
    interp = Interpreter(db)
    roundtrip = B.nest(B.unnest(B.extent("N"), "g"), ["e"], "g")
    assert interp.eval(roundtrip) == frozenset(rows)


def test_empty_sets_break_the_inverse():
    """The paper's first caveat: a tuple with an empty set-valued attribute
    is dropped by μ and cannot be restored by ν."""
    rows = [VTuple(d=1, g=vset(VTuple(e=1))), VTuple(d=2, g=frozenset())]
    db = MemoryDatabase({"N": rows})
    interp = Interpreter(db)
    roundtrip = interp.eval(B.nest(B.unnest(B.extent("N"), "g"), ["e"], "g"))
    assert roundtrip != frozenset(rows)
    assert {t["d"] for t in roundtrip} == {1}  # d=2 is gone


def test_non_pnf_relations_break_the_inverse():
    """The paper's second caveat: when the atomic attributes do not key the
    relation (non-PNF), ν merges groups that μ can no longer tell apart."""
    rows = [
        VTuple(d=1, g=vset(VTuple(e=1))),
        VTuple(d=1, g=vset(VTuple(e=2))),  # same d, different group: non-PNF
    ]
    db = MemoryDatabase({"N": rows})
    interp = Interpreter(db)
    roundtrip = interp.eval(B.nest(B.unnest(B.extent("N"), "g"), ["e"], "g"))
    assert roundtrip != frozenset(rows)
    assert len(roundtrip) == 1  # merged into a single group


@given(rows=y_rows())
@settings(max_examples=30, deadline=None)
def test_unnest_cardinality(rows):
    """|μ_g(ν(Y))| == |Y| and nesting never increases cardinality."""
    db = MemoryDatabase({"Y": rows})
    interp = Interpreter(db)
    nested = interp.eval(B.nest(B.extent("Y"), ["e"], "g"))
    assert len(nested) <= max(len(rows), 1)
