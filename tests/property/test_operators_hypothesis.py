"""Property tests: physical operators vs the reference interpreter, and
algebraic laws of the join family."""

import pytest
from hypothesis import given, settings

from repro.adl import ast as A
from repro.adl import builders as B
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.engine.pnhl import pnhl_join, unnest_join_nest
from repro.engine.stats import Stats

from tests.property.strategies import flat_xy_database, xy_database

CORR = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))


class TestJoinFamilyLaws:
    @given(db=flat_xy_database())
    @settings(max_examples=40, deadline=None)
    def test_semijoin_antijoin_partition(self, db):
        """X ⋉ Y and X ▷ Y partition X, for any predicate."""
        interp = Interpreter(db)
        semi = interp.eval(B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR))
        anti = interp.eval(B.antijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR))
        assert semi | anti == interp.eval(B.extent("X"))
        assert not (semi & anti)

    @given(db=flat_xy_database())
    @settings(max_examples=40, deadline=None)
    def test_semijoin_is_projected_join(self, db):
        """⋉ = π_left(⋈) — the paper's definition of the semijoin."""
        interp = Interpreter(db)
        semi = interp.eval(B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR))
        join = interp.eval(B.join(B.extent("X"), B.extent("Y"), "x", "y", CORR))
        projected = frozenset(t.subscript(("a", "b")) for t in join)
        assert semi == projected

    @given(db=flat_xy_database())
    @settings(max_examples=40, deadline=None)
    def test_antijoin_is_left_minus_semijoin(self, db):
        """▷ = left − ⋉ — the paper's definition of the antijoin."""
        interp = Interpreter(db)
        left = interp.eval(B.extent("X"))
        semi = interp.eval(B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR))
        anti = interp.eval(B.antijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR))
        assert anti == left - semi

    @given(db=flat_xy_database())
    @settings(max_examples=40, deadline=None)
    def test_nestjoin_flattens_to_join(self, db):
        """Unnesting the nestjoin's group attribute recovers the join
        (minus dangling tuples) — Definition 1's relationship to ⋈."""
        interp = Interpreter(db)
        nj = B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", CORR, "g")
        flattened = interp.eval(B.unnest(nj, "g"))
        join = interp.eval(B.join(B.extent("X"), B.extent("Y"), "x", "y", CORR))
        assert flattened == join

    @given(db=flat_xy_database())
    @settings(max_examples=40, deadline=None)
    def test_nestjoin_preserves_left_cardinality(self, db):
        interp = Interpreter(db)
        nj = interp.eval(B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", CORR, "g"))
        assert len(nj) == len(interp.eval(B.extent("X")))

    @given(db=flat_xy_database())
    @settings(max_examples=40, deadline=None)
    def test_outerjoin_extends_join(self, db):
        interp = Interpreter(db)
        oj = interp.eval(B.outerjoin(B.extent("X"), B.extent("Y"), "x", "y", CORR,
                                     ["d", "e"]))
        join = interp.eval(B.join(B.extent("X"), B.extent("Y"), "x", "y", CORR))
        assert join <= oj
        dangling = oj - join
        assert all(t["d"] is None and t["e"] is None for t in dangling)


class TestPlannerAgreesWithInterpreter:
    @given(db=flat_xy_database())
    @settings(max_examples=30, deadline=None)
    def test_all_join_kinds(self, db):
        interp = Interpreter(db)
        executor = Executor(db)
        for expr in (
            B.join(B.extent("X"), B.extent("Y"), "x", "y", CORR),
            B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR),
            B.antijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR),
            B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", CORR, "g"),
        ):
            assert executor.execute(expr) == interp.eval(expr)

    @given(db=xy_database())
    @settings(max_examples=30, deadline=None)
    def test_membership_join(self, db):
        member = B.member(
            B.tup(d=B.attr(B.var("y"), "d"), e=B.attr(B.var("y"), "e")),
            B.attr(B.var("x"), "c"),
        )
        expr = B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", member)
        assert Executor(db).execute(expr) == Interpreter(db).eval(expr)

    @given(db=xy_database())
    @settings(max_examples=30, deadline=None)
    def test_restructuring_pipeline(self, db):
        expr = B.project(B.unnest(B.sel(
            "x", B.neg(B.is_empty(B.attr(B.var("x"), "c"))), B.extent("X")
        ), "c"), "a", "d")
        assert Executor(db).execute(expr) == Interpreter(db).eval(expr)


def _pnhl_inputs(db):
    """Rename Y's attributes so member ∘ inner concatenation cannot clash."""
    from repro.datamodel import VTuple

    outer = list(db.extent("X"))
    inner = [VTuple(d2=y["d"], e2=y["e"]) for y in db.extent("Y")]
    return outer, inner, (lambda m: m["d"]), (lambda y: y["d2"])


class TestPNHLProperties:
    @given(db=xy_database())
    @settings(max_examples=30, deadline=None)
    def test_budget_invariance(self, db):
        """PNHL output is identical for every memory budget."""
        outer, inner, member_key, inner_key = _pnhl_inputs(db)
        reference = pnhl_join(outer, "c", inner, member_key, inner_key)
        for budget in (1, 2, 3):
            assert (
                pnhl_join(outer, "c", inner, member_key, inner_key,
                          memory_budget=budget)
                == reference
            )

    @given(db=xy_database())
    @settings(max_examples=30, deadline=None)
    def test_pnhl_preserves_outer_cardinality(self, db):
        outer, inner, member_key, inner_key = _pnhl_inputs(db)
        out = pnhl_join(outer, "c", inner, member_key, inner_key)
        assert len(out) == len(outer)

    @given(db=xy_database())
    @settings(max_examples=30, deadline=None)
    def test_baseline_result_is_pnhl_restricted_to_nonempty(self, db):
        """unnest–join–nest equals PNHL minus the empty-group tuples —
        the precise statement of the paper's restructuring caveat."""
        outer, inner, member_key, inner_key = _pnhl_inputs(db)
        full = pnhl_join(outer, "c", inner, member_key, inner_key)
        base = unnest_join_nest(outer, "c", inner, member_key, inner_key)
        assert base == frozenset(t for t in full if t["c"])
