"""Property tests: every optimizer pipeline preserves semantics.

For randomly generated databases and a family of nested query templates
covering all Table 1 operators, the optimized expression must evaluate to
exactly the naive result.  This is the load-bearing correctness property of
the whole reproduction — the Complex Object bug is precisely a violation
of it, so these tests also pin the *guarded* grouping rule as safe.
"""

import pytest
from hypothesis import given, settings

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.typecheck import TypeChecker
from repro.datamodel import Catalog, INT, SetType, TupleType
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.rewrite.common import RewriteContext
from repro.rewrite.rules_grouping import grouping_outerjoin, grouping_safe
from repro.rewrite.rules_nestjoin import nestjoin_where
from repro.rewrite.strategy import Optimizer

from tests.property.strategies import xy_database

MEMBER_T = TupleType({"d": INT, "e": INT})
CATALOG = Catalog(
    {
        "X": SetType(TupleType({"a": INT, "i": INT, "c": SetType(MEMBER_T)})),
        "Y": SetType(MEMBER_T),
    }
)

X, Y, Z = B.var("x"), B.var("y"), B.var("z")
CORR = B.eq(B.attr(X, "a"), B.attr(Y, "d"))
SUB = B.sel("y", CORR, B.extent("Y"))

#: Nested query templates: name -> σ[x : P(x, Y')](X) predicate.
TEMPLATES = {
    "in": B.member(B.attr(X, "a"), B.amap("y", B.attr(Y, "e"), SUB)),
    "subset": B.subset(B.attr(X, "c"), SUB),
    "subseteq": B.subseteq(B.attr(X, "c"), SUB),
    "seteq": B.seteq(B.attr(X, "c"), SUB),
    "supseteq": B.supseteq(B.attr(X, "c"), SUB),
    "supset": B.supset(B.attr(X, "c"), SUB),
    "disjoint": B.disjoint(B.attr(X, "c"), SUB),
    "exists": B.exists("y", B.extent("Y"), CORR),
    "not-exists": B.neg(B.exists("y", B.extent("Y"), CORR)),
    "forall": B.forall("y", B.extent("Y"),
                       B.disj(B.neg(CORR), B.gt(B.attr(Y, "e"), 0))),
    "is-empty": B.is_empty(SUB),
    "count-zero": B.eq(B.count(SUB), 0),
    "count-positive": B.gt(B.count(SUB), 0),
    "mixed-conjunction": B.conj(B.gt(B.attr(X, "a"), 0),
                                B.exists("y", B.extent("Y"), CORR)),
    "attr-quantifier-with-table": B.forall(
        "z", B.attr(X, "c"),
        B.exists("y", B.extent("Y"), B.eq(B.attr(Z, "d"), B.attr(Y, "d"))),
    ),
}


def make_query(template_name: str) -> A.Expr:
    return B.sel("x", TEMPLATES[template_name], B.extent("X"))


@pytest.mark.parametrize("template", sorted(TEMPLATES))
@given(db=xy_database())
@settings(max_examples=25, deadline=None)
def test_optimizer_preserves_semantics(template, db):
    query = make_query(template)
    result = Optimizer(CATALOG).optimize(query)
    interp = Interpreter(db)
    assert interp.eval(result.expr) == interp.eval(query), result.option


@pytest.mark.parametrize("template", ["subseteq", "supseteq", "seteq", "supset"])
@given(db=xy_database())
@settings(max_examples=25, deadline=None)
def test_nestjoin_rewrite_correct_where_grouping_is_buggy(template, db):
    """The predicates with P(x, ∅) ≠ false are exactly where the nestjoin
    must save the day."""
    ctx = RewriteContext(checker=TypeChecker(CATALOG))
    query = make_query(template)
    rewritten = nestjoin_where.apply(query, ctx)
    assert rewritten is not None
    interp = Interpreter(db)
    assert interp.eval(rewritten) == interp.eval(query)


@given(db=xy_database())
@settings(max_examples=25, deadline=None)
def test_guarded_grouping_is_safe(db):
    """Whenever the Table 3 guard lets grouping fire, the result is right."""
    ctx = RewriteContext(checker=TypeChecker(CATALOG))
    interp = Interpreter(db)
    for template in ("subset", "in"):
        query = make_query(template)
        rewritten = grouping_safe.apply(query, ctx)
        if rewritten is not None:
            assert interp.eval(rewritten) == interp.eval(query), template


@pytest.mark.parametrize("template", ["subseteq", "supseteq", "seteq", "subset"])
@given(db=xy_database())
@settings(max_examples=25, deadline=None)
def test_outerjoin_repair_is_safe_for_all_predicates(template, db):
    ctx = RewriteContext(checker=TypeChecker(CATALOG))
    query = make_query(template)
    rewritten = grouping_outerjoin.apply(query, ctx)
    assert rewritten is not None
    interp = Interpreter(db)
    assert interp.eval(rewritten) == interp.eval(query)


@pytest.mark.parametrize("template", ["exists", "subseteq", "supseteq", "mixed-conjunction"])
@given(db=xy_database())
@settings(max_examples=20, deadline=None)
def test_physical_execution_agrees(template, db):
    """Planner + physical operators must agree with the interpreter on the
    optimized form."""
    query = make_query(template)
    result = Optimizer(CATALOG).optimize(query)
    assert Executor(db).execute(result.expr) == Interpreter(db).eval(query)
