"""Unit tests for the quantifier toolkit (range rules, negation, exchange)."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.compare import alpha_equal
from repro.datamodel import VTuple, vset
from repro.engine.interpreter import Interpreter
from repro.rewrite.common import RewriteContext
from repro.rewrite.rules_quantifier import (
    exchange_quantifiers,
    forall_to_not_exists,
    not_forall,
    range_flatten,
    range_map,
    range_select_into_exists,
    range_select_into_forall,
)
from repro.storage import MemoryDatabase

CTX = RewriteContext()


@pytest.fixture()
def db():
    return MemoryDatabase(
        {
            "Y": [VTuple(a=1, e=1), VTuple(a=1, e=2), VTuple(a=2, e=3)],
        }
    )


def check_equiv(before, after, db, envs):
    interp = Interpreter(db)
    for env in envs:
        assert interp.eval(before, env) == interp.eval(after, env), env


Q = B.eq(B.attr(B.var("y"), "a"), B.var("k"))  # correlated on free k
P = B.gt(B.attr(B.var("y"), "e"), B.var("t"))  # correlated on free t
ENVS = [{"k": k, "t": t} for k in (1, 2, 9) for t in (0, 1, 5)]


class TestRangeSelect:
    def test_exists_fold(self, db):
        before = B.exists("y", B.sel("y", Q, B.extent("Y")), P)
        after = range_select_into_exists.apply(before, CTX)
        assert after == B.exists("y", B.extent("Y"), A.And(Q, P))
        check_equiv(before, after, db, ENVS)

    def test_forall_fold(self, db):
        before = B.forall("y", B.sel("y", Q, B.extent("Y")), P)
        after = range_select_into_forall.apply(before, CTX)
        assert after == B.forall("y", B.extent("Y"), A.Or(A.Not(Q), P))
        check_equiv(before, after, db, ENVS)

    def test_variable_renaming_across_binders(self, db):
        # inner selection uses a different variable name
        inner = B.sel("w", B.eq(B.attr(B.var("w"), "a"), B.var("k")), B.extent("Y"))
        before = B.exists("y", inner, P)
        after = range_select_into_exists.apply(before, CTX)
        assert after is not None
        check_equiv(before, after, db, ENVS)

    def test_declines_on_capture(self):
        # the inner pred references a free 'y' that renaming would capture
        inner = B.sel("w", B.eq(B.attr(B.var("w"), "a"), B.attr(B.var("y"), "a")), B.extent("Y"))
        before = B.exists("y", inner, B.lit(True))
        assert range_select_into_exists.apply(before, CTX) is None


class TestRangeMapAndFlatten:
    def test_map_fold(self, db):
        mapped = B.amap("w", B.attr(B.var("w"), "e"), B.extent("Y"))
        before = B.exists("v", mapped, B.gt(B.var("v"), B.var("t")))
        after = range_map.apply(before, CTX)
        assert after is not None
        assert isinstance(after, A.Exists) and isinstance(after.source, A.ExtentRef)
        check_equiv(before, after, db, ENVS)

    def test_map_fold_forall(self, db):
        mapped = B.amap("w", B.attr(B.var("w"), "e"), B.extent("Y"))
        before = B.forall("v", mapped, B.gt(B.var("v"), B.var("t")))
        after = range_map.apply(before, CTX)
        check_equiv(before, after, db, ENVS)

    def test_flatten_fold(self):
        db = MemoryDatabase({"X": [VTuple(c=vset(1, 2)), VTuple(c=vset(3))]})
        flat = B.flatten(B.amap("x", B.attr(B.var("x"), "c"), B.extent("X")))
        before = B.exists("v", flat, B.gt(B.var("v"), B.var("t")))
        after = range_flatten.apply(before, CTX)
        assert after is not None
        assert isinstance(after, A.Exists) and isinstance(after.pred, A.Exists)
        check_equiv(before, after, db, [{"t": 0}, {"t": 2}, {"t": 5}])

    def test_flatten_fold_forall(self):
        db = MemoryDatabase({"X": [VTuple(c=vset(1, 2)), VTuple(c=frozenset())]})
        flat = B.flatten(B.amap("x", B.attr(B.var("x"), "c"), B.extent("X")))
        before = B.forall("v", flat, B.gt(B.var("v"), B.var("t")))
        after = range_flatten.apply(before, CTX)
        check_equiv(before, after, db, [{"t": 0}, {"t": 1}])


class TestNegationRules:
    def test_forall_to_not_exists_guarded_by_extent(self, db):
        before = B.forall("y", B.extent("Y"), P)
        after = forall_to_not_exists.apply(before, CTX)
        assert after == A.Not(A.Exists("y", B.extent("Y"), A.Not(P)))
        check_equiv(before, after, db, ENVS)

    def test_forall_over_attribute_untouched(self):
        before = B.forall("m", B.attr(B.var("x"), "c"), B.lit(True))
        assert forall_to_not_exists.apply(before, CTX) is None

    def test_not_forall(self, db):
        before = A.Not(B.forall("y", B.extent("Y"), P))
        after = not_forall.apply(before, CTX)
        assert after == B.exists("y", B.extent("Y"), A.Not(P))
        check_equiv(before, after, db, ENVS)


class TestExchange:
    def attr_range(self):
        return B.attr(B.var("x"), "c")

    def test_forall_forall_exchange(self):
        inner = B.forall("y", B.extent("Y"), B.var("p"))
        before = B.forall("z", self.attr_range(), inner)
        after = exchange_quantifiers.apply(before, CTX)
        assert after == B.forall(
            "y", B.extent("Y"), B.forall("z", self.attr_range(), B.var("p"))
        )

    def test_exists_exists_exchange(self):
        inner = B.exists("y", B.extent("Y"), B.var("p"))
        before = B.exists("z", self.attr_range(), inner)
        after = exchange_quantifiers.apply(before, CTX)
        assert isinstance(after, A.Exists) and isinstance(after.source, A.ExtentRef)

    def test_mixed_quantifiers_not_exchanged(self):
        inner = B.exists("y", B.extent("Y"), B.var("p"))
        before = B.forall("z", self.attr_range(), inner)
        assert exchange_quantifiers.apply(before, CTX) is None

    def test_no_exchange_when_outer_already_extent(self):
        inner = B.forall("y", B.extent("Y"), B.var("p"))
        before = B.forall("z", B.extent("Z"), inner)
        assert exchange_quantifiers.apply(before, CTX) is None

    def test_no_exchange_when_inner_depends_on_outer(self):
        inner = B.forall("y", B.sel("w", B.eq(B.var("w"), B.var("z")), B.extent("Y")), B.var("p"))
        before = B.forall("z", self.attr_range(), inner)
        assert exchange_quantifiers.apply(before, CTX) is None

    def test_exchange_preserves_semantics(self):
        db = MemoryDatabase({"Y": [VTuple(a=1), VTuple(a=2)]})
        x_values = [
            VTuple(c=vset(1, 2)),
            VTuple(c=frozenset()),
            VTuple(c=vset(3)),
        ]
        inner = B.forall("y", B.extent("Y"),
                         B.neq(B.attr(B.var("y"), "a"), B.var("z")))
        before = B.forall("z", B.attr(B.var("x"), "c"), inner)
        after = exchange_quantifiers.apply(before, CTX)
        interp = Interpreter(db)
        for x in x_values:
            assert interp.eval(before, {"x": x}) == interp.eval(after, {"x": x})

    def test_exchange_terminates(self):
        # firing once disables the guard: no infinite ping-pong
        inner = B.forall("y", B.extent("Y"), B.var("p"))
        before = B.forall("z", self.attr_range(), inner)
        once = exchange_quantifiers.apply(before, CTX)
        assert exchange_quantifiers.apply(once, CTX) is None
