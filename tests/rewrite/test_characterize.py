"""Tests for the nested-query characterization (future-work item 1).

The verdict must both match the paper's discussion per query shape and
*predict* what the optimizer does: RELATIONAL queries end in relational
join operators, GROUPING_* queries end in a nestjoin (or safe grouping),
and the unsafe class is exactly where raw grouping produces wrong answers.
"""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.typecheck import TypeChecker
from repro.engine.interpreter import Interpreter
from repro.rewrite.analysis import TriBool
from repro.rewrite.characterize import (
    Characterization,
    NestingClass,
    characterize_select,
)
from repro.rewrite.common import RewriteContext
from repro.rewrite.rules_grouping import unnest_by_grouping
from repro.rewrite.strategy import Optimizer
from repro.workload.paper_db import figure2_catalog, figure2_database
from repro.workload.queries import figure1_query, figure2_variant_supseteq

X, Y = B.var("x"), B.var("y")
CORR = B.eq(B.attr(X, "a"), B.attr(Y, "d"))
SUB = B.sel("y", CORR, B.extent("Y"))


def q(pred):
    return B.sel("x", pred, B.extent("X"))


class TestVerdicts:
    def test_flat_queries(self):
        verdict = characterize_select(q(B.gt(B.attr(X, "a"), 1)))
        assert verdict.verdict is NestingClass.FLAT

    def test_attribute_nesting_is_flat(self):
        pred = B.exists("m", B.attr(X, "c"), B.eq(B.attr(B.var("m"), "d"), 1))
        assert characterize_select(q(pred)).verdict is NestingClass.FLAT

    def test_non_select_is_flat(self):
        assert characterize_select(B.extent("X")).verdict is NestingClass.FLAT

    def test_uncorrelated_block(self):
        sub = B.sel("y", B.gt(B.attr(Y, "e"), 1), B.extent("Y"))
        pred = B.subseteq(B.attr(X, "c"), sub)
        out = characterize_select(q(pred))
        assert out.verdict is NestingClass.UNCORRELATED

    def test_bare_quantifier_is_relational(self):
        out = characterize_select(q(B.exists("y", B.extent("Y"), CORR)))
        assert out.verdict is NestingClass.RELATIONAL

    def test_membership_against_block_is_relational(self):
        pred = B.member(B.attr(X, "m"), SUB)
        out = characterize_select(q(pred))
        assert out.verdict is NestingClass.RELATIONAL

    def test_count_zero_is_relational(self):
        out = characterize_select(q(B.eq(B.count(SUB), 0)))
        assert out.verdict is NestingClass.RELATIONAL

    def test_isempty_is_relational(self):
        out = characterize_select(q(B.is_empty(SUB)))
        assert out.verdict is NestingClass.RELATIONAL

    def test_subset_is_grouping_safe(self):
        out = characterize_select(q(B.subset(B.attr(X, "c"), SUB)))
        assert out.verdict is NestingClass.GROUPING_SAFE
        assert out.empty_value is TriBool.FALSE
        assert out.requires_grouping()
        assert not out.requires_dangling_preservation()

    def test_subseteq_is_grouping_unsafe(self):
        out = characterize_select(q(B.subseteq(B.attr(X, "c"), SUB)))
        assert out.verdict is NestingClass.GROUPING_UNSAFE
        assert out.empty_value is TriBool.UNKNOWN
        assert out.requires_dangling_preservation()

    def test_supseteq_is_relational(self):
        """Table 1's remark: expanding ⊇ leads to a single (negated)
        existential prefix — quantifier unnesting applies, no grouping."""
        out = characterize_select(q(B.supseteq(B.attr(X, "c"), SUB)))
        assert out.verdict is NestingClass.RELATIONAL

    def test_block_subseteq_attr_is_relational(self):
        """Rewriting Example 2's shape: Y' ⊆ x.c quantifies over Y'."""
        out = characterize_select(q(B.subseteq(SUB, B.attr(X, "c"))))
        assert out.verdict is NestingClass.RELATIONAL

    def test_disjoint_is_relational(self):
        out = characterize_select(q(B.disjoint(B.attr(X, "c"), SUB)))
        assert out.verdict is NestingClass.RELATIONAL

    def test_aggregate_comparison_is_grouping(self):
        # count(Y') = x.k : grouping needed, run-time dependent on ∅
        pred = B.eq(B.count(SUB), B.attr(X, "a"))
        out = characterize_select(q(pred))
        assert out.verdict is NestingClass.GROUPING_UNSAFE


class TestVerdictsPredictOptimizer:
    """The characterization must agree with the strategy's behaviour."""

    CASES = [
        (q(B.exists("y", B.extent("Y"), CORR)), NestingClass.RELATIONAL, "relational"),
        (q(B.member(B.attr(X, "m"), SUB)), NestingClass.RELATIONAL, "relational"),
        (q(B.eq(B.count(SUB), 0)), NestingClass.RELATIONAL, "relational"),
        (q(B.subset(B.attr(X, "c"), SUB)), NestingClass.GROUPING_SAFE, "grouping"),
        (figure1_query(), NestingClass.GROUPING_UNSAFE, "nestjoin"),
        (figure2_variant_supseteq(), NestingClass.RELATIONAL, "relational"),
    ]

    @pytest.mark.parametrize("query,expected_class,expected_option",
                             CASES, ids=[str(i) for i in range(len(CASES))])
    def test_prediction(self, query, expected_class, expected_option):
        out = characterize_select(query)
        assert out.verdict is expected_class
        result = Optimizer(figure2_catalog()).optimize(query)
        assert result.option == expected_option

    def test_unsafe_class_is_where_grouping_actually_breaks(self):
        """For grouping-classified queries: GROUPING_UNSAFE ⟺ raw
        grouping gives a wrong answer on the Figure 2 instance."""
        ctx = RewriteContext(checker=TypeChecker(figure2_catalog()))
        db = figure2_database()
        interp = Interpreter(db)
        for pred, expect_broken in [
            (B.subset(B.attr(X, "c"), B.sel("y", CORR, B.extent("Y"))), False),
            (B.subseteq(B.attr(X, "c"), B.sel("y", CORR, B.extent("Y"))), True),
        ]:
            query = q(pred)
            out = characterize_select(query)
            assert out.requires_grouping()
            rewritten = unnest_by_grouping(query, ctx)
            broken = interp.eval(rewritten) != interp.eval(query)
            assert broken == expect_broken
            assert out.requires_dangling_preservation() == expect_broken

    def test_relational_verdict_routes_around_broken_grouping(self):
        """⊇ would break under grouping, but the characterization sends it
        down the quantifier path — where the optimizer indeed produces a
        correct antijoin."""
        ctx = RewriteContext(checker=TypeChecker(figure2_catalog()))
        db = figure2_database()
        interp = Interpreter(db)
        query = figure2_variant_supseteq()
        assert characterize_select(query).verdict is NestingClass.RELATIONAL
        # grouping would be wrong...
        buggy = unnest_by_grouping(query, ctx)
        assert interp.eval(buggy) != interp.eval(query)
        # ...but the optimizer's relational plan is right
        result = Optimizer(figure2_catalog()).optimize(query)
        assert result.option == "relational"
        assert interp.eval(result.expr) == interp.eval(query)
