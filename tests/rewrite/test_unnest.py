"""Unit tests for the attribute-unnesting option (Example Query 4)."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.typecheck import TypeChecker
from repro.engine.interpreter import Interpreter
from repro.rewrite.common import RewriteContext
from repro.rewrite.rules_unnest import unnest_attribute
from repro.workload.paper_db import section4_catalog, section4_database
from repro.workload.queries import example_query_4


@pytest.fixture()
def ctx():
    return RewriteContext(checker=TypeChecker(section4_catalog()))


@pytest.fixture()
def db():
    return section4_database(dangling_refs=2)


class TestExampleQuery4:
    def test_fires_and_preserves_semantics(self, ctx, db):
        query = example_query_4()
        rewritten = unnest_attribute.apply(query, ctx)
        assert rewritten is not None
        assert isinstance(rewritten, A.Project)
        assert isinstance(rewritten.source, A.Select)
        assert isinstance(rewritten.source.source, A.Unnest)
        interp = Interpreter(db)
        assert interp.eval(rewritten) == interp.eval(query)

    def test_finds_the_violators(self, db, ctx):
        query = example_query_4()
        out = Interpreter(db).eval(unnest_attribute.apply(query, ctx))
        # the two 'bad*' suppliers reference non-existing parts
        assert len(out) == 2

    def test_empty_parts_suppliers_correctly_excluded(self, ctx):
        """∃ over ∅ is false: supplier s4 (no parts) is not a violator, and
        dropping it via μ is exactly right (the paper's justification)."""
        db = section4_database(dangling_refs=0)
        query = example_query_4()
        rewritten = unnest_attribute.apply(query, ctx)
        assert Interpreter(db).eval(rewritten) == frozenset()


class TestGuards:
    def make_query(self, project_attrs=("eid",), quantified_attr="parts",
                   inner_pred=None):
        s, z = B.var("s"), B.var("z")
        pred = inner_pred if inner_pred is not None else B.eq(
            B.attr(z, "pid"), B.attr(z, "pid")
        )
        return B.project(
            B.sel("s", B.exists("z", B.attr(s, quantified_attr), pred), B.extent("SUPPLIER")),
            *project_attrs,
        )

    def test_requires_projection_dropping_the_attribute(self, ctx):
        """If the result still needs the set-valued attribute, re-nesting
        would be required: the rule must decline (Section 4)."""
        s, z, p = B.var("s"), B.var("z"), B.var("p")
        pred = B.exists("z", B.attr(s, "parts"),
                        B.neg(B.exists("p", B.extent("PART"),
                                       B.eq(z, B.subscript(p, "pid")))))
        query = B.project(B.sel("s", pred, B.extent("SUPPLIER")), "eid", "parts")
        assert unnest_attribute.apply(query, ctx) is None

    def test_requires_exists_not_forall(self, ctx):
        """∀ over an empty set is true — dropping empty-set tuples via μ
        would be wrong, so the rule only matches ∃."""
        s, z = B.var("s"), B.var("z")
        query = B.project(
            B.sel("s", B.forall("z", B.attr(s, "parts"), B.lit(True)), B.extent("SUPPLIER")),
            "eid",
        )
        assert unnest_attribute.apply(query, ctx) is None

    def test_declines_whole_tuple_use_of_outer_var(self, ctx):
        s, z = B.var("s"), B.var("z")
        # predicate uses s as a whole tuple: not expressible after μ
        pred = B.eq(B.var("s"), B.var("s"))
        query = B.project(
            B.sel("s", B.exists("z", B.attr(s, "parts"), pred), B.extent("SUPPLIER")),
            "eid",
        )
        assert unnest_attribute.apply(query, ctx) is None

    def test_declines_use_of_flattened_attribute(self, ctx):
        s, z = B.var("s"), B.var("z")
        # predicate mentions s.parts itself, which μ removes
        pred = B.member(B.var("z"), B.attr(s, "parts"))
        query = B.project(
            B.sel("s", B.exists("z", B.attr(s, "parts"), pred), B.extent("SUPPLIER")),
            "eid",
        )
        assert unnest_attribute.apply(query, ctx) is None

    def test_declines_without_schema(self):
        assert unnest_attribute.apply(example_query_4(), RewriteContext()) is None

    def test_declines_atomic_member_sets(self, ctx):
        """μ needs tuple-valued members: a set of oids cannot be unnested."""
        from repro.datamodel import Catalog, INT, OidType, SetType, TupleType

        catalog = Catalog({
            "S": SetType(TupleType({"eid": INT, "refs": SetType(OidType("Part"))}))
        })
        ctx2 = RewriteContext(checker=TypeChecker(catalog))
        s = B.var("s")
        query = B.project(
            B.sel("s", B.exists("z", B.attr(s, "refs"), B.lit(True)), B.extent("S")),
            "eid",
        )
        assert unnest_attribute.apply(query, ctx2) is None

    def test_other_attributes_of_outer_var_allowed(self, ctx, db):
        """Attribute uses s.a with a ≠ c survive the rewrite (become u.a)."""
        s, z = B.var("s"), B.var("z")
        pred = B.neq(B.attr(s, "sname"), B.lit("s1"))
        query = B.project(
            B.sel("s", B.exists("z", B.attr(s, "parts"), pred), B.extent("SUPPLIER")),
            "eid",
        )
        rewritten = unnest_attribute.apply(query, ctx)
        assert rewritten is not None
        interp = Interpreter(db)
        assert interp.eval(rewritten) == interp.eval(query)
