"""Unit tests for normalization and cleanup rules."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.compare import alpha_equal
from repro.datamodel import VTuple, vset
from repro.engine.interpreter import Interpreter
from repro.rewrite.common import RewriteContext
from repro.rewrite.engine import RewriteEngine
from repro.rewrite.rules_simplify import (
    SIMPLIFY_RULES,
    CLEANUP_RULES,
    boolean_constants,
    double_negation,
    exists_eq_to_membership,
    map_fusion,
    map_identity,
    push_negation,
    select_fusion,
    select_over_map,
    select_true,
    subscript_access,
    tuple_field_access,
)
from repro.storage import MemoryDatabase

CTX = RewriteContext()


def fire(rule, expr):
    return rule.apply(expr, CTX)


class TestBooleanRules:
    def test_double_negation(self):
        assert fire(double_negation, B.neg(B.neg(B.var("p")))) == B.var("p")
        assert fire(double_negation, B.neg(B.var("p"))) is None

    def test_constants(self):
        t, f, p = B.lit(True), B.lit(False), B.var("p")
        assert fire(boolean_constants, A.And(t, p)) == p
        assert fire(boolean_constants, A.And(p, f)) == f
        assert fire(boolean_constants, A.Or(f, p)) == p
        assert fire(boolean_constants, A.Or(p, t)) == t
        assert fire(boolean_constants, A.Not(t)) == f

    def test_push_negation_demorgan(self):
        p, q = B.var("p"), B.var("q")
        assert fire(push_negation, A.Not(A.And(p, q))) == A.Or(A.Not(p), A.Not(q))
        assert fire(push_negation, A.Not(A.Or(p, q))) == A.And(A.Not(p), A.Not(q))

    def test_push_negation_complements_comparisons(self):
        out = fire(push_negation, A.Not(B.eq(B.var("a"), B.var("b"))))
        assert out == B.neq(B.var("a"), B.var("b"))
        out = fire(push_negation, A.Not(B.lt(B.var("a"), B.var("b"))))
        assert out == B.ge(B.var("a"), B.var("b"))

    def test_push_negation_complements_setcompare(self):
        out = fire(push_negation, A.Not(B.member(B.var("a"), B.var("s"))))
        assert out == B.not_member(B.var("a"), B.var("s"))

    def test_push_negation_keeps_not_exists(self):
        # ¬∃ is the antijoin trigger: must stay intact
        expr = A.Not(B.exists("y", B.extent("Y"), B.var("p")))
        assert fire(push_negation, expr) is None

    def test_no_complement_for_subseteq(self):
        # ¬(a ⊆ b) is NOT (a ⊇ b): must not rewrite
        expr = A.Not(B.subseteq(B.var("a"), B.var("b")))
        assert fire(push_negation, expr) is None


class TestStructuralRules:
    def test_select_true(self):
        expr = B.sel("x", B.lit(True), B.extent("X"))
        assert fire(select_true, expr) == B.extent("X")

    def test_map_identity(self):
        assert fire(map_identity, B.amap("x", B.var("x"), B.extent("X"))) == B.extent("X")
        assert fire(map_identity, B.amap("x", B.var("y"), B.extent("X"))) is None

    def test_select_fusion(self):
        inner = B.sel("y", B.eq(B.attr(B.var("y"), "a"), 1), B.extent("X"))
        outer = B.sel("x", B.eq(B.attr(B.var("x"), "b"), 2), inner)
        fused = fire(select_fusion, outer)
        expected = B.sel(
            "x",
            B.conj(B.eq(B.attr(B.var("x"), "b"), 2), B.eq(B.attr(B.var("x"), "a"), 1)),
            B.extent("X"),
        )
        assert fused == expected

    def test_select_over_map(self):
        inner = B.amap("y", B.tup(k=B.attr(B.var("y"), "a")), B.extent("X"))
        outer = B.sel("x", B.eq(B.attr(B.var("x"), "k"), 1), inner)
        out = fire(select_over_map, outer)
        assert isinstance(out, A.Map)
        assert isinstance(out.source, A.Select)

    def test_map_fusion(self):
        inner = B.amap("y", B.attr(B.var("y"), "a"), B.extent("X"))
        outer = B.amap("x", B.tup(v=B.var("x")), inner)
        out = fire(map_fusion, outer)
        assert out == B.amap("y", B.tup(v=B.attr(B.var("y"), "a")), B.extent("X"))

    def test_subscript_access(self):
        expr = B.attr(B.subscript(B.var("z"), "a", "b"), "a")
        assert fire(subscript_access, expr) == B.attr(B.var("z"), "a")
        # access to an attribute outside the subscript: no rewrite
        expr = B.attr(B.subscript(B.var("z"), "a"), "c")
        assert fire(subscript_access, expr) is None

    def test_tuple_field_access(self):
        expr = B.attr(B.tup(a=1, b=2), "b")
        assert fire(tuple_field_access, expr) == A.Literal(2)


class TestExistsEqToMembership:
    def test_simple_contraction(self):
        expr = B.exists("x", B.attr(B.var("s"), "parts"), B.eq(B.var("x"), B.var("e")))
        out = fire(exists_eq_to_membership, expr)
        assert out == B.member(B.var("e"), B.attr(B.var("s"), "parts"))

    def test_contraction_with_remainder(self):
        expr = B.exists(
            "x", B.attr(B.var("s"), "parts"),
            B.conj(B.eq(B.var("x"), B.var("e")), B.gt(B.var("x"), 1)),
        )
        out = fire(exists_eq_to_membership, expr)
        assert out == A.And(
            B.member(B.var("e"), B.attr(B.var("s"), "parts")), B.gt(B.var("e"), 1)
        )

    def test_does_not_fire_on_extent_ranges(self):
        # Table 1 expansion owns that direction; no ping-pong
        expr = B.exists("y", B.extent("Y"), B.eq(B.var("y"), B.var("e")))
        assert fire(exists_eq_to_membership, expr) is None

    def test_requires_equality_on_the_bound_var(self):
        expr = B.exists("x", B.attr(B.var("s"), "c"), B.gt(B.var("x"), 1))
        assert fire(exists_eq_to_membership, expr) is None

    def test_witness_must_not_use_bound_var(self):
        expr = B.exists("x", B.attr(B.var("s"), "c"), B.eq(B.var("x"), B.attr(B.var("x"), "a")))
        assert fire(exists_eq_to_membership, expr) is None


class TestSemanticPreservation:
    """Every simplify/cleanup rule firing preserves evaluation results."""

    @pytest.fixture()
    def db(self):
        return MemoryDatabase(
            {
                "X": [VTuple(a=1, b=10, c=vset(1, 2)), VTuple(a=2, b=20, c=frozenset())],
                "Y": [VTuple(a=1), VTuple(a=3)],
            }
        )

    CASES = [
        B.sel("x", B.lit(True), B.extent("X")),
        B.amap("x", B.var("x"), B.extent("X")),
        B.sel("x", B.gt(B.attr(B.var("x"), "b"), 5),
              B.sel("y", B.lt(B.attr(B.var("y"), "a"), 2), B.extent("X"))),
        B.amap("x", B.attr(B.var("x"), "k"),
               B.amap("y", B.tup(k=B.attr(B.var("y"), "a")), B.extent("X"))),
        B.sel("x", B.neg(B.neg(B.eq(B.attr(B.var("x"), "a"), 1))), B.extent("X")),
        B.sel("x", B.neg(B.conj(B.eq(B.attr(B.var("x"), "a"), 1),
                                B.gt(B.attr(B.var("x"), "b"), 5))), B.extent("X")),
        B.sel("x", B.exists("m", B.attr(B.var("x"), "c"),
                            B.eq(B.var("m"), B.attr(B.var("x"), "a"))), B.extent("X")),
    ]

    @pytest.mark.parametrize("expr", CASES, ids=[str(i) for i in range(len(CASES))])
    def test_fixpoint_equivalence(self, db, expr):
        engine = RewriteEngine(CTX)
        interp = Interpreter(db)
        for rules in (SIMPLIFY_RULES, CLEANUP_RULES):
            out = engine.run(expr, rules)
            assert interp.eval(out) == interp.eval(expr)
