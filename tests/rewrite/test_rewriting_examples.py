"""The paper's derivations, replayed step by step.

Rewriting Examples 1–3 (Section 5.2.1), Rule 1, Rule 2, and the
example-query plans of Section 4 are golden-tested here: the optimizer must
produce the paper's target plans (up to alpha-renaming and boolean-algebra
normal form), via the rules the paper names.
"""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.compare import alpha_equal
from repro.datamodel import VTuple, vset
from repro.engine.interpreter import Interpreter
from repro.rewrite.strategy import Optimizer, optimize
from repro.storage import MemoryDatabase
from repro.workload.paper_db import section4_catalog, section4_database
from repro.workload.queries import example_query_4, example_query_5, example_query_6

Q = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "a"))


def db_for_membership():
    y_rows = [VTuple(a=1, e=1), VTuple(a=2, e=2)]
    x_rows = [VTuple(a=1, c=VTuple(a=1, e=1)), VTuple(a=2, c=VTuple(a=9, e=9))]
    return MemoryDatabase({"X": x_rows, "Y": y_rows})


class TestRewritingExample1:
    """SET MEMBERSHIP:  σ[x : x.c ∈ σ[y : q](Y)](X)  ⇒  X ⋉ Y."""

    def setup_method(self):
        self.query = B.sel(
            "x",
            B.member(B.attr(B.var("x"), "c"), B.sel("y", Q, B.extent("Y"))),
            B.extent("X"),
        )
        self.result = optimize(self.query)

    def test_becomes_semijoin(self):
        assert isinstance(self.result.expr, A.SemiJoin)

    def test_target_plan_alpha_equal(self):
        # paper: X ⋉⟨x,y : y = x.c ∧ q⟩ Y
        expected = B.semijoin(
            B.extent("X"), B.extent("Y"), "x", "y",
            B.conj(Q, B.eq(B.var("y"), B.attr(B.var("x"), "c"))),
        )
        assert alpha_equal(self.result.expr, expected)

    def test_rules_fired_in_paper_order(self):
        rules = self.result.trace.rules_fired
        expansion = rules.index("table1-expand-set-comparison")
        range_fold = rules.index("range-select-into-exists")
        unnest = rules.index("rule1-semijoin-antijoin")
        assert expansion < range_fold < unnest

    def test_semantics(self):
        db = db_for_membership()
        interp = Interpreter(db)
        assert interp.eval(self.result.expr) == interp.eval(self.query)


class TestRewritingExample2:
    """SET INCLUSION:  σ[x : σ[y : q](Y) ⊆ x.c](X)  ⇒  X ▷ Y."""

    def setup_method(self):
        self.query = B.sel(
            "x",
            B.subseteq(B.sel("y", Q, B.extent("Y")), B.attr(B.var("x"), "c")),
            B.extent("X"),
        )
        self.result = optimize(self.query)

    def test_becomes_antijoin(self):
        assert isinstance(self.result.expr, A.AntiJoin)

    def test_target_plan_alpha_equal(self):
        # paper: X ▷⟨x,y : q ∧ y ∉ x.c⟩ Y
        expected = B.antijoin(
            B.extent("X"), B.extent("Y"), "x", "y",
            B.conj(Q, B.not_member(B.var("y"), B.attr(B.var("x"), "c"))),
        )
        assert alpha_equal(self.result.expr, expected)

    def test_universal_became_negated_existential(self):
        rules = self.result.trace.rules_fired
        assert "forall-to-not-exists" in rules
        assert "rule1-semijoin-antijoin" in rules

    def test_semantics(self):
        y_rows = [VTuple(a=1, e=1), VTuple(a=2, e=2)]
        x_rows = [
            VTuple(a=1, c=vset(VTuple(a=1, e=1))),
            VTuple(a=2, c=frozenset()),
            VTuple(a=9, c=frozenset()),
        ]
        db = MemoryDatabase({"X": x_rows, "Y": y_rows})
        interp = Interpreter(db)
        assert interp.eval(self.result.expr) == interp.eval(self.query)


class TestRewritingExample3:
    """EXCHANGING QUANTIFIERS:  σ[x : ∀z ∈ x.c • z ⊇ Y'](X)  ⇒  X ▷ Y."""

    def setup_method(self):
        self.query = B.sel(
            "x",
            B.forall("z", B.attr(B.var("x"), "c"),
                     B.supseteq(B.var("z"), B.sel("y", Q, B.extent("Y")))),
            B.extent("X"),
        )
        self.result = optimize(self.query)

    def test_becomes_antijoin(self):
        assert isinstance(self.result.expr, A.AntiJoin)

    def test_target_plan_alpha_equal(self):
        # paper: X ▷⟨x,y : q ∧ ∃z ∈ x.c • y ∉ z⟩ Y
        expected = B.antijoin(
            B.extent("X"), B.extent("Y"), "x", "y",
            B.conj(
                Q,
                B.exists("z", B.attr(B.var("x"), "c"),
                         B.not_member(B.var("y"), B.var("z"))),
            ),
        )
        assert alpha_equal(self.result.expr, expected)

    def test_exchange_rule_fired(self):
        assert "exchange-quantifiers" in self.result.trace.rules_fired

    def test_semantics(self):
        y_rows = [VTuple(a=1, e=1), VTuple(a=3, e=3)]
        x_rows = [
            VTuple(a=1, c=vset(vset(VTuple(a=1, e=1)), frozenset())),
            VTuple(a=3, c=vset(vset(VTuple(a=3, e=3)))),
            VTuple(a=9, c=frozenset()),
        ]
        db = MemoryDatabase({"X": x_rows, "Y": y_rows})
        interp = Interpreter(db)
        assert interp.eval(self.result.expr) == interp.eval(self.query)


class TestSection4ExamplePlans:
    """The target plans the paper states for Example Queries 4–6."""

    def test_example_4_plan(self):
        result = Optimizer(section4_catalog()).optimize(example_query_4())
        # paper: π(μ_parts(SUPPLIER) ▷⟨...⟩ PART)
        expected = B.project(
            B.antijoin(
                B.unnest(B.extent("SUPPLIER"), "parts"),
                B.extent("PART"),
                "u", "p",
                B.eq(B.subscript(B.var("u"), "pid"), B.subscript(B.var("p"), "pid")),
            ),
            "eid",
        )
        assert alpha_equal(result.expr, expected)

    def test_example_5_plan(self):
        result = Optimizer(section4_catalog()).optimize(example_query_5())
        # paper: SUPPLIER ⋉⟨s,p : p[pid] ∈ s.parts⟩ σ[p : p.color="red"](PART)
        expected = B.semijoin(
            B.extent("SUPPLIER"),
            B.sel("p", B.eq(B.attr(B.var("p"), "color"), "red"), B.extent("PART")),
            "s", "p",
            B.member(B.subscript(B.var("p"), "pid"), B.attr(B.var("s"), "parts")),
        )
        assert alpha_equal(result.expr, expected)

    def test_example_6_plan(self):
        result = Optimizer(section4_catalog()).optimize(example_query_6())
        # paper: α[... (sname, parts_suppl = z.ys)](SUPPLIER ⊣⟨s,p : p[pid] ∈ s.parts ; p ; ys⟩ PART)
        assert isinstance(result.expr, A.Map)
        nj = result.expr.source
        assert isinstance(nj, A.NestJoin)
        assert alpha_equal(
            nj,
            B.nestjoin(
                B.extent("SUPPLIER"), B.extent("PART"), "s", "p",
                B.member(B.subscript(B.var("p"), "pid"), B.attr(B.var("s"), "parts")),
                "ys",
            ),
        )

    @pytest.mark.parametrize(
        "builder", [example_query_4, example_query_5, example_query_6]
    )
    def test_all_plans_preserve_semantics(self, builder):
        db = section4_database(dangling_refs=2)
        query = builder()
        result = Optimizer(section4_catalog()).optimize(query)
        interp = Interpreter(db)
        assert interp.eval(result.expr) == interp.eval(query)
