"""Unit tests for the nestjoin rewrites (Section 6.1)."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.typecheck import TypeChecker
from repro.datamodel import VTuple
from repro.engine.interpreter import Interpreter
from repro.rewrite.common import RewriteContext, is_set_oriented
from repro.rewrite.rules_nestjoin import nestjoin_select_clause, nestjoin_where
from repro.workload.paper_db import (
    figure2_catalog,
    figure2_database,
    figure3_database,
    figure3_tables,
    section4_catalog,
    section4_database,
)
from repro.workload.queries import (
    example_query_6,
    figure1_query,
    figure2_variant_supseteq,
    figure3_nestjoin,
)


@pytest.fixture()
def ctx():
    return RewriteContext(checker=TypeChecker(figure2_catalog()))


@pytest.fixture()
def db():
    return figure2_database()


class TestWhereClauseNestjoin:
    @pytest.mark.parametrize("query_builder", [figure1_query, figure2_variant_supseteq])
    def test_preserves_nested_semantics(self, ctx, db, query_builder):
        """Unlike grouping, the nestjoin rewrite is correct for every P —
        including the Figure 2 predicates where grouping is buggy."""
        query = query_builder()
        rewritten = nestjoin_where.apply(query, ctx)
        assert rewritten is not None
        interp = Interpreter(db)
        assert interp.eval(rewritten) == interp.eval(query)

    def test_shape_projection_select_nestjoin(self, ctx):
        rewritten = nestjoin_where.apply(figure1_query(), ctx)
        assert isinstance(rewritten, A.Project)
        assert isinstance(rewritten.source, A.Select)
        assert isinstance(rewritten.source.source, A.NestJoin)

    def test_is_set_oriented(self, ctx):
        rewritten = nestjoin_where.apply(figure1_query(), ctx)
        assert is_set_oriented(rewritten)

    def test_needs_schema(self):
        assert nestjoin_where.apply(figure1_query(), RewriteContext()) is None

    def test_uncorrelated_block_not_unnested(self, ctx):
        """Uncorrelated subqueries are constants (Section 3): leave them."""
        x, y = B.var("x"), B.var("y")
        query = B.sel(
            "x",
            B.subseteq(B.attr(x, "c"),
                       B.sel("y", B.eq(B.attr(y, "d"), 1), B.extent("Y"))),
            B.extent("X"),
        )
        assert nestjoin_where.apply(query, ctx) is None

    def test_attribute_nesting_not_unnested(self, ctx):
        """A quantifier over a set-valued attribute is not a base-table
        block: nestjoin does not apply (the paper leaves these nested)."""
        x = B.var("x")
        query = B.sel(
            "x", B.exists("m", B.attr(x, "c"), B.eq(B.attr(B.var("m"), "d"), 1)),
            B.extent("X"),
        )
        assert nestjoin_where.apply(query, ctx) is None

    def test_deeply_nested_block_found(self, ctx, db):
        """The block may sit under boolean structure and aggregates."""
        x, y = B.var("x"), B.var("y")
        sub = B.sel("y", B.eq(B.attr(x, "a"), B.attr(y, "d")), B.extent("Y"))
        query = B.sel(
            "x", B.conj(B.gt(B.count(sub), 1), B.lt(B.attr(x, "a"), 10)),
            B.extent("X"),
        )
        rewritten = nestjoin_where.apply(query, ctx)
        assert rewritten is not None
        interp = Interpreter(db)
        assert interp.eval(rewritten) == interp.eval(query)


class TestSelectClauseNestjoin:
    def test_example_query_6(self):
        """Example Query 6 rewrites to the paper's nestjoin + map."""
        ctx = RewriteContext(checker=TypeChecker(section4_catalog()))
        db = section4_database()
        query = example_query_6()
        rewritten = nestjoin_select_clause.apply(query, ctx)
        assert rewritten is not None
        assert isinstance(rewritten, A.Map)
        assert isinstance(rewritten.source, A.NestJoin)
        interp = Interpreter(db)
        assert interp.eval(rewritten) == interp.eval(query)

    def test_block_result_rides_into_nestjoin(self, ctx, db):
        """α[y : G]-blocks put G into the nestjoin's function parameter."""
        x, y = B.var("x"), B.var("y")
        sub = B.amap("y", B.attr(y, "e"),
                     B.sel("y", B.eq(B.attr(x, "a"), B.attr(y, "d")), B.extent("Y")))
        query = B.amap("x", B.tup(k=B.attr(x, "a"), es=sub), B.extent("X"))
        rewritten = nestjoin_select_clause.apply(query, ctx)
        assert rewritten is not None
        nj = rewritten.source
        assert isinstance(nj, A.NestJoin)
        assert nj.result == B.attr(B.var("y"), "e")
        interp = Interpreter(db)
        assert interp.eval(rewritten) == interp.eval(query)

    def test_dangling_tuples_keep_empty_groups(self, ctx, db):
        x, y = B.var("x"), B.var("y")
        sub = B.sel("y", B.eq(B.attr(x, "a"), B.attr(y, "d")), B.extent("Y"))
        query = B.amap("x", B.tup(k=B.attr(x, "a"), ys=sub), B.extent("X"))
        rewritten = nestjoin_select_clause.apply(query, ctx)
        out = Interpreter(db).eval(rewritten)
        by_k = {t["k"]: t["ys"] for t in out}
        assert by_k[2] == frozenset()  # (a=2) has no matches but survives


class TestFigure3:
    def test_figure3_nestjoin_output(self):
        """The Figure 3 example: equijoin on the second attribute, dangling
        (a=3, b=3) keeps an empty group."""
        db = figure3_database()
        out = Interpreter(db).eval(figure3_nestjoin())
        x_rows, y_rows = figure3_tables()
        by_ab = {(t["a"], t["b"]): t["ys"] for t in out}
        assert len(by_ab) == 3
        matches_b1 = frozenset(y for y in y_rows if y["d"] == 1)
        assert by_ab[(1, 1)] == matches_b1
        assert by_ab[(2, 1)] == matches_b1
        assert by_ab[(3, 3)] == frozenset()  # dangling: kept, empty group

    def test_figure3_left_tuples_all_survive(self):
        db = figure3_database()
        out = Interpreter(db).eval(figure3_nestjoin())
        assert len(out) == 3  # Definition 1: one output tuple per left tuple


class TestMixedWithRelational:
    def test_second_block_unnests_after_first(self, ctx, db):
        """Two correlated blocks: the where-rule fires twice (via fixpoint)."""
        from repro.rewrite.engine import RewriteEngine
        from repro.rewrite.rules_nestjoin import NESTJOIN_RULES
        from repro.rewrite.rules_simplify import CLEANUP_RULES

        x, y = B.var("x"), B.var("y")
        sub1 = B.sel("y", B.eq(B.attr(x, "a"), B.attr(y, "d")), B.extent("Y"))
        sub2 = B.sel("y", B.lt(B.attr(x, "a"), B.attr(y, "e")), B.extent("Y"))
        query = B.sel(
            "x", B.conj(B.subseteq(B.attr(x, "c"), sub1), B.is_empty(sub2)),
            B.extent("X"),
        )
        engine = RewriteEngine(ctx)
        out = engine.run(query, NESTJOIN_RULES + CLEANUP_RULES)
        assert is_set_oriented(out)
        nestjoins = [n for n in out.walk() if isinstance(n, A.NestJoin)]
        assert len(nestjoins) == 2
        interp = Interpreter(db)
        assert interp.eval(out) == interp.eval(query)
