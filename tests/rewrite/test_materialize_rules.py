"""Tests for materialize introduction (the [BlMG93] path-expression rules)."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.typecheck import TypeChecker
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.rewrite.common import RewriteContext
from repro.rewrite.engine import RewriteEngine
from repro.rewrite.rules_materialize import (
    MATERIALIZE_RULES,
    materialize_map,
    materialize_select,
)
from repro.rewrite.strategy import Optimizer
from repro.translate import compile_oosql
from repro.workload.paper_db import example_database, example_schema

D = B.var("d")


@pytest.fixture(scope="module")
def schema():
    return example_schema()


@pytest.fixture(scope="module")
def ctx(schema):
    return RewriteContext(checker=TypeChecker(schema))


@pytest.fixture()
def db():
    return example_database()


def select_query():
    # σ[d : d.supplier.sname = "s1"](DELIVERY)
    return B.sel(
        "d",
        B.eq(B.attr(D, "supplier", "sname"), "s1"),
        B.extent("DELIVERY"),
    )


def map_query():
    # α[d : (n = d.supplier.sname, t = d.date)](DELIVERY)
    return B.amap(
        "d",
        B.tup(n=B.attr(D, "supplier", "sname"), t=B.attr(D, "date")),
        B.extent("DELIVERY"),
    )


class TestSelectRule:
    def test_fires_and_shapes(self, ctx):
        out = materialize_select.apply(select_query(), ctx)
        assert isinstance(out, A.Project)
        select = out.source
        assert isinstance(select, A.Select)
        assert isinstance(select.source, A.Materialize)
        assert select.source.class_name == "Supplier"
        # the path now goes through the materialized object
        assert any(
            isinstance(n, A.AttrAccess) and n.attr == "sname"
            and isinstance(n.base, A.AttrAccess) and n.base.attr == "__supplier_obj"
            for n in select.pred.walk()
        )

    def test_projection_restores_schema(self, ctx, db):
        out = materialize_select.apply(select_query(), ctx)
        interp = Interpreter(db)
        assert interp.eval(out) == interp.eval(select_query())

    def test_requires_schema(self):
        assert materialize_select.apply(select_query(), RewriteContext()) is None

    def test_bare_reference_comparison_not_materialized(self, ctx):
        # d.supplier = d2-oid needs no object: no firing
        query = B.sel("d", B.eq(B.attr(D, "supplier"), B.attr(D, "supplier")),
                      B.extent("DELIVERY"))
        assert materialize_select.apply(query, ctx) is None

    def test_non_reference_paths_ignored(self, ctx):
        query = B.sel("d", B.eq(B.attr(D, "date"), 940101), B.extent("DELIVERY"))
        assert materialize_select.apply(query, ctx) is None


class TestMapRule:
    def test_fires_and_preserves_semantics(self, ctx, db):
        out = materialize_map.apply(map_query(), ctx)
        assert isinstance(out, A.Map)
        assert isinstance(out.source, A.Materialize)
        interp = Interpreter(db)
        assert interp.eval(out) == interp.eval(map_query())

    def test_whole_tuple_use_declines(self, ctx):
        # body returns d itself: the extra attribute would leak
        query = B.amap("d", B.tup(v=D, n=B.attr(D, "supplier", "sname")),
                       B.extent("DELIVERY"))
        assert materialize_map.apply(query, ctx) is None

    def test_shadowed_variable_untouched(self, ctx):
        # the only d.supplier.sname sits under a binder rebinding d
        inner = B.exists("d", B.extent("DELIVERY"),
                         B.eq(B.attr(D, "supplier", "sname"), "s1"))
        query = B.amap("d", B.tup(flag=inner, t=B.attr(D, "date")),
                       B.extent("DELIVERY"))
        out = materialize_map.apply(query, ctx)
        assert out is None  # nothing rewritable at this level


class TestEngineIntegration:
    def test_fixpoint_terminates_and_preserves(self, ctx, db):
        engine = RewriteEngine(ctx)
        for query in (select_query(), map_query()):
            out = engine.run(query, MATERIALIZE_RULES)
            interp = Interpreter(db)
            assert interp.eval(out) == interp.eval(query)
            assert any(isinstance(n, A.Materialize) for n in out.walk())

    def test_optimizer_flag(self, schema, db):
        adl = compile_oosql(
            'select d.date from d in DELIVERY where d.supplier.sname = "s1"',
            schema,
        )
        plain = Optimizer(schema).optimize(adl)
        assert not any(isinstance(n, A.Materialize) for n in plain.expr.walk())

        with_mat = Optimizer(schema, introduce_materialize=True).optimize(adl)
        assert any(isinstance(n, A.Materialize) for n in with_mat.expr.walk())
        interp = Interpreter(db)
        assert interp.eval(with_mat.expr) == interp.eval(adl)

    def test_planner_uses_assembly(self, schema, db):
        adl = compile_oosql(
            'select d.date from d in DELIVERY where d.supplier.sname = "s1"',
            schema,
        )
        result = Optimizer(schema, introduce_materialize=True).optimize(adl)
        plan_text = Executor(db).explain(result.expr)
        assert "Materialize(assembly)" in plan_text
        assert Executor(db).execute(result.expr) == Interpreter(db).eval(adl)
