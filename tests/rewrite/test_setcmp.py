"""Table 1 / Table 2 expansion tests: every row, checked by evaluation.

Each set comparison operator expands to a quantifier expression; the two
forms must agree on every database.  Exhaustive small-world evaluation
covers each row on all pairs of subsets of a 3-element universe —
3-set × 3-set = 256 combinations per operator.
"""

import itertools

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.engine.interpreter import Interpreter
from repro.rewrite.common import RewriteContext
from repro.rewrite.rules_setcmp import (
    SETCMP_RULES,
    count_zero,
    empty_test,
    expand_guarded,
    expand_setcompare,
)
from repro.storage import MemoryDatabase

CTX = RewriteContext()
DB = MemoryDatabase({})
INTERP = Interpreter(DB)

UNIVERSE = [1, 2, 3]
ALL_SUBSETS = [
    frozenset(combo)
    for size in range(len(UNIVERSE) + 1)
    for combo in itertools.combinations(UNIVERSE, size)
]

#: The operators of Table 1 (plus Table 2's disjoint), paired with the
#: Python ground truth.
GROUND_TRUTH = {
    "in": lambda c, y: c in y,
    "notin": lambda c, y: c not in y,
    "subset": lambda c, y: c < y,
    "subseteq": lambda c, y: c <= y,
    "seteq": lambda c, y: c == y,
    "setneq": lambda c, y: c != y,
    "supseteq": lambda c, y: c >= y,
    "supset": lambda c, y: c > y,
    "disjoint": lambda c, y: not (c & y),
}

SET_OPS = [op for op in GROUND_TRUTH if op not in ("in", "notin")]


class TestTable1Expansions:
    @pytest.mark.parametrize("op", SET_OPS)
    def test_set_against_set_exhaustive(self, op):
        for c, y in itertools.product(ALL_SUBSETS, repeat=2):
            original = A.SetCompare(op, B.lit(c), B.lit(y))
            expanded = expand_setcompare(original)
            got = INTERP.eval(expanded)
            want = GROUND_TRUTH[op](c, y)
            assert got == want, f"{op}: c={set(c)}, Y'={set(y)}: {got} != {want}"
            # the expansion must agree with the interpreter's own operator too
            assert INTERP.eval(original) == want

    @pytest.mark.parametrize("op", ["in", "notin"])
    def test_membership_exhaustive(self, op):
        for element in UNIVERSE + [99]:
            for y in ALL_SUBSETS:
                original = A.SetCompare(op, B.lit(element), B.lit(y))
                expanded = expand_setcompare(original)
                assert INTERP.eval(expanded) == GROUND_TRUTH[op](element, y)

    def test_ni_expansion(self):
        # x.c ∋ Y' ≡ ∃z ∈ x.c • z = Y'
        for inner in ALL_SUBSETS:
            c = frozenset({frozenset({1}), frozenset()})
            original = A.SetCompare("ni", B.lit(c), B.lit(inner))
            expanded = expand_setcompare(original)
            assert INTERP.eval(expanded) == (inner in c)

    def test_expansion_contains_no_setcompare_except_membership(self):
        # expansions bottom out in ∈/∉ over the set-valued side and scalar =
        expanded = expand_setcompare(B.subseteq(B.var("c"), B.var("y")))
        for node in expanded.walk():
            assert not isinstance(node, A.SetCompare) or node.op in ("in", "notin")

    def test_fresh_variables_avoid_capture(self):
        # operands already using y/z must not collide with expansion vars
        c = B.attr(B.var("z"), "c")
        y_prime = B.sel("y", B.eq(B.var("y"), B.var("z")), B.extent("Y"))
        expanded = expand_setcompare(A.SetCompare("subseteq", c, y_prime))
        from repro.adl.freevars import free_vars

        assert free_vars(expanded) == {"z"}


class TestGuards:
    def test_guard_requires_extent(self):
        # both operands extent-free: no rewrite
        expr = B.subseteq(B.attr(B.var("x"), "c"), B.attr(B.var("x"), "d"))
        assert expand_guarded.apply(expr, CTX) is None

    def test_guard_fires_with_extent_on_right(self):
        expr = B.subseteq(B.attr(B.var("x"), "c"), B.sel("y", B.lit(True), B.extent("Y")))
        assert expand_guarded.apply(expr, CTX) is not None

    def test_guard_fires_with_extent_on_left(self):
        expr = B.subseteq(B.sel("y", B.lit(True), B.extent("Y")), B.attr(B.var("x"), "c"))
        assert expand_guarded.apply(expr, CTX) is not None

    def test_membership_guard_looks_right_only(self):
        expr = B.member(B.sel("y", B.lit(True), B.extent("Y")), B.attr(B.var("x"), "c"))
        assert expand_guarded.apply(expr, CTX) is None


class TestTable2:
    def test_isempty_to_not_exists(self):
        expr = B.is_empty(B.sel("y", B.lit(True), B.extent("Y")))
        out = empty_test.apply(expr, CTX)
        assert isinstance(out, A.Not) and isinstance(out.operand, A.Exists)

    def test_seteq_empty_literal(self):
        sub = B.sel("y", B.lit(True), B.extent("Y"))
        out = empty_test.apply(A.SetCompare("seteq", sub, B.setexpr()), CTX)
        assert isinstance(out, A.Not)
        out = empty_test.apply(A.SetCompare("setneq", sub, B.setexpr()), CTX)
        assert isinstance(out, A.Exists)

    def test_empty_test_requires_extent(self):
        assert empty_test.apply(B.is_empty(B.attr(B.var("x"), "c")), CTX) is None

    def test_count_zero_variants(self):
        sub = B.sel("y", B.lit(True), B.extent("Y"))
        negatives = [
            B.eq(B.count(sub), 0),
            B.eq(B.lit(0), B.count(sub)),
            B.le(B.count(sub), 0),
            B.lt(B.count(sub), 1),
        ]
        for expr in negatives:
            out = count_zero.apply(expr, CTX)
            assert isinstance(out, A.Not), expr
        positives = [
            B.neq(B.count(sub), 0),
            B.gt(B.count(sub), 0),
            B.ge(B.count(sub), 1),
            B.lt(B.lit(0), B.count(sub)),
        ]
        for expr in positives:
            out = count_zero.apply(expr, CTX)
            assert isinstance(out, A.Exists), expr

    def test_count_other_literals_ignored(self):
        sub = B.sel("y", B.lit(True), B.extent("Y"))
        assert count_zero.apply(B.eq(B.count(sub), 5), CTX) is None

    def test_count_requires_extent(self):
        assert count_zero.apply(B.eq(B.count(B.attr(B.var("x"), "c")), 0), CTX) is None

    def test_table2_semantics_on_data(self):
        from repro.datamodel import VTuple

        db = MemoryDatabase({"Y": [VTuple(a=1)]})
        interp = Interpreter(db)
        sub_nonempty = B.sel("y", B.lit(True), B.extent("Y"))
        sub_empty = B.sel("y", B.lit(False), B.extent("Y"))
        for sub, want in ((sub_nonempty, False), (sub_empty, True)):
            expr = B.eq(B.count(sub), 0)
            out = count_zero.apply(expr, CTX)
            assert interp.eval(out) == interp.eval(expr) == want
