"""Tests for the rewrite engine framework itself (rules, fixpoint, traces)."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import RewriteError
from repro.rewrite.common import RewriteContext
from repro.rewrite.engine import RewriteEngine, Rule, rule
from repro.rewrite.trace import RewriteStep, RewriteTrace

CTX = RewriteContext()


@rule("lit-bump")
def lit_bump(expr, ctx):
    """Test rule: increment integer literals below 3."""
    if isinstance(expr, A.Literal) and isinstance(expr.value, int) \
            and not isinstance(expr.value, bool) and expr.value < 3:
        return A.Literal(expr.value + 1)
    return None


@rule("never-fires")
def never_fires(expr, ctx):
    return None


@rule("same-object")
def same_object(expr, ctx):
    """A rule that declines by returning its input unchanged — the engine
    must treat the identical object as 'no change' without paying a deep
    structural comparison."""
    if isinstance(expr, A.Literal):
        return expr
    return None


class TestRuleDecorator:
    def test_decorator_produces_rule(self):
        assert isinstance(lit_bump, Rule)
        assert lit_bump.name == "lit-bump"

    def test_apply(self):
        assert lit_bump.apply(B.lit(1), CTX) == A.Literal(2)
        assert lit_bump.apply(B.lit(5), CTX) is None


class TestApplyOnce:
    def test_fires_at_root(self):
        engine = RewriteEngine(CTX)
        out = engine.apply_once(B.lit(0), (lit_bump,))
        assert out == ("lit-bump", A.Literal(1))

    def test_fires_in_children(self):
        engine = RewriteEngine(CTX)
        expr = B.tup(a=B.lit(9), b=B.lit(1))
        name, new = engine.apply_once(expr, (lit_bump,))
        assert name == "lit-bump"
        assert new == B.tup(a=B.lit(9), b=B.lit(2))

    def test_first_rule_wins(self):
        engine = RewriteEngine(CTX)
        name, _ = engine.apply_once(B.lit(0), (never_fires, lit_bump))
        assert name == "lit-bump"

    def test_one_firing_per_pass(self):
        engine = RewriteEngine(CTX)
        expr = B.tup(a=B.lit(0), b=B.lit(0))
        _, new = engine.apply_once(expr, (lit_bump,))
        # only the first child rewritten in a single pass
        values = sorted(f.value for _, f in new.fields)
        assert values == [0, 1]

    def test_none_when_no_rule_applies(self):
        engine = RewriteEngine(CTX)
        assert engine.apply_once(B.lit(9), (lit_bump, never_fires)) is None

    def test_same_object_treated_as_no_change(self):
        # declining by returning the input object is "no change" — the
        # engine checks identity, not structural equality (rules must
        # return None or their input when they do not fire)
        engine = RewriteEngine(CTX)
        assert engine.apply_once(B.lit(9), (same_object,)) is None


class TestFixpoint:
    def test_runs_to_fixpoint(self):
        engine = RewriteEngine(CTX)
        out = engine.run(B.tup(a=B.lit(0), b=B.lit(1)), (lit_bump,))
        assert out == B.tup(a=B.lit(3), b=B.lit(3))

    def test_trace_records_every_step(self):
        engine = RewriteEngine(CTX)
        trace = RewriteTrace(B.lit(0))
        out = engine.run(B.lit(0), (lit_bump,), trace, phase="test")
        assert out == A.Literal(3)
        assert trace.rules_fired == ["lit-bump"] * 3
        assert trace.result == out
        assert all(step.phase == "test" for step in trace.steps)
        # steps chain: each after is the next before
        for first, second in zip(trace.steps, trace.steps[1:]):
            assert first.after == second.before

    def test_max_steps_guard(self):
        @rule("loop")
        def loop(expr, ctx):
            if isinstance(expr, A.Literal):
                return A.Literal(expr.value + 1)
            return None

        engine = RewriteEngine(CTX, max_steps=10)
        with pytest.raises(RewriteError, match="did not terminate"):
            engine.run(B.lit(0), (loop,))

    def test_run_phases(self):
        engine = RewriteEngine(CTX)
        trace = RewriteTrace(B.lit(0))
        out = engine.run_phases(
            B.lit(0),
            [("first", (lit_bump,)), ("second", (never_fires,))],
            trace,
        )
        assert out == A.Literal(3)
        assert {step.phase for step in trace.steps} == {"first"}


class TestTraceRendering:
    def test_render_contains_rule_names(self):
        engine = RewriteEngine(CTX)
        trace = RewriteTrace(B.lit(0))
        engine.run(B.lit(0), (lit_bump,), trace, phase="p")
        text = trace.render()
        assert "p:lit-bump" in text
        assert text.count("≡") == 3

    def test_step_render(self):
        step = RewriteStep("r", B.lit(1), B.lit(2))
        assert "≡ 2" in step.render()
        assert "[r]" in step.render()

    def test_len(self):
        trace = RewriteTrace(B.lit(0))
        assert len(trace) == 0
        trace.record("r", B.lit(0), B.lit(1))
        assert len(trace) == 1
