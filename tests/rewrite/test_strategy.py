"""Unit tests for the Section 4 strategy driver."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import VTuple, vset
from repro.engine.interpreter import Interpreter
from repro.rewrite.common import is_set_oriented, nested_extent_count
from repro.rewrite.strategy import DEFAULT_PRIORITY, Optimizer, optimize, optimize_oosql
from repro.storage import MemoryDatabase
from repro.workload.paper_db import (
    example_database,
    example_schema,
    figure2_catalog,
    figure2_database,
    section4_catalog,
    section4_database,
)
from repro.workload.queries import (
    example_query_4,
    example_query_5,
    example_query_6,
    figure1_query,
)

CORR = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))


class TestGoalPredicate:
    def test_nested_extent_count(self):
        nested = B.sel("x", B.exists("y", B.extent("Y"), CORR), B.extent("X"))
        assert nested_extent_count(nested) == 1
        assert not is_set_oriented(nested)

    def test_join_is_set_oriented(self):
        join = B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR)
        assert nested_extent_count(join) == 0
        assert is_set_oriented(join)

    def test_attribute_nesting_is_set_oriented(self):
        # iteration over set-valued attributes is fine (the paper's goal
        # concerns base tables only)
        expr = B.sel("x", B.exists("m", B.attr(B.var("x"), "c"), B.lit(True)),
                     B.extent("X"))
        assert is_set_oriented(expr)

    def test_nestjoin_result_counts(self):
        expr = B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", B.lit(True), "g",
                          result=B.sel("w", B.lit(True), B.extent("Z")))
        assert nested_extent_count(expr) == 1


class TestOptionSelection:
    def test_relational_first(self):
        """A query Rule 1 can handle must use the relational option."""
        query = B.sel("x", B.exists("y", B.extent("Y"), CORR), B.extent("X"))
        result = optimize(query)
        assert result.option == "relational"
        assert isinstance(result.expr, A.SemiJoin)

    def test_unnest_option_for_example_4(self):
        result = Optimizer(section4_catalog()).optimize(example_query_4())
        assert result.option == "unnest"
        assert any(isinstance(n, A.Unnest) for n in result.expr.walk())
        assert any(isinstance(n, A.AntiJoin) for n in result.expr.walk())

    def test_nestjoin_option_for_figure1(self):
        result = Optimizer(figure2_catalog()).optimize(figure1_query())
        assert result.option == "nestjoin"
        assert any(isinstance(n, A.NestJoin) for n in result.expr.walk())

    def test_nestjoin_option_for_example_6(self):
        result = Optimizer(section4_catalog()).optimize(example_query_6())
        assert result.option == "nestjoin"

    def test_already_set_oriented_untouched(self):
        query = B.sel("x", B.gt(B.attr(B.var("x"), "a"), 1), B.extent("X"))
        result = optimize(query)
        assert result.option == "none-needed"
        assert result.expr == query

    def test_failed_attempts_recorded(self):
        result = Optimizer(figure2_catalog()).optimize(figure1_query())
        options = [a.option for a in result.attempts]
        assert "relational" in options  # tried and failed before nestjoin
        assert options.index("relational") < options.index("nestjoin")

    def test_nested_loop_fallback(self):
        """A correlated block whose operand schema is unknown (no checker)
        and that no relational rule can reach stays nested-loop."""
        sub = B.sel("y", CORR, B.extent("Y"))
        query = B.sel("x", B.ni(B.attr(B.var("x"), "c"), sub), B.extent("X"))
        result = optimize(query)  # no schema: nestjoin/grouping decline
        assert result.option.startswith("nested-loop")
        assert not result.set_oriented


class TestPriorityPermutation:
    """The ablation hook: permuting priorities changes the chosen plan."""

    def test_nestjoin_first_takes_figure1(self):
        opt = Optimizer(figure2_catalog(), priority=("nestjoin", "relational"))
        result = opt.optimize(figure1_query())
        assert result.option == "nestjoin"

    def test_nestjoin_first_takes_semijoin_queries_too(self):
        """With nestjoin prioritized, even Rule-1 queries use it — showing
        why the paper puts relational joins first."""
        query = B.sel(
            "x",
            B.subseteq(B.attr(B.var("x"), "c"), B.sel("y", CORR, B.extent("Y"))),
            B.extent("X"),
        )
        relational_first = Optimizer(figure2_catalog()).optimize(query)
        nestjoin_first = Optimizer(
            figure2_catalog(), priority=("nestjoin", "relational")
        ).optimize(query)
        assert any(isinstance(n, A.NestJoin) for n in nestjoin_first.expr.walk())
        assert nestjoin_first.option == "nestjoin"

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError):
            Optimizer(priority=("magic",))


class TestEndToEndSemantics:
    """Optimized plans must equal naive evaluation on real data."""

    @pytest.mark.parametrize("builder", [example_query_4, example_query_5, example_query_6])
    def test_section4_examples(self, builder):
        db = section4_database()
        query = builder()
        result = Optimizer(section4_catalog()).optimize(query)
        assert result.set_oriented
        interp = Interpreter(db)
        assert interp.eval(result.expr) == interp.eval(query)

    def test_figure1(self):
        db = figure2_database()
        query = figure1_query()
        result = Optimizer(figure2_catalog()).optimize(query)
        interp = Interpreter(db)
        assert interp.eval(result.expr) == interp.eval(query)

    def test_oosql_text_end_to_end(self):
        schema = example_schema()
        db = example_database()
        result = optimize_oosql(
            "select s.sname from s in SUPPLIER "
            "where exists p in PART : p.oid in s.parts_supplied "
            'and p.color = "red"',
            schema,
        )
        assert result.set_oriented
        from repro.translate import compile_oosql

        original = compile_oosql(
            "select s.sname from s in SUPPLIER "
            "where exists p in PART : p.oid in s.parts_supplied "
            'and p.color = "red"',
            schema,
        )
        interp = Interpreter(db)
        assert interp.eval(result.expr) == interp.eval(original) == frozenset({"s1", "s2", "s5"})

    def test_trace_is_replayable(self):
        """Every trace step's after-expression evaluates identically."""
        db = figure2_database()
        query = figure1_query()
        result = Optimizer(figure2_catalog()).optimize(query)
        interp = Interpreter(db)
        want = interp.eval(query)
        for step in result.trace.steps:
            assert interp.eval(step.after) == want, step.rule


class TestCostRankedSelection:
    """With a storage catalog, every option pipeline runs and the cheapest
    estimated candidate wins (paper priority order as the tie-break); the
    no-catalog fallback keeps first-success behavior unchanged."""

    @pytest.fixture()
    def catalog(self):
        from repro.storage import Catalog

        db = section4_database()
        catalog = Catalog(db)
        catalog.analyze()
        return db, catalog

    def test_all_options_attempted(self, catalog):
        db, cat = catalog
        result = Optimizer(section4_catalog(), catalog=cat).optimize(example_query_5())
        assert len(result.attempts) == len(DEFAULT_PRIORITY)

    def test_without_catalog_first_success_returns_early(self):
        result = Optimizer(section4_catalog()).optimize(example_query_5())
        assert len(result.attempts) == 1
        assert result.attempts[0].est_cost is None

    def test_set_oriented_candidates_are_costed(self, catalog):
        db, cat = catalog
        result = Optimizer(section4_catalog(), catalog=cat).optimize(example_query_5())
        for attempt in result.attempts:
            if attempt.set_oriented:
                assert attempt.est_cost is not None
            else:
                assert attempt.est_cost is None
        assert result.chosen.est_cost is not None

    def test_chosen_is_cheapest_with_priority_tiebreak(self, catalog):
        db, cat = catalog
        result = Optimizer(section4_catalog(), catalog=cat).optimize(example_query_5())
        costed = [a for a in result.attempts if a.est_cost is not None]
        cheapest = min(a.est_cost for a in costed)
        assert result.chosen.est_cost == cheapest
        # tie-break: among equal costs the paper's order wins
        tied = [a.option for a in costed if a.est_cost == cheapest]
        assert result.option == tied[0]

    def test_trace_records_candidate_costs(self, catalog):
        db, cat = catalog
        result = Optimizer(section4_catalog(), catalog=cat).optimize(example_query_5())
        notes = "\n".join(result.chosen.trace.notes)
        assert "cost-ranked candidates:" in notes
        assert "estimated cost" in notes
        assert "cost-ranked candidates" in result.render() or True  # render works
        assert set(result.candidate_costs) == set(DEFAULT_PRIORITY)

    def test_cost_ranked_choice_is_semantics_preserving(self, catalog):
        db, cat = catalog
        for query in (example_query_4(), example_query_5()):
            result = Optimizer(section4_catalog(), catalog=cat).optimize(query)
            expected = Interpreter(db).eval(query)
            assert Interpreter(db).eval(result.expr) == expected

    def test_catalog_with_no_successes_falls_back(self):
        from repro.storage import Catalog

        # the same option-defeating query as test_nested_loop_fallback:
        # a catalog must not change the nested-loop outcome, only ranking
        db = MemoryDatabase({"X": [], "Y": []})
        cat = Catalog(db)
        cat.analyze()
        sub = B.sel("y", CORR, B.extent("Y"))
        query = B.sel("x", B.ni(B.attr(B.var("x"), "c"), sub), B.extent("X"))
        result = Optimizer(catalog=cat).optimize(query)
        assert result.option.startswith("nested-loop")
        assert not result.set_oriented
