"""Unnesting by grouping: the Complex Object bug (Figure 2) and its repairs.

These tests reproduce Section 5.2.2 exactly: the [GaWo87] grouping rewrite
produces a *wrong* answer on the Figure 2 instance (the dangling tuple
``(a=2, c=∅)`` is lost in the join), the Table 3 guard refuses to fire on
such predicates, and both repairs — outerjoin and nestjoin — restore the
nested semantics.
"""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.typecheck import TypeChecker
from repro.datamodel import VTuple
from repro.engine.interpreter import Interpreter
from repro.rewrite.common import RewriteContext, is_set_oriented
from repro.rewrite.rules_grouping import (
    grouping_outerjoin,
    grouping_safe,
    unnest_by_grouping,
)
from repro.workload.paper_db import figure2_catalog, figure2_database
from repro.workload.queries import figure1_query, figure2_variant_supseteq


@pytest.fixture()
def ctx():
    return RewriteContext(checker=TypeChecker(figure2_catalog()))


@pytest.fixture()
def db():
    return figure2_database()


class TestComplexObjectBug:
    """Figure 2, replayed."""

    def test_nested_query_keeps_dangling_tuple(self, db):
        result = Interpreter(db).eval(figure1_query())
        assert {t["a"] for t in result} == {1, 2}  # (a=2, c=∅): ∅ ⊆ ∅ holds

    def test_grouping_rewrite_loses_dangling_tuple(self, ctx, db):
        """The bug, live: the join query drops (a=2, c=∅)."""
        buggy = unnest_by_grouping(figure1_query(), ctx)
        assert buggy is not None
        result = Interpreter(db).eval(buggy)
        assert {t["a"] for t in result} == {1}  # WRONG: 2 is gone

    def test_bug_is_exactly_the_dangling_tuples(self, ctx, db):
        nested = Interpreter(db).eval(figure1_query())
        buggy = Interpreter(db).eval(unnest_by_grouping(figure1_query(), ctx))
        lost = nested - buggy
        assert all(t["c"] == frozenset() for t in lost)

    def test_supseteq_variant_also_buggy(self, ctx, db):
        """The paper's ⊇ variant: 'All tuples x ∈ X for which ... Y' is
        equal to the empty set should be included ... but are lost'."""
        query = figure2_variant_supseteq()
        nested = Interpreter(db).eval(query)
        buggy = Interpreter(db).eval(unnest_by_grouping(query, ctx))
        # only the dangling tuple qualifies (∅ ⊇ ∅); a=1 misses (d=1,e=3)
        assert {t["a"] for t in nested} == {2}
        # and the join query loses exactly that tuple: the answer is empty
        assert buggy == frozenset()

    def test_buggy_rewrite_is_set_oriented(self, ctx):
        """The rewrite does achieve the structural goal — that is the
        temptation; it is the semantics that break."""
        buggy = unnest_by_grouping(figure1_query(), ctx)
        assert is_set_oriented(buggy)

    def test_pipeline_shape(self, ctx):
        """π over σ over ν over ⋈ — the paper's four-step pipeline."""
        buggy = unnest_by_grouping(figure1_query(), ctx)
        assert isinstance(buggy, A.Project)
        select = buggy.source
        assert isinstance(select, A.Select)
        nest = select.source
        assert isinstance(nest, A.Nest)
        assert isinstance(nest.source, A.Join)


class TestTable3Guard:
    def test_guard_refuses_subseteq(self, ctx):
        """P(x, ∅) for ⊆ is '?': the safe rule must not fire."""
        assert grouping_safe.apply(figure1_query(), ctx) is None

    def test_guard_refuses_supseteq(self, ctx):
        """P(x, ∅) for ⊇ is 'true': dangling tuples belong in the result."""
        assert grouping_safe.apply(figure2_variant_supseteq(), ctx) is None

    def test_guard_accepts_subset(self, ctx, db):
        """P(x, ∅) for ⊂ is statically false: grouping is safe."""
        x, y = B.var("x"), B.var("y")
        query = B.sel(
            "x",
            B.subset(B.attr(x, "c"),
                     B.sel("y", B.eq(B.attr(x, "a"), B.attr(y, "d")), B.extent("Y"))),
            B.extent("X"),
        )
        rewritten = grouping_safe.apply(query, ctx)
        assert rewritten is not None
        interp = Interpreter(db)
        assert interp.eval(rewritten) == interp.eval(query)

    def test_guard_accepts_membership(self, ctx, db):
        """x.m ∈ Y' with Y' = ∅ is false: grouping safe."""
        db.set_extent("X2", [VTuple(a=1, m=VTuple(d=1, e=1)), VTuple(a=2, m=VTuple(d=9, e=9))])
        from repro.datamodel import Catalog, INT, SetType, TupleType

        member = TupleType({"d": INT, "e": INT})
        catalog = Catalog({
            "X2": SetType(TupleType({"a": INT, "m": member})),
            "Y": SetType(member),
        })
        ctx2 = RewriteContext(checker=TypeChecker(catalog))
        x, y = B.var("x"), B.var("y")
        query = B.sel(
            "x",
            B.member(B.attr(x, "m"),
                     B.sel("y", B.eq(B.attr(x, "a"), B.attr(y, "d")), B.extent("Y"))),
            B.extent("X2"),
        )
        rewritten = grouping_safe.apply(query, ctx2)
        assert rewritten is not None
        interp = Interpreter(db)
        assert interp.eval(rewritten) == interp.eval(query)

    def test_needs_schema(self, db):
        assert unnest_by_grouping(figure1_query(), RewriteContext()) is None


class TestOuterjoinRepair:
    @pytest.mark.parametrize("query_builder", [figure1_query, figure2_variant_supseteq])
    def test_outerjoin_repair_matches_nested_semantics(self, ctx, db, query_builder):
        query = query_builder()
        repaired = grouping_outerjoin.apply(query, ctx)
        assert repaired is not None
        interp = Interpreter(db)
        assert interp.eval(repaired) == interp.eval(query)

    def test_repair_uses_outerjoin(self, ctx):
        repaired = grouping_outerjoin.apply(figure1_query(), ctx)
        assert any(isinstance(n, A.OuterJoin) for n in repaired.walk())

    def test_repair_is_set_oriented(self, ctx):
        repaired = grouping_outerjoin.apply(figure1_query(), ctx)
        assert is_set_oriented(repaired)


class TestNonIdentityBlocks:
    def test_block_with_map_result(self, ctx, db):
        """α[y : G](σ[y : Q](Y)) blocks group correctly (G applied lazily)."""
        x, y = B.var("x"), B.var("y")
        sub = B.amap(
            "y", B.tup(d=B.attr(y, "d"), e=B.attr(y, "e")),
            B.sel("y", B.eq(B.attr(x, "a"), B.attr(y, "d")), B.extent("Y")),
        )
        query = B.sel("x", B.subset(B.attr(x, "c"), sub), B.extent("X"))
        rewritten = grouping_safe.apply(query, ctx)
        assert rewritten is not None
        interp = Interpreter(db)
        assert interp.eval(rewritten) == interp.eval(query)

    def test_attribute_clash_declines(self, ctx):
        """X and Y sharing attribute names cannot be joined by concat."""
        x, y = B.var("x"), B.var("y")
        query = B.sel(
            "x",
            B.subset(B.attr(x, "c"),
                     B.sel("y", B.eq(B.attr(x, "a"), B.attr(y, "a")), B.extent("X"))),
            B.extent("X"),
        )
        assert grouping_safe.apply(query, ctx) is None
