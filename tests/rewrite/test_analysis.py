"""Unit tests for the Table 3 ``P(x, ∅)`` static analysis."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.rewrite.analysis import (
    TriBool,
    classify_empty,
    is_statically_empty,
    reduce_static,
)

EMPTY = B.setexpr()
C = B.attr(B.var("x"), "c")
SUB = B.sel("y", B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "a")), B.extent("Y"))


class TestTable3:
    """The exact rows of Table 3: P(x, Y') with Y' = ∅."""

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("subset", TriBool.FALSE),     # x.c ⊂ ∅ : false
            ("subseteq", TriBool.UNKNOWN),  # x.c ⊆ ∅ : ?
            ("seteq", TriBool.UNKNOWN),     # x.c = ∅ : ?
            ("supseteq", TriBool.TRUE),     # x.c ⊇ ∅ : true
            ("supset", TriBool.UNKNOWN),    # x.c ⊃ ∅ : ?
            ("ni", TriBool.UNKNOWN),        # x.c ∋ ∅ : ?
        ],
    )
    def test_rows(self, op, expected):
        pred = A.SetCompare(op, C, SUB)
        assert classify_empty(pred, SUB) is expected

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("subset", TriBool.TRUE),
            ("subseteq", TriBool.UNKNOWN),
            ("seteq", TriBool.UNKNOWN),
            ("supseteq", TriBool.FALSE),
            ("supset", TriBool.UNKNOWN),
            ("ni", TriBool.UNKNOWN),
        ],
    )
    def test_negated_rows(self, op, expected):
        """Negated predicates are treated the same way (paper: 'Negated
        predicates are treated in the same way'); ¬ flips TRUE/FALSE."""
        pred = A.Not(A.SetCompare(op, C, SUB))
        assert classify_empty(pred, SUB) is expected


class TestTable2Predicates:
    def test_emptiness_test_is_true(self):
        pred = B.is_empty(SUB)
        assert classify_empty(pred, SUB) is TriBool.TRUE

    def test_count_eq_zero_is_true(self):
        pred = B.eq(B.count(SUB), 0)
        assert classify_empty(pred, SUB) is TriBool.TRUE

    def test_count_gt_zero_is_false(self):
        pred = B.gt(B.count(SUB), 0)
        assert classify_empty(pred, SUB) is TriBool.FALSE

    def test_membership_in_empty_is_false(self):
        pred = B.member(B.attr(B.var("x"), "a"), SUB)
        assert classify_empty(pred, SUB) is TriBool.FALSE

    def test_disjoint_with_empty_is_true(self):
        pred = B.disjoint(C, SUB)
        assert classify_empty(pred, SUB) is TriBool.TRUE

    def test_runtime_dependent_count(self):
        # the paper's example: x.c = count(Y') is run-time dependent
        pred = B.eq(B.attr(B.var("x"), "cnt"), B.count(SUB))
        assert classify_empty(pred, SUB) is TriBool.UNKNOWN


class TestQuantifiersOverEmpty:
    def test_exists_false(self):
        pred = B.exists("y", SUB, B.lit(True))
        assert classify_empty(pred, SUB) is TriBool.FALSE

    def test_forall_true(self):
        pred = B.forall("y", SUB, B.lit(False))
        assert classify_empty(pred, SUB) is TriBool.TRUE

    def test_exists_with_false_body(self):
        pred = B.exists("y", B.extent("Y"), B.lit(False))
        assert reduce_static(pred) is TriBool.FALSE

    def test_forall_with_true_body(self):
        pred = B.forall("y", B.extent("Y"), B.lit(True))
        assert reduce_static(pred) is TriBool.TRUE

    def test_exists_nonempty_unknown(self):
        pred = B.exists("y", B.extent("Y"), B.lit(True))
        assert reduce_static(pred) is TriBool.UNKNOWN


class TestThreeValuedLogic:
    U, T, F = TriBool.UNKNOWN, TriBool.TRUE, TriBool.FALSE

    def test_negation(self):
        assert ~self.T is self.F and ~self.F is self.T and ~self.U is self.U

    def test_conjunction(self):
        assert (self.F & self.U) is self.F
        assert (self.T & self.U) is self.U
        assert (self.T & self.T) is self.T

    def test_disjunction(self):
        assert (self.T | self.U) is self.T
        assert (self.F | self.U) is self.U
        assert (self.F | self.F) is self.F

    def test_compound_classification(self):
        # (x.c ⊇ Y') ∧ (x.c ⊂ Y') with Y' = ∅ : true ∧ false = false
        pred = A.And(A.SetCompare("supseteq", C, SUB), A.SetCompare("subset", C, SUB))
        assert classify_empty(pred, SUB) is TriBool.FALSE

    def test_or_with_true_branch(self):
        pred = A.Or(A.SetCompare("subseteq", C, SUB), A.SetCompare("supseteq", C, SUB))
        assert classify_empty(pred, SUB) is TriBool.TRUE


class TestStaticEmptiness:
    def test_literal_empty_set(self):
        assert is_statically_empty(EMPTY) is True
        assert is_statically_empty(B.setexpr(1)) is False

    def test_iterators_propagate_emptiness(self):
        assert is_statically_empty(B.sel("x", B.lit(True), EMPTY)) is True
        assert is_statically_empty(B.amap("x", B.var("x"), EMPTY)) is True
        assert is_statically_empty(B.unnest(EMPTY, "c")) is True

    def test_joins_propagate(self):
        assert is_statically_empty(B.join(EMPTY, B.extent("Y"), "x", "y", B.lit(True))) is True
        assert is_statically_empty(B.join(B.extent("X"), EMPTY, "x", "y", B.lit(True))) is True
        assert is_statically_empty(B.semijoin(EMPTY, B.extent("Y"), "x", "y", B.lit(True))) is True

    def test_union_needs_both(self):
        assert is_statically_empty(B.union(EMPTY, EMPTY)) is True
        assert is_statically_empty(B.union(EMPTY, B.setexpr(1))) is False
        assert is_statically_empty(B.union(EMPTY, B.extent("Y"))) is None

    def test_intersect_needs_one(self):
        assert is_statically_empty(B.intersect(EMPTY, B.extent("Y"))) is True

    def test_extent_unknown(self):
        assert is_statically_empty(B.extent("Y")) is None

    def test_empty_literal_frozenset(self):
        assert is_statically_empty(B.lit(frozenset())) is True
        assert is_statically_empty(B.lit(frozenset({1}))) is False


class TestConstantFolding:
    def test_literal_comparisons(self):
        assert reduce_static(B.eq(1, 1)) is TriBool.TRUE
        assert reduce_static(B.lt(2, 1)) is TriBool.FALSE
        assert reduce_static(B.eq(B.lit("a"), B.lit("a"))) is TriBool.TRUE

    def test_incomparable_literals_unknown(self):
        assert reduce_static(B.lt(B.lit("a"), B.lit(1))) is TriBool.UNKNOWN

    def test_non_literal_unknown(self):
        assert reduce_static(B.eq(B.attr(B.var("x"), "a"), 1)) is TriBool.UNKNOWN
