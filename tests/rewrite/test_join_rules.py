"""Unit tests for Rule 1, Rule 2, conjunct peeling, and selection pushdown."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import VTuple, vset
from repro.engine.interpreter import Interpreter
from repro.rewrite.common import RewriteContext
from repro.rewrite.rules_join import (
    push_right_selection,
    rule1,
    rule1_conjunct,
    rule2,
)
from repro.storage import MemoryDatabase

CTX = RewriteContext()
CORR = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))


@pytest.fixture()
def db():
    return MemoryDatabase(
        {
            "X": [VTuple(a=1, b=10), VTuple(a=2, b=20), VTuple(a=3, b=30)],
            "Y": [VTuple(d=1, e=1), VTuple(d=3, e=0)],
        }
    )


def equiv(before, after, db):
    interp = Interpreter(db)
    assert interp.eval(before) == interp.eval(after)


class TestRule1:
    def test_exists_to_semijoin(self, db):
        before = B.sel("x", B.exists("y", B.extent("Y"), CORR), B.extent("X"))
        after = rule1.apply(before, CTX)
        assert after == B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR)
        equiv(before, after, db)

    def test_not_exists_to_antijoin(self, db):
        before = B.sel("x", B.neg(B.exists("y", B.extent("Y"), CORR)), B.extent("X"))
        after = rule1.apply(before, CTX)
        assert after == B.antijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR)
        equiv(before, after, db)

    def test_side_condition_x_not_free_in_range(self):
        # range depends on x: Rule 1 must not fire
        corr_range = B.sel("w", B.eq(B.attr(B.var("w"), "d"), B.attr(B.var("x"), "a")),
                           B.extent("Y"))
        before = B.sel("x", B.exists("y", corr_range, B.lit(True)), B.extent("X"))
        assert rule1.apply(before, CTX) is None

    def test_range_must_mention_extent(self):
        # quantifier over a set-valued attribute: the paper leaves it nested
        before = B.sel("x", B.exists("m", B.attr(B.var("x"), "c"), B.lit(True)),
                       B.extent("X"))
        assert rule1.apply(before, CTX) is None

    def test_uncorrelated_predicate_still_fires(self, db):
        # constant subquery condition: semijoin remains correct
        pred = B.gt(B.attr(B.var("y"), "e"), 0)
        before = B.sel("x", B.exists("y", B.extent("Y"), pred), B.extent("X"))
        after = rule1.apply(before, CTX)
        assert isinstance(after, A.SemiJoin)
        equiv(before, after, db)


class TestRule1Conjunct:
    def test_peels_quantified_conjunct(self, db):
        local = B.gt(B.attr(B.var("x"), "b"), 15)
        before = B.sel("x", B.conj(local, B.exists("y", B.extent("Y"), CORR)), B.extent("X"))
        after = rule1_conjunct.apply(before, CTX)
        assert after == B.sel("x", local,
                              B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", CORR))
        equiv(before, after, db)

    def test_peels_negated_conjunct(self, db):
        local = B.gt(B.attr(B.var("x"), "b"), 5)
        before = B.sel(
            "x", B.conj(B.neg(B.exists("y", B.extent("Y"), CORR)), local), B.extent("X")
        )
        after = rule1_conjunct.apply(before, CTX)
        assert isinstance(after, A.Select)
        assert isinstance(after.source, A.AntiJoin)
        equiv(before, after, db)

    def test_multiple_quantified_conjuncts_peel_one_at_a_time(self, db):
        q1 = B.exists("y", B.extent("Y"), CORR)
        q2 = B.neg(B.exists("y", B.extent("Y"),
                            B.eq(B.attr(B.var("x"), "b"), B.attr(B.var("y"), "e"))))
        before = B.sel("x", B.conj(q1, q2), B.extent("X"))
        once = rule1_conjunct.apply(before, CTX)
        assert once is not None
        twice = rule1.apply(once, CTX)  # remaining single conjunct: plain Rule 1
        assert twice is not None
        equiv(before, twice, db)

    def test_no_quantified_conjunct_no_fire(self):
        before = B.sel("x", B.conj(B.lit(True), B.lit(True)), B.extent("X"))
        assert rule1_conjunct.apply(before, CTX) is None


class TestRule2:
    def make_rule2_input(self, with_select=True):
        inner_src = (
            B.sel("y", CORR, B.extent("Y")) if with_select else B.extent("Y")
        )
        inner = B.amap("y", A.Concat(A.Var("x"), A.Var("y")), inner_src)
        return B.flatten(B.amap("x", inner, B.extent("X")))

    def test_flattened_concat_map_to_join(self, db):
        before = self.make_rule2_input()
        after = rule2.apply(before, CTX)
        assert after == B.join(B.extent("X"), B.extent("Y"), "x", "y", CORR)
        equiv(before, after, db)

    def test_without_inner_select_pred_is_true(self, db):
        db2 = MemoryDatabase({
            "X": [VTuple(a=1)], "Y": [VTuple(d=1), VTuple(d=2)],
        })
        before = self.make_rule2_input(with_select=False)
        after = rule2.apply(before, CTX)
        assert isinstance(after, A.Join) and after.pred == A.Literal(True)
        equiv(before, after, db2)

    def test_non_concat_body_declines(self):
        inner = B.amap("y", B.tup(l=A.Var("x"), r=A.Var("y")), B.extent("Y"))
        before = B.flatten(B.amap("x", inner, B.extent("X")))
        assert rule2.apply(before, CTX) is None

    def test_correlated_inner_source_declines(self):
        inner = B.amap("y", A.Concat(A.Var("x"), A.Var("y")), B.attr(B.var("x"), "c"))
        before = B.flatten(B.amap("x", inner, B.extent("X")))
        assert rule2.apply(before, CTX) is None


class TestPushRightSelection:
    def test_pushes_rvar_only_conjunct(self, db):
        rlocal = B.gt(B.attr(B.var("y"), "e"), 0)
        before = B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", B.conj(CORR, rlocal))
        after = push_right_selection.apply(before, CTX)
        assert after == B.semijoin(
            B.extent("X"), B.sel("y", rlocal, B.extent("Y")), "x", "y", CORR
        )
        equiv(before, after, db)

    def test_pushes_into_antijoin(self, db):
        rlocal = B.gt(B.attr(B.var("y"), "e"), 0)
        before = B.antijoin(B.extent("X"), B.extent("Y"), "x", "y", B.conj(CORR, rlocal))
        after = push_right_selection.apply(before, CTX)
        assert isinstance(after, A.AntiJoin)
        equiv(before, after, db)

    def test_pushes_into_nestjoin(self, db):
        rlocal = B.gt(B.attr(B.var("y"), "e"), 0)
        before = B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y",
                            B.conj(CORR, rlocal), "g")
        after = push_right_selection.apply(before, CTX)
        assert isinstance(after, A.NestJoin)
        equiv(before, after, db)

    def test_left_only_conjuncts_stay(self):
        llocal = B.gt(B.attr(B.var("x"), "b"), 5)
        before = B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", B.conj(CORR, llocal))
        assert push_right_selection.apply(before, CTX) is None

    def test_single_conjunct_not_pushed(self):
        rlocal = B.gt(B.attr(B.var("y"), "e"), 0)
        before = B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", rlocal)
        assert push_right_selection.apply(before, CTX) is None

    def test_all_conjuncts_pushed_leaves_true(self, db):
        r1 = B.gt(B.attr(B.var("y"), "e"), -1)
        r2 = B.lt(B.attr(B.var("y"), "d"), 99)
        before = B.join(B.extent("X"), B.extent("Y"), "x", "y", B.conj(r1, r2))
        after = push_right_selection.apply(before, CTX)
        assert after.pred == A.Literal(True)
        equiv(before, after, db)
