"""Test package — keeps duplicate basenames (e.g. test_pretty.py) importable."""
