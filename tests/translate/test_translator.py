"""Unit tests for OOSQL → ADL translation (the Section 3 scheme)."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.compare import alpha_equal
from repro.datamodel import TranslationError, TypeCheckError
from repro.engine.interpreter import Interpreter
from repro.oosql import parse
from repro.translate import Translator, compile_oosql, translate
from repro.workload.paper_db import example_database, example_schema


@pytest.fixture(scope="module")
def schema():
    return example_schema()


def tr(text, schema=None):
    return translate(parse(text), schema)


class TestSfwScheme:
    def test_single_block_is_map_over_select(self, schema):
        adl = tr('select s.sname from s in SUPPLIER where s.sname = "s1"', schema)
        expected = B.amap(
            "s",
            B.attr(B.var("s"), "sname"),
            B.sel("s", B.eq(B.attr(B.var("s"), "sname"), "s1"), B.extent("SUPPLIER")),
        )
        assert adl == expected

    def test_missing_where_becomes_true(self, schema):
        adl = tr("select s from s in SUPPLIER", schema)
        assert adl == B.amap("s", B.var("s"), B.sel("s", B.lit(True), B.extent("SUPPLIER")))

    def test_multi_binding_builds_flattened_tower(self, schema):
        adl = tr("select (a = s.sname, b = p.pname) from s in SUPPLIER, p in PART", schema)
        assert isinstance(adl, A.Flatten)
        outer = adl.source
        assert isinstance(outer, A.Map) and outer.var == "s"
        inner = outer.body
        assert isinstance(inner, A.Map) and inner.var == "p"

    def test_full_predicate_lands_innermost(self, schema):
        adl = tr(
            "select 1 from s in SUPPLIER, p in PART where p.oid in s.parts_supplied",
            schema,
        )
        inner_select = adl.source.body.source
        assert isinstance(inner_select, A.Select)
        assert isinstance(inner_select.pred, A.SetCompare)


class TestNameResolution:
    def test_variable_shadows_extent(self, schema):
        adl = tr("select PART from PART in SUPPLIER", schema)
        assert adl == B.amap("PART", B.var("PART"), B.sel("PART", B.lit(True), B.extent("SUPPLIER")))

    def test_unknown_name_rejected_with_schema(self, schema):
        with pytest.raises(TranslationError, match="unknown name"):
            tr("select x from x in GHOST", schema)

    def test_schemaless_mode_treats_free_names_as_extents(self):
        adl = tr("select x from x in ANYTHING")
        assert adl == B.amap("x", B.var("x"), B.sel("x", B.lit(True), B.extent("ANYTHING")))


class TestOperatorMapping:
    def test_set_equality_becomes_seteq(self, schema):
        adl = tr(
            "select s from s in SUPPLIER, t in SUPPLIER "
            "where s.parts_supplied = t.parts_supplied",
            schema,
        )
        ops = [n.op for n in adl.walk() if isinstance(n, A.SetCompare)]
        assert "seteq" in ops

    def test_scalar_equality_stays_compare(self, schema):
        adl = tr('select s from s in SUPPLIER where s.sname = "x"', schema)
        compares = [n for n in adl.walk() if isinstance(n, A.Compare)]
        assert any(c.op == "=" for c in compares)

    def test_schemaless_equality_defaults_to_compare(self):
        adl = tr("select x from x in X where x.c = x.d")
        assert not any(isinstance(n, A.SetCompare) for n in adl.walk())

    def test_surface_setcmp_names(self, schema):
        mapping = {
            "subset": "subset",
            "subseteq": "subseteq",
            "superset": "supset",
            "superseteq": "supseteq",
        }
        for surface, adl_op in mapping.items():
            adl = tr(
                f"select s from s in SUPPLIER, t in SUPPLIER "
                f"where s.parts_supplied {surface} t.parts_supplied",
                schema,
            )
            assert any(
                isinstance(n, A.SetCompare) and n.op == adl_op for n in adl.walk()
            ), surface

    def test_contains_becomes_ni(self, schema):
        adl = tr(
            "select s from s in SUPPLIER, p in PART "
            "where s.parts_supplied contains p.oid",
            schema,
        )
        assert any(isinstance(n, A.SetCompare) and n.op == "ni" for n in adl.walk())

    def test_not_in(self, schema):
        adl = tr(
            "select p from p in PART, s in SUPPLIER "
            "where p.oid not in s.parts_supplied",
            schema,
        )
        assert any(isinstance(n, A.SetCompare) and n.op == "notin" for n in adl.walk())

    def test_set_algebra(self, schema):
        adl = tr(
            "select s from s in SUPPLIER, t in SUPPLIER "
            "where s.parts_supplied union t.parts_supplied = s.parts_supplied",
            schema,
        )
        assert any(isinstance(n, A.Union) for n in adl.walk())

    def test_quantifier_without_body(self, schema):
        adl = tr(
            "select d from d in DELIVERY where exists x in d.supply",
            schema,
        )
        quantifiers = [n for n in adl.walk() if isinstance(n, A.Exists)]
        assert quantifiers and quantifiers[0].pred == A.Literal(True)

    def test_aggregate_and_flatten(self, schema):
        adl = tr("select count(s.parts_supplied) from s in SUPPLIER", schema)
        assert any(isinstance(n, A.Aggregate) for n in adl.walk())
        adl = tr("select flatten(select t.parts_supplied from t in SUPPLIER) from s in SUPPLIER", schema)
        assert any(isinstance(n, A.Flatten) for n in adl.walk())


class TestCompileOosql:
    def test_type_errors_surface(self, schema):
        with pytest.raises(TypeCheckError):
            compile_oosql("select s from s in SUPPLIER where s.sname", schema)

    def test_compile_produces_runnable_adl(self, schema):
        db = example_database()
        adl = compile_oosql(
            'select s.sname from s in SUPPLIER where s.sname = "s1"', schema
        )
        out = Interpreter(db).eval(adl)
        assert out == frozenset({"s1"})


class TestTranslationSemantics:
    """Translated queries evaluate to the expected answers on the paper db."""

    @pytest.fixture(scope="class")
    def db(self):
        return example_database()

    def run(self, text, schema, db):
        return Interpreter(db).eval(compile_oosql(text, schema))

    def test_projection(self, schema, db):
        names = self.run("select s.sname from s in SUPPLIER", schema, db)
        assert names == frozenset({"s1", "s2", "s3", "s4", "s5"})

    def test_where_filter(self, schema, db):
        reds = self.run('select p.pname from p in PART where p.color = "red"', schema, db)
        assert reds == frozenset({"p0", "p4"})

    def test_path_through_reference(self, schema, db):
        out = self.run(
            "select d.supplier.sname from d in DELIVERY where d.date = 940101",
            schema, db,
        )
        assert out == frozenset({"s1", "s2"})

    def test_iteration_over_set_attribute(self, schema, db):
        out = self.run(
            'select p.pname from s in SUPPLIER, p in s.parts_supplied '
            'where s.sname = "s1"',
            schema, db,
        )
        assert out == frozenset({"p0", "p1"})

    def test_quantifier_query(self, schema, db):
        out = self.run(
            "select s.sname from s in SUPPLIER "
            'where exists p in s.parts_supplied : p.color = "red"',
            schema, db,
        )
        assert out == frozenset({"s1", "s2", "s5"})
