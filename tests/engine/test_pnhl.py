"""Unit tests for PNHL and its unnest-join-nest baseline (Section 6.2)."""

import pytest

from repro.datamodel import EvaluationError, VTuple, concat, vset
from repro.engine.pnhl import pnhl_join, unnest_join_nest
from repro.engine.stats import Stats


def outer_rows():
    return [
        VTuple(s=1, parts=vset(VTuple(pid=10), VTuple(pid=20))),
        VTuple(s=2, parts=vset(VTuple(pid=20), VTuple(pid=99))),
        VTuple(s=3, parts=frozenset()),  # the empty-set tuple
    ]


def inner_rows():
    return [
        VTuple(pid2=10, pname="a"),
        VTuple(pid2=20, pname="b"),
        VTuple(pid2=30, pname="c"),
    ]


def member_key(m):
    return m["pid"]


def inner_key(y):
    return y["pid2"]


def reference_result():
    """Hand-computed expected PNHL output."""
    joined = {
        1: {concat(VTuple(pid=10), VTuple(pid2=10, pname="a")),
            concat(VTuple(pid=20), VTuple(pid2=20, pname="b"))},
        2: {concat(VTuple(pid=20), VTuple(pid2=20, pname="b"))},
        3: set(),
    }
    return frozenset(
        row.update_except({"parts": frozenset(joined[row["s"]])}) for row in outer_rows()
    )


class TestPNHL:
    def test_single_segment(self):
        out = pnhl_join(outer_rows(), "parts", inner_rows(), member_key, inner_key)
        assert out == reference_result()

    @pytest.mark.parametrize("budget", [1, 2, 3, 100])
    def test_partitioning_is_result_invariant(self, budget):
        out = pnhl_join(
            outer_rows(), "parts", inner_rows(), member_key, inner_key,
            memory_budget=budget,
        )
        assert out == reference_result()

    def test_empty_set_tuples_survive(self):
        out = pnhl_join(outer_rows(), "parts", inner_rows(), member_key, inner_key)
        survivors = {t["s"]: t["parts"] for t in out}
        assert survivors[3] == frozenset()

    def test_spill_accounting(self):
        stats = Stats()
        pnhl_join(outer_rows(), "parts", inner_rows(), member_key, inner_key,
                  memory_budget=1, stats=stats)
        assert stats.partitions_spilled == 2  # 3 inner tuples, 1 per segment

    def test_no_spill_when_memory_sufficient(self):
        stats = Stats()
        pnhl_join(outer_rows(), "parts", inner_rows(), member_key, inner_key,
                  memory_budget=10, stats=stats)
        assert stats.partitions_spilled == 0

    def test_each_segment_rescans_outer(self):
        small, large = Stats(), Stats()
        pnhl_join(outer_rows(), "parts", inner_rows(), member_key, inner_key,
                  memory_budget=1, stats=small)
        pnhl_join(outer_rows(), "parts", inner_rows(), member_key, inner_key,
                  memory_budget=None, stats=large)
        assert small.tuples_visited == 3 * len(outer_rows())
        assert large.tuples_visited == len(outer_rows())

    def test_invalid_budget(self):
        with pytest.raises(EvaluationError):
            pnhl_join(outer_rows(), "parts", inner_rows(), member_key, inner_key,
                      memory_budget=0)

    def test_non_set_attribute_rejected(self):
        rows = [VTuple(s=1, parts=3)]
        with pytest.raises(EvaluationError):
            pnhl_join(rows, "parts", inner_rows(), member_key, inner_key)

    def test_empty_inner(self):
        out = pnhl_join(outer_rows(), "parts", [], member_key, inner_key)
        assert all(t["parts"] == frozenset() for t in out)
        assert len(out) == 3

    def test_custom_combine(self):
        out = pnhl_join(
            outer_rows(), "parts", inner_rows(), member_key, inner_key,
            combine=lambda m, y: y["pname"],
        )
        by_s = {t["s"]: t["parts"] for t in out}
        assert by_s[1] == vset("a", "b")


class TestUnnestJoinNestBaseline:
    def test_matches_pnhl_on_nonempty_matched_tuples(self):
        pnhl = pnhl_join(outer_rows(), "parts", inner_rows(), member_key, inner_key)
        baseline = unnest_join_nest(outer_rows(), "parts", inner_rows(), member_key, inner_key)
        # restrict PNHL output to tuples with non-empty joined sets:
        # there the two agree
        nonempty = frozenset(t for t in pnhl if t["parts"])
        assert baseline == nonempty

    def test_loses_empty_set_tuples(self):
        baseline = unnest_join_nest(outer_rows(), "parts", inner_rows(), member_key, inner_key)
        assert 3 not in {t["s"] for t in baseline}  # the paper's caveat, live

    def test_loses_dangling_after_join(self):
        # a tuple whose members all miss the inner table is also lost
        rows = [VTuple(s=9, parts=vset(VTuple(pid=777)))]
        baseline = unnest_join_nest(rows, "parts", inner_rows(), member_key, inner_key)
        assert baseline == frozenset()
        pnhl = pnhl_join(rows, "parts", inner_rows(), member_key, inner_key)
        assert len(pnhl) == 1

    def test_duplication_cost_visible(self):
        stats_base = Stats()
        unnest_join_nest(outer_rows(), "parts", inner_rows(), member_key, inner_key,
                         stats=stats_base)
        # μ visits one tuple per member; ν revisits each joined tuple
        assert stats_base.tuples_visited >= 4
