"""All three nestjoin implementations (hash, sort-merge, nested-loop) must
agree with the reference interpreter — Section 6.1's 'adapted join
implementation methods'."""

import pytest
from hypothesis import given, settings

from repro.adl import ast as A
from repro.adl import builders as B
from repro.engine.interpreter import Interpreter
from repro.engine.nestjoin_impls import SortMergeNestJoin
from repro.engine.plan import ExecRuntime, HashJoinBase, NestedLoopJoin, Scan
from repro.engine.stats import Stats
from repro.datamodel import VTuple
from repro.storage import MemoryDatabase
from repro.workload.generator import generate_xy
from repro.workload.paper_db import figure3_database

from tests.property.strategies import flat_xy_database

KEY_L = B.attr(B.var("x"), "a")
KEY_R = B.attr(B.var("y"), "d")
EQ = B.eq(KEY_L, KEY_R)
TRUE = A.Literal(True)


def all_three_plans(result=None, residual=TRUE):
    result = result if result is not None else A.Var("y")
    return {
        "hash": HashJoinBase(
            "nestjoin", "x", "y", (KEY_L,), (KEY_R,), residual,
            Scan("X"), Scan("Y"), as_attr="g", result=result,
        ),
        "sort-merge": SortMergeNestJoin(
            "x", "y", KEY_L, KEY_R, residual, Scan("X"), Scan("Y"), "g", result,
        ),
        "nested-loop": NestedLoopJoin(
            "nestjoin", "x", "y",
            A.And(EQ, residual) if residual != TRUE else EQ,
            Scan("X"), Scan("Y"), as_attr="g", result=result,
        ),
    }


def reference(db, result=None, residual=TRUE):
    result = result if result is not None else A.Var("y")
    pred = A.And(EQ, residual) if residual != TRUE else EQ
    logical = A.NestJoin(B.extent("X"), B.extent("Y"), "x", "y", pred, "g", result)
    return Interpreter(db).eval(logical)


class TestAgreement:
    @given(db=flat_xy_database())
    @settings(max_examples=40, deadline=None)
    def test_all_implementations_agree(self, db):
        expected = reference(db)
        for name, plan in all_three_plans().items():
            assert plan.execute(ExecRuntime(db, Stats())) == expected, name

    @given(db=flat_xy_database())
    @settings(max_examples=30, deadline=None)
    def test_with_result_function(self, db):
        result = B.attr(B.var("y"), "e")
        expected = reference(db, result=result)
        for name, plan in all_three_plans(result=result).items():
            assert plan.execute(ExecRuntime(db, Stats())) == expected, name

    @given(db=flat_xy_database())
    @settings(max_examples=30, deadline=None)
    def test_with_residual(self, db):
        residual = B.gt(B.attr(B.var("y"), "e"), 1)
        expected = reference(db, residual=residual)
        for name, plan in all_three_plans(residual=residual).items():
            assert plan.execute(ExecRuntime(db, Stats())) == expected, name


class TestSortMergeSpecifics:
    def test_figure3_instance(self):
        db = figure3_database()
        plan = SortMergeNestJoin(
            "x", "y", B.attr(B.var("x"), "b"), B.attr(B.var("y"), "d"),
            TRUE, Scan("X"), Scan("Y"), "ys", A.Var("y"),
        )
        out = plan.execute(ExecRuntime(db, Stats()))
        by_ab = {(t["a"], t["b"]): t["ys"] for t in out}
        assert len(by_ab[(1, 1)]) == 2
        assert by_ab[(3, 3)] == frozenset()

    def test_duplicate_left_keys(self):
        db = MemoryDatabase({
            "X": [VTuple(a=1, i=0), VTuple(a=1, i=1)],
            "Y": [VTuple(d=1, e=1), VTuple(d=1, e=2)],
        })
        plan = SortMergeNestJoin(
            "x", "y", KEY_L, KEY_R, TRUE, Scan("X"), Scan("Y"), "g", A.Var("y"),
        )
        out = plan.execute(ExecRuntime(db, Stats()))
        assert len(out) == 2
        assert all(len(t["g"]) == 2 for t in out)

    def test_empty_right(self):
        db = MemoryDatabase({"X": [VTuple(a=1, i=0)], "Y": []})
        plan = SortMergeNestJoin(
            "x", "y", KEY_L, KEY_R, TRUE, Scan("X"), Scan("Y"), "g", A.Var("y"),
        )
        out = plan.execute(ExecRuntime(db, Stats()))
        assert out == frozenset({VTuple(a=1, i=0, g=frozenset())})

    def test_beats_nested_loop_on_work(self):
        db = generate_xy(150, 150, key_domain=60, seed=5)
        sm_stats, nl_stats = Stats(), Stats()
        sm = SortMergeNestJoin(
            "x", "y", KEY_L, KEY_R, TRUE, Scan("X"), Scan("Y"), "g", A.Var("y"),
        )
        nl = NestedLoopJoin(
            "nestjoin", "x", "y", EQ, Scan("X"), Scan("Y"),
            as_attr="g", result=A.Var("y"),
        )
        assert sm.execute(ExecRuntime(db, sm_stats)) == nl.execute(ExecRuntime(db, nl_stats))
        assert sm_stats.total_work() < nl_stats.total_work() / 3
