"""Golden tests for cost-based physical plan selection.

The planner's choices — hash join build side, index nested-loop join,
index scan, nested-loop fallback — must track catalog statistics, be
visible in ``explain()``, and never change results.
"""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import VTuple, vset
from repro.engine import plan as P
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor, Planner
from repro.engine.stats import Stats
from repro.storage import Catalog, MemoryDatabase

EQ_XY = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))
EQ_YX = B.eq(B.attr(B.var("y"), "d"), B.attr(B.var("x"), "a"))


def skew_db(small=8, big=400, key_domain=40):
    """SMALL and BIG extents joinable on SMALL.a = BIG.d."""
    return MemoryDatabase(
        {
            "SMALL": [VTuple(a=i % key_domain, i=i) for i in range(small)],
            "BIG": [VTuple(d=i % key_domain, e=i) for i in range(big)],
        }
    )


@pytest.fixture()
def analyzed():
    db = skew_db()
    catalog = Catalog(db)
    catalog.analyze()
    return db, catalog


@pytest.fixture()
def indexed(analyzed):
    db, catalog = analyzed
    catalog.create_index("BIG", "d")
    return db, catalog


class TestBuildSideSelection:
    """The hash join builds on the (estimated) smaller operand."""

    def test_small_left_builds_left(self, analyzed):
        db, catalog = analyzed
        plan = Planner(catalog).plan(
            B.join(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY)
        )
        assert isinstance(plan, P.HashJoinBase)
        assert plan.build_side == "left"
        assert "<builds left>" in plan.explain()

    def test_flips_when_operands_swap(self, analyzed):
        db, catalog = analyzed
        plan = Planner(catalog).plan(
            B.join(B.extent("BIG"), B.extent("SMALL"), "y", "x", EQ_YX)
        )
        assert isinstance(plan, P.HashJoinBase)
        assert plan.build_side == "right"
        assert "<builds right>" in plan.explain()

    def test_asymmetric_kinds_never_build_left(self, analyzed):
        db, catalog = analyzed
        plan = Planner(catalog).plan(
            B.semijoin(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY)
        )
        assert isinstance(plan, P.HashJoinBase)
        assert plan.build_side == "right"

    def test_heuristic_planner_always_builds_right(self):
        plan = Planner().plan(
            B.join(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY)
        )
        assert isinstance(plan, P.HashJoinBase)
        assert plan.build_side == "right"

    def test_build_left_requires_symmetric_join(self):
        with pytest.raises(Exception):
            P.HashJoinBase(
                "semijoin", "x", "y",
                (B.attr(B.var("x"), "a"),), (B.attr(B.var("y"), "d"),),
                A.Literal(True), P.Scan("SMALL"), P.Scan("BIG"),
                build_side="left",
            )


class TestIndexJoinSelection:
    def test_small_probe_uses_index_join(self, indexed):
        db, catalog = indexed
        plan = Planner(catalog).plan(
            B.join(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY)
        )
        assert isinstance(plan, P.IndexNestedLoopJoin)
        assert "IndexNLJoin(join)" in plan.explain()
        assert "idx_BIG_d" in plan.explain()

    def test_large_probe_prefers_hash_join(self, indexed):
        db, catalog = indexed
        # probing 400 rows against an index on nothing smaller loses to
        # hashing the 8-row operand
        plan = Planner(catalog).plan(
            B.join(B.extent("BIG"), B.extent("SMALL"), "y", "x", EQ_YX)
        )
        assert isinstance(plan, P.HashJoinBase)

    def test_index_join_for_semijoin_kind(self, indexed):
        db, catalog = indexed
        plan = Planner(catalog).plan(
            B.semijoin(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY)
        )
        assert isinstance(plan, P.IndexNestedLoopJoin)

    def test_no_index_no_index_join(self, analyzed):
        db, catalog = analyzed
        plan = Planner(catalog).plan(
            B.join(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY)
        )
        assert not isinstance(plan, P.IndexNestedLoopJoin)

    def test_extra_conjuncts_become_residual(self, indexed):
        db, catalog = indexed
        pred = B.conj(EQ_XY, B.gt(B.attr(B.var("y"), "e"), 10))
        plan = Planner(catalog).plan(
            B.join(B.extent("SMALL"), B.extent("BIG"), "x", "y", pred)
        )
        assert isinstance(plan, P.IndexNestedLoopJoin)
        assert "residual" in plan.describe()


class TestIndexScanSelection:
    def test_equality_on_indexed_attr(self, indexed):
        db, catalog = indexed
        plan = Planner(catalog).plan(
            B.sel("y", B.eq(B.attr(B.var("y"), "d"), B.lit(7)), B.extent("BIG"))
        )
        assert isinstance(plan, P.IndexScan)
        assert "BIG.d = 7" in plan.explain()

    def test_residual_conjunct_wraps_filter(self, indexed):
        db, catalog = indexed
        pred = B.conj(
            B.eq(B.attr(B.var("y"), "d"), B.lit(7)),
            B.gt(B.attr(B.var("y"), "e"), 100),
        )
        plan = Planner(catalog).plan(B.sel("y", pred, B.extent("BIG")))
        assert isinstance(plan, P.Filter)
        assert isinstance(plan.child, P.IndexScan)

    def test_unindexed_attr_full_scan(self, indexed):
        db, catalog = indexed
        plan = Planner(catalog).plan(
            B.sel("y", B.eq(B.attr(B.var("y"), "e"), B.lit(7)), B.extent("BIG"))
        )
        assert isinstance(plan, P.Filter)

    def test_correlated_key_not_indexable(self, indexed):
        db, catalog = indexed
        # key depends on a free variable → not a constant probe
        plan = Planner(catalog).plan(
            B.sel("y", B.eq(B.attr(B.var("y"), "d"), B.attr(B.var("z"), "k")),
                  B.extent("BIG"))
        )
        assert isinstance(plan, P.Filter)

    def test_no_catalog_full_scan(self, indexed):
        plan = Planner().plan(
            B.sel("y", B.eq(B.attr(B.var("y"), "d"), B.lit(7)), B.extent("BIG"))
        )
        assert isinstance(plan, P.Filter)


class TestNestedLoopFallback:
    def test_non_equi_predicate(self, analyzed):
        db, catalog = analyzed
        plan = Planner(catalog).plan(
            B.join(B.extent("SMALL"), B.extent("BIG"), "x", "y",
                   B.lt(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")))
        )
        assert isinstance(plan, P.NestedLoopJoin)


class TestExplainAnnotations:
    def test_cost_annotations_present(self, indexed):
        db, catalog = indexed
        text = Executor(db, catalog=catalog).explain(
            B.join(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY)
        )
        assert "rows≈" in text and "cost≈" in text

    def test_heuristic_explain_unannotated(self, indexed):
        db, _ = indexed
        text = Executor(db).explain(
            B.join(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY)
        )
        assert "rows≈" not in text

    def test_scan_estimates_match_catalog(self, analyzed):
        db, catalog = analyzed
        plan = Planner(catalog).plan(B.extent("BIG"))
        assert plan.est_rows == 400


class TestCostBasedCorrectness:
    """Plan choices must never change results (oracle: naive interpreter)."""

    def queries(self):
        pred_extra = B.conj(EQ_XY, B.gt(B.attr(B.var("y"), "e"), 30))
        return [
            B.join(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY),
            B.join(B.extent("BIG"), B.extent("SMALL"), "y", "x", EQ_YX),
            B.semijoin(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY),
            B.antijoin(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY),
            B.outerjoin(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY,
                        ["d", "e"]),
            B.nestjoin(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY, "g"),
            B.join(B.extent("SMALL"), B.extent("BIG"), "x", "y", pred_extra),
            B.sel("y", B.eq(B.attr(B.var("y"), "d"), B.lit(7)), B.extent("BIG")),
        ]

    def test_all_queries_match_oracle(self, indexed):
        db, catalog = indexed
        executor = Executor(db, catalog=catalog)
        oracle = Interpreter(db)
        for query in self.queries():
            assert executor.execute(query) == oracle.eval(query), str(query)

    def test_index_probes_counted(self, indexed):
        db, catalog = indexed
        stats = Stats()
        executor = Executor(db, stats, catalog=catalog)
        executor.execute(
            B.join(B.extent("SMALL"), B.extent("BIG"), "x", "y", EQ_XY)
        )
        assert stats.index_probes == 8  # one per SMALL tuple
        assert stats.hash_inserts == 0  # no transient build

    def test_stale_index_rebuilt_on_execute(self, indexed):
        db, catalog = indexed
        query = B.sel("y", B.eq(B.attr(B.var("y"), "d"), B.lit(0)), B.extent("BIG"))
        executor = Executor(db, catalog=catalog)
        before = executor.execute(query)
        rows = list(db.extent("BIG")) + [VTuple(d=0, e=9999)]
        db.set_extent("BIG", rows)
        after = executor.execute(query)
        assert len(after) == len(before) + 1

    def test_same_size_replacement_detected(self, indexed):
        # cardinality alone cannot see a same-size replacement; the
        # staleness check compares extent values by identity
        db, catalog = indexed
        query = B.sel("y", B.eq(B.attr(B.var("y"), "d"), B.lit(0)), B.extent("BIG"))
        executor = Executor(db, catalog=catalog)
        old_rows = list(db.extent("BIG"))
        db.set_extent(
            "BIG", [VTuple(d=row["d"] + 1000, e=row["e"]) for row in old_rows]
        )
        assert executor.execute(query) == Interpreter(db).eval(query) == frozenset()


class TestMembershipStillWorks:
    def test_membership_join_costed(self):
        db = MemoryDatabase(
            {
                "S": [
                    VTuple(s=i, parts=vset(i, i + 1, i + 2)) for i in range(40)
                ],
                "P": [VTuple(pid=i) for i in range(60)],
            }
        )
        catalog = Catalog(db)
        catalog.analyze()
        member = B.member(B.attr(B.var("p"), "pid"), B.attr(B.var("s"), "parts"))
        query = B.semijoin(B.extent("S"), B.extent("P"), "s", "p", member)
        plan = Planner(catalog).plan(query)
        assert isinstance(plan, P.MembershipHashJoin)
        assert Executor(db, catalog=catalog).execute(query) == Interpreter(db).eval(query)


class TestIndexJoinOverFilteredExtent:
    """A pushed-down right-side selection no longer disables the index
    nested-loop join: it rides along as a residual applied after the
    probe (ROADMAP 'known simplifications' item 1)."""

    def _query(self, select_var="y"):
        filtered = B.sel(
            select_var,
            B.gt(B.attr(B.var(select_var), "e"), 100),
            B.extent("BIG"),
        )
        return B.join(B.extent("SMALL"), filtered, "x", "y", EQ_XY)

    def test_filtered_right_extent_still_uses_index_join(self, indexed):
        db, catalog = indexed
        plan = Planner(catalog).plan(self._query())
        assert isinstance(plan, P.IndexNestedLoopJoin)
        assert "residual" in plan.describe()
        assert "e > 100" in plan.describe()

    def test_select_var_differs_from_join_var(self, indexed):
        db, catalog = indexed
        plan = Planner(catalog).plan(self._query(select_var="z"))
        assert isinstance(plan, P.IndexNestedLoopJoin)
        # the pushed predicate is re-expressed over the join variable
        assert "y.e > 100" in plan.describe()

    def test_results_match_oracle(self, indexed):
        db, catalog = indexed
        for query in (self._query(), self._query("z"),
                      B.semijoin(B.extent("SMALL"),
                                 B.sel("y", B.gt(B.attr(B.var("y"), "e"), 100),
                                       B.extent("BIG")),
                                 "x", "y", EQ_XY)):
            oracle = Interpreter(db).eval(query)
            assert Executor(db, catalog=catalog).execute(query) == oracle
            assert Executor(db).execute(query) == oracle

    def test_semijoin_kind_supported(self, indexed):
        db, catalog = indexed
        query = B.semijoin(
            B.extent("SMALL"),
            B.sel("y", B.gt(B.attr(B.var("y"), "e"), 100), B.extent("BIG")),
            "x", "y", EQ_XY,
        )
        plan = Planner(catalog).plan(query)
        assert isinstance(plan, P.IndexNestedLoopJoin)

    def test_filter_over_unindexed_extent_unaffected(self, analyzed):
        db, catalog = analyzed
        plan = Planner(catalog).plan(self._query())
        assert not isinstance(plan, P.IndexNestedLoopJoin)
