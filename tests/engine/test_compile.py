"""Oracle-equality for the expression compiler.

The contract of :mod:`repro.engine.compile`: a compiled closure is
observationally identical to ``Interpreter._eval`` — same values, same
error types and messages, same short-circuiting, same Stats counters —
and falls back to the interpreter on uncovered node forms without any
behavior change."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import EvaluationError, VTuple, vset
from repro.engine.compile import COMPILED_NODE_TYPES, Compiler, compile_expr
from repro.engine.interpreter import Interpreter
from repro.engine.stats import Stats
from repro.storage import MemoryDatabase
from repro.workload.paper_db import example_database


@pytest.fixture()
def db():
    return MemoryDatabase(
        {
            "X": [VTuple(a=1, b=10), VTuple(a=2, b=20), VTuple(a=3, b=30)],
            "Y": [VTuple(d=1, e=1), VTuple(d=1, e=2), VTuple(d=3, e=3)],
        }
    )


def both(expr, db, env=None):
    """Evaluate with interpreter and compiler; return (value, value) after
    asserting the Stats counters agree."""
    env = env or {}
    i_stats, c_stats = Stats(), Stats()
    expected = Interpreter(db, i_stats).eval(expr, dict(env))
    fn = compile_expr(expr, db, c_stats)
    got = fn(dict(env))
    assert i_stats.snapshot() == c_stats.snapshot(), f"counter divergence for {expr}"
    return expected, got


def assert_same(expr, db, env=None):
    expected, got = both(expr, db, env)
    assert expected == got, f"{expr}: interpreter={expected!r} compiled={got!r}"


def assert_same_error(expr, db, env=None):
    env = env or {}
    with pytest.raises(Exception) as interp_err:
        Interpreter(db).eval(expr, dict(env))
    fn = compile_expr(expr, db)
    with pytest.raises(Exception) as comp_err:
        fn(dict(env))
    assert type(interp_err.value) is type(comp_err.value), f"error type for {expr}"
    assert str(interp_err.value) == str(comp_err.value), f"error message for {expr}"


X = B.var("x")
Y = B.var("y")
ENV = {
    "x": VTuple(a=2, b=10, c=vset(1, 2, 3)),
    "y": VTuple(d=2, e=vset(VTuple(m=1), VTuple(m=2))),
    "n": 7,
    "s": "hello",
    "flag": True,
}


class TestCoveredForms:
    CASES = [
        B.lit(42),
        B.lit(None),
        B.var("n"),
        B.extent("X"),
        B.attr(X, "a"),
        B.attr(X, "c"),
        B.tup(p=B.attr(X, "a"), q=B.lit(1)),
        B.setexpr(B.lit(1), B.attr(X, "a")),
        A.TupleSubscript(X, ("a", "b")),
        A.TupleUpdate(X, (("a", B.lit(99)), ("new", B.lit(1)))),
        A.Concat(A.TupleSubscript(X, ("a",)), A.TupleSubscript(Y, ("d",))),
        A.Arith("+", B.attr(X, "a"), B.lit(3)),
        A.Arith("-", B.lit(10), B.var("n")),
        A.Arith("*", B.var("n"), B.var("n")),
        A.Arith("/", B.lit(10), B.lit(4)),
        A.Arith("mod", B.var("n"), B.lit(3)),
        A.Neg(B.var("n")),
        B.eq(B.attr(X, "a"), B.attr(Y, "d")),
        A.Compare("!=", B.var("n"), B.lit(7)),
        A.Compare("<", B.var("n"), B.lit(9)),
        A.Compare("<=", B.var("s"), B.lit("world")),
        A.Compare(">", B.lit(3.5), B.var("n")),
        A.Compare(">=", B.var("n"), B.lit(7)),
        A.SetCompare("in", B.lit(2), B.attr(X, "c")),
        A.SetCompare("notin", B.lit(9), B.attr(X, "c")),
        A.SetCompare("ni", B.attr(X, "c"), B.lit(3)),
        A.SetCompare("notni", B.attr(X, "c"), B.lit(9)),
        A.SetCompare("subset", B.setexpr(B.lit(1)), B.attr(X, "c")),
        A.SetCompare("subseteq", B.attr(X, "c"), B.attr(X, "c")),
        A.SetCompare("seteq", B.attr(X, "c"), B.setexpr(B.lit(1), B.lit(2), B.lit(3))),
        A.SetCompare("setneq", B.attr(X, "c"), B.setexpr()),
        A.SetCompare("supseteq", B.attr(X, "c"), B.setexpr(B.lit(2))),
        A.SetCompare("supset", B.attr(X, "c"), B.setexpr(B.lit(2))),
        A.SetCompare("disjoint", B.attr(X, "c"), B.setexpr(B.lit(9))),
        A.And(B.var("flag"), A.Compare("<", B.var("n"), B.lit(9))),
        A.Or(A.Not(B.var("flag")), B.lit(True)),
        A.IsEmpty(B.setexpr()),
        A.IsEmpty(B.attr(X, "c")),
        B.exists("i", B.extent("X"),
                 B.eq(B.attr(B.var("i"), "a"), B.attr(X, "a"))),
        B.forall("i", B.extent("X"),
                 A.Compare("<", B.attr(B.var("i"), "a"), B.lit(10))),
        A.Union(B.attr(X, "c"), B.setexpr(B.lit(9))),
        A.Intersect(B.attr(X, "c"), B.setexpr(B.lit(2), B.lit(9))),
        A.Difference(B.attr(X, "c"), B.setexpr(B.lit(1))),
        A.Aggregate("count", B.attr(X, "c")),
        A.Aggregate("sum", B.attr(X, "c")),
        A.Aggregate("min", B.attr(X, "c")),
        A.Aggregate("max", B.attr(X, "c")),
        A.Aggregate("avg", B.attr(X, "c")),
    ]

    @pytest.mark.parametrize("expr", CASES, ids=[str(i) for i in range(len(CASES))])
    def test_oracle_equality(self, db, expr):
        assert_same(expr, db, ENV)

    def test_no_fallback_needed_for_covered_battery(self, db):
        stats = Stats()
        compiler = Compiler(db, stats, Interpreter(db, stats))
        for expr in self.CASES:
            compiler.compile(expr)
        assert compiler.fallback_nodes == 0


class TestOidDeref:
    def test_attr_through_oid_counts_deref(self):
        db = example_database()
        delivery = next(iter(db.extent("DELIVERY")))
        supplier = next(
            s for s in db.extent("SUPPLIER") if s["oid"] == delivery["supplier"]
        )
        expr = B.attr(B.var("d"), "supplier", "sname")
        env = {"d": delivery}
        i_stats, c_stats = Stats(), Stats()
        expected = Interpreter(db, i_stats).eval(expr, dict(env))
        got = compile_expr(expr, db, c_stats)(dict(env))
        assert expected == got == supplier["sname"]
        assert i_stats.oid_derefs == c_stats.oid_derefs == 1


class TestErrorParity:
    def test_unbound_variable(self, db):
        assert_same_error(B.var("ghost"), db, ENV)

    def test_attr_on_non_tuple(self, db):
        assert_same_error(B.attr(B.var("n"), "a"), db, ENV)

    def test_missing_attribute(self, db):
        assert_same_error(B.attr(X, "ghost"), db, ENV)

    def test_arith_on_non_number(self, db):
        assert_same_error(A.Arith("+", B.var("s"), B.lit(1)), db, ENV)

    def test_arith_on_bool(self, db):
        assert_same_error(A.Arith("*", B.var("flag"), B.lit(2)), db, ENV)

    def test_division_by_zero(self, db):
        assert_same_error(A.Arith("/", B.lit(1), B.lit(0)), db, ENV)

    def test_modulo_by_zero(self, db):
        assert_same_error(A.Arith("mod", B.lit(1), B.lit(0)), db, ENV)

    def test_negation_of_string(self, db):
        assert_same_error(A.Neg(B.var("s")), db, ENV)

    def test_ordered_comparison_across_types(self, db):
        assert_same_error(A.Compare("<", B.var("n"), B.var("s")), db, ENV)

    def test_ordered_comparison_on_set(self, db):
        assert_same_error(A.Compare("<", B.attr(X, "c"), B.lit(1)), db, ENV)

    def test_membership_on_non_set(self, db):
        assert_same_error(A.SetCompare("in", B.lit(1), B.var("n")), db, ENV)

    def test_ni_on_non_set(self, db):
        assert_same_error(A.SetCompare("ni", B.var("n"), B.lit(1)), db, ENV)

    def test_set_comparison_on_non_sets(self, db):
        assert_same_error(A.SetCompare("subset", B.var("n"), B.var("n")), db, ENV)

    def test_and_on_non_boolean(self, db):
        assert_same_error(A.And(B.var("n"), B.lit(True)), db, ENV)

    def test_isempty_on_non_set(self, db):
        assert_same_error(A.IsEmpty(B.var("n")), db, ENV)

    def test_quantifier_over_non_set(self, db):
        assert_same_error(B.exists("i", B.var("n"), B.lit(True)), db, ENV)

    def test_aggregate_min_over_empty(self, db):
        assert_same_error(A.Aggregate("min", B.setexpr()), db, ENV)

    def test_aggregate_over_non_atoms(self, db):
        assert_same_error(A.Aggregate("sum", B.attr(B.var("y"), "e")), db, ENV)


class TestShortCircuit:
    def test_and_protects_raising_right(self, db):
        poison = B.eq(A.Arith("/", B.lit(1), B.lit(0)), B.lit(1))
        expr = A.And(B.lit(False), poison)
        assert_same(expr, db, ENV)  # both: False, no error

    def test_or_protects_raising_right(self, db):
        poison = B.eq(A.Arith("/", B.lit(1), B.lit(0)), B.lit(1))
        expr = A.Or(B.lit(True), poison)
        assert_same(expr, db, ENV)

    def test_exists_short_circuits_counters(self, db):
        # first matching tuple stops the scan in both engines; counters equal
        expr = B.exists("i", B.extent("X"), B.lit(True))
        assert_same(expr, db, ENV)


class TestConstantFolding:
    def test_counter_free_constants_fold(self, db):
        stats = Stats()
        compiler = Compiler(db, stats, Interpreter(db, stats))
        expr = A.Arith("+", B.lit(1), A.Arith("*", B.lit(2), B.lit(3)))
        fn = compiler.compile(expr)
        assert compiler.folded_nodes >= 2
        assert fn({}) == 7

    def test_comparisons_never_fold(self, db):
        """Folding a Compare would stop counting comparisons."""
        stats = Stats()
        compiler = Compiler(db, stats, Interpreter(db, stats))
        fn = compiler.compile(B.eq(B.lit(1), B.lit(1)))
        fn({})
        fn({})
        assert stats.comparisons == 2

    def test_failing_constant_defers_error_to_eval_time(self, db):
        stats = Stats()
        compiler = Compiler(db, stats, Interpreter(db, stats))
        # compilation itself must not raise...
        fn = compiler.compile(A.Arith("/", B.lit(1), B.lit(0)))
        # ...the error surfaces on evaluation, like the interpreter
        with pytest.raises(EvaluationError):
            fn({})

    def test_folded_inside_non_constant(self, db):
        expr = A.Arith("+", B.var("n"), A.Arith("*", B.lit(2), B.lit(3)))
        assert_same(expr, db, ENV)

    def test_non_repro_fold_error_also_defers(self, db):
        """A constant aggregate over mixed atoms raises TypeError inside the
        fold attempt — compilation must survive and defer, so a predicate
        containing it over an empty input still never raises."""
        stats = Stats()
        compiler = Compiler(db, stats, Interpreter(db, stats))
        poison = A.Compare(
            "<", A.Aggregate("sum", B.setexpr(B.lit("a"), B.lit(1))), B.lit(2)
        )
        fn = compiler.compile(A.And(B.lit(False), poison))
        assert fn({}) is False  # short-circuit protects the poison, as before


class TestFallback:
    def test_set_iterators_fall_back_and_agree(self, db):
        expr = A.IsEmpty(
            B.sel("i", B.gt(B.attr(B.var("i"), "a"), 99), B.extent("X"))
        )
        env = {}
        i_stats, c_stats = Stats(), Stats()
        expected = Interpreter(db, i_stats).eval(expr, dict(env))
        c = Compiler(db, c_stats, Interpreter(db, c_stats))
        fn = c.compile(expr)
        assert fn({}) == expected
        assert c.fallback_nodes == 1  # the Select subtree
        assert i_stats.snapshot() == c_stats.snapshot()

    def test_join_inside_predicate_falls_back(self, db):
        join = A.Join(B.extent("X"), B.extent("Y"), "x", "y",
                      B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")))
        expr = A.Aggregate("count", join)
        assert_same(expr, db)

    def test_covered_node_registry_is_accurate(self, db):
        compiler = Compiler(db, Stats(), Interpreter(db))
        for node_type in COMPILED_NODE_TYPES:
            assert node_type in COMPILED_NODE_TYPES


class TestBindingDiscipline:
    def test_quantifier_does_not_leak_binding(self, db):
        env = {"x": ENV["x"]}
        expr = B.exists("q", B.extent("X"), B.lit(True))
        compile_expr(expr, db)(env)
        assert set(env) == {"x"}

    def test_quantifier_restores_shadowed_binding(self, db):
        env = {"x": ENV["x"]}
        # ∃ x ∈ X • true shadows the outer x; afterwards x must be restored
        expr = A.And(
            B.exists("x", B.extent("X"), B.lit(True)),
            B.eq(B.attr(X, "a"), B.lit(2)),
        )
        assert compile_expr(expr, db)(env) is True
        assert env["x"] == ENV["x"]

    def test_raising_predicate_restores_binding(self, db):
        env = {"x": ENV["x"]}
        poison = B.eq(A.Arith("/", B.lit(1), B.lit(0)), B.lit(1))
        expr = B.exists("x", B.extent("X"), poison)
        with pytest.raises(EvaluationError):
            compile_expr(expr, db)(env)
        assert env["x"] == ENV["x"]


class TestRuntimeIntegration:
    def test_runtime_compiles_once_per_expression(self, db):
        from repro.engine.plan import ExecRuntime

        rt = ExecRuntime(db)
        pred = B.eq(B.attr(X, "a"), B.lit(2))
        assert rt.compiled(pred) is rt.compiled(pred)
        assert rt.compiled_pred(pred) is rt.compiled_pred(pred)

    def test_cache_never_aliases_garbage_collected_expressions(self, db):
        """id() of a dead expression may be reused by a fresh one; the cache
        must keep compiled expressions alive so that can't alias closures."""
        from repro.engine.plan import ExecRuntime

        rt = ExecRuntime(db)
        env = {"i": 5}
        for k in range(500):
            expr = B.eq(B.var("i"), B.lit(5 if k % 2 == 0 else 6))
            expected = k % 2 == 0
            assert rt.eval(expr, env) is expected

    def test_compile_exprs_off_matches_compiled_results(self, db):
        from repro.engine.planner import Executor

        expr = B.sel(
            "x",
            B.exists("y", B.extent("Y"),
                     B.eq(B.attr(X, "a"), B.attr(Y, "d"))),
            B.extent("X"),
        )
        on = Executor(db).execute(expr)
        off = Executor(db, compile_exprs=False).execute(expr)
        assert on == off == Interpreter(db).eval(expr)
