"""Unit tests for the materialize/assembly operator over the paged store."""

import pytest

from repro.adl import builders as B
from repro.datamodel import INT, STRING, ClassRef, Schema, SetType, vset
from repro.engine.interpreter import Interpreter
from repro.engine.plan import ExecRuntime, MaterializeOp, Scan
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.storage import Database


@pytest.fixture()
def db():
    schema = Schema()
    schema.add_class("Part", "PART", {"pname": STRING, "price": INT})
    schema.add_class(
        "Supplier", "SUPPLIER",
        {"sname": STRING, "parts": SetType(ClassRef("Part")), "fav": ClassRef("Part")},
    )
    schema.freeze()
    db = Database(schema, page_size=256)
    parts = [db.insert("Part", {"pname": f"p{i}", "price": i}) for i in range(12)]
    for i in range(4):
        db.insert(
            "Supplier",
            {"sname": f"s{i}", "parts": vset(*parts[i : i + 3]), "fav": parts[i]},
        )
    return db


class TestAssembly:
    def test_single_ref_materialization(self, db):
        expr = B.materialize(B.extent("SUPPLIER"), "fav", "fav_obj", "Part")
        out = Executor(db).execute(expr)
        for row in out:
            assert row["fav_obj"]["oid"] == row["fav"]

    def test_set_ref_materialization(self, db):
        expr = B.materialize(B.extent("SUPPLIER"), "parts", "part_objs", "Part")
        out = Executor(db).execute(expr)
        for row in out:
            assert {p["oid"] for p in row["part_objs"]} == set(row["parts"])

    def test_matches_interpreter(self, db):
        expr = B.materialize(B.extent("SUPPLIER"), "parts", "part_objs", "Part")
        assert Executor(db).execute(expr) == Interpreter(db).eval(expr)

    def test_assembly_charges_fewer_page_reads_than_naive(self, db):
        expr_plan = MaterializeOp("parts", "objs", "Part", Scan("SUPPLIER"))
        db.reset_io()
        expr_plan.execute(ExecRuntime(db, Stats()))
        clustered = db.io.pages_read
        # naive: one random fetch per oid
        db.reset_io()
        list(db.scan("SUPPLIER"))
        for row in db.extent("SUPPLIER"):
            for oid in row["parts"]:
                db.fetch(oid)
        random_reads = db.io.pages_read
        assert clustered < random_reads

    def test_deref_count(self, db):
        stats = Stats()
        plan = MaterializeOp("parts", "objs", "Part", Scan("SUPPLIER"))
        plan.execute(ExecRuntime(db, stats))
        expected = sum(len(r["parts"]) for r in db.extent("SUPPLIER"))
        assert stats.oid_derefs == expected
