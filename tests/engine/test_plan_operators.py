"""Physical operators must compute exactly what the naive interpreter does,
and must do strictly less work on the workloads they are designed for."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.engine.interpreter import Interpreter
from repro.engine.plan import (
    ExecRuntime,
    EvalExpr,
    Filter,
    HashJoinBase,
    MembershipHashJoin,
    NestedLoopJoin,
    Scan,
    SortMergeJoin,
)
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.datamodel import PlanError, VTuple, vset
from repro.storage import MemoryDatabase
from repro.workload.generator import generate_xy


@pytest.fixture()
def db():
    return MemoryDatabase(
        {
            "X": [VTuple(a=1, b=10), VTuple(a=2, b=20), VTuple(a=3, b=30)],
            "Y": [VTuple(d=1, e=1), VTuple(d=1, e=2), VTuple(d=3, e=3)],
        }
    )


EQ = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))
TRUE = A.Literal(True)


def rt_for(db):
    return ExecRuntime(db, Stats())


def naive(expr, db):
    return Interpreter(db).eval(expr)


class TestJoinKindsAgainstNaive:
    """Each hash implementation == nested-loop implementation == interpreter."""

    @pytest.mark.parametrize("kind,node_cls", [
        ("join", A.Join), ("semijoin", A.SemiJoin), ("antijoin", A.AntiJoin),
    ])
    def test_hash_vs_naive(self, db, kind, node_cls):
        logical = node_cls(B.extent("X"), B.extent("Y"), "x", "y", EQ)
        hash_plan = HashJoinBase(
            kind, "x", "y",
            (B.attr(B.var("x"), "a"),), (B.attr(B.var("y"), "d"),),
            TRUE, Scan("X"), Scan("Y"),
        )
        nl_plan = NestedLoopJoin(kind, "x", "y", EQ, Scan("X"), Scan("Y"))
        expected = naive(logical, db)
        assert hash_plan.execute(rt_for(db)) == expected
        assert nl_plan.execute(rt_for(db)) == expected

    def test_outerjoin(self, db):
        logical = A.OuterJoin(B.extent("X"), B.extent("Y"), "x", "y", EQ, ("d", "e"))
        hash_plan = HashJoinBase(
            "outerjoin", "x", "y",
            (B.attr(B.var("x"), "a"),), (B.attr(B.var("y"), "d"),),
            TRUE, Scan("X"), Scan("Y"), right_attrs=("d", "e"),
        )
        assert hash_plan.execute(rt_for(db)) == naive(logical, db)

    def test_nestjoin(self, db):
        logical = B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", EQ, "ys")
        hash_plan = HashJoinBase(
            "nestjoin", "x", "y",
            (B.attr(B.var("x"), "a"),), (B.attr(B.var("y"), "d"),),
            TRUE, Scan("X"), Scan("Y"), as_attr="ys", result=A.Var("y"),
        )
        assert hash_plan.execute(rt_for(db)) == naive(logical, db)

    def test_residual_predicate(self, db):
        residual = B.gt(B.attr(B.var("y"), "e"), 1)
        logical = A.Join(B.extent("X"), B.extent("Y"), "x", "y", A.And(EQ, residual))
        hash_plan = HashJoinBase(
            "join", "x", "y",
            (B.attr(B.var("x"), "a"),), (B.attr(B.var("y"), "d"),),
            residual, Scan("X"), Scan("Y"),
        )
        assert hash_plan.execute(rt_for(db)) == naive(logical, db)

    def test_sort_merge_join(self, db):
        logical = A.Join(B.extent("X"), B.extent("Y"), "x", "y", EQ)
        plan = SortMergeJoin(
            "x", "y", B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"),
            TRUE, Scan("X"), Scan("Y"),
        )
        assert plan.execute(rt_for(db)) == naive(logical, db)

    def test_sort_merge_join_with_duplicates(self):
        db = MemoryDatabase({
            "X": [VTuple(a=1, i=0), VTuple(a=1, i=1), VTuple(a=2, i=2)],
            "Y": [VTuple(d=1, j=0), VTuple(d=1, j=1)],
        })
        logical = A.Join(B.extent("X"), B.extent("Y"), "x", "y",
                         B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")))
        plan = SortMergeJoin(
            "x", "y", B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"),
            TRUE, Scan("X"), Scan("Y"),
        )
        out = plan.execute(rt_for(db))
        assert out == naive(logical, db)
        assert len(out) == 4  # 2x2 block of duplicates

    def test_invalid_kind_rejected(self):
        with pytest.raises(PlanError):
            NestedLoopJoin("fancy", "x", "y", TRUE, Scan("X"), Scan("Y"))
        with pytest.raises(PlanError):
            HashJoinBase("join", "x", "y", (), (), TRUE, Scan("X"), Scan("Y"))


class TestMembershipJoin:
    @pytest.fixture()
    def mdb(self):
        return MemoryDatabase({
            "S": [
                VTuple(s=1, parts=vset(10, 20)),
                VTuple(s=2, parts=vset(30)),
                VTuple(s=3, parts=frozenset()),
            ],
            "P": [VTuple(pid=10), VTuple(pid=20), VTuple(pid=99)],
        })

    def test_left_set_semijoin(self, mdb):
        logical = A.SemiJoin(
            B.extent("S"), B.extent("P"), "s", "p",
            B.member(B.attr(B.var("p"), "pid"), B.attr(B.var("s"), "parts")),
        )
        plan = MembershipHashJoin(
            "semijoin", "s", "p",
            B.attr(B.var("p"), "pid"), B.attr(B.var("s"), "parts"),
            "left-set", TRUE, Scan("S"), Scan("P"),
        )
        assert plan.execute(rt_for(mdb)) == naive(logical, mdb)

    def test_left_set_antijoin(self, mdb):
        logical = A.AntiJoin(
            B.extent("S"), B.extent("P"), "s", "p",
            B.member(B.attr(B.var("p"), "pid"), B.attr(B.var("s"), "parts")),
        )
        plan = MembershipHashJoin(
            "antijoin", "s", "p",
            B.attr(B.var("p"), "pid"), B.attr(B.var("s"), "parts"),
            "left-set", TRUE, Scan("S"), Scan("P"),
        )
        out = plan.execute(rt_for(mdb))
        assert out == naive(logical, mdb)
        assert {t["s"] for t in out} == {2, 3}  # 30 not in P; empty set never matches

    def test_left_set_nestjoin(self, mdb):
        logical = B.nestjoin(
            B.extent("S"), B.extent("P"), "s", "p",
            B.member(B.attr(B.var("p"), "pid"), B.attr(B.var("s"), "parts")), "ps",
        )
        plan = MembershipHashJoin(
            "nestjoin", "s", "p",
            B.attr(B.var("p"), "pid"), B.attr(B.var("s"), "parts"),
            "left-set", TRUE, Scan("S"), Scan("P"),
            as_attr="ps", result=A.Var("p"),
        )
        assert plan.execute(rt_for(mdb)) == naive(logical, mdb)

    def test_right_set_orientation(self):
        db = MemoryDatabase({
            "E": [VTuple(k=1), VTuple(k=5)],
            "S": [VTuple(s=1, members=vset(1, 2)), VTuple(s=2, members=vset(3))],
        })
        logical = A.Join(
            B.extent("E"), B.extent("S"), "e", "s",
            B.member(B.attr(B.var("e"), "k"), B.attr(B.var("s"), "members")),
        )
        plan = MembershipHashJoin(
            "join", "e", "s",
            B.attr(B.var("e"), "k"), B.attr(B.var("s"), "members"),
            "right-set", TRUE, Scan("E"), Scan("S"),
        )
        assert plan.execute(rt_for(db)) == naive(logical, db)


class TestWorkCounters:
    def test_hash_semijoin_beats_nested_loop(self):
        db = generate_xy(100, 100, key_domain=50, seed=1)
        logical = A.SemiJoin(B.extent("X"), B.extent("Y"), "x", "y",
                             B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")))
        nl_stats, hash_stats = Stats(), Stats()
        nl = NestedLoopJoin("semijoin", "x", "y",
                            B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")),
                            Scan("X"), Scan("Y"))
        hj = HashJoinBase("semijoin", "x", "y",
                          (B.attr(B.var("x"), "a"),), (B.attr(B.var("y"), "d"),),
                          TRUE, Scan("X"), Scan("Y"))
        out_nl = nl.execute(ExecRuntime(db, nl_stats))
        out_hj = hj.execute(ExecRuntime(db, hash_stats))
        assert out_nl == out_hj
        assert hash_stats.total_work() < nl_stats.total_work() / 3

    def test_explain_renders_tree(self, db):
        plan = HashJoinBase(
            "join", "x", "y",
            (B.attr(B.var("x"), "a"),), (B.attr(B.var("y"), "d"),),
            TRUE, Scan("X"), Scan("Y"),
        )
        text = plan.explain()
        assert "HashJoin(join)" in text
        assert "Scan [X]" in text and "Scan [Y]" in text


class TestPipelineOperators:
    def test_filter(self, db):
        plan = Filter("x", B.gt(B.attr(B.var("x"), "a"), 1), Scan("X"))
        assert plan.execute(rt_for(db)) == vset(VTuple(a=2, b=20), VTuple(a=3, b=30))

    def test_eval_leaf_requires_set(self, db):
        with pytest.raises(PlanError):
            EvalExpr(B.lit(1)).execute(rt_for(db))

    def test_executor_matches_interpreter_on_pipeline(self, db):
        expr = B.project(
            B.sel("y", B.gt(B.attr(B.var("y"), "e"), 1), B.extent("Y")), "d"
        )
        assert Executor(db).execute(expr) == naive(expr, db)
