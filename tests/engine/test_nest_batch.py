"""Native batch grouping for ``Nest`` (PR 9, satellite of query
shredding): the bulk key-kernel group build must be invisible next to
the tuple engine — identical rows, identical work counters — while
actually running the PR-8 kernels (no fallback counts on uniform
input), and must stay exact on heterogeneous row shapes.
"""

import pytest

from repro.datamodel import VTuple
from repro.engine.plan import ExecRuntime, NestOp, Scan
from repro.engine.stats import Stats
from repro.storage import MemoryDatabase

BATCH_ONLY = ("batches_emitted", "vector_fallbacks")
BATCH_SIZES = (1, 7, 256)


def _snap(stats):
    snap = stats.snapshot()
    for k in BATCH_ONLY:
        snap.pop(k, None)
    return snap


def uniform_db(n=40):
    return MemoryDatabase(
        {"R": [VTuple(g=i % 5, h=i % 3, v=i % 7) for i in range(n)]}
    )


def hetero_db():
    # mixed shapes: some rows carry an extra attribute, one lacks "h" —
    # their group keys must stay distinct from every uniform key
    rows = [VTuple(g=i % 3, h=0, v=i) for i in range(12)]
    rows += [VTuple(g=1, h=0, v=100, extra=7)]
    rows += [VTuple(g=2, v=200)]
    return MemoryDatabase({"R": rows})


def nest():
    return NestOp(("v",), "vs", Scan("R"))


class TestNestBatchParity:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("db_factory", [uniform_db, hetero_db], ids=["uniform", "hetero"])
    def test_rows_and_counters_match_tuple_mode(self, db_factory, batch_size):
        oracle_stats = Stats()
        want = nest().execute(ExecRuntime(db_factory(), oracle_stats))
        stats = Stats()
        got = nest().execute(
            ExecRuntime(db_factory(), stats, batch_size=batch_size)
        )
        assert got == want
        assert _snap(stats) == _snap(oracle_stats)

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_compile_exprs_off_row_path_matches(self, batch_size):
        want = nest().execute(ExecRuntime(uniform_db(), Stats()))
        got = nest().execute(
            ExecRuntime(
                uniform_db(), Stats(), batch_size=batch_size, compile_exprs=False
            )
        )
        assert got == want

    def test_empty_input(self):
        db = MemoryDatabase({"R": []})
        assert nest().execute(ExecRuntime(db, Stats(), batch_size=7)) == frozenset()


class TestNestBatchKernels:
    def test_uniform_input_runs_kernels_without_fallback(self):
        stats = Stats()
        nest().execute(ExecRuntime(uniform_db(), stats, batch_size=7))
        assert stats.vector_fallbacks == 0
        assert stats.batches_emitted > 0

    def test_vector_note(self):
        assert nest().vector_note() == "vec"

    def test_group_sets_are_subscripted_tuples(self):
        rows = nest().execute(ExecRuntime(uniform_db(8), Stats(), batch_size=3))
        for row in rows:
            assert set(row.attributes) == {"g", "h", "vs"}
            for member in row["vs"]:
                assert set(member.attributes) == {"v"}

    def test_output_chunked_by_batch_size(self):
        rt = ExecRuntime(uniform_db(40), Stats(), batch_size=4)
        sizes = [len(b) for b in nest().iterate_batches(rt)]
        assert sum(sizes) == 15  # 5 x 3 distinct (g, h) keys
        assert all(s <= 4 for s in sizes)
