"""Unit tests for the physical planner's operator selection."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.engine import plan as P
from repro.engine.planner import Executor, JoinRecipe, Planner
from repro.datamodel import VTuple, vset
from repro.storage import MemoryDatabase


EQ = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))
MEMBER = B.member(B.attr(B.var("y"), "d"), B.attr(B.var("x"), "c"))


@pytest.fixture()
def db():
    return MemoryDatabase(
        {
            "X": [VTuple(a=1, c=vset(1, 2)), VTuple(a=2, c=vset(3))],
            "Y": [VTuple(d=1, e=1), VTuple(d=3, e=3)],
        }
    )


class TestJoinRecipe:
    def test_detects_equi_keys(self):
        recipe = JoinRecipe("x", "y", EQ)
        assert recipe.hashable
        assert recipe.equi_left == [B.attr(B.var("x"), "a")]
        assert recipe.equi_right == [B.attr(B.var("y"), "d")]
        assert recipe.residual == A.Literal(True)

    def test_orients_swapped_sides(self):
        swapped = B.eq(B.attr(B.var("y"), "d"), B.attr(B.var("x"), "a"))
        recipe = JoinRecipe("x", "y", swapped)
        assert recipe.equi_left == [B.attr(B.var("x"), "a")]

    def test_multiple_keys(self):
        pred = B.conj(EQ, B.eq(B.attr(B.var("x"), "b"), B.attr(B.var("y"), "e")))
        recipe = JoinRecipe("x", "y", pred)
        assert len(recipe.equi_left) == 2

    def test_residual_kept(self):
        pred = B.conj(EQ, B.gt(B.attr(B.var("y"), "e"), 1))
        recipe = JoinRecipe("x", "y", pred)
        assert recipe.equi_left and recipe.residual != A.Literal(True)

    def test_membership_left_set(self):
        recipe = JoinRecipe("x", "y", MEMBER)
        assert recipe.membership is not None
        assert recipe.membership[2] == "left-set"

    def test_membership_right_set(self):
        pred = B.member(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "members"))
        recipe = JoinRecipe("x", "y", pred)
        assert recipe.membership is not None
        assert recipe.membership[2] == "right-set"

    def test_non_equi_not_hashable(self):
        pred = B.lt(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))
        recipe = JoinRecipe("x", "y", pred)
        assert not recipe.hashable
        assert recipe.residual == pred

    def test_same_side_equality_is_residual(self):
        pred = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("x"), "b"))
        recipe = JoinRecipe("x", "y", pred)
        assert not recipe.hashable


class TestOperatorSelection:
    def plan(self, expr):
        return Planner().plan(expr)

    def test_extent_becomes_scan(self):
        assert isinstance(self.plan(B.extent("X")), P.Scan)

    def test_select_becomes_filter(self):
        plan = self.plan(B.sel("x", B.lit(True), B.extent("X")))
        assert isinstance(plan, P.Filter)

    def test_equi_join_hash(self):
        plan = self.plan(B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ))
        assert isinstance(plan, P.HashJoinBase)

    def test_membership_join(self):
        plan = self.plan(B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", MEMBER))
        assert isinstance(plan, P.MembershipHashJoin)

    def test_non_equi_falls_back_to_nested_loop(self):
        pred = B.lt(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))
        plan = self.plan(B.join(B.extent("X"), B.extent("Y"), "x", "y", pred))
        assert isinstance(plan, P.NestedLoopJoin)

    def test_equi_preferred_over_membership(self):
        pred = B.conj(EQ, MEMBER)
        plan = self.plan(B.join(B.extent("X"), B.extent("Y"), "x", "y", pred))
        assert isinstance(plan, P.HashJoinBase)

    def test_pipeline_operators(self):
        assert isinstance(self.plan(B.project(B.extent("Y"), "d")), P.ProjectOp)
        assert isinstance(self.plan(B.rename(B.extent("Y"), d="k")), P.RenameOp)
        assert isinstance(self.plan(B.unnest(B.extent("X"), "c")), P.UnnestOp)
        assert isinstance(self.plan(B.nest(B.extent("Y"), ["e"], "g")), P.NestOp)
        assert isinstance(self.plan(B.flatten(B.amap("x", B.attr(B.var("x"), "c"), B.extent("X")))), P.FlattenOp)
        assert isinstance(self.plan(B.union(B.extent("X"), B.extent("Y"))), P.SetOp)
        assert isinstance(self.plan(B.cart(B.extent("X"), B.extent("Y"))), P.CartesianProduct)
        assert isinstance(self.plan(B.division(B.extent("Y"), B.project(B.extent("Y"), "e"))), P.DivisionOp)

    def test_materialize_op(self):
        plan = self.plan(B.materialize(B.extent("X"), "ref", "obj", "Part"))
        assert isinstance(plan, P.MaterializeOp)

    def test_literal_set_becomes_eval_leaf(self):
        assert isinstance(self.plan(B.setexpr(1, 2)), P.EvalExpr)


class TestExecutorEquivalence:
    """End-to-end: the planned execution equals the naive interpreter on a
    mix of expressions (operator selection must never change results)."""

    CASES = [
        B.sel("x", B.gt(B.attr(B.var("x"), "a"), 1), B.extent("X")),
        B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ),
        B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", EQ),
        B.antijoin(B.extent("X"), B.extent("Y"), "x", "y", EQ),
        B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", MEMBER),
        B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", EQ, "g"),
        B.project(B.extent("Y"), "d"),
        B.nest(B.extent("Y"), ["e"], "g"),
        B.unnest(B.nest(B.extent("Y"), ["e"], "g"), "g"),
        B.union(B.project(B.extent("Y"), "d"), B.project(B.extent("Y"), "d")),
        B.amap("x", B.count(B.attr(B.var("x"), "c")), B.extent("X")),
    ]

    @pytest.mark.parametrize("expr", CASES, ids=[str(i) for i in range(len(CASES))])
    def test_planned_equals_naive(self, db, expr):
        from repro.engine.interpreter import Interpreter

        assert Executor(db).execute(expr) == Interpreter(db).eval(expr)

    def test_explain_smoke(self, db):
        text = Executor(db).explain(
            B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", EQ)
        )
        assert "HashJoin(semijoin)" in text
