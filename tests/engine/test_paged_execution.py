"""Physical plans over the *paged* store: I/O accounting end to end.

The algebra-level tests use MemoryDatabase; these check the execution
engine against the paged Database — scans charge page reads, repeated
operand scans charge repeatedly, and the full OOSQL pipeline works on
paged storage.
"""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.engine.interpreter import Interpreter
from repro.engine.plan import ExecRuntime, HashJoinBase, NestedLoopJoin, Scan
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.rewrite.strategy import Optimizer
from repro.translate import compile_oosql
from repro.workload.generator import generate_database


@pytest.fixture()
def db():
    return generate_database(
        n_parts=40, n_suppliers=15, n_deliveries=25, seed=11, page_size=512
    )


class TestScanIO:
    def test_scan_charges_pages(self, db):
        db.reset_io()
        Scan("PART").execute(ExecRuntime(db, Stats()))
        assert db.io.pages_read == db.page_count("PART") > 1

    def test_each_join_operand_scanned_once(self, db):
        db.reset_io()
        plan = HashJoinBase(
            "semijoin", "d", "s",
            (B.attr(B.var("d"), "supplier"),), (B.attr(B.var("s"), "oid"),),
            A.Literal(True), Scan("DELIVERY"), Scan("SUPPLIER"),
        )
        plan.execute(ExecRuntime(db, Stats()))
        expected = db.page_count("DELIVERY") + db.page_count("SUPPLIER")
        assert db.io.pages_read == expected

    def test_nested_loop_join_also_scans_once(self, db):
        """Operands are materialized up-front: the NL penalty is CPU work,
        not repeated scans (both engines charge the same I/O)."""
        db.reset_io()
        plan = NestedLoopJoin(
            "semijoin", "d", "s",
            B.eq(B.attr(B.var("d"), "supplier"), B.attr(B.var("s"), "oid")),
            Scan("DELIVERY"), Scan("SUPPLIER"),
        )
        plan.execute(ExecRuntime(db, Stats()))
        expected = db.page_count("DELIVERY") + db.page_count("SUPPLIER")
        assert db.io.pages_read == expected


class TestEndToEndOnPagedStore:
    QUERIES = [
        'select p.pname from p in PART where p.color = "red"',
        "select s.sname from s in SUPPLIER "
        "where exists p in PART : p.oid in s.parts_supplied and p.price > 50",
        "select (n = s.sname, k = count(s.parts_supplied)) from s in SUPPLIER",
        "select d.supplier.sname from d in DELIVERY where d.date > 940180",
    ]

    @pytest.mark.parametrize("text", QUERIES, ids=[str(i) for i in range(len(QUERIES))])
    def test_paged_three_way_agreement(self, db, text):
        schema = db.schema
        adl = compile_oosql(text, schema)
        naive = Interpreter(db).eval(adl)
        result = Optimizer(schema).optimize(adl)
        planned = Executor(db).execute(result.expr)
        assert naive == planned

    def test_materialize_option_on_paged_store(self, db):
        schema = db.schema
        adl = compile_oosql(
            'select d.date from d in DELIVERY where d.supplier.sname = "s1"',
            schema,
        )
        result = Optimizer(schema, introduce_materialize=True).optimize(adl)
        assert any(isinstance(n, A.Materialize) for n in result.expr.walk())
        db.reset_io()
        planned = Executor(db).execute(result.expr)
        assembly_io = db.io.pages_read
        assert planned == Interpreter(db).eval(adl)
        assert assembly_io > 0

    def test_outerjoin_through_planner(self, db):
        supplier_attrs = tuple(sorted(db.schema.object_type("Supplier").fields))
        expr = A.OuterJoin(
            B.extent("DELIVERY"),
            B.extent("SUPPLIER"),
            "d", "s",
            B.eq(B.attr(B.var("d"), "supplier"), B.attr(B.var("s"), "oid")),
            supplier_attrs,
        )
        # attribute clash: DELIVERY and SUPPLIER both have 'oid' — rename first
        renamed = A.OuterJoin(
            B.rename(B.extent("DELIVERY"), oid="doid"),
            B.extent("SUPPLIER"),
            "d", "s",
            B.eq(B.attr(B.var("d"), "supplier"), B.attr(B.var("s"), "oid")),
            supplier_attrs,
        )
        naive = Interpreter(db).eval(renamed)
        planned = Executor(db).execute(renamed)
        assert naive == planned
        assert len(planned) >= db.extent_size("DELIVERY")

    def test_work_counters_accumulate_across_operators(self, db):
        schema = db.schema
        adl = compile_oosql(self.QUERIES[1], schema)
        result = Optimizer(schema).optimize(adl)
        stats = Stats()
        Executor(db, stats).execute(result.expr)
        assert stats.hash_inserts > 0 or stats.hash_probes > 0
        assert stats.tuples_visited > 0
