"""Unit tests for the reference interpreter — the semantics of ADL."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import (
    EvaluationError,
    Oid,
    UnboundVariableError,
    UnknownExtentError,
    VTuple,
    vset,
)
from repro.engine.interpreter import Interpreter, evaluate
from repro.engine.stats import Stats
from repro.storage import MemoryDatabase


@pytest.fixture()
def db():
    return MemoryDatabase(
        {
            "X": [VTuple(a=1, b=10), VTuple(a=2, b=20), VTuple(a=3, b=30)],
            "Y": [VTuple(d=1, e=1), VTuple(d=1, e=2), VTuple(d=3, e=3)],
        }
    )


def run(expr, db, env=None):
    return evaluate(expr, db, env)


class TestAtoms:
    def test_literal(self, db):
        assert run(B.lit(42), db) == 42

    def test_var(self, db):
        assert run(B.var("v"), db, {"v": 7}) == 7

    def test_unbound_var(self, db):
        with pytest.raises(UnboundVariableError):
            run(B.var("v"), db)

    def test_extent(self, db):
        assert len(run(B.extent("X"), db)) == 3

    def test_unknown_extent(self, db):
        with pytest.raises(UnknownExtentError):
            run(B.extent("GHOST"), db)


class TestTupleOps:
    def test_attr_access(self, db):
        assert run(B.attr(B.var("t"), "a"), db, {"t": VTuple(a=5)}) == 5

    def test_attr_access_derefs_oid(self):
        row = VTuple(oid=Oid("C", 1), v=42)
        db = MemoryDatabase({"C": [row]})
        assert run(B.attr(B.var("r"), "v"), db, {"r": Oid("C", 1)}) == 42

    def test_tuple_construction(self, db):
        assert run(B.tup(a=1, b=B.lit("x")), db) == VTuple(a=1, b="x")

    def test_set_construction_dedups(self, db):
        assert run(B.setexpr(1, 1, 2), db) == vset(1, 2)

    def test_subscript(self, db):
        assert run(B.subscript(B.var("t"), "a"), db, {"t": VTuple(a=1, b=2)}) == VTuple(a=1)

    def test_update_except(self, db):
        out = run(B.tupdate(B.var("t"), b=B.lit(9), c=B.lit(3)), db, {"t": VTuple(a=1, b=2)})
        assert out == VTuple(a=1, b=9, c=3)

    def test_concat(self, db):
        out = run(A.Concat(B.var("l"), B.var("r")), db, {"l": VTuple(a=1), "r": VTuple(b=2)})
        assert out == VTuple(a=1, b=2)


class TestScalarOps:
    def test_arithmetic(self, db):
        assert run(B.add(2, 3), db) == 5
        assert run(B.sub(2, 3), db) == -1
        assert run(B.mul(2, 3), db) == 6
        assert run(A.Arith("/", B.lit(7), B.lit(2)), db) == 3.5
        assert run(A.Arith("mod", B.lit(7), B.lit(2)), db) == 1

    def test_division_by_zero(self, db):
        with pytest.raises(EvaluationError, match="zero"):
            run(A.Arith("/", B.lit(1), B.lit(0)), db)

    def test_arithmetic_on_bool_rejected(self, db):
        with pytest.raises(EvaluationError):
            run(B.add(B.lit(True), 1), db)

    def test_neg(self, db):
        assert run(A.Neg(B.lit(4)), db) == -4

    def test_comparisons(self, db):
        assert run(B.eq(1, 1), db) is True
        assert run(B.neq(1, 2), db) is True
        assert run(B.lt(1, 2), db) is True
        assert run(B.ge(2, 2), db) is True

    def test_equality_works_on_sets_and_tuples(self, db):
        assert run(B.eq(B.setexpr(1, 2), B.setexpr(2, 1)), db) is True
        assert run(B.eq(B.tup(a=1), B.tup(a=1)), db) is True

    def test_ordered_comparison_across_types_rejected(self, db):
        with pytest.raises(EvaluationError):
            run(B.lt(B.lit(1), B.lit("x")), db)

    def test_set_comparisons(self, db):
        assert run(B.subseteq(B.setexpr(1), B.setexpr(1, 2)), db) is True
        assert run(B.subset(B.setexpr(1, 2), B.setexpr(1, 2)), db) is False
        assert run(B.supseteq(B.setexpr(1, 2), B.setexpr(1)), db) is True
        assert run(B.supset(B.setexpr(1, 2), B.setexpr(1, 2)), db) is False
        assert run(B.seteq(B.setexpr(1), B.setexpr(1)), db) is True
        assert run(B.member(1, B.setexpr(1, 2)), db) is True
        assert run(B.not_member(3, B.setexpr(1, 2)), db) is True
        assert run(B.ni(B.setexpr(B.setexpr(1)), B.setexpr(1)), db) is True
        assert run(B.disjoint(B.setexpr(1), B.setexpr(2)), db) is True

    def test_set_comparison_type_errors(self, db):
        with pytest.raises(EvaluationError):
            run(B.member(1, B.lit(2)), db)
        with pytest.raises(EvaluationError):
            run(B.subseteq(B.lit(1), B.setexpr()), db)


class TestBooleanAndQuantifiers:
    def test_short_circuit_and(self, db):
        # right side would fail if evaluated
        expr = A.And(B.lit(False), A.Arith("/", B.lit(1), B.lit(0)))
        assert run(expr, db) is False

    def test_short_circuit_or(self, db):
        expr = A.Or(B.lit(True), A.Arith("/", B.lit(1), B.lit(0)))
        assert run(expr, db) is True

    def test_non_boolean_condition_rejected(self, db):
        with pytest.raises(EvaluationError):
            run(A.And(B.lit(1), B.lit(True)), db)

    def test_exists(self, db):
        expr = B.exists("y", B.extent("Y"), B.eq(B.attr(B.var("y"), "e"), 3))
        assert run(expr, db) is True
        expr = B.exists("y", B.extent("Y"), B.eq(B.attr(B.var("y"), "e"), 99))
        assert run(expr, db) is False

    def test_exists_over_empty_is_false(self, db):
        assert run(B.exists("y", B.setexpr(), B.lit(True)), db) is False

    def test_forall_over_empty_is_true(self, db):
        assert run(B.forall("y", B.setexpr(), B.lit(False)), db) is True

    def test_forall(self, db):
        expr = B.forall("y", B.extent("Y"), B.gt(B.attr(B.var("y"), "e"), 0))
        assert run(expr, db) is True

    def test_isempty(self, db):
        assert run(B.is_empty(B.setexpr()), db) is True
        assert run(B.is_empty(B.setexpr(1)), db) is False


class TestIterators:
    def test_select(self, db):
        expr = B.sel("x", B.gt(B.attr(B.var("x"), "a"), 1), B.extent("X"))
        assert run(expr, db) == vset(VTuple(a=2, b=20), VTuple(a=3, b=30))

    def test_map(self, db):
        expr = B.amap("x", B.attr(B.var("x"), "a"), B.extent("X"))
        assert run(expr, db) == vset(1, 2, 3)

    def test_map_can_produce_complex_results(self, db):
        expr = B.amap("x", B.tup(k=B.attr(B.var("x"), "a"), s=B.setexpr(B.attr(B.var("x"), "b"))),
                      B.extent("X"))
        assert VTuple(k=1, s=vset(10)) in run(expr, db)

    def test_project(self, db):
        assert run(B.project(B.extent("Y"), "d"), db) == vset(VTuple(d=1), VTuple(d=3))

    def test_rename(self, db):
        out = run(B.rename(B.extent("X"), a="k"), db)
        assert VTuple(k=1, b=10) in out

    def test_rename_missing_attr(self, db):
        with pytest.raises(EvaluationError):
            run(B.rename(B.extent("X"), ghost="k"), db)


class TestRestructuring:
    def test_flatten(self, db):
        expr = B.flatten(B.setexpr(B.setexpr(1, 2), B.setexpr(2, 3)))
        assert run(expr, db) == vset(1, 2, 3)

    def test_flatten_non_set_member(self, db):
        with pytest.raises(EvaluationError):
            run(B.flatten(B.setexpr(1)), db)

    def test_unnest(self):
        db = MemoryDatabase({"N": [VTuple(a=1, c=vset(VTuple(d=1), VTuple(d=2))),
                                   VTuple(a=2, c=frozenset())]})
        out = run(B.unnest(B.extent("N"), "c"), db)
        assert out == vset(VTuple(a=1, d=1), VTuple(a=1, d=2))
        # the empty-set tuple disappears: the paper's caveat

    def test_nest(self, db):
        out = run(B.nest(B.extent("Y"), ["e"], "grp"), db)
        assert out == vset(
            VTuple(d=1, grp=vset(VTuple(e=1), VTuple(e=2))),
            VTuple(d=3, grp=vset(VTuple(e=3))),
        )

    def test_nest_unnest_inverse_on_pnf_without_empties(self, db):
        nested = B.nest(B.extent("Y"), ["e"], "grp")
        roundtrip = B.unnest(nested, "grp")
        assert run(roundtrip, db) == run(B.extent("Y"), db)


class TestJoins:
    def test_cartesian(self, db):
        out = run(B.cart(B.extent("X"), B.extent("Y")), db)
        assert len(out) == 9

    def test_join(self, db):
        expr = B.join(B.extent("X"), B.extent("Y"), "x", "y",
                      B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")))
        out = run(expr, db)
        assert len(out) == 3  # a=1 matches d=1 twice, a=3 matches once

    def test_semijoin(self, db):
        expr = B.semijoin(B.extent("X"), B.extent("Y"), "x", "y",
                          B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")))
        assert run(expr, db) == vset(VTuple(a=1, b=10), VTuple(a=3, b=30))

    def test_antijoin(self, db):
        expr = B.antijoin(B.extent("X"), B.extent("Y"), "x", "y",
                          B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")))
        assert run(expr, db) == vset(VTuple(a=2, b=20))

    def test_semijoin_antijoin_partition_left(self, db):
        pred = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))
        semi = run(B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", pred), db)
        anti = run(B.antijoin(B.extent("X"), B.extent("Y"), "x", "y", pred), db)
        assert semi | anti == run(B.extent("X"), db)
        assert not (semi & anti)

    def test_outerjoin_pads_with_null(self, db):
        expr = B.outerjoin(B.extent("X"), B.extent("Y"), "x", "y",
                           B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")),
                           ["d", "e"])
        out = run(expr, db)
        dangling = [t for t in out if t["d"] is None]
        assert len(dangling) == 1 and dangling[0]["a"] == 2

    def test_nestjoin_keeps_dangling_with_empty_group(self, db):
        expr = B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y",
                          B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")), "ys")
        out = run(expr, db)
        by_a = {t["a"]: t["ys"] for t in out}
        assert len(by_a[1]) == 2
        assert by_a[2] == frozenset()
        assert len(by_a[3]) == 1

    def test_nestjoin_result_function(self, db):
        expr = B.nestjoin(
            B.extent("X"), B.extent("Y"), "x", "y",
            B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")),
            "es", result=B.attr(B.var("y"), "e"),
        )
        out = run(expr, db)
        by_a = {t["a"]: t["es"] for t in out}
        assert by_a[1] == vset(1, 2)

    def test_division(self, db):
        # dividend: all (d, e) pairs; divisor: {e=1, e=2} -> d values
        # covering both
        divisor = B.setexpr(B.tup(e=1), B.tup(e=2))
        out = run(B.division(B.extent("Y"), divisor), db)
        assert out == vset(VTuple(d=1))

    def test_division_by_empty(self, db):
        out = run(B.division(B.extent("Y"), B.setexpr()), db)
        assert out == run(B.extent("Y"), db)


class TestSetAlgebraAndAggregates:
    def test_union_intersect_difference(self, db):
        a, b = B.setexpr(1, 2), B.setexpr(2, 3)
        assert run(B.union(a, b), db) == vset(1, 2, 3)
        assert run(B.intersect(a, b), db) == vset(2)
        assert run(B.difference(a, b), db) == vset(1)

    def test_count(self, db):
        assert run(B.count(B.extent("X")), db) == 3
        assert run(B.count(B.setexpr()), db) == 0

    def test_sum_min_max_avg(self, db):
        values = B.amap("x", B.attr(B.var("x"), "b"), B.extent("X"))
        assert run(B.agg("sum", values), db) == 60
        assert run(B.agg("min", values), db) == 10
        assert run(B.agg("max", values), db) == 30
        assert run(B.agg("avg", values), db) == 20

    def test_sum_of_empty_is_zero(self, db):
        assert run(B.agg("sum", B.setexpr()), db) == 0

    def test_min_of_empty_raises(self, db):
        with pytest.raises(EvaluationError, match="empty"):
            run(B.agg("min", B.setexpr()), db)

    def test_aggregate_over_non_atoms_rejected(self, db):
        with pytest.raises(EvaluationError):
            run(B.agg("sum", B.extent("X")), db)


class TestMaterializeEval:
    def test_single_reference(self):
        part = VTuple(oid=Oid("Part", 0), pname="a")
        src = VTuple(ref=Oid("Part", 0), k=1)
        db = MemoryDatabase({"PART": [part], "S": [src]})
        out = run(B.materialize(B.extent("S"), "ref", "obj", "Part"), db)
        (row,) = out
        assert row["obj"] == part

    def test_set_of_references(self):
        parts = [VTuple(oid=Oid("Part", i), pname=f"p{i}") for i in range(2)]
        src = VTuple(refs=vset(Oid("Part", 0), Oid("Part", 1)))
        db = MemoryDatabase({"PART": parts, "S": [src]})
        out = run(B.materialize(B.extent("S"), "refs", "objs", "Part"), db)
        (row,) = out
        assert row["objs"] == frozenset(parts)

    def test_counts_derefs(self):
        part = VTuple(oid=Oid("Part", 0), pname="a")
        db = MemoryDatabase({"PART": [part], "S": [VTuple(ref=Oid("Part", 0))]})
        stats = Stats()
        Interpreter(db, stats).eval(B.materialize(B.extent("S"), "ref", "obj", "Part"))
        assert stats.oid_derefs == 1


class TestInstrumentation:
    def test_nested_loop_predicate_count_is_quadratic(self, db):
        stats = Stats()
        expr = B.sel(
            "x",
            B.exists("y", B.extent("Y"), B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))),
            B.extent("X"),
        )
        Interpreter(db, stats).eval(expr)
        # 3 outer tuples, up to 3 inner each; short-circuiting reduces a bit
        assert stats.predicate_evals >= 3 + 3  # at least outer + some inner
        assert stats.tuples_visited >= 6
