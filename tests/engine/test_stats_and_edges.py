"""Edge cases: Stats arithmetic, runtime error paths, explain output."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import EvaluationError, VTuple, vset
from repro.engine.interpreter import Interpreter
from repro.engine.plan import EvalExpr, ExecRuntime, Scan
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.storage import MemoryDatabase


@pytest.fixture()
def db():
    return MemoryDatabase({"X": [VTuple(a=1, c=vset(1, 2))]})


class TestStats:
    def test_addition(self):
        a, b = Stats(), Stats()
        a.predicate_evals = 3
        a.hash_probes = 1
        b.predicate_evals = 2
        merged = a + b
        assert merged.predicate_evals == 5
        assert merged.hash_probes == 1
        # operands untouched
        assert a.predicate_evals == 3 and b.predicate_evals == 2

    def test_addition_type_error(self):
        with pytest.raises(TypeError):
            Stats() + 3

    def test_reset_and_snapshot(self):
        s = Stats()
        s.tuples_visited = 7
        snap = s.snapshot()
        assert snap["tuples_visited"] == 7
        s.reset()
        assert s.total_work() == 0

    def test_repr_shows_nonzero_only(self):
        s = Stats()
        s.oid_derefs = 2
        text = repr(s)
        assert "oid_derefs=2" in text
        assert "hash_probes" not in text

    def test_total_work_excludes_output(self):
        s = Stats()
        s.output_tuples = 100
        assert s.total_work() == 0


class TestRuntimeErrorPaths:
    def test_eval_pred_requires_boolean(self, db):
        rt = ExecRuntime(db, Stats())
        with pytest.raises(EvaluationError, match="non-boolean"):
            rt.eval_pred(B.lit(1), {})

    def test_interpreter_rejects_unknown_nodes(self, db):
        class Rogue(A.Expr):
            pass

        with pytest.raises(EvaluationError, match="no evaluation rule"):
            Interpreter(db).eval(Rogue())

    def test_attr_access_on_atom(self, db):
        with pytest.raises(EvaluationError):
            Interpreter(db).eval(B.attr(B.lit(3), "a"))

    def test_select_over_non_set(self, db):
        with pytest.raises(EvaluationError, match="set"):
            Interpreter(db).eval(B.sel("x", B.lit(True), B.lit(3)))

    def test_quantifier_over_non_set(self, db):
        with pytest.raises(EvaluationError):
            Interpreter(db).eval(B.exists("x", B.lit(3), B.lit(True)))


class TestExplain:
    def test_nested_explain_indents(self, db):
        expr = B.project(B.sel("x", B.gt(B.attr(B.var("x"), "a"), 0), B.extent("X")), "a")
        text = Executor(db).explain(expr)
        lines = text.splitlines()
        assert lines[0].startswith("Project")
        assert lines[1].startswith("  Filter")
        assert lines[2].startswith("    Scan")

    def test_eval_leaf_truncates_long_descriptions(self, db):
        big = B.setexpr(*(B.lit(i) for i in range(60)))
        leaf = EvalExpr(big)
        assert len(leaf.describe()) <= 63

    def test_operators_iterator(self, db):
        expr = B.sel("x", B.lit(True), B.extent("X"))
        plan = Executor(db).planner.plan(expr)
        kinds = [type(op).__name__ for op in plan.operators()]
        assert kinds == ["Filter", "Scan"]


class TestEvalLeafIntegration:
    def test_plan_with_literal_set_leaf(self, db):
        expr = B.union(B.amap("x", B.attr(B.var("x"), "a"), B.extent("X")),
                       B.setexpr(9))
        out = Executor(db).execute(expr)
        assert out == vset(1, 9)

    def test_division_by_literal_divisor(self, db):
        db2 = MemoryDatabase({
            "R": [VTuple(d=1, e=1), VTuple(d=1, e=2), VTuple(d=2, e=1)],
        })
        divisor = B.setexpr(B.tup(e=1), B.tup(e=2))
        out = Executor(db2).execute(B.division(B.extent("R"), divisor))
        assert out == vset(VTuple(d=1))
