"""Streaming/materialized parity: for every physical operator class, the
streaming interface (``iterate``) and the materializing wrapper
(``execute``) must produce the same set AND the same work counters, and
the pre-streaming baseline engine (``ExecRuntime(materialized=True,
compile_exprs=False)``) must agree on the result set."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import MissingAttributeError, VTuple, vset
from repro.engine.nestjoin_impls import SortMergeNestJoin
from repro.engine.plan import (
    CartesianProduct,
    DivisionOp,
    EvalExpr,
    ExecRuntime,
    Filter,
    FlattenOp,
    HashJoinBase,
    IndexNestedLoopJoin,
    IndexScan,
    MapOp,
    MaterializeOp,
    MembershipHashJoin,
    NestOp,
    NestedLoopJoin,
    PlanNode,
    ProjectOp,
    RenameOp,
    Scan,
    SetOp,
    SortMergeJoin,
    UnnestOp,
)
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.shard import Exchange, PartitionedHashJoin, PartitionedScan, ShardRef
from repro.shred import StitchNest
from repro.storage import Catalog, MemoryDatabase
from repro.workload.generator import generate_database

TRUE = A.Literal(True)
EQ = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))
XA = (B.attr(B.var("x"), "a"),)
YD = (B.attr(B.var("y"), "d"),)


def flat_db():
    return MemoryDatabase(
        {
            "X": [VTuple(a=1, b=10), VTuple(a=2, b=20), VTuple(a=3, b=30)],
            "Y": [VTuple(d=1, e=1), VTuple(d=1, e=2), VTuple(d=3, e=3)],
            "Y2": [VTuple(d=1, e=1), VTuple(d=9, e=9)],
            "NESTED": [
                VTuple(k=1, ms=vset(VTuple(m=1), VTuple(m=2))),
                VTuple(k=2, ms=frozenset()),
            ],
            "SETS": [vset(1, 2), vset(2, 3), frozenset()],
            "DIV": [VTuple(a=1, d=1), VTuple(a=1, d=3), VTuple(a=2, d=1)],
            "DIVISOR": [VTuple(d=1), VTuple(d=3)],
            "S": [
                VTuple(s=1, parts=vset(10, 20)),
                VTuple(s=2, parts=vset(30)),
                VTuple(s=3, parts=frozenset()),
            ],
            "P": [VTuple(pid=10), VTuple(pid=20), VTuple(pid=99)],
        }
    )


def paged_db():
    return generate_database(
        n_parts=20, n_suppliers=8, n_deliveries=10, seed=3, page_size=512
    )


def indexed_db():
    """flat_db plus a catalog with indexes (registered on the db itself,
    which is how ExecRuntime finds it)."""
    db = flat_db()
    catalog = Catalog(db)
    catalog.analyze(["X", "Y"])
    catalog.create_index("X", "a")
    catalog.create_index("Y", "d")
    return db


def partitioned_db():
    """flat_db plus registered 2-way partitionings of X and Y."""
    db = flat_db()
    catalog = Catalog(db)
    catalog.analyze(["X", "Y"])
    catalog.partition("X", "a", 2)
    catalog.partition("Y", "d", 2)
    return db


def _partition_wise_join():
    import dataclasses

    from repro.shard.fragment import LEFT_PLACEHOLDER, RIGHT_PLACEHOLDER, rebind_extent

    expr = B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ)
    template = dataclasses.replace(
        expr,
        left=rebind_extent(expr.left, LEFT_PLACEHOLDER),
        right=rebind_extent(expr.right, RIGHT_PLACEHOLDER),
    )
    bindings = [
        {
            LEFT_PLACEHOLDER: ShardRef("X", "a", 2, i),
            RIGHT_PLACEHOLDER: ShardRef("Y", "d", 2, i),
        }
        for i in range(2)
    ]
    return PartitionedHashJoin(
        "join", "x", "y", EQ, "partition-wise", 2, template, bindings,
        PartitionedScan("X", "a", 2), PartitionedScan("Y", "d", 2),
    )


# one representative instance per operator class; (factory, db factory)
CASES = {
    "Scan": (lambda: Scan("X"), flat_db),
    "EvalExpr": (
        lambda: EvalExpr(B.sel("x", B.gt(B.attr(B.var("x"), "a"), 1), B.extent("X"))),
        flat_db,
    ),
    "Filter": (
        lambda: Filter("x", B.gt(B.attr(B.var("x"), "a"), 1), Scan("X")),
        flat_db,
    ),
    "MapOp": (
        lambda: MapOp("x", B.tup(v=B.attr(B.var("x"), "a")), Scan("X")),
        flat_db,
    ),
    "ProjectOp": (lambda: ProjectOp(("a",), Scan("X")), flat_db),
    "RenameOp": (lambda: RenameOp((("a", "z"),), Scan("X")), flat_db),
    "UnnestOp": (lambda: UnnestOp("ms", Scan("NESTED")), flat_db),
    "NestOp": (lambda: NestOp(("e",), "es", Scan("Y")), flat_db),
    "FlattenOp": (lambda: FlattenOp(Scan("SETS")), flat_db),
    "SetOp-union": (lambda: SetOp("union", Scan("Y"), Scan("Y2")), flat_db),
    "SetOp-intersect": (lambda: SetOp("intersect", Scan("Y"), Scan("Y2")), flat_db),
    "SetOp-difference": (lambda: SetOp("difference", Scan("Y"), Scan("Y2")), flat_db),
    "CartesianProduct": (lambda: CartesianProduct(Scan("X"), Scan("Y")), flat_db),
    "DivisionOp": (lambda: DivisionOp(Scan("DIV"), Scan("DIVISOR")), flat_db),
    "SortMergeJoin": (
        lambda: SortMergeJoin(
            "x", "y", XA[0], YD[0], TRUE, Scan("X"), Scan("Y")
        ),
        flat_db,
    ),
    "SortMergeNestJoin": (
        lambda: SortMergeNestJoin(
            "x", "y", XA[0], YD[0], TRUE, Scan("X"), Scan("Y"), "g", A.Var("y")
        ),
        flat_db,
    ),
    "MaterializeOp": (
        lambda: MaterializeOp("parts_supplied", "objs", "Part", Scan("SUPPLIER")),
        paged_db,
    ),
    "MembershipHashJoin-left-set": (
        lambda: MembershipHashJoin(
            "semijoin", "s", "p",
            B.attr(B.var("p"), "pid"), B.attr(B.var("s"), "parts"),
            "left-set", TRUE, Scan("S"), Scan("P"),
        ),
        flat_db,
    ),
    "MembershipHashJoin-right-set": (
        lambda: MembershipHashJoin(
            "join", "p", "s",
            B.attr(B.var("p"), "pid"), B.attr(B.var("s"), "parts"),
            "right-set", TRUE, Scan("P"), Scan("S"),
        ),
        flat_db,
    ),
    "IndexScan": (lambda: IndexScan("X", "a", B.lit(1), "idx_X_a"), indexed_db),
    "HashJoinBase-build-left": (
        lambda: HashJoinBase(
            "join", "x", "y", XA, YD, TRUE, Scan("X"), Scan("Y"),
            build_side="left",
        ),
        flat_db,
    ),
    # PR 5: partition-parallel operators (inline fragment execution; the
    # pool path runs the identical execute_fragment and is parity-tested
    # in tests/shard/test_parallel_parity.py)
    "PartitionedScan": (lambda: PartitionedScan("X", "a", 2), partitioned_db),
    "Exchange-gather": (
        lambda: Exchange("gather", PartitionedScan("X", "a", 2), 2),
        partitioned_db,
    ),
    "Exchange-broadcast": (
        lambda: Exchange("broadcast", Scan("Y"), 2),
        partitioned_db,
    ),
    "Exchange-repartition": (
        lambda: Exchange("repartition", Scan("Y"), 2, key_attr="d"),
        partitioned_db,
    ),
    "PartitionedHashJoin": (_partition_wise_join, partitioned_db),
    "Exchange-gather-join": (
        lambda: Exchange("gather", _partition_wise_join(), 2),
        partitioned_db,
    ),
    # PR 9: the stitch reassembling a shredded nestjoin — outer re-stream
    # over the consumed inner flat join (full matrix in tests/shred/)
    "StitchNest": (
        lambda: StitchNest(
            "x", "y", "ys", A.Var("y"), ("a", "b"),
            Scan("X"),
            HashJoinBase("join", "x", "y", XA, YD, TRUE, Scan("X"), Scan("Y")),
        ),
        flat_db,
    ),
}

for kind in ("join", "semijoin", "antijoin", "outerjoin", "nestjoin"):
    extra = {}
    if kind == "outerjoin":
        extra = {"right_attrs": ("d", "e")}
    elif kind == "nestjoin":
        extra = {"as_attr": "ys", "result": A.Var("y")}
    CASES[f"NestedLoopJoin-{kind}"] = (
        lambda kind=kind, extra=extra: NestedLoopJoin(
            kind, "x", "y", EQ, Scan("X"), Scan("Y"), **extra
        ),
        flat_db,
    )
    CASES[f"HashJoinBase-{kind}"] = (
        lambda kind=kind, extra=extra: HashJoinBase(
            kind, "x", "y", XA, YD, TRUE, Scan("X"), Scan("Y"), **extra
        ),
        flat_db,
    )
    CASES[f"IndexNestedLoopJoin-{kind}"] = (
        lambda kind=kind, extra=extra: IndexNestedLoopJoin(
            kind, "x", "y", XA[0], "Y", "d", "idx_Y_d", TRUE, Scan("X"), **extra
        ),
        indexed_db,
    )


class TestIterateExecuteParity:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_same_result_and_counters(self, name):
        factory, db_factory = CASES[name]
        db = db_factory()

        stream_stats = Stats()
        streamed = frozenset(factory().iterate(ExecRuntime(db, stream_stats)))

        exec_stats = Stats()
        executed = factory().execute(ExecRuntime(db, exec_stats))

        assert streamed == executed, name
        assert stream_stats.snapshot() == exec_stats.snapshot(), name

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_baseline_engine_agrees(self, name):
        """The materializing + interpreted engine computes the same set."""
        factory, db_factory = CASES[name]
        db = db_factory()
        baseline = factory().execute(
            ExecRuntime(db, Stats(), materialized=True, compile_exprs=False)
        )
        streaming = factory().execute(ExecRuntime(db, Stats()))
        assert baseline == streaming, name

    def test_every_plan_node_class_is_covered(self):
        """Future operator classes must join the parity matrix."""

        def subclasses(cls):
            for sub in cls.__subclasses__():
                yield sub
                yield from subclasses(sub)

        tested = {type(factory()) for factory, _ in CASES.values()}
        missing = {
            cls.__name__
            for cls in subclasses(PlanNode)
            if cls not in tested and not cls.__name__.startswith("_")
        }
        assert not missing, f"operators without parity coverage: {sorted(missing)}"


class TestStreamingBehaviour:
    def test_scan_streams_pages_lazily(self):
        db = paged_db()
        db.reset_io()
        it = Scan("PART").iterate(ExecRuntime(db, Stats()))
        next(it)
        assert db.io.pages_read < db.page_count("PART")

    def test_filter_stops_scanning_once_consumer_stops(self):
        db = paged_db()
        db.reset_io()
        it = Filter(
            "p", B.gt(B.attr(B.var("p"), "price"), 0), Scan("PART")
        ).iterate(ExecRuntime(db, Stats()))
        next(it)
        assert db.io.pages_read < db.page_count("PART")

    def test_pipeline_breaks_counted(self):
        db = flat_db()
        stats = Stats()
        HashJoinBase(
            "join", "x", "y", XA, YD, TRUE, Scan("X"), Scan("Y")
        ).execute(ExecRuntime(db, stats))
        assert stats.pipeline_breaks == 1  # the build side only

        stats = Stats()
        SortMergeJoin(
            "x", "y", XA[0], YD[0], TRUE, Scan("X"), Scan("Y")
        ).execute(ExecRuntime(db, stats))
        assert stats.pipeline_breaks == 2  # both sorts

        stats = Stats()
        Filter("x", TRUE, Scan("X")).execute(ExecRuntime(db, stats))
        assert stats.pipeline_breaks == 0  # fully pipelined

    def test_explain_marks_breakers(self):
        plan = HashJoinBase("join", "x", "y", XA, YD, TRUE, Scan("X"), Scan("Y"))
        text = plan.explain()
        assert "<builds right>" in text
        assert "Scan [X]" in text
        nest = NestOp(("e",), "es", Scan("Y"))
        assert "<groups input>" in nest.explain()
        assert "<" not in Filter("x", TRUE, Scan("X")).explain()

    def test_executor_iterate_streams_query_result(self):
        db = flat_db()
        expr = B.sel("x", B.gt(B.attr(B.var("x"), "a"), 1), B.extent("X"))
        executor = Executor(db)
        assert frozenset(executor.iterate(expr)) == executor.execute(expr)

    def test_materialized_runtime_still_streams_nothing(self):
        """Baseline mode consumes children via execute() — results equal."""
        db = flat_db()
        plan = Filter(
            "x", B.gt(B.attr(B.var("x"), "a"), 1),
            MapOp("x", B.var("x"), Scan("X")),
        )
        baseline = plan.execute(ExecRuntime(db, Stats(), materialized=True))
        assert baseline == plan.execute(ExecRuntime(db, Stats()))


class TestRenameMissingAttribute:
    def test_rename_missing_attribute_raises_missing_attribute_error(self):
        db = flat_db()
        plan = RenameOp((("nope", "z"),), Scan("X"))
        with pytest.raises(MissingAttributeError) as err:
            plan.execute(ExecRuntime(db, Stats()))
        assert "nope" in str(err.value)

    def test_rename_missing_attribute_is_catchable_as_datamodel_key(self):
        from repro.datamodel import DataModelError

        db = flat_db()
        plan = RenameOp((("nope", "z"),), Scan("X"))
        with pytest.raises(DataModelError):
            frozenset(plan.iterate(ExecRuntime(db, Stats())))
