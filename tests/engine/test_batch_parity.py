"""Batch/tuple parity (PR 8): every operator shape from the streaming
parity matrix re-run in batch mode against the tuple-mode oracle.

Batch mode must be invisible except for its own two counters: identical
result sets AND identical work counters (``batches_emitted`` /
``vector_fallbacks`` excluded — those exist only in batch mode), for
batch sizes of 1, a non-divisor of the input, the default, and one
larger than every input.  Plus: empty extents, and a hypothesis property
that kernel fallback triggers *exactly* on uncovered expression forms.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import VTuple
from repro.engine.compile import vector_covered
from repro.engine.plan import Batch, ExecRuntime, Filter, HashJoinBase, Scan
from repro.engine.stats import Stats
from repro.storage import MemoryDatabase

from tests.engine.test_streaming_parity import CASES, EQ, TRUE, XA, YD, flat_db

#: counters that only batch mode moves — everything else must match
BATCH_ONLY = ("batches_emitted", "vector_fallbacks")

#: 1 = every row its own batch; 7 = non-divisor of every input size;
#: 256 = the default; 10_000 = larger than any test input (one batch)
BATCH_SIZES = (1, 7, 256, 10_000)


def _snap(stats: Stats) -> dict:
    snap = stats.snapshot()
    for name in BATCH_ONLY:
        snap.pop(name, None)
    return snap


class TestBatchTupleParityMatrix:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_batch_matches_tuple_oracle(self, name, batch_size):
        factory, db_factory = CASES[name]
        oracle_stats = Stats()
        oracle = factory().execute(ExecRuntime(db_factory(), oracle_stats))
        stats = Stats()
        rows = factory().execute(
            ExecRuntime(db_factory(), stats, batch_size=batch_size)
        )
        assert rows == oracle, name
        assert _snap(stats) == _snap(oracle_stats), name

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_iterate_batches_flattens_to_oracle(self, name, batch_size):
        """The raw batch stream itself (not just execute) is row-equal."""
        factory, db_factory = CASES[name]
        oracle = factory().execute(ExecRuntime(db_factory(), Stats()))
        rt = ExecRuntime(db_factory(), Stats(), batch_size=batch_size)
        out = []
        for batch in factory().iterate_batches(rt):
            assert isinstance(batch, Batch)
            assert len(batch) >= 1, "empty batches must not be emitted"
            assert len(batch.rows) == len(batch)
            out.extend(batch.rows)
        assert frozenset(out) == oracle, name

    def test_batches_emitted_counted(self):
        db = flat_db()
        stats = Stats()
        Filter("x", TRUE, Scan("X")).execute(
            ExecRuntime(db, stats, batch_size=1)
        )
        assert stats.batches_emitted >= 3  # 3 X rows, one per batch


def empty_db():
    """Every extent the parity plans reference, all empty."""
    return MemoryDatabase(
        {
            name: []
            for name in (
                "X",
                "Y",
                "Y2",
                "NESTED",
                "SETS",
                "DIV",
                "DIVISOR",
                "S",
                "P",
            )
        }
    )


class TestEmptyExtents:
    #: every parity case built over the flat database, re-run on empty
    #: extents — batch mode must agree with tuple mode on nothing at all
    FLAT_CASES = sorted(
        name for name, (_, db_factory) in CASES.items() if db_factory is flat_db
    )

    @pytest.mark.parametrize("batch_size", (1, 256))
    @pytest.mark.parametrize("name", FLAT_CASES)
    def test_batch_parity_on_empty_extents(self, name, batch_size):
        factory, _ = CASES[name]
        oracle_stats = Stats()
        oracle = factory().execute(ExecRuntime(empty_db(), oracle_stats))
        stats = Stats()
        rows = factory().execute(
            ExecRuntime(empty_db(), stats, batch_size=batch_size)
        )
        assert rows == oracle, name
        assert _snap(stats) == _snap(oracle_stats), name


# -- fallback exactness (hypothesis) ----------------------------------------

#: covered forms: every node type in VECTOR_NODE_TYPES, only ``x`` free,
#: well-typed over rows ``(a: int, b: int)`` so no runtime bail fires
_int_expr = st.deferred(
    lambda: st.one_of(
        st.integers(min_value=-5, max_value=5).map(A.Literal),
        st.sampled_from(["a", "b"]).map(lambda at: A.AttrAccess(A.Var("x"), at)),
        st.tuples(st.sampled_from(["+", "-", "*"]), _int_expr, _int_expr).map(
            lambda t: A.Arith(t[0], t[1], t[2])
        ),
        _int_expr.map(A.Neg),
    )
)

_bool_expr = st.deferred(
    lambda: st.one_of(
        st.tuples(
            st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
            _int_expr,
            _int_expr,
        ).map(lambda t: A.Compare(t[0], t[1], t[2])),
        st.tuples(_bool_expr, _bool_expr).map(lambda t: A.And(t[0], t[1])),
        st.tuples(_bool_expr, _bool_expr).map(lambda t: A.Or(t[0], t[1])),
        _bool_expr.map(A.Not),
    )
)


def _uncover(pred: A.Expr) -> A.Expr:
    """Wrap a covered predicate in a semantically-transparent uncovered
    form: ``pred and exists(y in {t} : true)`` — ``Exists`` is not a
    vector node type, so coverage is lost while the value is unchanged."""
    exists_true = A.Exists(
        "y", A.Literal(frozenset({VTuple(z=1)})), A.Literal(True)
    )
    return A.And(pred, exists_true)


_ROWS = st.lists(
    st.builds(
        lambda a, b: VTuple(a=a, b=b),
        st.integers(min_value=-5, max_value=5),
        st.integers(min_value=-5, max_value=5),
    ),
    min_size=0,
    max_size=12,
    unique=True,
)


class TestFallbackExactness:
    @given(pred=_bool_expr)
    @settings(max_examples=60, deadline=None)
    def test_compile_batch_vectorizes_iff_covered(self, pred):
        """compile_batch returns a kernel exactly on vector_covered forms."""
        compiler = ExecRuntime(MemoryDatabase({"X": []}), Stats()).compiler
        assert vector_covered(pred, "x")
        assert compiler.compile_batch(pred, "x") is not None
        uncovered = _uncover(pred)
        assert not vector_covered(uncovered, "x")
        assert compiler.compile_batch(uncovered, "x") is None
        # referencing a variable other than the batch binder also uncovers
        assert not vector_covered(pred, "notx") or not _mentions_attr(pred)

    @given(pred=_bool_expr, rows=_ROWS)
    @settings(max_examples=60, deadline=None)
    def test_fallback_triggers_exactly_on_uncovered_forms(self, pred, rows):
        db = MemoryDatabase({"X": rows})

        def run(p, batch_size):
            stats = Stats()
            out = Filter("x", p, Scan("X")).execute(
                ExecRuntime(db, stats, batch_size=batch_size)
            )
            return out, stats

        oracle = Filter("x", pred, Scan("X")).execute(ExecRuntime(db, Stats()))

        covered_rows, covered_stats = run(pred, 256)
        assert covered_rows == oracle
        # covered + well-typed: the kernel never falls back
        assert covered_stats.vector_fallbacks == 0

        uncovered_rows, uncovered_stats = run(_uncover(pred), 256)
        assert uncovered_rows == oracle
        # uncovered: every batch goes through the tuple-wise fallback
        assert uncovered_stats.vector_fallbacks == (1 if rows else 0)


def _mentions_attr(expr: A.Expr) -> bool:
    if isinstance(expr, A.AttrAccess):
        return True
    for field in ("left", "right", "operand", "base"):
        child = getattr(expr, field, None)
        if child is not None and _mentions_attr(child):
            return True
    return False


class TestRuntimeBailParity:
    def test_mixed_type_batch_falls_back_and_matches_tuple_error(self):
        """A runtime anomaly mid-column re-runs element-wise: the error is
        exactly the tuple engine's, and the fallback is counted."""
        db = MemoryDatabase({"X": [VTuple(a=1), VTuple(a="zzz")]})
        pred = B.lt(B.attr(B.var("x"), "a"), B.lit(5))
        plan = Filter("x", pred, Scan("X"))

        tuple_err = batch_err = None
        try:
            plan.execute(ExecRuntime(db, Stats()))
        except Exception as exc:  # noqa: BLE001 - parity check
            tuple_err = (type(exc), str(exc))
        stats = Stats()
        try:
            plan.execute(ExecRuntime(db, stats, batch_size=256))
        except Exception as exc:  # noqa: BLE001 - parity check
            batch_err = (type(exc), str(exc))
        assert tuple_err is not None
        assert batch_err == tuple_err
        assert stats.vector_fallbacks == 1

    def test_join_key_kernels_cover_and_match(self):
        db = flat_db()
        plan = HashJoinBase("join", "x", "y", XA, YD, EQ, Scan("X"), Scan("Y"))
        oracle = plan.execute(ExecRuntime(flat_db(), Stats()))
        stats = Stats()
        rows = plan.execute(ExecRuntime(db, stats, batch_size=2))
        assert rows == oracle
        assert stats.vector_fallbacks == 0
        assert stats.batches_emitted > 0
