"""Golden plan tests for DP join reordering.

Chain and star workloads with skewed catalog cardinalities: the tests pin
the chosen join order, the hash build sides, that skewing the
cardinalities the other way flips the order, and that reordered plans
stay result-identical to unordered oracles.
"""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import VTuple
from repro.engine import plan as P
from repro.engine.cost import CostModel
from repro.engine.interpreter import Interpreter
from repro.engine.joinorder import extract_join_graph, reorder_joins
from repro.engine.planner import Executor, Planner
from repro.storage import Catalog, MemoryDatabase

TRUE = A.Literal(True)


def av(var, attr):
    return B.attr(B.var(var), attr)


def chain_query():
    """((R1 ⋈ R2) ⋈ R3) ⋈ R4 along a1=a2, b2=b3, c3=c4."""
    return B.join(
        B.join(
            B.join(B.extent("R1"), B.extent("R2"), "x", "y", B.eq(av("x", "a1"), av("y", "a2"))),
            B.extent("R3"),
            "t",
            "z",
            B.eq(av("t", "b2"), av("z", "b3")),
        ),
        B.extent("R4"),
        "u",
        "w",
        B.eq(av("u", "c3"), av("w", "c4")),
    )


def chain_db(n1, n2, n3, n4):
    return MemoryDatabase(
        {
            "R1": [VTuple(a1=i % 50, i1=i) for i in range(n1)],
            "R2": [VTuple(a2=i % 50, b2=i % 40, i2=i) for i in range(n2)],
            "R3": [VTuple(b3=i % 40, c3=i % 30, i3=i) for i in range(n3)],
            "R4": [VTuple(c4=i % 30, i4=i) for i in range(n4)],
        }
    )


def analyzed(db):
    catalog = Catalog(db)
    catalog.analyze()
    return catalog


def star_query():
    """((C ⋈ D1) ⋈ D2) ⋈ D3 — the rewriter's order hits the big dimension
    first; the selective one should come first instead."""
    return B.join(
        B.join(
            B.join(B.extent("C"), B.extent("D1"), "c", "p", B.eq(av("c", "k1"), av("p", "x1"))),
            B.extent("D2"),
            "t",
            "q",
            B.eq(av("t", "k2"), av("q", "x2")),
        ),
        B.extent("D3"),
        "u",
        "r",
        B.eq(av("u", "k3"), av("r", "x3")),
    )


def star_db():
    return MemoryDatabase(
        {
            "C": [
                VTuple(k1=i % 100, k2=i % 200, k3=i % 60, ic=i) for i in range(400)
            ],
            "D1": [VTuple(x1=i % 100, i1=i) for i in range(500)],
            "D2": [VTuple(x2=i, i2=i) for i in range(4)],
            "D3": [VTuple(x3=i % 60, i3=i) for i in range(60)],
        }
    )


def assert_parity(db, catalog, query, **kwargs):
    """Reordered result == unordered cost-based == heuristic == oracle."""
    oracle = Interpreter(db).eval(query)
    reordered = Executor(db, catalog=catalog, **kwargs).execute(query)
    unordered = Executor(db, catalog=catalog, reorder=False).execute(query)
    heuristic = Executor(db).execute(query)
    assert reordered == unordered == heuristic == oracle
    return oracle


class TestChainReordering:
    """4-extent chain, cardinalities skewed toward the far end."""

    @pytest.fixture()
    def setup(self):
        db = chain_db(300, 300, 20, 5)
        return db, analyzed(db)

    def test_chosen_order_starts_from_the_small_end(self, setup):
        db, catalog = setup
        planner = Planner(catalog)
        planner.plan(chain_query())
        (decision,) = planner.last_join_orders
        assert decision.reordered
        assert decision.chosen == "R4 ⋈ R3 ⋈ R2 ⋈ R1"
        assert decision.original == "R1 ⋈ R2 ⋈ R3 ⋈ R4"

    def test_dp_order_estimated_cheaper_than_rewriter_order(self, setup):
        db, catalog = setup
        planner = Planner(catalog)
        planner.plan(chain_query())
        (decision,) = planner.last_join_orders
        assert decision.chosen_cost < decision.original_cost

    def test_build_sides_follow_the_small_operands(self, setup):
        db, catalog = setup
        plan = Planner(catalog).plan(chain_query())
        # every hash join hashes its (smaller) left chain prefix
        joins = [op for op in plan.operators() if isinstance(op, P.HashJoinBase)]
        assert len(joins) == 3
        assert all(j.build_side == "left" for j in joins)

    def test_skewing_cardinalities_flips_the_order(self):
        db = chain_db(5, 20, 300, 300)  # now R1 is the small end
        catalog = analyzed(db)
        planner = Planner(catalog)
        planner.plan(chain_query())
        (decision,) = planner.last_join_orders
        assert not decision.reordered  # the rewriter's order is already best
        assert decision.chosen == "R1 ⋈ R2 ⋈ R3 ⋈ R4"

    def test_parity_with_unordered_oracles(self, setup):
        db, catalog = setup
        result = assert_parity(db, catalog, chain_query())
        assert result  # non-trivial workload

    def test_explain_carries_join_order_header(self, setup):
        db, catalog = setup
        text = Executor(db, catalog=catalog).explain(chain_query())
        assert text.splitlines()[0].startswith("-- join order: R4 ⋈ R3 ⋈ R2 ⋈ R1")
        assert "rewriter order R1 ⋈ R2 ⋈ R3 ⋈ R4" in text.splitlines()[0]
        assert "candidates:" in text.splitlines()[0]

    def test_reorder_false_keeps_rewriter_order(self, setup):
        db, catalog = setup
        planner = Planner(catalog, reorder=False)
        planner.plan(chain_query())
        assert planner.last_join_orders == []


class TestStarReordering:
    """Star join: the selective dimension must come before the big one."""

    @pytest.fixture()
    def setup(self):
        db = star_db()
        return db, analyzed(db)

    def test_selective_dimension_joins_first(self, setup):
        db, catalog = setup
        planner = Planner(catalog)
        planner.plan(star_query())
        (decision,) = planner.last_join_orders
        assert decision.reordered
        order = decision.chosen.split(" ⋈ ")
        assert set(order) == {"C", "D1", "D2", "D3"}
        assert order.index("D2") < order.index("D1")
        assert order[-1] == "D1"  # the big dimension goes last

    def test_parity_with_unordered_oracles(self, setup):
        db, catalog = setup
        assert_parity(db, catalog, star_query())

    def test_bushy_flag_keeps_parity(self, setup):
        db, catalog = setup
        assert_parity(db, catalog, star_query(), bushy=True)
        planner = Planner(catalog, bushy=True)
        planner.plan(star_query())
        (decision,) = planner.last_join_orders
        assert decision.bushy
        assert decision.chosen_cost <= decision.original_cost


class TestGraphExtraction:
    def test_single_leaf_conjuncts_become_pushed_selections(self):
        db = chain_db(50, 50, 20, 5)
        catalog = analyzed(db)
        query = B.join(
            B.extent("R1"),
            B.extent("R2"),
            "x",
            "y",
            B.conj(
                B.eq(av("x", "a1"), av("y", "a2")),
                B.eq(av("y", "i2"), B.lit(7)),
            ),
        )
        graph = extract_join_graph(query, catalog)
        assert graph is not None
        selects = [
            leaf for leaf in graph.leaves if isinstance(leaf.expr, A.Select)
        ]
        assert len(selects) == 1
        assert [str(e) for e in graph.edges] or graph.edges  # edge survived
        assert len(graph.edges) == 1

    def test_whole_tuple_reference_bails(self):
        db = chain_db(10, 10, 10, 10)
        catalog = analyzed(db)
        # y used as a whole tuple: reordering cannot attribute it
        query = B.join(
            B.join(B.extent("R1"), B.extent("R2"), "x", "y",
                   B.eq(av("x", "a1"), av("y", "a2"))),
            B.extent("R3"),
            "t",
            "z",
            B.eq(B.var("t"), B.var("z")),
        )
        assert extract_join_graph(query, catalog) is None

    def test_two_leaf_regions_left_alone(self):
        db = chain_db(300, 300, 20, 5)
        catalog = analyzed(db)
        planner = Planner(catalog)
        planner.plan(
            B.join(B.extent("R1"), B.extent("R2"), "x", "y",
                   B.eq(av("x", "a1"), av("y", "a2")))
        )
        assert planner.last_join_orders == []

    def test_no_catalog_no_reordering(self):
        db = chain_db(300, 300, 20, 5)
        ex = Executor(db)
        text = ex.explain(chain_query())
        assert "-- join order" not in text
        assert ex.planner.last_join_orders == []


class TestCrossProducts:
    def test_cross_product_in_rewriter_order_is_avoided(self):
        """((R1 × R3) ⋈ R2): the rewriter's order opens with a cross
        product, but the graph is connected — the DP order must not."""
        db = chain_db(200, 200, 100, 5)
        catalog = analyzed(db)
        query = B.join(
            B.join(B.extent("R1"), B.extent("R3"), "x", "z", TRUE),
            B.extent("R2"),
            "t",
            "y",
            B.conj(
                B.eq(av("t", "a1"), av("y", "a2")),
                B.eq(av("t", "b3"), av("y", "b2")),
            ),
        )
        planner = Planner(catalog)
        plan = planner.plan(query)
        (decision,) = planner.last_join_orders
        assert decision.reordered
        # no nested-loop (cross) join survives in the chosen plan
        assert not any(isinstance(op, P.NestedLoopJoin) for op in plan.operators())
        assert_parity(db, catalog, query)

    def test_disconnected_graph_combines_components_small_first(self):
        db = MemoryDatabase(
            {
                "R1": [VTuple(a1=i, i1=i) for i in range(20)],
                "R2": [VTuple(a2=i % 20, i2=i) for i in range(40)],
                "S": [VTuple(s1=i) for i in range(3)],
            }
        )
        catalog = analyzed(db)
        query = B.join(
            B.join(B.extent("R1"), B.extent("S"), "x", "s", TRUE),
            B.extent("R2"),
            "t",
            "y",
            B.eq(av("t", "a1"), av("y", "a2")),
        )
        planner = Planner(catalog)
        planner.plan(query)
        (decision,) = planner.last_join_orders
        # the R1⋈R2 component (40 rows) is joined, then crossed with S
        assert "S" in decision.chosen
        assert_parity(db, catalog, query)


class TestNestedRegions:
    def test_region_under_enclosing_operators_is_reordered(self):
        db = chain_db(300, 300, 20, 5)
        catalog = analyzed(db)
        query = B.project(B.sel("v", B.eq(av("v", "i4"), B.lit(1)), chain_query()), "i1")
        planner = Planner(catalog)
        planner.plan(query)
        (decision,) = planner.last_join_orders
        assert decision.reordered
        oracle = Interpreter(db).eval(query)
        assert Executor(db, catalog=catalog).execute(query) == oracle

    def test_nested_region_inside_ineligible_outer_region_decided_once(self):
        """A reorderable chain inside a leaf of a 2-leaf (ineligible)
        outer join must yield exactly one decision — no duplicate DP runs
        and no duplicate explain headers."""
        db = MemoryDatabase(
            {
                "R1": [VTuple(a1=i % 50, i1=i) for i in range(300)],
                "R2": [VTuple(a2=i % 50, b2=i % 40, i2=i) for i in range(300)],
                "R3": [VTuple(b3=i % 40, c3=i % 20, i3=i) for i in range(20)],
                "R4": [VTuple(c4=i % 20, i4=i) for i in range(5)],
                "S": [VTuple(s1=i % 20, s2=i) for i in range(10)],
            }
        )
        catalog = analyzed(db)
        query = B.join(
            B.extent("S"),
            B.project(chain_query(), "c4", "i1"),
            "s", "c",
            B.eq(av("s", "s1"), av("c", "c4")),
        )
        planner = Planner(catalog)
        planner.plan(query)
        assert len(planner.last_join_orders) == 1
        text = Executor(db, catalog=catalog).explain(query)
        assert text.count("-- join order") == 1
        oracle = Interpreter(db).eval(query)
        assert Executor(db, catalog=catalog).execute(query) == oracle

    def test_region_inside_semijoin_operand_is_reordered(self):
        db = chain_db(300, 300, 20, 5)
        catalog = analyzed(db)
        query = B.semijoin(
            B.extent("R3"),
            chain_query(),
            "outer",
            "inner",
            B.eq(av("outer", "b3"), av("inner", "b2")),
        )
        planner = Planner(catalog)
        planner.plan(query)
        assert len(planner.last_join_orders) == 1
        oracle = Interpreter(db).eval(query)
        assert Executor(db, catalog=catalog).execute(query) == oracle
