"""Unit tests for OODB schema declaration and resolution."""

import pytest

from repro.datamodel import (
    INT,
    STRING,
    Catalog,
    ClassRef,
    OidType,
    Schema,
    SchemaError,
    SetType,
    TupleType,
)


def make_schema() -> Schema:
    schema = Schema()
    schema.add_class("Part", "PART", {"pname": STRING, "price": INT})
    schema.add_class(
        "Supplier", "SUPPLIER", {"sname": STRING, "parts": SetType(ClassRef("Part"))}
    )
    return schema


class TestDeclaration:
    def test_duplicate_class_rejected(self):
        schema = make_schema()
        with pytest.raises(SchemaError, match="duplicate class"):
            schema.add_class("Part", "PART2", {})

    def test_duplicate_extent_rejected(self):
        schema = make_schema()
        with pytest.raises(SchemaError, match="duplicate extent"):
            schema.add_class("Part2", "PART", {})

    def test_reserved_oid_attribute_rejected(self):
        schema = Schema()
        with pytest.raises(SchemaError, match="reserved"):
            schema.add_class("C", "CS", {"oid": INT})

    def test_frozen_schema_rejects_additions(self):
        schema = make_schema().freeze()
        with pytest.raises(SchemaError, match="frozen"):
            schema.add_class("New", "NEW", {})

    def test_empty_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema().add_class("", "E", {})


class TestResolution:
    def test_reference_resolves_to_oid_type(self):
        schema = make_schema().freeze()
        supplier_t = schema.object_type("Supplier")
        assert supplier_t.field("parts") == SetType(OidType("Part"))
        assert supplier_t.field("oid") == OidType("Supplier")

    def test_extent_type_is_set_of_object_type(self):
        schema = make_schema().freeze()
        assert schema.extent_type("PART") == SetType(schema.object_type("Part"))

    def test_unknown_reference_rejected_at_freeze(self):
        schema = Schema()
        schema.add_class("C", "CS", {"ref": ClassRef("Ghost")})
        with pytest.raises(SchemaError, match="Ghost"):
            schema.freeze()

    def test_nested_reference_inside_tuple_checked(self):
        schema = Schema()
        schema.add_class(
            "C", "CS", {"pairs": SetType(TupleType({"r": ClassRef("Ghost")}))}
        )
        with pytest.raises(SchemaError):
            schema.freeze()

    def test_extent_type_requires_freeze(self):
        schema = make_schema()
        with pytest.raises(SchemaError, match="frozen"):
            schema.extent_type("PART")

    def test_lookup_helpers(self):
        schema = make_schema().freeze()
        assert schema.has_extent("PART")
        assert not schema.has_extent("GHOST")
        assert schema.class_of_extent("PART").name == "Part"
        assert schema.extent_of_class("Part") == "PART"
        assert sorted(schema.extent_names) == ["PART", "SUPPLIER"]
        with pytest.raises(SchemaError):
            schema.class_def("Ghost")
        with pytest.raises(SchemaError):
            schema.class_of_extent("GHOST")


class TestCatalog:
    def test_catalog_serves_extent_types(self):
        t = SetType(TupleType({"a": INT}))
        catalog = Catalog({"X": t})
        assert catalog.has_extent("X")
        assert catalog.extent_type("X") == t
        assert catalog.extent_names == ["X"]

    def test_catalog_rejects_non_set_extents(self):
        with pytest.raises(SchemaError):
            Catalog({"X": INT})

    def test_catalog_unknown_lookups(self):
        catalog = Catalog({})
        with pytest.raises(SchemaError):
            catalog.extent_type("X")
        with pytest.raises(SchemaError):
            catalog.object_type("C")

    def test_catalog_object_types(self):
        obj = TupleType({"a": INT})
        catalog = Catalog({}, {"C": obj})
        assert catalog.object_type("C") == obj
