"""Unit tests for the complex-object value layer."""

import pytest

from repro.datamodel import (
    DataModelError,
    MissingAttributeError,
    Oid,
    VTuple,
    concat,
    format_value,
    is_atom,
    is_value,
    sort_key,
    vset,
)


class TestOid:
    def test_equality_by_class_and_number(self):
        assert Oid("Part", 1) == Oid("Part", 1)
        assert Oid("Part", 1) != Oid("Part", 2)
        assert Oid("Part", 1) != Oid("Supplier", 1)

    def test_hashable_and_usable_in_sets(self):
        oids = {Oid("Part", 1), Oid("Part", 1), Oid("Part", 2)}
        assert len(oids) == 2

    def test_not_equal_to_plain_ints(self):
        assert Oid("Part", 1) != 1

    def test_ordering_for_deterministic_output(self):
        assert Oid("A", 2) < Oid("B", 1)
        assert Oid("A", 1) < Oid("A", 2)

    def test_repr(self):
        assert repr(Oid("Part", 3)) == "@Part:3"


class TestVTuple:
    def test_field_access(self):
        t = VTuple(a=1, b="x")
        assert t["a"] == 1
        assert t["b"] == "x"

    def test_mapping_protocol(self):
        t = VTuple(a=1, b=2)
        assert "a" in t
        assert "z" not in t
        assert len(t) == 2
        assert set(t) == {"a", "b"}
        assert dict(t) == {"a": 1, "b": 2}
        assert t.get("z") is None

    def test_missing_attribute_error(self):
        t = VTuple(a=1)
        with pytest.raises(MissingAttributeError):
            t["missing"]

    def test_missing_attribute_error_is_datamodel_error(self):
        with pytest.raises(DataModelError):
            VTuple(a=1)["nope"]

    def test_equality_is_order_insensitive(self):
        assert VTuple([("a", 1), ("b", 2)]) == VTuple([("b", 2), ("a", 1)])

    def test_hash_consistent_with_equality(self):
        assert hash(VTuple(a=1, b=2)) == hash(VTuple(b=2, a=1))

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(DataModelError):
            VTuple([("a", 1), ("a", 2)])

    def test_subscript(self):
        t = VTuple(a=1, b=2, c=3)
        assert t.subscript(["a", "c"]) == VTuple(a=1, c=3)

    def test_subscript_missing_raises(self):
        with pytest.raises(DataModelError):
            VTuple(a=1).subscript(["b"])

    def test_drop(self):
        assert VTuple(a=1, b=2).drop(["a"]) == VTuple(b=2)

    def test_update_except_overwrites_and_extends(self):
        t = VTuple(a=1, b=2)
        updated = t.update_except({"a": 10, "c": 3})
        assert updated == VTuple(a=10, b=2, c=3)
        # original untouched (immutability)
        assert t == VTuple(a=1, b=2)

    def test_attributes(self):
        assert VTuple(a=1, b=2).attributes == frozenset({"a", "b"})

    def test_nested_values(self):
        inner = VTuple(x=1)
        t = VTuple(a=vset(inner), b=inner)
        assert inner in t["a"]
        assert t["b"]["x"] == 1


class TestConcat:
    def test_concatenation(self):
        assert concat(VTuple(a=1), VTuple(b=2)) == VTuple(a=1, b=2)

    def test_clash_rejected(self):
        with pytest.raises(DataModelError, match="clash"):
            concat(VTuple(a=1), VTuple(a=2))

    def test_empty_concat(self):
        assert concat(VTuple(), VTuple(a=1)) == VTuple(a=1)


class TestPredicatesAndHelpers:
    def test_is_atom(self):
        for atom in (None, True, 3, 2.5, "s", Oid("C", 1)):
            assert is_atom(atom)
        assert not is_atom(VTuple(a=1))
        assert not is_atom(frozenset())

    def test_is_value_deep(self):
        assert is_value(vset(VTuple(a=vset(1, 2))))
        assert not is_value([1, 2])  # lists are not values
        assert not is_value(VTuple(a=1).update_except({"b": (1, 2)}))

    def test_vset_deduplicates(self):
        assert len(vset(1, 1, 2)) == 2

    def test_sort_key_total_order_across_kinds(self):
        values = [
            frozenset({1}),
            VTuple(a=1),
            Oid("C", 0),
            "s",
            2.5,
            3,
            True,
            None,
        ]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None
        assert isinstance(ordered[-1], frozenset)

    def test_sort_key_rejects_non_values(self):
        with pytest.raises(DataModelError):
            sort_key(object())


class TestFormatValue:
    def test_atoms(self):
        assert format_value(None) == "null"
        assert format_value(True) == "true"
        assert format_value(False) == "false"
        assert format_value(3) == "3"
        assert format_value("hi") == '"hi"'

    def test_set_is_sorted_deterministically(self):
        assert format_value(vset(3, 1, 2)) == "{1, 2, 3}"

    def test_tuple_fields_sorted(self):
        assert format_value(VTuple(b=2, a=1)) == "(a=1, b=2)"

    def test_nested(self):
        v = vset(VTuple(a=vset(2, 1)))
        assert format_value(v) == "{(a={1, 2})}"
