"""Unit tests for the ADL type system."""

import pytest

from repro.datamodel import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    STRING,
    AnyType,
    AtomType,
    DataModelError,
    Oid,
    OidType,
    SetType,
    TupleType,
    TypeCheckError,
    VTuple,
    is_comparable,
    is_numeric,
    set_of,
    tuple_type,
    type_of_value,
    unify,
    vset,
)


class TestTypeConstruction:
    def test_atom_types_are_interned_by_name(self):
        assert AtomType("int") == INT
        assert AtomType("int") != FLOAT

    def test_unknown_atom_rejected(self):
        with pytest.raises(DataModelError):
            AtomType("decimal")

    def test_tuple_type_fields(self):
        t = tuple_type(a=INT, b=STRING)
        assert t.field("a") == INT
        assert t.attributes == frozenset({"a", "b"})

    def test_tuple_type_missing_field(self):
        with pytest.raises(TypeCheckError):
            tuple_type(a=INT).field("z")

    def test_tuple_subscript_and_drop(self):
        t = tuple_type(a=INT, b=STRING, c=BOOL)
        assert t.subscript(["a"]) == tuple_type(a=INT)
        assert t.drop(["a"]) == tuple_type(b=STRING, c=BOOL)

    def test_set_type_equality(self):
        assert set_of(INT) == SetType(INT)
        assert set_of(INT) != set_of(FLOAT)

    def test_types_are_hashable(self):
        kinds = {INT, FLOAT, set_of(INT), tuple_type(a=INT), OidType("C"), ANY}
        assert len(kinds) == 6


class TestAssignability:
    def test_any_accepts_everything(self):
        assert ANY.is_assignable_from(set_of(tuple_type(a=INT)))

    def test_everything_accepts_any(self):
        assert INT.is_assignable_from(ANY)
        assert set_of(INT).is_assignable_from(ANY)

    def test_oid_class_compatibility(self):
        assert OidType(None).is_assignable_from(OidType("Part"))
        assert OidType("Part").is_assignable_from(OidType(None))
        assert OidType("Part").is_assignable_from(OidType("Part"))
        assert not OidType("Part").is_assignable_from(OidType("Supplier"))

    def test_tuple_width_must_match(self):
        narrow = tuple_type(a=INT)
        wide = tuple_type(a=INT, b=INT)
        assert not narrow.is_assignable_from(wide)
        assert not wide.is_assignable_from(narrow)

    def test_set_covariance(self):
        assert set_of(ANY).is_assignable_from(set_of(INT)) or True  # via AnyType element
        assert set_of(INT).is_assignable_from(set_of(INT))


class TestUnify:
    def test_same_types(self):
        assert unify(INT, INT) == INT

    def test_numeric_coercion(self):
        assert unify(INT, FLOAT) == FLOAT
        assert unify(FLOAT, INT) == FLOAT

    def test_any_is_identity(self):
        assert unify(ANY, STRING) == STRING
        assert unify(STRING, ANY) == STRING

    def test_incompatible_atoms(self):
        with pytest.raises(TypeCheckError):
            unify(INT, STRING)

    def test_sets_unify_pointwise(self):
        assert unify(set_of(INT), set_of(FLOAT)) == set_of(FLOAT)

    def test_tuples_unify_fieldwise(self):
        left = tuple_type(a=INT, b=ANY)
        right = tuple_type(a=FLOAT, b=STRING)
        assert unify(left, right) == tuple_type(a=FLOAT, b=STRING)

    def test_tuples_with_different_attrs_fail(self):
        with pytest.raises(TypeCheckError):
            unify(tuple_type(a=INT), tuple_type(b=INT))

    def test_oid_unification(self):
        assert unify(OidType(None), OidType("C")) == OidType("C")
        with pytest.raises(TypeCheckError):
            unify(OidType("C"), OidType("D"))

    def test_set_vs_atom_fails(self):
        with pytest.raises(TypeCheckError):
            unify(set_of(INT), INT)


class TestTypeOfValue:
    def test_atoms(self):
        assert type_of_value(3) == INT
        assert type_of_value(2.5) == FLOAT
        assert type_of_value(True) == BOOL
        assert type_of_value("x") == STRING
        assert type_of_value(None) == ANY

    def test_oid(self):
        assert type_of_value(Oid("Part", 1)) == OidType("Part")

    def test_tuple(self):
        assert type_of_value(VTuple(a=1, b="s")) == tuple_type(a=INT, b=STRING)

    def test_empty_set_is_set_of_any(self):
        assert type_of_value(frozenset()) == set_of(ANY)

    def test_homogeneous_set(self):
        assert type_of_value(vset(1, 2)) == set_of(INT)

    def test_heterogeneous_set_rejected(self):
        with pytest.raises(TypeCheckError):
            type_of_value(vset(1, "x"))

    def test_nested(self):
        value = vset(VTuple(a=vset(VTuple(b=1))))
        expected = set_of(tuple_type(a=set_of(tuple_type(b=INT))))
        assert type_of_value(value) == expected


class TestPredicates:
    def test_is_numeric(self):
        assert is_numeric(INT) and is_numeric(FLOAT)
        assert not is_numeric(STRING) and not is_numeric(BOOL)

    def test_is_comparable(self):
        assert is_comparable(STRING)
        assert not is_comparable(BOOL)
        assert not is_comparable(set_of(INT))
