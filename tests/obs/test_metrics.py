"""The unified metrics registry, slow-query log, and misestimate store
(PR 10): units, the service wiring, the Prometheus export, and the PR-7
``epoch_mismatches`` compatibility view over the migrated store."""

import json

import pytest

from repro.datamodel import VTuple
from repro.obs import MetricsRegistry, MisestimateStore, SlowQueryLog
from repro.service import QueryService
from repro.storage import Catalog, MemoryDatabase

QUERY = "select x.b from x in X where x.a = 0"


def _db():
    return MemoryDatabase({"X": [VTuple(a=i % 3, b=i) for i in range(30)]})


# ---------------------------------------------------------------------------
# registry units
# ---------------------------------------------------------------------------


def test_counter_gauge_histogram():
    m = MetricsRegistry()
    c = m.counter("c", "a counter")
    c.inc()
    c.inc(4)
    g = m.gauge("g", "a gauge")
    g.set(2.5)
    fn_g = m.gauge("fn", "callable gauge", fn=lambda: 7)
    h = m.histogram("h", "a histogram", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(99.0)

    snap = m.snapshot()
    assert snap["c"] == 5
    assert snap["g"] == 2.5
    assert snap["fn"] == 7
    assert snap["h"]["count"] == 3
    assert snap["h"]["sum"] == pytest.approx(99.55)
    assert [b["count"] for b in snap["h"]["buckets"]] == [1, 2, 3]
    # stable + JSON-ready
    assert list(snap) == sorted(snap)
    json.dumps(snap)


def test_register_twice_returns_same_metric_and_type_clash_raises():
    m = MetricsRegistry()
    c1 = m.counter("x")
    c2 = m.counter("x")
    assert c1 is c2
    with pytest.raises(ValueError):
        m.gauge("x")


def test_prometheus_export_format():
    m = MetricsRegistry()
    m.counter("events_total", "all events").inc(3)
    m.histogram("lat", "latency", buckets=(0.5,)).observe(0.1)
    text = m.render_prometheus()
    assert "# HELP events_total all events" in text
    assert "# TYPE events_total counter" in text
    assert "events_total 3" in text
    assert "# TYPE lat histogram" in text
    assert 'lat_bucket{le="0.5"} 1' in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_count 1" in text


# ---------------------------------------------------------------------------
# misestimate store
# ---------------------------------------------------------------------------


def test_misestimate_store_bounds_and_views():
    store = MisestimateStore(per_shape=2, max_shapes=2)
    for i in range(5):
        store.record("s1", kind="operator", q_error=float(i))
    assert len(store.for_shape("s1")) == 2  # per-shape bound
    assert store.recorded == 5
    store.record("s2", kind="epoch-mismatch", planned_epoch=1, executed_epoch=2,
                 est_rows=10, actual_rows=20)
    store.record("s3", kind="operator")
    assert len(store.shapes()) == 2  # LRU-evicted down to max_shapes
    view = store.epoch_mismatch_view()
    # epoch-mismatch records render with exactly the PR-7 keys
    assert view == [] or set(view[0]) == {
        "shape", "planned_epoch", "executed_epoch", "est_rows", "actual_rows",
    }


# ---------------------------------------------------------------------------
# slow-query log
# ---------------------------------------------------------------------------


def test_slow_log_threshold_gating():
    log = SlowQueryLog(threshold_s=0.5, capacity=2)
    assert not log.maybe_log(shape="q", wall_s=0.1)
    assert log.maybe_log(shape="q", wall_s=0.9)
    for i in range(3):
        log.maybe_log(shape=f"q{i}", wall_s=1.0)
    assert log.logged == 4
    assert len(log) == 2  # bounded
    disabled = SlowQueryLog(threshold_s=None)
    assert not disabled.maybe_log(shape="q", wall_s=100.0)


# ---------------------------------------------------------------------------
# service wiring
# ---------------------------------------------------------------------------


def test_service_metrics_surface():
    db = _db()
    catalog = Catalog(db)
    catalog.analyze()
    with QueryService(db, catalog=catalog, slow_query_s=0.0) as svc:
        svc.execute(QUERY)
        svc.execute(QUERY)
        snap = svc.metrics_snapshot()
        assert snap["repro_queries_executed"] == 2
        assert snap["repro_query_latency_seconds"]["count"] == 2
        assert snap["repro_queue_wait_seconds"]["count"] == 2
        assert snap["repro_cache_hits"] == 1
        assert snap["repro_cache_misses"] == 1
        assert snap["repro_cache_hit_ratio"] == pytest.approx(0.5)
        assert snap["repro_cached_shapes"] == 1
        assert snap["repro_epochs_pin_events"] >= 2
        # threshold 0.0 → every query is "slow"; entries carry the plan
        assert snap["repro_slow_queries"] == 2
        entry = svc.slow_log.entries()[-1]
        assert entry["plan"] and entry["wall_s"] >= 0.0
        json.dumps(snap)
        text = svc.metrics_text()
        assert "# TYPE repro_query_latency_seconds histogram" in text
        assert "repro_queries_executed 2" in text
        # stats() keeps its own keys working alongside the registry
        stats = svc.stats()
        assert stats["slow_queries"] == 2
        assert stats["misestimates"] == 0


def test_epoch_mismatch_migration_compat_view():
    """Satellite: epoch mismatches now land on the misestimate store;
    ``stats()['epoch_mismatches']`` still serves the PR-7 records."""
    db = _db()
    with QueryService(db) as svc:
        svc.execute(QUERY)  # compiles at the current epoch
        db.insert_rows("X", [VTuple(a=0, b=555)])  # epoch moves
        r = svc.execute(QUERY)  # cache hit: plan priced at the old epoch
        assert r.cache_hit
        stats = svc.stats()
        assert stats["epoch_mismatch_runs"] >= 1
        rec = stats["epoch_mismatches"][-1]
        assert rec["planned_epoch"] < rec["executed_epoch"]
        assert rec["actual_rows"] == len(r.rows)
        # the same record is a kind="epoch-mismatch" store entry
        entries = svc.misestimates.records("epoch-mismatch")
        assert entries and entries[-1]["shape"] == r.shape
        assert svc.metrics_snapshot()["repro_misestimates"] >= 1
