"""Trace-vs-Stats parity (PR 10): attaching a recorder must change
nothing — across the whole streaming-parity operator matrix, tuple and
batch modes, a traced run produces the same rows AND the byte-identical
``Stats`` snapshot as an untraced run, and the recorder's own row counts
agree with what actually flowed."""

import pytest

from repro.adl import builders as B
from repro.engine.plan import ExecRuntime, Filter, Scan
from repro.engine.stats import Stats
from repro.obs import TraceRecorder
from tests.engine.test_streaming_parity import CASES

BATCH = 64


def _run_tuple(factory, db, trace=None):
    stats = Stats()
    node = factory()
    rows = list(node.stream(ExecRuntime(db, stats, trace=trace)))
    return node, rows, stats


def _run_batch(factory, db, trace=None):
    stats = Stats()
    node = factory()
    rows = [
        row
        for batch in node.stream_batches(
            ExecRuntime(db, stats, batch_size=BATCH, trace=trace)
        )
        for row in batch.rows
    ]
    return node, rows, stats


class TestTraceParity:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_tuple_mode(self, name):
        factory, db_factory = CASES[name]
        _, plain_rows, plain_stats = _run_tuple(factory, db_factory())

        recorder = TraceRecorder()
        node, traced_rows, traced_stats = _run_tuple(
            factory, db_factory(), trace=recorder
        )

        assert sorted(map(repr, traced_rows)) == sorted(map(repr, plain_rows)), name
        assert traced_stats.snapshot() == plain_stats.snapshot(), name
        # the recorder's root count is the actual bag cardinality
        assert recorder.records[id(node)].rows_out == len(traced_rows), name

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_batch_mode(self, name):
        factory, db_factory = CASES[name]
        _, plain_rows, plain_stats = _run_batch(factory, db_factory())

        recorder = TraceRecorder()
        node, traced_rows, traced_stats = _run_batch(
            factory, db_factory(), trace=recorder
        )

        assert sorted(map(repr, traced_rows)) == sorted(map(repr, plain_rows)), name
        assert traced_stats.snapshot() == plain_stats.snapshot(), name
        rec = recorder.records[id(node)]
        assert rec.rows_out == len(traced_rows), name
        assert rec.batches_out >= (1 if traced_rows else 0), name

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_execute_materialized_parity(self, name):
        """``execute`` (the service's path) under tracing: same frozenset,
        same counters."""
        factory, db_factory = CASES[name]
        plain_stats = Stats()
        plain = factory().execute(ExecRuntime(db_factory(), plain_stats))

        traced_stats = Stats()
        traced = factory().execute(
            ExecRuntime(db_factory(), traced_stats, trace=TraceRecorder())
        )
        assert traced == plain, name
        assert traced_stats.snapshot() == plain_stats.snapshot(), name


def test_child_counts_match_stats_counters():
    """The trace agrees with the Stats counters it sits next to: a
    Filter's child row count is exactly the filter's tuples_visited."""
    factory, db_factory = CASES["Filter"]
    recorder = TraceRecorder()
    stats = Stats()
    node = factory()
    out = list(node.stream(ExecRuntime(db_factory(), stats, trace=recorder)))
    child_rec = recorder.records[id(node.child)]
    assert child_rec.rows_out == stats.tuples_visited
    assert recorder.records[id(node)].rows_out == len(out)


def test_untraced_runtime_returns_raw_iterator():
    """The hoisted-check contract: with no recorder, ``stream`` hands back
    ``iterate``'s generator itself — zero wrapping on the untraced path."""
    db = CASES["Scan"][1]()
    node = Scan("X")
    rt = ExecRuntime(db)
    assert rt.trace is None
    it = node.stream(rt)
    assert it.__class__ is node.iterate(rt).__class__
    assert it.gi_code is node.iterate(rt).gi_code


def test_fill_time_recorded_for_pipeline_breakers():
    """A breaker's fill time (open to first row) is captured."""
    factory, db_factory = CASES["NestOp"]
    recorder = TraceRecorder()
    node = factory()
    list(node.stream(ExecRuntime(db_factory(), trace=recorder)))
    rec = recorder.records[id(node)]
    assert rec.first_row_s is not None
    assert rec.first_row_s >= 0.0
    assert rec.wall_s >= rec.first_row_s
