"""EXPLAIN ANALYZE (PR 10): per-operator est-vs-actual annotations on the
ordinary explain tree, misestimate flagging past the q-error threshold,
and the acceptance shape — a co-partitioned shredded query whose analyze
output carries per-fragment spans from real pool workers."""

from repro.adl import builders as B
from repro.adl.typecheck import TypeChecker
from repro.datamodel import Catalog as TypeCatalog, INT, SetType, TupleType, VTuple
from repro.engine.planner import Executor
from repro.rewrite.common import RewriteContext
from repro.service import QueryService
from repro.shard import Exchange, ParallelExecutor, PartitionedHashJoin
from repro.shred import StitchNest, shred_expr
from repro.storage import Catalog, MemoryDatabase

TYPES = TypeCatalog(
    {
        "X": SetType(TupleType({"a": INT, "b": INT})),
        "Y": SetType(TupleType({"d": INT, "e": INT})),
    }
)
CTX = RewriteContext(checker=TypeChecker(TYPES))


def skewed_db():
    """ndv says 7 values of ``a``, but value 0 covers 90% of rows — the
    uniformity assumption misestimates any selection on it."""
    rows = [VTuple(a=(0 if i % 10 else i % 7), b=i) for i in range(1000)]
    return MemoryDatabase({"X": rows})


def _filter_on_skew():
    return B.sel("x", B.eq(B.attr(B.var("x"), "a"), B.lit(0)), B.extent("X"))


def test_annotations_and_misestimate_flag():
    db = skewed_db()
    catalog = Catalog(db)
    catalog.analyze()
    ex = Executor(db, catalog=catalog)
    ar = ex.explain_analyze(_filter_on_skew())
    # rows come back with the analysis
    assert ar.rows == Executor(db, catalog=Catalog(db)).execute(_filter_on_skew())
    assert "est≈" in ar.text and "actual=" in ar.text and "ms)" in ar.text
    assert "!! misestimate" in ar.text
    assert len(ar.misestimates) == 1
    miss = ar.misestimates[0]
    assert miss["operator"] == "Filter"
    assert miss["q_error"] > 4.0
    assert miss["actual_rows"] == len(ar.rows)


def test_accurate_plan_is_not_flagged():
    db = skewed_db()
    catalog = Catalog(db)
    catalog.analyze()
    ex = Executor(db, catalog=catalog)
    ar = ex.explain_analyze(B.extent("X"))
    assert ar.misestimates == []
    assert "!! misestimate" not in ar.text


def test_shares_the_explain_renderer():
    """Satellite: explain_analyze rides explain()'s tree through the
    ``annotate`` hook — same nodes, same order, same structure, only the
    per-node suffix differs."""
    db = skewed_db()
    catalog = Catalog(db)
    catalog.analyze()
    ex = Executor(db, catalog=catalog)
    expr = _filter_on_skew()
    static = ex.explain(expr).splitlines()
    analyzed = ex.explain_analyze(expr).text.splitlines()
    analyzed = [line for line in analyzed if not line.lstrip().startswith("--")]
    assert len(static) == len(analyzed)
    for s_line, a_line in zip(static, analyzed):
        # identical tree prefix: indentation, label, detail
        assert a_line.startswith(s_line.split(" (")[0])


def test_never_executed_nodes_are_marked():
    """Fragment-shipped subtrees run remotely; their local plan nodes are
    annotated as never executed rather than showing zero actuals."""
    db = MemoryDatabase(
        {
            "X": [VTuple(a=i % 6, b=i % 4) for i in range(30)],
            "Y": [VTuple(d=i % 6, e=i) for i in range(30)],
        }
    )
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "a", 2)
    catalog.partition("Y", "d", 2)
    nj = B.nestjoin(
        B.extent("X"),
        B.extent("Y"),
        "x",
        "y",
        B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")),
        "ys",
        None,
    )
    shredded = shred_expr(nj, CTX)
    assert shredded is not None
    with ParallelExecutor(db, catalog, workers=2, mode="inline") as parallel:
        ex = Executor(db, catalog=catalog, parallel=parallel)
        plan = ex.planner.plan(shredded)
        if not any(isinstance(op, Exchange) for op in plan.operators()):
            return  # tiny plan stayed serial; nothing shipped
        ar = ex.explain_analyze(shredded)
        assert "(never executed)" in ar.text


def test_copartitioned_shredded_acceptance():
    """The PR-10 acceptance shape: a co-partitioned shredded nestjoin on
    a forked pool — analyze output shows per-operator est-vs-actual,
    per-fragment spans from pool workers, and flags the seeded
    (correlated-skew) misestimate on the gathered flat join."""
    # correlated skew: both sides pile onto join key 0, which the
    # independence/ndv join estimate cannot see
    x = [VTuple(a=i % 7, b=(0 if i < 150 else i)) for i in range(1500)]
    y = [VTuple(d=(0 if i < 60 else 10_000 + i), e=i % 5) for i in range(6000)]
    db = MemoryDatabase({"X": x, "Y": y})
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "b", 3)
    catalog.partition("Y", "d", 3)
    nj = B.nestjoin(
        B.extent("X"),
        B.extent("Y"),
        "x",
        "y",
        B.eq(B.attr(B.var("x"), "b"), B.attr(B.var("y"), "d")),
        "ys",
        None,
    )
    shredded = shred_expr(nj, CTX)
    assert shredded is not None

    with ParallelExecutor(db, catalog, workers=3, mode="process") as parallel:
        ex = Executor(db, catalog=catalog, parallel=parallel, batch_size=256)
        plan = ex.planner.plan(shredded)
        ops = list(plan.operators())
        assert any(isinstance(op, StitchNest) for op in ops)
        assert any(isinstance(op, Exchange) for op in ops)
        assert any(isinstance(op, PartitionedHashJoin) for op in ops)
        ar = ex.explain_analyze(shredded)

    # rows equal the serial nestjoin oracle
    oracle = Executor(db, catalog=Catalog(db)).execute(nj)
    assert ar.rows == oracle
    # per-operator actuals on the tree
    assert "actual=" in ar.text
    # at least one seeded misestimate flagged
    assert ar.misestimates, ar.text
    assert "!! misestimate" in ar.text
    # per-fragment spans from real pool workers
    spans = ar.trace["fragment_spans"]
    assert len(spans) == 3
    assert all(span["in_worker"] for span in spans)
    assert len({span["pid"] for span in spans}) > 1
    assert sum(span["rows"] for span in spans) > 0
    assert "fragment 0" in ar.text and "pid=" in ar.text


def test_service_analyze_records_misestimates():
    """``analyze=True`` through the service: the result carries the
    analyze text + trace summary, and operator misestimates land in the
    per-shape store."""
    db = skewed_db()
    catalog = Catalog(db)
    catalog.analyze()
    with QueryService(db, catalog=catalog) as svc:
        r = svc.execute("select x.b from x in X where x.a = 0", analyze=True)
        assert r.analyze is not None
        assert "actual=" in r.analyze
        assert "!! misestimate" in r.analyze
        assert r.trace is not None and r.trace["operators"]
        records = svc.misestimates.records("operator")
        assert records and records[0]["shape"] == r.shape
        assert svc.stats()["analyzed_runs"] == 1
        assert svc.stats()["misestimates"] >= 1
        # plain runs stay untraced and unannotated
        plain = svc.execute("select x.b from x in X where x.a = 0")
        assert plain.analyze is None and plain.trace is None
        assert plain.rows == r.rows
