"""Cross-process span assembly under fault injection (PR 10 satellite):
with a ``crash-once`` fault plan, a traced parallel query's span record
must show the failed pool attempt marked FAILED, the degraded inline
re-run's spans, and rows that still equal the fault-free oracle."""

import dataclasses

from repro.adl import builders as B
from repro.datamodel import VTuple
from repro.engine.plan import ExecRuntime
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.faults import FaultPlan
from repro.obs import TraceRecorder
from repro.shard import (
    Exchange,
    ParallelExecutor,
    PartitionedHashJoin,
    PartitionedScan,
)
from repro.shard.fragment import (
    LEFT_PLACEHOLDER,
    RIGHT_PLACEHOLDER,
    ShardRef,
    rebind_extent,
)
from repro.storage import Catalog, MemoryDatabase

EQ = B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d"))
JOIN = B.join(B.extent("X"), B.extent("Y"), "x", "y", EQ)
PARTS = 3


def make_db():
    db = MemoryDatabase(
        {
            "X": [VTuple(a=i % 12, v=i % 5, i=i) for i in range(90)],
            "Y": [VTuple(d=i % 12, w=i) for i in range(90)],
        }
    )
    catalog = Catalog(db)
    catalog.analyze()
    catalog.partition("X", "a", PARTS)
    catalog.partition("Y", "d", PARTS)
    return db, catalog


def gather_plan():
    template = dataclasses.replace(
        JOIN,
        left=rebind_extent(JOIN.left, LEFT_PLACEHOLDER),
        right=rebind_extent(JOIN.right, RIGHT_PLACEHOLDER),
    )
    bindings = [
        {
            LEFT_PLACEHOLDER: ShardRef("X", "a", PARTS, i),
            RIGHT_PLACEHOLDER: ShardRef("Y", "d", PARTS, i),
        }
        for i in range(PARTS)
    ]
    join = PartitionedHashJoin(
        "join", "x", "y", EQ, "partition-wise", PARTS, template, bindings,
        PartitionedScan("X", "a", PARTS), PartitionedScan("Y", "d", PARTS),
    )
    return Exchange("gather", join, PARTS)


def _oracle(db):
    return Executor(db).execute(JOIN)


def test_fault_free_process_spans():
    """Baseline: one ok pool attempt, one span per fragment, every span
    from a worker process."""
    db, catalog = make_db()
    plan = gather_plan()
    recorder = TraceRecorder()
    with ParallelExecutor(db, catalog, workers=PARTS, mode="process") as parallel:
        rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel, trace=recorder)
        rows = plan.execute(rt)
    assert rows == _oracle(db)
    events = recorder.gather_events[id(plan)]
    assert events["attempts"] == [{"attempt": 0, "mode": "process", "status": "ok"}]
    spans = recorder.fragment_spans[id(plan)]
    assert len(spans) == PARTS
    assert all(span["in_worker"] for span in spans)
    assert all(span["attempt"] == 0 for span in spans)
    assert all(span["trace"] == recorder.trace_id for span in spans)


def test_crash_once_marks_failed_attempt_and_degraded_spans():
    """crash-once: the pool batch loses a worker on attempt 0; the span
    record shows the FAILED process attempt, the degraded inline re-run's
    spans (attempt 1, coordinator-side), and oracle-equal rows."""
    db, catalog = make_db()
    plan = gather_plan()
    recorder = TraceRecorder()
    with ParallelExecutor(
        db,
        catalog,
        workers=PARTS,
        mode="process",
        fault_plan=FaultPlan.parse("crash-once"),
    ) as parallel:
        rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel, trace=recorder)
        rows = plan.execute(rt)

    assert rows == _oracle(db)

    events = recorder.gather_events[id(plan)]
    assert events["degraded"] is True
    assert events["retries"] == 1
    attempts = events["attempts"]
    assert attempts[0]["status"] == "failed"
    assert attempts[0]["error"] == "WorkerCrashError"
    assert attempts[0]["mode"] == "process"
    assert attempts[-1] == {"attempt": 1, "mode": "inline", "status": "ok"}

    # the failed attempt contributed nothing: every surviving span is
    # from the degraded inline re-run on the coordinator
    spans = recorder.fragment_spans[id(plan)]
    assert len(spans) == PARTS
    assert all(span["attempt"] == 1 for span in spans)
    assert not any(span["in_worker"] for span in spans)

    # the rendered span section tells the same story
    text = recorder.render(plan)
    assert "FAILED (WorkerCrashError)" in text
    assert "attempt 1 [inline] ok" in text
    assert "degraded" in text


def test_crash_once_inline_mode():
    """The same plan in inline mode: attempt 0 crashes inline, attempt 1
    recovers inline — both attempts in the span record, rows exact."""
    db, catalog = make_db()
    plan = gather_plan()
    recorder = TraceRecorder()
    with ParallelExecutor(
        db,
        catalog,
        workers=PARTS,
        mode="inline",
        fault_plan=FaultPlan.parse("crash-once"),
    ) as parallel:
        rt = ExecRuntime(db, Stats(), catalog=catalog, parallel=parallel, trace=recorder)
        rows = plan.execute(rt)
    assert rows == _oracle(db)
    events = recorder.gather_events[id(plan)]
    attempts = events["attempts"]
    assert attempts[0]["status"] == "failed"
    assert attempts[-1]["status"] == "ok"
    spans = recorder.fragment_spans[id(plan)]
    assert len(spans) == PARTS
    assert not any(span["in_worker"] for span in spans)


def test_untraced_specs_carry_no_trace_context():
    """No recorder → fragments ship with ``trace=None`` and snapshots
    carry no span payload (the untraced contract is byte-identical)."""
    db, catalog = make_db()
    plan = gather_plan()
    specs = plan.child.payloads(None, epoch=None)
    assert all(spec.trace is None for spec in specs)
    with ParallelExecutor(db, catalog, workers=PARTS, mode="inline") as parallel:
        results = parallel.run_fragments(specs)
    assert all("_span" not in snapshot for _, snapshot in results)
