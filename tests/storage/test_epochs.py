"""Unit tests for the visibility-epoch layer (PR 7).

Covers the store-level contract on both stores: monotonic epoch bumps,
batch atomicity, lazy preservation (nothing is copied without a pin),
pin/unpin reclamation, ``keep_history`` time travel, ``extent_at``
chains, and the identity invariant that keeps every PR 1–6 staleness
handshake working on pinned-but-fresh reads.
"""

import pytest

from repro.datamodel import INT, STRING, Schema, StorageError, VTuple
from repro.storage import Database, EpochView, MemoryDatabase


def rows(*bs):
    return frozenset(VTuple(a=b % 3, b=b) for b in bs)


def mem(**extents) -> MemoryDatabase:
    return MemoryDatabase({k: v for k, v in extents.items()})


# ---------------------------------------------------------------------------
# epoch publication
# ---------------------------------------------------------------------------


class TestEpochBumps:
    def test_initial_load_is_one_epoch(self):
        db = mem(X=rows(1, 2), Y=rows(3))
        assert db.epoch == 1  # one batch, two extents

    def test_each_mutation_is_one_epoch(self):
        db = mem(X=rows(1))
        e0 = db.epoch
        db.insert_rows("X", rows(2))
        db.delete_rows("X", rows(2))
        db.set_extent("X", rows(5))
        assert db.epoch == e0 + 3

    def test_batch_groups_mutations_into_one_epoch(self):
        db = mem(X=rows(1), Y=rows(2))
        e0 = db.epoch
        with db.batch():
            db.insert_rows("X", rows(4))
            db.insert_rows("Y", rows(5))
            db.delete_rows("X", rows(1))
        assert db.epoch == e0 + 1

    def test_empty_batch_publishes_nothing(self):
        db = mem(X=rows(1))
        e0 = db.epoch
        with db.batch():
            pass
        assert db.epoch == e0

    def test_paged_store_bumps_on_insert(self):
        schema = Schema()
        schema.add_class("Part", "PART", {"pname": STRING, "price": INT})
        db = Database(schema.freeze())
        e0 = db.epoch
        db.insert("Part", {"pname": "a", "price": 1})
        assert db.epoch == e0 + 1
        db.insert_many("Part", [{"pname": "b", "price": 2}, {"pname": "c", "price": 3}])
        assert db.epoch == e0 + 2  # insert_many is one batch


# ---------------------------------------------------------------------------
# pinning, preservation, reclamation
# ---------------------------------------------------------------------------


class TestPinning:
    def test_no_pin_means_no_preservation(self):
        db = mem(X=rows(1, 2))
        db.insert_rows("X", rows(3))
        db.set_extent("X", rows(9))
        assert db.epoch_stats()["preserved_snapshots"] == 0
        assert db.epoch_stats()["live_snapshots"] == 0

    def test_pinned_epoch_reads_through_mutations(self):
        db = mem(X=rows(1, 2), Y=rows(3))
        with db.pinned() as e:
            before_x = db.extent("X")
            before_y = db.extent("Y")
            db.insert_rows("X", rows(4))
            db.set_extent("Y", rows(7, 8))
            assert db.extent_at("X", e) == before_x
            assert db.extent_at("Y", e) == before_y
            # unpinned reads see the new state
            assert db.extent("X") != before_x

    def test_last_unpin_reclaims_snapshots(self):
        db = mem(X=rows(1))
        e = db.pin_epoch()
        db.set_extent("X", rows(2))
        assert db.epoch_stats()["live_snapshots"] == 1
        db.unpin_epoch(e)
        stats = db.epoch_stats()
        assert stats["live_snapshots"] == 0
        assert stats["reclaimed_snapshots"] == 1

    def test_refcounted_pins(self):
        db = mem(X=rows(1))
        e = db.pin_epoch()
        assert db.pin_epoch(e) == e
        db.set_extent("X", rows(2))
        db.unpin_epoch(e)
        # the second pin still holds the snapshot
        assert db.extent_at("X", e) == rows(1)
        db.unpin_epoch(e)
        assert db.epoch_stats()["live_snapshots"] == 0

    def test_pin_future_epoch_rejected(self):
        db = mem(X=rows(1))
        with pytest.raises(StorageError, match="future"):
            db.pin_epoch(db.epoch + 1)

    def test_pin_reclaimed_epoch_rejected(self):
        db = mem(X=rows(1))
        old = db.epoch
        db.set_extent("X", rows(2))
        with pytest.raises(StorageError, match="not pinned"):
            db.pin_epoch(old)

    def test_unpin_unknown_epoch_rejected(self):
        db = mem(X=rows(1))
        with pytest.raises(StorageError, match="not pinned"):
            db.unpin_epoch(db.epoch)

    def test_unreadable_epoch_raises(self):
        db = mem(X=rows(1))
        old = db.epoch
        db.set_extent("X", rows(2))  # no pin: the old value is gone
        with pytest.raises(StorageError, match="no snapshot"):
            db.extent_at("X", old)


class TestExtentAtChains:
    def test_multiple_preserved_versions_resolve_by_epoch(self):
        db = MemoryDatabase()
        db.keep_history = True
        db.set_extent("X", rows(1))
        e1 = db.epoch
        db.set_extent("X", rows(2))
        e2 = db.epoch
        db.set_extent("X", rows(3))
        e3 = db.epoch
        assert db.extent_at("X", e1) == rows(1)
        assert db.extent_at("X", e2) == rows(2)
        assert db.extent_at("X", e3) == rows(3)

    def test_keep_history_allows_pinning_any_old_epoch(self):
        db = MemoryDatabase()
        db.keep_history = True
        db.set_extent("X", rows(1))
        e1 = db.epoch
        db.set_extent("X", rows(2))
        assert db.pin_epoch(e1) == e1
        db.unpin_epoch(e1)
        # history is never reclaimed in this mode
        assert db.extent_at("X", e1) == rows(1)

    def test_extent_at_before_extent_existed(self):
        db = MemoryDatabase()
        db.keep_history = True
        db.set_extent("X", rows(1))
        e1 = db.epoch
        db.set_extent("Y", rows(2))
        with pytest.raises(StorageError, match="no snapshot"):
            db.extent_at("Y", e1)

    def test_current_epoch_returns_identical_object(self):
        # the invariant every identity-based staleness handshake
        # (statistics, indexes, partitionings, pool snapshots) rests on
        db = mem(X=rows(1, 2))
        assert db.extent_at("X", db.epoch) is db.extent("X")
        with db.pinned() as e:
            assert db.extent_at("X", e) is db.extent("X")

    def test_extent_current_at(self):
        db = mem(X=rows(1))
        e = db.pin_epoch()
        assert db.extent_current_at("X", e)
        db.insert_rows("X", rows(2))
        assert not db.extent_current_at("X", e)
        db.unpin_epoch(e)


# ---------------------------------------------------------------------------
# the paged store under pins
# ---------------------------------------------------------------------------


class TestDatabaseEpochs:
    def _db(self) -> Database:
        schema = Schema()
        schema.add_class("Part", "PART", {"pname": STRING, "price": INT})
        db = Database(schema.freeze())
        db.insert_many("Part", [{"pname": f"p{i}", "price": i} for i in range(4)])
        return db

    def test_pinned_read_survives_inserts(self):
        db = self._db()
        with db.pinned() as e:
            before = db.extent_at("PART", e)
            assert len(before) == 4
            db.insert("Part", {"pname": "new", "price": 99})
            assert db.extent_at("PART", e) == before
            assert len(db.extent("PART")) == 5

    def test_epoch_view_protocol(self):
        db = self._db()
        with db.pinned() as e:
            view = EpochView(db, e)
            db.insert("Part", {"pname": "new", "price": 99})
            assert view.pinned_epoch == e
            assert len(view.extent("PART")) == 4
            assert len(list(view.scan("PART"))) == 4
            # passthrough for everything not epoch-scoped
            assert view.schema is db.schema
            (row,) = [r for r in view.extent("PART") if r["price"] == 0]
            assert view.deref(row["oid"])["pname"] == "p0"

    def test_epoch_view_scan_never_leaks_new_rows(self):
        db = self._db()
        with db.pinned() as e:
            view = EpochView(db, e)
            db.insert("Part", {"pname": "late", "price": 100})
            assert all(r["pname"] != "late" for r in view.scan("PART"))


# ---------------------------------------------------------------------------
# pin-set stress (PR 8 satellite: reclamation must not rescan the whole
# pin set per preserved entry — the sorted-pin bisect keeps unpins cheap
# at thousands of concurrently-held pins)
# ---------------------------------------------------------------------------


class TestPinStressThousands:
    N = 2000

    def test_thousands_of_distinct_pins_preserve_and_reclaim(self):
        import time

        start = time.monotonic()
        db = mem(X=rows(1))
        held = []
        seen = {}
        for i in range(self.N):
            e = db.pin_epoch()
            held.append(e)
            seen[e] = db.extent("X")
            db.set_extent("X", frozenset({VTuple(a=i, b=i)}))
        stats = db.epoch_stats()
        assert stats["pinned_epochs"] == self.N
        assert stats["live_snapshots"] == self.N
        # the sorted distinct-pin index never drifts from the refcounts
        assert db._pins_sorted == sorted(db._pins)
        # pinned reads resolve at scale
        for e in held[::97]:
            assert db.extent_at("X", e) == seen[e]
        # oldest-first release: each last-unpin reclaims exactly the
        # snapshots only that pin could see
        for k, e in enumerate(held):
            db.unpin_epoch(e)
            if k % 250 == 0 and k + 1 < self.N:
                probe = held[k + 1]
                assert db.extent_at("X", probe) == seen[probe]
        final = db.epoch_stats()
        assert final["pinned_epochs"] == 0
        assert final["live_snapshots"] == 0
        assert final["reclaimed_snapshots"] == final["preserved_snapshots"]
        assert db._pins_sorted == []
        # the O(entries x pins) scan this replaced took minutes here; the
        # bisect-based reclaim finishes in seconds with margin to spare
        assert time.monotonic() - start < 60

    def test_refcounted_pins_interleave_with_stress(self):
        db = mem(X=rows(1))
        first = db.pin_epoch()
        assert db.pin_epoch(first) == first  # refcount 2, one sorted slot
        db.set_extent("X", rows(2))
        for i in range(1000):
            e = db.pin_epoch()
            db.set_extent("X", frozenset({VTuple(a=i, b=i)}))
            db.unpin_epoch(e)
        assert db._pins_sorted == [first]
        db.unpin_epoch(first)
        assert db.extent_at("X", first) == rows(1)  # second pin still holds
        db.unpin_epoch(first)
        assert db.epoch_stats()["live_snapshots"] == 0
        assert db._pins_sorted == []
