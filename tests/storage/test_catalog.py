"""Tests for the statistics catalog and named persistent indexes."""

import pytest

from repro.datamodel import StorageError, VTuple, vset
from repro.storage import Catalog, MemoryDatabase
from repro.workload.generator import generate_database


@pytest.fixture()
def db():
    return MemoryDatabase(
        {
            "X": [VTuple(a=i % 3, b=i, c=vset(*range(i % 4))) for i in range(12)],
            "Y": [VTuple(d=i, e=i * 2) for i in range(5)],
        }
    )


class TestAnalyze:
    def test_cardinality_and_distinct(self, db):
        stats = Catalog(db).analyze()["X"]
        assert stats.cardinality == 12
        assert stats.distinct_count("a") == 3
        assert stats.distinct_count("b") == 12
        assert stats.distinct_count("missing") is None

    def test_avg_set_size(self, db):
        stats = Catalog(db).analyze()["X"]
        # i % 4 yields sets of size 0,1,2,3 cycling over 12 rows → mean 1.5
        assert stats.set_size("c") == pytest.approx(1.5)
        assert stats.set_size("a") is None  # not set-valued

    def test_explicit_extent_list(self, db):
        catalog = Catalog(db)
        catalog.analyze(["Y"])
        assert catalog.stats("Y") is not None
        assert catalog.stats("X") is None

    def test_paged_store_page_counts(self):
        paged = generate_database(n_parts=30, n_suppliers=10, n_deliveries=10,
                                  seed=1, page_size=512)
        stats = Catalog(paged).analyze()["PART"]
        assert stats.cardinality == 30
        assert stats.pages == paged.page_count("PART")
        assert stats.pages > 0

    def test_registers_itself_on_the_db(self, db):
        catalog = Catalog(db)
        assert db.catalog is catalog


class TestIndexes:
    def test_create_and_lookup(self, db):
        catalog = Catalog(db)
        named = catalog.create_index("X", "a")
        assert named.name == "idx_X_a"
        rows = named.lookup(1)
        assert rows and all(row["a"] == 1 for row in rows)
        assert named.lookup(99) == []

    def test_multi_index_on_set_attribute(self, db):
        catalog = Catalog(db)
        named = catalog.create_index("X", "c", multi=True)
        assert named.multi
        assert all(2 in row["c"] for row in named.lookup(2))

    def test_index_on_and_named(self, db):
        catalog = Catalog(db)
        named = catalog.create_index("Y", "d", name="ydx")
        assert catalog.index_on("Y", "d") is named
        assert catalog.index_named("ydx") is named
        assert catalog.index_on("Y", "e") is None

    def test_replacing_same_slot(self, db):
        catalog = Catalog(db)
        first = catalog.create_index("Y", "d")
        # identical re-issue over an unchanged extent is a no-op: same
        # registered index, no rebuild, no version bump (concurrent
        # staleness rebuilds must not thrash the plan cache)
        version = catalog.version
        second = catalog.create_index("Y", "d")
        assert catalog.index_on("Y", "d") is second
        assert first is second
        assert catalog.version == version
        # ... but a changed extent value really does rebuild and bump
        db.set_extent("Y", list(db.extent("Y")) + [VTuple(d=99, e=99)])
        third = catalog.create_index("Y", "d")
        assert third is not first
        assert catalog.version > version
        assert third.lookup(99)

    def test_name_collision_across_extents(self, db):
        catalog = Catalog(db)
        catalog.create_index("Y", "d", name="shared")
        with pytest.raises(StorageError):
            catalog.create_index("X", "a", name="shared")

    def test_name_collision_across_attrs_same_extent(self, db):
        # re-pointing a name at a different attribute would make plans
        # that resolve by name probe the wrong index
        catalog = Catalog(db)
        catalog.create_index("Y", "d", name="shared")
        with pytest.raises(StorageError):
            catalog.create_index("Y", "e", name="shared")

    def test_renaming_a_slot_drops_the_old_name(self, db):
        catalog = Catalog(db)
        catalog.create_index("Y", "d", name="old")
        renamed = catalog.create_index("Y", "d", name="new")
        assert catalog.index_named("old") is None
        assert catalog.index_named("new") is renamed

    def test_refresh_rebuilds_indexes_and_stats(self):
        paged = generate_database(n_parts=10, n_suppliers=4, n_deliveries=4, seed=2)
        catalog = Catalog(paged)
        catalog.analyze(["PART"])
        named = catalog.create_index("PART", "pname")
        assert named.built_cardinality == 10
        paged.insert("Part", {"pname": "extra", "price": 1, "color": "red"})
        catalog.refresh()
        refreshed = catalog.index_on("PART", "pname")
        assert refreshed.built_cardinality == 11
        assert refreshed.lookup("extra")
        assert catalog.stats("PART").cardinality == 11


class TestStaleStatistics:
    """Stale statistics are detected by extent-value identity (like stale
    indexes) and re-analyzed lazily instead of silently costing with old
    numbers."""

    def test_stats_refresh_lazily_after_extent_change(self, db):
        catalog = Catalog(db)
        catalog.analyze(["Y"])
        assert catalog.stats("Y").cardinality == 5
        assert catalog.stat_refreshes == 0
        db.set_extent("Y", [VTuple(d=i, e=i) for i in range(9)])
        refreshed = catalog.stats("Y")
        assert refreshed.cardinality == 9
        assert catalog.stat_refreshes == 1

    def test_fresh_stats_not_rerefreshed(self, db):
        catalog = Catalog(db)
        catalog.analyze(["Y"])
        db.set_extent("Y", [VTuple(d=1, e=1)])
        catalog.stats("Y")
        catalog.stats("Y")
        catalog.stats("Y")
        assert catalog.stat_refreshes == 1

    def test_same_cardinality_replacement_detected(self, db):
        catalog = Catalog(db)
        catalog.analyze(["Y"])
        assert catalog.stats("Y").distinct_count("e") == 5
        # same row count, different values: identity still catches it
        db.set_extent("Y", [VTuple(d=i, e=0) for i in range(5)])
        assert catalog.stats("Y").cardinality == 5
        assert catalog.stats("Y").distinct_count("e") == 1
        assert catalog.stat_refreshes == 1

    def test_unanalyzed_extent_stays_unanalyzed(self, db):
        catalog = Catalog(db)
        catalog.analyze(["Y"])
        db.set_extent("X", [])
        assert catalog.stats("X") is None
        assert catalog.stat_refreshes == 0

    def test_paged_store_insert_adjusts_incrementally(self):
        # PR 5: the paged store notifies inserts, so the stale-statistics
        # hit adjusts cardinality incrementally instead of re-analyzing
        paged = generate_database(n_parts=10, n_suppliers=4, n_deliveries=4,
                                  seed=2)
        catalog = Catalog(paged)
        catalog.analyze(["PART"])
        paged.insert("Part", {"pname": "extra", "price": 1, "color": "red"})
        assert catalog.stats("PART").cardinality == 11
        assert catalog.stat_refreshes == 0
        assert catalog.stat_increments == 1

    def test_explicit_refresh_does_not_count_as_lazy(self, db):
        catalog = Catalog(db)
        catalog.analyze()
        catalog.refresh()
        assert catalog.stat_refreshes == 0
