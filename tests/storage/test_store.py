"""Unit tests for the object store (Database) and MemoryDatabase."""

import pytest

from repro.datamodel import (
    INT,
    STRING,
    ClassRef,
    Oid,
    Schema,
    SchemaError,
    SetType,
    StorageError,
    UnknownExtentError,
    VTuple,
    vset,
)
from repro.storage import Database, MemoryDatabase


def small_schema() -> Schema:
    schema = Schema()
    schema.add_class("Part", "PART", {"pname": STRING, "price": INT})
    schema.add_class(
        "Supplier", "SUPPLIER", {"sname": STRING, "parts": SetType(ClassRef("Part"))}
    )
    return schema.freeze()


class TestDatabase:
    def test_insert_assigns_fresh_oids(self):
        db = Database(small_schema())
        o1 = db.insert("Part", {"pname": "a", "price": 1})
        o2 = db.insert("Part", {"pname": "b", "price": 2})
        assert o1 != o2
        assert o1.class_name == "Part"

    def test_insert_validates_attributes(self):
        db = Database(small_schema())
        with pytest.raises(SchemaError, match="missing"):
            db.insert("Part", {"pname": "a"})
        with pytest.raises(SchemaError, match="unexpected"):
            db.insert("Part", {"pname": "a", "price": 1, "color": "red"})

    def test_extent_contains_inserted_objects(self):
        db = Database(small_schema())
        oid = db.insert("Part", {"pname": "a", "price": 1})
        extent = db.extent("PART")
        assert len(extent) == 1
        (row,) = extent
        assert row["oid"] == oid
        assert row["pname"] == "a"

    def test_extent_cache_invalidated_on_insert(self):
        db = Database(small_schema())
        db.insert("Part", {"pname": "a", "price": 1})
        assert len(db.extent("PART")) == 1
        db.insert("Part", {"pname": "b", "price": 2})
        assert len(db.extent("PART")) == 2

    def test_deref_follows_pointer(self):
        db = Database(small_schema())
        part = db.insert("Part", {"pname": "a", "price": 1})
        supplier = db.insert("Supplier", {"sname": "s", "parts": vset(part)})
        assert db.deref(part)["pname"] == "a"
        assert part in db.deref(supplier)["parts"]

    def test_deref_dangling_oid(self):
        db = Database(small_schema())
        with pytest.raises(StorageError, match="dangling"):
            db.deref(Oid("Part", 99))

    def test_unknown_extent(self):
        db = Database(small_schema())
        with pytest.raises(UnknownExtentError):
            db.extent("GHOST")
        with pytest.raises(UnknownExtentError):
            list(db.scan("GHOST"))

    def test_scan_charges_io(self):
        db = Database(small_schema(), page_size=128)
        for i in range(20):
            db.insert("Part", {"pname": f"p{i}", "price": i})
        db.reset_io()
        rows = list(db.scan("PART"))
        assert len(rows) == 20
        assert db.io.pages_read == db.page_count("PART") > 1

    def test_fetch_many_clusters_page_reads(self):
        db = Database(small_schema(), page_size=512)
        oids = [db.insert("Part", {"pname": f"p{i}", "price": i}) for i in range(20)]
        db.reset_io()
        rows = db.fetch_many(oids)
        assert [r["oid"] for r in rows] == oids
        clustered = db.io.pages_read
        db.reset_io()
        for oid in oids:
            db.fetch(oid)
        assert clustered < db.io.pages_read

    def test_fetch_many_empty(self):
        db = Database(small_schema())
        assert db.fetch_many([]) == []

    def test_fetch_many_dangling(self):
        db = Database(small_schema())
        with pytest.raises(StorageError):
            db.fetch_many([Oid("Part", 5)])

    def test_extent_size(self):
        db = Database(small_schema())
        db.insert("Part", {"pname": "a", "price": 1})
        assert db.extent_size("PART") == 1
        with pytest.raises(UnknownExtentError):
            db.extent_size("GHOST")


class TestMemoryDatabase:
    def test_extents(self):
        db = MemoryDatabase({"X": [VTuple(a=1)]})
        assert db.extent("X") == frozenset({VTuple(a=1)})
        assert db.extent_names == ["X"]

    def test_unknown_extent(self):
        with pytest.raises(UnknownExtentError):
            MemoryDatabase().extent("X")

    def test_deref_via_oid_attribute(self):
        row = VTuple(oid=Oid("C", 1), a=5)
        db = MemoryDatabase({"X": [row]})
        assert db.deref(Oid("C", 1)) == row

    def test_deref_dangling(self):
        db = MemoryDatabase({"X": [VTuple(a=1)]})
        with pytest.raises(StorageError):
            db.deref(Oid("C", 9))

    def test_set_extent_replaces(self):
        db = MemoryDatabase()
        db.set_extent("X", [VTuple(a=1)])
        db.set_extent("X", [VTuple(a=2)])
        assert db.extent("X") == frozenset({VTuple(a=2)})
