"""Unit tests for hash indexes."""

import pytest

from repro.datamodel import StorageError, VTuple, vset
from repro.storage import HashIndex, attribute_index, element_index


class TestAttributeIndex:
    def test_lookup(self):
        rows = [VTuple(a=1, b="x"), VTuple(a=1, b="y"), VTuple(a=2, b="z")]
        idx = attribute_index(rows, "a")
        assert sorted(r["b"] for r in idx.lookup(1)) == ["x", "y"]
        assert idx.lookup(9) == []

    def test_contains_and_len(self):
        idx = attribute_index([VTuple(a=1), VTuple(a=2)], "a")
        assert 1 in idx and 3 not in idx
        assert len(idx) == 2


class TestElementIndex:
    def test_indexes_each_member(self):
        rows = [VTuple(name="s1", parts=vset(1, 2)), VTuple(name="s2", parts=vset(2))]
        idx = element_index(rows, "parts")
        assert sorted(r["name"] for r in idx.lookup(2)) == ["s1", "s2"]
        assert [r["name"] for r in idx.lookup(1)] == ["s1"]

    def test_rejects_non_set_keys(self):
        with pytest.raises(StorageError):
            element_index([VTuple(parts=3)], "parts")


class TestHashIndexGeneric:
    def test_custom_key_function(self):
        rows = [VTuple(a=1, b=2), VTuple(a=2, b=1)]
        idx = HashIndex(rows, key=lambda r: r["a"] + r["b"])
        assert len(idx.lookup(3)) == 2
