"""Unit tests for the paged heap-file simulator."""

import pytest

from repro.datamodel import StorageError, VTuple, vset
from repro.storage import HeapFile, IOCounter, estimate_size


class TestEstimateSize:
    def test_atoms_cost_a_word(self):
        assert estimate_size(1) == 8
        assert estimate_size(None) == 8
        assert estimate_size(True) == 8

    def test_strings_cost_length(self):
        assert estimate_size("abcd") == 8 + 4

    def test_clustered_sets_fatten_records(self):
        small = VTuple(a=1, c=frozenset())
        big = VTuple(a=1, c=vset(*(VTuple(d=i) for i in range(10))))
        assert estimate_size(big) > estimate_size(small)

    def test_rejects_non_values(self):
        with pytest.raises(StorageError):
            estimate_size([1, 2])


class TestHeapFile:
    def make(self, page_size=100):
        return HeapFile("X", page_size, IOCounter())

    def test_append_and_scan_roundtrip(self):
        hf = self.make()
        rows = [VTuple(a=i) for i in range(10)]
        for row in rows:
            hf.append(row)
        assert list(hf.scan()) == rows

    def test_scan_counts_page_reads(self):
        hf = self.make(page_size=40)
        for i in range(10):
            hf.append(VTuple(a=i))
        pages = hf.page_count
        assert pages > 1  # small pages force splits
        list(hf.scan())
        assert hf.io.pages_read == pages
        assert hf.io.records_read == 10

    def test_fetch_by_address(self):
        hf = self.make()
        addr = hf.append(VTuple(a=42))
        assert hf.fetch(*addr) == VTuple(a=42)
        assert hf.io.pages_read == 1

    def test_fetch_bad_page(self):
        hf = self.make()
        with pytest.raises(StorageError):
            hf.fetch(99, 0)

    def test_fetch_bad_slot(self):
        hf = self.make()
        page_id, _slot = hf.append(VTuple(a=1))
        with pytest.raises(StorageError):
            hf.fetch(page_id, 5)

    def test_oversized_record_gets_own_page(self):
        hf = self.make(page_size=16)
        hf.append(VTuple(a=1, b=2, c=3))  # bigger than a page
        hf.append(VTuple(d=1, e=2, f=3))
        assert hf.page_count == 2

    def test_fetch_clustered_charges_distinct_pages_once(self):
        hf = self.make(page_size=48)
        addresses = [hf.append(VTuple(a=i)) for i in range(12)]
        hf.io.reset()
        # fetch everything: clustered fetch charges each page once
        hf.fetch_clustered(addresses)
        clustered_reads = hf.io.pages_read
        hf.io.reset()
        for addr in addresses:
            hf.fetch(*addr)
        random_reads = hf.io.pages_read
        assert clustered_reads == hf.page_count
        assert random_reads == len(addresses)
        assert clustered_reads < random_reads

    def test_positive_page_size_required(self):
        with pytest.raises(StorageError):
            HeapFile("X", 0, IOCounter())

    def test_record_count(self):
        hf = self.make()
        for i in range(5):
            hf.append(VTuple(a=i))
        assert hf.record_count == 5


class TestIOCounter:
    def test_snapshot_and_reset(self):
        io = IOCounter()
        io.pages_read += 3
        io.records_read += 5
        snap = io.snapshot()
        assert snap["pages_read"] == 3
        assert snap["records_read"] == 5
        io.reset()
        assert io.pages_read == 0
