"""Unit tests for free-variable analysis (correlation detection)."""

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.freevars import (
    all_var_names,
    bound_vars,
    free_vars,
    fresh_name,
    is_correlated,
)


class TestFreeVars:
    def test_var_is_free(self):
        assert free_vars(B.var("x")) == {"x"}

    def test_literal_and_extent_have_none(self):
        assert free_vars(B.lit(1)) == frozenset()
        assert free_vars(B.extent("X")) == frozenset()

    def test_select_binds_its_variable(self):
        expr = B.sel("x", B.eq(B.attr(B.var("x"), "a"), B.var("y")), B.extent("X"))
        assert free_vars(expr) == {"y"}

    def test_select_source_not_in_scope(self):
        # the variable is NOT bound in the operand expression
        expr = B.sel("x", B.lit(True), B.attr(B.var("x"), "c"))
        assert free_vars(expr) == {"x"}

    def test_map_binds_in_body_only(self):
        expr = B.amap("x", B.attr(B.var("x"), "a"), B.var("src"))
        assert free_vars(expr) == {"src"}

    def test_quantifier_binding(self):
        expr = B.exists("y", B.extent("Y"), B.eq(B.var("y"), B.var("x")))
        assert free_vars(expr) == {"x"}

    def test_join_binds_both_vars_in_pred(self):
        expr = B.join(
            B.extent("X"), B.extent("Y"), "x", "y",
            B.conj(B.eq(B.var("x"), B.var("y")), B.var("outer")),
        )
        assert free_vars(expr) == {"outer"}

    def test_nestjoin_result_is_scoped(self):
        expr = B.nestjoin(
            B.extent("X"), B.extent("Y"), "x", "y", B.lit(True), "g",
            result=B.tup(a=B.attr(B.var("x"), "a"), b=B.var("free")),
        )
        assert free_vars(expr) == {"free"}

    def test_shadowing(self):
        inner = B.sel("x", B.eq(B.attr(B.var("x"), "a"), 1), B.extent("Y"))
        outer = B.sel("x", B.member(B.var("x"), inner), B.extent("X"))
        assert free_vars(outer) == frozenset()


class TestBoundVars:
    def test_collects_all_binders(self):
        expr = B.sel(
            "x",
            B.exists("y", B.extent("Y"), B.lit(True)),
            B.amap("z", B.var("z"), B.extent("X")),
        )
        assert bound_vars(expr) == {"x", "y", "z"}

    def test_join_vars_counted(self):
        expr = B.semijoin(B.extent("X"), B.extent("Y"), "a", "b", B.lit(True))
        assert bound_vars(expr) == {"a", "b"}

    def test_all_var_names(self):
        expr = B.sel("x", B.var("free"), B.extent("X"))
        assert all_var_names(expr) == {"x", "free"}


class TestFreshName:
    def test_keeps_base_if_available(self):
        assert fresh_name("y", frozenset({"x"})) == "y"

    def test_appends_suffix(self):
        assert fresh_name("y", frozenset({"y"})) == "y1"
        assert fresh_name("y", frozenset({"y", "y1"})) == "y2"


class TestCorrelation:
    def test_correlated_subquery(self):
        sub = B.sel("y", B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "a")), B.extent("Y"))
        assert is_correlated(sub, "x")

    def test_uncorrelated_subquery(self):
        sub = B.sel("y", B.eq(B.attr(B.var("y"), "a"), 1), B.extent("Y"))
        assert not is_correlated(sub, "x")
