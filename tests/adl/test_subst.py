"""Unit tests for capture-avoiding substitution."""

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.compare import alpha_equal
from repro.adl.freevars import free_vars
from repro.adl.subst import rename_bound, substitute


class TestBasicSubstitution:
    def test_replaces_free_variable(self):
        assert substitute(B.var("x"), {"x": B.lit(1)}) == A.Literal(1)

    def test_leaves_other_variables(self):
        assert substitute(B.var("y"), {"x": B.lit(1)}) == A.Var("y")

    def test_empty_mapping_is_identity(self):
        expr = B.sel("x", B.lit(True), B.extent("X"))
        assert substitute(expr, {}) is expr

    def test_replaces_inside_structures(self):
        expr = B.tup(a=B.var("x"), b=B.setexpr(B.var("x")))
        out = substitute(expr, {"x": B.lit(7)})
        assert out == B.tup(a=7, b=B.setexpr(7))

    def test_does_not_replace_bound_occurrences(self):
        expr = B.sel("x", B.eq(B.var("x"), 1), B.extent("X"))
        out = substitute(expr, {"x": B.lit(9)})
        assert out == expr

    def test_replaces_in_unscoped_source(self):
        # the iterator's operand is NOT under the binder
        expr = B.sel("x", B.lit(True), B.var("x"))
        out = substitute(expr, {"x": B.extent("X")})
        assert out == B.sel("x", B.lit(True), B.extent("X"))


class TestCaptureAvoidance:
    def test_select_binder_renamed_on_capture(self):
        # substituting y -> x into sigma[x: ... y ...] must not capture
        expr = B.sel("x", B.eq(B.var("x"), B.var("y")), B.extent("X"))
        out = substitute(expr, {"y": B.var("x")})
        assert isinstance(out, A.Select)
        assert out.var != "x"  # renamed
        # the substituted occurrence refers to the *free* x
        assert free_vars(out) == {"x"}
        assert alpha_equal(out, B.sel("z", B.eq(B.var("z"), B.var("x")), B.extent("X")))

    def test_quantifier_capture(self):
        expr = B.exists("y", B.extent("Y"), B.eq(B.var("y"), B.var("free")))
        out = substitute(expr, {"free": B.var("y")})
        assert isinstance(out, A.Exists)
        assert out.var != "y"
        assert free_vars(out) == {"y"}

    def test_join_capture_both_vars(self):
        expr = B.join(
            B.extent("X"), B.extent("Y"), "x", "y",
            B.conj(B.eq(B.var("x"), B.var("y")), B.eq(B.var("a"), B.var("b"))),
        )
        out = substitute(expr, {"a": B.var("x"), "b": B.var("y")})
        assert isinstance(out, A.Join)
        assert out.lvar not in ("x",) or out.rvar not in ("y",)
        assert free_vars(out) == {"x", "y"}

    def test_nestjoin_result_capture(self):
        expr = B.nestjoin(
            B.extent("X"), B.extent("Y"), "x", "y", B.lit(True), "g",
            result=B.tup(v=B.var("free")),
        )
        out = substitute(expr, {"free": B.var("y")})
        assert isinstance(out, A.NestJoin)
        assert out.rvar != "y"
        assert free_vars(out) == {"y"}

    def test_no_rename_when_no_capture_possible(self):
        expr = B.sel("x", B.eq(B.var("x"), B.var("y")), B.extent("X"))
        out = substitute(expr, {"y": B.lit(1)})
        assert out == B.sel("x", B.eq(B.var("x"), 1), B.extent("X"))


class TestRenameBound:
    def test_renames_binder_and_occurrences(self):
        expr = B.sel("x", B.eq(B.attr(B.var("x"), "a"), 1), B.extent("X"))
        out = rename_bound(expr, "x", "u")
        assert out == B.sel("u", B.eq(B.attr(B.var("u"), "a"), 1), B.extent("X"))

    def test_free_occurrences_untouched(self):
        expr = B.eq(B.var("x"), B.sel("x", B.lit(True), B.extent("X")))
        out = rename_bound(expr, "x", "u")
        # the comparison's x is free: unchanged; the selection's binder renamed
        assert out == B.eq(B.var("x"), B.sel("u", B.lit(True), B.extent("X")))

    def test_join_rename(self):
        expr = B.semijoin(B.extent("X"), B.extent("Y"), "x", "y",
                          B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "a")))
        out = rename_bound(expr, "y", "w")
        assert out.rvar == "w"
        assert free_vars(out) == frozenset()


class TestSemanticPreservation:
    def test_substitution_preserves_evaluation(self):
        """eval(e[x↦v]) == eval(e) in {x: v} — the defining property."""
        from repro.datamodel import VTuple, vset
        from repro.engine.interpreter import Interpreter
        from repro.storage import MemoryDatabase

        db = MemoryDatabase({"Y": [VTuple(a=1), VTuple(a=2)]})
        interp = Interpreter(db)
        expr = B.exists("y", B.extent("Y"), B.eq(B.attr(B.var("y"), "a"), B.var("x")))
        for x_value in (1, 3):
            direct = interp.eval(expr, {"x": x_value})
            substituted = interp.eval(substitute(expr, {"x": B.lit(x_value)}), {})
            assert direct == substituted
