"""Unit tests for ADL AST construction and generic traversal."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import DataModelError


class TestConstruction:
    def test_structural_equality(self):
        assert B.sel("x", B.lit(True), B.extent("X")) == B.sel("x", B.lit(True), B.extent("X"))
        assert B.var("x") != B.var("y")

    def test_nodes_are_hashable(self):
        exprs = {B.var("x"), B.var("x"), B.extent("X")}
        assert len(exprs) == 2

    def test_unknown_operators_rejected(self):
        with pytest.raises(DataModelError):
            A.Arith("**", B.lit(1), B.lit(2))
        with pytest.raises(DataModelError):
            A.Compare("~", B.lit(1), B.lit(2))
        with pytest.raises(DataModelError):
            A.SetCompare("elem", B.lit(1), B.lit(2))
        with pytest.raises(DataModelError):
            A.Aggregate("median", B.extent("X"))

    def test_duplicate_tuple_fields_rejected(self):
        with pytest.raises(DataModelError):
            A.TupleExpr((("a", B.lit(1)), ("a", B.lit(2))))

    def test_tuple_expr_field_lookup(self):
        t = B.tup(a=1, b=2)
        assert t.field("a") == A.Literal(1)
        with pytest.raises(DataModelError):
            t.field("z")


class TestTraversal:
    def test_child_exprs_covers_plain_fields(self):
        j = B.join(B.extent("X"), B.extent("Y"), "x", "y", B.lit(True))
        kids = list(j.child_exprs())
        assert B.extent("X") in kids and B.extent("Y") in kids and A.Literal(True) in kids

    def test_child_exprs_covers_named_pairs(self):
        t = B.tup(a=1, b=B.var("v"))
        assert A.Var("v") in list(t.child_exprs())

    def test_child_exprs_covers_tuple_elements(self):
        s = B.setexpr(1, B.var("v"))
        assert A.Var("v") in list(s.child_exprs())

    def test_walk_is_preorder(self):
        expr = B.sel("x", B.eq(B.attr(B.var("x"), "a"), 1), B.extent("X"))
        nodes = list(expr.walk())
        assert nodes[0] is expr
        assert any(isinstance(n, A.ExtentRef) for n in nodes)
        assert any(isinstance(n, A.Compare) for n in nodes)

    def test_map_children_identity_returns_same_object(self):
        expr = B.sel("x", B.lit(True), B.extent("X"))
        assert expr.map_children(lambda e: e) is expr

    def test_map_children_rebuilds_on_change(self):
        expr = B.sel("x", B.lit(True), B.extent("X"))
        swapped = expr.map_children(
            lambda e: B.extent("Y") if e == B.extent("X") else e
        )
        assert swapped == B.sel("x", B.lit(True), B.extent("Y"))
        assert expr == B.sel("x", B.lit(True), B.extent("X"))  # original intact

    def test_map_children_rebuilds_named_pairs(self):
        t = B.tup(a=B.var("v"))
        swapped = t.map_children(lambda e: B.var("w"))
        assert swapped == B.tup(a=B.var("w"))


class TestBuilders:
    def test_lift_wraps_scalars(self):
        assert B.lift(3) == A.Literal(3)
        assert B.lift(B.var("x")) == A.Var("x")

    def test_conj_disj(self):
        assert B.conj() == A.Literal(True)
        assert B.disj() == A.Literal(False)
        assert B.conj(B.lit(True)) == A.Literal(True)
        three = B.conj(B.var("a"), B.var("b"), B.var("c"))
        assert three == A.And(A.Var("a"), A.And(A.Var("b"), A.Var("c")))

    def test_attr_builds_paths(self):
        assert B.attr(B.var("x"), "a", "b") == A.AttrAccess(A.AttrAccess(A.Var("x"), "a"), "b")

    def test_nestjoin_default_result_is_rvar(self):
        nj = B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", B.lit(True), "g")
        assert nj.result == A.Var("y")
