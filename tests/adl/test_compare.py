"""Unit tests for alpha-equivalence."""

from repro.adl import builders as B
from repro.adl.compare import alpha_equal, canonicalize


class TestAlphaEqual:
    def test_identical(self):
        e = B.sel("x", B.lit(True), B.extent("X"))
        assert alpha_equal(e, e)

    def test_renamed_binder(self):
        left = B.sel("x", B.eq(B.attr(B.var("x"), "a"), 1), B.extent("X"))
        right = B.sel("w", B.eq(B.attr(B.var("w"), "a"), 1), B.extent("X"))
        assert alpha_equal(left, right)
        assert left != right  # structurally distinct

    def test_free_variables_matter(self):
        left = B.eq(B.var("x"), 1)
        right = B.eq(B.var("y"), 1)
        assert not alpha_equal(left, right)

    def test_different_structure(self):
        left = B.sel("x", B.lit(True), B.extent("X"))
        right = B.amap("x", B.var("x"), B.extent("X"))
        assert not alpha_equal(left, right)

    def test_join_variables(self):
        left = B.semijoin(B.extent("X"), B.extent("Y"), "a", "b",
                          B.eq(B.attr(B.var("a"), "k"), B.attr(B.var("b"), "k")))
        right = B.semijoin(B.extent("X"), B.extent("Y"), "p", "q",
                           B.eq(B.attr(B.var("p"), "k"), B.attr(B.var("q"), "k")))
        assert alpha_equal(left, right)

    def test_swapped_join_vars_not_equal(self):
        left = B.semijoin(B.extent("X"), B.extent("Y"), "a", "b",
                          B.eq(B.attr(B.var("a"), "k"), B.lit(1)))
        right = B.semijoin(B.extent("X"), B.extent("Y"), "a", "b",
                           B.eq(B.attr(B.var("b"), "k"), B.lit(1)))
        assert not alpha_equal(left, right)

    def test_shadowing_respected(self):
        # inner binder shadows outer: both sides equivalent
        left = B.sel("x", B.member(B.var("x"), B.sel("x", B.lit(True), B.extent("Y"))), B.extent("X"))
        right = B.sel("u", B.member(B.var("u"), B.sel("v", B.lit(True), B.extent("Y"))), B.extent("X"))
        assert alpha_equal(left, right)

    def test_quantifiers(self):
        left = B.exists("y", B.extent("Y"), B.eq(B.var("y"), B.var("free")))
        right = B.exists("q", B.extent("Y"), B.eq(B.var("q"), B.var("free")))
        assert alpha_equal(left, right)


class TestCanonicalize:
    def test_idempotent(self):
        e = B.sel("x", B.exists("y", B.extent("Y"), B.eq(B.var("y"), B.var("x"))), B.extent("X"))
        once = canonicalize(e)
        assert canonicalize(once) == once

    def test_deterministic_names(self):
        e = B.sel("anything", B.lit(True), B.extent("X"))
        assert canonicalize(e).var == "_v0"
