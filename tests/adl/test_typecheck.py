"""Unit tests for the ADL type checker."""

import pytest

from repro.adl import TypeChecker
from repro.adl import builders as B
from repro.datamodel import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    STRING,
    Catalog,
    SetType,
    TupleType,
    TypeCheckError,
    set_of,
    tuple_type,
)


@pytest.fixture(scope="module")
def checker():
    x_t = tuple_type(a=INT, c=set_of(tuple_type(d=INT)))
    y_t = tuple_type(d=INT, e=INT)
    return TypeChecker(Catalog({"X": set_of(x_t), "Y": set_of(y_t)}))


class TestBasics:
    def test_literal(self, checker):
        assert checker.check(B.lit(1)) == INT
        assert checker.check(B.lit("s")) == STRING

    def test_variable_env(self, checker):
        assert checker.check(B.var("v"), {"v": STRING}) == STRING
        with pytest.raises(TypeCheckError, match="unbound"):
            checker.check(B.var("v"))

    def test_extent(self, checker):
        t = checker.check(B.extent("X"))
        assert isinstance(t, SetType)

    def test_attr_access(self, checker):
        env = {"x": tuple_type(a=INT)}
        assert checker.check(B.attr(B.var("x"), "a"), env) == INT
        with pytest.raises(TypeCheckError):
            checker.check(B.attr(B.var("x"), "ghost"), env)

    def test_tuple_and_set_constructors(self, checker):
        assert checker.check(B.tup(a=1, b="x")) == tuple_type(a=INT, b=STRING)
        assert checker.check(B.setexpr(1, 2)) == set_of(INT)
        assert checker.check(B.setexpr()) == set_of(ANY)
        with pytest.raises(TypeCheckError):
            checker.check(B.setexpr(1, "x"))

    def test_subscript_and_update(self, checker):
        env = {"x": tuple_type(a=INT, b=STRING)}
        assert checker.check(B.subscript(B.var("x"), "a"), env) == tuple_type(a=INT)
        updated = checker.check(B.tupdate(B.var("x"), b=B.lit(1), c=B.lit(2)), env)
        assert updated == tuple_type(a=INT, b=INT, c=INT)


class TestOperators:
    def test_arith(self, checker):
        assert checker.check(B.add(1, 2)) == INT
        assert checker.check(B.add(1, 2.5)) == FLOAT
        with pytest.raises(TypeCheckError):
            checker.check(B.add(B.lit("a"), 1))

    def test_compare(self, checker):
        assert checker.check(B.eq(1, 2)) == BOOL
        with pytest.raises(TypeCheckError):
            checker.check(B.eq(B.lit(1), B.lit("x")))
        with pytest.raises(TypeCheckError):
            checker.check(B.lt(B.setexpr(), B.setexpr()))

    def test_set_compare(self, checker):
        assert checker.check(B.subseteq(B.setexpr(1), B.setexpr(2))) == BOOL
        assert checker.check(B.member(B.lit(1), B.setexpr(2))) == BOOL
        assert checker.check(B.ni(B.setexpr(1), B.lit(2))) == BOOL
        with pytest.raises(TypeCheckError):
            checker.check(B.member(B.lit(1), B.lit(2)))
        with pytest.raises(TypeCheckError):
            checker.check(B.subseteq(B.setexpr(1), B.lit(2)))

    def test_boolean(self, checker):
        assert checker.check(B.conj(B.lit(True), B.lit(False))) == BOOL
        with pytest.raises(TypeCheckError):
            checker.check(B.conj(B.lit(1), B.lit(True)))


class TestIterators:
    def test_select_preserves_type(self, checker):
        expr = B.sel("x", B.eq(B.attr(B.var("x"), "a"), 1), B.extent("X"))
        assert checker.check(expr) == checker.check(B.extent("X"))

    def test_select_pred_must_be_bool(self, checker):
        with pytest.raises(TypeCheckError):
            checker.check(B.sel("x", B.attr(B.var("x"), "a"), B.extent("X")))

    def test_map_type(self, checker):
        expr = B.amap("y", B.attr(B.var("y"), "d"), B.extent("Y"))
        assert checker.check(expr) == set_of(INT)

    def test_quantifier(self, checker):
        expr = B.exists("y", B.extent("Y"), B.eq(B.attr(B.var("y"), "d"), 1))
        assert checker.check(expr) == BOOL

    def test_quantifier_over_non_set(self, checker):
        with pytest.raises(TypeCheckError):
            checker.check(B.exists("y", B.lit(1), B.lit(True)))


class TestRestructuring:
    def test_project(self, checker):
        assert checker.check(B.project(B.extent("Y"), "d")) == set_of(tuple_type(d=INT))
        with pytest.raises(TypeCheckError):
            checker.check(B.project(B.extent("Y"), "ghost"))

    def test_rename(self, checker):
        t = checker.check(B.rename(B.extent("Y"), d="k"))
        assert t == set_of(tuple_type(k=INT, e=INT))
        with pytest.raises(TypeCheckError):
            checker.check(B.rename(B.extent("Y"), d="e"))  # target exists

    def test_unnest(self, checker):
        t = checker.check(B.unnest(B.extent("X"), "c"))
        assert t == set_of(tuple_type(a=INT, d=INT))

    def test_unnest_non_set_attribute(self, checker):
        with pytest.raises(TypeCheckError):
            checker.check(B.unnest(B.extent("X"), "a"))

    def test_nest(self, checker):
        t = checker.check(B.nest(B.extent("Y"), ["e"], "grp"))
        assert t == set_of(tuple_type(d=INT, grp=set_of(tuple_type(e=INT))))

    def test_nest_target_clash(self, checker):
        with pytest.raises(TypeCheckError):
            checker.check(B.nest(B.extent("Y"), ["e"], "d"))

    def test_flatten(self, checker):
        expr = B.amap("x", B.attr(B.var("x"), "c"), B.extent("X"))
        assert checker.check(B.flatten(expr)) == set_of(tuple_type(d=INT))
        with pytest.raises(TypeCheckError):
            checker.check(B.flatten(B.extent("Y")))


class TestJoins:
    def test_join_concatenates(self, checker):
        expr = B.join(B.extent("Y"), B.rename(B.extent("Y"), d="d2", e="e2"),
                      "l", "r", B.lit(True))
        t = checker.check(expr)
        assert t == set_of(tuple_type(d=INT, e=INT, d2=INT, e2=INT))

    def test_join_attr_clash(self, checker):
        with pytest.raises(TypeCheckError, match="clash"):
            checker.check(B.join(B.extent("Y"), B.extent("Y"), "l", "r", B.lit(True)))

    def test_semijoin_keeps_left_type(self, checker):
        expr = B.semijoin(B.extent("X"), B.extent("Y"), "x", "y",
                          B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")))
        assert checker.check(expr) == checker.check(B.extent("X"))

    def test_join_pred_must_be_bool(self, checker):
        with pytest.raises(TypeCheckError):
            checker.check(B.join(B.extent("Y"), B.extent("X"), "l", "r", B.lit(1)))

    def test_nestjoin_type(self, checker):
        expr = B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y",
                          B.eq(B.attr(B.var("x"), "a"), B.attr(B.var("y"), "d")), "ys")
        t = checker.check(expr)
        assert t == set_of(
            tuple_type(a=INT, c=set_of(tuple_type(d=INT)), ys=set_of(tuple_type(d=INT, e=INT)))
        )

    def test_nestjoin_attr_clash(self, checker):
        with pytest.raises(TypeCheckError):
            checker.check(
                B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", B.lit(True), "a")
            )

    def test_outerjoin_right_attrs_validated(self, checker):
        expr = B.outerjoin(B.extent("X"), B.extent("Y"), "x", "y", B.lit(True), ["wrong"])
        with pytest.raises(TypeCheckError, match="right_attrs"):
            checker.check(expr)

    def test_division(self, checker):
        dividend = B.extent("Y")  # attrs d, e
        divisor = B.project(B.extent("Y"), "e")
        assert checker.check(B.division(dividend, divisor)) == set_of(tuple_type(d=INT))
        with pytest.raises(TypeCheckError):
            checker.check(B.division(B.project(B.extent("Y"), "d"), B.extent("Y")))


class TestAggregates:
    def test_count(self, checker):
        assert checker.check(B.count(B.extent("Y"))) == INT

    def test_sum_needs_numeric(self, checker):
        assert checker.check(B.agg("sum", B.setexpr(1, 2))) == INT
        with pytest.raises(TypeCheckError):
            checker.check(B.agg("sum", B.setexpr(B.lit("a"))))

    def test_avg_is_float(self, checker):
        assert checker.check(B.agg("avg", B.setexpr(1))) == FLOAT

    def test_min_comparable(self, checker):
        assert checker.check(B.agg("min", B.setexpr(B.lit("a")))) == STRING
        with pytest.raises(TypeCheckError):
            checker.check(B.agg("min", B.extent("Y")))


class TestMaterialize:
    def test_materialize_types(self):
        from repro.datamodel import OidType

        obj_t = tuple_type(pid=OidType("Part"), pname=STRING)
        src_t = tuple_type(ref=OidType("Part"))
        catalog = Catalog({"S": set_of(src_t)}, {"Part": obj_t})
        checker = TypeChecker(catalog)
        t = checker.check(B.materialize(B.extent("S"), "ref", "obj", "Part"))
        assert t == set_of(tuple_type(ref=OidType("Part"), obj=obj_t))

    def test_materialize_set_of_refs(self):
        from repro.datamodel import OidType

        obj_t = tuple_type(pid=OidType("Part"))
        src_t = tuple_type(refs=set_of(OidType("Part")))
        catalog = Catalog({"S": set_of(src_t)}, {"Part": obj_t})
        checker = TypeChecker(catalog)
        t = checker.check(B.materialize(B.extent("S"), "refs", "objs", "Part"))
        assert t == set_of(tuple_type(refs=set_of(OidType("Part")), objs=set_of(obj_t)))

    def test_materialize_non_ref_attr(self):
        catalog = Catalog({"S": set_of(tuple_type(a=INT))}, {"Part": tuple_type()})
        checker = TypeChecker(catalog)
        with pytest.raises(TypeCheckError):
            checker.check(B.materialize(B.extent("S"), "a", "obj", "Part"))
