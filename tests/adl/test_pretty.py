"""Unit tests for the ADL pretty printer (the paper's notation)."""

from repro.adl import ast as A
from repro.adl import builders as B
from repro.adl.pretty import pretty, pretty_tree


class TestNotation:
    def test_select(self):
        expr = B.sel("x", B.eq(B.attr(B.var("x"), "a"), 1), B.extent("X"))
        assert pretty(expr) == "σ[x : x.a = 1](X)"

    def test_map(self):
        expr = B.amap("x", B.attr(B.var("x"), "a"), B.extent("X"))
        assert pretty(expr) == "α[x : x.a](X)"

    def test_semijoin(self):
        expr = B.semijoin(B.extent("X"), B.extent("Y"), "x", "y", B.lit(True))
        assert pretty(expr) == "(X ⋉⟨x,y : true⟩ Y)"

    def test_antijoin_symbol(self):
        expr = B.antijoin(B.extent("X"), B.extent("Y"), "x", "y", B.lit(True))
        assert "▷" in pretty(expr)

    def test_nestjoin(self):
        expr = B.nestjoin(B.extent("X"), B.extent("Y"), "x", "y", B.lit(True), "g")
        assert pretty(expr) == "(X ⊣⟨x,y : true ; y ; g⟩ Y)"

    def test_quantifiers(self):
        expr = B.exists("y", B.extent("Y"), B.lit(True))
        assert pretty(expr) == "∃y ∈ Y • true"
        expr = B.forall("y", B.extent("Y"), B.lit(False))
        assert pretty(expr) == "∀y ∈ Y • false"

    def test_restructuring(self):
        assert pretty(B.unnest(B.extent("X"), "c")) == "μ_c(X)"
        assert pretty(B.nest(B.extent("X"), ["a", "b"], "g")) == "ν_{a, b→g}(X)"
        assert pretty(B.flatten(B.extent("X"))) == "⊔(X)"

    def test_set_comparisons(self):
        assert pretty(B.subseteq(B.var("a"), B.var("b"))) == "a ⊆ b"
        assert pretty(B.member(B.var("a"), B.var("b"))) == "a ∈ b"
        assert pretty(B.ni(B.var("a"), B.var("b"))) == "a ∋ b"
        assert pretty(B.disjoint(B.var("a"), B.var("b"))) == "disjoint(a, b)"

    def test_tuple_operations(self):
        assert pretty(B.subscript(B.var("p"), "pid")) == "p[pid]"
        assert pretty(B.tupdate(B.var("x"), a=B.lit(1))) == "x except (a = 1)"
        assert pretty(B.tup(a=1, b=2)) == "(a = 1, b = 2)"

    def test_projection_and_rename(self):
        assert pretty(B.project(B.extent("X"), "a", "b")) == "π_{a, b}(X)"
        assert pretty(B.rename(B.extent("X"), a="b")) == "ρ_{a→b}(X)"

    def test_literals(self):
        assert pretty(B.lit("red")) == '"red"'
        assert pretty(B.lit(True)) == "true"
        assert pretty(B.setexpr()) == "{}"

    def test_boolean_connectives(self):
        expr = B.conj(B.var("a"), B.disj(B.var("b"), B.var("c")))
        assert pretty(expr) == "(a ∧ (b ∨ c))"
        assert pretty(B.neg(B.var("a"))) == "¬(a)"

    def test_division_union(self):
        assert pretty(B.division(B.extent("X"), B.extent("Y"))) == "(X ÷ Y)"
        assert pretty(B.union(B.extent("X"), B.extent("Y"))) == "(X ∪ Y)"

    def test_aggregate(self):
        assert pretty(B.count(B.extent("X"))) == "count(X)"

    def test_materialize(self):
        expr = B.materialize(B.extent("X"), "ref", "obj", "Part")
        assert pretty(expr) == "mat_{ref→obj : Part}(X)"

    def test_ambiguous_operands_parenthesized(self):
        expr = B.attr(B.tupdate(B.var("x"), a=B.lit(1)), "a")
        assert pretty(expr).startswith("(")


class TestPrettyTree:
    def test_tree_structure(self):
        expr = B.sel("x", B.lit(True), B.extent("X"))
        tree = pretty_tree(expr)
        lines = tree.splitlines()
        assert lines[0].startswith("Select")
        assert any("ExtentRef" in line for line in lines)

    def test_indentation_reflects_depth(self):
        expr = B.sel("x", B.lit(True), B.sel("y", B.lit(True), B.extent("X")))
        lines = pretty_tree(expr).splitlines()
        assert lines[1].startswith("  ")
