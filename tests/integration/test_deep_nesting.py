"""Multi-level nesting — toward the paper's final future-work item
("arbitrary nested OOSQL queries, including queries with multiple
subqueries and multiple nesting levels").

These tests drive three-level nested queries and multi-subquery
predicates through the full pipeline, asserting both semantics and the
degree of unnesting achieved."""

import pytest

from repro.adl import ast as A
from repro.adl import builders as B
from repro.datamodel import Catalog, INT, SetType, TupleType, VTuple, vset
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.rewrite.common import is_set_oriented, nested_extent_count
from repro.rewrite.strategy import Optimizer
from repro.storage import MemoryDatabase
from repro.translate import compile_oosql
from repro.workload.paper_db import example_database, example_schema

X, Y, Z = B.var("x"), B.var("y"), B.var("z")

MEMBER_T = TupleType({"d": INT, "e": INT})
CATALOG = Catalog(
    {
        "X": SetType(TupleType({"a": INT, "i": INT, "c": SetType(MEMBER_T)})),
        "Y": SetType(MEMBER_T),
        "Z": SetType(TupleType({"k": INT, "v": INT})),
    }
)


@pytest.fixture()
def db():
    x_rows = [
        VTuple(a=1, i=0, c=vset(VTuple(d=1, e=1))),
        VTuple(a=2, i=1, c=frozenset()),
        VTuple(a=3, i=2, c=vset(VTuple(d=3, e=3), VTuple(d=1, e=2))),
    ]
    y_rows = [VTuple(d=1, e=1), VTuple(d=1, e=2), VTuple(d=3, e=3)]
    z_rows = [VTuple(k=1, v=10), VTuple(k=3, v=30), VTuple(k=5, v=50)]
    return MemoryDatabase({"X": x_rows, "Y": y_rows, "Z": z_rows})


class TestThreeLevelNesting:
    def test_exists_within_exists(self, db):
        """σ[x : ∃y ∈ Y • (x.a = y.d ∧ ∃z ∈ Z • z.k = y.e)](X):
        both levels unnest — the outer via Rule 1, the inner inside the
        semijoin predicate stays over a base table, so the combined
        pipeline pushes it into a second join layer."""
        inner = B.exists("z", B.extent("Z"),
                         B.eq(B.attr(Z, "k"), B.attr(Y, "e")))
        query = B.sel(
            "x",
            B.exists("y", B.extent("Y"),
                     B.conj(B.eq(B.attr(X, "a"), B.attr(Y, "d")), inner)),
            B.extent("X"),
        )
        result = Optimizer(CATALOG).optimize(query)
        assert result.set_oriented
        interp = Interpreter(db)
        assert interp.eval(result.expr) == interp.eval(query)
        assert Executor(db).execute(result.expr) == interp.eval(query)

    def test_two_subqueries_same_level(self, db):
        """Two correlated base-table subqueries in one predicate: both must
        leave the parameter expression (two join operators)."""
        sub1 = B.exists("y", B.extent("Y"), B.eq(B.attr(X, "a"), B.attr(Y, "d")))
        sub2 = B.neg(B.exists("z", B.extent("Z"), B.eq(B.attr(X, "a"), B.attr(Z, "k"))))
        query = B.sel("x", B.conj(sub1, sub2), B.extent("X"))
        result = Optimizer(CATALOG).optimize(query)
        assert result.set_oriented
        joins = [n for n in result.expr.walk()
                 if isinstance(n, (A.SemiJoin, A.AntiJoin))]
        assert len(joins) == 2
        interp = Interpreter(db)
        assert interp.eval(result.expr) == interp.eval(query)

    def test_mixed_options_in_one_query(self, db):
        """One subquery needs the nestjoin (⊆ between blocks), another is
        Rule-1 material: the combined pipeline handles both."""
        nest_sub = B.subseteq(
            B.attr(X, "c"),
            B.sel("y", B.eq(B.attr(X, "a"), B.attr(Y, "d")), B.extent("Y")),
        )
        rel_sub = B.exists("z", B.extent("Z"), B.eq(B.attr(X, "a"), B.attr(Z, "k")))
        query = B.sel("x", B.conj(rel_sub, nest_sub), B.extent("X"))
        result = Optimizer(CATALOG).optimize(query)
        assert result.set_oriented
        interp = Interpreter(db)
        assert interp.eval(result.expr) == interp.eval(query)

    def test_nested_select_clause_block_with_inner_where_subquery(self, db):
        """Select-clause nesting whose inner block itself filters against a
        third table."""
        inner = B.sel(
            "y",
            B.conj(
                B.eq(B.attr(X, "a"), B.attr(Y, "d")),
                B.exists("z", B.extent("Z"), B.eq(B.attr(Z, "k"), B.attr(Y, "d"))),
            ),
            B.extent("Y"),
        )
        query = B.amap("x", B.tup(key=B.attr(X, "a"), ys=inner), B.extent("X"))
        result = Optimizer(CATALOG).optimize(query)
        assert result.set_oriented
        interp = Interpreter(db)
        assert interp.eval(result.expr) == interp.eval(query)


class TestDeepOosqlQueries:
    @pytest.fixture(scope="class")
    def env(self):
        schema = example_schema()
        return schema, example_database()

    def test_three_level_oosql(self, env):
        schema, db = env
        text = """
            select s.sname
            from s in SUPPLIER
            where exists d in DELIVERY :
                d.supplier = s.oid and
                (exists x in d.supply : x.part in s.parts_supplied)
        """
        adl = compile_oosql(text, schema)
        result = Optimizer(schema).optimize(adl)
        interp = Interpreter(db)
        assert interp.eval(result.expr) == interp.eval(adl)
        assert result.set_oriented

    def test_nested_select_inside_nested_select(self, env):
        schema, db = env
        text = """
            select (n = s.sname,
                    per_part = select (p = p.pname,
                                       others = select t.sname
                                                from t in SUPPLIER
                                                where p.oid in t.parts_supplied)
                               from p in s.parts_supplied)
            from s in SUPPLIER
        """
        adl = compile_oosql(text, schema)
        result = Optimizer(schema).optimize(adl)
        interp = Interpreter(db)
        assert interp.eval(result.expr) == interp.eval(adl)
        # the innermost block ranges over SUPPLIER below two attribute
        # iterations; full unnesting is not required for correctness, but
        # the optimizer must not regress the nesting degree
        assert nested_extent_count(result.expr) <= nested_extent_count(adl)
