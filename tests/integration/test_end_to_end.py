"""Cross-cutting end-to-end matrix: for a battery of OOSQL queries, the
naive interpretation, the optimized logical plan, and the physical plan
must all produce identical results on the paper database."""

import pytest

from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.engine.stats import Stats
from repro.rewrite.strategy import Optimizer
from repro.translate import compile_oosql
from repro.workload.paper_db import example_database, example_schema

QUERIES = {
    "flat-selection": 'select p.pname from p in PART where p.color = "red"',
    "projection-tuple": "select (n = p.pname, c = p.color) from p in PART",
    "arith-predicate": "select p.pname from p in PART where p.price * 2 > 40",
    "membership-semijoin": (
        "select s.sname from s in SUPPLIER "
        "where exists p in PART : p.oid in s.parts_supplied and p.price > 20"
    ),
    "antijoin-empty-suppliers": (
        "select s.sname from s in SUPPLIER "
        "where not exists p in PART : p.oid in s.parts_supplied"
    ),
    "universal-quantifier": (
        "select s.sname from s in SUPPLIER "
        "where forall p in PART : p.oid in s.parts_supplied or p.price > 0"
    ),
    "set-inclusion-blocks": (
        "select s.sname from s in SUPPLIER "
        "where s.parts_supplied superseteq "
        'flatten(select t.parts_supplied from t in SUPPLIER where t.sname = "s1")'
    ),
    "from-clause-nesting": (
        "select d from d in (select e from e in DELIVERY "
        'where e.supplier.sname = "s1") where d.date = 940101'
    ),
    "nested-select-clause": (
        "select (sname = s.sname, reds = select p.pname from p in s.parts_supplied "
        'where p.color = "red") from s in SUPPLIER'
    ),
    "aggregate-count": (
        "select s.sname from s in SUPPLIER where count(s.parts_supplied) >= 2"
    ),
    "aggregate-in-select": (
        "select (n = s.sname, k = count(s.parts_supplied)) from s in SUPPLIER"
    ),
    "exists-nonempty": (
        "select d from d in DELIVERY where exists x in d.supply"
    ),
    "multi-binding-join": (
        "select (s = x.sname, p = p.pname) from x in SUPPLIER, p in PART "
        "where p.oid in x.parts_supplied and p.price < 20"
    ),
    "path-expression": (
        "select d.supplier.sname from d in DELIVERY where d.date > 940200"
    ),
    "set-algebra": (
        "select s.sname from s in SUPPLIER, t in SUPPLIER "
        'where t.sname = "s1" and '
        "s.parts_supplied intersect t.parts_supplied = t.parts_supplied"
    ),
    "quantifier-over-supply": (
        "select d.date from d in DELIVERY "
        "where exists x in d.supply : x.quantity > 50"
    ),
    "double-nesting": (
        "select s.sname from s in SUPPLIER where "
        "exists p in s.parts_supplied : "
        '(exists t in SUPPLIER : p in t.parts_supplied and t.sname != s.sname)'
    ),
    "empty-result": 'select p from p in PART where p.color = "purple"',
    "count-zero-table2": (
        "select s.sname from s in SUPPLIER "
        "where count(select p from p in PART "
        "where p.oid in s.parts_supplied) = 0"
    ),
}


@pytest.fixture(scope="module")
def schema():
    return example_schema()


@pytest.fixture(scope="module")
def db():
    return example_database()


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_three_way_agreement(name, schema, db):
    text = QUERIES[name]
    adl = compile_oosql(text, schema)
    naive = Interpreter(db).eval(adl)
    result = Optimizer(schema).optimize(adl)
    optimized = Interpreter(db).eval(result.expr)
    planned = Executor(db).execute(result.expr)
    assert naive == optimized, f"{name}: optimization changed semantics"
    assert naive == planned, f"{name}: physical plan changed semantics"


@pytest.mark.parametrize(
    "name",
    ["membership-semijoin", "antijoin-empty-suppliers", "count-zero-table2"],
)
def test_optimizer_wins_on_correlated_base_table_queries(name, schema, db):
    """For queries with correlated base-table subqueries, the optimized
    physical plan does less work than naive interpretation."""
    adl = compile_oosql(QUERIES[name], schema)
    naive_stats = Stats()
    Interpreter(db, naive_stats).eval(adl)
    result = Optimizer(schema).optimize(adl)
    assert result.set_oriented, name
    exec_stats = Stats()
    Executor(db, exec_stats).execute(result.expr)
    assert exec_stats.total_work() < naive_stats.total_work(), name


def test_expected_answers(schema, db):
    """Spot-check concrete answers so 'agreement' cannot mean 'all empty'."""
    cases = {
        "flat-selection": frozenset({"p0", "p4"}),
        "antijoin-empty-suppliers": frozenset({"s4"}),
        "aggregate-count": frozenset({"s1", "s2", "s3", "s5"}),
        "path-expression": frozenset({"s3", "s5"}),
        "count-zero-table2": frozenset({"s4"}),
    }
    for name, expected in cases.items():
        adl = compile_oosql(QUERIES[name], schema)
        assert Interpreter(db).eval(adl) == expected, name
