"""End-to-end tests of the paper's Section 2 example queries:
OOSQL text → parse → type check → translate → optimize → execute."""

import pytest

from repro.adl import ast as A
from repro.datamodel import VTuple
from repro.engine.interpreter import Interpreter
from repro.engine.planner import Executor
from repro.rewrite.strategy import Optimizer
from repro.translate import compile_oosql
from repro.workload.queries import (
    EXAMPLE_QUERY_1,
    EXAMPLE_QUERY_2,
    EXAMPLE_QUERY_3_1,
    EXAMPLE_QUERY_3_2,
)


@pytest.fixture(scope="module")
def schema():
    from repro.workload.paper_db import example_schema

    return example_schema()


@pytest.fixture(scope="module")
def db():
    from repro.workload.paper_db import example_database

    return example_database()


def run_all_ways(text, schema, db):
    """Naive, optimized-naive, and optimized-planned must agree."""
    adl = compile_oosql(text, schema)
    naive = Interpreter(db).eval(adl)
    result = Optimizer(schema).optimize(adl)
    optimized = Interpreter(db).eval(result.expr)
    planned = Executor(db).execute(result.expr)
    assert naive == optimized == planned
    return naive, result


class TestExampleQuery1:
    """Nesting in the select-clause: supplier names with red part names."""

    def test_results(self, schema, db):
        out, _ = run_all_ways(EXAMPLE_QUERY_1, schema, db)
        by_name = {t["sname"]: t["pnames"] for t in out}
        assert by_name["s1"] == frozenset({"p0"})
        assert by_name["s2"] == frozenset({"p0"})
        assert by_name["s4"] == frozenset()
        assert by_name["s5"] == frozenset({"p4"})

    def test_left_nested_as_paper_prescribes(self, schema, db):
        """The inner block iterates a set-valued attribute, so the paper's
        goal is already met: no rewriting needed."""
        _, result = run_all_ways(EXAMPLE_QUERY_1, schema, db)
        assert result.option == "none-needed"


class TestExampleQuery2:
    """Nesting in the from-clause: 'can be removed easily'."""

    def test_results(self, schema, db):
        out, _ = run_all_ways(EXAMPLE_QUERY_2, schema, db)
        assert len(out) == 1
        (delivery,) = out
        assert delivery["date"] == 940101

    def test_from_nesting_fused_away(self, schema, db):
        _, result = run_all_ways(EXAMPLE_QUERY_2, schema, db)
        # after normalization there is exactly one Select over DELIVERY
        selects = [n for n in result.expr.walk() if isinstance(n, A.Select)]
        assert len(selects) == 1
        assert isinstance(selects[0].source, A.ExtentRef)
        assert "select-fusion" in result.trace.rules_fired


class TestExampleQuery31:
    """Set comparison between blocks: suppliers covering s1's parts."""

    def test_results(self, schema, db):
        out, _ = run_all_ways(EXAMPLE_QUERY_3_1, schema, db)
        # s1 supplies {p0, p1}; s2 supplies {p0..p3} ⊇; s1 trivially covers itself
        assert out == frozenset({"s1", "s2"})

    def test_optimizer_reaches_set_orientation(self, schema, db):
        _, result = run_all_ways(EXAMPLE_QUERY_3_1, schema, db)
        assert result.set_oriented


class TestExampleQuery32:
    """Quantifier over a set-valued attribute: deliveries with red parts."""

    def test_results(self, schema, db):
        out, _ = run_all_ways(EXAMPLE_QUERY_3_2, schema, db)
        dates = sorted(t["date"] for t in out)
        assert dates == [940101, 940301]  # s1's p0 delivery, s5's p4 delivery

    def test_left_nested(self, schema, db):
        """Iteration over d.supply is attribute nesting: kept nested."""
        _, result = run_all_ways(EXAMPLE_QUERY_3_2, schema, db)
        assert result.option == "none-needed"


class TestPhysicalPlansForExamples:
    def test_explains_render(self, schema, db):
        for text in (EXAMPLE_QUERY_1, EXAMPLE_QUERY_2, EXAMPLE_QUERY_3_1, EXAMPLE_QUERY_3_2):
            adl = compile_oosql(text, schema)
            result = Optimizer(schema).optimize(adl)
            text_plan = Executor(db).explain(result.expr)
            assert text_plan  # renders without crashing
