"""The optimization strategy of Section 4 — options, priorities, rollback.

The paper's rewrite strategy:

1. *"Try to rewrite to the various relational join operators (join,
   antijoin, or semijoin)."*  — set-comparison expansion (Tables 1/2), the
   quantifier toolkit, Rule 1 / Rule 2; plus grouping **when Table 3 proves
   it safe** (grouping yields flat relational join queries, Section 5.2.2).
2. *"If the above is not possible, try to flatten set-valued attributes"*
   — the μ option, only when re-nesting can be skipped.
3. *"If the above is not possible, try to rewrite to one of the newly
   defined operators"* — the nestjoin.
4. *"If none of the above works, leave the query as it is"* — nested loops.

Each option is attempted as a *pipeline from the normalized query*; an
attempt is accepted iff it reaches the paper's goal — no base table inside
an iterator parameter (:func:`~repro.rewrite.common.is_set_oriented`).
Failed attempts are rolled back, which operationalizes the paper's warning
that e.g. quantifier expansion "has a negative effect on performance" when
it cannot complete.  A combined relational→nestjoin pipeline handles mixed
queries whose subqueries need different options.  The option order is a
parameter so the ablation benchmark can permute priorities.

**Cost-ranked selection.**  The paper picks the *first* option that
succeeds; which rewrite shape actually wins is data-dependent.  Given a
storage :class:`~repro.storage.catalog.Catalog`, the optimizer instead
runs *every* option pipeline, prices each successful candidate with the
:mod:`~repro.engine.cost` model (after DP join reordering, so candidates
are compared at their best order), and keeps the cheapest — the paper's
priority order survives only as the tie-break.  Every candidate's
estimated cost is recorded on its :class:`~repro.rewrite.trace.RewriteTrace`
so ablations can show when the fixed order disagrees with the statistics.
Without a catalog the first-success behavior is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adl import ast as A
from repro.adl.typecheck import TypeChecker
from repro.datamodel.schema import Schema
from repro.rewrite.common import RewriteContext, is_set_oriented, nested_extent_count
from repro.rewrite.engine import RewriteEngine, Rule
from repro.rewrite.rules_grouping import GROUPING_SAFE_RULES
from repro.rewrite.rules_join import JOIN_RULES, push_right_selection
from repro.rewrite.rules_materialize import MATERIALIZE_RULES
from repro.rewrite.rules_nestjoin import NESTJOIN_RULES
from repro.rewrite.rules_quantifier import QUANTIFIER_RULES
from repro.rewrite.rules_setcmp import SETCMP_RULES
from repro.rewrite.rules_simplify import CLEANUP_RULES, SIMPLIFY_RULES
from repro.rewrite.rules_unnest import UNNEST_RULES
from repro.rewrite.trace import RewriteTrace

#: Relational-phase rule set: expansions + quantifier toolkit + Rule 1/2,
#: with cleanup interleaved so intermediate forms stay canonical.
RELATIONAL_RULES: Tuple[Rule, ...] = tuple(
    list(JOIN_RULES) + list(SETCMP_RULES) + list(QUANTIFIER_RULES) + list(CLEANUP_RULES)
)

#: Final polish: cleanup plus right-operand selection pushdown, safe after
#: every pipeline (it is what gives Example Query 5 its paper-exact shape).
POLISH_RULES: Tuple[Rule, ...] = tuple(list(CLEANUP_RULES) + [push_right_selection])

#: The paper's priority order (Section 4 + the Section 5 summary: "use
#: relational join operators whenever possible" — pure quantifier rewriting
#: first, then Table-3-guarded grouping, which also yields flat relational
#: join queries, then attribute unnesting, then the nestjoin).
DEFAULT_PRIORITY: Tuple[str, ...] = (
    "relational", "grouping", "unnest", "nestjoin", "combined"
)


@dataclass
class Attempt:
    """One optimization pipeline attempt and its outcome.

    ``est_cost`` is the cost model's estimate for the candidate (set only
    under cost-ranked selection, i.e. when the optimizer has a catalog and
    the attempt is set-oriented).
    """

    option: str
    expr: A.Expr
    trace: RewriteTrace
    set_oriented: bool
    nested_extents: int
    est_cost: Optional[float] = None


@dataclass
class OptimizationResult:
    """The outcome of :func:`optimize`."""

    original: A.Expr
    normalized: A.Expr
    chosen: Attempt
    attempts: List[Attempt] = field(default_factory=list)

    @property
    def expr(self) -> A.Expr:
        return self.chosen.expr

    @property
    def option(self) -> str:
        return self.chosen.option

    @property
    def set_oriented(self) -> bool:
        return self.chosen.set_oriented

    @property
    def trace(self) -> RewriteTrace:
        return self.chosen.trace

    @property
    def candidate_costs(self) -> Dict[str, Optional[float]]:
        """Per-option estimated cost (``None`` for uncosted attempts)."""
        return {a.option: a.est_cost for a in self.attempts}

    def render(self) -> str:
        lines = [f"option: {self.option} (set-oriented: {self.set_oriented})"]
        lines.append(self.chosen.trace.render())
        return "\n".join(lines)


class Optimizer:
    """Applies the Section 4 strategy to translated ADL queries."""

    def __init__(
        self,
        schema: Optional[Schema] = None,
        priority: Sequence[str] = DEFAULT_PRIORITY,
        max_steps: int = 2000,
        introduce_materialize: bool = False,
        catalog=None,
        parallel_workers: int = 0,
    ) -> None:
        checker = TypeChecker(schema) if schema is not None else None
        self.ctx = RewriteContext(checker=checker)
        self.engine = RewriteEngine(self.ctx, max_steps=max_steps)
        self.priority = tuple(priority)
        self.introduce_materialize = introduce_materialize
        #: storage catalog (`repro.storage.catalog.Catalog`): when present,
        #: option selection is cost-ranked instead of first-success
        self.catalog = catalog
        #: worker capacity (PR 9): threaded into the cost model so the
        #: shredded-vs-nestjoin pricing sees the same partition-parallel
        #: opportunity the physical planner will; 0 keeps pricing serial
        self.parallel_workers = parallel_workers
        unknown = set(self.priority) - set(self._PIPELINES)
        if unknown:
            raise ValueError(f"unknown optimization options: {sorted(unknown)}")

    # -- pipelines -------------------------------------------------------------
    def _run_relational(self, expr: A.Expr, trace: RewriteTrace) -> A.Expr:
        out = self.engine.run(expr, RELATIONAL_RULES, trace, "relational")
        return self.engine.run(out, POLISH_RULES, trace, "cleanup")

    def _run_grouping(self, expr: A.Expr, trace: RewriteTrace) -> A.Expr:
        """Table-3-guarded [GaWo87] grouping, applied *before* quantifier
        expansion can destroy the query-block shape, then relational rules
        for whatever remains."""
        out = self.engine.run(expr, GROUPING_SAFE_RULES, trace, "grouping")
        out = self.engine.run(out, RELATIONAL_RULES, trace, "relational")
        return self.engine.run(out, POLISH_RULES, trace, "cleanup")

    def _run_unnest(self, expr: A.Expr, trace: RewriteTrace) -> A.Expr:
        out = self.engine.run(expr, UNNEST_RULES, trace, "unnest")
        out = self.engine.run(out, RELATIONAL_RULES, trace, "relational")
        return self.engine.run(out, POLISH_RULES, trace, "cleanup")

    def _run_nestjoin(self, expr: A.Expr, trace: RewriteTrace) -> A.Expr:
        out = self.engine.run(expr, NESTJOIN_RULES, trace, "nestjoin")
        return self.engine.run(out, POLISH_RULES, trace, "cleanup")

    def _run_combined(self, expr: A.Expr, trace: RewriteTrace) -> A.Expr:
        """Mixed queries: some subqueries need the nestjoin, others are
        Rule-1 material.  The nestjoin must go first — quantifier expansion
        would otherwise destroy the query-block shapes it matches on — and
        the relational rules then unnest the remaining quantified
        conjuncts over the nestjoin result."""
        out = self.engine.run(expr, NESTJOIN_RULES + CLEANUP_RULES, trace, "nestjoin")
        out = self.engine.run(out, RELATIONAL_RULES, trace, "relational")
        out = self.engine.run(out, NESTJOIN_RULES + CLEANUP_RULES, trace, "nestjoin")
        out = self.engine.run(out, RELATIONAL_RULES, trace, "relational")
        return self.engine.run(out, POLISH_RULES, trace, "cleanup")

    _PIPELINES = {
        "relational": _run_relational,
        "grouping": _run_grouping,
        "unnest": _run_unnest,
        "nestjoin": _run_nestjoin,
        "combined": _run_combined,
    }

    def _finalize(self, attempt: Attempt) -> Attempt:
        """Optional post-pass: make path expressions explicit ([BlMG93])
        so the planner can use the assembly algorithm.  Purely physical —
        it never changes set-orientation or semantics."""
        if not self.introduce_materialize:
            return attempt
        rewritten = self.engine.run(
            attempt.expr, MATERIALIZE_RULES, attempt.trace, "materialize"
        )
        if rewritten is attempt.expr:
            return attempt
        return Attempt(
            attempt.option,
            rewritten,
            attempt.trace,
            is_set_oriented(rewritten),
            nested_extent_count(rewritten),
            attempt.est_cost,
        )

    def _candidate_cost(self, expr: A.Expr) -> float:
        """Price a rewrite candidate with the PR-2/PR-3 cost model, after
        DP join reordering — so each candidate is compared at the best
        join order available to it, the same one the planner will use."""
        from repro.engine.cost import CostModel
        from repro.engine.joinorder import reorder_joins

        model = CostModel(self.catalog, parallel_workers=self.parallel_workers)
        reordered, _ = reorder_joins(expr, model, self.catalog)
        return model.estimate(reordered).cost

    def _maybe_shred(self, chosen: Attempt, attempts: List[Attempt]) -> Attempt:
        """Query shredding (PR 9) as a *priced* post-selection candidate.

        When the chosen candidate contains an eligible nestjoin, its
        shredded form (flat join + stitch) is built, priced with the same
        cost model, and recorded as a ``"shredded"`` attempt with its own
        :class:`RewriteTrace`.  It replaces the chosen candidate only when
        estimated strictly cheaper — the serial stitch estimate is by
        construction ≥ the nestjoin's, so shredding wins exactly when the
        cost model sees a parallel/flat opportunity the fused nestjoin
        cannot use.  Everything stays inside the planner's priced
        enumeration; there is no shredding switch.
        """
        if self.catalog is None:
            return chosen
        from repro.shred.translate import shred_expr

        shredded = shred_expr(chosen.expr, self.ctx)
        if shredded is None:
            return chosen
        base_cost = chosen.est_cost
        if base_cost is None:
            # price the incumbent too (e.g. the none-needed short-circuit
            # never ran the cost ranking) so the attempts list records
            # comparable numbers for both sides of the verdict
            base_cost = chosen.est_cost = self._candidate_cost(chosen.expr)
        shred_cost = self._candidate_cost(shredded)
        trace = RewriteTrace(chosen.expr)
        trace.steps.extend(chosen.trace.steps)
        attempt = Attempt(
            "shredded",
            shredded,
            trace,
            is_set_oriented(shredded),
            nested_extent_count(shredded),
            shred_cost,
        )
        attempts.append(attempt)
        verdict = (
            f"shredding priced: {chosen.option}≈{base_cost:.0f} vs "
            f"shredded≈{shred_cost:.0f}"
        )
        if shred_cost < base_cost:
            trace.note(f"{verdict} → shredded")
            return attempt
        # ties keep the unshredded plan (the fused nestjoin does less work
        # at equal estimates); record the pricing on the winner's trace
        chosen.trace.note(f"{verdict} → {chosen.option}")
        return chosen

    # -- the strategy ------------------------------------------------------------
    def optimize(self, expr: A.Expr) -> OptimizationResult:
        normalize_trace = RewriteTrace(expr)
        normalized = self.engine.run(expr, SIMPLIFY_RULES, normalize_trace, "normalize")

        attempts: List[Attempt] = []
        if is_set_oriented(normalized):
            # already meets the goal (e.g. only set-valued-attribute nesting,
            # which the paper deliberately leaves nested)
            chosen = self._finalize(
                Attempt("none-needed", normalized, normalize_trace, True, 0)
            )
            # a directly-authored nestjoin arrives here already set-oriented;
            # shredding still competes as a priced alternative (PR 9)
            attempts = [chosen]
            chosen = self._maybe_shred(chosen, attempts)
            return OptimizationResult(expr, normalized, chosen, attempts)

        for option in self.priority:
            trace = RewriteTrace(expr)
            trace.steps.extend(normalize_trace.steps)
            candidate = self._PIPELINES[option](self, normalized, trace)
            attempt = Attempt(
                option,
                candidate,
                trace,
                is_set_oriented(candidate),
                nested_extent_count(candidate),
            )
            attempts.append(attempt)
            # the paper's strategy: first success wins.  With a catalog we
            # keep going — every successful pipeline becomes a candidate.
            if attempt.set_oriented and self.catalog is None:
                return OptimizationResult(
                    expr, normalized, self._finalize(attempt), attempts
                )

        if self.catalog is not None:
            chosen = self._pick_cheapest(attempts)
            if chosen is not None:
                chosen = self._maybe_shred(self._finalize(chosen), attempts)
                return OptimizationResult(expr, normalized, chosen, attempts)

        # option 4: nested loops — keep the best partial unnesting (fewest
        # base tables left inside iterators; ties: fewest rewrite steps)
        fallback = Attempt(
            "nested-loop", normalized, normalize_trace, False, nested_extent_count(normalized)
        )
        attempts.append(fallback)
        chosen = min(attempts, key=lambda a: (a.nested_extents, len(a.trace.steps)))
        if chosen.nested_extents == fallback.nested_extents:
            chosen = fallback  # no attempt improved matters: leave the query as is
        chosen = Attempt(
            f"nested-loop/{chosen.option}" if chosen is not fallback else "nested-loop",
            chosen.expr,
            chosen.trace,
            chosen.set_oriented,
            chosen.nested_extents,
        )
        return OptimizationResult(expr, normalized, chosen, attempts)

    def _pick_cheapest(self, attempts: List[Attempt]) -> Optional[Attempt]:
        """Cost-ranked selection: price every set-oriented candidate and
        keep the cheapest, with the paper's priority order as tie-break.
        Each candidate's estimate lands on its trace; the winner's trace
        additionally records the whole ranking."""
        successes = [a for a in attempts if a.set_oriented]
        if not successes:
            return None
        for attempt in successes:
            attempt.est_cost = self._candidate_cost(attempt.expr)
            attempt.trace.note(f"estimated cost ≈ {attempt.est_cost:.0f}")
        chosen = min(
            successes,
            key=lambda a: (a.est_cost, self.priority.index(a.option)),
        )
        ranking = ", ".join(
            f"{a.option}≈{a.est_cost:.0f}"
            for a in sorted(successes, key=lambda a: a.est_cost)
        )
        chosen.trace.note(f"cost-ranked candidates: {ranking} → {chosen.option}")
        if chosen is not successes[0]:
            chosen.trace.note(
                f"cost model overrode the paper's priority order "
                f"(first success was {successes[0].option})"
            )
        return chosen


def optimize(
    expr: A.Expr,
    schema: Optional[Schema] = None,
    priority: Sequence[str] = DEFAULT_PRIORITY,
    catalog=None,
) -> OptimizationResult:
    """One-shot Section 4 optimization of an ADL expression.

    ``catalog`` (a storage :class:`~repro.storage.catalog.Catalog`)
    switches option selection from first-success to cost-ranked.
    """
    return Optimizer(schema, priority, catalog=catalog).optimize(expr)


def optimize_oosql(
    text: str,
    schema: Optional[Schema] = None,
    priority: Sequence[str] = DEFAULT_PRIORITY,
    catalog=None,
) -> OptimizationResult:
    """Parse, type-check, translate and optimize OOSQL query text."""
    from repro.translate.translator import compile_oosql

    return optimize(compile_oosql(text, schema), schema, priority, catalog)
