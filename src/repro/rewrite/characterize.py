"""Characterization of nested queries — the paper's first future-work item.

Section 7: "First, we need a precise characterization of nested queries
requiring grouping or not."  This module provides that characterization
for the two-block query format of Section 5.1, combining the structural
facts (correlation, operand kinds) with the Table 3 analysis:

* ``FLAT`` — no subquery over a base table at all (attribute nesting
  only, or constants): the paper leaves such queries as they are;
* ``UNCORRELATED`` — the inner block is a constant (Section 3: treated
  as such, evaluated once);
* ``RELATIONAL`` — the predicate between blocks reduces to a (negated)
  existential prefix over the base table: semijoin/antijoin territory,
  no grouping required;
* ``GROUPING_SAFE`` — grouping is required but ``P(x, ∅)`` is statically
  false: the flat [GaWo87] join query is correct;
* ``GROUPING_UNSAFE`` — grouping is required and dangling tuples matter
  (``P(x, ∅)`` true or run-time dependent): only a dangling-preserving
  operator (nestjoin, repaired outerjoin) is correct.

The verdict is *predictive*: ``tests/rewrite/test_characterize.py`` checks
it against what the optimizer actually does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.adl import ast as A
from repro.adl.freevars import free_vars
from repro.rewrite.analysis import TriBool, classify_empty
from repro.rewrite.common import (
    QueryBlock,
    RewriteContext,
    first_correlated_block,
    match_query_block,
    mentions_extent,
)


class NestingClass(enum.Enum):
    """The characterization verdict."""

    FLAT = "flat"
    UNCORRELATED = "uncorrelated"
    RELATIONAL = "relational"
    GROUPING_SAFE = "grouping-safe"
    GROUPING_UNSAFE = "grouping-unsafe"


@dataclass(frozen=True)
class Characterization:
    """Verdict plus the evidence that produced it."""

    verdict: NestingClass
    reason: str
    block: Optional[QueryBlock] = None
    empty_value: Optional[TriBool] = None

    def requires_grouping(self) -> bool:
        return self.verdict in (NestingClass.GROUPING_SAFE, NestingClass.GROUPING_UNSAFE)

    def requires_dangling_preservation(self) -> bool:
        return self.verdict is NestingClass.GROUPING_UNSAFE


def _existential_prefix(pred: A.Expr, block_node: A.Expr) -> bool:
    """Does the between-blocks predicate expand into a single (negated)
    quantifier prefix *over the block*?  Those are Rule 1's territory — no
    grouping.  Per the paper's Table 1 discussion: "expanding operators ∈
    and ⊇ leads to a (negated) existential quantifier expression that is
    suited for unnesting"; the list below adds the symmetric ``Y' ⊆ x.c``
    (Rewriting Example 2), disjointness, and the Table 2 forms."""
    node = pred
    if isinstance(node, A.Not):
        node = node.operand
    if isinstance(node, (A.Exists, A.Forall)) and node.source == block_node:
        return True
    if isinstance(node, A.SetCompare):
        # x.c ∈ Y'  ≡ ∃y ∈ Y' • ... ;  x.c ⊇ Y' ≡ ∀y ∈ Y' • y ∈ x.c
        if node.op in ("in", "notin", "supseteq") and node.right == block_node:
            return True
        # Y' ⊆ x.c ≡ ∀y ∈ Y' • y ∈ x.c (Rewriting Example 2)
        if node.op == "subseteq" and node.left == block_node:
            return True
        # disjointness quantifies over either side (Table 2, row 3)
        if node.op == "disjoint" and block_node in (node.left, node.right):
            return True
    # emptiness/count tests expand to a (negated) existential prefix
    if isinstance(node, A.IsEmpty) and node.operand == block_node:
        return True
    if isinstance(node, A.Compare) and node.op in ("=", "!=", "<", "<=", ">", ">="):
        for side in (node.left, node.right):
            if isinstance(side, A.Aggregate) and side.func == "count" and side.source == block_node:
                other = node.right if side is node.left else node.left
                if isinstance(other, A.Literal) and other.value in (0, 1):
                    return True
    return False


def characterize_select(expr: A.Expr, ctx: Optional[RewriteContext] = None) -> Characterization:
    """Characterize a two-block selection ``σ[x : P(x, Y')](X)``.

    Accepts any expression; non-selections and selections without nested
    base-table blocks come back ``FLAT``.
    """
    if not isinstance(expr, A.Select):
        return Characterization(NestingClass.FLAT, "not a selection")

    # any subquery block over a base table inside the predicate?
    block = first_correlated_block(expr.pred, expr.var)
    if block is None:
        # maybe an *uncorrelated* one
        for node in expr.pred.walk():
            candidate = match_query_block(node)
            if candidate is not None and mentions_extent(candidate.source):
                if expr.var not in free_vars(candidate.node):
                    return Characterization(
                        NestingClass.UNCORRELATED,
                        "inner block does not reference the outer variable: a constant",
                        candidate,
                    )
        if any(isinstance(n, A.ExtentRef) for n in expr.pred.walk()):
            # a bare quantifier over an extent (∃y ∈ Y • p) is relational
            for node in expr.pred.walk():
                if isinstance(node, (A.Exists, A.Forall)) and mentions_extent(node.source):
                    return Characterization(
                        NestingClass.RELATIONAL,
                        "quantifier over a base table: Rule 1 applies directly",
                    )
        return Characterization(
            NestingClass.FLAT, "no base-table subquery in the predicate"
        )

    if _existential_prefix(expr.pred, block.node):
        return Characterization(
            NestingClass.RELATIONAL,
            "between-blocks predicate reduces to a (negated) existential prefix",
            block,
        )

    verdict = classify_empty(expr.pred, block.node)
    if verdict is TriBool.FALSE:
        return Characterization(
            NestingClass.GROUPING_SAFE,
            "P(x, ∅) statically false: dangling-tuple loss is harmless (Table 3)",
            block,
            verdict,
        )
    reason = (
        "P(x, ∅) statically true: every dangling tuple belongs in the result"
        if verdict is TriBool.TRUE
        else "P(x, ∅) run-time dependent"
    )
    return Characterization(
        NestingClass.GROUPING_UNSAFE, reason + " (Table 3)", block, verdict
    )
