"""Materialize introduction — making path expressions explicit ([BlMG93]).

Section 6.2: "path expressions are represented by the operator
materialize ... defined as a new logical algebra operator, with the purpose
to explicitly indicate the use of inter-object references".  In this
reproduction, path expressions through references (``d.supplier.sname``)
evaluate by *implicit* per-access pointer dereference; these rules rewrite
them into an explicit :class:`~repro.adl.ast.Materialize` step, which the
physical planner implements with the page-clustered **assembly** algorithm
instead of one random fetch per access::

    σ[d : P(d.supplier.a, ...)](DELIVERY)
      ≡  π_SCH(DELIVERY)( σ[d : P(d.__supplier_obj.a, ...)](
             mat_{supplier→__supplier_obj : Supplier}(DELIVERY) ))

    α[d : F(d.supplier.a, ...)](DELIVERY)
      ≡  α[d : F(d.__supplier_obj.a, ...)](mat_{...}(DELIVERY))

Firing conditions: the iteration variable's element type is known, the
accessed attribute holds a *typed* oid, and the path is actually followed
(a bare reference comparison like ``d.supplier = e.supplier`` needs no
object).  The map form additionally requires the body not to use the
variable as a whole tuple (the materialized attribute would leak into the
result).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.adl import ast as A
from repro.adl.freevars import free_vars
from repro.datamodel.errors import TypeCheckError
from repro.datamodel.types import OidType, SetType, TupleType
from repro.rewrite.common import RewriteContext
from repro.rewrite.engine import rule


def _element_type(source: A.Expr, ctx: RewriteContext) -> Optional[TupleType]:
    if ctx.checker is None or free_vars(source):
        return None
    try:
        t = ctx.checker.check(source, ctx.env or {})
    except TypeCheckError:
        return None
    if isinstance(t, SetType) and isinstance(t.element, TupleType):
        return t.element
    return None


def _find_deref(body: A.Expr, var: str, element: TupleType) -> Optional[Tuple[str, str]]:
    """Find a followed reference: ``var.ref.attr`` with ``ref`` oid-typed.

    Returns ``(ref_attr, class_name)`` for the first such path.
    """
    for node in body.walk():
        if not isinstance(node, A.AttrAccess):
            continue
        base = node.base
        if not (isinstance(base, A.AttrAccess) and base.base == A.Var(var)):
            continue
        ref_t = element.fields.get(base.attr)
        if isinstance(ref_t, OidType) and ref_t.class_name is not None:
            return base.attr, ref_t.class_name
    return None


def _rewrite_paths(body: A.Expr, var: str, ref: str, obj_attr: str) -> A.Expr:
    """Replace ``var.ref.a`` by ``var.obj_attr.a`` throughout (scope-aware:
    regions where ``var`` is rebound are left alone)."""

    def rec(expr: A.Expr, shadowed: bool) -> A.Expr:
        if (
            not shadowed
            and isinstance(expr, A.AttrAccess)
            and isinstance(expr.base, A.AttrAccess)
            and expr.base.base == A.Var(var)
            and expr.base.attr == ref
        ):
            return A.AttrAccess(A.AttrAccess(A.Var(var), obj_attr), expr.attr)
        if isinstance(expr, (A.Map, A.Select)):
            inner = shadowed or expr.var == var
            field = "body" if isinstance(expr, A.Map) else "pred"
            return dataclasses.replace(
                expr,
                source=rec(expr.source, shadowed),
                **{field: rec(getattr(expr, field), inner)},
            )
        if isinstance(expr, (A.Exists, A.Forall)):
            inner = shadowed or expr.var == var
            return dataclasses.replace(
                expr, source=rec(expr.source, shadowed), pred=rec(expr.pred, inner)
            )
        if isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin, A.NestJoin)):
            inner = shadowed or var in (expr.lvar, expr.rvar)
            changes = dict(
                left=rec(expr.left, shadowed),
                right=rec(expr.right, shadowed),
                pred=rec(expr.pred, inner),
            )
            if isinstance(expr, A.NestJoin):
                changes["result"] = rec(expr.result, inner)
            return dataclasses.replace(expr, **changes)
        return expr.map_children(lambda child: rec(child, shadowed))

    return rec(body, False)


def _uses_var_only_through_attrs(body: A.Expr, var: str) -> bool:
    """No bare ``Var(var)`` occurrences outside attribute accesses (scope-
    aware: shadowed regions don't count)."""

    def rec(expr: A.Expr, shadowed: bool) -> bool:
        if isinstance(expr, A.Var):
            return shadowed or expr.name != var
        if isinstance(expr, A.AttrAccess) and expr.base == A.Var(var) and not shadowed:
            return True
        if isinstance(expr, (A.Map, A.Select)):
            inner = shadowed or expr.var == var
            child = expr.body if isinstance(expr, A.Map) else expr.pred
            return rec(expr.source, shadowed) and rec(child, inner)
        if isinstance(expr, (A.Exists, A.Forall)):
            inner = shadowed or expr.var == var
            return rec(expr.source, shadowed) and rec(expr.pred, inner)
        if isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin, A.NestJoin)):
            inner = shadowed or var in (expr.lvar, expr.rvar)
            ok = rec(expr.left, shadowed) and rec(expr.right, shadowed) and rec(expr.pred, inner)
            if isinstance(expr, A.NestJoin):
                ok = ok and rec(expr.result, inner)
            return ok
        return all(rec(child, shadowed) for child in expr.child_exprs())

    return rec(body, False)


def _obj_attr_name(ref: str, element: TupleType) -> str:
    base = f"__{ref}_obj"
    name = base
    counter = 1
    while name in element.fields:
        name = f"{base}{counter}"
        counter += 1
    return name


@rule("materialize-select")
def materialize_select(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Introduce assembly under a selection that follows a reference."""
    if not isinstance(expr, A.Select):
        return None
    element = _element_type(expr.source, ctx)
    if element is None:
        return None
    deref = _find_deref(expr.pred, expr.var, element)
    if deref is None:
        return None
    ref, class_name = deref
    obj_attr = _obj_attr_name(ref, element)
    new_pred = _rewrite_paths(expr.pred, expr.var, ref, obj_attr)
    if new_pred == expr.pred:
        return None  # the path occurrence was shadowed: nothing to gain
    materialized = A.Materialize(expr.source, ref, obj_attr, class_name)
    return A.Project(
        A.Select(expr.var, new_pred, materialized),
        tuple(sorted(element.fields)),
    )


@rule("materialize-map")
def materialize_map(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Introduce assembly under a map that follows a reference."""
    if not isinstance(expr, A.Map):
        return None
    element = _element_type(expr.source, ctx)
    if element is None:
        return None
    deref = _find_deref(expr.body, expr.var, element)
    if deref is None:
        return None
    if not _uses_var_only_through_attrs(expr.body, expr.var):
        return None  # the materialized attribute would leak into the result
    ref, class_name = deref
    obj_attr = _obj_attr_name(ref, element)
    new_body = _rewrite_paths(expr.body, expr.var, ref, obj_attr)
    if new_body == expr.body:
        return None  # the path occurrence was shadowed: nothing to gain
    materialized = A.Materialize(expr.source, ref, obj_attr, class_name)
    return A.Map(expr.var, new_body, materialized)


MATERIALIZE_RULES = (materialize_select, materialize_map)
