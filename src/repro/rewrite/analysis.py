"""Static reduction of ``P(x, ∅)`` — the paper's Table 3 analysis.

Section 5.2.2's result: unnesting-by-grouping loses dangling outer tuples
in the join, and whether that is a bug depends on the value the
between-blocks predicate takes when the subquery is empty:

* ``P(x, ∅)`` statically **false** — dangling tuples must be excluded
  anyway; the grouping rewrite is *correct*;
* statically **true** — *all* dangling tuples belong in the result; the
  plain grouping rewrite is wrong, but repairable (outerjoin / nestjoin);
* **unknown** (run-time dependent, e.g. ``x.c ⊆ Y'`` which holds iff
  ``x.c = ∅``) — only an operator that keeps empty groups (nestjoin,
  outerjoin) is safe.

:func:`classify_empty` substitutes the empty set for the subquery and runs
a three-valued partial evaluator over the predicate.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.adl import ast as A
from repro.rewrite.common import replace_subexpr


class TriBool(enum.Enum):
    """Three-valued static truth."""

    FALSE = "false"
    TRUE = "true"
    UNKNOWN = "?"

    def __invert__(self) -> "TriBool":
        if self is TriBool.TRUE:
            return TriBool.FALSE
        if self is TriBool.FALSE:
            return TriBool.TRUE
        return TriBool.UNKNOWN

    def __and__(self, other: "TriBool") -> "TriBool":
        if TriBool.FALSE in (self, other):
            return TriBool.FALSE
        if self is TriBool.TRUE and other is TriBool.TRUE:
            return TriBool.TRUE
        return TriBool.UNKNOWN

    def __or__(self, other: "TriBool") -> "TriBool":
        if TriBool.TRUE in (self, other):
            return TriBool.TRUE
        if self is TriBool.FALSE and other is TriBool.FALSE:
            return TriBool.FALSE
        return TriBool.UNKNOWN


_EMPTY = A.SetExpr(())


def classify_empty(pred: A.Expr, subquery: A.Expr) -> TriBool:
    """Value of ``pred`` with ``∅`` substituted for ``subquery``.

    This is exactly the paper's test for whether the grouping technique is
    safe: "the unnesting technique used here is guaranteed to deliver
    correct results only if P(x, ∅) can be statically reduced to false."
    """
    return reduce_static(replace_subexpr(pred, subquery, _EMPTY))


def is_statically_empty(expr: A.Expr) -> Optional[bool]:
    """Is the (set-valued) expression statically the empty set?

    ``True``/``False`` when decidable, ``None`` when unknown.  Iterators
    over the empty set produce the empty set; everything data-dependent is
    unknown.
    """
    if isinstance(expr, A.SetExpr):
        return len(expr.elements) == 0
    if isinstance(expr, A.Literal):
        if isinstance(expr.value, frozenset):
            return len(expr.value) == 0
        return None
    if isinstance(expr, (A.Select, A.Map, A.Project, A.Rename, A.Flatten, A.Unnest, A.Nest)):
        return True if is_statically_empty(expr.source) else None
    if isinstance(expr, (A.CartProd, A.Join, A.SemiJoin, A.AntiJoin)):
        if is_statically_empty(expr.left):
            return True
        if isinstance(expr, (A.CartProd, A.Join)) and is_statically_empty(expr.right):
            return True
        return None
    if isinstance(expr, A.NestJoin):
        return True if is_statically_empty(expr.left) else None
    if isinstance(expr, A.Union):
        left = is_statically_empty(expr.left)
        right = is_statically_empty(expr.right)
        if left and right:
            return True
        if left is False or right is False:
            return False
        return None
    if isinstance(expr, A.Intersect):
        if is_statically_empty(expr.left) or is_statically_empty(expr.right):
            return True
        return None
    if isinstance(expr, A.Difference):
        return True if is_statically_empty(expr.left) else None
    return None


def _static_int(expr: A.Expr) -> Optional[int]:
    if isinstance(expr, A.Literal) and isinstance(expr.value, int) and not isinstance(expr.value, bool):
        return expr.value
    if isinstance(expr, A.Aggregate) and expr.func == "count":
        emptiness = is_statically_empty(expr.source)
        if emptiness:
            return 0
        return None
    return None


def reduce_static(pred: A.Expr) -> TriBool:
    """Three-valued partial evaluation of a boolean expression."""
    if isinstance(pred, A.Literal):
        if pred.value is True:
            return TriBool.TRUE
        if pred.value is False:
            return TriBool.FALSE
        return TriBool.UNKNOWN

    if isinstance(pred, A.Not):
        return ~reduce_static(pred.operand)

    if isinstance(pred, A.And):
        return reduce_static(pred.left) & reduce_static(pred.right)

    if isinstance(pred, A.Or):
        return reduce_static(pred.left) | reduce_static(pred.right)

    if isinstance(pred, A.IsEmpty):
        emptiness = is_statically_empty(pred.operand)
        if emptiness is None:
            return TriBool.UNKNOWN
        return TriBool.TRUE if emptiness else TriBool.FALSE

    if isinstance(pred, A.Exists):
        # ∃ over the empty set is false regardless of the body
        if is_statically_empty(pred.source):
            return TriBool.FALSE
        body = reduce_static(pred.pred)
        if body is TriBool.FALSE:
            return TriBool.FALSE
        return TriBool.UNKNOWN

    if isinstance(pred, A.Forall):
        # ∀ over the empty set is true regardless of the body
        if is_statically_empty(pred.source):
            return TriBool.TRUE
        body = reduce_static(pred.pred)
        if body is TriBool.TRUE:
            return TriBool.TRUE
        return TriBool.UNKNOWN

    if isinstance(pred, A.SetCompare):
        return _reduce_setcompare(pred)

    if isinstance(pred, A.Compare):
        return _reduce_compare(pred)

    return TriBool.UNKNOWN


def _reduce_setcompare(pred: A.SetCompare) -> TriBool:
    op = pred.op
    left_empty = is_statically_empty(pred.left)
    right_empty = is_statically_empty(pred.right)

    if op == "in":
        # e ∈ ∅ is false
        if right_empty:
            return TriBool.FALSE
        return TriBool.UNKNOWN
    if op == "notin":
        if right_empty:
            return TriBool.TRUE
        return TriBool.UNKNOWN
    if op in ("ni", "notni"):
        # x.c ∋ ∅ asks whether ∅ is a member of x.c — run-time dependent
        # (Table 3's last row); only an empty left side decides it.
        if left_empty:
            return TriBool.FALSE if op == "ni" else TriBool.TRUE
        return TriBool.UNKNOWN
    if op == "subset":
        # x.c ⊂ ∅ is false (nothing is a proper subset of the empty set):
        # Table 3, first row
        if right_empty:
            return TriBool.FALSE
        if left_empty:
            return TriBool.TRUE if right_empty is False else TriBool.UNKNOWN
        return TriBool.UNKNOWN
    if op == "subseteq":
        # x.c ⊆ ∅ iff x.c = ∅: run-time dependent (Table 3 row 2)
        if left_empty:
            return TriBool.TRUE
        if right_empty and left_empty is False:
            return TriBool.FALSE
        return TriBool.UNKNOWN
    if op == "seteq":
        if left_empty and right_empty:
            return TriBool.TRUE
        if (left_empty and right_empty is False) or (right_empty and left_empty is False):
            return TriBool.FALSE
        return TriBool.UNKNOWN
    if op == "setneq":
        return ~_reduce_setcompare(A.SetCompare("seteq", pred.left, pred.right))
    if op == "supseteq":
        # x.c ⊇ ∅ is true (Table 3 row 4)
        if right_empty:
            return TriBool.TRUE
        if left_empty and right_empty is False:
            return TriBool.FALSE
        return TriBool.UNKNOWN
    if op == "supset":
        # x.c ⊃ ∅ iff x.c ≠ ∅: run-time dependent (Table 3 row 5)
        if left_empty:
            return TriBool.FALSE
        if right_empty and left_empty is False:
            return TriBool.TRUE
        return TriBool.UNKNOWN
    if op == "disjoint":
        if left_empty or right_empty:
            return TriBool.TRUE
        return TriBool.UNKNOWN
    return TriBool.UNKNOWN


def _reduce_compare(pred: A.Compare) -> TriBool:
    left_int = _static_int(pred.left)
    right_int = _static_int(pred.right)
    if left_int is None or right_int is None:
        left_lit = pred.left.value if isinstance(pred.left, A.Literal) else None
        right_lit = pred.right.value if isinstance(pred.right, A.Literal) else None
        if isinstance(pred.left, A.Literal) and isinstance(pred.right, A.Literal):
            try:
                outcome = {
                    "=": left_lit == right_lit,
                    "!=": left_lit != right_lit,
                    "<": left_lit < right_lit,  # type: ignore[operator]
                    "<=": left_lit <= right_lit,  # type: ignore[operator]
                    ">": left_lit > right_lit,  # type: ignore[operator]
                    ">=": left_lit >= right_lit,  # type: ignore[operator]
                }[pred.op]
            except TypeError:
                return TriBool.UNKNOWN
            return TriBool.TRUE if outcome else TriBool.FALSE
        return TriBool.UNKNOWN
    outcome = {
        "=": left_int == right_int,
        "!=": left_int != right_int,
        "<": left_int < right_int,
        "<=": left_int <= right_int,
        ">": left_int > right_int,
        ">=": left_int >= right_int,
    }[pred.op]
    return TriBool.TRUE if outcome else TriBool.FALSE
