"""Rewrite traces — every derivation step, in the paper's notation.

The paper presents its rewriting examples as chains of ≡-steps; the engine
records the same chain so tests can assert on intermediate forms and the
benchmark output can print derivations next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.adl import ast as A
from repro.adl.pretty import pretty


@dataclass(frozen=True)
class RewriteStep:
    """One rule firing: the whole expression before and after."""

    rule: str
    before: A.Expr
    after: A.Expr
    phase: str = ""

    def render(self) -> str:
        tag = f"[{self.phase}:{self.rule}]" if self.phase else f"[{self.rule}]"
        return f"≡ {pretty(self.after)}    {tag}"


@dataclass
class RewriteTrace:
    """The full derivation: the input plus every step.

    ``notes`` carries non-derivation annotations — most importantly the
    cost-ranked strategy's per-candidate cost estimates, so ablations can
    see when the paper's priority order disagrees with the cost model.
    """

    start: A.Expr
    steps: List[RewriteStep] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def record(self, rule: str, before: A.Expr, after: A.Expr, phase: str = "") -> None:
        self.steps.append(RewriteStep(rule, before, after, phase))

    def note(self, message: str) -> None:
        self.notes.append(message)

    @property
    def result(self) -> A.Expr:
        return self.steps[-1].after if self.steps else self.start

    @property
    def rules_fired(self) -> List[str]:
        return [step.rule for step in self.steps]

    def render(self) -> str:
        lines = [f"  {pretty(self.start)}"]
        lines.extend(f"  {step.render()}" for step in self.steps)
        lines.extend(f"  -- {note}" for note in self.notes)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.steps)
