"""Unnesting by grouping — the [Kim82]/[GaWo87] technique, Section 5.2.2.

The transformation turns a nested selection with an arbitrary predicate
between blocks into a *flat join query*::

    σ[x : P(x, σ[y : Q(x,y)](Y))](X)
      ≡?  π_SCH(X)( σ[z : P'(z, z.grp)]( ν_{SCH(Y)→grp}( X ⋈⟨x,y : Q⟩ Y )))

(1) a join evaluates the inner-block predicate, (2) a nest groups the join
result by the X-attributes, (3) a selection evaluates the between-blocks
predicate over each group, (4) a projection restores the X schema.

**This is deliberately reproducible as buggy.**  Outer tuples with no join
partner — *dangling tuples* — are lost in step (1); whether that is wrong
depends on ``P(x, ∅)`` (Table 3).  The paper names the resulting failure
the **Complex Object bug** (Figure 2).  Three entry points:

* :func:`unnest_by_grouping` — the raw transformation, used by the
  Figure 2 benchmark to exhibit the bug;
* :data:`grouping_safe` — a rule guarded by the Table 3 analysis: it only
  fires when ``P(x, ∅)`` statically reduces to **false**, which is the
  paper's correctness condition;
* :data:`grouping_outerjoin` — the [GaWo87] repair: replace the join with
  a left outerjoin and strip the null-padded tuple from each group, so
  dangling tuples survive with an empty group.
"""

from __future__ import annotations

from typing import Optional

from repro.adl import ast as A
from repro.adl.freevars import all_var_names, fresh_name
from repro.rewrite.analysis import TriBool, classify_empty
from repro.rewrite.common import (
    QueryBlock,
    RewriteContext,
    first_correlated_block,
    replace_subexpr,
)
from repro.rewrite.engine import rule


def _plan(expr: A.Expr, ctx: RewriteContext, use_outerjoin: bool):
    """Shared matcher/builder; returns the rewritten expression or None."""
    if not isinstance(expr, A.Select):
        return None
    block = first_correlated_block(expr.pred, expr.var)
    if block is None:
        return None
    x_attrs = ctx.tuple_attrs(expr.source)
    y_attrs = ctx.tuple_attrs(block.source)
    if x_attrs is None or y_attrs is None:
        return None  # schema unavailable: grouping needs attribute lists
    if set(x_attrs) & set(y_attrs):
        return None  # join concatenation would clash; renaming not modeled here

    avoid = all_var_names(expr) | set(x_attrs) | set(y_attrs)
    z = fresh_name("z", avoid)
    grp = fresh_name("grp", avoid | {z})

    if use_outerjoin:
        joined: A.Expr = A.OuterJoin(
            expr.source, block.source, expr.var, block.var, block.pred, tuple(y_attrs)
        )
    else:
        joined = A.Join(expr.source, block.source, expr.var, block.var, block.pred)
    nested = A.Nest(joined, tuple(y_attrs), grp)

    group_expr: A.Expr = A.AttrAccess(A.Var(z), grp)
    if use_outerjoin:
        # strip the null-padded tuple: a dangling left tuple's group becomes ∅
        g = fresh_name("g", avoid | {z, grp})
        all_null = None
        for attr in y_attrs:
            test = A.Compare("=", A.AttrAccess(A.Var(g), attr), A.Literal(None))
            all_null = test if all_null is None else A.And(all_null, test)
        assert all_null is not None
        group_expr = A.Select(g, A.Not(all_null), group_expr)

    if not block.is_identity_result:
        # the block's select-clause G(x, y) is applied lazily over the group
        group_expr = A.Map(block.var, block.result, group_expr)

    new_pred = replace_subexpr(expr.pred, block.node, group_expr)
    from repro.adl.subst import substitute

    new_pred = substitute(new_pred, {expr.var: A.TupleSubscript(A.Var(z), tuple(x_attrs))})
    return A.Project(A.Select(z, new_pred, nested), tuple(x_attrs))


def unnest_by_grouping(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """The raw [GaWo87] grouping transformation — **loses dangling tuples**.

    Exposed unguarded so the Figure 2 benchmark can demonstrate the Complex
    Object bug; the optimizer itself only uses the guarded variants below.
    """
    return _plan(expr, ctx, use_outerjoin=False)


@rule("grouping-unnest-safe")
def grouping_safe(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Grouping, guarded by Table 3: fire only when ``P(x, ∅)`` is
    statically **false** — then dangling-tuple loss is exactly the intended
    filtering and the flat join query is correct."""
    if not isinstance(expr, A.Select):
        return None
    block = first_correlated_block(expr.pred, expr.var)
    if block is None:
        return None
    if classify_empty(expr.pred, block.node) is not TriBool.FALSE:
        return None
    return _plan(expr, ctx, use_outerjoin=False)


@rule("grouping-outerjoin")
def grouping_outerjoin(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Grouping over a left outerjoin — the [GaWo87] COUNT-bug repair.

    Safe for every ``P``: dangling tuples survive the outerjoin, and the
    null-padded row is filtered out of each group, so a dangling tuple
    carries the empty group exactly as the nested semantics requires.
    (Caveat, inherited from the original: a legitimate all-null inner tuple
    would be indistinguishable from padding.)
    """
    return _plan(expr, ctx, use_outerjoin=True)


GROUPING_SAFE_RULES = (grouping_safe,)
GROUPING_OUTERJOIN_RULES = (grouping_outerjoin,)
