"""Logical optimization: rewriting nested ADL queries into join queries.

The package implements Sections 4–6 of the paper:

* :mod:`repro.rewrite.engine` — rule framework and fixpoint driver;
* :mod:`repro.rewrite.rules_simplify` — normalization / from-clause fusion;
* :mod:`repro.rewrite.rules_setcmp` — Tables 1 and 2;
* :mod:`repro.rewrite.rules_quantifier` — range transformation, negation
  pushing, quantifier exchange (Rewriting Examples 1–3);
* :mod:`repro.rewrite.rules_join` — Rule 1 and Rule 2;
* :mod:`repro.rewrite.rules_grouping` — [GaWo87] grouping, the Complex
  Object bug, and the outerjoin repair;
* :mod:`repro.rewrite.rules_nestjoin` — the nestjoin rewrites;
* :mod:`repro.rewrite.rules_unnest` — set-valued attribute flattening;
* :mod:`repro.rewrite.analysis` — the Table 3 ``P(x, ∅)`` reducer;
* :mod:`repro.rewrite.strategy` — the Section 4 priority strategy.
"""

from repro.rewrite.analysis import TriBool, classify_empty, reduce_static
from repro.rewrite.characterize import (
    Characterization,
    NestingClass,
    characterize_select,
)
from repro.rewrite.common import (
    RewriteContext,
    is_set_oriented,
    mentions_extent,
    nested_extent_count,
)
from repro.rewrite.engine import RewriteEngine, Rule, rule
from repro.rewrite.strategy import (
    DEFAULT_PRIORITY,
    OptimizationResult,
    Optimizer,
    optimize,
    optimize_oosql,
)
from repro.rewrite.trace import RewriteStep, RewriteTrace

__all__ = [
    "Characterization",
    "DEFAULT_PRIORITY",
    "NestingClass",
    "OptimizationResult",
    "Optimizer",
    "characterize_select",
    "RewriteContext",
    "RewriteEngine",
    "RewriteStep",
    "RewriteTrace",
    "Rule",
    "TriBool",
    "classify_empty",
    "is_set_oriented",
    "mentions_extent",
    "nested_extent_count",
    "optimize",
    "optimize_oosql",
    "reduce_static",
    "rule",
]
