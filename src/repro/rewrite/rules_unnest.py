"""Attribute unnesting — optimization option 1 (Section 4, Example Query 4).

When nesting is caused by iteration over a *set-valued attribute*, the
attribute can be flattened with ``μ`` so the iteration becomes top-level.
The paper restricts the option to the cases where it is sound and
worthwhile:

* the final re-nesting ``ν`` must not be required — here: the enclosing
  projection drops the set-valued attribute anyway; and
* tuples with an *empty* set-valued attribute may be dropped by ``μ`` —
  sound exactly when the iteration is an existential quantification
  (``∃`` over ``∅`` is false), which is the shape this rule matches::

      π_A(σ[x : ∃w ∈ x.c • p](X))  ≡  π_A(σ[u : p'](μ_c(X)))
          when c ∉ A, p uses x only through attributes other than c

Example Query 4 then finishes with Rule 1:  the inner ``∄p ∈ PART • ...``
becomes an antijoin over the unnested operand — the paper's
``π_oid(μ_parts(SUPPLIER) ▷ PART)``.
"""

from __future__ import annotations

from typing import Optional

from repro.adl import ast as A
from repro.adl.freevars import all_var_names, free_vars, fresh_name
from repro.adl.subst import substitute
from repro.datamodel.errors import TypeCheckError
from repro.datamodel.types import SetType, TupleType
from repro.rewrite.common import RewriteContext
from repro.rewrite.engine import rule


def _uses_only_attrs(pred: A.Expr, var: str, forbidden_attr: str) -> bool:
    """Every free use of ``var`` in ``pred`` must be an attribute access
    ``var.a`` with ``a != forbidden_attr`` — whole-tuple uses or uses of the
    flattened attribute cannot be rewritten after the unnest."""

    def rec(expr: A.Expr, shadowed: bool) -> bool:
        if isinstance(expr, A.Var):
            return shadowed or expr.name != var
        if isinstance(expr, A.AttrAccess) and expr.base == A.Var(var) and not shadowed:
            return expr.attr != forbidden_attr
        if isinstance(expr, (A.Map, A.Select)):
            body = expr.body if isinstance(expr, A.Map) else expr.pred
            inner_shadowed = shadowed or expr.var == var
            return rec(expr.source, shadowed) and rec(body, inner_shadowed)
        if isinstance(expr, (A.Exists, A.Forall)):
            inner_shadowed = shadowed or expr.var == var
            return rec(expr.source, shadowed) and rec(expr.pred, inner_shadowed)
        if isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin, A.NestJoin)):
            inner_shadowed = shadowed or var in (expr.lvar, expr.rvar)
            ok = rec(expr.left, shadowed) and rec(expr.right, shadowed)
            ok = ok and rec(expr.pred, inner_shadowed)
            if isinstance(expr, A.NestJoin):
                ok = ok and rec(expr.result, inner_shadowed)
            return ok
        return all(rec(child, shadowed) for child in expr.child_exprs())

    return rec(pred, False)


@rule("unnest-attribute")
def unnest_attribute(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """``π_A(σ[x : ∃w ∈ x.c • p](X)) ≡ π_A(σ[u : p'](μ_c(X)))``."""
    if not isinstance(expr, A.Project):
        return None
    select = expr.source
    if not isinstance(select, A.Select):
        return None
    quant = select.pred
    if not isinstance(quant, A.Exists):
        return None
    attr_range = quant.source
    if not (isinstance(attr_range, A.AttrAccess) and attr_range.base == A.Var(select.var)):
        return None
    c = attr_range.attr
    if c in expr.attrs:
        return None  # the result still needs the set-valued attribute
    if ctx.checker is None:
        return None
    try:
        source_t = ctx.checker.check(select.source, ctx.env or {})
    except TypeCheckError:
        return None
    if not (isinstance(source_t, SetType) and isinstance(source_t.element, TupleType)):
        return None
    element_t = source_t.element
    if c not in element_t.fields:
        return None
    inner_t = element_t.fields[c]
    if not (isinstance(inner_t, SetType) and isinstance(inner_t.element, TupleType)):
        return None  # μ needs tuple-valued members
    member_attrs = tuple(sorted(inner_t.element.fields))
    rest_attrs = tuple(sorted(a for a in element_t.fields if a != c))
    if set(member_attrs) & set(rest_attrs):
        return None  # concatenation would clash
    if not set(expr.attrs) <= set(rest_attrs):
        return None
    if not _uses_only_attrs(quant.pred, select.var, c):
        return None

    avoid = all_var_names(expr) | set(member_attrs) | set(rest_attrs)
    u = fresh_name("u", avoid)
    # the member variable becomes the member attributes of u; the outer
    # variable's remaining attributes live in u directly
    new_pred = substitute(
        quant.pred,
        {
            quant.var: A.TupleSubscript(A.Var(u), member_attrs),
            select.var: A.TupleSubscript(A.Var(u), rest_attrs),
        },
    )
    return A.Project(
        A.Select(u, new_pred, A.Unnest(select.source, c)),
        expr.attrs,
    )


UNNEST_RULES = (unnest_attribute,)
