"""The rewrite engine: rules, phases, and fixpoint application.

A :class:`Rule` is a named pure function ``(expr, ctx) -> Expr | None``
that tries to rewrite *the root* of the given expression.  A rule that
does not fire must return ``None`` (or its input unchanged) — never a
structurally-equal copy, because the engine detects progress by object
identity.  The engine lifts root rules to whole trees (top-down, first
match), and runs rule sets to a fixpoint with a step budget as a
termination backstop.

Rules never mutate; every firing is recorded in a
:class:`~repro.rewrite.trace.RewriteTrace` so the derivation can be
replayed against the paper's rewriting examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.adl import ast as A
from repro.datamodel.errors import RewriteError
from repro.rewrite.common import RewriteContext
from repro.rewrite.trace import RewriteTrace

RuleFn = Callable[[A.Expr, RewriteContext], Optional[A.Expr]]


@dataclass(frozen=True)
class Rule:
    """A named root-rewrite."""

    name: str
    fn: RuleFn

    def apply(self, expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
        return self.fn(expr, ctx)


def rule(name: str) -> Callable[[RuleFn], Rule]:
    """Decorator: ``@rule("name")`` turns a function into a :class:`Rule`."""

    def wrap(fn: RuleFn) -> Rule:
        return Rule(name, fn)

    return wrap


class RewriteEngine:
    """Applies rule sets to expressions, to a fixpoint, with tracing."""

    def __init__(self, ctx: Optional[RewriteContext] = None, max_steps: int = 2000) -> None:
        self.ctx = ctx or RewriteContext()
        self.max_steps = max_steps

    # -- single pass ---------------------------------------------------------
    def apply_once(
        self, expr: A.Expr, rules: Sequence[Rule]
    ) -> Optional[Tuple[str, A.Expr]]:
        """Try every rule at every node (pre-order); first hit wins.

        Returns ``(rule_name, new_whole_expr)`` or ``None`` if nothing fired.

        Change detection is by *identity*, not structural equality: a rule
        signals "no rewrite" by returning ``None`` (or the node it was
        given), never a structurally-equal copy — the deep ``!=`` this used
        to pay on every attempted rule at every node was O(tree) per
        attempt, dominating fixpoint runs.  All shipped rules satisfy the
        contract (each firing changes the root node type or adds
        structure; the materialize rules explicitly return ``None`` when
        their path rewrite is a no-op).
        """
        for r in rules:
            rewritten = r.apply(expr, self.ctx)
            if rewritten is not None and rewritten is not expr:
                return r.name, rewritten

        # descend: rebuild around the first child that rewrites
        hit: List[Optional[str]] = [None]

        def try_child(child: A.Expr) -> A.Expr:
            if hit[0] is not None:
                return child
            result = self.apply_once(child, rules)
            if result is None:
                return child
            hit[0] = result[0]
            return result[1]

        new_expr = expr.map_children(try_child)
        if hit[0] is not None:
            return hit[0], new_expr
        return None

    # -- fixpoint -------------------------------------------------------------
    def run(
        self,
        expr: A.Expr,
        rules: Sequence[Rule],
        trace: Optional[RewriteTrace] = None,
        phase: str = "",
    ) -> A.Expr:
        """Apply ``rules`` repeatedly until none fires anywhere."""
        steps = 0
        current = expr
        while True:
            result = self.apply_once(current, rules)
            if result is None:
                return current
            steps += 1
            if steps > self.max_steps:
                raise RewriteError(
                    f"rewrite did not terminate within {self.max_steps} steps "
                    f"(phase {phase or 'unnamed'}; last rule {result[0]})"
                )
            name, new_expr = result
            if trace is not None:
                trace.record(name, current, new_expr, phase)
            current = new_expr

    def run_phases(
        self,
        expr: A.Expr,
        phases: Iterable[Tuple[str, Sequence[Rule]]],
        trace: Optional[RewriteTrace] = None,
    ) -> A.Expr:
        current = expr
        for phase_name, rules in phases:
            current = self.run(current, rules, trace, phase_name)
        return current
