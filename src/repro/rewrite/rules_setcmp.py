"""Set-comparison → quantifier rewrites: the paper's Table 1 and Table 2.

Every set comparison operator expands into a quantifier expression over the
subquery operand (Table 1); several other predicate forms — emptiness
tests, ``count(Y') = 0``, disjointness — do too (Table 2).  Expansion is
the *enabler*: once the predicate is quantifier-shaped, the range
transformation and Rule 1 (see :mod:`repro.rewrite.rules_join`) can turn
the whole selection into a semijoin or antijoin.

The rules fire only when one operand mentions a base table — expanding a
comparison between two stored set-valued attributes has no unnesting
payoff and the paper warns it can hurt ("in other cases, rewriting into
quantifiers has a negative effect on performance", Section 5.2).
:func:`expand_setcompare` exposes the raw, unguarded expansion for the
Table 1 benchmark, which checks all eight rows by evaluation.
"""

from __future__ import annotations

from typing import Optional

from repro.adl import ast as A
from repro.adl.freevars import all_var_names, fresh_name
from repro.rewrite.common import RewriteContext, mentions_extent
from repro.rewrite.engine import rule

TRUE = A.Literal(True)
_EMPTY = A.SetExpr(())


def _fresh_pair(expr: A.Expr):
    avoid = all_var_names(expr)
    z = fresh_name("z", avoid)
    y = fresh_name("y", avoid | {z})
    return z, y


def expand_setcompare(expr: A.SetCompare) -> A.Expr:
    """Unconditional Table 1 / Table 2 expansion of one set comparison.

    With ``c`` the left and ``Y'`` the right operand:

    ========  =====================================================
    ``∈``     ``∃y ∈ Y' • y = c``
    ``⊂``     ``(∀z ∈ c • ∃y ∈ Y' • z = y) ∧ (∃y ∈ Y' • y ∉ c)``
    ``⊆``     ``∀z ∈ c • ∃y ∈ Y' • z = y``
    ``=``     ``(∀z ∈ c • ∃y ∈ Y' • z = y) ∧ (∀y ∈ Y' • y ∈ c)``
    ``⊇``     ``∀y ∈ Y' • y ∈ c``
    ``⊃``     ``(∀y ∈ Y' • y ∈ c) ∧ (∃z ∈ c • ¬∃y ∈ Y' • z = y)``
    ``∋``     ``∃z ∈ c • z = Y'``
    disjoint  ``¬∃y ∈ Y' • y ∈ c``   (Table 2, row 3)
    ========  =====================================================

    Negated operators expand to the negation of their positive form
    ("negating the operator negates the quantifier expression").
    """
    c, y_prime = expr.left, expr.right
    z, y = _fresh_pair(expr)
    op = expr.op

    def covers() -> A.Expr:  # ∀z ∈ c • ∃y ∈ Y' • z = y   (c ⊆ Y')
        return A.Forall(z, c, A.Exists(y, y_prime, A.Compare("=", A.Var(z), A.Var(y))))

    def contains_all() -> A.Expr:  # ∀y ∈ Y' • y ∈ c   (c ⊇ Y')
        return A.Forall(y, y_prime, A.SetCompare("in", A.Var(y), c))

    def missing_some() -> A.Expr:  # ∃y ∈ Y' • y ∉ c
        return A.Exists(y, y_prime, A.SetCompare("notin", A.Var(y), c))

    def extra_some() -> A.Expr:  # ∃z ∈ c • ¬∃y ∈ Y' • z = y
        return A.Exists(
            z, c, A.Not(A.Exists(y, y_prime, A.Compare("=", A.Var(z), A.Var(y))))
        )

    if op == "in":
        return A.Exists(y, y_prime, A.Compare("=", A.Var(y), c))
    if op == "notin":
        return A.Not(A.Exists(y, y_prime, A.Compare("=", A.Var(y), c)))
    if op == "subset":
        return A.And(covers(), missing_some())
    if op == "subseteq":
        return covers()
    if op == "seteq":
        return A.And(covers(), contains_all())
    if op == "setneq":
        return A.Not(A.And(covers(), contains_all()))
    if op == "supseteq":
        return contains_all()
    if op == "supset":
        return A.And(contains_all(), extra_some())
    if op == "ni":
        return A.Exists(z, c, A.Compare("=", A.Var(z), y_prime))
    if op == "notni":
        return A.Not(A.Exists(z, c, A.Compare("=", A.Var(z), y_prime)))
    if op == "disjoint":
        return A.Not(A.Exists(y, y_prime, A.SetCompare("in", A.Var(y), c)))
    raise AssertionError(f"unhandled set comparison {op!r}")


@rule("table1-expand-set-comparison")
def expand_guarded(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Table 1/2 expansion, guarded: a base table must be involved.

    The membership forms only pay off when the *set* operand holds the
    subquery; the symmetric forms pay off when either side does.
    """
    if not isinstance(expr, A.SetCompare):
        return None
    if expr.op in ("in", "notin"):
        relevant = mentions_extent(expr.right)
    elif expr.op in ("ni", "notni"):
        relevant = mentions_extent(expr.left)
    else:
        relevant = mentions_extent(expr.left) or mentions_extent(expr.right)
    if not relevant:
        return None
    return expand_setcompare(expr)


@rule("table2-empty-test")
def empty_test(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """``Y' = ∅  ≡  ¬∃y ∈ Y' • true`` (Table 2, rows 1).

    Handles the ``IsEmpty`` node and literal comparisons against ``{}``.
    """
    operand: Optional[A.Expr] = None
    negated = False
    if isinstance(expr, A.IsEmpty):
        operand = expr.operand
    elif isinstance(expr, A.SetCompare) and expr.op in ("seteq", "setneq"):
        if expr.right == _EMPTY:
            operand = expr.left
        elif expr.left == _EMPTY:
            operand = expr.right
        negated = expr.op == "setneq"
    if operand is None or not mentions_extent(operand):
        return None
    y = fresh_name("y", all_var_names(operand))
    exists = A.Exists(y, operand, TRUE)
    return exists if negated else A.Not(exists)


@rule("table2-count-zero")
def count_zero(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """``count(Y') = 0 ≡ ¬∃y ∈ Y' • true`` (Table 2, row 2) and the
    natural companions ``count(Y') > 0 / != 0 / >= 1 ≡ ∃y ∈ Y' • true``."""
    if not isinstance(expr, A.Compare):
        return None
    agg, literal, op = None, None, expr.op
    if isinstance(expr.left, A.Aggregate) and expr.left.func == "count":
        agg, literal = expr.left, expr.right
    elif isinstance(expr.right, A.Aggregate) and expr.right.func == "count":
        agg, literal = expr.right, expr.left
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if agg is None or not isinstance(literal, A.Literal):
        return None
    if not mentions_extent(agg.source):
        return None
    y = fresh_name("y", all_var_names(agg.source))
    exists = A.Exists(y, agg.source, TRUE)
    if (op, literal.value) in (("=", 0), ("<=", 0), ("<", 1)):
        return A.Not(exists)
    if (op, literal.value) in (("!=", 0), (">", 0), (">=", 1)):
        return exists
    return None


SETCMP_RULES = (expand_guarded, empty_test, count_zero)
