"""Unnesting with the nestjoin operator (Section 6.1, [StAB94]).

The nestjoin combines grouping and join *without losing dangling left
tuples*: each left tuple is concatenated with the set of its matching
right tuples (possibly empty).  That makes it the correct general-purpose
unnesting device for nested queries with arbitrary predicates between
blocks — the cases where plain grouping exhibits the Complex Object bug.

Where-clause nesting (the paper's transformation)::

    σ[x : P(x, Y')](X)  with  Y' = σ[y : Q(x,y)](Y)
      ≡  π_SCH(X)( σ[z : P']( X ⊣⟨x,y : Q ; y ; ys⟩ Y ))
         where P' = P[ x ↦ z[SCH(X)],  Y' ↦ z.ys ]

Select-clause nesting (Example Query 6)::

    α[x : F(x, Y')](X)
      ≡  α[z : F']( X ⊣⟨x,y : Q ; G ; ys⟩ Y )

The subquery's own select-clause ``G`` rides along as the nestjoin's
function parameter (the extended form of [StAB94]), so ``α[y:G](σ[y:Q](Y))``
blocks unnest in one step.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.adl import ast as A
from repro.adl.freevars import all_var_names, fresh_name
from repro.adl.subst import substitute
from repro.rewrite.common import (
    QueryBlock,
    RewriteContext,
    first_correlated_block,
    replace_subexpr,
)
from repro.rewrite.engine import rule


def _build_nestjoin(
    outer_source: A.Expr,
    outer_var: str,
    block: QueryBlock,
    carrier: A.Expr,
    ctx: RewriteContext,
) -> Optional[Tuple[str, str, A.Expr, A.Expr]]:
    """Build the nestjoin and rewrite the carrier expression (the predicate
    or map body containing the block).

    Returns ``(z, x_attrs, nestjoin, rewritten_carrier)`` or None when the
    outer operand's schema is unavailable or the fresh attribute clashes.
    """
    x_attrs = ctx.tuple_attrs(outer_source)
    if x_attrs is None:
        return None
    avoid = all_var_names(carrier) | all_var_names(outer_source) | set(x_attrs) | {outer_var}
    z = fresh_name("z", avoid)
    ys = fresh_name("ys", avoid | {z})

    nestjoin = A.NestJoin(
        outer_source,
        block.source,
        outer_var,
        block.var,
        block.pred,
        ys,
        block.result,
    )
    rewritten = replace_subexpr(carrier, block.node, A.AttrAccess(A.Var(z), ys))
    rewritten = substitute(rewritten, {outer_var: A.TupleSubscript(A.Var(z), tuple(x_attrs))})
    return z, x_attrs, nestjoin, rewritten


@rule("nestjoin-where")
def nestjoin_where(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Where-clause nesting → nestjoin + selection + projection."""
    if not isinstance(expr, A.Select):
        return None
    block = first_correlated_block(expr.pred, expr.var)
    if block is None:
        return None
    built = _build_nestjoin(expr.source, expr.var, block, expr.pred, ctx)
    if built is None:
        return None
    z, x_attrs, nestjoin, new_pred = built
    return A.Project(A.Select(z, new_pred, nestjoin), tuple(x_attrs))


@rule("nestjoin-select-clause")
def nestjoin_select_clause(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Select-clause nesting → nestjoin + map (no projection needed: the
    map body already produces the requested shape)."""
    if not isinstance(expr, A.Map):
        return None
    block = first_correlated_block(expr.body, expr.var)
    if block is None:
        return None
    built = _build_nestjoin(expr.source, expr.var, block, expr.body, ctx)
    if built is None:
        return None
    z, _x_attrs, nestjoin, new_body = built
    return A.Map(z, new_body, nestjoin)


NESTJOIN_RULES = (nestjoin_where, nestjoin_select_clause)
