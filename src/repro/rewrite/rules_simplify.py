"""Normalization and cleanup rules.

These are the glue steps the paper performs silently between its numbered
rewrites: boolean simplification, dropping trivial selections/maps the
Section 3 translation scheme introduces (``σ[x : true]``, ``α[x : x]``),
and fusing the map/select towers that nesting in the **from**-clause
produces ("nesting in the from-clause ... can be removed easily",
Section 2).
"""

from __future__ import annotations

from typing import Optional

from repro.adl import ast as A
from repro.adl.freevars import free_vars
from repro.adl.subst import substitute
from repro.rewrite.common import RewriteContext
from repro.rewrite.engine import Rule, rule

TRUE = A.Literal(True)
FALSE = A.Literal(False)


@rule("double-negation")
def double_negation(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """¬¬p ≡ p."""
    if isinstance(expr, A.Not) and isinstance(expr.operand, A.Not):
        return expr.operand.operand
    return None


@rule("boolean-constants")
def boolean_constants(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Fold ``true``/``false`` through ¬ ∧ ∨."""
    if isinstance(expr, A.Not):
        if expr.operand == TRUE:
            return FALSE
        if expr.operand == FALSE:
            return TRUE
    if isinstance(expr, A.And):
        if expr.left == TRUE:
            return expr.right
        if expr.right == TRUE:
            return expr.left
        if FALSE in (expr.left, expr.right):
            return FALSE
    if isinstance(expr, A.Or):
        if expr.left == FALSE:
            return expr.right
        if expr.right == FALSE:
            return expr.left
        if TRUE in (expr.left, expr.right):
            return TRUE
    return None


@rule("select-true")
def select_true(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """σ[x : true](X) ≡ X — a missing where-clause."""
    if isinstance(expr, A.Select) and expr.pred == TRUE:
        return expr.source
    return None


@rule("select-false")
def select_false(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """σ[x : false](X) ≡ ∅."""
    if isinstance(expr, A.Select) and expr.pred == FALSE:
        return A.SetExpr(())
    return None


@rule("map-identity")
def map_identity(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """α[x : x](X) ≡ X — a ``select x from x in X`` projection."""
    if isinstance(expr, A.Map) and expr.body == A.Var(expr.var):
        return expr.source
    return None


@rule("select-fusion")
def select_fusion(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """σ[x : p](σ[y : q](X)) ≡ σ[x : p ∧ q[y↦x]](X).

    The from-clause unnesting workhorse: composed query blocks collapse
    into one selection over the base operand (the paper's Example Query 2).
    """
    if isinstance(expr, A.Select) and isinstance(expr.source, A.Select):
        inner = expr.source
        inner_pred = inner.pred
        if inner.var != expr.var:
            if expr.var in free_vars(inner_pred):
                return None
            inner_pred = substitute(inner_pred, {inner.var: A.Var(expr.var)})
        return A.Select(expr.var, A.And(expr.pred, inner_pred), inner.source)
    return None


@rule("select-over-map")
def select_over_map(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """σ[x : p](α[y : f](X)) ≡ α[y : f](σ[y : p[x↦f]](X)).

    Pushing a selection through a map lets composed blocks (views) fuse
    with the selections below them.  Only safe verbatim because both sides
    deduplicate (set semantics): filtering pre-images whose image fails
    ``p`` is exactly filtering the image.
    """
    if isinstance(expr, A.Select) and isinstance(expr.source, A.Map):
        inner = expr.source
        if inner.var in free_vars(expr.pred) and inner.var != expr.var:
            return None
        pushed = substitute(expr.pred, {expr.var: inner.body})
        return A.Map(inner.var, inner.body, A.Select(inner.var, pushed, inner.source))
    return None


@rule("map-fusion")
def map_fusion(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """α[x : f](α[y : g](X)) ≡ α[y : f[x↦g]](X)."""
    if isinstance(expr, A.Map) and isinstance(expr.source, A.Map):
        inner = expr.source
        if inner.var in free_vars(expr.body) and inner.var != expr.var:
            return None
        body = substitute(expr.body, {expr.var: inner.body})
        return A.Map(inner.var, body, inner.source)
    return None


@rule("subscript-access")
def subscript_access(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """(e[a1..an]).ai ≡ e.ai — cleans up after nestjoin substitutions."""
    if (
        isinstance(expr, A.AttrAccess)
        and isinstance(expr.base, A.TupleSubscript)
        and expr.attr in expr.base.attrs
    ):
        return A.AttrAccess(expr.base.base, expr.attr)
    return None


@rule("tuple-field-access")
def tuple_field_access(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """(a = e, ...).a ≡ e."""
    if isinstance(expr, A.AttrAccess) and isinstance(expr.base, A.TupleExpr):
        for name, value in expr.base.fields:
            if name == expr.attr:
                return value
    return None


_COMPARE_NEGATION = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_SETCMP_NEGATION = {"in": "notin", "notin": "in", "ni": "notni", "notni": "ni",
                    "seteq": "setneq", "setneq": "seteq"}


@rule("push-negation")
def push_negation(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Move ¬ toward the leaves: De Morgan over ∧/∨ and complement
    operators for comparisons (``¬(a = b) ≡ a != b`` etc.).

    ``¬∃`` is deliberately left intact — it is the antijoin trigger of
    Rule 1 — and quantifier duals are handled by the quantifier rules.
    """
    if not isinstance(expr, A.Not):
        return None
    inner = expr.operand
    if isinstance(inner, A.And):
        return A.Or(A.Not(inner.left), A.Not(inner.right))
    if isinstance(inner, A.Or):
        return A.And(A.Not(inner.left), A.Not(inner.right))
    if isinstance(inner, A.Compare):
        return A.Compare(_COMPARE_NEGATION[inner.op], inner.left, inner.right)
    if isinstance(inner, A.SetCompare) and inner.op in _SETCMP_NEGATION:
        return A.SetCompare(_SETCMP_NEGATION[inner.op], inner.left, inner.right)
    return None


@rule("empty-quantifiers")
def empty_quantifiers(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """∃x ∈ ∅ • p ≡ false;  ∀x ∈ ∅ • p ≡ true."""
    empty = A.SetExpr(())
    if isinstance(expr, A.Exists) and expr.source == empty:
        return FALSE
    if isinstance(expr, A.Forall) and expr.source == empty:
        return TRUE
    return None


def _conjunct_list(pred: A.Expr):
    if isinstance(pred, A.And):
        return _conjunct_list(pred.left) + _conjunct_list(pred.right)
    return [pred]


def _conjoin_list(parts):
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = A.And(part, out)
    return out


@rule("exists-eq-to-membership")
def exists_eq_to_membership(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """∃x ∈ S • (x = e ∧ r)  ≡  e ∈ S ∧ r[x↦e]   when x ∉ fv(e).

    The inverse of the Table 1 membership expansion, restricted to ranges
    that do *not* mention a base table (set-valued attributes) so the two
    rules cannot loop.  This is what turns Example Query 5's inner
    ``∃x ∈ s.parts • x = p[pid] ∧ ...`` into the paper's join predicate
    ``p[pid] ∈ s.parts``.
    """
    if not isinstance(expr, A.Exists):
        return None
    from repro.rewrite.common import mentions_extent

    if mentions_extent(expr.source):
        return None
    parts = _conjunct_list(expr.pred)
    for index, part in enumerate(parts):
        if not isinstance(part, A.Compare) or part.op != "=":
            continue
        if part.left == A.Var(expr.var):
            witness = part.right
        elif part.right == A.Var(expr.var):
            witness = part.left
        else:
            continue
        if expr.var in free_vars(witness):
            continue
        membership = A.SetCompare("in", witness, expr.source)
        rest = parts[:index] + parts[index + 1 :]
        if not rest:
            return membership
        remainder = substitute(_conjoin_list(rest), {expr.var: witness})
        return A.And(membership, remainder)
    return None


#: The normalization phase rule set, in application priority order.
SIMPLIFY_RULES = (
    double_negation,
    boolean_constants,
    select_true,
    select_false,
    map_identity,
    select_fusion,
    select_over_map,
    map_fusion,
    subscript_access,
    tuple_field_access,
    empty_quantifiers,
)

#: Cleanup-only subset safe to run after join formation (no fusion rules,
#: which could undo a deliberately split selection).
CLEANUP_RULES = (
    double_negation,
    boolean_constants,
    select_true,
    select_false,
    map_identity,
    subscript_access,
    tuple_field_access,
    push_negation,
    exists_eq_to_membership,
    empty_quantifiers,
)
