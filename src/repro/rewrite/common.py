"""Shared helpers for the rewrite rules.

Two notions from the paper are made operational here:

* the **goal predicate** of Section 3 — "transform nested expressions ...
  into join expressions in which base tables occur only at top level" —
  is :func:`is_set_oriented` / :func:`nested_extent_count`: an expression
  is set-oriented when no base table (``ExtentRef``) occurs inside the
  *parameter expression* of an iterator (map/select/join predicates,
  quantifier ranges and bodies, nestjoin result functions);

* the **query-block shape**: a subquery in the algebra is (the translation
  of) an sfw-block — ``σ[y : Q](Y)``, optionally wrapped in ``α[y : G]``.
  :func:`match_query_block` recognizes those shapes and normalizes the
  variable naming, giving every unnesting rule one entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.adl import ast as A
from repro.adl.freevars import free_vars
from repro.adl.subst import substitute
from repro.adl.typecheck import TypeChecker
from repro.datamodel.errors import TypeCheckError
from repro.datamodel.types import SetType, TupleType, Type


@dataclass
class RewriteContext:
    """Carried by the engine into every rule application.

    ``checker`` gives schema-aware rules (grouping, nestjoin, unnest) access
    to operand tuple types; rules that need it and lack it simply decline.
    ``env`` optionally types free variables of the expression being
    rewritten (top-level queries have none).
    """

    checker: Optional[TypeChecker] = None
    env: Optional[dict] = None

    def tuple_attrs(self, table_expr: A.Expr) -> Optional[Tuple[str, ...]]:
        """Top-level attribute names of a set-of-tuples expression, or None
        when they cannot be determined statically."""
        if self.checker is None:
            return None
        try:
            t: Type = self.checker.check(table_expr, self.env or {})
        except TypeCheckError:
            return None
        if isinstance(t, SetType) and isinstance(t.element, TupleType):
            return tuple(sorted(t.element.fields))
        return None


def mentions_extent(expr: A.Expr) -> bool:
    """Does the expression reference any base table?"""
    return any(isinstance(node, A.ExtentRef) for node in expr.walk())


def nested_extent_count(expr: A.Expr) -> int:
    """Number of base-table references inside iterator parameter expressions.

    Zero means the paper's optimization goal is met: nested-loop execution
    never re-scans a base table per outer tuple.
    """
    return _nested(expr, False)


def _nested(expr: A.Expr, in_param: bool) -> int:
    if isinstance(expr, A.ExtentRef):
        return 1 if in_param else 0
    if isinstance(expr, A.Map):
        return _nested(expr.source, in_param) + _nested(expr.body, True)
    if isinstance(expr, A.Select):
        return _nested(expr.source, in_param) + _nested(expr.pred, True)
    if isinstance(expr, (A.Exists, A.Forall)):
        # a quantifier only occurs inside parameter expressions, but guard
        # against free-standing use anyway: its range is iterated per
        # evaluation, so once we are inside a parameter it counts.
        return _nested(expr.source, in_param) + _nested(expr.pred, True)
    if isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin)):
        return (
            _nested(expr.left, in_param)
            + _nested(expr.right, in_param)
            + _nested(expr.pred, True)
        )
    if isinstance(expr, (A.NestJoin, A.Stitch)):
        return (
            _nested(expr.left, in_param)
            + _nested(expr.right, in_param)
            + _nested(expr.pred, True)
            + _nested(expr.result, True)
        )
    total = 0
    for child in expr.child_exprs():
        total += _nested(child, in_param)
    return total


def is_set_oriented(expr: A.Expr) -> bool:
    """The paper's translation/optimization goal, as a checkable property."""
    return nested_extent_count(expr) == 0


def expr_size(expr: A.Expr) -> int:
    return sum(1 for _ in expr.walk())


def replace_subexpr(root: A.Expr, target: A.Expr, replacement: A.Expr) -> A.Expr:
    """Replace every structural occurrence of ``target`` in ``root``.

    Used when a rewrite replaces a whole subquery (not a variable) — e.g.
    substituting ``z.ys`` for the inner block after a nestjoin is formed.
    Matching is plain structural equality; the rules only call this with
    targets they just located in ``root``, so a match always exists.
    """

    def rec(expr: A.Expr) -> A.Expr:
        if expr == target:
            return replacement
        return expr.map_children(rec)

    return rec(root)


def contains_subexpr(root: A.Expr, target: A.Expr) -> bool:
    return any(node == target for node in root.walk())


@dataclass(frozen=True)
class QueryBlock:
    """A recognized subquery ``α[y : G](σ[y : Q](Y))`` in normalized form.

    ``var`` is the iteration variable, ``source`` the operand ``Y``,
    ``pred`` the where-predicate ``Q`` (``true`` when absent), ``result``
    the select-clause function ``G`` (``Var(var)`` when identity), and
    ``node`` the original expression the block was matched from.
    """

    var: str
    source: A.Expr
    pred: A.Expr
    result: A.Expr
    node: A.Expr

    @property
    def is_identity_result(self) -> bool:
        return self.result == A.Var(self.var)


def match_query_block(expr: A.Expr) -> Optional[QueryBlock]:
    """Recognize the algebraic image of an sfw-block.

    Accepted shapes (with variables normalized to the outer one):

    * ``σ[y : Q](Y)``
    * ``α[y : G](Y)``
    * ``α[y : G](σ[y' : Q](Y))`` — ``y'`` is renamed to ``y``.
    """
    if isinstance(expr, A.Select):
        return QueryBlock(expr.var, expr.source, expr.pred, A.Var(expr.var), expr)
    if isinstance(expr, A.Map):
        inner = expr.source
        if isinstance(inner, A.Select):
            pred = inner.pred
            if inner.var != expr.var:
                if expr.var in free_vars(pred):
                    # renaming would capture; rare, give up on this shape
                    return None
                pred = substitute(pred, {inner.var: A.Var(expr.var)})
            return QueryBlock(expr.var, inner.source, pred, expr.body, expr)
        return QueryBlock(expr.var, expr.source, A.Literal(True), expr.body, expr)
    return None


def is_uncorrelated_table(source: A.Expr, outer_var: str) -> bool:
    """Side condition of every unnesting rule: the inner operand must be a
    base-table expression not depending on the outer variable."""
    return mentions_extent(source) and outer_var not in free_vars(source)


def find_correlated_blocks(expr: A.Expr, outer_var: str):
    """Locate unnestable subquery blocks inside a parameter expression.

    Yields every outermost :class:`QueryBlock` in ``expr`` that

    * iterates over an *uncorrelated base-table expression* (``Y`` mentions
      an extent and does not use ``outer_var``), and
    * is *correlated*: ``outer_var`` occurs free in its predicate or result.

    Traversal is scope-aware: subtrees under a binder that rebinds
    ``outer_var`` are skipped (their ``outer_var`` is a different variable),
    and a matched block's interior is not searched again (inner blocks are
    handled by later rewrite iterations).
    """
    block = match_query_block(expr)
    if block is not None and is_uncorrelated_table(block.source, outer_var):
        correlated = outer_var in (free_vars(block.pred) | free_vars(block.result))
        if correlated:
            yield block
            return

    if isinstance(expr, (A.Map, A.Select)):
        body = expr.body if isinstance(expr, A.Map) else expr.pred
        yield from find_correlated_blocks(expr.source, outer_var)
        if expr.var != outer_var:
            yield from find_correlated_blocks(body, outer_var)
        return
    if isinstance(expr, (A.Exists, A.Forall)):
        yield from find_correlated_blocks(expr.source, outer_var)
        if expr.var != outer_var:
            yield from find_correlated_blocks(expr.pred, outer_var)
        return
    if isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin, A.OuterJoin, A.NestJoin)):
        yield from find_correlated_blocks(expr.left, outer_var)
        yield from find_correlated_blocks(expr.right, outer_var)
        if outer_var not in (expr.lvar, expr.rvar):
            yield from find_correlated_blocks(expr.pred, outer_var)
            if isinstance(expr, A.NestJoin):
                yield from find_correlated_blocks(expr.result, outer_var)
        return
    for child in expr.child_exprs():
        yield from find_correlated_blocks(child, outer_var)


def first_correlated_block(expr: A.Expr, outer_var: str) -> Optional[QueryBlock]:
    for block in find_correlated_blocks(expr, outer_var):
        return block
    return None
