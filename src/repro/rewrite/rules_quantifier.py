"""The quantifier toolkit (Section 5.2.1).

Three families of steps from the paper's derivations:

* **range transformation** — remove selections/maps/flattens from the
  range of a quantifier, folding them into the body.  This is the middle
  step of Rewriting Example 1: ``∃y ∈ σ[y:q](Y) • p  ≡  ∃y ∈ Y • q ∧ p``;
* **negation pushing** — ``∀`` becomes ``¬∃¬`` ("the universal quantifier
  is transformed into a negated existential quantifier by pushing through
  negation", Rewriting Example 2), plus the dual for ``¬∀``;
* **quantifier exchange** — the rewrite heuristic of Section 5.2.1: move
  quantification over *base tables* leftward past quantification over
  set-valued attributes by exchanging same-kind neighbours
  (``∀z ∀y ≡ ∀y ∀z``, ``∃z ∃y ≡ ∃y ∃z``), which is Rewriting Example 3.

The exchange rule is directional: it fires only when the inner range
mentions a base table, the outer range does not, and the inner range is
independent of the outer variable.  That orientation both implements the
paper's heuristic ("the goal is to move quantification over base tables to
the left") and guarantees termination.
"""

from __future__ import annotations

from typing import Optional

from repro.adl import ast as A
from repro.adl.freevars import all_var_names, free_vars, fresh_name
from repro.adl.subst import substitute
from repro.rewrite.common import RewriteContext, mentions_extent
from repro.rewrite.engine import rule


def _fold_range_select(var: str, inner: A.Select):
    """Shared range-transformation core: returns ``(new_source, range_pred)``
    with the selection predicate rebased onto ``var``."""
    pred = inner.pred
    if inner.var != var:
        if var in free_vars(pred):
            return None
        pred = substitute(pred, {inner.var: A.Var(var)})
    return inner.source, pred


@rule("range-select-into-exists")
def range_select_into_exists(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """∃y ∈ σ[y' : q](Y) • p  ≡  ∃y ∈ Y • q[y'↦y] ∧ p."""
    if isinstance(expr, A.Exists) and isinstance(expr.source, A.Select):
        folded = _fold_range_select(expr.var, expr.source)
        if folded is None:
            return None
        source, range_pred = folded
        return A.Exists(expr.var, source, A.And(range_pred, expr.pred))
    return None


@rule("range-select-into-forall")
def range_select_into_forall(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """∀y ∈ σ[y' : q](Y) • p  ≡  ∀y ∈ Y • ¬q[y'↦y] ∨ p."""
    if isinstance(expr, A.Forall) and isinstance(expr.source, A.Select):
        folded = _fold_range_select(expr.var, expr.source)
        if folded is None:
            return None
        source, range_pred = folded
        return A.Forall(expr.var, source, A.Or(A.Not(range_pred), expr.pred))
    return None


@rule("range-map")
def range_map(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Q y ∈ α[w : f](Y) • p  ≡  Q w ∈ Y • p[y↦f]  (Q ∈ {∃, ∀}).

    Sound under set semantics: quantifying over images is quantifying over
    pre-images with the image substituted.
    """
    if not isinstance(expr, (A.Exists, A.Forall)):
        return None
    inner = expr.source
    if not isinstance(inner, A.Map):
        return None
    # the map variable must not collide with anything free in the body
    w = inner.var
    if w != expr.var and w in free_vars(expr.pred):
        w = fresh_name(w, all_var_names(expr.pred) | all_var_names(inner))
    body_fn = inner.body if w == inner.var else substitute(inner.body, {inner.var: A.Var(w)})
    new_pred = substitute(expr.pred, {expr.var: body_fn})
    cls = type(expr)
    return cls(w, inner.source, new_pred)


@rule("range-flatten")
def range_flatten(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """∃y ∈ ⊔(E) • p ≡ ∃S ∈ E • ∃y ∈ S • p  (and the ∀/∀ dual)."""
    if not isinstance(expr, (A.Exists, A.Forall)):
        return None
    if not isinstance(expr.source, A.Flatten):
        return None
    outer_set = fresh_name("S", all_var_names(expr) | {expr.var})
    cls = type(expr)
    return cls(outer_set, expr.source.source, cls(expr.var, A.Var(outer_set), expr.pred))


@rule("forall-to-not-exists")
def forall_to_not_exists(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """∀y ∈ Y • p  ≡  ¬∃y ∈ Y • ¬p — push through negation.

    Guarded: fires when the range mentions a base table (so the resulting
    ``¬∃`` can become an antijoin via Rule 1), matching the paper's use in
    Rewriting Example 2.
    """
    if isinstance(expr, A.Forall) and mentions_extent(expr.source):
        return A.Not(A.Exists(expr.var, expr.source, A.Not(expr.pred)))
    return None


@rule("not-forall-to-exists-not")
def not_forall(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """¬∀y ∈ Y • p  ≡  ∃y ∈ Y • ¬p (unguarded — always simplifies)."""
    if isinstance(expr, A.Not) and isinstance(expr.operand, A.Forall):
        inner = expr.operand
        return A.Exists(inner.var, inner.source, A.Not(inner.pred))
    return None


def _exchangeable(outer_source: A.Expr, inner: A.Expr, outer_var: str) -> bool:
    """The Section 5.2.1 heuristic's firing condition."""
    return (
        not mentions_extent(outer_source)
        and mentions_extent(inner)
        and outer_var not in free_vars(inner)
    )


@rule("exchange-quantifiers")
def exchange_quantifiers(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Same-kind quantifier exchange, oriented base-table-outward.

    ``∀z ∈ x.c • ∀y ∈ Y • p  ≡  ∀y ∈ Y • ∀z ∈ x.c • p`` (idem for ∃/∃)
    when ``Y`` mentions a base table, ``x.c`` does not, and ``Y`` does not
    depend on ``z``.  This is the pivotal step of Rewriting Example 3.
    """
    if isinstance(expr, A.Forall) and isinstance(expr.pred, A.Forall):
        inner = expr.pred
        if _exchangeable(expr.source, inner.source, expr.var):
            return A.Forall(
                inner.var, inner.source, A.Forall(expr.var, expr.source, inner.pred)
            )
    if isinstance(expr, A.Exists) and isinstance(expr.pred, A.Exists):
        inner = expr.pred
        if _exchangeable(expr.source, inner.source, expr.var):
            return A.Exists(
                inner.var, inner.source, A.Exists(expr.var, expr.source, inner.pred)
            )
    return None


QUANTIFIER_RULES = (
    range_select_into_exists,
    range_select_into_forall,
    range_map,
    range_flatten,
    not_forall,
    exchange_quantifiers,
    forall_to_not_exists,
)
