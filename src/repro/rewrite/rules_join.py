"""Unnesting into relational join operators: the paper's Rule 1 and Rule 2.

Rule 1 (UNNESTING QUANTIFIER EXPRESSIONS): with ``x`` not free in ``Y``::

    σ[x : ∃y ∈ Y • p](X)   ≡   X ⋉⟨x,y : p⟩ Y
    σ[x : ¬∃y ∈ Y • p](X)  ≡   X ▷⟨x,y : p⟩ Y

Rule 2 (NESTING IN THE MAP OPERATOR)::

    ⊔(α[x : α[y : x o y](σ[y : p](Y))](X))   ≡   X ⋈⟨x,y : p⟩ Y

Both are *the* unnesting steps — everything in Tables 1/2 and the
quantifier toolkit exists to massage predicates into these shapes.  A
conjunction variant peels quantified conjuncts off mixed predicates
(``σ[x : r ∧ ∃y ∈ Y • p](X) ≡ σ[x : r](X ⋉⟨x,y : p⟩ Y)``), so selections
whose where-clause mixes local tests with subqueries unnest too.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.adl import ast as A
from repro.adl.freevars import free_vars
from repro.rewrite.common import RewriteContext, is_uncorrelated_table
from repro.rewrite.engine import rule


def _match_quantified(pred: A.Expr, outer_var: str) -> Optional[Tuple[bool, A.Exists]]:
    """Match ``∃y ∈ Y • p`` or ``¬∃y ∈ Y • p`` with ``Y`` an uncorrelated
    base-table expression.  Returns ``(negated, exists_node)``."""
    negated = False
    node = pred
    if isinstance(node, A.Not):
        negated = True
        node = node.operand
    if not isinstance(node, A.Exists):
        return None
    if not is_uncorrelated_table(node.source, outer_var):
        return None
    return negated, node


@rule("rule1-semijoin-antijoin")
def rule1(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Rule 1 with the whole predicate a (negated) existential quantifier."""
    if not isinstance(expr, A.Select):
        return None
    match = _match_quantified(expr.pred, expr.var)
    if match is None:
        return None
    negated, exists = match
    cls = A.AntiJoin if negated else A.SemiJoin
    return cls(expr.source, exists.source, expr.var, exists.var, exists.pred)


def _conjuncts(pred: A.Expr) -> List[A.Expr]:
    if isinstance(pred, A.And):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def _conjoin(parts: List[A.Expr]) -> A.Expr:
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = A.And(part, out)
    return out


@rule("rule1-conjunct")
def rule1_conjunct(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Peel one quantified conjunct off a mixed selection predicate:

    ``σ[x : r ∧ (¬)∃y ∈ Y • p](X)  ≡  σ[x : r](X (⋉|▷)⟨x,y : p⟩ Y)``.
    """
    if not isinstance(expr, A.Select):
        return None
    parts = _conjuncts(expr.pred)
    if len(parts) < 2:
        return None
    for index, part in enumerate(parts):
        match = _match_quantified(part, expr.var)
        if match is None:
            continue
        negated, exists = match
        cls = A.AntiJoin if negated else A.SemiJoin
        joined = cls(expr.source, exists.source, expr.var, exists.var, exists.pred)
        remaining = parts[:index] + parts[index + 1 :]
        return A.Select(expr.var, _conjoin(remaining), joined)
    return None


@rule("rule2-map-join")
def rule2(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Rule 2: a flattened nested map that concatenates its two variables
    is a join.  Accepts an optional selection under the inner map."""
    if not isinstance(expr, A.Flatten):
        return None
    outer = expr.source
    if not isinstance(outer, A.Map):
        return None
    inner = outer.body
    if not isinstance(inner, A.Map):
        return None
    # unwrap an optional inner selection σ[y : p](Y)
    if isinstance(inner.source, A.Select) and inner.source.var == inner.var:
        pred = inner.source.pred
        source = inner.source.source
    else:
        pred = A.Literal(True)
        source = inner.source
    if inner.body != A.Concat(A.Var(outer.var), A.Var(inner.var)):
        return None
    if not is_uncorrelated_table(source, outer.var):
        return None
    if outer.var in free_vars(source):
        return None
    return A.Join(outer.source, source, outer.var, inner.var, pred)


@rule("push-right-selection")
def push_right_selection(expr: A.Expr, ctx: RewriteContext) -> Optional[A.Expr]:
    """Move right-operand-only conjuncts of a join predicate into a
    selection on the right operand::

        X ⋉⟨x,y : p ∧ r(y)⟩ Y  ≡  X ⋉⟨x,y : p⟩ σ[y : r](Y)

    Sound for join, semijoin, antijoin and nestjoin alike: filtering the
    right operand by a predicate over right attributes only commutes with
    match-finding.  (The dual left-side push is *not* sound for the
    antijoin — a failing left-only conjunct means "no match", i.e. the
    tuple *survives* — so only the right side is pushed.)  This produces
    the paper's Example Query 5 plan shape with
    ``σ[p : p.color = "red"](PART)`` as the semijoin operand.
    """
    if not isinstance(expr, (A.Join, A.SemiJoin, A.AntiJoin, A.NestJoin)):
        return None
    parts = _conjuncts(expr.pred)
    if len(parts) < 2:
        return None
    rvar_only = [
        p for p in parts if free_vars(p) <= {expr.rvar} and expr.rvar in free_vars(p)
    ]
    if not rvar_only:
        return None
    remaining = [p for p in parts if p not in rvar_only]
    if not remaining:
        # keep at least `true` as the join predicate
        remaining = [A.Literal(True)]
    new_right = A.Select(expr.rvar, _conjoin(rvar_only), expr.right)
    return dataclasses.replace(expr, right=new_right, pred=_conjoin(remaining))


JOIN_RULES = (rule1, rule1_conjunct, rule2, push_right_selection)
