"""The ADL type system: atoms, ``oid``, tuple types and set types.

Section 3 of the paper describes ADL as a *typed* algebra whose constructors
are the tuple ``( )`` and set ``{ }`` type constructors over base types plus
``oid``.  This module gives those types a concrete representation together
with the operations the type checkers need:

* structural equality and hashing (types are values);
* :func:`unify` — least common type of two branches (e.g. a set literal);
* :meth:`Type.is_assignable_from` — width subtyping on tuples, needed
  because projections produce narrower tuples;
* :func:`type_of_value` — recover the most specific type of a runtime value,
  used by property tests to cross-check the static checker against the
  interpreter.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.datamodel.errors import DataModelError, TypeCheckError
from repro.datamodel.values import Oid, Value, VTuple, is_atom


class Type:
    """Base class of all ADL types."""

    def is_assignable_from(self, other: "Type") -> bool:
        """Can a value of type ``other`` be used where ``self`` is expected?

        The default is plain structural equality; tuple types refine this
        with width subtyping and ``AnyType`` accepts everything.
        """
        return self == other or isinstance(other, AnyType)

    # Subclasses implement __eq__/__hash__/__repr__; Type itself is abstract.


class AnyType(Type):
    """The unknown type — produced for empty set literals and ``null``.

    ``AnyType`` unifies with every type.  It never survives schema
    declarations; it only appears mid-inference.
    """

    def is_assignable_from(self, other: Type) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AnyType)

    def __hash__(self) -> int:
        return hash(AnyType)

    def __repr__(self) -> str:
        return "any"


class AtomType(Type):
    """One of the scalar base types: ``bool int float string``."""

    __slots__ = ("name",)

    _LEGAL = {"bool", "int", "float", "string"}

    def __init__(self, name: str) -> None:
        if name not in self._LEGAL:
            raise DataModelError(f"unknown atom type {name!r}; legal: {sorted(self._LEGAL)}")
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AtomType) and self.name == other.name

    def __hash__(self) -> int:
        return hash((AtomType, self.name))

    def __repr__(self) -> str:
        return self.name


class OidType(Type):
    """The ``oid`` base type.

    An ``OidType`` may name the class it references (``oid(Part)``) which
    lets the type checker resolve path expressions through object references;
    an anonymous ``OidType(None)`` matches any reference.
    """

    __slots__ = ("class_name",)

    def __init__(self, class_name: Optional[str] = None) -> None:
        self.class_name = class_name

    def is_assignable_from(self, other: Type) -> bool:
        if isinstance(other, AnyType):
            return True
        if not isinstance(other, OidType):
            return False
        return self.class_name is None or other.class_name is None or self.class_name == other.class_name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OidType) and self.class_name == other.class_name

    def __hash__(self) -> int:
        return hash((OidType, self.class_name))

    def __repr__(self) -> str:
        return f"oid({self.class_name})" if self.class_name else "oid"


class TupleType(Type):
    """A tuple type ``(a1 : T1, ..., an : Tn)`` — attribute order irrelevant."""

    __slots__ = ("fields",)

    def __init__(self, fields: Mapping[str, Type]) -> None:
        if not all(isinstance(t, Type) for t in fields.values()):
            raise DataModelError("tuple type fields must map names to Types")
        self.fields: Dict[str, Type] = dict(fields)

    @property
    def attributes(self) -> frozenset:
        """The paper's ``SCH`` function: the set of top-level attribute names."""
        return frozenset(self.fields)

    def field(self, name: str) -> Type:
        try:
            return self.fields[name]
        except KeyError:
            raise TypeCheckError(
                f"tuple type has no attribute {name!r}; attributes are {sorted(self.fields)}"
            ) from None

    def subscript(self, names: Iterable[str]) -> "TupleType":
        """Type of ``e[a1, ..., an]``."""
        return TupleType({n: self.field(n) for n in names})

    def drop(self, names: Iterable[str]) -> "TupleType":
        dropped = set(names)
        return TupleType({n: t for n, t in self.fields.items() if n not in dropped})

    def is_assignable_from(self, other: Type) -> bool:
        if isinstance(other, AnyType):
            return True
        if not isinstance(other, TupleType):
            return False
        if set(self.fields) != set(other.fields):
            return False
        return all(self.fields[n].is_assignable_from(other.fields[n]) for n in self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TupleType) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash((TupleType, frozenset(self.fields.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}: {v!r}" for k, v in sorted(self.fields.items()))
        return f"({inner})"


class SetType(Type):
    """A set type ``{ T }``."""

    __slots__ = ("element",)

    def __init__(self, element: Type) -> None:
        if not isinstance(element, Type):
            raise DataModelError("set element must be a Type")
        self.element = element

    def is_assignable_from(self, other: Type) -> bool:
        if isinstance(other, AnyType):
            return True
        return isinstance(other, SetType) and self.element.is_assignable_from(other.element)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SetType) and self.element == other.element

    def __hash__(self) -> int:
        return hash((SetType, self.element))

    def __repr__(self) -> str:
        return f"{{{self.element!r}}}"


# -- convenient singletons ---------------------------------------------------
BOOL = AtomType("bool")
INT = AtomType("int")
FLOAT = AtomType("float")
STRING = AtomType("string")
ANY = AnyType()


def unify(left: Type, right: Type, context: str = "expression") -> Type:
    """Least common type of two inferred types.

    Raises :class:`TypeCheckError` when the types are incompatible.  ``int``
    and ``float`` unify to ``float`` (the only numeric coercion the algebra
    permits); ``AnyType`` unifies with anything.
    """
    if isinstance(left, AnyType):
        return right
    if isinstance(right, AnyType):
        return left
    if isinstance(left, AtomType) and isinstance(right, AtomType):
        if left == right:
            return left
        if {left.name, right.name} == {"int", "float"}:
            return FLOAT
        raise TypeCheckError(f"cannot unify {left!r} with {right!r} in {context}")
    if isinstance(left, OidType) and isinstance(right, OidType):
        if left.class_name is None:
            return right
        if right.class_name is None or left.class_name == right.class_name:
            return left
        raise TypeCheckError(f"cannot unify {left!r} with {right!r} in {context}")
    if isinstance(left, SetType) and isinstance(right, SetType):
        return SetType(unify(left.element, right.element, context))
    if isinstance(left, TupleType) and isinstance(right, TupleType):
        if set(left.fields) != set(right.fields):
            raise TypeCheckError(
                f"cannot unify tuple types with different attributes "
                f"{sorted(left.fields)} vs {sorted(right.fields)} in {context}"
            )
        return TupleType({n: unify(left.fields[n], right.fields[n], context) for n in left.fields})
    raise TypeCheckError(f"cannot unify {left!r} with {right!r} in {context}")


def type_of_value(value: Value) -> Type:
    """The most specific static type of a runtime value.

    For heterogeneously-typed sets this raises, mirroring the algebra's
    requirement that sets are homogeneous.
    """
    if value is None:
        return ANY
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STRING
    if isinstance(value, Oid):
        return OidType(value.class_name)
    if isinstance(value, VTuple):
        return TupleType({k: type_of_value(v) for k, v in value.items()})
    if isinstance(value, frozenset):
        element: Type = ANY
        for member in value:
            element = unify(element, type_of_value(member), "set value")
        return SetType(element)
    raise DataModelError(f"not an ADL value: {value!r}")


def is_numeric(t: Type) -> bool:
    return isinstance(t, AtomType) and t.name in ("int", "float")


def is_comparable(t: Type) -> bool:
    """Types admitting ``< <= > >=`` — numbers and strings."""
    return isinstance(t, AtomType) and t.name in ("int", "float", "string")


def tuple_type(**fields: Type) -> TupleType:
    """Terse constructor used pervasively in tests: ``tuple_type(a=INT)``."""
    return TupleType(fields)


def set_of(element: Type) -> SetType:
    return SetType(element)
