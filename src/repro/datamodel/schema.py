"""OODB schema: class definitions with extensions (base tables).

Section 2 of the paper defines classes with named extensions, e.g.::

    Class Supplier with extension SUPPLIER,
      attributes sname : string, parts_supplied : { Part }
    end Supplier

and Section 3 explains the logical-design mapping used throughout: each
class extension becomes a *table of (possibly complex) objects*; a field of
type ``oid`` is added for object identity, and class references become
``oid`` pointers.  :class:`Schema` implements exactly that mapping: the user
declares classes with attribute types in which other classes may appear by
name (reference) or as inlined tuple/set structure, and the schema computes
the ADL table type of every extent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.datamodel.errors import SchemaError
from repro.datamodel.types import (
    OidType,
    SetType,
    TupleType,
    Type,
)

#: Attribute name automatically added to every extent tuple for object
#: identity, per the paper's logical-design convention.
OID_ATTR = "oid"


class ClassRef(Type):
    """A *named reference* to another class, used inside schema declarations.

    ``ClassRef("Part")`` in an attribute type means the attribute holds an
    oid pointing at a ``Part`` object.  During :meth:`Schema.freeze` every
    ``ClassRef`` is resolved to ``OidType(class_name)`` — references are
    implemented by pointers (Section 3).
    """

    __slots__ = ("class_name",)

    def __init__(self, class_name: str) -> None:
        self.class_name = class_name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClassRef) and self.class_name == other.class_name

    def __hash__(self) -> int:
        return hash((ClassRef, self.class_name))

    def __repr__(self) -> str:
        return f"ref({self.class_name})"


class Catalog:
    """A bare extent-type catalog satisfying the checker/translator protocol.

    :class:`Schema` is the full OODB front door (classes, oid injection,
    reference resolution).  ``Catalog`` serves algebra-level work where the
    paper gives *flat ADL types directly* — e.g. Section 4's
    ``SUPPLIER : {(eid: oid, sname: string, parts: {(pid: oid)})}`` — which
    do not follow the storage convention of an injected ``oid`` field.
    """

    def __init__(
        self,
        extents: Mapping[str, SetType],
        object_types: Optional[Mapping[str, TupleType]] = None,
    ) -> None:
        for name, t in extents.items():
            if not isinstance(t, SetType):
                raise SchemaError(f"extent {name!r} must have a set type, got {t!r}")
        self._extents = dict(extents)
        self._object_types = dict(object_types or {})

    @property
    def extent_names(self) -> List[str]:
        return list(self._extents)

    def has_extent(self, extent: str) -> bool:
        return extent in self._extents

    def extent_type(self, extent: str) -> SetType:
        try:
            return self._extents[extent]
        except KeyError:
            raise SchemaError(f"unknown extent: {extent!r}") from None

    def object_type(self, class_name: str) -> TupleType:
        try:
            return self._object_types[class_name]
        except KeyError:
            raise SchemaError(
                f"catalog has no object type for class {class_name!r}"
            ) from None


class ClassDef:
    """A class with a named extension and typed attributes."""

    def __init__(self, name: str, extent: str, attributes: Mapping[str, Type]) -> None:
        if not name or not extent:
            raise SchemaError("class and extent names must be non-empty")
        if OID_ATTR in attributes:
            raise SchemaError(
                f"attribute {OID_ATTR!r} is reserved for object identity (class {name})"
            )
        self.name = name
        self.extent = extent
        self.attributes: Dict[str, Type] = dict(attributes)

    def __repr__(self) -> str:
        return f"ClassDef({self.name!r}, extent={self.extent!r})"


class Schema:
    """A collection of class definitions, resolvable to ADL table types.

    Usage::

        schema = Schema()
        schema.add_class("Part", "PART", {"pname": STRING, "price": INT})
        schema.add_class("Supplier", "SUPPLIER",
                         {"sname": STRING, "parts_supplied": SetType(ClassRef("Part"))})
        schema.freeze()
        schema.extent_type("SUPPLIER")   # {(oid: oid(Supplier), sname: string, ...)}
    """

    def __init__(self) -> None:
        self._classes: Dict[str, ClassDef] = {}
        self._extents: Dict[str, str] = {}  # extent name -> class name
        self._frozen = False
        self._extent_types: Dict[str, SetType] = {}

    # -- declaration ---------------------------------------------------------
    def add_class(self, name: str, extent: str, attributes: Mapping[str, Type]) -> ClassDef:
        if self._frozen:
            raise SchemaError("schema is frozen; no further classes may be added")
        if name in self._classes:
            raise SchemaError(f"duplicate class name: {name!r}")
        if extent in self._extents:
            raise SchemaError(f"duplicate extent name: {extent!r}")
        cdef = ClassDef(name, extent, attributes)
        self._classes[name] = cdef
        self._extents[extent] = name
        return cdef

    # -- resolution ------------------------------------------------------------
    def freeze(self) -> "Schema":
        """Validate all references and compute extent table types."""
        for cdef in self._classes.values():
            for attr, atype in cdef.attributes.items():
                self._check_refs(atype, f"{cdef.name}.{attr}")
        for extent, cname in self._extents.items():
            self._extent_types[extent] = SetType(self.object_type(cname))
        self._frozen = True
        return self

    def _check_refs(self, atype: Type, where: str) -> None:
        if isinstance(atype, ClassRef):
            if atype.class_name not in self._classes:
                raise SchemaError(f"{where}: reference to unknown class {atype.class_name!r}")
        elif isinstance(atype, SetType):
            self._check_refs(atype.element, where)
        elif isinstance(atype, TupleType):
            for name, field in atype.fields.items():
                self._check_refs(field, f"{where}.{name}")

    def _resolve(self, atype: Type) -> Type:
        if isinstance(atype, ClassRef):
            return OidType(atype.class_name)
        if isinstance(atype, SetType):
            return SetType(self._resolve(atype.element))
        if isinstance(atype, TupleType):
            return TupleType({n: self._resolve(t) for n, t in atype.fields.items()})
        return atype

    # -- queries -----------------------------------------------------------------
    @property
    def classes(self) -> List[ClassDef]:
        return list(self._classes.values())

    @property
    def extent_names(self) -> List[str]:
        return list(self._extents)

    def class_def(self, name: str) -> ClassDef:
        try:
            return self._classes[name]
        except KeyError:
            raise SchemaError(f"unknown class: {name!r}") from None

    def class_of_extent(self, extent: str) -> ClassDef:
        try:
            return self._classes[self._extents[extent]]
        except KeyError:
            raise SchemaError(f"unknown extent: {extent!r}") from None

    def has_extent(self, extent: str) -> bool:
        return extent in self._extents

    def object_type(self, class_name: str) -> TupleType:
        """The ADL tuple type of one object of the class (oid field included)."""
        cdef = self.class_def(class_name)
        fields: Dict[str, Type] = {OID_ATTR: OidType(class_name)}
        for attr, atype in cdef.attributes.items():
            fields[attr] = self._resolve(atype)
        return TupleType(fields)

    def extent_type(self, extent: str) -> SetType:
        """The ADL set-of-tuples type of a base table."""
        if not self._frozen:
            raise SchemaError("schema must be frozen before querying extent types")
        try:
            return self._extent_types[extent]
        except KeyError:
            raise SchemaError(f"unknown extent: {extent!r}") from None

    def extent_of_class(self, class_name: str) -> str:
        return self.class_def(class_name).extent
