"""Exception hierarchy shared by the whole reproduction.

Every layer (data model, parser, type checker, rewriter, engine) raises a
subclass of :class:`ReproError`, so callers can catch one base class at the
public-API boundary while tests can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DataModelError(ReproError):
    """A value or type was constructed or combined illegally."""


class MissingAttributeError(DataModelError, KeyError):
    """A tuple value was asked for an attribute it does not have.

    Subclasses ``KeyError`` so the ``Mapping`` protocol (``in``, ``.get()``)
    keeps working on :class:`~repro.datamodel.values.VTuple`.
    """

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message readable
        return self.args[0] if self.args else ""


class SchemaError(ReproError):
    """A schema definition is inconsistent (duplicate class, bad reference...)."""


class OOSQLSyntaxError(ReproError):
    """The OOSQL text could not be tokenized or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token so
    error messages can point into the query text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ADLSyntaxError(ReproError):
    """Canonical ADL pretty text could not be re-parsed.

    Raised by :func:`repro.adl.parser.parse_adl` — the fragment-shipping
    surface of the partition-parallel executor."""


class TypeCheckError(ReproError):
    """An OOSQL or ADL expression is ill-typed."""


class TranslationError(ReproError):
    """OOSQL -> ADL translation hit a construct it cannot map."""


class RewriteError(ReproError):
    """A rewrite rule was applied to an expression outside its precondition."""


class EvaluationError(ReproError):
    """Runtime failure while evaluating an ADL expression."""


class UnboundVariableError(EvaluationError):
    """A variable was referenced outside the scope of any iterator binding it."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unbound variable: {name!r}")
        self.name = name


class UnboundParameterError(EvaluationError):
    """A ``$name`` parameter was evaluated without a binding for it."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unbound parameter: ${name}")
        self.name = name


class UnknownExtentError(EvaluationError):
    """A base-table (class extension) name is not present in the database."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown extent: {name!r}")
        self.name = name


class StorageError(ReproError):
    """The paged store was used inconsistently (bad oid, page overflow...)."""


class PartitionError(StorageError):
    """A partitioned extent was declared or used inconsistently (bad
    partition count, non-atomic partitioning key, unknown shard...)."""


class PlanError(ReproError):
    """The physical planner could not produce a plan for a logical expression."""


class ServiceError(ReproError):
    """The query service was used inconsistently (closed session, bad
    statement, malformed parameter bindings...)."""


class OverloadError(ServiceError):
    """The query service shed load: new or queued work was refused so that
    saturation degrades predictably instead of queueing unboundedly (PR 7).

    Carries ``retry_after_s``, a hint for when the client should retry —
    derived from the current queue-wait deadline, never a promise.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class AdmissionError(OverloadError):
    """The query service refused new work: the in-flight limit and the
    admission queue are both full (back-pressure, not failure).  A
    specialization of :class:`OverloadError` since PR 7's shed policy."""


class FaultError(ReproError):
    """Base class of the execution-fault taxonomy (PR 6).

    The retry layer (:mod:`repro.faults.retry`) classifies every failure
    as *transient* (worth retrying: :class:`TransientFaultError`,
    :class:`WorkerCrashError`), *timeout* (:class:`QueryTimeoutError` —
    the deadline has passed, retrying cannot help), or *fatal*
    (everything else — the same failure would recur on any retry).
    """


class TransientFaultError(FaultError):
    """A failure expected to go away on retry (an injected transient
    fault, a momentary resource hiccup).  The retry policy re-runs the
    fragment batch with backoff instead of surfacing it."""


class WorkerCrashError(FaultError):
    """A pool worker process died mid-batch (or a crash fault fired on
    the inline path).  Transient at the query level: the batch re-runs
    inline — parity by construction guarantees the same rows — and the
    circuit breaker records the parallel-path failure."""


class QueryTimeoutError(ServiceError):
    """A query exceeded its deadline (``QueryService.execute(timeout=…)``
    or an explicit ``deadline`` on the executor).  Never retried: the
    time budget is spent.  The worker pool is reclaimed before this is
    raised, so a timed-out query cannot leak hung workers."""
