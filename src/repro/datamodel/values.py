"""Complex-object values for the ADL algebra.

ADL (Section 3 of the paper) is a typed algebra over *complex objects* built
from atoms, object identifiers, tuples ``( )`` and sets ``{ }``.  All values
in this reproduction are immutable and hashable so that sets of tuples, sets
of sets, and tuples containing sets all work with Python's structural
equality — which is exactly the value semantics the algebra needs.

Representation choices:

* atoms are plain Python ``int`` / ``float`` / ``str`` / ``bool`` / ``None``;
* object identity is the dedicated :class:`Oid` atom (the paper's ``oid``
  base type);
* tuples are :class:`VTuple` — an immutable attribute->value mapping with
  order-insensitive equality (a tuple *type* is a set of named fields);
* sets are plain ``frozenset``.

The module also provides the tuple-level operators the paper defines as
algebra primitives: concatenation ``o`` (:func:`concat`), *tuple
subscription* ``e[a1, ..., an]`` (:meth:`VTuple.subscript`) and the
``except`` update/extend operator (:meth:`VTuple.update_except`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple, Union

from repro.datamodel.errors import DataModelError, MissingAttributeError

#: The union of all value kinds an ADL expression may produce.  ``Value`` is
#: intentionally a loose alias — the static shape is enforced by the type
#: checker (``repro.adl.typecheck``), not by the Python type system.
Value = Union[None, bool, int, float, str, "Oid", "VTuple", frozenset]


class Oid:
    """An object identifier — the paper's base type ``oid``.

    Oids carry the name of the class they identify purely as a debugging aid;
    identity and equality are decided by ``(class_name, number)`` so two oids
    minted by different stores never collide accidentally.
    """

    __slots__ = ("class_name", "number")

    def __init__(self, class_name: str, number: int) -> None:
        self.class_name = class_name
        self.number = number

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Oid):
            return NotImplemented
        return self.class_name == other.class_name and self.number == other.number

    def __hash__(self) -> int:
        return hash((Oid, self.class_name, self.number))

    def __repr__(self) -> str:
        return f"@{self.class_name}:{self.number}"

    def __lt__(self, other: "Oid") -> bool:
        if not isinstance(other, Oid):
            return NotImplemented
        return (self.class_name, self.number) < (other.class_name, other.number)


class VTuple(Mapping[str, Value]):
    """An immutable, hashable tuple value ``(a1 = v1, ..., an = vn)``.

    Field order is irrelevant for equality and hashing — ADL tuples are
    records, not sequences.  ``VTuple`` implements the ``Mapping`` protocol,
    so ``t["a"]``, ``"a" in t``, ``len(t)`` and ``dict(t)`` all behave as
    expected.
    """

    __slots__ = ("_fields", "_hash")

    def __init__(self, fields: Union[Mapping[str, Value], Iterable[Tuple[str, Value]]] = (), **kw: Value) -> None:
        items: Dict[str, Value] = {}
        pairs = fields.items() if isinstance(fields, Mapping) else fields
        for name, value in pairs:
            if name in items:
                raise DataModelError(f"duplicate tuple attribute: {name!r}")
            items[name] = value
        for name, value in kw.items():
            if name in items:
                raise DataModelError(f"duplicate tuple attribute: {name!r}")
            items[name] = value
        self._fields: Dict[str, Value] = items
        self._hash = hash(frozenset(items.items()))

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, name: str) -> Value:
        try:
            return self._fields[name]
        except KeyError:
            raise MissingAttributeError(
                f"tuple has no attribute {name!r}; attributes are {sorted(self._fields)}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    # -- value semantics ---------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VTuple):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={format_value(v)}" for k, v in sorted(self._fields.items()))
        return f"({inner})"

    # -- the paper's tuple operators ---------------------------------------
    @property
    def attributes(self) -> frozenset:
        """The set of attribute names — the paper's ``SCH`` applied to a tuple."""
        return frozenset(self._fields)

    def subscript(self, names: Iterable[str]) -> "VTuple":
        """Tuple subscription ``e[a1, ..., an]`` (ADL operator 2).

        Produces a new tuple keeping only the named attributes.
        """
        return VTuple({name: self[name] for name in names})

    def drop(self, names: Iterable[str]) -> "VTuple":
        """The complement of :meth:`subscript`: remove the named attributes."""
        dropped = set(names)
        return VTuple({k: v for k, v in self._fields.items() if k not in dropped})

    def update_except(self, updates: Mapping[str, Value]) -> "VTuple":
        """The ``except`` operator (ADL operator 3).

        Overwrites existing fields and/or extends the tuple with new fields,
        leaving all other fields as they are.
        """
        merged = dict(self._fields)
        merged.update(updates)
        return VTuple(merged)


def concat(left: VTuple, right: VTuple) -> VTuple:
    """Tuple concatenation — the paper's ``o`` operator.

    The paper assumes no attribute naming conflicts occur (Section 3); we
    enforce that assumption, because silently shadowing a field would make
    join results ambiguous.
    """
    clash = left.attributes & right.attributes
    if clash:
        raise DataModelError(f"tuple concatenation attribute clash: {sorted(clash)}")
    merged = dict(left)
    merged.update(right)
    return VTuple(merged)


def vset(*elements: Value) -> frozenset:
    """Construct a set value ``{e1, ..., en}`` (duplicates collapse)."""
    return frozenset(elements)


EMPTY_SET: frozenset = frozenset()


def is_atom(value: Value) -> bool:
    """True for atoms: ``None``, bool, int, float, str, and :class:`Oid`."""
    return value is None or isinstance(value, (bool, int, float, str, Oid))


def is_value(value: object) -> bool:
    """Deep check that ``value`` is a legal ADL value."""
    if is_atom(value):
        return True
    if isinstance(value, VTuple):
        return all(is_value(v) for v in value.values())
    if isinstance(value, frozenset):
        return all(is_value(v) for v in value)
    return False


def sort_key(value: Value):
    """A total order over all values, used for deterministic printing.

    The order is: None < bools < numbers < strings < oids < tuples < sets,
    with structural recursion inside tuples and sets.  It has no semantic
    meaning in the algebra — ADL only ever compares values for equality and
    (for atoms) the usual arithmetic order.
    """
    if value is None:
        return (0,)
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, Oid):
        return (4, value.class_name, value.number)
    if isinstance(value, VTuple):
        return (5, tuple(sorted((k, sort_key(v)) for k, v in value.items())))
    if isinstance(value, frozenset):
        return (6, tuple(sorted(sort_key(v) for v in value)))
    raise DataModelError(f"not an ADL value: {value!r}")


def format_value(value: Value) -> str:
    """Render a value in the paper's surface notation.

    Sets print in a deterministic (sorted) order, tuples with attributes in
    name order, so formatted values are directly comparable in golden tests.
    """
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, Oid):
        return repr(value)
    if isinstance(value, VTuple):
        return repr(value)
    if isinstance(value, frozenset):
        inner = ", ".join(format_value(v) for v in sorted(value, key=sort_key))
        return "{" + inner + "}"
    raise DataModelError(f"not an ADL value: {value!r}")
