"""Synthetic workload generation for benchmarks and property tests.

Two families:

* :func:`generate_database` — populates the Section 2 OOSQL schema at a
  configurable scale (the storage-backed benchmarks);
* :func:`generate_xy` / :func:`generate_flat` — flat and nested X/Y tables
  with controlled match fraction and fan-out (the algebra-level sweeps and
  hypothesis-style randomized equivalence checks).

All generation is seeded and deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.datamodel.values import VTuple, vset
from repro.storage.store import Database, MemoryDatabase
from repro.workload.paper_db import _COLORS, example_schema


def generate_database(
    n_parts: int = 50,
    n_suppliers: int = 20,
    parts_per_supplier: int = 5,
    n_deliveries: int = 30,
    seed: int = 0,
    page_size: int = 4096,
    empty_supplier_fraction: float = 0.1,
) -> Database:
    """A seeded population of the Section 2 supplier–part–delivery schema.

    ``empty_supplier_fraction`` of suppliers supply nothing — the dangling
    tuples that make the COUNT/Complex-Object bug observable at scale.
    """
    rng = random.Random(seed)
    db = Database(example_schema(), page_size=page_size)
    part_oids = [
        db.insert(
            "Part",
            {
                "pname": f"p{i}",
                "price": rng.randint(1, 100),
                "color": rng.choice(_COLORS),
            },
        )
        for i in range(n_parts)
    ]
    supplier_oids = []
    for i in range(n_suppliers):
        if rng.random() < empty_supplier_fraction:
            supplied: List = []
        else:
            count = rng.randint(1, max(1, parts_per_supplier * 2 - 1))
            supplied = rng.sample(part_oids, min(count, len(part_oids)))
        supplier_oids.append(
            db.insert(
                "Supplier",
                {"sname": f"s{i}", "parts_supplied": vset(*supplied)},
            )
        )
    for i in range(n_deliveries):
        supplier = rng.choice(supplier_oids)
        size = rng.randint(1, 4)
        supply = vset(
            *(
                VTuple(part=rng.choice(part_oids), quantity=rng.randint(1, 500))
                for _ in range(size)
            )
        )
        db.insert(
            "Delivery",
            {"supplier": supplier, "supply": supply, "date": 940101 + rng.randint(0, 364)},
        )
    return db


def generate_flat(
    n: int,
    attrs: Tuple[str, ...],
    domain: int,
    seed: int = 0,
) -> List[VTuple]:
    """``n`` distinct flat tuples with integer attributes drawn from
    ``range(domain)``."""
    rng = random.Random(seed)
    rows = set()
    guard = 0
    while len(rows) < n:
        rows.add(VTuple({a: rng.randrange(domain) for a in attrs}))
        guard += 1
        if guard > 100 * n + 100:
            raise ValueError(
                f"domain {domain} too small to draw {n} distinct tuples over {attrs}"
            )
    return sorted(rows, key=lambda t: tuple(t[a] for a in attrs))


def generate_join_database(
    nx: int,
    ny: int,
    x_domain: int,
    y_domain: int,
    seed: int = 0,
    page_size: int = 512,
) -> Database:
    """A *paged* two-extent join workload: ``X(a, v)`` probes, ``Y(d, w)``
    builds, integer keys drawn from separate domains so the match rate is
    ``min(x_domain, y_domain) / x_domain``-ish and controllable.

    Unlike :func:`generate_xy` (an in-memory store whose extents are
    frozensets with hash-scattered iteration order), records here live on
    heap pages in insertion order — the storage layout the batched scan
    path (PR 8) feeds from, and the layout real scans have."""
    from repro.datamodel.schema import Schema
    from repro.datamodel.types import INT

    schema = Schema()
    schema.add_class("X", "X", {"a": INT, "v": INT})
    schema.add_class("Y", "Y", {"d": INT, "w": INT})
    db = Database(schema.freeze(), page_size=page_size)
    rng = random.Random(seed)
    for i in range(nx):
        db.insert("X", {"a": rng.randrange(x_domain), "v": i})
    for i in range(ny):
        db.insert("Y", {"d": rng.randrange(y_domain), "w": i})
    return db


def generate_xy(
    nx: int,
    ny: int,
    key_domain: Optional[int] = None,
    fanout_attr: bool = False,
    max_fanout: int = 3,
    seed: int = 0,
) -> MemoryDatabase:
    """Flat-ish X/Y tables for join-vs-nested-loop sweeps.

    ``X`` tuples have a join attribute ``a`` (and, when ``fanout_attr`` is
    set, a set-valued attribute ``c`` holding up to ``max_fanout``
    ``(d, e)``-tuples); ``Y`` tuples are ``(d, e)`` with ``d`` drawn from
    the same key domain, so selectivity is controlled by ``key_domain``.
    """
    rng = random.Random(seed)
    domain = key_domain if key_domain is not None else max(nx, ny)
    y_rows = generate_flat(ny, ("d", "e"), domain, seed=seed + 1)
    x_rows = []
    for i in range(nx):
        key = rng.randrange(domain)
        if fanout_attr:
            fanout = rng.randint(0, max_fanout)
            members = vset(
                *(
                    VTuple(d=rng.randrange(domain), e=rng.randrange(domain))
                    for _ in range(fanout)
                )
            )
            x_rows.append(VTuple(a=key, i=i, c=members))
        else:
            x_rows.append(VTuple(a=key, i=i))
    return MemoryDatabase({"X": x_rows, "Y": y_rows})
