"""The paper's example queries, verbatim-as-possible in OOSQL text.

Each entry carries the OOSQL text (against the Section 2 schema of
:func:`repro.workload.paper_db.example_schema`) or a builder producing the
ADL form directly (for the Section 4/5 algebra-level examples), plus the
operator the paper says the optimized plan should be built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.adl import ast as A
from repro.adl import builders as B

# ---------------------------------------------------------------------------
# OOSQL-level examples (Section 2)
# ---------------------------------------------------------------------------

#: Example Query 1 — nesting in the select-clause: supplier names with the
#: names of the red parts supplied.
EXAMPLE_QUERY_1 = """
select (sname = s.sname,
        pnames = select p.pname
                 from p in s.parts_supplied
                 where p.color = "red")
from s in SUPPLIER
"""

#: Example Query 2 — nesting in the from-clause: deliveries of supplier s1
#: dated January 1, 1994.
EXAMPLE_QUERY_2 = """
select d
from d in (select e
           from e in DELIVERY
           where e.supplier.sname = "s1")
where d.date = 940101
"""

#: Example Query 3.1 — set comparison between blocks: suppliers supplying
#: all parts supplied by s1.  (``flatten`` makes the paper's implicit
#: coercion of the inner block's set-of-sets result explicit.)
EXAMPLE_QUERY_3_1 = """
select s.sname
from s in SUPPLIER
where s.parts_supplied superseteq
      flatten(select t.parts_supplied
              from t in SUPPLIER
              where t.sname = "s1")
"""

#: Example Query 3.2 — quantifier over a set-valued attribute: deliveries
#: that include red parts.
EXAMPLE_QUERY_3_2 = """
select d
from d in DELIVERY
where exists x in (select s
                   from s in d.supply
                   where s.part.color = "red")
"""

OOSQL_EXAMPLES = {
    "example-1": EXAMPLE_QUERY_1,
    "example-2": EXAMPLE_QUERY_2,
    "example-3.1": EXAMPLE_QUERY_3_1,
    "example-3.2": EXAMPLE_QUERY_3_2,
}

# ---------------------------------------------------------------------------
# Algebra-level examples (Sections 4-6, against the Section 4 flat types)
# ---------------------------------------------------------------------------


def example_query_4() -> A.Expr:
    """Example Query 4 — referential-integrity violations::

        π_eid(σ[s : ∃z ∈ s.parts • ¬∃p ∈ PART • z = p[pid]](SUPPLIER))

    The paper rewrites it to ``π_eid(μ_parts(SUPPLIER) ▷ PART)``.
    (The paper projects on "the identifiers"; in the Section 4 types that
    is the ``eid`` attribute.)
    """
    s, z, p = B.var("s"), B.var("z"), B.var("p")
    pred = B.exists(
        "z",
        B.attr(s, "parts"),
        B.neg(B.exists("p", B.extent("PART"), B.eq(z, B.subscript(p, "pid")))),
    )
    return B.project(B.sel("s", pred, B.extent("SUPPLIER")), "eid")


def example_query_5() -> A.Expr:
    """Example Query 5 — suppliers supplying red parts::

        σ[s : ∃x ∈ s.parts • ∃p ∈ PART • x = p[pid] ∧ p.color = "red"](SUPPLIER)

    Paper target: ``SUPPLIER ⋉⟨s,p : p[pid] ∈ s.parts⟩ σ[p : p.color="red"](PART)``.
    """
    s, x, p = B.var("s"), B.var("x"), B.var("p")
    pred = B.exists(
        "x",
        B.attr(s, "parts"),
        B.exists(
            "p",
            B.extent("PART"),
            B.conj(B.eq(x, B.subscript(p, "pid")), B.eq(B.attr(p, "color"), "red")),
        ),
    )
    return B.sel("s", pred, B.extent("SUPPLIER"))


def example_query_6() -> A.Expr:
    """Example Query 6 — supplier names with the parts supplied::

        α[s : (sname = s.sname, parts_suppl = σ[p : p[pid] ∈ s.parts](PART))](SUPPLIER)

    Cannot be a relational join query (the result is nested); the paper
    rewrites it to a nestjoin.
    """
    s, p = B.var("s"), B.var("p")
    body = B.tup(
        sname=B.attr(s, "sname"),
        parts_suppl=B.sel("p", B.member(B.subscript(p, "pid"), B.attr(s, "parts")), B.extent("PART")),
    )
    return B.amap("s", body, B.extent("SUPPLIER"))


def figure1_query() -> A.Expr:
    """Figure 1 / Section 5.2.2 — the grouping example::

        σ[x : x.c ⊆ σ[y : x.a = y.d](Y)](X)

    (⊆ between the set-valued attribute and the subquery; ``(a=2, c=∅)``
    makes the grouping rewrite buggy.)
    """
    x, y = B.var("x"), B.var("y")
    return B.sel(
        "x",
        B.subseteq(B.attr(x, "c"), B.sel("y", B.eq(B.attr(x, "a"), B.attr(y, "d")), B.extent("Y"))),
        B.extent("X"),
    )


def figure2_variant_supseteq() -> A.Expr:
    """The ⊇ variant of the Figure 2 query the paper also discusses."""
    x, y = B.var("x"), B.var("y")
    return B.sel(
        "x",
        B.supseteq(B.attr(x, "c"), B.sel("y", B.eq(B.attr(x, "a"), B.attr(y, "d")), B.extent("Y"))),
        B.extent("X"),
    )


def figure3_nestjoin() -> A.Expr:
    """Figure 3 — ``X ⊣⟨x,y : x.b = y.d ; y ; ys⟩ Y``."""
    return B.nestjoin(
        B.extent("X"),
        B.extent("Y"),
        "x",
        "y",
        B.eq(B.attr(B.var("x"), "b"), B.attr(B.var("y"), "d")),
        "ys",
    )


@dataclass(frozen=True)
class AlgebraExample:
    """One algebra-level paper example with its expected plan operator."""

    name: str
    build: Callable[[], A.Expr]
    expected_operator: Optional[type]
    description: str


ALGEBRA_EXAMPLES = (
    AlgebraExample(
        "example-4",
        example_query_4,
        A.AntiJoin,
        "referential integrity via attribute unnest + antijoin",
    ),
    AlgebraExample(
        "example-5",
        example_query_5,
        A.SemiJoin,
        "suppliers of red parts via semijoin",
    ),
    AlgebraExample(
        "example-6",
        example_query_6,
        A.NestJoin,
        "nested result via nestjoin",
    ),
)
