"""Benchmark harness utilities: aligned tables and experiment reports.

Every benchmark regenerates a paper artifact (a table, a figure, or a
performance claim) and prints it through :func:`render_table`, so the
bench output can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Monospace-aligned table, markdown-ish, deterministic."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


#: Every table rendered during this process, in order.  The benchmarks'
#: conftest flushes this registry into pytest's terminal summary so the
#: regenerated paper artifacts land in the benchmark log even though
#: pytest captures per-test stdout.
RENDERED_TABLES: List[str] = []


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> None:
    """Print a table and register it for the benchmark terminal summary."""
    text = render_table(headers, rows, title)
    RENDERED_TABLES.append(text)
    print()
    print(text)


def register_text(text: str) -> None:
    """Register free-form report text (e.g. derivation traces) alongside
    the tables for the benchmark terminal summary."""
    RENDERED_TABLES.append(text)
    print(text)


def speedup(baseline: float, improved: float) -> str:
    """Human-readable ratio, guarding against zero denominators."""
    if improved <= 0:
        return "inf"
    return f"{baseline / improved:.1f}x"
