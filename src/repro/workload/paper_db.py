"""The paper's running example data: schemas, extents, figures.

Three artifacts from the paper are materialized here:

* the Section 2 **supplier–part–delivery OOSQL schema** (classes with a
  named extension each) plus a deterministic sample population;
* the Section 4 **flat ADL types** for ``SUPPLIER``/``PART`` (note the
  paper's convention: parts references are unary tuples ``(pid : oid)``)
  as a :class:`~repro.datamodel.schema.Catalog`;
* the exact example instances of **Figure 2** (the Complex Object bug) and
  **Figure 3** (the nestjoin), reconstructed with one dangling outer tuple
  each — the tuple whose loss/retention the figures are about.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.datamodel.schema import Catalog, ClassRef, Schema
from repro.datamodel.types import INT, STRING, OidType, SetType, TupleType
from repro.datamodel.values import Oid, VTuple, vset
from repro.storage.store import Database, MemoryDatabase

# ---------------------------------------------------------------------------
# Section 2: the OOSQL schema
# ---------------------------------------------------------------------------


def example_schema() -> Schema:
    """The supplier–part database of Section 2 (methods/constraints omitted,
    as in the paper; ``date`` is an int like the paper's ``940101``)."""
    schema = Schema()
    schema.add_class(
        "Part",
        "PART",
        {"pname": STRING, "price": INT, "color": STRING},
    )
    schema.add_class(
        "Supplier",
        "SUPPLIER",
        {"sname": STRING, "parts_supplied": SetType(ClassRef("Part"))},
    )
    schema.add_class(
        "Delivery",
        "DELIVERY",
        {
            "supplier": ClassRef("Supplier"),
            "supply": SetType(TupleType({"part": ClassRef("Part"), "quantity": INT})),
            "date": INT,
        },
    )
    return schema.freeze()


_COLORS = ("red", "green", "blue", "yellow")


def example_database(page_size: int = 4096) -> Database:
    """A small deterministic population of the Section 2 schema.

    Shaped so every example query has interesting answers: supplier ``s1``
    supplies parts p0/p1; some suppliers supply red parts, one supplies
    nothing; deliveries reference suppliers and carry dated supply sets.
    """
    db = Database(example_schema(), page_size=page_size)
    part_oids = [
        db.insert(
            "Part",
            {"pname": f"p{i}", "price": 10 + 5 * i, "color": _COLORS[i % len(_COLORS)]},
        )
        for i in range(8)
    ]
    supplier_specs = [
        ("s1", [0, 1]),
        ("s2", [0, 1, 2, 3]),
        ("s3", [2, 5]),
        ("s4", []),  # supplies nothing: the dangling supplier
        ("s5", [4, 6, 7]),
    ]
    supplier_oids = [
        db.insert(
            "Supplier",
            {"sname": name, "parts_supplied": vset(*(part_oids[i] for i in parts))},
        )
        for name, parts in supplier_specs
    ]
    delivery_specs = [
        (0, [(0, 100), (1, 50)], 940101),
        (1, [(2, 10)], 940101),
        (2, [(5, 7), (2, 3)], 940215),
        (4, [(4, 1)], 940301),
    ]
    for supplier_index, supply, date in delivery_specs:
        db.insert(
            "Delivery",
            {
                "supplier": supplier_oids[supplier_index],
                "supply": vset(
                    *(
                        VTuple(part=part_oids[part_index], quantity=quantity)
                        for part_index, quantity in supply
                    )
                ),
                "date": date,
            },
        )
    return db


# ---------------------------------------------------------------------------
# Section 4: the flat ADL types
# ---------------------------------------------------------------------------


def section4_catalog() -> Catalog:
    """The ADL types of Section 4::

        SUPPLIER : {(eid : oid, sname : string, parts : {(pid : oid)})}
        PART     : {(pid : oid, pname : string, price : int, color : string)}
    """
    part_ref = TupleType({"pid": OidType("Part")})
    supplier_t = TupleType(
        {"eid": OidType("Supplier"), "sname": STRING, "parts": SetType(part_ref)}
    )
    part_t = TupleType(
        {"pid": OidType("Part"), "pname": STRING, "price": INT, "color": STRING}
    )
    return Catalog({"SUPPLIER": SetType(supplier_t), "PART": SetType(part_t)})


def section4_database(dangling_refs: int = 1) -> MemoryDatabase:
    """A MemoryDatabase instance of the Section 4 types.

    ``dangling_refs`` suppliers reference non-existing parts — the
    referential-integrity violations Example Query 4 hunts for.
    """
    parts = [
        VTuple(pid=Oid("Part", i), pname=f"p{i}", price=10 + i, color=_COLORS[i % len(_COLORS)])
        for i in range(6)
    ]
    supplier_specs: List[Tuple[str, List[Oid]]] = [
        ("s1", [Oid("Part", 0), Oid("Part", 1)]),
        ("s2", [Oid("Part", 2), Oid("Part", 3), Oid("Part", 4)]),
        ("s3", [Oid("Part", 5)]),
        ("s4", []),
    ]
    for i in range(dangling_refs):
        supplier_specs.append((f"bad{i}", [Oid("Part", 100 + i)]))
    suppliers = [
        VTuple(
            eid=Oid("Supplier", index),
            sname=name,
            parts=vset(*(VTuple(pid=oid) for oid in refs)),
        )
        for index, (name, refs) in enumerate(supplier_specs)
    ]
    return MemoryDatabase({"SUPPLIER": suppliers, "PART": parts})


# ---------------------------------------------------------------------------
# Figure 2: the Complex Object bug instance
# ---------------------------------------------------------------------------


def figure2_tables() -> Tuple[List[VTuple], List[VTuple]]:
    """The X and Y of Figure 2.

    ``X`` holds a set-valued attribute ``c`` of ``(d, e)``-tuples; ``Y`` is
    a flat table of ``(d, e)``-tuples; the inner block is
    ``σ[y : x.a = y.d](Y)``.  Tuple ``(a = 2, c = ∅)`` is the dangling
    tuple: its subquery result is empty, ``∅ ⊆ ∅`` holds, so the nested
    query keeps it — and the join query loses it.
    """
    x_rows = [
        VTuple(a=1, c=vset(VTuple(d=1, e=1), VTuple(d=1, e=2))),
        VTuple(a=2, c=frozenset()),
    ]
    y_rows = [
        VTuple(d=1, e=1),
        VTuple(d=1, e=2),
        VTuple(d=1, e=3),
        VTuple(d=3, e=3),
    ]
    return x_rows, y_rows


def figure2_catalog() -> Catalog:
    member = TupleType({"d": INT, "e": INT})
    x_t = TupleType({"a": INT, "c": SetType(member)})
    return Catalog({"X": SetType(x_t), "Y": SetType(member)})


def figure2_database() -> MemoryDatabase:
    x_rows, y_rows = figure2_tables()
    return MemoryDatabase({"X": x_rows, "Y": y_rows})


# ---------------------------------------------------------------------------
# Figure 3: the nestjoin example instance
# ---------------------------------------------------------------------------


def figure3_tables() -> Tuple[List[VTuple], List[VTuple]]:
    """The X and Y of Figure 3: an equijoin on the second attribute
    (``x.b = y.d``), with ``(a = 3, b = 3)`` dangling — the nestjoin keeps
    it with an empty group."""
    x_rows = [
        VTuple(a=1, b=1),
        VTuple(a=2, b=1),
        VTuple(a=3, b=3),
    ]
    y_rows = [
        VTuple(c=1, d=1),
        VTuple(c=2, d=1),
        VTuple(c=3, d=5),
    ]
    return x_rows, y_rows


def figure3_catalog() -> Catalog:
    x_t = TupleType({"a": INT, "b": INT})
    y_t = TupleType({"c": INT, "d": INT})
    return Catalog({"X": SetType(x_t), "Y": SetType(y_t)})


def figure3_database() -> MemoryDatabase:
    x_rows, y_rows = figure3_tables()
    return MemoryDatabase({"X": x_rows, "Y": y_rows})
