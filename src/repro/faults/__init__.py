"""Fault tolerance for query execution (PR 6).

Two halves, deliberately packaged together because each is the other's
test harness:

* **Injection** — :class:`FaultPlan` / :class:`FaultSpec`
  (:mod:`repro.faults.plan`) script deterministic failures (worker
  crash, hang, transient error, slow fragment) keyed on
  ``(fragment, attempt)``, installed per-process through
  :mod:`repro.faults.runtime` and fired by the hook in
  :func:`repro.shard.fragment.execute_fragment` and the pool
  initializer.  ``REPRO_FAULT_PLAN`` injects a plan from the
  environment, which is how CI replays the whole parallel-parity suite
  under a crash-once plan.
* **Resilience** — :class:`RetryPolicy` (:mod:`repro.faults.retry`:
  bounded attempts, exponential backoff, deterministic jitter,
  transient/timeout/fatal classification) and :class:`CircuitBreaker`
  (:mod:`repro.faults.breaker`: repeated parallel-path failure routes
  gather-bearing plans inline until a cooldown expires), consumed by
  :class:`repro.shard.executor.ParallelExecutor` and surfaced through
  :class:`repro.service.QueryService` counters.

The dependency direction is one-way: :mod:`repro.shard` and
:mod:`repro.service` import this package, never the reverse.
"""

from repro.faults.breaker import CircuitBreaker
from repro.faults.plan import CRASH_EXIT_CODE, FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy

__all__ = [
    "CRASH_EXIT_CODE",
    "CircuitBreaker",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
]
