"""Bounded retries with exponential backoff and deterministic jitter.

The policy answers three questions for the executor's recovery loop:

* **Is this failure worth retrying?**  :meth:`RetryPolicy.classify`
  sorts every exception into ``"transient"`` (injected transient faults,
  worker crashes, OS-level pipe/connection hiccups — retry),
  ``"timeout"`` (the deadline has passed — never retry) or ``"fatal"``
  (a deterministic error that would recur — surface immediately).
* **How long to wait before attempt N?**  :meth:`RetryPolicy.backoff_s`
  grows exponentially from ``base_s`` and is *deterministically*
  jittered: the jitter fraction comes from an FNV mix of ``(seed,
  attempt)``, not from a live RNG, so a replayed failure scenario waits
  exactly as long as the original — reproducibility is the whole point
  of the fault layer.
* **When to give up?**  ``max_attempts`` bounds the loop; the caller
  surfaces the final error.

Backoff sleeps are deadline-aware: waiting out a backoff past the
query's deadline raises
:class:`~repro.datamodel.errors.QueryTimeoutError` instead of sleeping
into a budget that is already spent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.datamodel.errors import (
    QueryTimeoutError,
    ServiceError,
    TransientFaultError,
    WorkerCrashError,
)

#: Exception types classified as transient beyond the repro taxonomy:
#: OS-level transport failures a forked pool can produce under churn.
_TRANSIENT_OS_ERRORS = (BrokenPipeError, ConnectionError, InterruptedError)

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def _mix(seed: int, attempt: int) -> int:
    acc = _FNV_OFFSET
    for byte in f"{seed}:{attempt}".encode("ascii"):
        acc = ((acc ^ byte) * _FNV_PRIME) & _MASK
    return acc


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor retries transient failures.

    ``max_attempts`` counts *attempts*, not retries: the default 3 means
    one initial try plus up to two retries.  ``jitter`` is the fraction
    of each backoff that deterministic jitter may shave off (0 disables
    it; 0.5 means attempt N waits between 50% and 100% of its nominal
    exponential backoff).
    """

    max_attempts: int = 3
    base_s: float = 0.01
    multiplier: float = 2.0
    max_s: float = 0.25
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ServiceError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_s < 0 or self.max_s < 0 or self.multiplier < 1:
            raise ServiceError("backoff parameters must be non-negative (multiplier >= 1)")
        if not 0.0 <= self.jitter <= 1.0:
            raise ServiceError(f"jitter must be in [0, 1], got {self.jitter}")

    # -- classification -------------------------------------------------------
    @staticmethod
    def classify(exc: BaseException) -> str:
        """``"transient"`` / ``"timeout"`` / ``"fatal"`` for ``exc``."""
        if isinstance(exc, QueryTimeoutError):
            return "timeout"
        if isinstance(exc, (TransientFaultError, WorkerCrashError)):
            return "transient"
        if isinstance(exc, _TRANSIENT_OS_ERRORS):
            return "transient"
        return "fatal"

    # -- backoff --------------------------------------------------------------
    def backoff_s(self, attempt: int) -> float:
        """Wait before attempt ``attempt`` (1-based retry ordinal).

        Deterministic: the same (policy, attempt) always yields the same
        delay, so fault-injection scenarios replay byte-for-byte.
        """
        if attempt < 1:
            return 0.0
        nominal = min(self.max_s, self.base_s * self.multiplier ** (attempt - 1))
        if not self.jitter:
            return nominal
        frac = (_mix(self.seed, attempt) % 10_000) / 10_000.0
        return nominal * (1.0 - self.jitter * frac)

    def sleep_backoff(self, attempt: int, deadline: Optional[float] = None) -> None:
        """Sleep out attempt ``attempt``'s backoff, bounded by ``deadline``.

        Raises :class:`QueryTimeoutError` when the deadline would expire
        inside (or before) the wait — retrying past the budget is
        indistinguishable from hanging, the exact failure mode deadlines
        exist to prevent.
        """
        delay = self.backoff_s(attempt)
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= delay:
                raise QueryTimeoutError(
                    f"deadline expires during retry backoff (attempt {attempt})"
                )
        if delay > 0:
            time.sleep(delay)
