"""Deterministic fault injection: seedable, scripted failure plans.

A :class:`FaultPlan` is plain data describing *which* failures fire
*where*: each :class:`FaultSpec` names a fault kind, the fragment index
it targets, and the (0-based) batch **attempt numbers** on which it
fires.  Keying on ``(fragment, attempt)`` instead of mutable "remaining
fires" counters is what makes injection deterministic across process
boundaries: a forked worker and the coordinator's inline fallback reach
identical decisions from the same immutable plan, with no shared state
to synchronize — the coordinator threads the attempt number into every
fragment payload.

Fault kinds
===========

``crash``
    In a pool worker: ``os._exit`` — the real thing, an abrupt worker
    death the coordinator must detect as a lost batch.  On the inline
    path a hard exit would kill the coordinator itself, so the fault
    *simulates* the crash by raising
    :class:`~repro.datamodel.errors.WorkerCrashError` — same
    classification, same recovery path, survivable in tests.
``hang``
    Sleep for ``delay_s`` (far past any test deadline).  The sleep is
    chunked and deadline-aware so an inline hang converts into
    :class:`~repro.datamodel.errors.QueryTimeoutError` at the deadline
    instead of actually blocking the suite; a pool worker's hang is
    additionally bounded by the coordinator's own deadline polling.
``transient``
    Raise :class:`~repro.datamodel.errors.TransientFaultError` — the
    retryable failure mode the backoff policy exists for.
``slow``
    Sleep ``delay_s`` and then *succeed* — latency injection without
    failure, for deadline and overhead tests.

``where`` restricts a spec to pool workers (``"worker"``), the
coordinator's inline path (``"inline"``), or both (``"any"``, default).

The plan's ``seed`` feeds :meth:`pick` (a deterministic pseudo-random
fragment choice) and is echoed into test fixtures so a failing fault
matrix entry reproduces from its parametrization alone.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.datamodel.errors import (
    QueryTimeoutError,
    ServiceError,
    TransientFaultError,
    WorkerCrashError,
)

KINDS = ("crash", "hang", "transient", "slow")

#: Exit status used by worker-side crash faults — distinguishable from a
#: clean exit in pool post-mortems.
CRASH_EXIT_CODE = 73

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def _mix(*parts: int) -> int:
    """FNV-1a over integer parts — the same stable-hash idea the shard
    router uses, kept local so :mod:`repro.faults` never imports
    :mod:`repro.shard` (the dependency runs the other way)."""
    acc = _FNV_OFFSET
    for part in parts:
        for byte in str(part).encode("ascii"):
            acc = ((acc ^ byte) * _FNV_PRIME) & _MASK
        acc = ((acc ^ 0x7C) * _FNV_PRIME) & _MASK
    return acc


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault: ``kind`` at ``fragment`` on ``attempts``.

    ``fragment=None`` targets every fragment; ``attempts=()`` fires on
    every attempt (unbounded — pair it with a breaker or deadline test).
    """

    kind: str
    fragment: Optional[int] = None
    attempts: Tuple[int, ...] = (0,)
    delay_s: float = 30.0
    where: str = "any"  # "worker" | "inline" | "any"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ServiceError(f"unknown fault kind {self.kind!r} (one of {KINDS})")
        if self.where not in ("worker", "inline", "any"):
            raise ServiceError(f"unknown fault site {self.where!r}")

    def matches(self, index: int, attempt: int, in_worker: bool) -> bool:
        if self.fragment is not None and self.fragment != index:
            return False
        if self.attempts and attempt not in self.attempts:
            return False
        if self.where == "worker" and not in_worker:
            return False
        if self.where == "inline" and in_worker:
            return False
        return True


class FaultPlan:
    """An immutable, picklable script of injected faults.

    Crosses the fork boundary inside the pool initializer's arguments;
    consulted by the hook at the top of
    :func:`repro.shard.fragment.execute_fragment`.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed

    # -- construction helpers -------------------------------------------------
    @classmethod
    def crash_once(cls, fragment: int = 0, *, where: str = "any", seed: int = 0) -> "FaultPlan":
        """Crash the worker running ``fragment`` on the first attempt."""
        return cls([FaultSpec("crash", fragment, (0,), where=where)], seed=seed)

    @classmethod
    def hang(cls, fragment: int = 0, delay_s: float = 30.0, *, seed: int = 0) -> "FaultPlan":
        """Hang ``fragment`` for ``delay_s`` on every attempt."""
        return cls([FaultSpec("hang", fragment, (), delay_s=delay_s)], seed=seed)

    @classmethod
    def transient(cls, times: int = 1, fragment: Optional[int] = None, *, seed: int = 0) -> "FaultPlan":
        """Raise a transient error on the first ``times`` attempts."""
        return cls([FaultSpec("transient", fragment, tuple(range(times)))], seed=seed)

    @classmethod
    def slow(cls, delay_s: float, fragment: Optional[int] = None, *, seed: int = 0) -> "FaultPlan":
        """Delay fragments by ``delay_s`` without failing them."""
        return cls([FaultSpec("slow", fragment, (), delay_s=delay_s)], seed=seed)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """A plan from a compact spec string — the CI / env-var surface.

        ``"crash-once"``, ``"transient-once"``, ``"transient:3"``,
        ``"hang:0.5"``, ``"slow:0.01"``; ``+``-separated specs compose.
        """
        specs = []
        for part in text.split("+"):
            part = part.strip()
            if not part:
                continue
            name, _, arg = part.partition(":")
            if name == "crash-once":
                specs.append(FaultSpec("crash", 0, (0,)))
            elif name == "transient-once":
                specs.append(FaultSpec("transient", None, (0,)))
            elif name == "transient":
                specs.append(FaultSpec("transient", None, tuple(range(int(arg or 1)))))
            elif name == "hang":
                specs.append(FaultSpec("hang", 0, (), delay_s=float(arg or 30.0)))
            elif name == "slow":
                specs.append(FaultSpec("slow", None, (), delay_s=float(arg or 0.01)))
            else:
                raise ServiceError(f"unknown fault plan spec {part!r}")
        return cls(specs)

    @classmethod
    def from_env(cls, var: str = "REPRO_FAULT_PLAN") -> Optional["FaultPlan"]:
        """The plan named by ``$REPRO_FAULT_PLAN``, or ``None``.

        This is how CI re-runs the whole parallel-parity suite under an
        injected crash-once plan without touching any test."""
        text = os.environ.get(var)
        return cls.parse(text) if text else None

    # -- deterministic choice -------------------------------------------------
    def pick(self, total: int, salt: int = 0) -> int:
        """A seed-deterministic fragment index in ``[0, total)`` — for
        plans that want "crash *a* fragment" without hardcoding which."""
        if total < 1:
            raise ServiceError(f"pick needs total >= 1, got {total}")
        return _mix(self.seed, salt) % total

    # -- the injection point --------------------------------------------------
    def apply(
        self,
        *,
        index: int,
        attempt: int,
        deadline: Optional[float] = None,
        in_worker: bool = False,
    ) -> None:
        """Fire every matching fault for this (fragment, attempt) site.

        Called at the top of ``execute_fragment`` — before any rows are
        produced, so a failed attempt never contributes partial statistics
        to the run that eventually succeeds.
        """
        for spec in self.specs:
            if not spec.matches(index, attempt, in_worker):
                continue
            if spec.kind == "crash":
                if in_worker:
                    os._exit(CRASH_EXIT_CODE)
                raise WorkerCrashError(
                    f"injected crash on fragment {index} (attempt {attempt}, inline)"
                )
            if spec.kind == "transient":
                raise TransientFaultError(
                    f"injected transient fault on fragment {index} (attempt {attempt})"
                )
            if spec.kind in ("hang", "slow"):
                self._sleep(spec, index, deadline)
                # slow: continue into normal execution; hang survived the
                # full delay only because no deadline bounded it

    @staticmethod
    def _sleep(spec: FaultSpec, index: int, deadline: Optional[float]) -> None:
        """Chunked, deadline-aware sleep shared by hang and slow faults."""
        end = time.monotonic() + spec.delay_s
        while True:
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                if spec.kind == "hang":
                    raise QueryTimeoutError(
                        f"injected hang on fragment {index} exceeded the deadline"
                    )
                return  # a slow fault never outlives the deadline by itself
            if now >= end:
                return
            cap = end - now if deadline is None else min(end, deadline) - now
            time.sleep(min(0.01, max(cap, 0.0)))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{s.kind}@{'*' if s.fragment is None else s.fragment}"
            f"[{','.join(map(str, s.attempts)) or '*'}]"
            for s in self.specs
        )
        return f"FaultPlan({inner}; seed={self.seed})"
