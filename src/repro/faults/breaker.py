"""A circuit breaker over the parallel execution path.

Worker-pool failures come in bursts — a bad fork, an OOM-killed
container, a poisoned snapshot — and re-forking a pool just to watch it
die again burns a fresh fork + batch latency per query.  The breaker
converts repeated parallel-path failure into a *routing decision*:

* ``closed`` — healthy; parallel runs allowed.  ``threshold``
  consecutive failures trip it.
* ``open`` — every gather-bearing batch routes straight to the inline
  path (correct rows by construction, no fork) until ``cooldown_s`` has
  elapsed.
* ``half-open`` — after cooldown one probe batch may try the pool:
  success closes the breaker, failure re-opens it and restarts the
  cooldown.

The executor serializes batches under its run guard, so the breaker's
own lock only defends the cheap state reads from ``stats()`` callers on
other threads.
"""

from __future__ import annotations

import threading
import time

from repro.datamodel.errors import ServiceError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trip after ``threshold`` consecutive failures; retest after
    ``cooldown_s``."""

    def __init__(self, threshold: int = 3, cooldown_s: float = 30.0) -> None:
        if threshold < 1:
            raise ServiceError(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown_s < 0:
            raise ServiceError(f"breaker cooldown must be >= 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive
        self._opened_at = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allows(self) -> bool:
        """May the caller try the parallel path right now?

        An open breaker whose cooldown has elapsed transitions to
        half-open *here* — the permission check is the retest trigger.
        """
        with self._lock:
            if self._state == OPEN:
                if time.monotonic() - self._opened_at >= self.cooldown_s:
                    self._state = HALF_OPEN
                    return True
                return False
            return True

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN or self._failures >= self.threshold:
                if self._state != OPEN:
                    self.trips += 1
                self._state = OPEN
                self._opened_at = time.monotonic()
                self._failures = 0

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._failures = 0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "trips": self.trips,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.state}, trips={self.trips})"
