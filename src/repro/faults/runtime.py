"""Process-global fault-injection state.

One slot per process: the :class:`~repro.faults.plan.FaultPlan` installed
here is consulted by the hook in
:func:`repro.shard.fragment.execute_fragment` whenever no plan is passed
explicitly.  Pool workers get their plan through this slot — the pool
initializer calls :func:`install` with ``in_worker=True`` — which is what
lets *crash* faults distinguish "kill this worker process" from "simulate
a crash inline" (a real ``os._exit`` in the coordinator would take the
whole test run down with it).

The slot is deliberately not thread-local: a fault plan describes the
whole process's behavior, and the coordinator-side inline path passes its
plan explicitly anyway (see ``ParallelExecutor``), so tests that install
globally and tests that inject per-executor never fight over it.
"""

from __future__ import annotations

from typing import Optional

_PLAN = None
_IN_WORKER = False


def install(plan, *, in_worker: bool = False) -> None:
    """Install ``plan`` (may be ``None``) as this process's fault plan."""
    global _PLAN, _IN_WORKER
    _PLAN = plan
    _IN_WORKER = in_worker


def clear() -> None:
    global _PLAN, _IN_WORKER
    _PLAN = None
    _IN_WORKER = False


def current() -> Optional[object]:
    return _PLAN


def in_worker() -> bool:
    """True in a forked pool worker (set by the pool initializer)."""
    return _IN_WORKER
