"""repro — a reproduction of *From Nested-Loop to Join Queries in OODB*
(Steenhagen, Apers, Blanken, de By; VLDB 1994).

The package implements the paper's full stack:

* :mod:`repro.datamodel` — complex-object values, types, OODB schemas;
* :mod:`repro.storage` — a paged object store with I/O accounting;
* :mod:`repro.oosql` — the OOSQL source language (lexer, parser, checker);
* :mod:`repro.adl` — the ADL complex-object algebra;
* :mod:`repro.translate` — the Section 3 OOSQL → ADL translation;
* :mod:`repro.rewrite` — the Section 4–6 unnesting strategy (Rule 1/2,
  Tables 1–3, grouping + the Complex Object bug, the nestjoin);
* :mod:`repro.engine` — the naive interpreter, physical operators
  (hash/sort/membership joins, nestjoin, PNHL, materialize) and planner;
* :mod:`repro.workload` — the paper's example data and benchmark harness.

Quick use::

    from repro import compile_oosql, optimize, Executor
    from repro.workload import example_schema, example_database

    schema, db = example_schema(), example_database()
    adl = compile_oosql('select s.sname from s in SUPPLIER '
                        'where exists p in PART : p.oid in s.parts_supplied',
                        schema)
    plan = optimize(adl, schema)          # Section 4 strategy
    result = Executor(db).execute(plan.expr)
"""

from repro.adl.pretty import pretty, pretty_tree
from repro.engine.interpreter import Interpreter, evaluate
from repro.engine.planner import Executor, Planner
from repro.engine.stats import Stats
from repro.oosql.parser import parse
from repro.rewrite.strategy import OptimizationResult, Optimizer, optimize, optimize_oosql
from repro.service import PreparedStatement, QueryService, Session
from repro.translate.translator import Translator, compile_oosql, translate

__version__ = "1.0.0"

__all__ = [
    "Executor",
    "Interpreter",
    "OptimizationResult",
    "Optimizer",
    "Planner",
    "PreparedStatement",
    "QueryService",
    "Session",
    "Stats",
    "Translator",
    "__version__",
    "compile_oosql",
    "evaluate",
    "optimize",
    "optimize_oosql",
    "parse",
    "pretty",
    "pretty_tree",
    "translate",
]
