"""The process-pool fragment executor.

:class:`ParallelExecutor` fans plan fragments out to a
``multiprocessing`` worker pool and merges partial results plus
per-worker :class:`~repro.engine.stats.Stats` snapshots.  What crosses
the process boundary is exactly the fragment-shipping contract of
:mod:`repro.shard.fragment` — canonical ADL text, shard bindings,
parameter bindings out; row sets and counter snapshots back.

Pool lifecycle
==============

Workers are forked with a point-in-time state: the database object and
a plain ``{extent: PartitionedExtent}`` snapshot of the catalog's
partitionings (never the live catalog — a forked child must not inherit
or touch its locks).  Staleness is caught on *three* triggers, checked
per run before the pool is used:

* the snapshot itself performs the extent-identity handshake
  (``Catalog.partition_snapshot`` → ``partitioning()``), so stale
  shards re-derive before they are forked;
* a catalog **version** move (ANALYZE / ``create_index`` /
  ``partition()`` / statistics refresh) retires the pool the same way
  it retires cached plans;
* the **identity of every extent the fragment batch reads** — including
  un-partitioned broadcast sides, which have no partitioning to
  handshake through — is compared against the identities recorded at
  fork time; any change (e.g. a notified ``insert_rows`` that bumped
  nothing yet) re-forks, because forked children hold a copy-on-write
  image of the parent's pre-mutation heap.

Mutations invisible to all three (a store mutating rows in place
without replacing the extent value) require an explicit
:meth:`refresh`.

``mode="inline"`` runs fragments in-process through the identical
:func:`~repro.shard.fragment.execute_fragment` path (no pool, fully
deterministic) — the fallback when ``fork`` is unavailable and the
default engine for tests.  Per-run accounting lands in
:attr:`last_report`: per-fragment work snapshots, their sum, and the
critical path (the largest single fragment) — the number the PR-5
benchmark's checked speedup is built from.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datamodel.errors import ServiceError
from repro.shard.fragment import (
    FragmentSpec,
    execute_fragment,
    fragment_stats_total,
)

#: Worker-process state: ``(db, partitions)`` installed by the pool
#: initializer (inherited via fork, never pickled).
_WORKER_STATE: Optional[Tuple[object, Dict[str, object]]] = None


def _init_worker(state) -> None:
    global _WORKER_STATE
    _WORKER_STATE = state


def _run_fragment(spec: FragmentSpec):
    db, partitions = _WORKER_STATE
    return execute_fragment(db, partitions, spec)


class ParallelExecutor:
    """Runs fragment batches, in a forked worker pool or inline.

    Parameters
    ----------
    db / catalog:
        The store fragments read and the catalog whose partitionings
        (and version) worker snapshots are derived from.  ``catalog``
        defaults to the store's own registered catalog.
    workers:
        Pool size; also the effective-parallelism figure the planner's
        cost formulas divide by.
    mode:
        ``"process"`` (default) forks a pool; ``"inline"`` runs
        fragments in-process.  Process mode degrades to inline (with
        :attr:`degraded` set) when ``fork`` is unavailable.
    """

    def __init__(self, db, catalog=None, *, workers: int = 4, mode: str = "process") -> None:
        if workers < 1:
            raise ServiceError(f"parallel workers must be >= 1, got {workers}")
        if mode not in ("process", "inline"):
            raise ServiceError(f"unknown parallel mode {mode!r}")
        self.db = db
        self.catalog = catalog if catalog is not None else getattr(db, "catalog", None)
        self.workers = workers
        self.mode = mode
        self.degraded = False
        #: accounting of the most recent :meth:`run_fragments` call
        self.last_report: Optional[dict] = None
        self.runs = 0
        self.pool_rebuilds = 0
        self._pool = None
        self._pool_version: Optional[int] = None
        #: extent-value identities observed at fork time; a changed
        #: identity for any extent a batch reads re-forks the pool
        self._pool_extents: Dict[str, object] = {}
        self._closed = False
        self._lock = threading.Lock()

    # -- pool lifecycle ------------------------------------------------------
    def _catalog_version(self) -> int:
        return self.catalog.version if self.catalog is not None else 0

    def _snapshot(self) -> Dict[str, object]:
        if self.catalog is None:
            return {}
        return self.catalog.partition_snapshot()

    def _extent_identities(self, specs: Sequence[FragmentSpec]) -> Dict[str, object]:
        """Current extent-value identity of every extent ``specs`` read."""
        out: Dict[str, object] = {}
        if not hasattr(self.db, "extent"):
            return out
        for spec in specs:
            for _, ref in spec.shards:
                if ref.extent not in out:
                    try:
                        out[ref.extent] = self.db.extent(ref.extent)
                    except Exception:
                        pass
        return out

    def _ensure_pool(self, identities: Dict[str, object]):
        """The live pool, re-forked when any staleness trigger fires
        (see the module docstring); ``None`` in inline/degraded mode.

        The partition snapshot is taken *first*: its staleness handshake
        may itself bump the catalog version, and the pool must be tagged
        with the settled number.

        A **closed** executor never forks: a caller that captured this
        handle before its owner retired it (e.g. a service replacing the
        executor on a catalog bump mid-query) falls through to the
        inline path — correct results, no orphaned worker pool.
        """
        if self._closed or self.mode != "process" or self.degraded:
            return None
        snapshot = self._snapshot()  # runs the identity handshake per entry
        version = self._catalog_version()
        if (
            self._pool is not None
            and self._pool_version == version
            and all(
                self._pool_extents.get(name) is rows
                for name, rows in identities.items()
            )
        ):
            return self._pool
        self._close_pool()
        import multiprocessing as mp

        try:
            context = mp.get_context("fork")
        except ValueError:
            self.degraded = True  # no fork (non-POSIX): run inline
            return None
        state = (self.db, snapshot)
        self._pool = context.Pool(
            self.workers, initializer=_init_worker, initargs=(state,)
        )
        self._pool_version = version
        self._pool_extents = dict(identities)
        self.pool_rebuilds += 1
        return self._pool

    def refresh(self) -> None:
        """Force the next run to fork a fresh worker snapshot (for data
        mutations that bypass the catalog version)."""
        with self._lock:
            self._close_pool()

    def _close_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_version = None
            self._pool_extents = {}

    def close(self) -> None:
        """Shut the pool down for good: in-flight callers holding this
        handle finish their current batch; later batches run inline."""
        with self._lock:
            self._closed = True
            self._close_pool()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution -----------------------------------------------------------
    def run_fragments(self, specs: Sequence[FragmentSpec]) -> List[Tuple[frozenset, dict]]:
        """Execute every fragment; return ``[(rows, stats_snapshot), ...]``
        in fragment order.  One batch runs at a time (the batch itself is
        the unit of parallelism)."""
        specs = list(specs)
        with self._lock:
            pool = self._ensure_pool(self._extent_identities(specs))
            if pool is not None:
                results = pool.map(_run_fragment, specs)
            else:
                partitions = self._snapshot()
                results = [
                    execute_fragment(self.db, partitions, spec) for spec in specs
                ]
            per_fragment = [fragment_stats_total(snapshot) for _, snapshot in results]
            self.runs += 1
            self.last_report = {
                "fragments": len(specs),
                "mode": "inline" if pool is None else "process",
                "per_fragment_work": per_fragment,
                "total_work": sum(per_fragment),
                "critical_path_work": max(per_fragment) if per_fragment else 0,
                "result_rows": sum(len(rows) for rows, _ in results),
            }
            return results
