"""The process-pool fragment executor, with fault tolerance.

:class:`ParallelExecutor` fans plan fragments out to a
``multiprocessing`` worker pool and merges partial results plus
per-worker :class:`~repro.engine.stats.Stats` snapshots.  What crosses
the process boundary is exactly the fragment-shipping contract of
:mod:`repro.shard.fragment` — canonical ADL text, shard bindings,
parameter bindings (plus the fragment index, batch attempt and deadline)
out; row sets and counter snapshots back.

Pool lifecycle
==============

Workers are forked with a point-in-time state: the database object, a
plain ``{extent: PartitionedExtent}`` snapshot of the catalog's
partitionings (never the live catalog — a forked child must not inherit
or touch its locks), and the executor's
:class:`~repro.faults.FaultPlan` (installed process-globally in each
worker).  Staleness is caught on *three* triggers, checked per run
before the pool is used:

* the snapshot itself performs the extent-identity handshake
  (``Catalog.partition_snapshot`` → ``partitioning()``), so stale
  shards re-derive before they are forked;
* a catalog **version** move (ANALYZE / ``create_index`` /
  ``partition()`` / statistics refresh) retires the pool the same way
  it retires cached plans;
* the **identity of every extent the fragment batch reads** — including
  un-partitioned broadcast sides, which have no partitioning to
  handshake through — is compared against the identities recorded at
  fork time; any change (e.g. a notified ``insert_rows`` that bumped
  nothing yet) re-forks, because forked children hold a copy-on-write
  image of the parent's pre-mutation heap.  An extent whose identity
  *cannot be read* (dropped/renamed extent, store error) is classified,
  counted in :attr:`extent_lookup_failures`, and recorded as a unique
  sentinel that can never match — a forced re-fork instead of silently
  disabling the staleness trigger.

* the **visibility epoch** a batch is pinned to (PR 7): a batch whose
  fragments carry an epoch newer than the pool's fork epoch re-forks,
  because snapshots preserved after the fork cannot be in its
  copy-on-write image.

Since PR 7, every store mutation publishes a fresh extent value under a
new epoch and epoch-pinned fragments resolve historical snapshots
through :meth:`~repro.storage.store.EpochStoreMixin.extent_at`, so the
old footgun ("mutations that bypass the catalog need an explicit
``refresh()``") is gone; :meth:`refresh` remains as a manual
pool-retirement lever.

Locking contract (PR 6)
=======================

Two locks with disjoint jobs:

* ``_pool_lock`` — pool *lifecycle*: fork, terminate, plan/closed-flag
  changes, and the identity bookkeeping.  Held only for short critical
  sections; :meth:`refresh` / :meth:`close` / :meth:`inject` take it and
  therefore return promptly even while a long batch is executing.
* ``_run_lock`` — the *run guard*: serializes :meth:`run_fragments`
  batches (one batch at a time per executor is the accounting unit the
  benchmarks are built on).  Never held while taking ``_pool_lock``'s
  critical sections longer than a handle lookup.

Consequence: ``refresh()``/``close()`` during an in-flight batch
terminate the pool *out from under it*.  That is deliberate — the
batch's poll loop observes the dead pool, classifies it as a worker
crash, and recovers inline; the caller still gets correct rows (parity
by construction) while the lifecycle call returns immediately.

Fault tolerance (PR 6)
======================

``run_fragments`` no longer assumes the pool is healthy:

* the blocking ``pool.map`` became ``map_async`` + a poll loop that
  watches the **deadline** (terminate + :class:`QueryTimeoutError`, the
  pool reliably reclaimed) and **worker death** (PID-set/exitcode
  changes — ``multiprocessing.Pool`` silently respawns dead workers and
  loses their tasks, which classically presents as an unbounded hang);
* a dead worker (or an injected inline crash) raises
  :class:`~repro.datamodel.errors.WorkerCrashError`: the batch re-runs
  **inline** through the identical ``execute_fragment`` path — parity by
  construction makes the degraded rows provably the same — while the
  breaker records the failure and a background thread re-forks a
  replacement pool;
* transient errors retry under the :class:`~repro.faults.RetryPolicy`
  (bounded attempts, exponential backoff, deterministic jitter);
  timeouts and fatal errors never retry;
* the :class:`~repro.faults.CircuitBreaker` routes batches straight to
  the inline path after repeated pool failures until a cooldown expires
  (half-open probe, then close on success).

Every event lands in counters (:attr:`retries`, :attr:`degraded_runs`,
:attr:`timeouts`, :attr:`pool_deaths`, :attr:`transient_faults`,
:attr:`extent_lookup_failures`, breaker state) and on
:attr:`last_report`; the service mirrors them onto ``QueryResult`` and
its own stats.

``mode="inline"`` runs fragments in-process through the identical
:func:`~repro.shard.fragment.execute_fragment` path (no pool, fully
deterministic) — the fallback when ``fork`` is unavailable and the
default engine for tests.  Per-run accounting lands in
:attr:`last_report`: per-fragment work snapshots, their sum, and the
critical path (the largest single fragment) — the number the PR-5
benchmark's checked speedup is built from.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datamodel.errors import (
    QueryTimeoutError,
    ReproError,
    ServiceError,
    WorkerCrashError,
)
from repro.faults import CircuitBreaker, FaultPlan, RetryPolicy
from repro.faults import runtime as faults_runtime
from repro.shard.fragment import (
    FragmentSpec,
    execute_fragment,
    fragment_stats_total,
)

#: Worker-process state: ``(db, partitions)`` installed by the pool
#: initializer (inherited via fork, never pickled).
_WORKER_STATE: Optional[Tuple[object, Dict[str, object]]] = None


def _init_worker(state) -> None:
    global _WORKER_STATE
    db, partitions, fault_plan = state
    _WORKER_STATE = (db, partitions)
    # the worker's process-global fault plan: crash faults may hard-exit
    # here (and only here — in_worker distinguishes the real thing from
    # the coordinator's simulated inline crash)
    faults_runtime.install(fault_plan, in_worker=True)


def _run_fragment(payload):
    index, attempt, deadline, spec = payload
    db, partitions = _WORKER_STATE
    return execute_fragment(
        db, partitions, spec, index=index, attempt=attempt, deadline=deadline
    )


class ParallelExecutor:
    """Runs fragment batches, in a forked worker pool or inline.

    Parameters
    ----------
    db / catalog:
        The store fragments read and the catalog whose partitionings
        (and version) worker snapshots are derived from.  ``catalog``
        defaults to the store's own registered catalog.
    workers:
        Pool size; also the effective-parallelism figure the planner's
        cost formulas divide by.
    mode:
        ``"process"`` (default) forks a pool; ``"inline"`` runs
        fragments in-process.  Process mode degrades to inline (with
        :attr:`degraded` set) when ``fork`` is unavailable.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` shipped to workers at
        fork and applied on the inline path — deterministic fault
        injection for tests.  Defaults to the plan named by
        ``$REPRO_FAULT_PLAN`` (see :meth:`FaultPlan.from_env`), if any.
    retry_policy / breaker:
        The transient-failure :class:`~repro.faults.RetryPolicy` and the
        parallel-path :class:`~repro.faults.CircuitBreaker`; defaults
        are production-shaped (3 attempts / threshold 3, 30 s cooldown).
    poll_interval_s:
        Deadline / worker-death polling granularity of the pool path.
    """

    def __init__(
        self,
        db,
        catalog=None,
        *,
        workers: int = 4,
        mode: str = "process",
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        poll_interval_s: float = 0.015,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"parallel workers must be >= 1, got {workers}")
        if mode not in ("process", "inline"):
            raise ServiceError(f"unknown parallel mode {mode!r}")
        if poll_interval_s <= 0:
            raise ServiceError(f"poll interval must be > 0, got {poll_interval_s}")
        self.db = db
        self.catalog = catalog if catalog is not None else getattr(db, "catalog", None)
        self.workers = workers
        self.mode = mode
        self.degraded = False
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.poll_interval_s = poll_interval_s
        #: accounting of the most recent :meth:`run_fragments` call
        self.last_report: Optional[dict] = None
        self.runs = 0
        self.pool_rebuilds = 0
        # -- fault-tolerance counters (monotonic, exposed via service stats)
        self.retries = 0
        self.degraded_runs = 0
        self.timeouts = 0
        self.pool_deaths = 0
        self.transient_faults = 0
        self.extent_lookup_failures = 0
        self._pool = None
        self._pool_version: Optional[int] = None
        #: the store's visibility epoch at fork time (PR 7); a batch
        #: pinned to a *newer* epoch re-forks, because the fork image
        #: cannot contain snapshots preserved after it was taken
        self._pool_epoch: Optional[int] = None
        #: extent-value identities observed at fork time; a changed
        #: identity for any extent a batch reads re-forks the pool
        self._pool_extents: Dict[str, object] = {}
        #: worker PIDs at fork time — ``multiprocessing.Pool`` *respawns*
        #: dead workers (losing their tasks forever), so death shows up as
        #: a changed PID set or a non-zero exitcode, not a broken pool
        self._pool_pids: frozenset = frozenset()
        self._closed = False
        # see "Locking contract" in the module docstring
        self._pool_lock = threading.Lock()
        self._run_lock = threading.Lock()

    # -- pool lifecycle ------------------------------------------------------
    def _catalog_version(self) -> int:
        return self.catalog.version if self.catalog is not None else 0

    def _snapshot(self) -> Dict[str, object]:
        if self.catalog is None:
            return {}
        return self.catalog.partition_snapshot()

    def _extent_identities(self, specs: Sequence[FragmentSpec]) -> Dict[str, object]:
        """Current extent-value identity of every extent ``specs`` read.

        A failed lookup is classified (any :class:`ReproError` — dropped
        extent, transient store failure), counted, and replaced by a
        fresh sentinel object: the sentinel can never be identical to a
        recorded identity, so the failure *forces* a re-fork instead of
        silently disabling the staleness trigger (the old
        ``except Exception: pass`` bug).  Non-repro errors propagate —
        they are coordinator bugs, not data staleness.
        """
        out: Dict[str, object] = {}
        if not hasattr(self.db, "extent"):
            return out
        for spec in specs:
            for _, ref in spec.shards:
                if ref.extent not in out:
                    try:
                        out[ref.extent] = self.db.extent(ref.extent)
                    except ReproError:
                        self.extent_lookup_failures += 1
                        out[ref.extent] = object()  # unique: forces a re-fork
        return out

    def _ensure_pool(
        self, identities: Dict[str, object], min_epoch: Optional[int] = None
    ):
        """The live pool, re-forked when any staleness trigger fires
        (see the module docstring); ``None`` in inline/degraded mode.
        Caller must hold ``_pool_lock``.

        The partition snapshot is taken *first*: its staleness handshake
        may itself bump the catalog version, and the pool must be tagged
        with the settled number.

        A **closed** executor never forks: a caller that captured this
        handle before its owner retired it (e.g. a service replacing the
        executor on a catalog bump mid-query) falls through to the
        inline path — correct results, no orphaned worker pool.
        """
        if self._closed or self.mode != "process" or self.degraded:
            return None
        snapshot = self._snapshot()  # runs the identity handshake per entry
        version = self._catalog_version()
        if (
            self._pool is not None
            and self._pool_version == version
            and (
                min_epoch is None
                or (self._pool_epoch is not None and self._pool_epoch >= min_epoch)
            )
            and all(
                self._pool_extents.get(name) is rows
                for name, rows in identities.items()
            )
        ):
            return self._pool
        self._close_pool()
        import multiprocessing as mp

        try:
            context = mp.get_context("fork")
        except ValueError:
            self.degraded = True  # no fork (non-POSIX): run inline
            return None
        state = (self.db, snapshot, self.fault_plan)
        self._pool = context.Pool(
            self.workers, initializer=_init_worker, initargs=(state,)
        )
        self._pool_version = version
        self._pool_epoch = getattr(self.db, "epoch", None)
        self._pool_extents = dict(identities)
        self._pool_pids = frozenset(p.pid for p in self._pool._pool)
        self.pool_rebuilds += 1
        return self._pool

    def inject(self, fault_plan: Optional[FaultPlan]) -> None:
        """Install (or, with ``None``, clear) the fault plan.  Retires
        the pool so the next fork ships the new plan to its workers."""
        with self._pool_lock:
            self.fault_plan = fault_plan
            self._close_pool()

    def refresh(self) -> None:
        """Force the next run to fork a fresh worker snapshot (for data
        mutations that bypass the catalog version).  Returns immediately
        even mid-batch: an in-flight batch observes the terminated pool
        and recovers inline (see the locking contract)."""
        with self._pool_lock:
            self._close_pool()

    def _close_pool(self) -> None:
        """Caller must hold ``_pool_lock``."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_version = None
            self._pool_epoch = None
            self._pool_extents = {}
            self._pool_pids = frozenset()

    def close(self) -> None:
        """Shut the pool down for good: an in-flight batch recovers
        inline; later batches run inline too."""
        with self._pool_lock:
            self._closed = True
            self._close_pool()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- pool health ---------------------------------------------------------
    def _pool_broken(self, pool, pids_at_fork: frozenset) -> bool:
        """Did any worker of ``pool`` die since fork?  ``Pool`` respawns
        dead workers (and loses their in-flight task), so the signal is a
        PID-set change or a recorded non-zero exitcode."""
        try:
            procs = list(getattr(pool, "_pool", None) or ())
            if not procs:
                return True
            if {p.pid for p in procs} != pids_at_fork:
                return True
            return any(p.exitcode not in (None, 0) for p in procs)
        except Exception:
            # the maintenance thread mutated under us; re-check next poll
            return False

    def _reclaim(self, pool) -> None:
        """Terminate ``pool`` (timeout / worker death).  Reclaims through
        :meth:`_close_pool` when we still own it, directly otherwise."""
        with self._pool_lock:
            if self._pool is pool:
                self._close_pool()
                return
        try:
            pool.terminate()
            pool.join()
        except Exception:
            pass

    def _refork_in_background(self, specs: Sequence[FragmentSpec]) -> None:
        """Heal after a pool death without charging the current (already
        degraded) run: fork a replacement pool on a daemon thread, tagged
        with the failed batch's extent identities so the next identical
        batch can use it without another re-fork."""

        def work() -> None:
            try:
                identities = self._extent_identities(specs)
                with self._pool_lock:
                    if self._pool is None:
                        self._ensure_pool(identities)
            except Exception:
                pass  # best-effort healing; the next run re-forks anyway

        threading.Thread(target=work, daemon=True, name="repro-pool-refork").start()

    # -- execution -----------------------------------------------------------
    def run_fragments(
        self,
        specs: Sequence[FragmentSpec],
        *,
        deadline: Optional[float] = None,
        events: Optional[dict] = None,
    ) -> List[Tuple[frozenset, dict]]:
        """Execute every fragment; return ``[(rows, stats_snapshot), ...]``
        in fragment order.  One batch runs at a time (the batch itself is
        the unit of parallelism).

        ``deadline`` is an absolute ``time.monotonic()`` bound; past it
        the batch raises :class:`QueryTimeoutError` (within the polling
        granularity) with the pool reliably reclaimed.  ``events``, when
        given, receives this run's fault-tolerance record (retries,
        degradation, breaker state) — the service forwards it onto
        ``QueryResult.faults``.

        Failure handling: transient errors retry with backoff; a worker
        death degrades the batch to the inline path (same rows by
        construction) and trips the breaker toward routing future
        batches inline; timeouts and fatal errors surface immediately.
        Failed attempts contribute **no** statistics — faults fire before
        a fragment produces rows, and only the successful attempt's
        snapshots are merged/returned.
        """
        specs = list(specs)
        policy = self.retry_policy
        with self._run_lock:
            attempt = 0
            retries = 0
            degraded = False  # this run was forced inline by a failure
            breaker_blocked = False
            mode = "inline"
            #: per-attempt span events (PR 10): every attempt — failed or
            #: successful — leaves a record, so a traced run can show the
            #: crashed pool attempt next to the degraded inline re-run
            attempts_log: List[dict] = []
            try:
                if deadline is not None and time.monotonic() >= deadline:
                    raise QueryTimeoutError("deadline expired before the batch started")
                while True:
                    want_pool = self.mode == "process" and not self.degraded and not degraded
                    if want_pool and not self.breaker.allows():
                        want_pool = False
                        breaker_blocked = True
                    try:
                        results, mode = self._attempt_batch(specs, attempt, deadline, want_pool)
                        attempts_log.append(
                            {"attempt": attempt, "mode": mode, "status": "ok"}
                        )
                        if mode == "process":
                            self.breaker.record_success()
                        break
                    except QueryTimeoutError:
                        attempts_log.append(
                            {
                                "attempt": attempt,
                                "mode": "process" if want_pool else "inline",
                                "status": "failed",
                                "error": "QueryTimeoutError",
                            }
                        )
                        raise  # counted in the outer handler, never retried
                    except WorkerCrashError:
                        attempts_log.append(
                            {
                                "attempt": attempt,
                                "mode": "process" if want_pool else "inline",
                                "status": "failed",
                                "error": "WorkerCrashError",
                            }
                        )
                        self.pool_deaths += 1
                        if want_pool:
                            self.breaker.record_failure()
                            self._refork_in_background(specs)
                        degraded = True
                        attempt += 1
                        retries += 1
                        self.retries += 1
                        if attempt >= policy.max_attempts:
                            raise
                        policy.sleep_backoff(attempt, deadline)
                    except Exception as exc:
                        attempts_log.append(
                            {
                                "attempt": attempt,
                                "mode": "process" if want_pool else "inline",
                                "status": "failed",
                                "error": type(exc).__name__,
                            }
                        )
                        if policy.classify(exc) != "transient":
                            raise
                        self.transient_faults += 1
                        attempt += 1
                        retries += 1
                        self.retries += 1
                        if attempt >= policy.max_attempts:
                            raise
                        policy.sleep_backoff(attempt, deadline)
            except BaseException as exc:
                # one place counts timeouts so the pre-batch check, the
                # poll loop, worker-side deadline hits and backoff sleeps
                # that would outlive the deadline all land in the counter
                if isinstance(exc, QueryTimeoutError):
                    self.timeouts += 1
                if events is not None:
                    events.update(
                        {
                            "error": type(exc).__name__,
                            "retries": retries,
                            "degraded": degraded or breaker_blocked,
                            "breaker": self.breaker.state,
                            "attempts": attempts_log,
                        }
                    )
                raise
            was_degraded = degraded or breaker_blocked
            if was_degraded:
                self.degraded_runs += 1
            per_fragment = [fragment_stats_total(snapshot) for _, snapshot in results]
            self.runs += 1
            self.last_report = {
                "fragments": len(specs),
                "mode": mode,
                "per_fragment_work": per_fragment,
                "total_work": sum(per_fragment),
                "critical_path_work": max(per_fragment) if per_fragment else 0,
                "result_rows": sum(len(rows) for rows, _ in results),
                "attempts": attempt + 1,
                "retries": retries,
                "degraded": was_degraded,
                "breaker": self.breaker.state,
            }
            if events is not None:
                events.update(
                    {
                        "mode": mode,
                        "retries": retries,
                        "degraded": was_degraded,
                        "breaker": self.breaker.state,
                        "attempts": attempts_log,
                    }
                )
            return results

    def _attempt_batch(
        self,
        specs: List[FragmentSpec],
        attempt: int,
        deadline: Optional[float],
        want_pool: bool,
    ) -> Tuple[List[Tuple[frozenset, dict]], str]:
        """One attempt at the whole batch; returns ``(results, mode)``.

        Pool path: ``map_async`` + a poll loop watching the deadline and
        worker health; both failure modes reclaim the pool before
        raising.  Inline path: the same ``execute_fragment`` per spec,
        with the executor's fault plan applied coordinator-side.
        """
        pool = None
        pids = frozenset()
        if want_pool:
            batch_epoch = max(
                (s.epoch for s in specs if s.epoch is not None), default=None
            )
            with self._pool_lock:
                pool = self._ensure_pool(
                    self._extent_identities(specs), min_epoch=batch_epoch
                )
                pids = self._pool_pids
        if pool is None:
            partitions = self._snapshot()
            results = []
            for i, spec in enumerate(specs):
                results.append(
                    execute_fragment(
                        self.db,
                        partitions,
                        spec,
                        index=i,
                        attempt=attempt,
                        deadline=deadline,
                        fault_plan=self.fault_plan,
                    )
                )
            return results, "inline"

        payloads = [(i, attempt, deadline, spec) for i, spec in enumerate(specs)]
        try:
            async_result = pool.map_async(_run_fragment, payloads, chunksize=1)
        except Exception as exc:
            # the pool was closed/terminated from under us (refresh()/
            # close() mid-batch — the documented lifecycle race)
            raise WorkerCrashError(f"worker pool unavailable: {exc}") from exc
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                self._reclaim(pool)
                raise QueryTimeoutError(
                    "parallel batch exceeded its deadline; worker pool reclaimed"
                )
            if self._pool_broken(pool, pids):
                self._reclaim(pool)
                raise WorkerCrashError(
                    "worker process died mid-batch; its fragments are lost"
                )
            async_result.wait(self.poll_interval_s)
            if async_result.ready():
                break
        try:
            results = async_result.get()
        except QueryTimeoutError:
            # a worker hit the deadline inside its own hot loop; retire
            # the pool anyway so a timed-out query never leaves workers
            # mid-anything
            self._reclaim(pool)
            raise
        return results, "process"
