"""Partition-parallel execution (PR 5): sharded extents, exchange
operators, and a process-pool executor.

The paper's argument — set-oriented join plans beat tuple-at-a-time
nested loops — scales one more level: *partitioned* set-at-a-time
execution beats single-threaded set-at-a-time.  This package is that
level:

* :mod:`repro.shard.partition` — deterministic hash partitioning and the
  :class:`PartitionedExtent` snapshots the
  :class:`~repro.storage.catalog.Catalog` registers;
* :mod:`repro.shard.fragment` — the fragment-shipping contract: plan
  fragments travel as canonical pretty-printed ADL text plus shard
  bindings and parameter bindings, and re-parse/re-plan locally
  (:func:`execute_fragment`) wherever they run;
* :mod:`repro.shard.nodes` — the parallel physical operators
  (:class:`PartitionedScan`, :class:`Exchange`,
  :class:`PartitionedHashJoin`) that join the planner's candidate
  enumeration with real cost formulas;
* :mod:`repro.shard.executor` — :class:`ParallelExecutor`, the
  ``multiprocessing`` worker pool that fans fragments out and merges
  partial results and per-worker statistics.
"""

from repro.shard.executor import ParallelExecutor
from repro.shard.fragment import (
    FragmentSpec,
    ShardRef,
    ShardView,
    execute_fragment,
    fragment_stats_total,
)
from repro.shard.nodes import Exchange, PartitionedHashJoin, PartitionedScan
from repro.shard.partition import PartitionedExtent, partition_of, partition_rows, stable_hash

__all__ = [
    "Exchange",
    "FragmentSpec",
    "ParallelExecutor",
    "PartitionedExtent",
    "PartitionedHashJoin",
    "PartitionedScan",
    "ShardRef",
    "ShardView",
    "execute_fragment",
    "fragment_stats_total",
    "partition_of",
    "partition_rows",
    "stable_hash",
]
