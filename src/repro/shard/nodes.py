"""Parallel physical operators: partitioned scans, exchanges, joins.

These nodes join the planner's candidate enumeration
(:meth:`repro.engine.planner.Planner._plan_join_cost_based`) with real
cost formulas (:meth:`repro.engine.cost.CostModel.parallel_join_cost`),
so the cost model — not a flag — decides when a parallel plan beats the
serial one.  ``explain()`` renders partition counts and exchange kinds
on every node.

Execution contract
==================

A parallel region always looks like::

    Exchange(gather) [4 parts] <gathers 4 partitions>
      PartitionedHashJoin(join) [x.k = y.k ; partition-wise, 4 parts]
        PartitionedScan [X by k, 4 parts]
        PartitionedScan [Y by k, 4 parts]

The :class:`Exchange` gather node *drives* the region: when the runtime
carries a :class:`~repro.shard.executor.ParallelExecutor`
(``rt.parallel``), it ships the join's fragments to the worker pool and
merges partial results + per-worker statistics; without one it falls
back to the child's inline iteration, which runs the *same*
:func:`~repro.shard.fragment.execute_fragment` per partition in-process
— parity between the two paths holds by construction.  Either way the
gather materializes its input and counts one ``pipeline_breaks`` (plus
whatever breaks the fragments themselves report), consistent with every
other breaker.

Partition-wise joins on co-partitioned inputs resolve stored shards
directly and skip the exchange entirely; broadcast joins read the small
side whole in every fragment; repartition joins pay a shared-scan hash
filter per fragment (counted as a break by the resolver).
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, Iterator, List, Optional, Sequence

from repro.adl import ast as A
from repro.datamodel.values import Value
from repro.engine.plan import DEFAULT_BATCH_SIZE, Batch, ExecRuntime, PlanNode
from repro.shard.fragment import (
    ChunkedRows,
    FragmentSpec,
    ShardRef,
    execute_fragment,
    merge_stats_snapshot,
)

#: The parallel join strategies the planner enumerates.
STRATEGIES = ("partition-wise", "broadcast", "repartition")


def _partition_lookup(rt: ExecRuntime, specs: Sequence[FragmentSpec]) -> Dict[str, object]:
    """A lock-consistent ``{extent: PartitionedExtent}`` snapshot for the
    extents the fragments reference (inline execution path; the pool path
    snapshots at pool creation instead)."""
    out: Dict[str, object] = {}
    if rt.catalog is None:
        return out
    for spec in specs:
        for _, ref in spec.shards:
            if ref.attr is not None and ref.extent not in out:
                pe = rt.catalog.partitioning(ref.extent)
                if pe is not None:
                    out[ref.extent] = pe
    return out


def _inline_results(rt: ExecRuntime, specs: Sequence[FragmentSpec]):
    """Inline fragment execution: yield ``(rows, snapshot)`` per spec —
    the same shape ``ParallelExecutor.run_fragments`` returns."""
    partitions = _partition_lookup(rt, specs)
    for i, spec in enumerate(specs):
        rt.check_deadline()
        yield execute_fragment(rt.db, partitions, spec, index=i, deadline=rt.deadline)


def _run_inline(
    rt: ExecRuntime, specs: Sequence[FragmentSpec], node: Optional[PlanNode] = None
) -> Iterator[Value]:
    for rows, snapshot in _inline_results(rt, specs):
        _collect_span(rt, node, snapshot)
        merge_stats_snapshot(rt.stats, snapshot)
        yield from rows


def _trace_id(rt: ExecRuntime) -> Optional[str]:
    """The recorder's trace id threaded into shipped fragments, or
    ``None`` — the single untraced-path test of the shard tier."""
    trace = rt.trace
    return trace.trace_id if trace is not None else None


def _collect_span(rt: ExecRuntime, node, snapshot) -> None:
    """Hand a fragment's piggybacked span record to the recorder."""
    trace = rt.trace
    if trace is None or node is None:
        return
    span = snapshot.get("_span")
    if span is not None:
        trace.add_fragment_span(node, span)


class PartitionedScan(PlanNode):
    """Scan of a hash-partitioned extent — all shards, shard-ordered.

    Semantically identical to :class:`~repro.engine.plan.Scan`; the
    partitioning is what lets an enclosing gather split it into one
    fragment per shard (a *gathered scan*).  Streams, no pipeline break.
    """

    label = "PartitionedScan"

    def __init__(self, extent: str, attr: str, parts: int) -> None:
        self.extent = extent
        self.attr = attr
        self.parts = parts

    def describe(self) -> str:
        return f"{self.extent} by {self.attr}, {self.parts} parts"

    def _shards(self, rt: ExecRuntime):
        pe = rt.catalog.partitioning(self.extent) if rt.catalog is not None else None
        if pe is not None and pe.attr == self.attr and pe.parts == self.parts:
            # epoch-pinned runs (PR 7) must not read stored shards built
            # from a different extent value than the pinned one
            if rt.pinned_epoch is None or pe.source_rows is rt.db.extent(self.extent):
                return pe.shards
        return (rt.db.extent(self.extent),)

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        for shard in self._shards(rt):
            for row in shard:
                rt.stats.tuples_visited += 1
                yield row

    def payloads(
        self,
        params: Optional[Dict[str, Value]] = None,
        epoch: Optional[int] = None,
        batch_size: Optional[int] = None,
        trace: Optional[str] = None,
    ) -> List[FragmentSpec]:
        """One fragment per shard: ``__shard__`` bound to shard *i*."""
        from repro.adl.pretty import pretty
        from repro.shard.fragment import SCAN_PLACEHOLDER

        text = pretty(A.ExtentRef(SCAN_PLACEHOLDER))
        return [
            FragmentSpec.make(
                text,
                {SCAN_PLACEHOLDER: ShardRef(self.extent, self.attr, self.parts, i)},
                params,
                epoch=epoch,
                batch_size=batch_size,
                trace=trace,
            )
            for i in range(self.parts)
        ]


class Exchange(PlanNode):
    """Data movement between partitions: ``gather`` / ``broadcast`` /
    ``repartition``.

    All three are pipeline breaks — an exchange materializes what it
    moves — and all three render their kind and partition count in
    ``explain()``.  ``gather`` is the driver of a parallel region (see
    the module docstring); ``broadcast`` and ``repartition`` annotate a
    :class:`PartitionedHashJoin` input with the movement the fragments
    pay for, and execute as the semantically-equivalent identity when
    iterated directly.
    """

    def __init__(
        self,
        kind: str,
        child: PlanNode,
        parts: int,
        key_attr: Optional[str] = None,
    ) -> None:
        if kind not in ("gather", "broadcast", "repartition"):
            from repro.datamodel.errors import PlanError

            raise PlanError(f"unknown exchange kind {kind!r}")
        self.kind = kind
        self.child = child
        self.parts = parts
        self.key_attr = key_attr
        self.label = f"Exchange({kind})"
        if kind == "gather":
            self.break_note = f"gathers {parts} partitions"
        elif kind == "broadcast":
            self.break_note = f"broadcasts to {parts} partitions"
        else:
            self.break_note = f"repartitions into {parts} partitions"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)

    def describe(self) -> str:
        if self.key_attr:
            return f"on {self.key_attr}, {self.parts} parts"
        return f"{self.parts} parts"

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        if self.kind == "gather":
            rt.stats.pipeline_breaks += 1
            payloads = getattr(self.child, "payloads", None)
            if payloads is not None:
                specs = payloads(rt.params, epoch=rt.pinned_epoch, trace=_trace_id(rt))
                if rt.parallel is not None:
                    batch = rt.parallel.run_fragments(
                        specs, deadline=rt.deadline, events=rt.fault_events
                    )
                    if rt.trace is not None:
                        rt.trace.add_events(self, rt.fault_events)
                    for rows, snapshot in batch:
                        _collect_span(rt, self, snapshot)
                        merge_stats_snapshot(rt.stats, snapshot)
                        yield from rows
                    return
                yield from _run_inline(rt, specs, node=self)
                return
            yield from self.child.stream(rt)
            return
        # broadcast / repartition: moving tuples between partitions is the
        # identity at whole-stream granularity; the movement cost is paid
        # (and counted) inside the fragments that consume it
        yield from self._consume(self.child, rt)

    def iterate_batches(self, rt: ExecRuntime) -> Iterator[Batch]:
        payloads = getattr(self.child, "payloads", None)
        if self.kind != "gather" or payloads is None:
            yield from PlanNode.iterate_batches(self, rt)
            return
        # batched gather: fragments run batch-at-a-time and ship their
        # results as ChunkedRows, re-emitted here chunk-for-chunk
        rt.stats.pipeline_breaks += 1
        size = rt.batch_size or DEFAULT_BATCH_SIZE
        specs = payloads(
            rt.params, epoch=rt.pinned_epoch, batch_size=size, trace=_trace_id(rt)
        )
        stats = rt.stats
        if rt.parallel is not None:
            results = iter(
                rt.parallel.run_fragments(
                    specs, deadline=rt.deadline, events=rt.fault_events
                )
            )
            if rt.trace is not None:
                rt.trace.add_events(self, rt.fault_events)
        else:
            results = _inline_results(rt, specs)
        for rows, snapshot in results:
            _collect_span(rt, self, snapshot)
            merge_stats_snapshot(stats, snapshot)
            if isinstance(rows, ChunkedRows):
                for chunk in rows.chunks:
                    if chunk:
                        stats.batches_emitted += 1
                        yield Batch(chunk)
            else:
                # a deadline-bound fragment degraded to tuple mode and
                # returned a flat frozenset; chunk it here
                it = iter(rows)
                while True:
                    part = list(islice(it, size))
                    if not part:
                        break
                    stats.batches_emitted += 1
                    yield Batch(part)

    def vector_note(self) -> str:
        return "vec:gather" if self.kind == "gather" else ""


class PartitionedHashJoin(PlanNode):
    """A hash join split into per-partition fragments.

    ``strategy`` says how the inputs line up:

    * ``partition-wise`` — both inputs co-partitioned on the join keys:
      fragment *i* joins stored shard *i* with stored shard *i*, no
      exchange at all;
    * ``broadcast`` — the (partitioned) left input keeps its shards, the
      small right input is read whole by every fragment;
    * ``repartition`` — each fragment hash-filters **both** full inputs
      to bucket *i* on the join keys (a shared-scan exchange) and joins
      the buckets.

    The node carries its fragments as canonical ADL text + shard
    bindings (:meth:`payloads`); executing the node inline runs them
    one-by-one through :func:`~repro.shard.fragment.execute_fragment` —
    the same path pool workers run.  ``left``/``right`` children are the
    per-partition input descriptions ``explain()`` renders.
    """

    def __init__(
        self,
        kind: str,
        lvar: str,
        rvar: str,
        pred: A.Expr,
        strategy: str,
        parts: int,
        fragment_template: A.Expr,
        shard_bindings: Sequence[Dict[str, ShardRef]],
        left: PlanNode,
        right: PlanNode,
    ) -> None:
        from repro.datamodel.errors import PlanError

        if strategy not in STRATEGIES:
            raise PlanError(f"unknown parallel join strategy {strategy!r}")
        if len(shard_bindings) != parts:
            raise PlanError(
                f"{parts}-way parallel join needs {parts} shard bindings, "
                f"got {len(shard_bindings)}"
            )
        from repro.adl.pretty import pretty

        self.kind = kind
        self.lvar = lvar
        self.rvar = rvar
        self.pred = pred
        self.strategy = strategy
        self.parts = parts
        self.fragment_text = pretty(fragment_template)
        self.shard_bindings = [dict(b) for b in shard_bindings]
        self.left = left
        self.right = right
        self.label = f"PartitionedHashJoin({kind})"

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)

    def describe(self) -> str:
        from repro.adl.pretty import pretty

        return f"{self.lvar},{self.rvar}: {pretty(self.pred)} ; {self.strategy}, {self.parts} parts"

    def payloads(
        self,
        params: Optional[Dict[str, Value]] = None,
        epoch: Optional[int] = None,
        batch_size: Optional[int] = None,
        trace: Optional[str] = None,
    ) -> List[FragmentSpec]:
        return [
            FragmentSpec.make(
                self.fragment_text,
                bindings,
                params,
                epoch=epoch,
                batch_size=batch_size,
                trace=trace,
            )
            for bindings in self.shard_bindings
        ]

    def iterate(self, rt: ExecRuntime) -> Iterator[Value]:
        yield from _run_inline(
            rt,
            self.payloads(rt.params, epoch=rt.pinned_epoch, trace=_trace_id(rt)),
            node=self,
        )
